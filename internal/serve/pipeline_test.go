package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
)

// tallyJSON marshals a tally snapshot with the epoch normalized to
// zero: publish cadence (and therefore epoch numbering) is not part of
// the pipeline's contract, the sealed statistics are.
func tallyJSON(t testing.TB, snap *TallySnapshot) []byte {
	t.Helper()
	c := *snap
	c.Epoch = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// ecoJSON is tallyJSON for the ecosystem view.
func ecoJSON(t testing.TB, snap *EcosystemSnapshot) []byte {
	t.Helper()
	c := *snap
	c.Epoch = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// pipelineEventStream builds a deterministic validation stream over the
// pages: per page, validations from three validators (two signing
// before the close announcement, one after, exercising both the pending
// index and the immediate-credit path), the close event carrying the
// page payload — corrupted for one page in five — and a periodic sprinkle
// of malformed events (zero-hash validations, unknown kinds) that must
// quarantine identically on every pipeline configuration.
func pipelineEventStream(pages []*ledger.Page) (events []consensus.Event, goodPages []*ledger.Page, corrupted, malformed int) {
	nodes := []addr.NodeID{
		addr.KeyPairFromSeed(101).NodeID(),
		addr.KeyPairFromSeed(102).NodeID(),
		addr.KeyPairFromSeed(103).NodeID(),
	}
	streamSeq := uint64(0)
	next := func() uint64 { streamSeq++; return streamSeq }
	var buf []byte
	for i, p := range pages {
		var hash ledger.Hash
		hash[0], hash[1], hash[2] = byte(i), byte(i>>8), 1
		for _, n := range nodes[:2] {
			events = append(events, consensus.Event{
				Kind: consensus.EventValidation, LedgerHash: hash, Node: n,
				Seq: p.Header.Sequence, StreamSeq: next(),
			})
		}
		buf = p.Encode(buf[:0])
		payload := append([]byte(nil), buf...)
		if i%5 == 0 { // 20% fault rate
			payload = payload[:len(payload)-1] // framing violation
			corrupted++
		} else {
			goodPages = append(goodPages, p)
		}
		events = append(events, consensus.Event{
			Kind: consensus.EventLedgerClosed, LedgerHash: hash,
			Seq: p.Header.Sequence, StreamSeq: next(), PageData: payload,
		})
		events = append(events, consensus.Event{
			Kind: consensus.EventValidation, LedgerHash: hash, Node: nodes[2],
			Seq: p.Header.Sequence, StreamSeq: next(),
		})
		if i%7 == 0 { // zero-hash validation: quarantined
			events = append(events, consensus.Event{Kind: consensus.EventValidation, Node: nodes[0], StreamSeq: next()})
			malformed++
		}
		if i%11 == 0 { // unknown kind: quarantined
			events = append(events, consensus.Event{Kind: consensus.EventKind(250), StreamSeq: next()})
			malformed++
		}
	}
	return events, goodPages, corrupted, malformed
}

// TestPipelineWorkersMatchSequentialJSON is the tentpole differential:
// the same fault-injected event stream through 2-, 3-, and 8-worker
// pipelines must seal snapshots byte-identical (as JSON, epochs
// normalized) to the single-writer pipeline — tally, ecosystem, and
// fingerprint views, including the malformed-event and corrupt-payload
// quarantine counts. Run under -race with GOMAXPROCS>1 in CI so the
// barrier/merge machinery is genuinely concurrent.
func TestPipelineWorkersMatchSequentialJSON(t *testing.T) {
	for _, seed := range []int64{13, 29} {
		pages := genPages(t, 1200, seed)
		events, good, corrupted, malformed := pipelineEventStream(pages)
		feats := sampleFeatures(good, 100)

		run := func(workers int) *Service {
			s := NewService(Options{PipelineWorkers: workers, PublishBatch: 16})
			for _, ev := range events {
				if err := s.IngestEvent(ev); err != nil {
					t.Fatal(err)
				}
			}
			drain(t, s)
			return s
		}
		seq := run(1)
		defer seq.Close()
		wantTally := tallyJSON(t, seq.Tally())
		wantEco := ecoJSON(t, seq.Ecosystem())
		if got := seq.Tally().Malformed; got != malformed {
			t.Fatalf("seed %d: sequential tally quarantined %d events, want %d", seed, got, malformed)
		}
		if got := seq.Health().DroppedEvents; got != uint64(corrupted) {
			t.Fatalf("seed %d: sequential pipeline dropped %d, want %d corrupt payloads", seed, got, corrupted)
		}

		for _, workers := range []int{2, 3, 8} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				s := run(workers)
				defer s.Close()
				if got := s.Health().Views[0].Shards; got != workers {
					t.Fatalf("pipeline runs %d shards, want %d", got, workers)
				}
				if got := tallyJSON(t, s.Tally()); string(got) != string(wantTally) {
					t.Errorf("tally JSON diverges from sequential\ngot  %s\nwant %s", got, wantTally)
				}
				if got := ecoJSON(t, s.Ecosystem()); string(got) != string(wantEco) {
					t.Errorf("ecosystem JSON diverges from sequential\ngot  %s\nwant %s", got, wantEco)
				}
				checkFingerprintViewsEqual(t, s, seq, feats)
				if got := s.Health().DroppedEvents; got != uint64(corrupted) {
					t.Errorf("quarantined %d payloads, want %d", got, corrupted)
				}
				if got := s.Tally().Malformed; got != malformed {
					t.Errorf("tally quarantined %d events, want %d", got, malformed)
				}
			})
		}
	}
}

// TestShardPartitionMergeParityJSON is the state-level partition
// property: ANY partition of a record stream across N ecosystem shards
// — and any hash-respecting partition of an event stream across N tally
// shards — must merge to snapshots byte-identical (as JSON) to the
// sequential single-shard fold. Partitions are drawn at random per
// seed; the service never produces most of them, which is the point:
// parity must come from the merge algebra, not from routing luck.
func TestShardPartitionMergeParityJSON(t *testing.T) {
	pages := genPages(t, 1500, 43)
	events, _, _, _ := pipelineEventStream(pages)

	// Project once; the records are shared read-only across the folds.
	fpSt := newFingerprintState(1)
	defer fpSt.close()
	proj := newProjector(fpSt.plan())
	recs := make([]*pageRecord, len(pages))
	for i, p := range pages {
		recs[i] = new(pageRecord)
		proj.fromPage(p, recs[i])
	}

	// Sequential folds.
	seqEco := newEcoShards(1)
	for _, rec := range recs {
		seqEco.apply(0, rec)
	}
	wantEco := ecoJSON(t, seqEco.snapshot(7, 99))
	seqTally := newTallyShards(nil, 1)
	for i := range events {
		seqTally.apply(0, events[i])
	}
	wantTally := tallyJSON(t, seqTally.snapshot(7, 99))

	for _, shards := range []int{2, 3, 8} {
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewSource(int64(shards*100 + trial)))
			eco := newEcoShards(shards)
			for _, rec := range recs {
				eco.apply(rng.Intn(shards), rec)
			}
			if got := ecoJSON(t, eco.snapshot(7, 99)); string(got) != string(wantEco) {
				t.Fatalf("shards=%d trial=%d: ecosystem merge diverges\ngot  %s\nwant %s", shards, trial, got, wantEco)
			}
		}
		// Tally partitioning must colocate a hash's events; within that
		// constraint the shard assignment is the routing function's.
		tal := newTallyShards(nil, shards)
		for i := range events {
			u := update{ev: &events[i]}
			tal.apply(int(tallyRoute(&u)%uint64(shards)), events[i])
		}
		if got := tallyJSON(t, tal.snapshot(7, 99)); string(got) != string(wantTally) {
			t.Fatalf("shards=%d: tally merge diverges\ngot  %s\nwant %s", shards, got, wantTally)
		}
	}
}
