package synth

import (
	"math"
	"math/rand"

	"ripplestudy/internal/amount"
)

// RateUSD returns the approximate 2015 market value of one unit of the
// currency in US dollars. The analyses use it for cross-currency
// aggregation (Fig. 7's balances "aggregated and shown in EUR") and the
// generator uses it to scale amounts and offer prices.
func RateUSD(c amount.Currency) float64 {
	switch c {
	case amount.XRP:
		return 0.008
	case amount.BTC:
		return 250
	case amount.XAU:
		return 1150
	case amount.XAG:
		return 16
	case amount.XPT:
		return 1000
	case amount.USD:
		return 1
	case amount.EUR:
		return 1.1
	case amount.GBP:
		return 1.5
	case amount.AUD:
		return 0.75
	case amount.CNY:
		return 0.155
	case amount.JPY:
		return 0.0085
	case amount.KRW:
		return 0.0009
	case amount.STR:
		return 0.002
	case amount.CCK:
		// The paper finds CCK payments micro-sized, "similar to the
		// BTC": treat it as a strong unit.
		return 150
	case amount.MTL:
		// MTL is the ledger-spam currency: amounts around 1e9 units.
		return 1e-9
	default:
		return 0.25 // tail currencies
	}
}

// RateEUR converts one unit of the currency to euro, the reference
// currency of Figure 7(c).
func RateEUR(c amount.Currency) float64 { return RateUSD(c) / RateUSD(amount.EUR) }

// amountModel draws human-plausible payment amounts for one currency.
type amountModel struct {
	typical float64 // typical payment, in currency units
	sigma   float64 // lognormal spread
	grid    int     // RoundToPow10 exponent for p2p amounts
}

// modelKey collapses unlisted tail currencies onto a shared model.
func modelKey(c amount.Currency) amount.Currency {
	switch c {
	case amount.XRP, amount.BTC, amount.USD, amount.EUR, amount.CNY, amount.JPY,
		amount.KRW, amount.GBP, amount.AUD, amount.CCK, amount.MTL:
		return c
	default:
		return amount.Currency{'*', '*', '*'}
	}
}

// buildAmountModels derives per-currency models: a typical payment of
// ~$100 converted at the market rate with a wide lognormal spread
// (Figure 5's survival functions span many decades), and rounding grids
// that produce human-looking amounts (integer yen, cent-precision
// dollars, 4-decimal bitcoin).
func buildAmountModels() map[amount.Currency]amountModel {
	out := make(map[amount.Currency]amountModel)
	add := func(c amount.Currency, rate float64) {
		typical := 100 / rate
		// Grid: keep ~4 significant digits below the typical magnitude.
		g := int(math.Floor(math.Log10(typical))) - 3
		out[modelKey(c)] = amountModel{typical: typical, sigma: 2.3, grid: g}
	}
	for _, c := range []amount.Currency{
		amount.XRP, amount.BTC, amount.USD, amount.EUR, amount.CNY,
		amount.JPY, amount.KRW, amount.GBP, amount.AUD, amount.CCK,
	} {
		add(c, RateUSD(c))
	}
	add(amount.Currency{'*', '*', '*'}, 0.25)
	// XRP transfers skew larger than retail payments (Fig. 5's XRP
	// survival spans 1..1e10) — wide enough that a visible share
	// survives Table I's 10^5 weak-currency rounding.
	out[amount.XRP] = amountModel{typical: 20_000, sigma: 2.5, grid: 0}
	// MTL spam uses a fixed quantum, not a distribution, but deposits in
	// MTL never occur; keep a placeholder.
	out[amount.MTL] = amountModel{typical: 1e9, sigma: 0.1, grid: 9}
	return out
}

// lognormal draws exp(N(ln(median), sigma)).
func (m amountModel) lognormal(rng *rand.Rand) float64 {
	return m.typical * math.Exp(rng.NormFloat64()*m.sigma)
}

// p2p draws a person-to-person amount: lognormal, snapped to the
// currency's precision grid (so values repeat occasionally but are
// mostly distinct).
func (m amountModel) p2p(rng *rand.Rand) amount.Value {
	f := m.lognormal(rng)
	v, err := amount.FromFloat64(f)
	if err != nil {
		return amount.FromInt64(1)
	}
	r := v.RoundToPow10(m.grid)
	if r.IsZero() {
		return amount.MustValue(1, m.grid)
	}
	return r
}

// deposit draws a host deposit: ~6× a typical payment, coarsely rounded
// (people deposit round sums). Deposits deliberately sit close to
// payment sizes so larger payments must split across a user's
// memberships — the parallel paths of Figure 6(b).
func (m amountModel) deposit(rng *rand.Rand) amount.Value {
	f := m.typical * 4 * math.Exp(rng.NormFloat64()*0.5)
	v, err := amount.FromFloat64(f)
	if err != nil {
		return amount.FromInt64(100)
	}
	// Two significant digits.
	g := int(math.Floor(math.Log10(f))) - 1
	r := v.RoundToPow10(g)
	if r.IsZero() {
		return amount.MustValue(1, g)
	}
	return r
}

// trustLimit returns the user→gateway trust limit for this currency:
// comfortably above any single deposit (deposits are ~20× a typical
// payment with a ×7 lognormal tail).
func (m amountModel) trustLimit() amount.Value {
	f := m.typical * 400
	v, err := amount.FromFloat64(f)
	if err != nil {
		return amount.MustParse("1e6")
	}
	g := int(math.Floor(math.Log10(f)))
	return v.RoundToPow10(g)
}

// price scales a merchant's USD-denominated menu price into the payment
// currency, rounded to two significant digits so the same menu item
// always costs the same — the repetition that weakens the amount feature
// in the de-anonymization study.
func price(menu amount.Value, cur amount.Currency) amount.Value {
	f := menu.Float64() / RateUSD(cur)
	if f <= 0 {
		return amount.FromInt64(1)
	}
	v, err := amount.FromFloat64(f)
	if err != nil {
		return amount.FromInt64(1)
	}
	g := int(math.Floor(math.Log10(f))) - 1
	r := v.RoundToPow10(g)
	if r.IsZero() {
		return amount.MustValue(1, g)
	}
	return r
}

// Discrete spam/bet menus.
var (
	// spinBets are the Ripple Spin gambling stakes, in XRP.
	spinBets = []amount.Value{
		amount.MustParse("0.5"), amount.MustParse("1"), amount.MustParse("2"),
		amount.MustParse("5"), amount.MustParse("10"), amount.MustParse("25"),
		amount.MustParse("50"), amount.MustParse("100"),
	}
	// zeroSpam are the tiny back-and-forth amounts sent to ACCOUNT_ZERO.
	zeroSpam = []amount.Value{
		amount.MustParse("0.000001"), amount.MustParse("0.00001"),
		amount.MustParse("0.0001"), amount.MustParse("1"),
	}
	// cckMicro are the CCK micro-transaction amounts.
	cckMicro = []amount.Value{
		amount.MustParse("0.0001"), amount.MustParse("0.0002"),
		amount.MustParse("0.0005"), amount.MustParse("0.001"),
		amount.MustParse("0.002"), amount.MustParse("0.005"),
		amount.MustParse("0.01"),
	}
	// mtlQuantum is the per-chain spam amount; a spam payment moves
	// 6 × quantum across the 6 parallel chains.
	mtlQuantum = amount.MustParse("1e9")
	// mtlSpamAmount is 6e9: exactly six parallel paths of one quantum.
	mtlSpamAmount = amount.MustParse("6e9")
)
