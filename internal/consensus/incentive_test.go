package consensus

import (
	"math"
	"testing"
)

func TestQuorumFaultTolerance(t *testing.T) {
	tests := []struct {
		n, want int
	}{
		{0, 0},
		{5, 2},  // quorum 4: losing 2 breaks it
		{10, 3}, // quorum 8
		{13, 3}, // quorum ceil(10.4)=11
		{100, 21},
	}
	for _, tt := range tests {
		if got := quorumFaultTolerance(tt.n); got != tt.want {
			t.Errorf("quorumFaultTolerance(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestIncentivesConvergeToEquilibrium(t *testing.T) {
	cfg := IncentiveConfig{
		TaxPerRound:    0.5,
		RoundsPerEpoch: 100_000,
		OperatingCost:  1000,
		Epochs:         120,
	}
	// Equilibrium: 0.5×100k/1000 = 50 validators.
	eq := EquilibriumValidators(cfg)
	if eq != 50 {
		t.Fatalf("equilibrium = %d, want 50", eq)
	}
	series := SimulateIncentives(cfg)
	last := series[len(series)-1]
	if math.Abs(float64(last.Validators-eq)) > 3 {
		t.Errorf("converged to %d validators, want ≈%d", last.Validators, eq)
	}
	// Fault tolerance grew with the population.
	if last.FaultTolerance <= series[0].FaultTolerance {
		t.Errorf("fault tolerance did not improve: %d -> %d",
			series[0].FaultTolerance, last.FaultTolerance)
	}
	// Profit approaches zero at equilibrium.
	if math.Abs(last.Profit) > 0.2*cfg.OperatingCost {
		t.Errorf("profit at equilibrium = %v, want ≈0", last.Profit)
	}
}

func TestZeroTaxDecaysToSubsidizedFloor(t *testing.T) {
	// Ripple's actual design: fees are destroyed, validators earn
	// nothing ("the validation process does not raise any revenue").
	series := SimulateIncentives(IncentiveConfig{
		TaxPerRound:       0,
		InitialValidators: 30,
		Subsidized:        5,
		Epochs:            100,
	})
	last := series[len(series)-1]
	if last.Validators != 5 {
		t.Errorf("population with zero reward = %d, want the 5 subsidized (R1–R5)", last.Validators)
	}
	// The paper's robustness concern in numbers: tolerance collapses.
	if last.FaultTolerance > 2 {
		t.Errorf("fault tolerance = %d; five validators tolerate at most 2 losses", last.FaultTolerance)
	}
}

func TestHigherTaxMoreValidators(t *testing.T) {
	counts := make([]int, 0, 3)
	for _, tax := range []float64{0.1, 0.5, 2.5} {
		series := SimulateIncentives(IncentiveConfig{
			TaxPerRound: tax, RoundsPerEpoch: 100_000, OperatingCost: 1000, Epochs: 150,
		})
		counts = append(counts, series[len(series)-1].Validators)
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Errorf("validator counts not increasing with tax: %v", counts)
	}
}

func TestIncentivesDeterministicWithoutSeed(t *testing.T) {
	cfg := IncentiveConfig{TaxPerRound: 1, RoundsPerEpoch: 50_000, Epochs: 30}
	a := SimulateIncentives(cfg)
	b := SimulateIncentives(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d differs across runs without a seed", i)
		}
	}
}

func TestIncentivesNoiseBounded(t *testing.T) {
	cfg := IncentiveConfig{
		TaxPerRound: 0.5, RoundsPerEpoch: 100_000, OperatingCost: 1000,
		Epochs: 200, Seed: 9,
	}
	series := SimulateIncentives(cfg)
	eq := EquilibriumValidators(cfg)
	// After convergence, noise keeps the population near equilibrium.
	for _, p := range series[100:] {
		if p.Validators < eq/2 || p.Validators > eq*2 {
			t.Fatalf("epoch %d: population %d wandered far from equilibrium %d", p.Epoch, p.Validators, eq)
		}
	}
}
