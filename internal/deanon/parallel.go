package deanon

import (
	"sync"
	"sync/atomic"
)

// ParallelStudy is the sharded-concurrent counterpart of Study, built
// for the Figure 3 pipeline at the paper's 23M-payment scale. The
// fingerprint space is partitioned into 1<<shardBits shards by the high
// bits of the fingerprint; each shard is owned by exactly one worker
// goroutine with a private count table, so counting needs no locks at
// all. Producers batch (resolution, fingerprint) pairs per shard and
// hand full batches to the owning worker over a channel.
//
// Because the information gain only needs to distinguish "seen once"
// from "seen more than once", shards store saturating counters that
// stop at 2 — a uint8 per fingerprint instead of Study's uint32 — in
// open-addressed countTables indexed directly by the fingerprint's low
// bits (see counttable.go). That cuts both the per-entry footprint and
// the per-observation cost versus Study's Go maps, which re-hash the
// key on every access.
//
// Contract: identical to Study — Observe folds payments in, Results
// reads the per-resolution information gain. Observe is single-producer
// like Study's; for concurrent producers (e.g. a ledgerstore
// segment-parallel scan) attach one Feeder per producer goroutine.
// Results may be called repeatedly, but no Observe may follow it.
type ParallelStudy struct {
	resolutions []Resolution
	plan        *FingerprintPlan
	shardShift  uint
	shards      []*studyShard
	payments    atomic.Int64

	batchPool sync.Pool // *[]obsEntry, recycled after consumption
	wg        sync.WaitGroup

	mu       sync.Mutex
	feeders  []*Feeder
	def      *Feeder
	finished bool
	finish   sync.Once
}

// obsEntry routes one fingerprint observation to a shard worker.
type obsEntry struct {
	res uint16
	fp  Fingerprint
}

// studyShard is one worker-owned slice of the fingerprint space.
type studyShard struct {
	ch chan []obsEntry
	// counts[i] holds the shard's saturating counters for resolution i.
	counts []*countTable
}

const (
	// countSaturated is the ceiling of the saturating counters: IG only
	// distinguishes count 0 / 1 / ≥2.
	countSaturated = 2
	// batchEntries is the per-shard producer batch size; one batch is
	// 16 B × 256 = 4 KiB, small enough to stay cache-resident.
	batchEntries = 256
	// maxShardBits bounds the shard count (1024) well past any sensible
	// core count.
	maxShardBits = 10
)

// NewParallelStudy prepares a sharded study over the given resolutions
// with 1<<shardBits counting shards. shardBits is clamped to [0, 10];
// a good default is ⌈log2(GOMAXPROCS)⌉.
func NewParallelStudy(resolutions []Resolution, shardBits int) *ParallelStudy {
	if shardBits < 0 {
		shardBits = 0
	}
	if shardBits > maxShardBits {
		shardBits = maxShardBits
	}
	s := &ParallelStudy{
		resolutions: resolutions,
		plan:        NewFingerprintPlan(resolutions),
		shardShift:  uint(64 - shardBits),
	}
	for i := 0; i < 1<<shardBits; i++ {
		sh := &studyShard{ch: make(chan []obsEntry, 4)}
		for range resolutions {
			sh.counts = append(sh.counts, getCountTable())
		}
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go s.runShard(sh)
	}
	s.def = s.Feeder()
	return s
}

// runShard drains one shard's batches into its private count maps.
func (s *ParallelStudy) runShard(sh *studyShard) {
	defer s.wg.Done()
	for batch := range sh.ch {
		for _, e := range batch {
			sh.counts[e.res].incr(e.fp)
		}
		b := batch
		s.batchPool.Put(&b)
	}
}

func (s *ParallelStudy) getBatch() []obsEntry {
	if v := s.batchPool.Get(); v != nil {
		return (*v.(*[]obsEntry))[:0]
	}
	return make([]obsEntry, 0, batchEntries)
}

// Shards returns the number of counting shards.
func (s *ParallelStudy) Shards() int { return len(s.shards) }

// Feeder is a single-goroutine producer handle. Each concurrent
// producer must own its own Feeder; Observe on distinct Feeders may run
// concurrently.
type Feeder struct {
	s    *ParallelStudy
	bufs [][]obsEntry  // pending batch per shard
	fps  []Fingerprint // per-payment fingerprint scratch
}

// Feeder registers a new producer handle. It panics after Results has
// been called.
func (s *ParallelStudy) Feeder() *Feeder {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		panic("deanon: ParallelStudy.Feeder after Results")
	}
	fd := &Feeder{
		s:    s,
		bufs: make([][]obsEntry, len(s.shards)),
		fps:  make([]Fingerprint, 0, len(s.resolutions)),
	}
	for i := range fd.bufs {
		fd.bufs[i] = s.getBatch()
	}
	s.feeders = append(s.feeders, fd)
	return fd
}

// Observe folds one payment into every resolution's shard counts. The
// features are encoded once; each resolution reuses the encoding.
func (fd *Feeder) Observe(f Features) {
	s := fd.s
	s.payments.Add(1)
	enc := EncodeFeatures(f)
	fd.fps = enc.AppendFingerprints(s.plan, fd.fps[:0])
	for i, fp := range fd.fps {
		sh := int(uint64(fp) >> s.shardShift)
		fd.bufs[sh] = append(fd.bufs[sh], obsEntry{res: uint16(i), fp: fp})
		if len(fd.bufs[sh]) == cap(fd.bufs[sh]) {
			s.shards[sh].ch <- fd.bufs[sh]
			fd.bufs[sh] = s.getBatch()
		}
	}
}

// Observe folds one payment in via the study's default producer handle.
// Like Study.Observe it must not be called concurrently with itself;
// use Feeders for concurrent producers.
func (s *ParallelStudy) Observe(f Features) { s.def.Observe(f) }

// Payments returns the number of observations folded in.
func (s *ParallelStudy) Payments() int { return int(s.payments.Load()) }

// drain flushes every feeder's pending batches, stops the shard
// workers, and waits for them. All producers must be quiescent.
func (s *ParallelStudy) drain() {
	s.finish.Do(func() {
		s.mu.Lock()
		s.finished = true
		feeders := s.feeders
		s.mu.Unlock()
		for _, fd := range feeders {
			for sh, buf := range fd.bufs {
				if len(buf) > 0 {
					s.shards[sh].ch <- buf
				}
				fd.bufs[sh] = nil
			}
		}
		for _, sh := range s.shards {
			close(sh.ch)
		}
		s.wg.Wait()
	})
}

// Close drains the study and returns its count tables to the package
// pool, so callers that rebuild studies repeatedly (the serve refresh
// cadence, benchmark loops) reuse the fully-grown tables instead of
// reallocating and re-growing them every cycle. Call it after the last
// Results/DistinctFingerprints/CountBytes read; the study is unusable
// afterwards. Close is idempotent. Snapshots taken via clone are
// independent copies and stay valid.
func (s *ParallelStudy) Close() {
	s.drain()
	for _, sh := range s.shards {
		for i, t := range sh.counts {
			if t != nil {
				t.release()
				sh.counts[i] = nil
			}
		}
	}
}

// Results computes the IG for every resolution. The first call drains
// the pipeline; no Observe may happen after it. Shards partition the
// fingerprint space, so the merge is a lock-free sum of per-shard
// unique counts — no map union is ever needed.
func (s *ParallelStudy) Results() []RowResult {
	s.drain()
	total := s.Payments()
	out := make([]RowResult, 0, len(s.resolutions))
	for i, res := range s.resolutions {
		unique := 0
		for _, sh := range s.shards {
			unique += sh.counts[i].unique()
		}
		ig := 0.0
		if total > 0 {
			ig = float64(unique) / float64(total)
		}
		out = append(out, RowResult{Resolution: res, IG: ig, Unique: unique, Total: total})
	}
	return out
}

// DistinctFingerprints reports, per resolution, how many distinct
// fingerprints the shards hold — the footprint driver the saturating
// counters were sized for.
func (s *ParallelStudy) DistinctFingerprints() []int {
	s.drain()
	out := make([]int, len(s.resolutions))
	for i := range s.resolutions {
		for _, sh := range s.shards {
			out[i] += sh.counts[i].distinct()
		}
	}
	return out
}

// CountBytes reports the resident footprint of every shard's counting
// tables, summed across resolutions — the number the saturating uint8
// counters were introduced to keep small at 23M-payment scale.
func (s *ParallelStudy) CountBytes() int {
	s.drain()
	n := 0
	for _, sh := range s.shards {
		for _, t := range sh.counts {
			n += t.bytes()
		}
	}
	return n
}
