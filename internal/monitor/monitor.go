// Package monitor implements the paper's §IV analysis pipeline: it
// consumes a validation stream, infers "the validators operating during
// the collection periods ..., their public keys, and the pages signed by
// each of them", matches signed pages against the fully validated main
// ledger, and produces the per-validator total-vs-valid report plotted in
// Figure 2.
package monitor

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
)

// Collector accumulates stream events for one collection period. It is
// not safe for concurrent use; wrap calls if the stream is concurrent.
type Collector struct {
	validations map[addr.NodeID][]ledger.Hash
	validPages  map[ledger.Hash]bool
	labels      map[addr.NodeID]string
	sigOK       map[addr.NodeID]int
	sigBad      map[addr.NodeID]int
	events      int
	malformed   int
	detector    *Detector
}

// NewCollector creates an empty collector with a default-configured
// fork/equivocation detector attached.
func NewCollector() *Collector {
	return &Collector{
		validations: make(map[addr.NodeID][]ledger.Hash),
		validPages:  make(map[ledger.Hash]bool),
		labels:      make(map[addr.NodeID]string),
		sigOK:       make(map[addr.NodeID]int),
		sigBad:      make(map[addr.NodeID]int),
		detector:    NewDetector(DetectorConfig{}),
	}
}

// ConfigureDetector replaces the attached detector. Call before
// recording any events; findings do not carry over.
func (c *Collector) ConfigureDetector(cfg DetectorConfig) { c.detector = NewDetector(cfg) }

// Detector exposes the attached fork/equivocation detector.
func (c *Collector) Detector() *Detector { return c.detector }

// SetLabel associates a public identity (internet domain) with a node.
// Nodes without labels display their truncated public key, as in the
// paper.
func (c *Collector) SetLabel(node addr.NodeID, label string) { c.labels[node] = label }

// Record processes one stream event. Malformed events — an unknown
// kind, a zero page hash, or a validation without a signer — are
// counted and skipped rather than poisoning the collection: over a
// two-week window the stream will deliver garbage eventually, and one
// bad event must not abort or skew the whole period. Exact duplicates
// (a replay of an already-recorded broadcast) are dropped before the
// totals, and every well-formed event additionally feeds the attached
// fork/equivocation detector.
func (c *Collector) Record(ev consensus.Event) {
	switch ev.Kind {
	case consensus.EventValidation:
		if ev.LedgerHash.IsZero() || ev.Node == (addr.NodeID{}) {
			c.malformed++
			return
		}
		if c.detector.duplicate(ev) {
			return
		}
		c.events++
		c.validations[ev.Node] = append(c.validations[ev.Node], ev.LedgerHash)
		if len(ev.Signature) > 0 {
			if addr.Verify(ev.Node.PublicKey(), ev.LedgerHash[:], ev.Signature) {
				c.sigOK[ev.Node]++
			} else {
				c.sigBad[ev.Node]++
			}
		}
		c.detector.observeValidation(ev)
	case consensus.EventLedgerClosed:
		if ev.LedgerHash.IsZero() {
			c.malformed++
			return
		}
		if c.detector.duplicate(ev) {
			return
		}
		c.events++
		c.validPages[ev.LedgerHash] = true
		c.detector.observeClose(ev)
	case consensus.EventProposal:
		if ev.Seq == 0 || len(ev.TxHashes) == 0 {
			c.malformed++
			return
		}
		if c.detector.duplicate(ev) {
			return
		}
		c.events++
		c.detector.observeProposal(ev)
	default:
		c.malformed++
	}
}

// Events returns the number of well-formed events recorded.
func (c *Collector) Events() int { return c.events }

// Malformed returns how many events Record skipped as malformed.
func (c *Collector) Malformed() int { return c.malformed }

// ValidatorStats is one bar pair of Figure 2: the pages a validator
// signed in the window and how many of those ended up in the main
// ledger.
type ValidatorStats struct {
	Node  addr.NodeID
	Label string // domain, or truncated key when unidentified
	Total int    // pages signed
	Valid int    // signed pages that are on the validated main chain
	// BadSignatures counts validations whose signature failed to verify
	// (zero in honest runs; failure-injection tests exercise it).
	BadSignatures int
}

// ValidFraction is Valid/Total (zero when nothing was signed).
func (s ValidatorStats) ValidFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Valid) / float64(s.Total)
}

// Class heuristically names the validator population the stats indicate,
// mirroring the paper's narrative: active contributors, laggards
// struggling to stay in sync, and validators on a different ledger.
func (s ValidatorStats) Class() string {
	switch {
	case s.Total == 0:
		return "silent"
	case s.ValidFraction() >= 0.5:
		return "active"
	case s.Valid == 0:
		return "fork-or-testnet"
	default:
		return "laggard"
	}
}

// Report is the Figure 2 dataset for one collection period.
type Report struct {
	Period     string
	Rounds     int // validated main-chain pages observed
	Validators []ValidatorStats
}

// Report builds the per-validator statistics, ordered as in the paper's
// figures: the Ripple Labs validators R1–R5 first, then the rest
// alphabetically by display label.
func (c *Collector) Report(period string) Report {
	stats := make([]ValidatorStats, 0, len(c.validations))
	for node, hashes := range c.validations {
		s := ValidatorStats{Node: node, Label: c.displayName(node), Total: len(hashes), BadSignatures: c.sigBad[node]}
		for _, h := range hashes {
			if c.validPages[h] {
				s.Valid++
			}
		}
		stats = append(stats, s)
	}
	SortStats(stats)
	return Report{Period: period, Rounds: len(c.validPages), Validators: stats}
}

// SortStats orders validator statistics as in the paper's figures: the
// Ripple Labs validators R1–R5 first, then the rest alphabetically by
// display label (node ID breaking ties). Shared by the batch Report and
// the live serving layer's incremental tally view.
func SortStats(stats []ValidatorStats) {
	sort.Slice(stats, func(i, j int) bool {
		ri, rj := isRippleLabs(stats[i].Label), isRippleLabs(stats[j].Label)
		if ri != rj {
			return ri
		}
		if stats[i].Label != stats[j].Label {
			return stats[i].Label < stats[j].Label
		}
		return stats[i].Node.String() < stats[j].Node.String()
	})
}

func (c *Collector) displayName(node addr.NodeID) string {
	if l, ok := c.labels[node]; ok && l != "" {
		return l
	}
	return node.Short()
}

func isRippleLabs(label string) bool {
	return len(label) == 2 && label[0] == 'R' && label[1] >= '1' && label[1] <= '5'
}

// ActiveCount returns how many validators have a valid-page count within
// `within` (a fraction, e.g. 0.5) of the busiest validator — the paper's
// notion of "a number of valid pages close to or comparable to those of
// R1–R5".
func (r Report) ActiveCount(within float64) int {
	max := 0
	for _, s := range r.Validators {
		if s.Valid > max {
			max = s.Valid
		}
	}
	if max == 0 {
		return 0
	}
	n := 0
	for _, s := range r.Validators {
		if float64(s.Valid) >= within*float64(max) {
			n++
		}
	}
	return n
}

// ZeroValidCount returns how many observed validators signed pages but
// none valid.
func (r Report) ZeroValidCount() int {
	n := 0
	for _, s := range r.Validators {
		if s.Total > 0 && s.Valid == 0 {
			n++
		}
	}
	return n
}

// ActiveNodes returns the node IDs of validators whose valid-page count
// is within `within` of the busiest — the period's active contributors.
func (r Report) ActiveNodes(within float64) map[addr.NodeID]bool {
	max := 0
	for _, s := range r.Validators {
		if s.Valid > max {
			max = s.Valid
		}
	}
	out := make(map[addr.NodeID]bool)
	if max == 0 {
		return out
	}
	for _, s := range r.Validators {
		if float64(s.Valid) >= within*float64(max) {
			out[s.Node] = true
		}
	}
	return out
}

// RecurringActives returns the validators that are active contributors
// in every report — the paper's churn measurement: "the three periods
// share only 9 (over a total of 70 validators seen) that appear in each
// of them as active contributors."
func RecurringActives(reports []Report, within float64) []addr.NodeID {
	if len(reports) == 0 {
		return nil
	}
	counts := make(map[addr.NodeID]int)
	for _, rep := range reports {
		for node := range rep.ActiveNodes(within) {
			counts[node]++
		}
	}
	var out []addr.NodeID
	for node, n := range counts {
		if n == len(reports) {
			out = append(out, node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// TotalObserved returns the number of distinct validators seen across
// all reports (the paper's "over a total of 70 validators seen").
func TotalObserved(reports []Report) int {
	seen := make(map[addr.NodeID]bool)
	for _, rep := range reports {
		for _, s := range rep.Validators {
			seen[s.Node] = true
		}
	}
	return len(seen)
}

// WriteTable renders the report as the textual equivalent of a Figure 2
// panel.
func (r Report) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure 2 — %s (%d validated rounds observed)\n", r.Period, r.Rounds); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-28s %10s %10s %7s  %s\n", "validator", "total", "valid", "v/t", "class"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", 70)); err != nil {
		return err
	}
	for _, s := range r.Validators {
		if _, err := fmt.Fprintf(w, "%-28s %10d %10d %6.1f%%  %s\n",
			s.Label, s.Total, s.Valid, 100*s.ValidFraction(), s.Class()); err != nil {
			return err
		}
	}
	return nil
}

// CollectPeriod runs one collection period end to end in-process: it
// builds the consensus network from the spec, attaches a collector
// directly to the network's event feed, runs the rounds, and reports.
// The TCP path (netstream) is exercised by cmd/rippled-sim and
// cmd/consensus-monitor; analyses use this direct path.
func CollectPeriod(spec consensus.PeriodSpec, cfg consensus.Config, traffic func(round int) []*ledger.Tx) (Report, error) {
	cfg.StartTime = spec.Start
	net := consensus.NewNetwork(cfg, spec.Specs)
	col := NewCollector()
	for _, s := range spec.Specs {
		if s.Label != "" {
			node := addr.KeyPairFromSeed(s.Seed).NodeID()
			col.SetLabel(node, s.Label)
		}
	}
	net.Subscribe(col.Record)
	if _, err := net.Run(spec.Rounds, traffic); err != nil {
		return Report{}, fmt.Errorf("monitor: running %s: %w", spec.Name, err)
	}
	return col.Report(spec.Name), nil
}
