package serve

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/analysis"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/deanon"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/ledgerstore"
	"ripplestudy/internal/monitor"
	"ripplestudy/internal/synth"
)

// genPages builds a small deterministic history for differential tests.
func genPages(t testing.TB, payments int, seed int64) []*ledger.Page {
	t.Helper()
	var pages []*ledger.Page
	_, err := synth.Generate(synth.Config{
		Payments:       payments,
		Seed:           seed,
		SkipSignatures: true,
	}, func(p *ledger.Page) error {
		pages = append(pages, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pages
}

// drain waits for every view to publish everything ingested so far.
func drain(t testing.TB, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// batchViews computes the batch answers the incremental views must
// reproduce bit-identically.
func batchViews(t testing.TB, pages []*ledger.Page) (*deanon.Study, *analysis.Collector) {
	t.Helper()
	study := deanon.NewStudy(deanon.Figure3Rows)
	col := analysis.NewCollector()
	for _, p := range pages {
		for i := range p.Txs {
			if f, ok := deanon.FromTransaction(p, p.Txs[i], p.Metas[i]); ok {
				study.Observe(f)
			}
		}
		if err := col.Page(p); err != nil {
			t.Fatal(err)
		}
	}
	return study, col
}

// checkAgainstBatch asserts the service's current page-view snapshots
// equal the batch computation over the same pages, bit for bit.
func checkAgainstBatch(t *testing.T, s *Service, study *deanon.Study, col *analysis.Collector, pages []*ledger.Page) {
	t.Helper()

	fp := s.Fingerprints()
	if fp.Payments != study.Payments() {
		t.Errorf("fingerprint view saw %d payments, batch %d", fp.Payments, study.Payments())
	}
	if !reflect.DeepEqual(fp.Rows, study.Results()) {
		t.Errorf("Figure 3 rows diverged:\nincremental: %+v\nbatch:       %+v", fp.Rows, study.Results())
	}
	// Every observed payment must look up exactly as the batch count
	// table would report it: re-derive features and check the sealed
	// lookup table at every resolution.
	checked := 0
	for _, p := range pages {
		for i := range p.Txs {
			f, ok := deanon.FromTransaction(p, p.Txs[i], p.Metas[i])
			if !ok {
				continue
			}
			for row := range fp.Rows {
				count, ok := fp.Lookup(row, f)
				if !ok {
					t.Fatalf("lookup row %d rejected", row)
				}
				if count == 0 {
					t.Fatalf("row %d: observed payment reported unseen", row)
				}
			}
			checked++
			if checked >= 200 {
				break
			}
		}
		if checked >= 200 {
			break
		}
	}

	eco := s.Ecosystem()
	if eco.Payments != col.Payments() || eco.Failed != col.FailedPayments() ||
		eco.MultiHop != col.MultiHopPayments() || eco.Offers != col.TotalOffers() ||
		eco.ActiveUsers != col.ActiveAccounts() {
		t.Errorf("ecosystem scalars diverged: %+v", eco)
	}
	if !reflect.DeepEqual(eco.Currencies, col.CurrencyHistogram()) {
		t.Error("Figure 4 currency histogram diverged")
	}
	if !reflect.DeepEqual(eco.Hops, col.HopHistogram()) {
		t.Error("Figure 6a hop histogram diverged")
	}
	if !reflect.DeepEqual(eco.Parallel, col.ParallelHistogram()) {
		t.Error("Figure 6b parallel-path histogram diverged")
	}
	grid := analysis.DefaultSurvivalGrid()
	if !reflect.DeepEqual(eco.Survival[0].Points, col.Survival(amount.Currency{}, true, grid)) {
		t.Error("Figure 5 global survival curve diverged")
	}
	for i, cur := range analysis.FeaturedCurrencies() {
		if !reflect.DeepEqual(eco.Survival[i+1].Points, col.Survival(cur, false, grid)) {
			t.Errorf("Figure 5 curve %s diverged", cur)
		}
	}
}

// TestIncrementalMatchesBatch ingests a history page by page and checks
// every materialized view against the batch computation over the same
// pages — the core differential guarantee.
func TestIncrementalMatchesBatch(t *testing.T) {
	pages := genPages(t, 2500, 11)
	study, col := batchViews(t, pages)

	s := NewService(Options{})
	defer s.Close()
	for _, p := range pages {
		if err := s.IngestPage(p); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, s)
	checkAgainstBatch(t, s, study, col, pages)
	if want := 1 + len(analysis.FeaturedCurrencies()); len(s.Ecosystem().Survival) != want {
		t.Fatalf("expected %d survival curves, got %d", want, len(s.Ecosystem().Survival))
	}
}

// TestMidStreamSnapshotsMatchBatchPrefix cuts the stream at several
// points and checks each published snapshot against the batch answer
// over exactly the ingested prefix — the "correct at every epoch"
// property, not just at the end.
func TestMidStreamSnapshotsMatchBatchPrefix(t *testing.T) {
	pages := genPages(t, 1200, 23)
	s := NewService(Options{PublishBatch: 8})
	defer s.Close()

	cuts := []int{len(pages) / 4, len(pages) / 2, len(pages)}
	prev := 0
	for _, cut := range cuts {
		for _, p := range pages[prev:cut] {
			if err := s.IngestPage(p); err != nil {
				t.Fatal(err)
			}
		}
		prev = cut
		drain(t, s)
		study, col := batchViews(t, pages[:cut])
		checkAgainstBatch(t, s, study, col, pages[:cut])
	}
}

// TestParallelBackfillMatchesSequential persists the history to a
// ledgerstore and backfills it with several decode workers; segment
// interleaving must not change any view (all statistics commute).
func TestParallelBackfillMatchesSequential(t *testing.T) {
	pages := genPages(t, 2000, 7)
	dir := filepath.Join(t.TempDir(), "store")
	st, err := ledgerstore.Create(dir, ledgerstore.WithSegmentBytes(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		if err := st.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = ledgerstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	study, col := batchViews(t, pages)
	s := NewService(Options{})
	defer s.Close()
	if err := s.BackfillStore(context.Background(), st, 4); err != nil {
		t.Fatal(err)
	}
	drain(t, s)
	checkAgainstBatch(t, s, study, col, pages)
	if got := s.Ecosystem().Pages; got != uint64(len(pages)) {
		t.Fatalf("backfill folded %d pages, want %d", got, len(pages))
	}
}

// TestTallyMatchesMonitorCollector subscribes the serving layer and the
// batch monitor.Collector to the same consensus run (with page payloads
// on the stream) and checks the incremental Figure 2 tallies equal the
// batch report, including ordering.
func TestTallyMatchesMonitorCollector(t *testing.T) {
	const rounds = 120
	spec := consensus.December2015(rounds)

	labels := make(map[addr.NodeID]string)
	batch := monitor.NewCollector()
	for _, vs := range spec.Specs {
		if vs.Label != "" {
			node := addr.KeyPairFromSeed(vs.Seed).NodeID()
			labels[node] = vs.Label
			batch.SetLabel(node, vs.Label)
		}
	}

	s := NewService(Options{ValidatorLabels: labels})
	defer s.Close()

	net := consensus.NewNetwork(consensus.Config{
		Seed:        9,
		StartTime:   spec.Start,
		StreamPages: true,
	}, spec.Specs)
	net.Subscribe(batch.Record)
	// Ground truth for the page views: only validated pages are
	// announced on the stream (quorum failures close no page).
	var streamed []*ledger.Page
	net.Subscribe(func(ev consensus.Event) {
		if ev.Kind == consensus.EventLedgerClosed {
			if p, err := ev.Page(); err != nil {
				t.Errorf("streamed page: %v", err)
			} else if p != nil {
				streamed = append(streamed, p)
			}
		}
		if err := s.IngestEvent(ev); err != nil {
			t.Errorf("ingest: %v", err)
		}
	})
	if _, err := net.Run(rounds, nil); err != nil {
		t.Fatal(err)
	}
	drain(t, s)

	want := batch.Report(spec.Name)
	got := s.Tally().Report(spec.Name)
	if got.Rounds != want.Rounds {
		t.Fatalf("rounds differ: incremental %d, batch %d", got.Rounds, want.Rounds)
	}
	if !reflect.DeepEqual(got.Validators, want.Validators) {
		t.Fatalf("Figure 2 tallies diverged:\nincremental: %+v\nbatch:       %+v", got.Validators, want.Validators)
	}
	if s.Tally().Epoch == 0 {
		t.Fatal("tally view never published a non-bootstrap epoch")
	}

	// The stream also carried page payloads: the page views must agree
	// with a batch pass over the validated pages it announced.
	if len(streamed) == 0 {
		t.Fatal("no pages streamed")
	}
	study, col := batchViews(t, streamed)
	checkAgainstBatch(t, s, study, col, streamed)
}
