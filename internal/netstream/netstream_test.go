package netstream

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
)

func testEvent(seq uint64) consensus.Event {
	kp := addr.KeyPairFromSeed(seq)
	h := ledger.SHA512Half([]byte{byte(seq)})
	return consensus.Event{
		Kind:       consensus.EventValidation,
		Seq:        seq,
		LedgerHash: h,
		Node:       kp.NodeID(),
		Signature:  kp.Sign(h[:]),
		Time:       time.Date(2015, 12, 1, 0, 0, int(seq), 0, time.UTC),
	}
}

// waitSubscribers polls until the server sees n subscribers.
func waitSubscribers(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.NumSubscribers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers = %d, want %d", s.NumSubscribers(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPublishSubscribe(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitSubscribers(t, s, 1)

	const n = 50
	go func() {
		for i := uint64(1); i <= n; i++ {
			s.Publish(testEvent(i))
		}
		s.Flush()
	}()

	var got []consensus.Event
	err = c.Events(func(ev consensus.Event) error {
		got = append(got, ev)
		if len(got) == n {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d events, want %d", len(got), n)
	}
	// Events survive the JSON round trip intact, signatures included.
	for i, ev := range got {
		want := testEvent(uint64(i + 1))
		if ev.Seq != want.Seq || ev.LedgerHash != want.LedgerHash || ev.Node != want.Node {
			t.Fatalf("event %d mangled: %+v", i, ev)
		}
		if !addr.Verify(ev.Node.PublicKey(), ev.LedgerHash[:], ev.Signature) {
			t.Fatalf("event %d signature broken in transit", i)
		}
		if !ev.Time.Equal(want.Time) {
			t.Fatalf("event %d time mangled: %v", i, ev.Time)
		}
	}
}

func TestMultipleSubscribers(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const subs = 3
	const n = 20
	var wg sync.WaitGroup
	counts := make([]int, subs)
	for i := 0; i < subs; i++ {
		c, err := Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			_ = c.Events(func(consensus.Event) error {
				counts[i]++
				if counts[i] == n {
					return ErrStop
				}
				return nil
			})
		}(i, c)
	}
	waitSubscribers(t, s, subs)
	for i := uint64(1); i <= n; i++ {
		s.Publish(testEvent(i))
	}
	s.Flush()
	wg.Wait()
	for i, got := range counts {
		if got != n {
			t.Errorf("subscriber %d received %d, want %d", i, got, n)
		}
	}
}

func TestClientSeesEOFOnServerClose(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitSubscribers(t, s, 1)
	s.Publish(testEvent(1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := c.Events(func(consensus.Event) error { n++; return nil }); err != nil {
		t.Fatalf("Events after close: %v", err)
	}
	if n != 1 {
		t.Errorf("received %d events before EOF, want 1", n)
	}
}

func TestDeadSubscriberDropped(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	waitSubscribers(t, s, 1)
	c.Close()
	// Publishing into the closed connection eventually errors and the
	// subscriber is evicted. TCP buffering may absorb several writes
	// first.
	deadline := time.Now().Add(2 * time.Second)
	for s.NumSubscribers() > 0 {
		s.Publish(testEvent(1))
		s.Flush()
		if time.Now().After(deadline) {
			t.Fatal("dead subscriber never evicted")
		}
	}
}

func TestCallbackErrorPropagates(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitSubscribers(t, s, 1)
	s.Publish(testEvent(1))
	s.Flush()
	boom := errors.New("boom")
	if err := c.Events(func(consensus.Event) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}
