package netstream

import (
	"testing"
	"time"
)

// TestBackoffScheduleGrowsAndCaps: the base doubles per attempt, jitter
// lands in [base/2, base], and nothing ever exceeds MaxBackoff — the
// hard cap that keeps a reconnecting fleet from hammering the sim.
func TestBackoffScheduleGrowsAndCaps(t *testing.T) {
	opts := ResilientOptions{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     200 * time.Millisecond,
	}
	rc := NewResilientClient("unused:0", opts)
	for attempt := 1; attempt <= 64; attempt++ {
		base := min(opts.InitialBackoff<<(attempt-1), opts.MaxBackoff)
		if attempt > 30 { // past any representable shift
			base = opts.MaxBackoff
		}
		d := rc.nextBackoff(attempt)
		if d < base/2 {
			t.Errorf("attempt %d: backoff %v below half the base %v", attempt, d, base)
		}
		if d > base {
			t.Errorf("attempt %d: backoff %v above the base %v", attempt, d, base)
		}
		if d > opts.MaxBackoff {
			t.Errorf("attempt %d: backoff %v exceeds the hard cap %v", attempt, d, opts.MaxBackoff)
		}
	}
}

// TestBackoffNoOverflow: absurd attempt counts must saturate at the cap,
// not wrap a duration multiplication negative.
func TestBackoffNoOverflow(t *testing.T) {
	rc := NewResilientClient("unused:0", ResilientOptions{
		InitialBackoff: time.Second,
		MaxBackoff:     5 * time.Second,
	})
	for _, attempt := range []int{1, 63, 64, 100, 1 << 20} {
		d := rc.nextBackoff(attempt)
		if d <= 0 || d > 5*time.Second {
			t.Errorf("attempt %d: backoff %v out of (0, cap]", attempt, d)
		}
	}
}

// TestBackoffJitterSpreadsClients: two clients with different jitter
// seeds must not share a reconnect schedule (the thundering-herd fix),
// while the same seed reproduces the same schedule (chaos-test
// determinism).
func TestBackoffJitterSpreadsClients(t *testing.T) {
	opts := ResilientOptions{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     5 * time.Second,
	}
	schedule := func(seed int64) []time.Duration {
		o := opts
		o.JitterSeed = seed
		rc := NewResilientClient("unused:0", o)
		var out []time.Duration
		for attempt := 1; attempt <= 10; attempt++ {
			out = append(out, rc.nextBackoff(attempt))
		}
		return out
	}
	a, b, a2 := schedule(1), schedule(2), schedule(1)
	same := 0
	for i := range a {
		if a[i] != a2[i] {
			t.Errorf("attempt %d: same seed diverged: %v vs %v", i+1, a[i], a2[i])
		}
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different jitter seeds produced identical schedules: no herd spreading")
	}
}
