package ledgerstore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"ripplestudy/internal/ledger"
)

// parallelSeqs runs PagesParallel and collects the observed page
// sequences per worker.
func parallelSeqs(t *testing.T, s *Store, workers int) []uint64 {
	t.Helper()
	var mu sync.Mutex
	var seqs []uint64
	err := s.PagesParallel(context.Background(), workers, func(w int, p *ledger.Page) error {
		mu.Lock()
		seqs = append(seqs, p.Header.Sequence)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return seqs
}

func TestPagesParallelMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: one page per segment, so every worker gets work.
	want := writeStore(t, dir, 23, 2, WithSegmentBytes(1))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 16, 100} {
		seqs := parallelSeqs(t, s, workers)
		if len(seqs) != len(want) {
			t.Fatalf("workers=%d: saw %d pages, want %d", workers, len(seqs), len(want))
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for i, seq := range seqs {
			if seq != uint64(i+1) {
				t.Fatalf("workers=%d: page multiset broken: %v", workers, seqs)
			}
		}
	}
}

func TestPagesParallelPreservesSegmentOrder(t *testing.T) {
	dir := t.TempDir()
	// Multiple pages per segment: within a segment order must hold.
	writeStore(t, dir, 40, 1, WithSegmentBytes(2048))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := segmentFiles(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(segs))
	}
	// With one worker the scan degenerates to the sequential segment
	// walk, so the global page order must match Pages exactly.
	var sequential []uint64
	if err := s.Pages(func(p *ledger.Page) error {
		sequential = append(sequential, p.Header.Sequence)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	err = s.PagesParallel(context.Background(), 1, func(w int, p *ledger.Page) error {
		got = append(got, p.Header.Sequence)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sequential) {
		t.Fatalf("read %d pages, want %d", len(got), len(sequential))
	}
	for i := range got {
		if got[i] != sequential[i] {
			t.Fatalf("order diverged at %d: %d != %d", i, got[i], sequential[i])
		}
	}

	// Multi-worker: each worker's intra-segment runs still ascend; a
	// worker never revisits a sequence.
	perWorker := make([][]uint64, 4)
	var mu sync.Mutex
	err = s.PagesParallel(context.Background(), 4, func(w int, p *ledger.Page) error {
		mu.Lock()
		perWorker[w] = append(perWorker[w], p.Header.Sequence)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for w, seqs := range perWorker {
		seen := make(map[uint64]bool, len(seqs))
		for _, seq := range seqs {
			if seen[seq] {
				t.Fatalf("worker %d saw duplicate seq %d", w, seq)
			}
			seen[seq] = true
		}
	}
}

func TestPagesParallelPropagatesError(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 12, 1, WithSegmentBytes(1))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	var calls atomic.Int64
	err = s.PagesParallel(context.Background(), 3, func(w int, p *ledger.Page) error {
		if calls.Add(1) == 4 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestPagesParallelHonorsContext(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 12, 1, WithSegmentBytes(1))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err = s.PagesParallel(ctx, 2, func(w int, p *ledger.Page) error {
		if calls.Add(1) == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPagesParallelDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 8, 2, WithSegmentBytes(1))
	segs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[3])
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff
	if err := os.WriteFile(segs[3], data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	err = s.PagesParallel(context.Background(), 4, func(int, *ledger.Page) error { return nil })
	if !errors.Is(err, ErrCorrupted) {
		t.Fatalf("err = %v, want ErrCorrupted", err)
	}
}

// BenchmarkPagesParallel measures the segment-parallel scan (decode
// included) across worker counts — the 500GB-history read path.
func BenchmarkPagesParallel(b *testing.B) {
	dir := b.TempDir()
	s, err := Create(dir, WithSegmentBytes(1<<15))
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	parent := ledger.Hash{}
	const pages = 240
	for i := 1; i <= pages; i++ {
		p := buildPage(uint64(i), parent, 6, r)
		parent = p.Header.Hash()
		if err := s.Append(p); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var count atomic.Int64
				err := s.PagesParallel(context.Background(), workers, func(int, *ledger.Page) error {
					count.Add(1)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if count.Load() != pages {
					b.Fatalf("scanned %d pages, want %d", count.Load(), pages)
				}
			}
			b.ReportMetric(float64(pages)*float64(b.N)/b.Elapsed().Seconds(), "pages/s")
		})
	}
}

func TestPagesParallelWorkerIndexBounds(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 6, 1, WithSegmentBytes(1))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 3
	var bad atomic.Int64
	err = s.PagesParallel(context.Background(), workers, func(w int, p *ledger.Page) error {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Error("worker index out of [0, workers)")
	}
}
