package integration

import (
	"context"
	"encoding/json"
	"net"
	"reflect"
	"testing"
	"time"

	"ripplestudy/internal/consensus"
	"ripplestudy/internal/faultnet"
	"ripplestudy/internal/monitor"
	"ripplestudy/internal/netstream"
)

// collectScenario runs an adversarial scenario over the real TCP
// pipeline: the network publishes to a netstream server (optionally
// behind a fault-injecting listener) and a resilient client feeds the
// collector. Returns the collector and the client's transport stats.
func collectScenario(t *testing.T, sc consensus.ScenarioConfig, rounds int, dcfg monitor.DetectorConfig, fcfg *faultnet.Config) (*monitor.Collector, netstream.ClientStats) {
	t.Helper()
	opts := []netstream.Option{
		netstream.WithReplayRing(1 << 15),
		netstream.WithQueueSize(256),
		netstream.WithWriteTimeout(2 * time.Second),
	}
	if fcfg != nil {
		opts = append(opts, netstream.WithListenerWrapper(func(ln net.Listener) net.Listener {
			return faultnet.Wrap(ln, *fcfg)
		}))
	}
	srv, err := netstream.Serve("127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	col := monitor.NewCollector()
	col.ConfigureDetector(dcfg)
	rc := netstream.NewResilientClient(srv.Addr(), netstream.ResilientOptions{
		InitialBackoff:         2 * time.Millisecond,
		MaxBackoff:             50 * time.Millisecond,
		DialTimeout:            time.Second,
		ReadTimeout:            25 * time.Millisecond,
		MaxConsecutiveFailures: 5000,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() {
		runErr <- rc.Run(ctx, func(ev consensus.Event) error {
			col.Record(ev)
			return nil
		})
	}()

	net, traffic := sc.Build()
	var last consensus.Event
	net.Subscribe(func(ev consensus.Event) {
		last = ev
		srv.Publish(ev)
	})
	if _, err := net.Run(rounds, traffic); err != nil {
		t.Fatal(err)
	}
	final := net.EventsEmitted()
	if final == 0 {
		t.Fatal("scenario emitted no events")
	}
	deadline := time.Now().Add(60 * time.Second)
	for rc.LastSeq() < final {
		if time.Now().After(deadline) {
			t.Fatalf("client stuck at seq %d of %d (stats %+v)", rc.LastSeq(), final, rc.Stats())
		}
		srv.Publish(last)
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-runErr; err != nil && err != context.Canceled {
		t.Fatalf("Run: %v", err)
	}
	return col, rc.Stats()
}

// TestAttackMatrixOverNetstream is the headline deliverable: for each
// adversary class, a scenario over the real TCP pipeline must raise the
// corresponding monitor alert. The matrix also documents what Figure 2
// alone would say — the equivocator files under the benign "laggard"
// class, so without the detector every one of these attacks either
// hides in a benign population or is indistinguishable from churn.
func TestAttackMatrixOverNetstream(t *testing.T) {
	cases := []struct {
		name   string
		attack consensus.AttackSpec
		rounds int
		want   monitor.AlertKind
		check  func(t *testing.T, s monitor.AttackSummary)
	}{
		{
			name:   "equivocation",
			attack: consensus.AttackSpec{Equivocators: 1},
			rounds: 40,
			want:   monitor.AlertEquivocation,
			check: func(t *testing.T, s monitor.AttackSummary) {
				if s.Equivocations != 40 || s.EquivocatingValidators != 1 {
					t.Errorf("equivocations=%d validators=%d, want 40 by 1", s.Equivocations, s.EquivocatingValidators)
				}
			},
		},
		{
			name:   "censorship",
			attack: consensus.AttackSpec{Censors: 1},
			rounds: 40,
			want:   monitor.AlertCensorship,
			check: func(t *testing.T, s monitor.AttackSummary) {
				if s.SuspectedCensoredTxs == 0 {
					t.Error("no suspected-censored transactions flagged")
				}
				if s.Equivocations != 0 {
					t.Errorf("censor misread as equivocator: %+v", s)
				}
			},
		},
		{
			name:   "delayed-proposal",
			attack: consensus.AttackSpec{Delayers: 1},
			rounds: 40,
			want:   monitor.AlertLateValidation,
			check: func(t *testing.T, s monitor.AttackSummary) {
				if s.LateValidations == 0 {
					t.Error("no late validations flagged for the delayed proposer")
				}
			},
		},
		{
			name:   "delayed-proposal-quorum-stall",
			attack: consensus.AttackSpec{Delayers: 3},
			rounds: 40,
			want:   monitor.AlertStall,
			check: func(t *testing.T, s monitor.AttackSummary) {
				if s.StallAlarms == 0 {
					t.Error("no liveness stall alarm with quorum unreachable")
				}
			},
		},
		{
			name:   "sub-bound-overlap",
			attack: consensus.AttackSpec{Partition: &consensus.PartitionSpec{Overlap: 0.2}},
			rounds: 40,
			want:   monitor.AlertFork,
			check: func(t *testing.T, s monitor.AttackSummary) {
				if s.ForkedSequences == 0 {
					t.Error("no committed fork observed below the overlap bound")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := consensus.ScenarioConfig{Name: tc.name, Rounds: tc.rounds, Seed: 5, Attack: tc.attack}
			col, cs := collectScenario(t, sc, tc.rounds, monitor.DetectorConfig{}, nil)
			health := monitor.Health(cs, col)
			if !health.Attacked() {
				t.Fatalf("monitor did not mark the collection attacked: %+v", health.Attack)
			}
			found := false
			for _, a := range col.Detector().Alerts() {
				if a.Kind == tc.want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("no %s alert raised; summary %+v", tc.want, health.Attack)
			}
			tc.check(t, health.Attack)
			// The partial Figure 2 report survives the attack.
			if rep := col.Report(tc.name); len(rep.Validators) == 0 {
				t.Error("attack run produced an empty Figure 2 report")
			}
			t.Logf("%s: %+v", tc.name, health.Attack)
		})
	}
}

// TestChaosComposedWithByzantine layers faultnet transport chaos over a
// Byzantine population: the detector's verdict and the Figure 2 report
// must both come through the degraded transport identical to the direct
// in-process path — fault tolerance and attack detection compose.
func TestChaosComposedWithByzantine(t *testing.T) {
	const rounds = 60
	sc := consensus.ScenarioConfig{
		Name: "chaos-byzantine", Rounds: rounds, Seed: 5,
		Attack: consensus.AttackSpec{Equivocators: 1, Censors: 1},
	}

	// Direct path: collector subscribed straight to the network.
	direct := monitor.NewCollector()
	directNet, directTraffic := sc.Build()
	directNet.Subscribe(direct.Record)
	if _, err := directNet.Run(rounds, directTraffic); err != nil {
		t.Fatal(err)
	}

	// TCP path through >20% injected faults.
	fcfg := &faultnet.Config{
		Seed:         42,
		CorruptRate:  0.12,
		DropRate:     0.08,
		TruncateRate: 0.04,
	}
	chaos, cs := collectScenario(t, sc, rounds, monitor.DetectorConfig{}, fcfg)

	if cs.Missed != 0 {
		t.Fatalf("chaos lost %d events; replay ring should have recovered all (stats %+v)", cs.Missed, cs)
	}
	directRep, chaosRep := direct.Report(sc.Name), chaos.Report(sc.Name)
	if !reflect.DeepEqual(directRep, chaosRep) {
		t.Errorf("Fig. 2 report differs between direct and chaos paths:\ndirect: %+v\nchaos: %+v", directRep, chaosRep)
	}
	ds, hs := direct.Detector().Summary(), chaos.Detector().Summary()
	if !reflect.DeepEqual(ds, hs) {
		t.Errorf("detector verdict differs between direct and chaos paths:\ndirect: %+v\nchaos: %+v", ds, hs)
	}
	health := monitor.Health(cs, chaos)
	if !health.Complete() {
		t.Errorf("collection incomplete: %v", health)
	}
	if !health.Attacked() || hs.Equivocations == 0 || hs.SuspectedCensoredTxs == 0 {
		t.Errorf("composed chaos+Byzantine run missed the attack: %+v", hs)
	}
	t.Logf("composed run: transport %+v; attack %+v", cs, hs)
}

// TestBenignScenarioStreamBitIdentical pins that the attack engine adds
// nothing to a benign run: a ScenarioConfig with a zero AttackSpec
// emits a byte-identical event stream to a hand-built network of the
// same seed and population.
func TestBenignScenarioStreamBitIdentical(t *testing.T) {
	const rounds = 60
	sc := consensus.ScenarioConfig{Rounds: rounds, Seed: 7}
	scNet, _ := sc.Build()

	spec := consensus.December2015(rounds)
	plain := consensus.NewNetwork(consensus.Config{Seed: 7}, spec.Specs)
	// Build pre-funds the scenario traffic account; mirror it so the
	// state digests line up. Traffic itself is withheld from both runs.
	plain.Engine().Fund(consensus.TrafficAccount(), consensus.ScenarioFunding)

	encode := func(n *consensus.Network) [][]byte {
		var out [][]byte
		n.Subscribe(func(ev consensus.Event) {
			b, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b)
		})
		if _, err := n.Run(rounds, nil); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := encode(scNet), encode(plain)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: scenario %d, plain %d", len(a), len(b))
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("event %d differs:\nscenario: %s\nplain:    %s", i, a[i], b[i])
		}
	}
}
