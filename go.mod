module ripplestudy

go 1.22
