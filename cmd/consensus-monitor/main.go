// Command consensus-monitor is the paper's collection server: it
// connects to a validation stream (cmd/rippled-sim), records every
// validation and ledger-close event, and prints the per-validator
// total/valid page counts of Figure 2.
//
//	consensus-monitor -connect 127.0.0.1:5006 -label "December 2015"
//
// The monitor reads until the stream closes (the simulator finished its
// period) or -max-events is reached. It survives a degraded stream: the
// resilient client reconnects with backoff, resumes from the last seen
// sequence number, skips corrupt frames, and the collector skips
// malformed events. The final collection-health report says whether the
// run was lossless.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ripplestudy/internal/consensus"
	"ripplestudy/internal/monitor"
	"ripplestudy/internal/netstream"
)

func main() {
	connect := flag.String("connect", "127.0.0.1:5006", "validation stream address")
	label := flag.String("label", "collection period", "period label for the report")
	maxEvents := flag.Int("max-events", 0, "stop after this many events (0 = until stream ends)")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of a table")
	retries := flag.Int("retries", 8, "consecutive connection failures before giving up")
	stall := flag.Duration("stall", 30*time.Second, "reconnect if no event arrives for this long (0 = never)")
	flag.Parse()

	if err := run(*connect, *label, *maxEvents, *asJSON, *retries, *stall); err != nil {
		fmt.Fprintln(os.Stderr, "consensus-monitor:", err)
		os.Exit(1)
	}
}

func run(connect, label string, maxEvents int, asJSON bool, retries int, stall time.Duration) error {
	client := netstream.NewResilientClient(connect, netstream.ResilientOptions{
		MaxConsecutiveFailures: retries,
		StallTimeout:           stall,
	})
	fmt.Fprintf(os.Stderr, "consensus-monitor: collecting from %s\n", connect)

	// SIGINT/SIGTERM stop the collection but still flush everything
	// gathered so far — a partial window is a valid (smaller) dataset.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	col := monitor.NewCollector()
	err := client.Run(ctx, func(ev consensus.Event) error {
		col.Record(ev)
		if maxEvents > 0 && col.Events() >= maxEvents {
			return netstream.ErrStop
		}
		return nil
	})
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "consensus-monitor: interrupted, flushing partial collection")
		err = nil
	}
	// A server that finishes its period and exits looks like exhausted
	// retries; the collection up to that point is still the result. But
	// if we never connected at all there is no collection to report.
	if err != nil && (!errors.Is(err, netstream.ErrUnavailable) || client.Stats().Connects == 0) {
		return err
	}
	health := monitor.Health(client.Stats(), col)
	fmt.Fprintf(os.Stderr, "consensus-monitor: %d events collected\n\n", col.Events())
	rep := col.Report(label)
	if asJSON {
		out := struct {
			Report monitor.Report           `json:"report"`
			Health monitor.CollectionHealth `json:"health"`
		}{rep, health}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	if err := rep.WriteTable(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nsummary: %d validators observed, %d active (≥50%% of busiest), %d with zero valid pages\n",
		len(rep.Validators), rep.ActiveCount(0.5), rep.ZeroValidCount())
	fmt.Println()
	return health.WriteReport(os.Stdout)
}
