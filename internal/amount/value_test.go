package amount

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"0", "0"},
		{"0.0", "0"},
		{"-0", "0"},
		{"1", "1"},
		{"-1", "-1"},
		{"42", "42"},
		{"4.5", "4.5"},
		{"-3.14", "-3.14"},
		{"0.001", "0.001"},
		{"1000000", "1000000"},
		{"1e6", "1000000"},
		{"2.5e-3", "0.0025"},
		{"1.23456789", "1.23456789"},
		{"1000000000000000000000000", "1e24"},
		{"0.000000000001", "1e-12"},
		{"+7", "7"},
		{"10.50", "10.5"},
		{"1e22", "1e22"},
	}
	for _, tt := range tests {
		v, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error %v", tt.in, err)
			continue
		}
		if got := v.String(); got != tt.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", ".", "-", "1.2.3", "abc", "1e", "1e+", "--4", "4x"}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error, got nil", in)
		}
	}
}

func TestNormalization(t *testing.T) {
	v := MustValue(5, 0)
	if v.Mantissa() != 5_000_000_000_000_000 || v.Exponent() != -15 {
		t.Errorf("MustValue(5, 0) = %de%d, want normalized 5e15×10^-15", v.Mantissa(), v.Exponent())
	}
	// Underflow to zero rather than error.
	small, err := NewValue(1, MinExponent-20)
	if err != nil || !small.IsZero() {
		t.Errorf("NewValue far below range = (%v, %v), want (0, nil)", small, err)
	}
	// A mantissa already at full width cannot absorb an out-of-range
	// exponent into normalization.
	if _, err := NewValue(int64(MinMantissa), MaxExponent+1); err == nil {
		t.Error("NewValue above range: want ErrOverflow, got nil")
	}
}

func TestAddSub(t *testing.T) {
	tests := []struct {
		a, b, sum string
	}{
		{"0", "0", "0"},
		{"1", "2", "3"},
		{"1.5", "2.25", "3.75"},
		{"-1", "1", "0"},
		{"10", "-4.5", "5.5"},
		{"1e10", "1", "10000000001"},
		{"0.1", "0.2", "0.3"},
		{"123456789", "987654321", "1111111110"},
	}
	for _, tt := range tests {
		a, b := MustParse(tt.a), MustParse(tt.b)
		got, err := a.Add(b)
		if err != nil {
			t.Errorf("%s + %s: %v", tt.a, tt.b, err)
			continue
		}
		if got.String() != tt.sum {
			t.Errorf("%s + %s = %s, want %s", tt.a, tt.b, got, tt.sum)
		}
		back, err := got.Sub(b)
		if err != nil {
			t.Errorf("(%s) - %s: %v", got, tt.b, err)
			continue
		}
		if back.Cmp(a) != 0 {
			t.Errorf("(%s + %s) - %s = %s, want %s", tt.a, tt.b, tt.b, back, tt.a)
		}
	}
}

func TestAddFarApartExponents(t *testing.T) {
	big := MustParse("1e30")
	tiny := MustParse("1e-30")
	sum, err := big.Add(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cmp(big) != 0 {
		t.Errorf("1e30 + 1e-30 = %s, want 1e30 (tiny operand below precision)", sum)
	}
}

func TestMulDiv(t *testing.T) {
	tests := []struct {
		a, b, mul string
	}{
		{"2", "3", "6"},
		{"1.5", "4", "6"},
		{"0.5", "0.5", "0.25"},
		{"-2", "3", "-6"},
		{"1e8", "1e8", "10000000000000000"},
		{"4.5", "0", "0"},
	}
	for _, tt := range tests {
		a, b := MustParse(tt.a), MustParse(tt.b)
		got, err := a.Mul(b)
		if err != nil {
			t.Errorf("%s × %s: %v", tt.a, tt.b, err)
			continue
		}
		if got.String() != tt.mul {
			t.Errorf("%s × %s = %s, want %s", tt.a, tt.b, got, tt.mul)
		}
		if b.IsZero() {
			continue
		}
		back, err := got.Div(b)
		if err != nil {
			t.Errorf("%s ÷ %s: %v", got, tt.b, err)
			continue
		}
		if back.Cmp(a) != 0 {
			t.Errorf("(%s × %s) ÷ %s = %s, want %s", tt.a, tt.b, tt.b, back, tt.a)
		}
	}
	if _, err := MustParse("1").Div(Zero); err != ErrDivisionByZero {
		t.Errorf("1 ÷ 0: err = %v, want ErrDivisionByZero", err)
	}
}

func TestCmp(t *testing.T) {
	order := []string{"-1e10", "-2", "-0.5", "0", "1e-9", "0.5", "2", "3", "1e10"}
	for i, si := range order {
		for j, sj := range order {
			a, b := MustParse(si), MustParse(sj)
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := a.Cmp(b); got != want {
				t.Errorf("Cmp(%s, %s) = %d, want %d", si, sj, got, want)
			}
		}
	}
}

func TestRoundToPow10(t *testing.T) {
	tests := []struct {
		in   string
		p    int
		want string
	}{
		{"4.5", 0, "5"}, // round half away from zero
		{"4.4", 0, "4"},
		{"-4.5", 0, "-5"},
		{"1234", 1, "1230"},
		{"1235", 1, "1240"},
		{"1234", 2, "1200"},
		{"1254", 2, "1300"},
		{"1234", 3, "1000"},
		{"123", 3, "0"},    // below half of 10^3
		{"567", 3, "1000"}, // above half of 10^3
		{"0.0234", -2, "0.02"},
		{"0.0254", -2, "0.03"},
		{"0.0234", -3, "0.023"},
		{"1000", 2, "1000"}, // already a multiple
		{"0", 5, "0"},
		{"123456789", 5, "123500000"},
		{"1e-30", 0, "0"},
	}
	for _, tt := range tests {
		got := MustParse(tt.in).RoundToPow10(tt.p)
		if got.String() != tt.want {
			t.Errorf("RoundToPow10(%s, %d) = %s, want %s", tt.in, tt.p, got, tt.want)
		}
	}
}

func TestFloat64(t *testing.T) {
	tests := []struct {
		in   string
		want float64
	}{
		{"0", 0},
		{"4.5", 4.5},
		{"-3.25", -3.25},
		{"1e9", 1e9},
	}
	for _, tt := range tests {
		got := MustParse(tt.in).Float64()
		if math.Abs(got-tt.want) > 1e-9*math.Abs(tt.want) {
			t.Errorf("Float64(%s) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestFromFloat64(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 4.5, 0.001, 123456.789, -9.75e8} {
		v, err := FromFloat64(f)
		if err != nil {
			t.Fatalf("FromFloat64(%v): %v", f, err)
		}
		if got := v.Float64(); math.Abs(got-f) > 1e-9*math.Abs(f) {
			t.Errorf("round-trip %v -> %v", f, got)
		}
	}
	if _, err := FromFloat64(math.NaN()); err == nil {
		t.Error("FromFloat64(NaN): want error")
	}
	if _, err := FromFloat64(math.Inf(1)); err == nil {
		t.Error("FromFloat64(+Inf): want error")
	}
}

// randomValue generates a Value within moderate exponent range, suitable
// for property tests that add and multiply without hitting the range
// limits.
func randomValue(r *rand.Rand) Value {
	m := int64(r.Uint64() % 9_000_000_000_000_000)
	if r.Intn(2) == 0 {
		m = -m
	}
	e := r.Intn(20) - 10
	v, err := NewValue(m, e)
	if err != nil {
		return Value{}
	}
	return v
}

func TestPropStringRoundTrip(t *testing.T) {
	f := func(mant int64, exp8 int8) bool {
		e := int(exp8 % 30)
		v, err := NewValue(mant, e)
		if err != nil {
			return true // out of range inputs are not round-trippable
		}
		back, err := Parse(v.String())
		if err != nil {
			return false
		}
		return back.Cmp(v) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropAddCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randomValue(r), randomValue(r)
		x, err1 := a.Add(b)
		y, err2 := b.Add(a)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("a+b and b+a disagree on error: %v vs %v", err1, err2)
		}
		if err1 == nil && x.Cmp(y) != 0 {
			t.Fatalf("%s + %s = %s but %s + %s = %s", a, b, x, b, a, y)
		}
	}
}

func TestPropNegIsInverse(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a := randomValue(r)
		sum, err := a.Add(a.Neg())
		if err != nil {
			t.Fatal(err)
		}
		if !sum.IsZero() {
			t.Fatalf("%s + (-%s) = %s, want 0", a, a, sum)
		}
	}
}

func TestPropCmpAntisymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a, b := randomValue(r), randomValue(r)
		if a.Cmp(b) != -b.Cmp(a) {
			t.Fatalf("Cmp(%s,%s)=%d but Cmp(%s,%s)=%d", a, b, a.Cmp(b), b, a, b.Cmp(a))
		}
	}
}

func TestPropRoundIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		a := randomValue(r)
		p := r.Intn(12) - 6
		once := a.RoundToPow10(p)
		twice := once.RoundToPow10(p)
		if once.Cmp(twice) != 0 {
			t.Fatalf("rounding not idempotent: %s -> %s -> %s (p=%d)", a, once, twice, p)
		}
	}
}

func TestPropRoundErrorBounded(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		a := randomValue(r)
		p := r.Intn(8) - 4
		rounded := a.RoundToPow10(p)
		diff, err := a.Sub(rounded)
		if err != nil {
			t.Fatal(err)
		}
		// |a - round(a)| must be at most half of 10^p (plus one ulp of
		// slack for the decimal representation).
		half := MustValue(5, p-1)
		slack := MustValue(1, p-15)
		bound, err := half.Add(slack)
		if err != nil {
			t.Fatal(err)
		}
		if diff.Abs().Cmp(bound) > 0 {
			t.Fatalf("|%s - %s| = %s exceeds %s (p=%d)", a, rounded, diff.Abs(), bound, p)
		}
	}
}

func TestPropMulDivRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		a, b := randomValue(r), randomValue(r)
		if b.IsZero() {
			continue
		}
		prod, err := a.Mul(b)
		if err != nil {
			continue
		}
		back, err := prod.Div(b)
		if err != nil {
			t.Fatal(err)
		}
		// Allow one part in 1e14 of relative error from the two
		// roundings.
		diff, err := back.Sub(a)
		if err != nil {
			t.Fatal(err)
		}
		if a.IsZero() {
			if !back.IsZero() {
				t.Fatalf("0×%s÷%s = %s, want 0", b, b, back)
			}
			continue
		}
		rel, err := diff.Abs().Div(a.Abs())
		if err != nil {
			t.Fatal(err)
		}
		if rel.Cmp(MustValue(1, -14)) > 0 {
			t.Fatalf("(%s × %s) ÷ %s = %s, relative error %s", a, b, b, back, rel)
		}
	}
}
