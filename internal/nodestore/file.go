package nodestore

import (
	"bufio"
	"fmt"
	"os"

	"ripplestudy/internal/ledger"
)

// FileWriter is the batch-writing file backend: records append through
// a buffered writer, duplicates (by hash) are skipped, and Close
// flushes and syncs. A replay checkpoint streams one seal's new tree
// nodes through it and renames the finished file into place.
type FileWriter struct {
	f     *os.File
	w     *bufio.Writer
	seen  map[ledger.Hash]struct{}
	buf   []byte
	bytes int64
}

// CreateFile opens a new batch file for writing. The path must not
// exist (batches are immutable once written).
func CreateFile(path string) (*FileWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileWriter{
		f:    f,
		w:    bufio.NewWriterSize(f, 1<<16),
		seen: make(map[ledger.Hash]struct{}),
	}, nil
}

// Put appends one record; a hash already written to this file is
// skipped. The payload is only borrowed for the call.
func (fw *FileWriter) Put(h ledger.Hash, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("nodestore: payload of %d bytes exceeds cap", len(payload))
	}
	if _, dup := fw.seen[h]; dup {
		return nil
	}
	fw.seen[h] = struct{}{}
	fw.buf = AppendRecord(fw.buf[:0], h, payload)
	n, err := fw.w.Write(fw.buf)
	fw.bytes += int64(n)
	return err
}

// Len returns the number of distinct records written.
func (fw *FileWriter) Len() int { return len(fw.seen) }

// Bytes returns the encoded size written so far.
func (fw *FileWriter) Bytes() int64 { return fw.bytes }

// Close flushes, syncs, and closes the file.
func (fw *FileWriter) Close() error {
	flushErr := fw.w.Flush()
	syncErr := fw.f.Sync()
	closeErr := fw.f.Close()
	if flushErr != nil {
		return flushErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// FileStore is the read side of a batch file: OpenFile loads the file,
// CRC-checks every record, and indexes payload spans by hash. Batch
// files are bounded (one seal's changed nodes), so whole-file loading
// is both the simplest and the fastest shape for a checkpoint restore,
// which reads every node exactly once anyway.
type FileStore struct {
	data []byte
	idx  map[ledger.Hash][2]int // payload span: offset, length
}

// OpenFile loads and indexes a batch file written by FileWriter. Any
// framing or CRC damage fails the open — a checkpoint loader falls back
// to an older checkpoint (or a cold replay) rather than trusting a
// torn batch.
func OpenFile(path string) (*FileStore, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := &FileStore{data: data, idx: make(map[ledger.Hash][2]int)}
	rest := data
	for len(rest) > 0 {
		h, payload, next, err := DecodeRecord(rest)
		if err != nil {
			return nil, fmt.Errorf("nodestore: %s: %w", path, err)
		}
		off := len(data) - len(rest) + recordHeader
		s.idx[h] = [2]int{off, len(payload)}
		rest = next
	}
	return s, nil
}

// Get implements Getter. The returned slice aliases the loaded file.
func (s *FileStore) Get(h ledger.Hash) ([]byte, error) {
	span, ok := s.idx[h]
	if !ok {
		return nil, ErrNotFound
	}
	return s.data[span[0] : span[0]+span[1]], nil
}

// Len returns the number of records in the file.
func (s *FileStore) Len() int { return len(s.idx) }
