package payment

import (
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/shamap"
)

// mapStore is a minimal content-addressed sink for WriteNewStateNodes.
type mapStore map[ledger.Hash][]byte

func (m mapStore) put(h ledger.Hash, data []byte) error {
	m[h] = append([]byte(nil), data...)
	return nil
}

func (m mapStore) get(h ledger.Hash) ([]byte, error) {
	d, ok := m[h]
	if !ok {
		return nil, shamap.ErrUnsealed // any error will do for a missing node
	}
	return d, nil
}

// stateWorkload drives a fixed scripted sequence through every
// state-mutating path — funding, XRP transfer, trust lines, rippling,
// offers (partial fill, full consumption, cancel), cross-currency
// bridging, and a failing payment that still burns a fee. after (may be
// nil) runs after each step.
func stateWorkload(t *testing.T, e *Engine, after func(step int)) {
	t.Helper()
	step := 0
	tick := func() {
		if after != nil {
			after(step)
		}
		step++
	}
	src, mm, dst, rip := kp(1), kp(2), kp(3), kp(4)
	for _, h := range []*addr.KeyPair{src, mm, dst, rip} {
		e.Fund(h.AccountID(), 1_000_000_000)
		tick()
	}
	submit(t, e, src, func(tx *ledger.Tx) { // XRP transfer
		tx.Type = ledger.TxPayment
		tx.Destination = dst.AccountID()
		tx.Amount = amount.New(amount.XRP, val("25"))
	})
	tick()
	submit(t, e, mm, func(tx *ledger.Tx) { // mm trusts src in EUR
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = src.AccountID()
		tx.Limit = amount.New(amount.EUR, val("1000"))
	})
	tick()
	submit(t, e, dst, func(tx *ledger.Tx) { // dst trusts mm in USD
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = mm.AccountID()
		tx.Limit = amount.New(amount.USD, val("1000"))
	})
	tick()
	submit(t, e, rip, func(tx *ledger.Tx) { // rip trusts dst in USD
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = dst.AccountID()
		tx.Limit = amount.New(amount.USD, val("500"))
	})
	tick()
	submit(t, e, mm, func(tx *ledger.Tx) { // mm sells 100 USD for 90 EUR
		tx.Type = ledger.TxOfferCreate
		tx.TakerPays = amount.New(amount.EUR, val("90"))
		tx.TakerGets = amount.New(amount.USD, val("100"))
	})
	tick()
	meta := submit(t, e, src, func(tx *ledger.Tx) { // partial fill
		tx.Type = ledger.TxPayment
		tx.Destination = dst.AccountID()
		tx.Amount = amount.New(amount.USD, val("50"))
		tx.SendMax = amount.New(amount.EUR, val("60"))
	})
	if !meta.Result.Succeeded() {
		t.Fatalf("cross-currency payment: %s", meta.Result)
	}
	tick()
	meta = submit(t, e, dst, func(tx *ledger.Tx) { // rippled IOU payment
		tx.Type = ledger.TxPayment
		tx.Destination = rip.AccountID()
		tx.Amount = amount.New(amount.USD, val("7"))
	})
	if !meta.Result.Succeeded() {
		t.Fatalf("IOU payment: %s", meta.Result)
	}
	tick()
	submit(t, e, mm, func(tx *ledger.Tx) { // an offer that will be cancelled
		tx.Type = ledger.TxOfferCreate
		tx.TakerPays = amount.New(amount.EUR, val("500"))
		tx.TakerGets = amount.New(amount.USD, val("400"))
	})
	tick()
	cancelSeq := e.NextSequence(mm.AccountID()) - 1
	submit(t, e, mm, func(tx *ledger.Tx) {
		tx.Type = ledger.TxOfferCancel
		tx.OfferSequence = cancelSeq
	})
	tick()
	meta = submit(t, e, src, func(tx *ledger.Tx) { // consume the residual offer fully
		tx.Type = ledger.TxPayment
		tx.Destination = dst.AccountID()
		tx.Amount = amount.New(amount.USD, val("50"))
		tx.SendMax = amount.New(amount.EUR, val("60"))
	})
	if !meta.Result.Succeeded() {
		t.Fatalf("full-fill payment: %s", meta.Result)
	}
	tick()
	meta = submit(t, e, src, func(tx *ledger.Tx) { // fails path-dry, still burns a fee
		tx.Type = ledger.TxPayment
		tx.Destination = dst.AccountID()
		tx.Amount = amount.New(amount.USD, val("9999"))
	})
	if meta.Result != ledger.ResultPathDry {
		t.Fatalf("overdrawn payment: %s, want tecPATH_DRY", meta.Result)
	}
	tick()
}

func TestStateRootPureFunctionOfState(t *testing.T) {
	everySteps := NewEngine(WithStateTree())
	stateWorkload(t, everySteps, func(int) {
		if _, err := everySteps.SealState(); err != nil {
			t.Fatal(err)
		}
	})
	rootA, err := everySteps.SealState()
	if err != nil {
		t.Fatal(err)
	}

	once := NewEngine(WithStateTree())
	stateWorkload(t, once, nil)
	rootB, err := once.SealState()
	if err != nil {
		t.Fatal(err)
	}
	if rootA.IsZero() {
		t.Fatal("workload sealed to the zero root")
	}
	if rootA != rootB {
		t.Fatalf("seal cadence changed the root: %s vs %s", rootA.Short(), rootB.Short())
	}

	// A tree enabled only after the fact commits to the same state.
	late := NewEngine()
	stateWorkload(t, late, nil)
	late.EnableStateTree()
	rootC, err := late.SealState()
	if err != nil {
		t.Fatal(err)
	}
	if rootC != rootA {
		t.Fatalf("late-enabled tree root %s, want %s", rootC.Short(), rootA.Short())
	}
}

// continueWorkload applies a few more transactions — used to check that
// a restored engine behaves exactly like the original going forward.
func continueWorkload(t *testing.T, e *Engine) {
	t.Helper()
	src, mm, dst := kp(1), kp(2), kp(3)
	submit(t, e, mm, func(tx *ledger.Tx) {
		tx.Type = ledger.TxOfferCreate
		tx.TakerPays = amount.New(amount.EUR, val("30"))
		tx.TakerGets = amount.New(amount.USD, val("25"))
	})
	meta := submit(t, e, src, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = dst.AccountID()
		tx.Amount = amount.New(amount.USD, val("10"))
		tx.SendMax = amount.New(amount.EUR, val("15"))
	})
	if !meta.Result.Succeeded() {
		t.Fatalf("continuation payment: %s", meta.Result)
	}
	submit(t, e, dst, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = src.AccountID()
		tx.Amount = amount.New(amount.XRP, val("3"))
	})
}

func TestRestoreEngineRoundTrip(t *testing.T) {
	orig := NewEngine(WithStateTree())
	store := mapStore{}
	// Seal and persist incrementally, as the checkpoint writer does.
	stateWorkload(t, orig, func(int) {
		if _, err := orig.SealState(); err != nil {
			t.Fatal(err)
		}
		if _, err := orig.WriteNewStateNodes(store.put); err != nil {
			t.Fatal(err)
		}
	})
	root, err := orig.SealState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orig.WriteNewStateNodes(store.put); err != nil {
		t.Fatal(err)
	}

	tree, err := shamap.Load(root, store.get)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(tree, RestoreScalars{
		TotalDrops:    orig.TotalDrops(),
		FeesDestroyed: orig.FeesDestroyed(),
		StateDigest:   orig.StateDigest(),
	})
	if err != nil {
		t.Fatal(err)
	}

	for seed := uint64(1); seed <= 4; seed++ {
		a := kp(seed).AccountID()
		if got, want := restored.XRPBalance(a), orig.XRPBalance(a); got != want {
			t.Errorf("account %d: balance %d, want %d", seed, got, want)
		}
		if got, want := restored.NextSequence(a), orig.NextSequence(a); got != want {
			t.Errorf("account %d: sequence %d, want %d", seed, got, want)
		}
	}
	if got, want := restored.XRPBalance(addr.AccountZero), orig.XRPBalance(addr.AccountZero); got != want {
		t.Errorf("ACCOUNT_ZERO balance %d, want %d", got, want)
	}
	if got, want := restored.Books().NumOffers(), orig.Books().NumOffers(); got != want {
		t.Errorf("restored %d offers, want %d", got, want)
	}
	if got, want := restored.Graph().NumPairs(), orig.Graph().NumPairs(); got != want {
		t.Errorf("restored %d trust pairs, want %d", got, want)
	}
	if restored.StateDigest() != orig.StateDigest() {
		t.Error("restored digest differs")
	}
	if restored.StateRoot() != root {
		t.Errorf("restored root %s, want %s", restored.StateRoot().Short(), root.Short())
	}

	// The restored engine must be indistinguishable going forward: same
	// transactions, same digests, same roots.
	continueWorkload(t, orig)
	continueWorkload(t, restored)
	if restored.StateDigest() != orig.StateDigest() {
		t.Fatal("digests diverged after continuation")
	}
	origRoot, err := orig.SealState()
	if err != nil {
		t.Fatal(err)
	}
	restoredRoot, err := restored.SealState()
	if err != nil {
		t.Fatal(err)
	}
	if origRoot != restoredRoot {
		t.Fatalf("roots diverged after continuation: %s vs %s", origRoot.Short(), restoredRoot.Short())
	}
}

func TestRestoreAfterMarketMakerAblation(t *testing.T) {
	orig := NewEngine(WithStateTree())
	stateWorkload(t, orig, nil)
	// Leave a standing offer so the ablation has something to remove.
	mm := kp(2)
	submit(t, orig, mm, func(tx *ledger.Tx) {
		tx.Type = ledger.TxOfferCreate
		tx.TakerPays = amount.New(amount.EUR, val("10"))
		tx.TakerGets = amount.New(amount.USD, val("10"))
	})
	removed := orig.RemoveMarketMakers()
	if len(removed) == 0 {
		t.Fatal("nothing removed")
	}
	root, err := orig.SealState()
	if err != nil {
		t.Fatal(err)
	}
	store := mapStore{}
	if _, err := orig.WriteNewStateNodes(store.put); err != nil {
		t.Fatal(err)
	}
	tree, err := shamap.Load(root, store.get)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(tree, RestoreScalars{
		TotalDrops:    orig.TotalDrops(),
		FeesDestroyed: orig.FeesDestroyed(),
		StateDigest:   orig.StateDigest(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Books().NumOffers() != 0 {
		t.Error("offers resurrected through restore")
	}
	if restored.AccountExists(mm.AccountID()) {
		t.Error("removed market maker resurrected")
	}
	rootAgain, err := restored.SealState()
	if err != nil {
		t.Fatal(err)
	}
	if rootAgain != root {
		t.Fatalf("restored re-seal %s, want %s", rootAgain.Short(), root.Short())
	}
}

func TestRestoreRejectsScalarMismatch(t *testing.T) {
	orig := NewEngine(WithStateTree())
	stateWorkload(t, orig, nil)
	root, err := orig.SealState()
	if err != nil {
		t.Fatal(err)
	}
	store := mapStore{}
	if _, err := orig.WriteNewStateNodes(store.put); err != nil {
		t.Fatal(err)
	}
	tree, err := shamap.Load(root, store.get)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreEngine(tree, RestoreScalars{
		TotalDrops:    orig.TotalDrops() + 1,
		FeesDestroyed: orig.FeesDestroyed(),
		StateDigest:   orig.StateDigest(),
	}); err == nil {
		t.Fatal("mismatched supply accepted")
	}
}

func TestStateTreeAbsent(t *testing.T) {
	e := NewEngine()
	if e.HasStateTree() {
		t.Fatal("plain engine claims a state tree")
	}
	if _, err := e.SealState(); err != ErrNoStateTree {
		t.Fatalf("SealState err = %v, want ErrNoStateTree", err)
	}
	if _, err := e.WriteNewStateNodes(func(ledger.Hash, []byte) error { return nil }); err != ErrNoStateTree {
		t.Fatalf("WriteNewStateNodes err = %v, want ErrNoStateTree", err)
	}
	if !e.StateRoot().IsZero() {
		t.Fatal("plain engine has a state root")
	}
}
