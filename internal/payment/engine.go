// Package payment implements the transaction engine: it validates
// submitted transactions against the account state, executes payments
// along planned paths (trust flows, order-book fills, XRP transfers),
// maintains XRP balances and per-account sequence numbers, destroys fees,
// and records the execution metadata the analyses consume.
package payment

import (
	"fmt"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/orderbook"
	"ripplestudy/internal/pathfind"
	"ripplestudy/internal/trustgraph"
)

// BaseFee is the minimum XRP fee destroyed per transaction, mirroring
// Ripple's anti-spam design: "A small XRP fee is indeed collected for
// each transaction ... destroyed after the corresponding transaction is
// confirmed."
const BaseFee amount.Drops = 10

// Engine owns the mutable ledger state: the credit network, the order
// books, XRP balances, and account sequences. It is not safe for
// concurrent use; consensus serializes transaction application.
type Engine struct {
	graph *trustgraph.Graph
	books *orderbook.Books
	xrp   map[addr.AccountID]amount.Drops
	seq   map[addr.AccountID]uint32 // next expected sequence per account

	finder *pathfind.Finder

	totalDrops    uint64 // XRP in existence (shrinks as fees burn)
	feesDestroyed amount.Drops

	verifySignatures bool

	// lastPlan is the path plan executed by the most recent successful
	// payment (nil otherwise). Optimistic replay reads it to mark the
	// state a re-planned payment touched.
	lastPlan *pathfind.Plan

	// stateDigest chains applied transaction hashes into a deterministic
	// state fingerprint. Hashing the full state on every ledger close
	// would be quadratic; the chained digest preserves the property the
	// consensus needs: equal histories ⇒ equal digests.
	stateDigest ledger.Hash

	// state is the optional authenticated state tree and its mutation
	// journal (state.go); nil unless WithStateTree/EnableStateTree.
	state *stateJournal
}

// Option configures an Engine.
type Option func(*Engine)

// WithPathfinding overrides the path finder's bounds.
func WithPathfinding(opts ...pathfind.Option) Option {
	return func(e *Engine) {
		e.finder = pathfind.New(e.graph, e.books, opts...)
	}
}

// WithSignatureVerification makes Apply reject transactions whose
// signature is missing or invalid (ResultMalformed), except for
// ACCOUNT_ZERO, whose secret key is public and whose transactions the
// network accepts regardless. Histories generated with SkipSignatures
// cannot be replayed through a verifying engine.
func WithSignatureVerification() Option {
	return func(e *Engine) { e.verifySignatures = true }
}

// NewEngine creates an engine with the full XRP supply in ACCOUNT_ZERO,
// as at Ripple's genesis.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		graph:      trustgraph.New(),
		books:      orderbook.New(),
		xrp:        make(map[addr.AccountID]amount.Drops),
		seq:        make(map[addr.AccountID]uint32),
		totalDrops: ledger.GenesisTotalDrops,
	}
	e.xrp[addr.AccountZero] = amount.Drops(ledger.GenesisTotalDrops)
	e.seq[addr.AccountZero] = 1
	e.finder = pathfind.New(e.graph, e.books)
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Graph exposes the credit network (mutate only through transactions).
func (e *Engine) Graph() *trustgraph.Graph { return e.graph }

// Books exposes the order books (mutate only through transactions).
func (e *Engine) Books() *orderbook.Books { return e.books }

// XRPBalance returns the account's XRP in drops.
func (e *Engine) XRPBalance(a addr.AccountID) amount.Drops { return e.xrp[a] }

// AccountExists reports whether the account has been funded.
func (e *Engine) AccountExists(a addr.AccountID) bool {
	_, ok := e.seq[a]
	return ok
}

// NextSequence returns the sequence number the account must use next.
func (e *Engine) NextSequence(a addr.AccountID) uint32 { return e.seq[a] }

// TotalDrops returns the XRP supply remaining in existence.
func (e *Engine) TotalDrops() uint64 { return e.totalDrops }

// FeesDestroyed returns the cumulative drops burned as fees.
func (e *Engine) FeesDestroyed() amount.Drops { return e.feesDestroyed }

// StateDigest returns the deterministic fingerprint of the state history.
func (e *Engine) StateDigest() ledger.Hash { return e.stateDigest }

// Clone deep-copies the engine for replay experiments (Table II). The
// clone does not carry the state tree: ablated copies diverge from the
// sealed history, and none of the cloning call sites checkpoint.
func (e *Engine) Clone() *Engine {
	out := &Engine{
		graph:            e.graph.Clone(),
		books:            e.books.Clone(),
		xrp:              make(map[addr.AccountID]amount.Drops, len(e.xrp)),
		seq:              make(map[addr.AccountID]uint32, len(e.seq)),
		totalDrops:       e.totalDrops,
		feesDestroyed:    e.feesDestroyed,
		stateDigest:      e.stateDigest,
		verifySignatures: e.verifySignatures,
	}
	for k, v := range e.xrp {
		out.xrp[k] = v
	}
	for k, v := range e.seq {
		out.seq[k] = v
	}
	out.finder = pathfind.New(out.graph, out.books)
	return out
}

// RemoveMarketMakers deletes every account with standing offers — and
// the offers themselves — from the state: the paper's Table II ablation
// ("we remove them and the exchange orders from the system").
// It returns the removed accounts.
func (e *Engine) RemoveMarketMakers() []addr.AccountID {
	var mms []addr.AccountID
	e.books.Owners(func(owner addr.AccountID, _ int) { mms = append(mms, owner) })
	for _, mm := range mms {
		// Journal everything the removal touches while it still exists.
		e.markAccount(mm)
		e.graph.PairsOf(mm, func(p *trustgraph.Pair) { e.markPair(p.Lo, p.Hi, p.Currency) })
		e.books.EachOf(mm, func(o *orderbook.Offer) { e.markOffer(o.Owner, o.Seq) })
		e.books.RemoveOwner(mm)
		e.graph.RemoveAccount(mm)
		delete(e.xrp, mm)
		delete(e.seq, mm)
	}
	return mms
}

// Apply validates and executes one transaction, returning its metadata.
// Failed transactions (non-tesSUCCESS metadata) still consume a fee and a
// sequence number when structurally valid, as in Ripple; structurally
// invalid ones return ResultMalformed or ResultBadSequence without
// touching state. Apply itself errors only on internal inconsistencies.
func (e *Engine) Apply(tx *ledger.Tx) (*ledger.TxMeta, error) {
	return e.apply(tx, nil, false)
}

// ApplyPlanned applies a payment using a path plan computed ahead of
// time (by an optimistic planner against a snapshot whose read set is
// known to be untouched), skipping the pathfinding step. A nil plan
// means planning found no path (ResultPathDry) — the live pre-checks
// (signature, sequence, fee, destination, funding) still run first, so
// the outcome is exactly what Apply would have produced. For
// non-payment transactions the plan is ignored and ApplyPlanned behaves
// as Apply.
//
// The plan's quotes must reference offers standing in THIS engine's
// books (remap snapshot fills via Books().Lookup before calling).
func (e *Engine) ApplyPlanned(tx *ledger.Tx, plan *pathfind.Plan) (*ledger.TxMeta, error) {
	return e.apply(tx, plan, true)
}

// ExecutedPlan returns the path plan executed by the most recent
// successful payment, or nil if the last transaction was not a
// delivered payment. Valid until the next Apply.
func (e *Engine) ExecutedPlan() *pathfind.Plan { return e.lastPlan }

func (e *Engine) apply(tx *ledger.Tx, plan *pathfind.Plan, havePlan bool) (*ledger.TxMeta, error) {
	meta := &ledger.TxMeta{}
	e.lastPlan = nil

	// Signature discipline (when enabled). ACCOUNT_ZERO's key is
	// public; the network accepts its transactions unsigned, which is
	// exactly what made its spam traffic possible.
	if e.verifySignatures && tx.Account != addr.AccountZero && !tx.VerifySignature() {
		meta.Result = ledger.ResultMalformed
		return meta, nil
	}

	// Sequence discipline. Unknown senders can never have funds, so they
	// fail as unfunded before sequence checks (their account does not
	// exist).
	next, known := e.seq[tx.Account]
	if !known {
		meta.Result = ledger.ResultUnfunded
		return meta, nil
	}
	if tx.Sequence != next {
		meta.Result = ledger.ResultBadSequence
		return meta, nil
	}

	// Fee: the sender burns max(BaseFee, tx.Fee) drops.
	fee := tx.Fee
	if fee < BaseFee {
		fee = BaseFee
	}
	if e.xrp[tx.Account] < fee {
		meta.Result = ledger.ResultUnfunded
		return meta, nil
	}
	e.xrp[tx.Account] -= fee
	e.feesDestroyed += fee
	e.totalDrops -= uint64(fee)
	e.seq[tx.Account] = next + 1
	e.markAccount(tx.Account)

	switch tx.Type {
	case ledger.TxPayment:
		e.applyPayment(tx, meta, plan, havePlan)
	case ledger.TxOfferCreate:
		e.applyOfferCreate(tx, meta)
	case ledger.TxOfferCancel:
		if e.books.Cancel(tx.Account, tx.OfferSequence) {
			e.markOffer(tx.Account, tx.OfferSequence)
		}
		meta.Result = ledger.ResultSuccess
	case ledger.TxTrustSet:
		if err := e.graph.SetTrust(tx.Account, tx.LimitPeer, tx.Limit.Currency, tx.Limit.Value); err != nil {
			meta.Result = ledger.ResultMalformed
		} else {
			e.markPair(tx.Account, tx.LimitPeer, tx.Limit.Currency)
			meta.Result = ledger.ResultSuccess
		}
	case ledger.TxAccountSet:
		meta.Result = ledger.ResultSuccess
	default:
		meta.Result = ledger.ResultMalformed
	}

	// Fold the applied transaction into the state digest.
	h := tx.Hash()
	var buf []byte
	buf = append(buf, e.stateDigest[:]...)
	buf = append(buf, h[:]...)
	buf = append(buf, byte(meta.Result))
	e.stateDigest = ledger.SHA512Half(buf)
	return meta, nil
}

// applyPayment executes a Payment transaction. When havePlan is true the
// provided plan (possibly nil = path dry) replaces the pathfinding step;
// every stateful check still runs against live state.
func (e *Engine) applyPayment(tx *ledger.Tx, meta *ledger.TxMeta, plan *pathfind.Plan, havePlan bool) {
	if !tx.Amount.Value.IsPositive() || tx.Destination == tx.Account {
		meta.Result = ledger.ResultMalformed
		return
	}
	srcCur := tx.Amount.Currency
	if !tx.SendMax.IsZero() {
		srcCur = tx.SendMax.Currency
	}

	// Direct XRP → XRP: a balance transfer, no paths, no cooperation.
	if srcCur.IsXRP() && tx.Amount.Currency.IsXRP() {
		drops, err := amount.DropsFromValue(tx.Amount.Value)
		if err != nil || drops <= 0 {
			meta.Result = ledger.ResultMalformed
			return
		}
		if e.xrp[tx.Account] < drops {
			meta.Result = ledger.ResultUnfunded
			return
		}
		e.xrp[tx.Account] -= drops
		e.creditXRP(tx.Destination, drops)
		meta.Result = ledger.ResultSuccess
		meta.Delivered = tx.Amount
		return
	}

	// IOU payments need an existing destination.
	if !e.AccountExists(tx.Destination) && !tx.Amount.Currency.IsXRP() {
		meta.Result = ledger.ResultNoDestination
		return
	}

	if havePlan {
		if plan == nil {
			meta.Result = ledger.ResultPathDry
			return
		}
	} else {
		var err error
		plan, err = e.finder.FindPayment(tx.Account, tx.Destination, srcCur, tx.Amount)
		if err != nil {
			meta.Result = ledger.ResultPathDry
			return
		}
	}
	if plan.Delivered.Cmp(tx.Amount.Value) < 0 {
		meta.Result = ledger.ResultPathDry
		return
	}
	// SendMax bounds the source-side cost.
	if !tx.SendMax.IsZero() && plan.SourceCost.Cmp(tx.SendMax.Value) > 0 {
		meta.Result = ledger.ResultPathDry
		return
	}
	// The XRP legs must be funded before committing anything.
	if srcCur.IsXRP() {
		need, err := amount.DropsFromValue(plan.SourceCost)
		if err != nil || e.xrp[tx.Account] < need {
			meta.Result = ledger.ResultUnfunded
			return
		}
	}
	if err := e.executePlan(plan); err != nil {
		// The plan was computed against current state and the engine is
		// single-threaded, so execution failure is an internal bug; fail
		// the transaction and surface the inconsistency in the result.
		meta.Result = ledger.ResultPathDry
		return
	}
	e.lastPlan = plan
	meta.Result = ledger.ResultSuccess
	meta.Delivered = amount.New(tx.Amount.Currency, plan.Delivered)
	meta.CrossCurrency = plan.UsedBridge && plan.SrcCurrency != plan.Currency
	for _, p := range plan.Paths {
		h := p.Hops
		if h < 0 {
			h = 0
		}
		if h > 255 {
			h = 255
		}
		meta.PathHops = append(meta.PathHops, uint8(h))
	}
	for _, q := range plan.Quotes {
		meta.OffersConsumed += uint32(len(q.Fills))
	}
	meta.Intermediaries = planIntermediaries(plan)
}

// planIntermediaries collects the accounts a plan crosses between sender
// and destination — trust-flow endpoints and consumed-offer owners —
// counted once per parallel path they appear on (Figure 7(a) ranks
// accounts by "the number of times each of them serve as intermediate
// hop", so an account carrying three parallel paths counts three times).
func planIntermediaries(plan *pathfind.Plan) []addr.AccountID {
	type pathAccount struct {
		path int
		a    addr.AccountID
	}
	seen := make(map[pathAccount]bool)
	var out []addr.AccountID
	add := func(path int, a addr.AccountID) {
		if a == plan.Src || a == plan.Dst {
			return
		}
		k := pathAccount{path: path, a: a}
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, a)
	}
	for _, fl := range plan.TrustFlows {
		add(fl.Path, fl.From)
		add(fl.Path, fl.To)
	}
	// Offer owners count once per fill, on synthetic path ids beyond the
	// trust paths'.
	fillPath := 1 << 20
	for _, q := range plan.Quotes {
		for _, f := range q.Fills {
			add(fillPath, f.Offer.Owner)
			fillPath++
		}
	}
	return out
}

// executePlan commits a plan: trust flows, order-book fills, and the XRP
// legs of bridged conversions. Execution is atomic: if any step fails —
// which would indicate the plan raced state it was computed against —
// every already-applied step is compensated in reverse order and the
// state is exactly as before the call.
func (e *Engine) executePlan(plan *pathfind.Plan) (err error) {
	var undo []func()
	defer func() {
		if err == nil {
			return
		}
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
	}()

	for _, fl := range plan.TrustFlows {
		fl := fl
		if err = e.graph.ApplyFlow(fl.From, fl.To, fl.Currency, fl.Value); err != nil {
			return fmt.Errorf("payment: trust flow: %w", err)
		}
		e.markPair(fl.From, fl.To, fl.Currency)
		undo = append(undo, func() {
			// A flow is exactly reversed by the opposite flow: the
			// capacity it consumed is the capacity the reverse restores.
			if rerr := e.graph.ApplyFlow(fl.To, fl.From, fl.Currency, fl.Value); rerr != nil {
				panic(fmt.Sprintf("payment: rollback failed: %v", rerr))
			}
		})
	}
	moveDrops := func(from, to addr.AccountID, v amount.Value, what string) error {
		drops, derr := amount.DropsFromValue(v)
		if derr != nil {
			return fmt.Errorf("payment: %s: %w", what, derr)
		}
		if e.xrp[from] < drops {
			return fmt.Errorf("payment: %s: %s exhausted mid-plan", what, from.Short())
		}
		e.xrp[from] -= drops
		e.markAccount(from)
		e.creditXRP(to, drops)
		undo = append(undo, func() {
			e.xrp[to] -= drops
			e.xrp[from] += drops
		})
		return nil
	}
	for _, q := range plan.Quotes {
		// XRP legs settle against the sender (the taker): the sender
		// pays XRP into offers and receives XRP out of offers.
		if q.Pair.Pays.IsXRP() {
			for _, f := range q.Fills {
				if err = moveDrops(plan.Src, f.Offer.Owner, f.Pays, "XRP fill"); err != nil {
					return err
				}
			}
		}
		if q.Pair.Gets.IsXRP() {
			for _, f := range q.Fills {
				if err = moveDrops(f.Offer.Owner, plan.Src, f.Gets, "XRP fill"); err != nil {
					return err
				}
			}
		}
		for _, f := range q.Fills {
			e.markOffer(f.Offer.Owner, f.Offer.Seq)
		}
		if err = e.books.Apply(q); err != nil {
			return fmt.Errorf("payment: book fill: %w", err)
		}
		// Book fills are not compensated: Apply validates the quote
		// against the standing offers up front, so it is the last
		// fallible step of its group; a later group's failure reverses
		// only flows and XRP moves, and re-placing partially consumed
		// offers would change their identity. The engine is
		// single-threaded between planning and execution, so a failure
		// past this point indicates a planner bug — surface loudly.
		undo = append(undo, func() {
			panic("payment: rollback across an applied order-book fill: plan raced state")
		})
	}
	// Bridged delivery in XRP lands on the sender above; forward it.
	if plan.Currency.IsXRP() && plan.UsedBridge {
		if err = moveDrops(plan.Src, plan.Dst, plan.Delivered, "delivering XRP"); err != nil {
			return err
		}
	}
	return nil
}

// creditXRP adds drops to an account, creating ("activating") it on
// first funding, as a Ripple account is created by its first XRP payment.
func (e *Engine) creditXRP(a addr.AccountID, d amount.Drops) {
	e.xrp[a] += d
	if _, ok := e.seq[a]; !ok {
		e.seq[a] = 1
	}
	e.markAccount(a)
}

// applyOfferCreate places the offer described by the transaction.
func (e *Engine) applyOfferCreate(tx *ledger.Tx, meta *ledger.TxMeta) {
	o := &orderbook.Offer{
		Owner: tx.Account,
		Seq:   tx.Sequence,
		Pays:  tx.TakerPays,
		Gets:  tx.TakerGets,
	}
	if err := e.books.Place(o); err != nil {
		meta.Result = ledger.ResultMalformed
		return
	}
	e.markOffer(o.Owner, o.Seq)
	meta.Result = ledger.ResultSuccess
}

// Fund force-creates an account with the given XRP balance, bypassing
// transactions. Generators use it to bootstrap populations; it mirrors
// the genesis distribution of XRP out of ACCOUNT_ZERO.
func (e *Engine) Fund(a addr.AccountID, d amount.Drops) {
	if d < 0 {
		return
	}
	if e.xrp[addr.AccountZero] >= d {
		e.xrp[addr.AccountZero] -= d
		e.markAccount(addr.AccountZero)
	}
	e.creditXRP(a, d)
}
