// Package consensus implements a Ripple Protocol Consensus Algorithm
// (RPCA) style network: validators exchange transaction-set proposals
// over rounds with rising agreement thresholds, close a ledger page when
// the set converges, and broadcast signed validations. A page is fully
// validated when at least 80% of the trusted validator list signs it —
// "only those pages that are signed by at least 80% of the validators end
// up in the distributed ledger."
//
// The paper's §IV measurements are reproduced by populating the network
// with the validator classes the authors observed: always-on Ripple Labs
// validators (R1–R5), active unidentified validators, laggards whose
// signed pages rarely match the main ledger, validators on a private
// fork, and the test-net cluster running a parallel chain.
package consensus

import (
	"fmt"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/ledger"
)

// Behavior classifies how a validator participates, mirroring the
// validator populations the paper infers from its Figure 2 data.
type Behavior int

const (
	// BehaviorActive validators are well-provisioned and in sync: they
	// propose, converge, and sign the canonical page nearly every round
	// (R1–R5 and the handful of active unidentified validators).
	BehaviorActive Behavior = iota + 1
	// BehaviorLaggard validators struggle "to stay in sync with the rest
	// of the system, due to limited hardware or network performance":
	// they sign pages, but the pages only rarely match the main ledger.
	BehaviorLaggard
	// BehaviorForked validators contribute "to a different, private
	// Ripple ledger": every page they sign is alien to the main chain.
	BehaviorForked
	// BehaviorTestnet validators run the consensus protocol for the
	// parallel test-net chain (testnet.ripple.com); their pages are valid
	// there but never on the main ledger.
	BehaviorTestnet
	// BehaviorEquivocator validators are Byzantine double-signers: every
	// round they sign the canonical page toward one UNL partition and a
	// conflicting hash toward the other — the safety attack from
	// "Security Analysis of Ripple Consensus". In a partitioned round
	// (Config.Partition) the conflicting signature lands on the rival
	// partition's page, actively pushing both sides to quorum.
	BehaviorEquivocator
	// BehaviorCensor validators participate in the proposal phase like
	// actives but strip targeted transactions (CensorAccounts) from every
	// proposal iteration. Because the final agreed set requires unanimity
	// among proposers, a single censor keeps a target out of the ledger
	// indefinitely while looking perfectly healthy in Figure 2.
	BehaviorCensor
	// BehaviorDelayer validators stall: they withhold their proposal
	// votes for the first DelayIters iterations (past the 50→65→70%
	// escalation deadlines by default) and broadcast their validation one
	// round late, past the close deadline — the liveness attack. A
	// trusted delayer still counts against the 80% quorum denominator,
	// so enough of them stall validation entirely.
	BehaviorDelayer
)

// Byzantine reports whether the behavior is one of the adversarial
// classes injected by an AttackSpec rather than a population the paper
// observed.
func (b Behavior) Byzantine() bool {
	switch b {
	case BehaviorEquivocator, BehaviorCensor, BehaviorDelayer:
		return true
	}
	return false
}

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case BehaviorActive:
		return "active"
	case BehaviorLaggard:
		return "laggard"
	case BehaviorForked:
		return "forked"
	case BehaviorTestnet:
		return "testnet"
	case BehaviorEquivocator:
		return "equivocator"
	case BehaviorCensor:
		return "censor"
	case BehaviorDelayer:
		return "delayer"
	default:
		return fmt.Sprintf("Behavior(%d)", int(b))
	}
}

// ValidatorSpec describes one validator joining the network.
type ValidatorSpec struct {
	// Label is the public identity: an internet domain for validators
	// that announce one, or empty to display the truncated node key, as
	// in the paper's Figure 2 x-axis.
	Label string
	// Behavior selects the participation model.
	Behavior Behavior
	// Seed derives the validator's deterministic keypair.
	Seed uint64
	// Availability is the per-round probability of being online
	// (defaults to 0.98 for active, 0.9 otherwise when zero).
	Availability float64
	// SyncProbability is, for laggards, the chance a signed page matches
	// the main chain (defaults to 0.05 when zero).
	SyncProbability float64
	// JoinRound and LeaveRound bound the rounds (1-based, inclusive)
	// during which the validator exists; zero means unbounded. The
	// churn between the paper's three collection periods is expressed
	// through these bounds.
	JoinRound, LeaveRound int
	// Trusted marks membership in the UNL used for the 80% validation
	// quorum. Typically the active validators.
	Trusted bool
	// CensorAccounts lists the accounts a BehaviorCensor validator
	// censors: any candidate payment sent from or to one of them is
	// stripped from the censor's proposals every iteration.
	CensorAccounts []addr.AccountID
	// DelayIters is, for BehaviorDelayer, how many proposal iterations
	// (the initial broadcast counts as one) the validator withholds its
	// votes. Zero defaults to 4: silent through the 50%, 65%, and 70%
	// escalation deadlines, joining only for the final 95% iteration.
	DelayIters int
}

// validator is the runtime state of one validator.
type validator struct {
	spec ValidatorSpec
	key  *addr.KeyPair
	id   addr.NodeID
	// disabled marks a hijacked or downed validator: it stops signing
	// but remains on the trusted list, so it still counts against the
	// validation quorum — the paper's DoS scenario.
	disabled bool
}

func newValidator(spec ValidatorSpec) *validator {
	if spec.Availability == 0 {
		switch {
		case spec.Behavior == BehaviorActive:
			spec.Availability = 0.98
		case spec.Behavior.Byzantine():
			// Attackers are modeled as well-provisioned: a Byzantine
			// validator that randomly drops offline only weakens its own
			// attack, and deterministic presence keeps scenario outcomes
			// reproducible.
			spec.Availability = 1.0
		default:
			spec.Availability = 0.9
		}
	}
	if spec.SyncProbability == 0 {
		spec.SyncProbability = 0.05
	}
	if spec.Behavior == BehaviorDelayer && spec.DelayIters == 0 {
		spec.DelayIters = 4
	}
	key := addr.KeyPairFromSeed(spec.Seed)
	return &validator{spec: spec, key: key, id: key.NodeID()}
}

// censors reports whether the validator strips tx from its proposals.
func (v *validator) censors(tx *ledger.Tx) bool {
	if v.spec.Behavior != BehaviorCensor || tx == nil {
		return false
	}
	for _, a := range v.spec.CensorAccounts {
		if tx.Account == a || tx.Destination == a {
			return true
		}
	}
	return false
}

// withholds reports whether a delayer is still silent at the given
// proposal iteration (0 = the initial broadcast).
func (v *validator) withholds(iter int) bool {
	return v.spec.Behavior == BehaviorDelayer && iter < v.spec.DelayIters
}

// present reports whether the validator exists at the given round.
func (v *validator) present(round int) bool {
	if v.spec.JoinRound > 0 && round < v.spec.JoinRound {
		return false
	}
	if v.spec.LeaveRound > 0 && round > v.spec.LeaveRound {
		return false
	}
	return true
}

// DisplayName renders the Figure 2 x-axis label: the domain when
// announced, otherwise the truncated node key.
func (v *validator) DisplayName() string {
	if v.spec.Label != "" {
		return v.spec.Label
	}
	return v.id.Short()
}
