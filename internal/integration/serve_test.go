package integration

import (
	"context"
	"math/rand"
	stdnet "net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/analysis"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/deanon"
	"ripplestudy/internal/faultnet"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/monitor"
	"ripplestudy/internal/netstream"
	"ripplestudy/internal/serve"
)

// TestServingLayerOverDegradedStream is the serving-layer end-to-end
// proof: a rippled-sim-style network (pages on the stream, synthetic
// payment traffic) publishes through a fault-injecting TCP listener; a
// serve.Service follows it with the resilient client, and the
// incrementally maintained views must equal batch computations over the
// exact history the network closed — while the HTTP API reports live
// epochs and stream progress.
func TestServingLayerOverDegradedStream(t *testing.T) {
	const rounds = 100
	const seed = 21
	spec := consensus.December2015(rounds)

	labels := make(map[addr.NodeID]string)
	batch := monitor.NewCollector()
	for _, vs := range spec.Specs {
		if vs.Label != "" {
			node := addr.KeyPairFromSeed(vs.Seed).NodeID()
			labels[node] = vs.Label
			batch.SetLabel(node, vs.Label)
		}
	}

	// The degraded transport: same fault profile as the monitor chaos
	// test, now carrying page payloads too.
	fcfg := faultnet.Config{Seed: 17, CorruptRate: 0.10, DropRate: 0.06, TruncateRate: 0.04}
	var fln *faultnet.Listener
	srv, err := netstream.Serve("127.0.0.1:0",
		netstream.WithReplayRing(1<<15),
		netstream.WithQueueSize(256),
		netstream.WithWriteTimeout(2*time.Second),
		netstream.WithListenerWrapper(func(ln stdnet.Listener) stdnet.Listener {
			fln = faultnet.Wrap(ln, fcfg)
			return fln
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	svc := serve.NewService(serve.Options{ValidatorLabels: labels, PublishBatch: 16})
	defer svc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	var stats netstream.ClientStats
	var followErr error
	go func() {
		defer wg.Done()
		stats, followErr = svc.Follow(ctx, srv.Addr(), netstream.ResilientOptions{
			InitialBackoff:         2 * time.Millisecond,
			MaxBackoff:             50 * time.Millisecond,
			DialTimeout:            time.Second,
			ReadTimeout:            25 * time.Millisecond,
			MaxConsecutiveFailures: 5000,
		})
	}()

	// The network: pages attached to close events, light payment
	// traffic so pages carry de-anonymizable transactions.
	net := consensus.NewNetwork(consensus.Config{
		Seed:        seed,
		StartTime:   spec.Start,
		StreamPages: true,
	}, spec.Specs)
	net.Subscribe(batch.Record)
	// Ground truth for the page views: the pages actually announced as
	// validated (rounds that miss quorum close no page on the stream).
	var validatedPages []*ledger.Page
	var last consensus.Event
	net.Subscribe(func(ev consensus.Event) {
		if ev.Kind == consensus.EventLedgerClosed {
			p, err := ev.Page()
			if err != nil {
				t.Errorf("streamed page: %v", err)
			} else if p != nil {
				validatedPages = append(validatedPages, p)
			}
		}
		last = ev
		srv.Publish(ev)
	})

	rng := rand.New(rand.NewSource(seed))
	trafficKey := addr.KeyPairFromSeed(24680)
	net.Engine().Fund(trafficKey.AccountID(), 1_000_000_000_000)
	traffic := func(round int) []*ledger.Tx {
		txs := make([]*ledger.Tx, 0, 2)
		for i := 0; i < 2; i++ {
			tx := &ledger.Tx{
				Type:        ledger.TxPayment,
				Account:     trafficKey.AccountID(),
				Sequence:    net.Engine().NextSequence(trafficKey.AccountID()) + uint32(i),
				Fee:         10,
				Destination: addr.KeyPairFromSeed(uint64(30000 + rng.Intn(40))).AccountID(),
				Amount:      amount.XRPAmount(amount.Drops(1_000_000 + rng.Int63n(10_000_000))),
			}
			tx.Sign(trafficKey)
			txs = append(txs, tx)
		}
		return txs
	}
	if _, err := net.Run(rounds, traffic); err != nil {
		t.Fatal(err)
	}
	final := net.EventsEmitted()

	// Drive the tail home through the faulty transport (gaps are only
	// detected when a newer event arrives), then stop following.
	deadline := time.Now().Add(60 * time.Second)
	for svc.Health().StreamLastSeq < final {
		if time.Now().After(deadline) {
			t.Fatalf("serving layer stuck at stream seq %d of %d", svc.Health().StreamLastSeq, final)
		}
		srv.Publish(last)
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	if followErr != nil {
		t.Fatalf("follow: %v", followErr)
	}
	if stats.Missed != 0 {
		t.Fatalf("stream lost %d events despite replay ring (stats %+v)", stats.Missed, stats)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := svc.Drain(dctx); err != nil {
		t.Fatal(err)
	}

	// Figure 2: incremental tally == batch collector, through the chaos.
	want := batch.Report(spec.Name)
	got := svc.Tally().Report(spec.Name)
	if !reflect.DeepEqual(want.Validators, got.Validators) || want.Rounds != got.Rounds {
		t.Errorf("Fig. 2 diverged across the degraded stream:\nbatch: %+v\nserve: %+v", want, got)
	}

	// Page views: equal batch passes over the validated pages the
	// network announced.
	if len(validatedPages) == 0 {
		t.Fatal("no validated pages streamed")
	}
	study := deanon.NewStudy(deanon.Figure3Rows)
	col := analysis.NewCollector()
	for _, p := range validatedPages {
		for j := range p.Txs {
			if f, ok := deanon.FromTransaction(p, p.Txs[j], p.Metas[j]); ok {
				study.Observe(f)
			}
		}
		if err := col.Page(p); err != nil {
			t.Fatal(err)
		}
	}
	if study.Payments() == 0 {
		t.Fatal("traffic produced no observable payments")
	}
	fp := svc.Fingerprints()
	if fp.Payments != study.Payments() || !reflect.DeepEqual(fp.Rows, study.Results()) {
		t.Errorf("Fig. 3 diverged: serve %d payments, batch %d", fp.Payments, study.Payments())
	}
	eco := svc.Ecosystem()
	if eco.Payments != col.Payments() || !reflect.DeepEqual(eco.Currencies, col.CurrencyHistogram()) {
		t.Errorf("ecosystem view diverged: %+v", eco)
	}

	// The chaos must actually have happened and been absorbed.
	if fln.Stats().FaultRate() < 0.15 {
		t.Errorf("fault rate %.2f too low to prove anything", fln.Stats().FaultRate())
	}
	if stats.Reconnects == 0 {
		t.Error("no reconnects despite injected disconnects")
	}

	// The HTTP surface reports the live state: epochs advanced, stream
	// sequence tracked, no drops in backpressure mode.
	web := httptest.NewServer(svc.Handler())
	defer web.Close()
	body := httpGet(t, web.URL+"/metrics")
	for _, view := range []string{"fig2_tally", "fig3_fingerprints", "fig4to6_ecosystem"} {
		if v := metricValue(t, body, `serve_view_epoch{view="`+view+`"}`); v == 0 {
			t.Errorf("%s epoch still 0 after ingest", view)
		}
		if v := metricValue(t, body, `serve_view_ingest_lag_events{view="`+view+`"}`); v != 0 {
			t.Errorf("%s lag %v after drain", view, v)
		}
	}
	if v := metricValue(t, body, "serve_stream_last_seq"); v != float64(final) {
		t.Errorf("stream_last_seq %v, want %d", v, final)
	}
	if v := metricValue(t, body, "serve_dropped_events_total"); v != 0 {
		t.Errorf("dropped %v events in backpressure mode", v)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// metricValue extracts one Prometheus sample value from text exposition.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(name) + " (.+)$")
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}
