GO ?= go

.PHONY: all build vet test race race-mp chaos attack bench bench-check fuzz check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Data-race check over the concurrent paths: stream/collection, the
# sharded de-anonymization pipeline (PagesParallel + ParallelStudy), the
# live serving layer (concurrent queries against ingestion), and the
# transaction front door (quote readers racing the batch applier).
race:
	$(GO) test -race ./internal/netstream/... ./internal/monitor/... ./internal/faultnet/... ./internal/deanon/... ./internal/ledgerstore/... ./internal/serve/... ./internal/replay/... ./internal/txq/... ./internal/integration/...

# Multi-core pipeline pass: the view-pipeline differential suite with
# GOMAXPROCS pinned above 1, so the sharded apply workers, seal
# barrier, and cross-shard merges are genuinely concurrent even on a
# single-core default runner. Everything here must be bit-identical to
# the single-writer fold.
race-mp:
	GOMAXPROCS=4 $(GO) test -race -run 'PipelineWorkersMatchSequentialJSON|ShardPartitionMergeParityJSON|ShardedInc|MergeClonedRepeatable|ViewWorker|Shed|ConcurrentQueries|ParallelBackfillMatchesSequential' ./internal/serve/ ./internal/deanon/ ./internal/analysis/

# Perf trajectory: run the Figure 3 pipeline and store benchmarks with
# allocation stats and archive them as JSON so future PRs can diff
# payments/s, ns/op, and B/op against this one. Serving-layer
# benchmarks (ingest fan-out, O(1) lookups, snapshot publish, HTTP)
# are archived in BENCH_serve.json; the zero-copy segment-scan path
# (ScanPayments projection, arena vs heap page decoding) in
# BENCH_store.json.
bench:
	$(GO) test -run '^$$' -bench 'Figure3|Fig3Deanon|Store' -benchmem . | tee bench.out
	$(GO) run ./cmd/benchjson -out BENCH_deanon.json < bench.out
	@echo "wrote BENCH_deanon.json"
	$(GO) test -run '^$$' -bench 'ScanPayments|PagesParallel' -benchmem ./internal/ledgerstore | tee bench_store.out
	$(GO) run ./cmd/benchjson -out BENCH_store.json < bench_store.out
	@echo "wrote BENCH_store.json"
	$(GO) test -run '^$$' -bench 'Serve' -benchmem ./internal/serve | tee bench_serve.out
	$(GO) run ./cmd/benchjson -check BENCH_serve.json -tolerance $(TOLERANCE) < bench_serve.out
	$(GO) run ./cmd/benchjson -out BENCH_serve.json < bench_serve.out
	@echo "wrote BENCH_serve.json"
	$(GO) test -run '^$$' -bench 'Table2Replay|Pathfind|CheckpointResume' -benchmem . | tee bench_replay.out
	$(GO) run ./cmd/benchjson -out BENCH_replay.json < bench_replay.out
	$(GO) test -run '^$$' -bench 'Shamap' -benchmem ./internal/shamap | tee bench_shamap.out
	$(GO) run ./cmd/benchjson -out BENCH_replay.json < bench_shamap.out
	@echo "wrote BENCH_replay.json"
	$(GO) test -run '^$$' -bench 'ConsensusRound' -benchmem ./internal/consensus | tee bench_consensus.out
	$(GO) run ./cmd/benchjson -out BENCH_consensus.json < bench_consensus.out
	@echo "wrote BENCH_consensus.json"
	$(GO) test -run '^$$' -bench 'TxqFrontDoor' -benchmem ./internal/txq | tee bench_txq.out
	$(GO) run ./cmd/benchjson -out BENCH_txq.json < bench_txq.out
	@echo "wrote BENCH_txq.json"

# Regression smoke: re-run the serving-layer benchmarks and gate ns/op
# against the committed archive without rewriting it. TOLERANCE is the
# allowed regression in percent; the archived numbers come from one
# machine, so loosen it when checking on very different hardware
# (`make bench-check TOLERANCE=50`).
TOLERANCE ?= 20
bench-check:
	$(GO) test -run '^$$' -bench 'Serve' -benchmem ./internal/serve | tee bench_serve.out
	$(GO) run ./cmd/benchjson -check BENCH_serve.json -tolerance $(TOLERANCE) < bench_serve.out
	$(GO) test -run '^$$' -bench 'TxqFrontDoor' -benchmem ./internal/txq | tee bench_txq.out
	$(GO) run ./cmd/benchjson -check BENCH_txq.json -tolerance $(TOLERANCE) < bench_txq.out
	$(GO) test -run '^$$' -bench 'CheckpointResume' -benchmem . | tee bench_ckpt.out
	$(GO) run ./cmd/benchjson -check BENCH_replay.json -tolerance $(TOLERANCE) < bench_ckpt.out

# Fuzz smoke: brief randomized exploration of the zero-copy decode
# surfaces (the in-place payment scan and the arena page decoder), the
# nodestore record framing, and the state-tree operation sequences —
# beyond their seeded corpora. CI runs the same targets with a short
# -fuzztime; run them longer locally when touching the codec.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzScanPayments$$' -fuzztime $(FUZZTIME) ./internal/ledger
	$(GO) test -run '^$$' -fuzz 'FuzzDecodePageInto$$' -fuzztime $(FUZZTIME) ./internal/ledger
	$(GO) test -run '^$$' -fuzz 'FuzzNodeDecode$$' -fuzztime $(FUZZTIME) ./internal/nodestore
	$(GO) test -run '^$$' -fuzz 'FuzzShamapOps$$' -fuzztime $(FUZZTIME) ./internal/shamap

# Short chaos pass: fault injection, resilience, and the degraded-stream
# integration test.
chaos:
	$(GO) test -run 'Fault|Chaos|Resilient|Stalled|Corrupt|Inject|Malformed|Health|BadFrames|Truncat|BitFlip' ./internal/...

# Adversarial pass: the Byzantine scenario engine, the fork/equivocation
# detectors, the end-to-end attack matrix over TCP, and the monitor CLI's
# fail-on-attack path.
attack:
	$(GO) test -run 'Attack|Scenario|Equivoc|Censor|Delay|Fork|Stall|Detect|Backoff|Benign' ./internal/consensus/ ./internal/monitor/ ./internal/netstream/ ./internal/integration/ ./cmd/consensus-monitor/

check: vet build test race race-mp chaos attack
