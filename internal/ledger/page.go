package ledger

import (
	"fmt"
)

// PageHeader identifies a closed ledger page: its position in the chain,
// the hash of its parent, digests of its transaction set and resulting
// state, and the consensus close time.
type PageHeader struct {
	Sequence   uint64    `json:"sequence"`
	ParentHash Hash      `json:"parent_hash"`
	TxSetHash  Hash      `json:"tx_set_hash"`
	StateHash  Hash      `json:"state_hash"`
	CloseTime  CloseTime `json:"close_time"`
	// TotalDrops is the XRP in existence after this page; it only ever
	// decreases as fees are destroyed.
	TotalDrops uint64 `json:"total_drops"`
}

// encodeHeader produces the canonical bytes whose SHA-512-half is the
// page hash that validators sign.
func (h *PageHeader) encodeHeader(buf []byte) []byte {
	e := encoder{buf: buf}
	e.u64(h.Sequence)
	e.hash(h.ParentHash)
	e.hash(h.TxSetHash)
	e.hash(h.StateHash)
	e.u32(uint32(h.CloseTime))
	e.u64(h.TotalDrops)
	return e.buf
}

// Hash returns the page hash validators sign and the chain links by.
func (h *PageHeader) Hash() Hash { return SHA512Half(h.encodeHeader(nil)) }

// Page is one closed ledger version: a header plus the transactions the
// consensus round sealed into it and their execution metadata.
// len(Metas) == len(Txs) always.
type Page struct {
	Header PageHeader `json:"header"`
	Txs    []*Tx      `json:"txs"`
	Metas  []*TxMeta  `json:"metas"`
}

// TxSetHash computes the digest of an ordered transaction list, the value
// recorded in PageHeader.TxSetHash. Consensus proposals exchange this
// digest.
func TxSetHash(txs []*Tx) Hash {
	var buf []byte
	for _, tx := range txs {
		h := tx.Hash()
		buf = append(buf, h[:]...)
	}
	return SHA512Half(buf)
}

// Validate checks the page's internal consistency: metadata parity and
// the transaction-set digest.
func (p *Page) Validate() error {
	if len(p.Txs) != len(p.Metas) {
		return fmt.Errorf("ledger: page %d: %d txs but %d metas", p.Header.Sequence, len(p.Txs), len(p.Metas))
	}
	if got := TxSetHash(p.Txs); got != p.Header.TxSetHash {
		return fmt.Errorf("ledger: page %d: tx set hash mismatch: %s != %s",
			p.Header.Sequence, got.Short(), p.Header.TxSetHash.Short())
	}
	return nil
}

// Encode appends the canonical serialization of the full page.
func (p *Page) Encode(buf []byte) []byte {
	buf = p.Header.encodeHeader(buf)
	e := encoder{buf: buf}
	e.u32(uint32(len(p.Txs)))
	buf = e.buf
	for i := range p.Txs {
		buf = p.Txs[i].Encode(buf)
		buf = p.Metas[i].EncodeMeta(buf)
	}
	return buf
}

// DecodePage decodes one page from data, returning bytes consumed.
func DecodePage(data []byte) (*Page, int, error) {
	d := decoder{buf: data}
	var p Page
	p.Header.Sequence = d.u64()
	p.Header.ParentHash = d.hash()
	p.Header.TxSetHash = d.hash()
	p.Header.StateHash = d.hash()
	p.Header.CloseTime = CloseTime(d.u32())
	p.Header.TotalDrops = d.u64()
	n := int(d.u32())
	if d.err != nil {
		return nil, 0, d.err
	}
	p.Txs = make([]*Tx, 0, n)
	p.Metas = make([]*TxMeta, 0, n)
	for i := 0; i < n; i++ {
		tx, used, err := DecodeTx(data[d.off:])
		if err != nil {
			return nil, 0, fmt.Errorf("ledger: page %d, tx %d: %w", p.Header.Sequence, i, err)
		}
		d.off += used
		meta, used, err := DecodeMeta(data[d.off:])
		if err != nil {
			return nil, 0, fmt.Errorf("ledger: page %d, meta %d: %w", p.Header.Sequence, i, err)
		}
		d.off += used
		p.Txs = append(p.Txs, tx)
		p.Metas = append(p.Metas, meta)
	}
	return &p, d.off, nil
}

// GenesisTotalDrops is the initial XRP supply: 100 billion XRP, all owned
// by ACCOUNT_ZERO at genesis, as in Ripple.
const GenesisTotalDrops = 100_000_000_000 * 1_000_000

// Genesis builds the sequence-1 page of a chain. chainTag diversifies the
// genesis of independent chains: the main net and the test net the paper
// observed are distinct chains whose pages never validate on each other.
func Genesis(chainTag string, closeTime CloseTime) *Page {
	seed := SHA512Half([]byte("ripplestudy-genesis:" + chainTag))
	return &Page{
		Header: PageHeader{
			Sequence:   1,
			ParentHash: seed,
			TxSetHash:  TxSetHash(nil),
			StateHash:  seed,
			CloseTime:  closeTime,
			TotalDrops: GenesisTotalDrops,
		},
	}
}

// Chain is an in-memory ledger chain: an append-only list of closed
// pages with parent-hash linkage enforced.
type Chain struct {
	pages  []*Page
	byHash map[Hash]*Page
}

// NewChain starts a chain from a genesis page.
func NewChain(genesis *Page) *Chain {
	c := &Chain{byHash: make(map[Hash]*Page)}
	c.pages = append(c.pages, genesis)
	c.byHash[genesis.Header.Hash()] = genesis
	return c
}

// Tip returns the most recently appended page.
func (c *Chain) Tip() *Page { return c.pages[len(c.pages)-1] }

// Len returns the number of pages in the chain.
func (c *Chain) Len() int { return len(c.pages) }

// Page returns the page at 0-based index i.
func (c *Chain) Page(i int) *Page { return c.pages[i] }

// ByHash looks a page up by its hash.
func (c *Chain) ByHash(h Hash) (*Page, bool) {
	p, ok := c.byHash[h]
	return p, ok
}

// Append validates linkage and internal consistency, then appends p.
func (c *Chain) Append(p *Page) error {
	tip := c.Tip()
	if p.Header.Sequence != tip.Header.Sequence+1 {
		return fmt.Errorf("ledger: appending sequence %d after %d", p.Header.Sequence, tip.Header.Sequence)
	}
	if p.Header.ParentHash != tip.Header.Hash() {
		return fmt.Errorf("ledger: page %d parent hash %s does not match tip %s",
			p.Header.Sequence, p.Header.ParentHash.Short(), tip.Header.Hash().Short())
	}
	if err := p.Validate(); err != nil {
		return err
	}
	c.pages = append(c.pages, p)
	c.byHash[p.Header.Hash()] = p
	return nil
}
