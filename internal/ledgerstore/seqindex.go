package ledgerstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"ripplestudy/internal/ledger"
)

// SeqIndexFile is the name of the segment sequence index sidecar kept
// next to the segment files. It maps each segment to the ledger
// sequence range it covers, so range reads (replay from a snapshot,
// LastSeq probes) open only the segments that matter instead of
// scanning the whole store.
//
// The sidecar is JSON — one entry per segment with the file's base
// name, its size in bytes when indexed, its page count, and the
// min/max header sequence it contains. An entry is trusted only if the
// segment's current size matches the recorded size; stale or missing
// entries are rebuilt by scanning just that segment, and the sidecar
// is rewritten. The store never *requires* the sidecar: deleting it
// merely costs one full rebuild scan. Rebuilds are not silent, though —
// a sidecar that is missing, unparseable, or stale is reported through
// IndexReport/Stats so operators can tell a healthy cache from one
// that is being thrown away on every open.
const SeqIndexFile = "seqindex.json"

// SegmentRange describes one segment's coverage in the sequence index.
type SegmentRange struct {
	File   string `json:"file"`  // base name, e.g. "segment-000001.rlst"
	Bytes  int64  `json:"bytes"` // segment size when indexed (staleness check)
	Pages  int    `json:"pages"`
	MinSeq uint64 `json:"min_seq"`
	MaxSeq uint64 `json:"max_seq"`
}

type seqIndexDoc struct {
	Segments []SegmentRange `json:"segments"`
}

// IndexLoadReport describes the health of the seqindex.json sidecar as
// of the last load: whether it was present and parseable, and how many
// segments had to be rescanned because their entries were stale or
// missing. A corrupt sidecar is not an error — the index rebuilds — but
// it is surfaced here (and via Stats) instead of being swallowed.
type IndexLoadReport struct {
	// Present is true when the sidecar file exists.
	Present bool `json:"present"`
	// Corrupt is true when the sidecar exists but failed to parse; Error
	// holds the parse error text.
	Corrupt bool   `json:"corrupt"`
	Error   string `json:"error,omitempty"`
	// Rebuilt counts segments rescanned on the last SegmentRanges call
	// because their sidecar entries were missing or stale.
	Rebuilt int `json:"rebuilt"`
}

func loadSeqIndex(dir string) (map[string]SegmentRange, IndexLoadReport) {
	var rep IndexLoadReport
	data, err := os.ReadFile(filepath.Join(dir, SeqIndexFile))
	if err != nil {
		return nil, rep // absent sidecar: clean rebuild, nothing to report
	}
	rep.Present = true
	var doc seqIndexDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		rep.Corrupt = true
		rep.Error = err.Error()
		return nil, rep
	}
	byFile := make(map[string]SegmentRange, len(doc.Segments))
	for _, sr := range doc.Segments {
		byFile[sr.File] = sr
	}
	return byFile, rep
}

func saveSeqIndex(dir string, ranges []SegmentRange) {
	doc := seqIndexDoc{Segments: ranges}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return
	}
	// Best-effort: a read-only store directory just loses the cache.
	tmp := filepath.Join(dir, SeqIndexFile+".tmp")
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	if os.Rename(tmp, filepath.Join(dir, SeqIndexFile)) != nil {
		os.Remove(tmp)
	}
}

// scanSegmentRange builds a segment's index entry by walking its record
// frames once. Only headers are decoded — the CRC pass still covers the
// full payload, but rebuilding the index no longer pays for decoding
// every transaction in the store.
func scanSegmentRange(path string, size int64) (SegmentRange, error) {
	sr := SegmentRange{File: filepath.Base(path), Bytes: size}
	err := forEachRecord(path, func(payload []byte) error {
		h, _, err := ledger.DecodeHeader(payload)
		if err != nil {
			return fmt.Errorf("ledgerstore: decoding page header in %s: %w", path, err)
		}
		seq := h.Sequence
		if sr.Pages == 0 {
			sr.MinSeq, sr.MaxSeq = seq, seq
		} else {
			if seq < sr.MinSeq {
				sr.MinSeq = seq
			}
			if seq > sr.MaxSeq {
				sr.MaxSeq = seq
			}
		}
		sr.Pages++
		return nil
	})
	return sr, err
}

// IndexReport returns the sidecar health observed by the most recent
// SegmentRanges call (directly or via LastSeq/PagesRange/Stats). The
// zero value means the index has not been loaded yet this session.
func (s *Store) IndexReport() IndexLoadReport { return s.indexReport }

// SegmentRanges returns the per-segment sequence coverage, in segment
// order, rebuilding any sidecar entries that are missing or stale and
// persisting the refreshed sidecar. The open segment (if any) is
// flushed first so the index reflects every appended page.
func (s *Store) SegmentRanges() ([]SegmentRange, error) {
	if err := s.closeCurrent(); err != nil {
		return nil, err
	}
	segs, err := segmentFiles(s.dir)
	if err != nil {
		return nil, err
	}
	cached, rep := loadSeqIndex(s.dir)
	ranges := make([]SegmentRange, 0, len(segs))
	for _, seg := range segs {
		info, err := os.Stat(seg)
		if err != nil {
			return nil, fmt.Errorf("ledgerstore: stat %s: %w", seg, err)
		}
		base := filepath.Base(seg)
		if sr, ok := cached[base]; ok && sr.Bytes == info.Size() {
			ranges = append(ranges, sr)
			continue
		}
		sr, err := scanSegmentRange(seg, info.Size())
		if err != nil {
			return nil, err
		}
		ranges = append(ranges, sr)
		rep.Rebuilt++
	}
	if rep.Rebuilt > 0 || len(cached) != len(segs) {
		saveSeqIndex(s.dir, ranges)
	}
	s.indexReport = rep
	return ranges, nil
}

// LastSeq returns the highest ledger sequence stored. ok is false for a
// store with no pages. With a warm sidecar this costs one JSON read and
// a stat per segment, not a history scan.
func (s *Store) LastSeq() (seq uint64, ok bool, err error) {
	ranges, err := s.SegmentRanges()
	if err != nil {
		return 0, false, err
	}
	for _, sr := range ranges {
		if sr.Pages == 0 {
			continue
		}
		if !ok || sr.MaxSeq > seq {
			seq, ok = sr.MaxSeq, true
		}
	}
	return seq, ok, nil
}

// errStopSegment stops the in-segment page loop early once the range's
// upper bound has been passed.
var errStopSegment = errors.New("ledgerstore: past range")

// rangeSegments returns the index entries overlapping [lo, hi], or nil
// when the range is empty.
func (s *Store) rangeSegments(lo, hi uint64) ([]SegmentRange, error) {
	if hi < lo {
		return nil, nil
	}
	ranges, err := s.SegmentRanges()
	if err != nil {
		return nil, err
	}
	out := ranges[:0:0]
	for _, sr := range ranges {
		if sr.Pages == 0 || sr.MaxSeq < lo || sr.MinSeq > hi {
			continue
		}
		out = append(out, sr)
	}
	return out, nil
}

// PagesRange streams, in append order, every page whose header sequence
// lies in [lo, hi] (inclusive). Segments entirely outside the range are
// never opened — the point of the sequence index: replaying from a 70%
// snapshot touches ~30% of the store. Within a boundary segment, pages
// below the range are skipped after a header-only peek, without
// decoding their transactions. fn's errors propagate as in Pages;
// ErrStop stops cleanly.
func (s *Store) PagesRange(lo, hi uint64, fn func(*ledger.Page) error) error {
	return s.pagesRange(lo, hi, nil, fn)
}

// PagesRangeArena is PagesRange decoding through the caller's arena:
// each page is valid only until fn returns. A nil arena allocates one.
func (s *Store) PagesRangeArena(lo, hi uint64, a *ledger.PageArena, fn func(*ledger.Page) error) error {
	if a == nil {
		a = new(ledger.PageArena)
	}
	return s.pagesRange(lo, hi, a, fn)
}

// PagesRangeRecycled streams the pages in [lo, hi] with per-page arena
// decoding and explicit recycling: each page is decoded into an arena
// drawn from the package pool and handed to fn together with a release
// closure. The page stays valid — independently of any later decode or
// of the segment mapping — until release is called, at which point its
// arena returns to the pool and the page is dead. This is the
// ownership-transfer variant of PagesRangeArena for pipelined consumers
// (the replay decode-ahead stream) that buffer pages across goroutines:
// call release exactly once per page, when done with it. Not calling it
// is safe but forfeits recycling; calling it twice corrupts the pool.
func (s *Store) PagesRangeRecycled(lo, hi uint64, fn func(p *ledger.Page, release func()) error) error {
	segs, err := s.rangeSegments(lo, hi)
	if err != nil || len(segs) == 0 {
		return err
	}
	for _, sr := range segs {
		path := filepath.Join(s.dir, sr.File)
		err := forEachRecord(path, func(payload []byte) error {
			h, _, err := ledger.DecodeHeader(payload)
			if err != nil {
				return fmt.Errorf("ledgerstore: decoding page header in %s: %w", path, err)
			}
			if h.Sequence < lo {
				return nil
			}
			if h.Sequence > hi {
				return errStopSegment
			}
			a := arenaPool.Get().(*ledger.PageArena)
			page, used, err := ledger.DecodePageInto(payload, a)
			if err != nil {
				arenaPool.Put(a)
				return fmt.Errorf("ledgerstore: decoding page in %s: %w", path, err)
			}
			if used != len(payload) {
				arenaPool.Put(a)
				return fmt.Errorf("%w: %d trailing bytes in record", ErrCorrupted, len(payload)-used)
			}
			return fn(page, func() { arenaPool.Put(a) })
		})
		if errors.Is(err, errStopSegment) {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) pagesRange(lo, hi uint64, a *ledger.PageArena, fn func(*ledger.Page) error) error {
	segs, err := s.rangeSegments(lo, hi)
	if err != nil || len(segs) == 0 {
		return err
	}
	for _, sr := range segs {
		path := filepath.Join(s.dir, sr.File)
		err := forEachRecord(path, func(payload []byte) error {
			h, _, err := ledger.DecodeHeader(payload)
			if err != nil {
				return fmt.Errorf("ledgerstore: decoding page header in %s: %w", path, err)
			}
			if h.Sequence < lo {
				return nil // before the range: skip without decoding
			}
			if h.Sequence > hi {
				// Pages append in ledger order, so nothing later in this
				// segment can be in range.
				return errStopSegment
			}
			var page *ledger.Page
			if a != nil {
				var used int
				page, used, err = ledger.DecodePageInto(payload, a)
				if err != nil {
					return fmt.Errorf("ledgerstore: decoding page in %s: %w", path, err)
				}
				if used != len(payload) {
					return fmt.Errorf("%w: %d trailing bytes in record", ErrCorrupted, len(payload)-used)
				}
			} else if page, err = decodeRecordPage(path, payload); err != nil {
				return err
			}
			return fn(page)
		})
		if errors.Is(err, errStopSegment) {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}