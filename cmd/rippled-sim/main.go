// Command rippled-sim runs a consensus network for one of the paper's
// collection periods and serves its validation stream over TCP, playing
// the role of the live Ripple network the authors' collection server
// subscribed to.
//
//	rippled-sim -listen 127.0.0.1:5006 -period dec2015 -rounds 2000
//
// Connect cmd/consensus-monitor to the same address to reproduce the
// §IV data collection.
//
// The -fault-* flags degrade the served stream (corrupted, truncated,
// and dropped connections) to exercise the monitor's recovery path;
// see "Failure modes and recovery" in the README.
//
// The -attack-* flags layer Byzantine validators onto the benign
// population (equivocators, censors, delayed proposers) or split the
// trusted UNL below the safe overlap bound. Attacks compose with the
// fault injection: a degraded transport carrying an adversarial stream
// is exactly the condition cmd/consensus-monitor's detectors are graded
// against. With attacks on, proposal events are streamed too so the
// monitor can see censorship.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	stdnet "net"
	"os"
	"strings"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/faultnet"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/netstream"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5006", "TCP address for the validation stream")
	period := flag.String("period", "dec2015", "collection period: dec2015|jul2016|nov2016")
	rounds := flag.Int("rounds", 2000, "consensus rounds to run")
	seed := flag.Int64("seed", 1, "random seed")
	delay := flag.Duration("delay", 0, "real-time delay per round (0 = as fast as possible)")
	wait := flag.Duration("wait", 2*time.Second, "time to wait for subscribers before starting")
	tps := flag.Float64("tps", 0.5, "synthetic XRP payments per simulated second fed through consensus")
	streamPages := flag.Bool("stream-pages", false, "attach each validated page's encoding to its ledger-close event (for ripple-serve)")
	faultDrop := flag.Float64("fault-drop", 0, "probability per write of killing the connection mid-line")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "probability per write of flipping one bit")
	faultTruncate := flag.Float64("fault-truncate", 0, "probability per write of truncating the write")
	faultLatency := flag.Duration("fault-latency", 0, "added latency per write")
	faultSeed := flag.Int64("fault-seed", 1, "deterministic seed for fault injection")
	atkEquivocators := flag.Int("attack-equivocators", 0, "trusted validators that double-sign every round")
	atkCensors := flag.Int("attack-censors", 0, "trusted validators that veto the victim account's payments")
	atkDelayers := flag.Int("attack-delayers", 0, "trusted validators that withhold proposals past the deadlines")
	atkDelayIters := flag.Int("attack-delay-iters", 0, "proposal iterations the delayers stay silent (0 = class default)")
	atkOverlap := flag.Float64("attack-overlap", -1, "split the trusted UNL with this overlap fraction (<0 = off; forks commit below 2(1-quorum))")
	atkSplitRate := flag.Float64("attack-split-rate", 1, "per-round probability a partition dispute splits the groups")
	flag.Parse()

	fcfg := faultnet.Config{
		Seed:         *faultSeed,
		CorruptRate:  *faultCorrupt,
		DropRate:     *faultDrop,
		TruncateRate: *faultTruncate,
		Latency:      *faultLatency,
	}
	attack := consensus.AttackSpec{
		Equivocators: *atkEquivocators,
		Censors:      *atkCensors,
		Delayers:     *atkDelayers,
		DelayIters:   *atkDelayIters,
	}
	if *atkOverlap >= 0 {
		attack.Partition = &consensus.PartitionSpec{Overlap: *atkOverlap, SplitRate: *atkSplitRate}
	}
	if err := run(*listen, *period, *rounds, *seed, *delay, *wait, *tps, *streamPages, fcfg, attack); err != nil {
		fmt.Fprintln(os.Stderr, "rippled-sim:", err)
		os.Exit(1)
	}
}

func periodSpec(name string, rounds int) (consensus.PeriodSpec, error) {
	switch strings.ToLower(name) {
	case "dec2015":
		return consensus.December2015(rounds), nil
	case "jul2016":
		return consensus.July2016(rounds), nil
	case "nov2016":
		return consensus.November2016(rounds), nil
	default:
		return consensus.PeriodSpec{}, fmt.Errorf("unknown period %q (want dec2015|jul2016|nov2016)", name)
	}
}

func run(listen, period string, rounds int, seed int64, delay, wait time.Duration, tps float64, streamPages bool, fcfg faultnet.Config, attack consensus.AttackSpec) error {
	spec, err := periodSpec(period, rounds)
	if err != nil {
		return err
	}
	injecting := fcfg.CorruptRate > 0 || fcfg.DropRate > 0 || fcfg.TruncateRate > 0 || fcfg.Latency > 0
	var fln *faultnet.Listener
	var opts []netstream.Option
	if injecting {
		opts = append(opts, netstream.WithListenerWrapper(func(ln stdnet.Listener) stdnet.Listener {
			fln = faultnet.Wrap(ln, fcfg)
			return fln
		}))
	}
	srv, err := netstream.Serve(listen, opts...)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("rippled-sim: serving validation stream on %s (%s, %d rounds, %d validators)\n",
		srv.Addr(), spec.Name, rounds, len(spec.Specs))
	if injecting {
		fmt.Printf("rippled-sim: fault injection on (corrupt=%.2f drop=%.2f truncate=%.2f latency=%s seed=%d)\n",
			fcfg.CorruptRate, fcfg.DropRate, fcfg.TruncateRate, fcfg.Latency, fcfg.Seed)
	}

	// Give monitors a moment to connect before history starts flowing.
	deadline := time.Now().Add(wait)
	for time.Now().Before(deadline) && srv.NumSubscribers() == 0 {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("rippled-sim: %d subscriber(s) connected, starting consensus\n", srv.NumSubscribers())

	cfg := consensus.Config{Seed: seed, StartTime: spec.Start, StreamPages: streamPages}
	specs := spec.Specs
	if attack.Enabled() {
		if attack.Censors > 0 && len(attack.CensorTargets) == 0 {
			attack.CensorTargets = []addr.AccountID{consensus.VictimAccount()}
		}
		cfg.Partition = attack.Partition
		cfg.StreamProposals = true // monitors need proposals to see censorship
		specs = attack.Apply(specs)
		fmt.Printf("rippled-sim: attack on (equivocators=%d censors=%d delayers=%d",
			attack.Equivocators, attack.Censors, attack.Delayers)
		if attack.Partition != nil {
			fmt.Printf(" overlap=%.2f split-rate=%.2f feasible-fork=%v",
				attack.Partition.Overlap, attack.Partition.SplitRate,
				consensus.ForkFeasible(attack.Partition.Overlap, consensus.DefaultConfig().ValidationQuorum))
		}
		fmt.Println(")")
	}
	net := consensus.NewNetwork(cfg, specs)
	net.Subscribe(srv.Publish)

	// Synthetic traffic: simple XRP payments from a funded account, so
	// sealed pages carry realistic transaction counts.
	rng := rand.New(rand.NewSource(seed + 1))
	trafficKey := addr.KeyPairFromSeed(987654)
	net.Engine().Fund(trafficKey.AccountID(), 1_000_000_000_000)
	perRound := tps * 5 // the default close interval is 5 simulated seconds
	makeTraffic := func(round int) []*ledger.Tx {
		n := int(perRound)
		if rng.Float64() < perRound-float64(n) {
			n++
		}
		txs := make([]*ledger.Tx, 0, n)
		mk := func(dst addr.AccountID) {
			tx := &ledger.Tx{
				Type:        ledger.TxPayment,
				Account:     trafficKey.AccountID(),
				Sequence:    net.Engine().NextSequence(trafficKey.AccountID()) + uint32(len(txs)),
				Fee:         10,
				Destination: dst,
				Amount:      amount.XRPAmount(amount.Drops(1_000_000 + rng.Int63n(50_000_000))),
			}
			tx.Sign(trafficKey)
			txs = append(txs, tx)
		}
		for i := 0; i < n; i++ {
			mk(addr.KeyPairFromSeed(uint64(10000 + rng.Intn(500))).AccountID())
		}
		// With censors configured, every round carries one payment to the
		// victim account — the transaction the adversary keeps out.
		if attack.Censors > 0 {
			mk(consensus.VictimAccount())
		}
		return txs
	}

	for i := 1; i <= rounds; i++ {
		if _, err := net.RunRound(makeTraffic(i)); err != nil {
			return err
		}
		if i%200 == 0 {
			srv.Flush()
			fmt.Printf("rippled-sim: round %d/%d, ledger %d\n", i, rounds, net.Chain().Tip().Header.Sequence)
		}
		if delay > 0 {
			time.Sleep(delay)
		}
	}
	srv.Flush()
	fmt.Printf("rippled-sim: done, %d main-chain pages closed\n", net.Chain().Len())
	if attack.Enabled() {
		fmt.Printf("rippled-sim: attack ground truth: equivocations=%d forked-sequences=%d\n",
			net.Equivocations(), len(net.ForkSeqs()))
	}
	// Leave the stream open briefly so slow consumers drain (and, when
	// injecting faults, reconnect and replay the tail).
	drain := 500 * time.Millisecond
	if injecting {
		drain = 3 * time.Second
	}
	time.Sleep(drain)
	st := srv.Stats()
	fmt.Printf("rippled-sim: stream stats: published=%d replayed=%d dropped=%d evicted=%d served=%d\n",
		st.Published, st.Replayed, st.Dropped, st.Evicted, st.Served)
	if fln != nil {
		fmt.Printf("rippled-sim: injected faults: %s\n", fln.Stats())
	}
	return nil
}
