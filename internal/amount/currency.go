// Package amount implements Ripple-style monetary values: the native XRP
// currency counted in integral drops, and issued-currency (IOU) values
// represented as normalized decimal floating point numbers, mirroring the
// semantics of rippled's STAmount.
//
// The package is the numeric foundation of the study: every payment,
// trust-line limit, order-book offer, and the Table I rounding process of
// the de-anonymization experiment operate on these types.
package amount

import (
	"fmt"
	"strings"
)

// Currency identifies a currency by its three-character Ripple currency
// code. Ripple permits arbitrary 3-character codes, not only ISO 4217 ones;
// the paper's dataset prominently features non-standard codes such as CCK
// and MTL (used for ledger-spam campaigns).
//
// The zero value is the native currency XRP.
type Currency [3]byte

// Well-known currencies referenced throughout the paper.
var (
	XRP = Currency{}          // native currency, counted in drops
	USD = MustCurrency("USD") // US dollar
	EUR = MustCurrency("EUR") // euro
	BTC = MustCurrency("BTC") // bitcoin IOU
	CNY = MustCurrency("CNY") // Chinese yuan
	JPY = MustCurrency("JPY") // Japanese yen
	GBP = MustCurrency("GBP") // British pound
	AUD = MustCurrency("AUD") // Australian dollar
	KRW = MustCurrency("KRW") // South Korean won
	CCK = MustCurrency("CCK") // non-standard code, suspected DoS currency
	MTL = MustCurrency("MTL") // non-standard code, known ledger spam
	STR = MustCurrency("STR") // stellar IOU
	XAU = MustCurrency("XAU") // gold
	XAG = MustCurrency("XAG") // silver
	XPT = MustCurrency("XPT") // platinum
)

// NewCurrency parses a currency code. The empty string and "XRP" both map
// to the native currency. Any other code must be exactly three printable
// ASCII characters.
func NewCurrency(code string) (Currency, error) {
	if code == "" || code == "XRP" {
		return XRP, nil
	}
	if len(code) != 3 {
		return Currency{}, fmt.Errorf("amount: currency code %q: must be 3 characters", code)
	}
	var c Currency
	for i := 0; i < 3; i++ {
		b := code[i]
		if b < 0x21 || b > 0x7e {
			return Currency{}, fmt.Errorf("amount: currency code %q: non-printable character", code)
		}
		c[i] = b
	}
	return c, nil
}

// MustCurrency is like NewCurrency but panics on invalid input. It is
// intended for package-level declarations of well-known codes.
func MustCurrency(code string) Currency {
	c, err := NewCurrency(code)
	if err != nil {
		panic(err)
	}
	return c
}

// IsXRP reports whether c is the native currency.
func (c Currency) IsXRP() bool { return c == XRP }

// String returns the three-character code, or "XRP" for the native
// currency.
func (c Currency) String() string {
	if c.IsXRP() {
		return "XRP"
	}
	return string(c[:])
}

// MarshalText implements encoding.TextMarshaler.
func (c Currency) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (c *Currency) UnmarshalText(text []byte) error {
	parsed, err := NewCurrency(string(text))
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

// Strength buckets currencies by market value per unit, as defined in
// Table I of the paper. The bucket selects the rounding resolutions used
// by the de-anonymization study.
type Strength int

const (
	// StrengthPowerful covers currencies whose unit is worth hundreds of
	// dollars or more (BTC, precious metals).
	StrengthPowerful Strength = iota + 1
	// StrengthMedium covers ordinary fiat currencies (USD, EUR, CNY, ...).
	StrengthMedium
	// StrengthWeak covers low-unit-value currencies (XRP, KRW, JPY-like)
	// and the spam codes CCK and MTL.
	StrengthWeak
)

// String implements fmt.Stringer.
func (s Strength) String() string {
	switch s {
	case StrengthPowerful:
		return "powerful"
	case StrengthMedium:
		return "medium"
	case StrengthWeak:
		return "weak"
	default:
		return fmt.Sprintf("Strength(%d)", int(s))
	}
}

// strengthOf maps the currencies named in Table I. Currencies absent from
// the table default to medium strength.
var strengthOf = map[Currency]Strength{
	BTC: StrengthPowerful,
	XAG: StrengthPowerful,
	XAU: StrengthPowerful,
	XPT: StrengthPowerful,

	CNY: StrengthMedium,
	EUR: StrengthMedium,
	USD: StrengthMedium,
	AUD: StrengthMedium,
	GBP: StrengthMedium,
	JPY: StrengthMedium,

	XRP: StrengthWeak,
	CCK: StrengthWeak,
	STR: StrengthWeak,
	KRW: StrengthWeak,
	MTL: StrengthWeak,
}

// StrengthOf returns the Table I strength group of c. Currencies not
// listed in the table are treated as medium strength, the paper's default
// for ordinary fiat.
func StrengthOf(c Currency) Strength {
	if s, ok := strengthOf[c]; ok {
		return s
	}
	return StrengthMedium
}

// ParseCurrencyList parses a comma-separated list of currency codes.
func ParseCurrencyList(s string) ([]Currency, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]Currency, 0, len(parts))
	for _, p := range parts {
		c, err := NewCurrency(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
