package serve

import (
	"testing"
)

// TestEcoShardsRecycledSealParity pins the seal-path recycling: the
// multi-shard ecosystem view reuses one merge-target collector across
// seals (Reset + re-merge) instead of allocating a fresh one per epoch,
// and every seal along the way must be byte-identical (as JSON) to a
// single-shot merge into a brand-new collector over the same records.
func TestEcoShardsRecycledSealParity(t *testing.T) {
	pages := genPages(t, 1500, 47)
	fpSt := newFingerprintState(1)
	defer fpSt.close()
	proj := newProjector(fpSt.plan())
	recs := make([]*pageRecord, len(pages))
	for i, p := range pages {
		recs[i] = new(pageRecord)
		proj.fromPage(p, recs[i])
	}

	const shards = 3
	recycled := newEcoShards(shards)
	cuts := []int{len(recs) / 4, len(recs) / 2, len(recs)}
	prev := 0
	for epoch, cut := range cuts {
		for i, rec := range recs[prev:cut] {
			recycled.apply((prev+i)%shards, rec)
		}
		// Reference: the same prefix, same partition, sealed by a shard
		// set that has never sealed before (merged target allocated fresh).
		fresh := newEcoShards(shards)
		for i, rec := range recs[:cut] {
			fresh.apply(i%shards, rec)
		}
		got := ecoJSON(t, recycled.snapshot(uint64(epoch), 99))
		want := ecoJSON(t, fresh.snapshot(uint64(epoch), 99))
		if string(got) != string(want) {
			t.Fatalf("seal %d (through %d records): recycled merge target diverges\ngot  %s\nwant %s",
				epoch, cut, got, want)
		}
		prev = cut
	}
}

// TestEcoShardsSealReusesMergeTarget asserts the optimization is
// actually on: steady-state seals allocate measurably less than seals
// forced to rebuild the merge target from scratch, because the Reset
// collector keeps its map buckets.
func TestEcoShardsSealReusesMergeTarget(t *testing.T) {
	pages := genPages(t, 2000, 48)
	fpSt := newFingerprintState(1)
	defer fpSt.close()
	proj := newProjector(fpSt.plan())

	const shards = 4
	e := newEcoShards(shards)
	rec := new(pageRecord)
	for i, p := range pages {
		proj.fromPage(p, rec)
		e.apply(i%shards, rec)
		rec = new(pageRecord)
	}
	e.snapshot(0, 1) // warm the merge target

	recycledAllocs := testing.AllocsPerRun(5, func() {
		e.snapshot(1, 1)
	})
	coldAllocs := testing.AllocsPerRun(5, func() {
		e.merged = nil // force a fresh merge target, the pre-pooling path
		e.snapshot(1, 1)
	})
	t.Logf("seal allocs: recycled=%.0f cold=%.0f", recycledAllocs, coldAllocs)
	if recycledAllocs >= coldAllocs {
		t.Errorf("recycled seal allocates %.0f, cold %.0f — pooling is not saving allocations",
			recycledAllocs, coldAllocs)
	}
}
