// Monitor: the paper's §IV data collection, live over TCP — and robust
// to the collection server's worst day. The example runs a scaled-down
// December 2015 period, serves its validation stream on an ephemeral
// port, and subscribes a resilient collection client. Halfway through
// the period the stream server is killed and restarted on the same
// address; the client reconnects, resumes from the last sequence number
// it saw, and the Figure 2 table it gathers is identical to a fault-free
// in-process collection of the same period.
//
//	go run ./examples/monitor
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"reflect"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/monitor"
	"ripplestudy/internal/netstream"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const rounds = 400
	const seed = 2015
	spec := consensus.December2015(rounds)

	// The ground truth: the same period collected in-process, no network.
	baseline, err := monitor.CollectPeriod(spec, consensus.Config{Seed: seed}, nil)
	if err != nil {
		return err
	}

	srv, err := netstream.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	address := srv.Addr()
	fmt.Printf("validation stream on %s (%s, %d rounds)\n", address, spec.Name, rounds)

	// The collection server: a resilient client that folds every event
	// into a Collector and survives the stream server dying under it.
	col := monitor.NewCollector()
	for _, s := range spec.Specs {
		if s.Label != "" {
			col.SetLabel(addr.KeyPairFromSeed(s.Seed).NodeID(), s.Label)
		}
	}
	rc := netstream.NewResilientClient(address, netstream.ResilientOptions{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     250 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- rc.Run(ctx, func(ev consensus.Event) error {
			col.Record(ev)
			return nil
		})
	}()

	// The "network": run the consensus rounds, publishing every event to
	// whichever server instance is currently alive.
	net := consensus.NewNetwork(consensus.Config{Seed: seed, StartTime: spec.Start}, spec.Specs)
	net.Subscribe(func(ev consensus.Event) { srv.Publish(ev) })

	catchUp := func() error {
		deadline := time.Now().Add(30 * time.Second)
		for rc.LastSeq() < net.EventsEmitted() {
			if time.Now().After(deadline) {
				return fmt.Errorf("client stuck at seq %d of %d", rc.LastSeq(), net.EventsEmitted())
			}
			srv.Flush()
			time.Sleep(5 * time.Millisecond)
		}
		return nil
	}

	for i := 1; i <= rounds; i++ {
		if _, err := net.RunRound(nil); err != nil {
			return err
		}
		if i == rounds/2 {
			// Kill the stream server mid-period and bring it back on the
			// same address. The client sees EOF, retries with backoff, and
			// resumes from the last sequence it recorded.
			if err := catchUp(); err != nil {
				return err
			}
			srv.Close()
			fmt.Printf("round %d: stream server killed; restarting on %s\n", i, address)
			for {
				srv, err = netstream.Serve(address)
				if err == nil {
					break
				}
				time.Sleep(10 * time.Millisecond) // port still releasing
			}
		}
	}
	if err := catchUp(); err != nil {
		return err
	}
	cancel()
	if err := <-done; err != nil && err != context.Canceled {
		return err
	}
	srv.Close()

	stats := rc.Stats()
	fmt.Printf("collected %d events over TCP (%d connects, %d reconnects, %d events lost)\n\n",
		col.Events(), stats.Connects, stats.Reconnects, stats.Missed)
	rep := col.Report(spec.Name)
	if err := rep.WriteTable(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\n%d validators observed; %d actively validating; %d signing pages that never validate\n",
		len(rep.Validators), rep.ActiveCount(0.5), rep.ZeroValidCount())
	if reflect.DeepEqual(rep, baseline) {
		fmt.Println("\nThe table matches the fault-free in-process collection exactly:")
		fmt.Println("the server restart cost the measurement nothing.")
	} else {
		fmt.Println("\nWARNING: the table differs from the fault-free baseline.")
	}
	fmt.Println("\nThe handful of active validators is the paper's §IV robustness concern:")
	fmt.Println("compromising them would endanger the whole system.")
	return nil
}
