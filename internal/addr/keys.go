package addr

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// KeyPair holds an ed25519 signing keypair together with the derived
// Ripple identifiers. Account holders and validators both use KeyPairs;
// accounts are addressed by AccountID, validators by NodeID.
type KeyPair struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// GenerateKeyPair creates a keypair from the given entropy source. Pass
// crypto/rand.Reader for real randomness or a deterministic reader for
// reproducible populations.
func GenerateKeyPair(rand io.Reader) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("addr: generating keypair: %w", err)
	}
	return &KeyPair{pub: pub, priv: priv}, nil
}

// KeyPairFromSeed deterministically derives a keypair from a 64-bit seed.
// The synthetic-history generator uses this so that account populations
// are reproducible run to run.
func KeyPairFromSeed(seed uint64) *KeyPair {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seed)
	h := sha256.Sum256(buf[:])
	priv := ed25519.NewKeyFromSeed(h[:])
	return &KeyPair{pub: priv.Public().(ed25519.PublicKey), priv: priv}
}

// PublicKey returns the raw 32-byte public key.
func (k *KeyPair) PublicKey() []byte { return []byte(k.pub) }

// AccountID returns the account identifier derived from the public key.
func (k *KeyPair) AccountID() AccountID { return AccountIDFromPublicKey(k.pub) }

// NodeID returns the validator node identifier derived from the public
// key.
func (k *KeyPair) NodeID() NodeID {
	n, err := NodeIDFromPublicKey(k.pub)
	if err != nil {
		panic(err) // unreachable: ed25519 public keys are 32 bytes
	}
	return n
}

// Sign signs msg and returns the 64-byte ed25519 signature.
func (k *KeyPair) Sign(msg []byte) []byte { return ed25519.Sign(k.priv, msg) }

// Verify reports whether sig is a valid signature of msg under the 32-byte
// public key pub.
func Verify(pub, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(pub), msg, sig)
}
