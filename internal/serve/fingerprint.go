package serve

import (
	"ripplestudy/internal/deanon"
	"ripplestudy/internal/ledger"
)

// fingerprintState is the mutable Figure 3 / Table I view: the
// fingerprint count tables for the paper's ten resolution tuples,
// maintained incrementally by a deanon.IncStudy so both the
// information-gain rows and individual sender-uniqueness lookups are
// O(1) at any point of the stream.
type fingerprintState struct {
	study *deanon.IncStudy
}

func newFingerprintState() *fingerprintState {
	return &fingerprintState{study: deanon.NewIncStudy(deanon.Figure3Rows)}
}

// apply folds one sealed page's successful payments in.
func (f *fingerprintState) apply(p *ledger.Page) {
	for i := range p.Txs {
		if feat, ok := deanon.FromTransaction(p, p.Txs[i], p.Metas[i]); ok {
			f.study.Observe(feat)
		}
	}
}

// snapshot seals the study as an immutable FingerprintSnapshot. The
// count tables are deep-copied (copy-on-publish): two slice copies per
// resolution, no rehashing. Amortized across PublishBatch pages under
// load.
func (f *fingerprintState) snapshot(epoch, appliedSeq uint64) *FingerprintSnapshot {
	return &FingerprintSnapshot{
		Epoch:      epoch,
		AppliedSeq: appliedSeq,
		Payments:   f.study.Payments(),
		Rows:       f.study.Results(),
		study:      f.study.Clone(),
	}
}

// FingerprintSnapshot is one sealed epoch of the de-anonymization view.
type FingerprintSnapshot struct {
	// Epoch identifies the publish this snapshot came from.
	Epoch uint64 `json:"epoch"`
	// AppliedSeq is the highest ledger sequence folded in.
	AppliedSeq uint64 `json:"applied_seq"`
	// Payments is the number of observable payments fingerprinted.
	Payments int `json:"payments"`
	// Rows holds the Figure 3 information-gain rows.
	Rows []deanon.RowResult `json:"rows"`

	// study is the sealed clone answering lookups; read-only.
	study *deanon.IncStudy
}

// Lookup reports how many payments in this snapshot share the
// observation's fingerprint at Figure 3 resolution row — 0 never seen,
// 1 unique (the sender is de-anonymized), 2 ambiguous (≥2). O(1).
func (s *FingerprintSnapshot) Lookup(row int, f deanon.Features) (count uint8, ok bool) {
	if row < 0 || row >= len(s.Rows) {
		return 0, false
	}
	return s.study.Lookup(row, f), true
}

// Resolutions returns the snapshot's resolution rows.
func (s *FingerprintSnapshot) Resolutions() []deanon.Resolution {
	return s.study.Resolutions()
}

// CountBytes reports the sealed tables' resident footprint.
func (s *FingerprintSnapshot) CountBytes() int { return s.study.CountBytes() }
