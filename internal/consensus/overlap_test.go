package consensus

import (
	"testing"
)

func TestForkFeasibleClosedForm(t *testing.T) {
	tests := []struct {
		overlap, quorum float64
		want            bool
	}{
		{0.0, 0.8, true},
		{0.2, 0.8, true},
		{0.4, 0.8, true}, // boundary
		{0.41, 0.8, false},
		{0.6, 0.8, false},
		{1.0, 0.8, false},
		// At the original 50% majority the threshold is 100%: any
		// partial overlap admits forks — the weakness that drove the
		// quorum increase the paper mentions.
		{0.9, 0.5, true},
		{1.0, 0.5, true},
	}
	for _, tt := range tests {
		if got := ForkFeasible(tt.overlap, tt.quorum); got != tt.want {
			t.Errorf("ForkFeasible(%.2f, %.2f) = %v, want %v", tt.overlap, tt.quorum, got, tt.want)
		}
	}
}

func TestSimulationMatchesFeasibility(t *testing.T) {
	for _, overlap := range []float64{0, 0.1, 0.2, 0.3, 0.5, 0.6, 0.8, 1.0} {
		res := SimulateUNLOverlap(OverlapConfig{
			GroupSize: 40, Overlap: overlap, Quorum: 0.8, Rounds: 20_000, Seed: 1,
		})
		if !res.ForkPossible && res.ForkRounds > 0 {
			t.Errorf("overlap %.1f: %d forks observed where infeasible", overlap, res.ForkRounds)
		}
		// Deep in the feasible region forks must actually occur.
		if overlap <= 0.2 && res.ForkRounds == 0 {
			t.Errorf("overlap %.1f: no forks observed in the feasible region", overlap)
		}
	}
}

func TestDisjointUNLsForkEveryRound(t *testing.T) {
	res := SimulateUNLOverlap(OverlapConfig{
		GroupSize: 20, Overlap: 0, Quorum: 0.8, Rounds: 1000, Seed: 2,
	})
	if res.ForkRate != 1.0 {
		t.Errorf("disjoint UNLs fork rate = %v, want 1.0 (each group is its own network)", res.ForkRate)
	}
}

func TestIdenticalUNLsNeverFork(t *testing.T) {
	res := SimulateUNLOverlap(OverlapConfig{
		GroupSize: 20, Overlap: 1.0, Quorum: 0.8, Rounds: 5000, Seed: 3,
	})
	if res.ForkRounds != 0 {
		t.Errorf("identical UNLs forked %d times", res.ForkRounds)
	}
	// With everything shared and a coin-flip split, neither side
	// usually reaches 80%: the round stalls rather than forks — safety
	// over liveness.
	if res.StallRounds == 0 {
		t.Error("identical UNLs under a symmetric split should stall, not decide")
	}
}

func TestOverlapSweepMonotone(t *testing.T) {
	overlaps := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	sweep := OverlapSweep(30, 0.8, overlaps, 20_000, 7)
	if len(sweep) != len(overlaps) {
		t.Fatalf("sweep = %d points", len(sweep))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].ForkRate > sweep[i-1].ForkRate+0.02 {
			t.Errorf("fork rate increased with overlap: %.2f -> %.2f at %.1f",
				sweep[i-1].ForkRate, sweep[i].ForkRate, overlaps[i])
		}
	}
	// The curve crosses from certain forks to none.
	if sweep[0].ForkRate < 0.99 {
		t.Errorf("fork rate at zero overlap = %v, want ≈1", sweep[0].ForkRate)
	}
	last := sweep[len(sweep)-1]
	if last.ForkRate != 0 {
		t.Errorf("fork rate at 60%% overlap = %v, want 0", last.ForkRate)
	}
}
