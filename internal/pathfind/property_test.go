package pathfind

import (
	"errors"
	"math/rand"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/orderbook"
	"ripplestudy/internal/trustgraph"
)

// TestPropPlanFlowConservation builds random trust topologies, plans
// random same-currency payments, and verifies plan-level conservation:
// per intermediate node, inflow equals outflow; the source's net outflow
// and the destination's net inflow both equal Delivered; and the sum of
// per-path values equals Delivered.
func TestPropPlanFlowConservation(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		g := trustgraph.New()
		const n = 10
		accounts := make([]addr.AccountID, n)
		for i := range accounts {
			accounts[i] = addr.KeyPairFromSeed(uint64(1000*trial + i + 1)).AccountID()
		}
		for e := 0; e < 25; e++ {
			a, b := accounts[r.Intn(n)], accounts[r.Intn(n)]
			if a == b {
				continue
			}
			_ = g.SetTrust(a, b, amount.USD, amount.FromInt64(int64(5+r.Intn(50))))
		}
		f := New(g, orderbook.New())
		src, dst := accounts[0], accounts[1]
		want := amount.FromInt64(int64(1 + r.Intn(80)))
		plan, err := f.FindPayment(src, dst, amount.USD, amount.New(amount.USD, want))
		if errors.Is(err, ErrNoPath) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Net flow per account.
		net := make(map[addr.AccountID]amount.Value)
		for _, fl := range plan.TrustFlows {
			out, err := net[fl.From].Sub(fl.Value)
			if err != nil {
				t.Fatal(err)
			}
			net[fl.From] = out
			in, err := net[fl.To].Add(fl.Value)
			if err != nil {
				t.Fatal(err)
			}
			net[fl.To] = in
		}
		for a, v := range net {
			switch a {
			case src:
				if v.Neg().Cmp(plan.Delivered) != 0 {
					t.Fatalf("trial %d: source outflow %s != delivered %s", trial, v.Neg(), plan.Delivered)
				}
			case dst:
				if v.Cmp(plan.Delivered) != 0 {
					t.Fatalf("trial %d: destination inflow %s != delivered %s", trial, v, plan.Delivered)
				}
			default:
				if !v.IsZero() {
					t.Fatalf("trial %d: intermediate %s has net flow %s", trial, a.Short(), v)
				}
			}
		}
		// Path values sum to Delivered.
		sum := amount.Zero
		for _, p := range plan.Paths {
			var err error
			if sum, err = sum.Add(p.Value); err != nil {
				t.Fatal(err)
			}
		}
		if sum.Cmp(plan.Delivered) != 0 {
			t.Fatalf("trial %d: path values sum %s != delivered %s", trial, sum, plan.Delivered)
		}
		// Delivered never exceeds the request.
		if plan.Delivered.Cmp(want) > 0 {
			t.Fatalf("trial %d: delivered %s > requested %s", trial, plan.Delivered, want)
		}
	}
}

// TestPropPlanRespectsCapacities: every planned flow fits the graph's
// capacity when applied in order (exactly what the engine does).
func TestPropPlanRespectsCapacities(t *testing.T) {
	r := rand.New(rand.NewSource(56))
	for trial := 0; trial < 60; trial++ {
		g := trustgraph.New()
		const n = 8
		accounts := make([]addr.AccountID, n)
		for i := range accounts {
			accounts[i] = addr.KeyPairFromSeed(uint64(2000*trial + i + 1)).AccountID()
		}
		for e := 0; e < 20; e++ {
			a, b := accounts[r.Intn(n)], accounts[r.Intn(n)]
			if a == b {
				continue
			}
			_ = g.SetTrust(a, b, amount.USD, amount.FromInt64(int64(5+r.Intn(40))))
		}
		f := New(g, orderbook.New())
		src, dst := accounts[0], accounts[1]
		plan, err := f.FindPayment(src, dst, amount.USD, amount.MustAmount("60/USD"))
		if errors.Is(err, ErrNoPath) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		// Applying the flows in order must never fail.
		for i, fl := range plan.TrustFlows {
			if err := g.ApplyFlow(fl.From, fl.To, fl.Currency, fl.Value); err != nil {
				t.Fatalf("trial %d: flow %d unappliable: %v", trial, i, err)
			}
		}
		if errs := g.CheckInvariants(); len(errs) != 0 {
			t.Fatalf("trial %d: invariants after apply: %v", trial, errs[0])
		}
	}
}

// TestPropShortestPathsFirst: the first path found is never longer than
// subsequent parallel paths (BFS order).
func TestPropShortestPathsFirst(t *testing.T) {
	r := rand.New(rand.NewSource(57))
	for trial := 0; trial < 40; trial++ {
		g := trustgraph.New()
		const n = 12
		accounts := make([]addr.AccountID, n)
		for i := range accounts {
			accounts[i] = addr.KeyPairFromSeed(uint64(3000*trial + i + 1)).AccountID()
		}
		for e := 0; e < 30; e++ {
			a, b := accounts[r.Intn(n)], accounts[r.Intn(n)]
			if a == b {
				continue
			}
			_ = g.SetTrust(a, b, amount.USD, amount.FromInt64(int64(2+r.Intn(10))))
		}
		f := New(g, orderbook.New())
		plan, err := f.FindPayment(accounts[0], accounts[1], amount.USD, amount.MustAmount("40/USD"))
		if err != nil {
			continue
		}
		for i := 1; i < len(plan.Paths); i++ {
			if plan.Paths[i].Hops < plan.Paths[0].Hops {
				t.Fatalf("trial %d: later path shorter (%d) than first (%d): residual graph should only lengthen",
					trial, plan.Paths[i].Hops, plan.Paths[0].Hops)
			}
		}
	}
}
