// Benchmark harness: one benchmark per table and figure of the paper,
// plus ablation benches for the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// The figure/table benches share one generated history (built once);
// each bench measures the cost of regenerating its experiment's data
// from that history, reporting domain metrics (payments/s, rounds/s)
// alongside ns/op.
package ripplestudy_test

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/analysis"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/deanon"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/ledgerstore"
	"ripplestudy/internal/monitor"
	"ripplestudy/internal/orderbook"
	"ripplestudy/internal/pathfind"
	"ripplestudy/internal/replay"
	"ripplestudy/internal/synth"
	"ripplestudy/internal/trustgraph"
)

// sharedHistory builds the benchmark dataset once.
var (
	histOnce  sync.Once
	histPages []*ledger.Page
	histRes   *synth.Result
	histErr   error
)

const benchPayments = 12_000

func history(b *testing.B) ([]*ledger.Page, *synth.Result) {
	b.Helper()
	histOnce.Do(func() {
		histRes, histErr = synth.Generate(synth.Config{
			Payments:       benchPayments,
			Seed:           1,
			SkipSignatures: true,
		}, func(p *ledger.Page) error {
			histPages = append(histPages, p)
			return nil
		})
	})
	if histErr != nil {
		b.Fatal(histErr)
	}
	return histPages, histRes
}

// BenchmarkGeneratorThroughput measures the synthetic-history generator:
// full transactions through the real payment engine.
func BenchmarkGeneratorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := synth.Generate(synth.Config{
			Payments:       2000,
			Seed:           int64(i + 1),
			SkipSignatures: true,
		}, func(*ledger.Page) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.PaymentsOK), "payments/op")
	}
}

// BenchmarkFig2Consensus regenerates a scaled December 2015 collection
// period: consensus rounds, validation stream, and the Figure 2 report.
func BenchmarkFig2Consensus(b *testing.B) {
	const rounds = 100
	for i := 0; i < b.N; i++ {
		spec := consensus.December2015(rounds)
		rep, err := monitor.CollectPeriod(spec, consensus.Config{Seed: int64(i + 1)}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Validators) != 34 {
			b.Fatalf("unexpected validator count %d", len(rep.Validators))
		}
	}
	b.ReportMetric(rounds, "rounds/op")
}

// BenchmarkFig3Deanon regenerates Figure 3: one streaming pass computing
// the information gain of all ten resolution tuples.
func BenchmarkFig3Deanon(b *testing.B) {
	pages, _ := history(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study := deanon.NewStudy(deanon.Figure3Rows)
		for _, p := range pages {
			for j := range p.Txs {
				if f, ok := deanon.FromTransaction(p, p.Txs[j], p.Metas[j]); ok {
					study.Observe(f)
				}
			}
		}
		rows := study.Results()
		if rows[0].IG < 0.9 {
			b.Fatalf("IG collapsed: %v", rows[0].IG)
		}
	}
	b.ReportMetric(float64(benchPayments), "payments/op")
}

// baselineFingerprint is the pre-optimization fingerprint path — a
// fresh hash.Hash and a fresh Table I rounding per (payment,
// resolution) pair — kept as the performance baseline BenchmarkFigure3
// measures the sharded pipeline against.
func baselineFingerprint(f deanon.Features, res deanon.Resolution) deanon.Fingerprint {
	h := fnv.New64a()
	var buf [16]byte
	if res.Amount != deanon.AmountOff {
		v := deanon.RoundAmount(f.Amount, f.Currency, res.Amount)
		e := uint64(int64(v.Exponent()))
		s := uint64(0)
		if v.IsNegative() {
			s = 1
		}
		binary.BigEndian.PutUint64(buf[:8], v.Mantissa())
		binary.BigEndian.PutUint64(buf[8:16], e<<1|s)
		h.Write([]byte{'A'})
		h.Write(buf[:])
	}
	if res.Time != deanon.TimeOff {
		binary.BigEndian.PutUint64(buf[:8], uint64(deanon.CoarsenTime(f.Time, res.Time)))
		h.Write([]byte{'T'})
		h.Write(buf[:8])
	}
	if res.Currency {
		h.Write([]byte{'C'})
		h.Write(f.Currency[:])
	}
	if res.Destination {
		h.Write([]byte{'D'})
		h.Write(f.Destination[:])
	}
	return deanon.Fingerprint(h.Sum64())
}

// benchFeatures extracts the payment features of the shared history.
func benchFeatures(b *testing.B) []deanon.Features {
	b.Helper()
	pages, _ := history(b)
	var feats []deanon.Features
	for _, p := range pages {
		for j := range p.Txs {
			if f, ok := deanon.FromTransaction(p, p.Txs[j], p.Metas[j]); ok {
				feats = append(feats, f)
			}
		}
	}
	return feats
}

// BenchmarkFigure3 is the headline pipeline benchmark: the full ten-row
// Figure 3 information-gain computation over one payment stream.
//
//	baseline    pre-optimization path: hash.Hash + rounding per pair
//	sequential  zero-alloc Study (inline FNV, features encoded once)
//	parallel    sharded ParallelStudy, GOMAXPROCS feeders
//
// Every variant recomputes the complete study per iteration; the
// payments/s metric is the domain throughput of one full Figure 3 run.
func BenchmarkFigure3(b *testing.B) {
	feats := benchFeatures(b)
	check := func(b *testing.B, rows []deanon.RowResult) {
		b.Helper()
		if rows[0].IG < 0.9 {
			b.Fatalf("IG collapsed: %v", rows[0].IG)
		}
	}
	reportThroughput := func(b *testing.B) {
		b.ReportMetric(float64(len(feats))*float64(b.N)/b.Elapsed().Seconds(), "payments/s")
	}

	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			counts := make([]map[deanon.Fingerprint]uint32, len(deanon.Figure3Rows))
			for r := range counts {
				counts[r] = make(map[deanon.Fingerprint]uint32)
			}
			for _, f := range feats {
				for r, res := range deanon.Figure3Rows {
					counts[r][baselineFingerprint(f, res)]++
				}
			}
			rows := make([]deanon.RowResult, len(deanon.Figure3Rows))
			for r := range counts {
				for _, c := range counts[r] {
					if c == 1 {
						rows[r].Unique++
					}
				}
				rows[r].IG = float64(rows[r].Unique) / float64(len(feats))
			}
			check(b, rows)
		}
		reportThroughput(b)
	})

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			study := deanon.NewStudy(deanon.Figure3Rows)
			for _, f := range feats {
				study.Observe(f)
			}
			check(b, study.Results())
		}
		reportThroughput(b)
	})

	b.Run("parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		shardBits := 0
		for 1<<shardBits < workers {
			shardBits++
		}
		for i := 0; i < b.N; i++ {
			study := deanon.NewParallelStudy(deanon.Figure3Rows, shardBits)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				fd := study.Feeder()
				wg.Add(1)
				go func(w int, fd *deanon.Feeder) {
					defer wg.Done()
					for j := w; j < len(feats); j += workers {
						fd.Observe(feats[j])
					}
				}(w, fd)
			}
			wg.Wait()
			check(b, study.Results())
			// Recycle the count tables: steady-state reuse is the mode the
			// serving layer runs this pipeline in.
			study.Close()
		}
		reportThroughput(b)
	})
}

// BenchmarkFig4to6Analysis regenerates Figures 4, 5, and 6: the
// streaming ecosystem statistics.
func BenchmarkFig4to6Analysis(b *testing.B) {
	pages, _ := history(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := analysis.NewCollector()
		for _, p := range pages {
			if err := c.Page(p); err != nil {
				b.Fatal(err)
			}
		}
		if c.CurrencyHistogram()[0].Currency != amount.XRP {
			b.Fatal("top currency is not XRP")
		}
		_ = c.Survival(amount.BTC, false, analysis.DefaultSurvivalGrid())
		_ = c.HopHistogram()
		_ = c.ParallelHistogram()
	}
}

// BenchmarkFig7Intermediaries regenerates Figure 7: top-50 extraction
// and trust/balance profiling.
func BenchmarkFig7Intermediaries(b *testing.B) {
	pages, res := history(b)
	c := analysis.NewCollector()
	for _, p := range pages {
		if err := c.Page(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top := c.TopIntermediaries(50, res.Population.Registry())
		analysis.ProfileTop(top, res.Engine.Graph(), synth.RateEUR)
		if len(top) == 0 {
			b.Fatal("no intermediaries")
		}
	}
}

// BenchmarkTable2Replay regenerates Table II: state rebuild, ablation,
// and post-snapshot replay.
//
//	sequential      replay.Run — the reference semantics
//	parallel        replay.RunParallel, GOMAXPROCS planner workers
//	parallel-store  RunParallel over a disk store (segment sequence
//	                index + decode-ahead instead of an in-memory slice)
//
// The payments/s metric counts the post-snapshot payments the replay
// submitted per wall-clock second, end to end (including the state
// rebuild — the paper's experiment always pays it).
func BenchmarkTable2Replay(b *testing.B) {
	pages, _ := history(b)
	snap := pages[len(pages)*7/10].Header.Sequence
	check := func(b *testing.B, res *replay.Result) {
		b.Helper()
		if res.Cross.Delivered != 0 {
			b.Fatal("cross-currency payments survived the ablation")
		}
		if res.Total().Submitted == 0 {
			b.Fatal("nothing replayed")
		}
	}

	b.Run("sequential", func(b *testing.B) {
		submitted := 0
		for i := 0; i < b.N; i++ {
			res, err := replay.Run(replay.FromPages(pages), snap)
			if err != nil {
				b.Fatal(err)
			}
			check(b, res)
			submitted = res.Total().Submitted
		}
		b.ReportMetric(float64(submitted)*float64(b.N)/b.Elapsed().Seconds(), "payments/s")
	})

	b.Run("parallel", func(b *testing.B) {
		submitted, conflicts, planned := 0, 0, 0
		for i := 0; i < b.N; i++ {
			res, err := replay.RunParallel(replay.FromPages(pages), snap, runtime.GOMAXPROCS(0))
			if err != nil {
				b.Fatal(err)
			}
			check(b, res)
			submitted = res.Total().Submitted
			conflicts = res.Stats.Conflicts
			planned = res.Stats.PlannedAhead + res.Stats.Conflicts
		}
		b.ReportMetric(float64(submitted)*float64(b.N)/b.Elapsed().Seconds(), "payments/s")
		if planned > 0 {
			b.ReportMetric(100*float64(conflicts)/float64(planned), "replan-%")
		}
	})

	b.Run("parallel-store", func(b *testing.B) {
		dir := b.TempDir()
		store, err := ledgerstore.Create(dir)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pages {
			if err := store.Append(p); err != nil {
				b.Fatal(err)
			}
		}
		if err := store.Close(); err != nil {
			b.Fatal(err)
		}
		if _, err := store.SegmentRanges(); err != nil {
			b.Fatal(err) // warm the sequence index sidecar
		}
		b.ResetTimer()
		submitted := 0
		for i := 0; i < b.N; i++ {
			res, err := replay.RunParallel(store, snap, runtime.GOMAXPROCS(0))
			if err != nil {
				b.Fatal(err)
			}
			check(b, res)
			submitted = res.Total().Submitted
		}
		b.ReportMetric(float64(submitted)*float64(b.N)/b.Elapsed().Seconds(), "payments/s")
	})
}

// BenchmarkCheckpointResume measures what the state-tree checkpoint
// sidecar buys: rebuilding the full engine state from a disk store cold
// (replaying every page) versus resuming from the nearest persisted
// checkpoint (loading the sealed tree and replaying only the tail).
// Both paths end in the same StateDigest — the resume differential
// tests pin that — so the ratio of the two ns/op numbers is pure
// replay-work saved.
func BenchmarkCheckpointResume(b *testing.B) {
	pages, _ := history(b)
	last := pages[len(pages)-1].Header.Sequence
	dir := b.TempDir()
	store, err := ledgerstore.Create(dir)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range pages {
		if err := store.Append(p); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
	if _, err := store.SegmentRanges(); err != nil {
		b.Fatal(err) // warm the sequence index sidecar
	}

	// Seed the checkpoint sidecar once; 8 checkpoints across the history
	// leave a short tail past the last one.
	every := uint64(len(pages) / 8)
	if every == 0 {
		every = 1
	}
	ref, err := replay.BuildStateOpts(store, last, replay.BuildOptions{CheckpointEvery: every, DisableResume: true})
	if err != nil {
		b.Fatal(err)
	}
	wantDigest := ref.StateDigest()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := replay.BuildStateOpts(store, last, replay.BuildOptions{DisableResume: true})
			if err != nil {
				b.Fatal(err)
			}
			if eng.StateDigest() != wantDigest {
				b.Fatal("cold rebuild digest diverged")
			}
		}
		b.ReportMetric(float64(len(pages)), "pages/op")
	})
	b.Run("resume", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := replay.BuildStateOpts(store, last, replay.BuildOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if eng.StateDigest() != wantDigest {
				b.Fatal("resumed rebuild digest diverged")
			}
		}
		b.ReportMetric(float64(len(pages)), "pages/op")
	})
}

// BenchmarkPathfind measures the scratch-workspace BFS router on credit
// networks of increasing breadth and depth. With the dense-index
// workspace, steady-state searches allocate only the returned plan.
func BenchmarkPathfind(b *testing.B) {
	shapes := []struct {
		name          string
		width, length int
	}{
		{"narrow-4x6", 4, 6},
		{"wide-16x4", 16, 4},
		{"deep-2x30", 2, 30},
	}
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			g, src, dst := chainNetwork(sh.width, sh.length)
			f := pathfind.New(g, orderbook.New())
			want := amount.MustAmount("150/USD") // forces multi-path splits
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := f.FindPayment(src, dst, amount.USD, want)
				if err != nil {
					b.Fatal(err)
				}
				if !plan.Delivered.IsPositive() {
					b.Fatal("no delivery")
				}
			}
		})
	}
}

// BenchmarkTableIRounding measures the Table I rounding primitive.
func BenchmarkTableIRounding(b *testing.B) {
	v := amount.MustParse("12345.6789")
	for i := 0; i < b.N; i++ {
		for _, res := range []deanon.AmountRes{deanon.AmountMax, deanon.AmountAvg, deanon.AmountLow} {
			_ = deanon.RoundAmount(v, amount.USD, res)
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationFingerprintHash compares the 64-bit hashed
// fingerprint against exact string keys for uniqueness counting.
func BenchmarkAblationFingerprintHash(b *testing.B) {
	pages, _ := history(b)
	var feats []deanon.Features
	for _, p := range pages {
		for j := range p.Txs {
			if f, ok := deanon.FromTransaction(p, p.Txs[j], p.Metas[j]); ok {
				feats = append(feats, f)
			}
		}
	}
	res := deanon.Figure3Rows[0]

	b.Run("fnv64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			counts := make(map[deanon.Fingerprint]uint32, len(feats))
			for _, f := range feats {
				counts[deanon.FingerprintOf(f, res)]++
			}
			if len(counts) == 0 {
				b.Fatal("no fingerprints")
			}
		}
	})
	b.Run("string-keys", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			counts := make(map[string]uint32, len(feats))
			for _, f := range feats {
				key := fmt.Sprintf("%s|%d|%s|%s",
					deanon.RoundAmount(f.Amount, f.Currency, deanon.AmountMax),
					deanon.CoarsenTime(f.Time, deanon.TimeSeconds),
					f.Currency, f.Destination)
				counts[key]++
			}
			if len(counts) == 0 {
				b.Fatal("no fingerprints")
			}
		}
	})
}

// chainNetwork builds a credit network of `width` parallel chains, each
// with `length` intermediaries, between a fixed source and destination.
func chainNetwork(width, length int) (*trustgraph.Graph, addr.AccountID, addr.AccountID) {
	g := trustgraph.New()
	src := addr.KeyPairFromSeed(1).AccountID()
	dst := addr.KeyPairFromSeed(2).AccountID()
	lim := amount.MustParse("100")
	seed := uint64(100)
	for w := 0; w < width; w++ {
		prev := src
		for l := 0; l < length; l++ {
			seed++
			mid := addr.KeyPairFromSeed(seed).AccountID()
			_ = g.SetTrust(mid, prev, amount.USD, lim)
			prev = mid
		}
		_ = g.SetTrust(dst, prev, amount.USD, lim)
	}
	return g, src, dst
}

// BenchmarkAblationHopLimit measures path-finding cost and reachability
// across hop limits: short limits are cheap but blind to long routes.
func BenchmarkAblationHopLimit(b *testing.B) {
	for _, maxHops := range []int{3, 5, 8} {
		b.Run(fmt.Sprintf("maxhops=%d", maxHops), func(b *testing.B) {
			g, src, dst := chainNetwork(4, 6) // 6 intermediaries per chain
			f := pathfind.New(g, orderbook.New(), pathfind.WithMaxHops(maxHops))
			found := 0
			for i := 0; i < b.N; i++ {
				plan, err := f.FindPayment(src, dst, amount.USD, amount.MustAmount("50/USD"))
				if err == nil && plan.Delivered.IsPositive() {
					found++
				}
			}
			b.ReportMetric(float64(found)/float64(b.N), "reachable")
		})
	}
}

// BenchmarkAblationThreshold compares the rising proposal-threshold
// schedule against a flat 95% first round: the schedule needs more
// iterations but converges disputed sets deterministically.
func BenchmarkAblationThreshold(b *testing.B) {
	schedules := map[string][]float64{
		"rising-50-65-70-95": {0.5, 0.65, 0.7, 0.95},
		"flat-95":            {0.95},
	}
	for name, thresholds := range schedules {
		b.Run(name, func(b *testing.B) {
			iters := 0
			sealed := 0
			for i := 0; i < b.N; i++ {
				specs := make([]consensus.ValidatorSpec, 0, 10)
				for v := 0; v < 10; v++ {
					specs = append(specs, consensus.ValidatorSpec{
						Behavior: consensus.BehaviorActive, Seed: uint64(v + 1),
						Availability: 1.0, Trusted: true,
					})
				}
				net := consensus.NewNetwork(consensus.Config{
					Seed: int64(i + 1), Thresholds: thresholds, TxDropRate: 0.15,
				}, specs)
				alice := addr.KeyPairFromSeed(55)
				net.Engine().Fund(alice.AccountID(), 1_000_000_000)
				var txs []*ledger.Tx
				for t := 0; t < 20; t++ {
					tx := &ledger.Tx{
						Type:        ledger.TxPayment,
						Account:     alice.AccountID(),
						Sequence:    uint32(t + 1),
						Fee:         10,
						Destination: addr.KeyPairFromSeed(uint64(200 + t)).AccountID(),
						Amount:      amount.XRPAmount(1_000_000),
					}
					txs = append(txs, tx)
				}
				res, err := net.RunRound(txs)
				if err != nil {
					b.Fatal(err)
				}
				iters += res.ProposalIters
				sealed += len(res.Page.Txs)
			}
			b.ReportMetric(float64(iters)/float64(b.N), "proposal-iters")
			b.ReportMetric(float64(sealed)/float64(b.N), "txs-sealed")
		})
	}
}

// BenchmarkAblationAutobridge compares a direct cross-currency book
// against the two-leg XRP auto-bridge.
func BenchmarkAblationAutobridge(b *testing.B) {
	setup := func(direct bool) (*pathfind.Finder, addr.AccountID, addr.AccountID) {
		g := trustgraph.New()
		books := orderbook.New()
		src := addr.KeyPairFromSeed(1).AccountID()
		dst := addr.KeyPairFromSeed(2).AccountID()
		mm := addr.KeyPairFromSeed(3)
		_ = g.SetTrust(mm.AccountID(), src, amount.EUR, amount.MustParse("1e6"))
		_ = g.SetTrust(dst, mm.AccountID(), amount.USD, amount.MustParse("1e6"))
		if direct {
			_ = books.Place(&orderbook.Offer{
				Owner: mm.AccountID(), Seq: 1,
				Pays: amount.MustAmount("90000/EUR"), Gets: amount.MustAmount("100000/USD"),
			})
		} else {
			_ = books.Place(&orderbook.Offer{
				Owner: mm.AccountID(), Seq: 1,
				Pays: amount.MustAmount("90000/EUR"), Gets: amount.MustAmount("11250000/XRP"),
			})
			_ = books.Place(&orderbook.Offer{
				Owner: mm.AccountID(), Seq: 2,
				Pays: amount.MustAmount("12500000/XRP"), Gets: amount.MustAmount("100000/USD"),
			})
		}
		return pathfind.New(g, books), src, dst
	}
	for _, mode := range []string{"direct-book", "xrp-autobridge"} {
		b.Run(mode, func(b *testing.B) {
			f, src, dst := setup(mode == "direct-book")
			for i := 0; i < b.N; i++ {
				plan, err := f.FindPayment(src, dst, amount.EUR, amount.MustAmount("100/USD"))
				if err != nil {
					b.Fatal(err)
				}
				if plan.Delivered.Cmp(amount.MustParse("100")) != 0 {
					b.Fatal("not delivered")
				}
			}
		})
	}
}

// BenchmarkStore measures the persistence layer: append throughput and
// streaming-read throughput (the "parse 500 GB" path).
func BenchmarkStore(b *testing.B) {
	pages, _ := history(b)
	b.Run("append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			store, err := ledgerstore.Create(dir)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, p := range pages {
				if err := store.Append(p); err != nil {
					b.Fatal(err)
				}
			}
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(pages)), "pages/op")
		}
	})
	b.Run("stream", func(b *testing.B) {
		dir := b.TempDir()
		store, err := ledgerstore.Create(dir)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pages {
			if err := store.Append(p); err != nil {
				b.Fatal(err)
			}
		}
		if err := store.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			if err := store.Pages(func(*ledger.Page) error { n++; return nil }); err != nil {
				b.Fatal(err)
			}
			if n != len(pages) {
				b.Fatalf("read %d of %d pages", n, len(pages))
			}
		}
		b.ReportMetric(float64(len(pages)), "pages/op")
	})
}

// BenchmarkMitigation measures the wallet-splitting study (extension).
func BenchmarkMitigation(b *testing.B) {
	pages, _ := history(b)
	var feats []deanon.Features
	for _, p := range pages {
		for j := range p.Txs {
			if f, ok := deanon.FromTransaction(p, p.Txs[j], p.Metas[j]); ok {
				feats = append(feats, f)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := deanon.MitigationStudy(feats, []int{1, 2, 4, 8})
		if rows[0].Exposure == 0 {
			b.Fatal("no exposure measured")
		}
	}
}

// BenchmarkLedgerCodec measures the canonical page serialization the
// store and hashing paths depend on.
func BenchmarkLedgerCodec(b *testing.B) {
	pages, _ := history(b)
	// Pick a mid-history page with transactions.
	var page *ledger.Page
	for _, p := range pages {
		if len(p.Txs) > 3 {
			page = p
			break
		}
	}
	if page == nil {
		page = pages[len(pages)/2]
	}
	b.Run("encode", func(b *testing.B) {
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = page.Encode(buf[:0])
		}
	})
	data := page.Encode(nil)
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ledger.DecodePage(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}
