package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
)

// The canonical binary codec. Encoding is deterministic — a requirement
// for hashing and signing: fields are written in a fixed order with
// fixed-width big-endian integers and length-prefixed byte strings.

// ErrTruncated is returned when decoding runs out of input.
var ErrTruncated = errors.New("ledger: truncated input")

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

func (e *encoder) bytes(b []byte) {
	if len(b) > math.MaxUint16 {
		panic("ledger: byte string too long") // internal invariant; no user data reaches here
	}
	e.u16(uint16(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) account(id addr.AccountID) { e.buf = append(e.buf, id[:]...) }
func (e *encoder) hash(h Hash)               { e.buf = append(e.buf, h[:]...) }

func (e *encoder) value(v amount.Value) {
	neg := uint8(0)
	if v.IsNegative() {
		neg = 1
	}
	e.u8(neg)
	e.u64(v.Mantissa())
	e.u16(uint16(int16(v.Exponent())))
}

func (e *encoder) amount(a amount.Amount) {
	c := a.Currency
	e.buf = append(e.buf, c[0], c[1], c[2])
	e.value(a.Value)
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrTruncated
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) bytes() []byte {
	n := int(d.u16())
	if n == 0 {
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

func (d *decoder) account() addr.AccountID {
	var id addr.AccountID
	b := d.take(20)
	if b != nil {
		copy(id[:], b)
	}
	return id
}

func (d *decoder) hash() Hash {
	var h Hash
	b := d.take(32)
	if b != nil {
		copy(h[:], b)
	}
	return h
}

func (d *decoder) value() amount.Value {
	neg := d.u8()
	mant := d.u64()
	exp := int(int16(d.u16()))
	if d.err != nil {
		return amount.Value{}
	}
	m := int64(mant)
	if m < 0 {
		d.err = fmt.Errorf("ledger: mantissa %d out of range", mant)
		return amount.Value{}
	}
	if neg == 1 {
		m = -m
	}
	v, err := amount.NewValue(m, exp)
	if err != nil {
		d.err = fmt.Errorf("ledger: decoding value: %w", err)
		return amount.Value{}
	}
	return v
}

func (d *decoder) amount() amount.Amount {
	b := d.take(3)
	var c amount.Currency
	if b != nil {
		copy(c[:], b)
	}
	v := d.value()
	return amount.Amount{Currency: c, Value: v}
}

// txCodecVersion guards against decoding data written by an incompatible
// build.
const txCodecVersion = 1

// Encode appends the canonical serialization of tx to buf and returns the
// extended slice.
func (tx *Tx) Encode(buf []byte) []byte {
	e := encoder{buf: buf}
	e.u8(txCodecVersion)
	e.u8(uint8(tx.Type))
	e.account(tx.Account)
	e.u32(tx.Sequence)
	e.u64(uint64(tx.Fee))
	e.account(tx.Destination)
	e.amount(tx.Amount)
	e.account(tx.DestIssuer)
	e.amount(tx.SendMax)
	e.account(tx.SendIssuer)
	e.amount(tx.TakerPays)
	e.account(tx.TakerPaysIssuer)
	e.amount(tx.TakerGets)
	e.account(tx.TakerGetsIssuer)
	e.u32(tx.OfferSequence)
	e.account(tx.LimitPeer)
	e.amount(tx.Limit)
	e.bytes(tx.SigningKey)
	e.bytes(tx.Signature)
	return e.buf
}

// Fixed layout of the transaction encoding: every field up to the two
// trailing length-prefixed byte strings has a constant offset, which the
// zero-copy projection scan (scan.go) exploits to read single fields
// without decoding their neighbours.
const (
	txOffType        = 1   // after the version byte
	txOffAccount     = 2   // 20-byte sender
	txOffSequence    = 22  // u32
	txOffFee         = 26  // u64
	txOffDestination = 34  // 20-byte destination
	txOffAmount      = 54  // 3-byte currency ∥ 11-byte value
	txOffSendMax     = 88  // second amount field (after DestIssuer)
	txFixedBytes     = 228 // everything before SigningKey's length prefix

	amountBytes = 3 + 1 + 8 + 2 // currency ∥ sign ∥ mantissa ∥ exponent
)

// bytesInto is decoder.bytes with the copy carved from an arena slab
// (nil arena falls back to a heap allocation).
func (d *decoder) bytesInto(a *PageArena) []byte {
	if a == nil {
		return d.bytes()
	}
	n := int(d.u16())
	if n == 0 {
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	return a.grabBytes(b)
}

// decodeTxInto decodes one transaction from data into tx, drawing
// byte-slice fields from the arena when one is supplied. It returns the
// number of bytes consumed.
func decodeTxInto(data []byte, tx *Tx, a *PageArena) (int, error) {
	d := decoder{buf: data}
	ver := d.u8()
	if d.err == nil && ver != txCodecVersion {
		return 0, fmt.Errorf("ledger: tx codec version %d, want %d", ver, txCodecVersion)
	}
	tx.Type = TxType(d.u8())
	tx.Account = d.account()
	tx.Sequence = d.u32()
	tx.Fee = amount.Drops(d.u64())
	tx.Destination = d.account()
	tx.Amount = d.amount()
	tx.DestIssuer = d.account()
	tx.SendMax = d.amount()
	tx.SendIssuer = d.account()
	tx.TakerPays = d.amount()
	tx.TakerPaysIssuer = d.account()
	tx.TakerGets = d.amount()
	tx.TakerGetsIssuer = d.account()
	tx.OfferSequence = d.u32()
	tx.LimitPeer = d.account()
	tx.Limit = d.amount()
	tx.SigningKey = d.bytesInto(a)
	tx.Signature = d.bytesInto(a)
	if d.err != nil {
		return 0, d.err
	}
	return d.off, nil
}

// DecodeTx decodes one transaction from data and returns it together with
// the number of bytes consumed.
func DecodeTx(data []byte) (*Tx, int, error) {
	var tx Tx
	used, err := decodeTxInto(data, &tx, nil)
	if err != nil {
		return nil, 0, err
	}
	return &tx, used, nil
}

// EncodeMeta appends the canonical serialization of m to buf.
func (m *TxMeta) EncodeMeta(buf []byte) []byte {
	e := encoder{buf: buf}
	e.u8(uint8(m.Result))
	e.amount(m.Delivered)
	if len(m.PathHops) > math.MaxUint8 {
		panic("ledger: too many parallel paths")
	}
	e.u8(uint8(len(m.PathHops)))
	e.buf = append(e.buf, m.PathHops...)
	e.u32(m.OffersConsumed)
	cross := uint8(0)
	if m.CrossCurrency {
		cross = 1
	}
	e.u8(cross)
	if len(m.Intermediaries) > math.MaxUint16 {
		panic("ledger: too many intermediaries")
	}
	e.u16(uint16(len(m.Intermediaries)))
	for _, a := range m.Intermediaries {
		e.account(a)
	}
	return e.buf
}

// decodeMetaInto decodes one TxMeta from data into m, drawing slices
// from the arena when one is supplied. It returns bytes consumed.
func decodeMetaInto(data []byte, m *TxMeta, a *PageArena) (int, error) {
	d := decoder{buf: data}
	m.Result = TxResult(d.u8())
	m.Delivered = d.amount()
	if nPaths := int(d.u8()); nPaths > 0 {
		if hops := d.take(nPaths); hops != nil {
			if a != nil {
				m.PathHops = a.grabHops(hops)
			} else {
				m.PathHops = make([]uint8, nPaths)
				copy(m.PathHops, hops)
			}
		}
	}
	m.OffersConsumed = d.u32()
	m.CrossCurrency = d.u8() == 1
	if n := int(d.u16()); n > 0 && d.err == nil {
		if d.off+20*n > len(d.buf) {
			// The claimed list cannot fit in the remaining input; fail
			// before reserving space for it.
			return 0, ErrTruncated
		}
		var out []addr.AccountID
		if a != nil {
			out = a.grabAccounts(n)
		} else {
			out = make([]addr.AccountID, n)
		}
		for i := 0; i < n; i++ {
			out[i] = d.account()
		}
		m.Intermediaries = out
	}
	if d.err != nil {
		return 0, d.err
	}
	return d.off, nil
}

// DecodeMeta decodes one TxMeta from data, returning bytes consumed.
func DecodeMeta(data []byte) (*TxMeta, int, error) {
	var m TxMeta
	used, err := decodeMetaInto(data, &m, nil)
	if err != nil {
		return nil, 0, err
	}
	return &m, used, nil
}
