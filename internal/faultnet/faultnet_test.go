package faultnet

import (
	"bytes"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// pipeWrite pushes chunks through a wrapped net.Pipe and returns what
// the far end received.
func pipeWrite(t *testing.T, cfg Config, chunks [][]byte) ([]byte, Stats) {
	t.Helper()
	client, server := net.Pipe()
	wrapped := WrapConn(server, cfg)
	done := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(client)
		done <- data
	}()
	for _, chunk := range chunks {
		if _, err := wrapped.Write(chunk); err != nil {
			break // injected disconnect
		}
	}
	wrapped.Close()
	return <-done, wrapped.Stats()
}

func testChunks(n int) [][]byte {
	chunks := make([][]byte, n)
	for i := range chunks {
		chunk := make([]byte, 64)
		for j := range chunk {
			chunk[j] = byte(i + j)
		}
		chunks[i] = chunk
	}
	return chunks
}

// TestDeterministicInjection: identical seeds inject identical faults.
func TestDeterministicInjection(t *testing.T) {
	cfg := Config{Seed: 7, CorruptRate: 0.2, TruncateRate: 0.1}
	a, sa := pipeWrite(t, cfg, testChunks(200))
	b, sb := pipeWrite(t, cfg, testChunks(200))
	if sa != sb {
		t.Fatalf("stats differ across identical runs:\n%v\n%v", sa, sb)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("received bytes differ across identical runs")
	}
	if sa.Corrupted == 0 || sa.Truncated == 0 {
		t.Errorf("expected injected faults, got %v", sa)
	}
	clean, _ := pipeWrite(t, Config{Seed: 7}, testChunks(200))
	if bytes.Equal(a, clean) {
		t.Error("faulty run delivered the same bytes as the clean run")
	}
	if got := sa.FaultRate(); got < 0.15 || got > 0.45 {
		t.Errorf("fault rate %.2f far from configured 0.30", got)
	}
}

// TestInjectedDisconnect closes the connection mid-write.
func TestInjectedDisconnect(t *testing.T) {
	cfg := Config{Seed: 3, DropRate: 1}
	received, st := pipeWrite(t, cfg, testChunks(5))
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1 (first write kills the conn)", st.Dropped)
	}
	if len(received) != 32 {
		t.Errorf("far end received %d bytes, want the 32-byte prefix", len(received))
	}
}

// TestListenerWrapsEveryConn: a wrapped listener degrades accepted
// connections deterministically per accept index.
func TestListenerWrapsEveryConn(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Wrap(raw, Config{Seed: 11, CorruptRate: 1})
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("hello hello hello hello"))
		conn.Close()
	}()
	conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, _ := io.ReadAll(conn)
	if bytes.Equal(got, []byte("hello hello hello hello")) {
		t.Error("corruption rate 1 delivered pristine bytes")
	}
	if st := ln.Stats(); st.Corrupted == 0 {
		t.Errorf("listener stats = %v, want corrupted writes", st)
	}
}

func TestFileHelpers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data")
	content := bytes.Repeat([]byte{0xAA}, 1024)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := FlipBitAt(path, 10, 3); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got[10] != 0xAA^(1<<3) {
		t.Errorf("byte 10 = %#x, want %#x", got[10], 0xAA^(1<<3))
	}
	for i, b := range got {
		if i != 10 && b != 0xAA {
			t.Fatalf("byte %d changed unexpectedly", i)
		}
	}

	off1, bit1, err := FlipRandomBit(path, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Undo, then re-apply with the same seed: same position.
	if err := FlipBitAt(path, off1, bit1); err != nil {
		t.Fatal(err)
	}
	off2, bit2, err := FlipRandomBit(path, 99)
	if err != nil {
		t.Fatal(err)
	}
	if off1 != off2 || bit1 != bit2 {
		t.Errorf("seeded corruption not deterministic: (%d,%d) vs (%d,%d)", off1, bit1, off2, bit2)
	}

	if err := TruncateTail(path, 100); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 924 {
		t.Errorf("size after TruncateTail = %d, want 924", info.Size())
	}
}
