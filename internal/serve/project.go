package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/deanon"
	"ripplestudy/internal/ledger"
)

// This file is the ingest front door: every page is projected exactly
// once — at ingest time, on the producer's goroutine — into a compact,
// owned pageRecord slab carrying everything the page views consume.
// The views stop re-walking the canonical page encoding per worker;
// the fingerprint view even stops hashing, because the record already
// holds the per-resolution fingerprints (deanon.FeatureEnc encoded
// once per payment, combined per row through the shared plan).
//
// Records are owned (they alias nothing), so ingest is free to read
// pages from zero-copy sources — mmap'd record payloads via
// ledgerstore.PayloadsParallel, arena-decoded pages — without
// violating their valid-only-inside-the-callback contracts.

// paymentRecord is one successful payment, projected.
type paymentRecord struct {
	sender      addr.AccountID
	dest        addr.AccountID
	currency    amount.Currency
	value       amount.Value
	hopsOff     int32 // into pageRecord.hops
	hopsLen     int32 // parallel-path count
}

// pageRecord is one projected page: the page-level stats plus the
// per-payment slabs. All slices are owned; nothing aliases the source
// encoding. refs counts the views the record has been offered to — the
// last unref resets the record and returns it to the pool.
type pageRecord struct {
	seq  uint64
	time ledger.CloseTime

	payments    []paymentRecord
	hops        []uint8               // per-path hop counts, all payments
	fps         []deanon.Fingerprint  // fpRows per payment, payment order
	offerOwners []addr.AccountID      // successful OfferCreate senders
	failed      int                   // failed payment transactions

	refs atomic.Int32
}

var recordPool = sync.Pool{New: func() any { return new(pageRecord) }}

// newPageRecord returns a reset record owned by `views` consumers.
func newPageRecord(views int32) *pageRecord {
	r := recordPool.Get().(*pageRecord)
	r.refs.Store(views)
	return r
}

// unref releases one view's hold; the last hold recycles the record.
func (r *pageRecord) unref() { r.unrefN(1) }

// unrefN releases n holds at once — the abort paths (closed service,
// undecodable payload) drop every view's hold in one step.
func (r *pageRecord) unrefN(n int32) {
	if r.refs.Add(-n) == 0 {
		r.payments = r.payments[:0]
		r.hops = r.hops[:0]
		r.fps = r.fps[:0]
		r.offerOwners = r.offerOwners[:0]
		r.failed = 0
		r.seq, r.time = 0, 0
		recordPool.Put(r)
	}
}

// projector turns pages into pageRecords. The plan is the fingerprint
// view's compiled resolution list, shared so the fingerprints computed
// here land in the study's row order. A projector is immutable and safe
// for concurrent use (parallel backfill workers project concurrently).
type projector struct {
	plan   *deanon.FingerprintPlan
	fpRows int
}

func newProjector(plan *deanon.FingerprintPlan) *projector {
	return &projector{plan: plan, fpRows: plan.Rows()}
}

// addPayment appends one successful payment and its fingerprints.
func (pr *projector) addPayment(rec *pageRecord, sender, dest addr.AccountID, cur amount.Currency, v amount.Value, pathHops []uint8) {
	rec.payments = append(rec.payments, paymentRecord{
		sender:   sender,
		dest:     dest,
		currency: cur,
		value:    v,
		hopsOff:  int32(len(rec.hops)),
		hopsLen:  int32(len(pathHops)),
	})
	rec.hops = append(rec.hops, pathHops...)
	f := deanon.Features{
		Sender:      sender,
		Destination: dest,
		Currency:    cur,
		Amount:      v,
		Time:        rec.time,
	}
	var enc deanon.FeatureEnc
	deanon.EncodeFeaturesTo(&enc, &f)
	rec.fps = enc.AppendFingerprints(pr.plan, rec.fps)
}

// fromPage projects a decoded page.
func (pr *projector) fromPage(p *ledger.Page, rec *pageRecord) {
	rec.seq = p.Header.Sequence
	rec.time = p.Header.CloseTime
	for i, tx := range p.Txs {
		meta := p.Metas[i]
		switch tx.Type {
		case ledger.TxOfferCreate:
			if meta.Result.Succeeded() {
				rec.offerOwners = append(rec.offerOwners, tx.Account)
			}
		case ledger.TxPayment:
			if !meta.Result.Succeeded() {
				rec.failed++
				continue
			}
			pr.addPayment(rec, tx.Account, tx.Destination, tx.Amount.Currency, tx.Amount.Value, meta.PathHops)
		}
	}
}

// fromPayload projects a canonical page encoding in place via
// ledger.TxIter, never materializing a *ledger.Page (the stack-owned
// iterator keeps the walk allocation-free). Framing is fully validated
// (count, record lengths, codec version, no trailing bytes) and payment
// amounts get the full decoder's value validation; field contents of
// non-payment transactions are not inspected. The result is identical
// to fromPage over the DecodePage'd equivalent.
func (pr *projector) fromPayload(payload []byte, rec *pageRecord) error {
	var it ledger.TxIter
	if err := it.Init(payload); err != nil {
		return err
	}
	rec.seq = it.Hdr.Sequence
	rec.time = it.Hdr.CloseTime
	for {
		v, err := it.Next()
		if err != nil {
			return err
		}
		if v == nil {
			break
		}
		switch v.Type() {
		case ledger.TxOfferCreate:
			if v.Result().Succeeded() {
				rec.offerOwners = append(rec.offerOwners, v.Account())
			}
		case ledger.TxPayment:
			if !v.Result().Succeeded() {
				rec.failed++
				continue
			}
			val, err := v.AmountValue()
			if err != nil {
				return err
			}
			pr.addPayment(rec, v.Account(), v.Destination(), v.Currency(), val, v.PathHops())
		}
	}
	if used := it.Used(); used != len(payload) {
		return fmt.Errorf("serve: %d trailing bytes after page %d", len(payload)-used, rec.seq)
	}
	return nil
}
