package txq

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics holds the front door's counters and latency rings. Counters
// are atomics because Submit (many goroutines), the applier, and the
// /metrics scraper all touch them.
type metrics struct {
	offered   atomic.Uint64 // Submit calls
	submitted atomic.Uint64 // admitted into the queue
	shed      atomic.Uint64 // dropped by admission control
	rejected  atomic.Uint64 // malformed / duplicate / closed
	applied   atomic.Uint64 // resolved by the applier
	succeeded atomic.Uint64 // resolved with ResultSuccess

	batches      atomic.Uint64
	plannedAhead atomic.Uint64
	conflicts    atomic.Uint64

	quoteLat  *latencyRing
	submitLat *latencyRing
}

func (m *metrics) init(window int) {
	m.quoteLat = newLatencyRing(window)
	m.submitLat = newLatencyRing(window)
}

// latencyRing keeps a sliding window of durations and answers p50/p99
// on scrape; the recording path is O(1) and allocation-free after
// warm-up (the same design as serve's per-endpoint recorder).
type latencyRing struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	filled  bool
	count   uint64
}

func newLatencyRing(window int) *latencyRing {
	if window < 16 {
		window = 16
	}
	return &latencyRing{samples: make([]time.Duration, window)}
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.samples[r.next] = d
	r.next++
	if r.next == len(r.samples) {
		r.next = 0
		r.filled = true
	}
	r.count++
	r.mu.Unlock()
}

// quantiles returns the windowed p50/p99 and the lifetime count.
func (r *latencyRing) quantiles() (p50, p99 time.Duration, count uint64) {
	r.mu.Lock()
	n := r.next
	if r.filled {
		n = len(r.samples)
	}
	window := make([]time.Duration, n)
	copy(window, r.samples[:n])
	count = r.count
	r.mu.Unlock()
	if n == 0 {
		return 0, 0, count
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	return window[(n-1)*50/100], window[(n-1)*99/100], count
}

// QuoteLatency returns the windowed quote p50/p99 and lifetime count.
func (fd *FrontDoor) QuoteLatency() (p50, p99 time.Duration, count uint64) {
	return fd.met.quoteLat.quantiles()
}

// SubmitLatency returns the windowed submit-to-applied p50/p99 and
// lifetime count.
func (fd *FrontDoor) SubmitLatency() (p50, p99 time.Duration, count uint64) {
	return fd.met.submitLat.quantiles()
}

// WriteMetrics renders the front door's state in Prometheus text
// exposition format. The serve layer appends this to its own scrape
// output.
func (fd *FrontDoor) WriteMetrics(w io.Writer) {
	st := fd.StatsNow()
	fmt.Fprintf(w, "# HELP txq_depth Admitted transactions not yet applied.\n")
	fmt.Fprintf(w, "txq_depth %d\n", st.Depth)
	fmt.Fprintf(w, "# HELP txq_depth_limit Admission bound on queued transactions.\n")
	fmt.Fprintf(w, "txq_depth_limit %d\n", fd.opts.QueueDepth)
	fmt.Fprintf(w, "# HELP txq_offered_total Submissions offered to admission control.\n")
	fmt.Fprintf(w, "txq_offered_total %d\n", st.Offered)
	fmt.Fprintf(w, "# HELP txq_shed_total Submissions dropped by admission control (queue full).\n")
	fmt.Fprintf(w, "txq_shed_total %d\n", st.Shed)
	fmt.Fprintf(w, "# HELP txq_rejected_total Submissions rejected before queueing (malformed, duplicate sequence, closed).\n")
	fmt.Fprintf(w, "txq_rejected_total %d\n", st.Rejected)
	fmt.Fprintf(w, "# HELP txq_applied_total Transactions applied by the batch applier.\n")
	fmt.Fprintf(w, "txq_applied_total %d\n", st.Applied)
	fmt.Fprintf(w, "# HELP txq_succeeded_total Applied transactions that succeeded.\n")
	fmt.Fprintf(w, "txq_succeeded_total %d\n", st.Succeeded)
	fmt.Fprintf(w, "# HELP txq_batches_total Optimistic planning batches committed.\n")
	fmt.Fprintf(w, "txq_batches_total %d\n", st.Batches)
	fmt.Fprintf(w, "# HELP txq_planned_ahead_total Payments whose optimistic plan validated and applied without re-planning.\n")
	fmt.Fprintf(w, "txq_planned_ahead_total %d\n", st.PlannedAhead)
	fmt.Fprintf(w, "# HELP txq_plan_conflicts_total Payments re-planned inline after a batch-local read-set conflict.\n")
	fmt.Fprintf(w, "txq_plan_conflicts_total %d\n", st.Conflicts)
	fmt.Fprintf(w, "# HELP txq_epoch Trust-graph epoch (advances once per batch that mutated state).\n")
	fmt.Fprintf(w, "txq_epoch %d\n", st.Epoch)
	fmt.Fprintf(w, "# HELP txq_plan_cache_entries Live quote-cache entries.\n")
	fmt.Fprintf(w, "txq_plan_cache_entries %d\n", st.CacheSize)
	fmt.Fprintf(w, "# HELP txq_plan_cache_hits_total Quotes served from the read-set-invalidated cache.\n")
	fmt.Fprintf(w, "txq_plan_cache_hits_total %d\n", st.CacheHits)
	fmt.Fprintf(w, "# HELP txq_plan_cache_misses_total Quotes computed fresh (includes stale drops).\n")
	fmt.Fprintf(w, "txq_plan_cache_misses_total %d\n", st.CacheMisses)
	fmt.Fprintf(w, "# HELP txq_plan_cache_stale_total Cache entries dropped because their read set was mutated.\n")
	fmt.Fprintf(w, "txq_plan_cache_stale_total %d\n", st.CacheStale)
	fmt.Fprintf(w, "# HELP txq_plan_cache_evicted_total Cache entries evicted by capacity.\n")
	fmt.Fprintf(w, "txq_plan_cache_evicted_total %d\n", st.CacheEvicted)

	qp50, qp99, qn := fd.met.quoteLat.quantiles()
	fmt.Fprintf(w, "# HELP txq_quote_total path_find quotes served.\n")
	fmt.Fprintf(w, "txq_quote_total %d\n", qn)
	fmt.Fprintf(w, "# HELP txq_quote_latency_seconds Windowed quote latency quantiles.\n")
	fmt.Fprintf(w, "txq_quote_latency_seconds{quantile=\"0.5\"} %.6f\n", qp50.Seconds())
	fmt.Fprintf(w, "txq_quote_latency_seconds{quantile=\"0.99\"} %.6f\n", qp99.Seconds())
	sp50, sp99, sn := fd.met.submitLat.quantiles()
	fmt.Fprintf(w, "# HELP txq_submit_total Submissions resolved end to end.\n")
	fmt.Fprintf(w, "txq_submit_total %d\n", sn)
	fmt.Fprintf(w, "# HELP txq_submit_latency_seconds Windowed submit-to-applied latency quantiles.\n")
	fmt.Fprintf(w, "txq_submit_latency_seconds{quantile=\"0.5\"} %.6f\n", sp50.Seconds())
	fmt.Fprintf(w, "txq_submit_latency_seconds{quantile=\"0.99\"} %.6f\n", sp99.Seconds())
}
