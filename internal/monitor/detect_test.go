package monitor

import (
	"reflect"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
)

// signedValidation builds a well-formed validation event.
func signedValidation(kpSeed uint64, seq uint64, h ledger.Hash) consensus.Event {
	kp := addr.KeyPairFromSeed(kpSeed)
	return consensus.Event{
		Kind:       consensus.EventValidation,
		Seq:        seq,
		LedgerHash: h,
		Node:       kp.NodeID(),
		Signature:  kp.Sign(h[:]),
	}
}

func closeEvent(seq uint64, h ledger.Hash, txs ...ledger.Hash) consensus.Event {
	return consensus.Event{Kind: consensus.EventLedgerClosed, Seq: seq, LedgerHash: h, TxHashes: txs}
}

func pageHash(seq uint64) ledger.Hash {
	return ledger.SHA512Half([]byte{byte(seq), byte(seq >> 8), 'p'})
}

// runBenignRound feeds one benign round: every node validates the page,
// then the ledger closes.
func benignRound(c *Collector, seq uint64, nodes ...uint64) {
	h := pageHash(seq)
	for _, n := range nodes {
		c.Record(signedValidation(n, seq, h))
	}
	c.Record(closeEvent(seq, h))
}

func TestDetectorFlagsEquivocation(t *testing.T) {
	c := NewCollector()
	var alerts []Alert
	c.ConfigureDetector(DetectorConfig{OnAlert: func(a Alert) { alerts = append(alerts, a) }})
	benignRound(c, 1, 1, 2, 3)

	// Node 1 signs a second, conflicting hash at seq 2.
	h := pageHash(2)
	rival := ledger.SHA512Half([]byte("rival page"))
	c.Record(signedValidation(1, 2, h))
	c.Record(signedValidation(1, 2, rival))
	c.Record(signedValidation(2, 2, h))
	c.Record(closeEvent(2, h))

	s := c.Detector().Summary()
	if s.Equivocations != 1 || s.EquivocatingValidators != 1 {
		t.Errorf("summary = %+v, want 1 equivocation by 1 validator", s)
	}
	if !s.Attacked() {
		t.Error("equivocation did not mark the collection attacked")
	}
	if len(alerts) != 1 || alerts[0].Kind != AlertEquivocation {
		t.Fatalf("alerts = %v, want one equivocation alert", alerts)
	}
	if alerts[0].Node != addr.KeyPairFromSeed(1).NodeID() || alerts[0].Seq != 2 {
		t.Errorf("alert attribution wrong: %+v", alerts[0])
	}
	if len(alerts[0].Hashes) != 2 {
		t.Errorf("alert carries %d hashes, want the conflicting pair", len(alerts[0].Hashes))
	}
	// The double-signed page still counts in the Figure 2 totals: the
	// equivocator looks MORE active, not less.
	rep := c.Report("equiv")
	for _, v := range rep.Validators {
		if v.Node == alerts[0].Node && v.Total != 3 {
			t.Errorf("equivocator total = %d, want 3 (both signatures counted)", v.Total)
		}
	}
}

func TestDetectorFlagsFork(t *testing.T) {
	c := NewCollector()
	benignRound(c, 1, 1, 2, 3)
	h := pageHash(2)
	rival := ledger.SHA512Half([]byte("fork page"))
	c.Record(signedValidation(1, 2, h))
	c.Record(closeEvent(2, rival)) // the rival partition's close
	c.Record(closeEvent(2, h))     // the canonical close

	s := c.Detector().Summary()
	if s.ForkedSequences != 1 {
		t.Errorf("ForkedSequences = %d, want 1", s.ForkedSequences)
	}
	if !s.Attacked() {
		t.Error("a committed fork did not mark the collection attacked")
	}
	// Both pages are "valid" for Figure 2 purposes — the fork poisons
	// the valid-page set, which is exactly why it must be alarmed.
	found := false
	for _, a := range c.Detector().Alerts() {
		if a.Kind == AlertFork && a.Seq == 2 {
			found = true
		}
	}
	if !found {
		t.Error("no fork alert at seq 2")
	}
}

func TestDetectorFlagsCensorship(t *testing.T) {
	c := NewCollector()
	c.ConfigureDetector(DetectorConfig{CensorshipCloses: 3})
	victim := ledger.SHA512Half([]byte("victim tx"))
	for seq := uint64(1); seq <= 5; seq++ {
		bg := ledger.SHA512Half([]byte{byte(seq), 'b', 'g'})
		c.Record(consensus.Event{Kind: consensus.EventProposal, Seq: seq, TxHashes: []ledger.Hash{victim, bg}})
		c.Record(signedValidation(1, seq, pageHash(seq)))
		c.Record(closeEvent(seq, pageHash(seq), bg)) // bg closes, victim never does
	}
	s := c.Detector().Summary()
	if s.SuspectedCensoredTxs != 1 {
		t.Errorf("SuspectedCensoredTxs = %d, want 1", s.SuspectedCensoredTxs)
	}
	var alert *Alert
	for i, a := range c.Detector().Alerts() {
		if a.Kind == AlertCensorship {
			alert = &c.Detector().Alerts()[i]
		}
	}
	if alert == nil {
		t.Fatal("no censorship alert")
	}
	if alert.TxHash != victim {
		t.Errorf("censorship alert names tx %x, want the victim", alert.TxHash[:4])
	}
}

func TestDetectorCensorshipNeedsProposals(t *testing.T) {
	// Without streamed proposals the censorship detector is blind — the
	// documented miss for metadata-only streams.
	c := NewCollector()
	c.ConfigureDetector(DetectorConfig{CensorshipCloses: 1})
	for seq := uint64(1); seq <= 5; seq++ {
		benignRound(c, seq, 1, 2)
	}
	if s := c.Detector().Summary(); s.SuspectedCensoredTxs != 0 {
		t.Errorf("censorship suspected without proposal events: %+v", s)
	}
}

func TestDetectorFlagsStall(t *testing.T) {
	c := NewCollector()
	c.ConfigureDetector(DetectorConfig{StallSequences: 4})
	benignRound(c, 1, 1, 2, 3)
	// Sequences keep rising, nothing closes.
	for seq := uint64(2); seq <= 6; seq++ {
		c.Record(signedValidation(1, seq, pageHash(seq)))
	}
	s := c.Detector().Summary()
	if s.StallAlarms != 1 {
		t.Errorf("StallAlarms = %d, want 1", s.StallAlarms)
	}
	// A close resets the alarm; a fresh stall re-alarms.
	c.Record(closeEvent(6, pageHash(6)))
	for seq := uint64(7); seq <= 11; seq++ {
		c.Record(signedValidation(1, seq, pageHash(seq)))
	}
	if s := c.Detector().Summary(); s.StallAlarms != 2 {
		t.Errorf("StallAlarms after recovery and re-stall = %d, want 2", s.StallAlarms)
	}
}

func TestDetectorNoStallOnMidStreamSubscription(t *testing.T) {
	// A collector subscribing at seq 1000 must not alarm over the 999
	// sequences it never watched.
	c := NewCollector()
	c.ConfigureDetector(DetectorConfig{StallSequences: 10})
	for seq := uint64(1000); seq < 1005; seq++ {
		benignRound(c, seq, 1, 2)
	}
	if s := c.Detector().Summary(); s.StallAlarms != 0 {
		t.Errorf("mid-stream subscription raised %d stall alarms", s.StallAlarms)
	}
}

func TestDetectorFlagsLateValidation(t *testing.T) {
	c := NewCollector()
	benignRound(c, 1, 1, 2)
	benignRound(c, 2, 1, 2)
	// Node 3's validation for seq 1 arrives after the stream reached 2.
	c.Record(signedValidation(3, 1, pageHash(1)))
	s := c.Detector().Summary()
	if s.LateValidations != 1 {
		t.Errorf("LateValidations = %d, want 1", s.LateValidations)
	}
	if !s.Attacked() {
		t.Error("late validation did not mark the collection attacked")
	}
}

// TestCollectorDeduplicatesReplayedStream is the satellite regression:
// replaying the identical event stream into the collector twice must not
// change the Figure 2 report.
func TestCollectorDeduplicatesReplayedStream(t *testing.T) {
	var stream []consensus.Event
	for seq := uint64(1); seq <= 5; seq++ {
		h := pageHash(seq)
		for _, n := range []uint64{1, 2, 3} {
			stream = append(stream, signedValidation(n, seq, h))
		}
		stream = append(stream, closeEvent(seq, h))
	}

	once := NewCollector()
	for _, ev := range stream {
		once.Record(ev)
	}
	twice := NewCollector()
	for _, ev := range stream {
		twice.Record(ev)
	}
	for _, ev := range stream { // full replay-ring redelivery
		twice.Record(ev)
	}

	if !reflect.DeepEqual(once.Report("p"), twice.Report("p")) {
		t.Error("duplicated stream changed the Figure 2 report")
	}
	if twice.Events() != once.Events() {
		t.Errorf("events: once=%d twice=%d, duplicates double-counted", once.Events(), twice.Events())
	}
	s := twice.Detector().Summary()
	if s.DedupedEvents != uint64(len(stream)) {
		t.Errorf("DedupedEvents = %d, want %d", s.DedupedEvents, len(stream))
	}
	if s.Attacked() {
		t.Errorf("pure duplication misread as an attack: %+v", s)
	}
}

// TestForgedResignatureStillCounted pins the boundary between a replayed
// duplicate and a distinct (forged) signature over the same page: the
// latter is a new observation and must keep counting.
func TestForgedResignatureStillCounted(t *testing.T) {
	c := NewCollector()
	kp := addr.KeyPairFromSeed(1)
	h := pageHash(1)
	c.Record(signedValidation(1, 1, h))
	c.Record(consensus.Event{
		Kind: consensus.EventValidation, Seq: 1, Node: kp.NodeID(),
		LedgerHash: h, Signature: []byte("forged signature forged sig"),
	})
	rep := c.Report("forged")
	if rep.Validators[0].Total != 2 || rep.Validators[0].BadSignatures != 1 {
		t.Errorf("stats = %+v, want total 2 with 1 bad signature", rep.Validators[0])
	}
	// Same hash both times: suspicious signing, but not equivocation.
	if s := c.Detector().Summary(); s.Equivocations != 0 {
		t.Errorf("re-signing the same page flagged as equivocation: %+v", s)
	}
}

// TestBenignPeriodRaisesNoAlerts runs the full December 2015 population
// through the collector: laggards, forked validators, and the testnet
// cluster must not trip any attack detector.
func TestBenignPeriodRaisesNoAlerts(t *testing.T) {
	spec := consensus.December2015(120)
	net := consensus.NewNetwork(consensus.Config{Seed: 4}, spec.Specs)
	c := NewCollector()
	net.Subscribe(c.Record)
	if _, err := net.Run(spec.Rounds, nil); err != nil {
		t.Fatal(err)
	}
	s := c.Detector().Summary()
	if s.Attacked() {
		t.Errorf("benign December 2015 population tripped the detector: %+v", s)
	}
	if s.DedupedEvents != 0 {
		t.Errorf("benign direct stream deduped %d events", s.DedupedEvents)
	}
}

// TestEquivocatorMisclassifiedAsActive documents the headline
// misclassification: in the Figure 2 taxonomy an equivocator's
// double-signed pages make it look like a benign active/laggard — only
// the detector's signature-level correlation exposes it.
func TestEquivocatorMisclassifiedAsActive(t *testing.T) {
	sc := consensus.ScenarioConfig{Rounds: 60, Seed: 5,
		Attack: consensus.AttackSpec{Equivocators: 1}}
	net, traffic := sc.Build()
	c := NewCollector()
	net.Subscribe(c.Record)
	if _, err := net.Run(60, traffic); err != nil {
		t.Fatal(err)
	}
	eq, _ := net.NodeIDOf("equivocator-1")
	rep := c.Report("equivocator")
	var stats ValidatorStats
	for _, v := range rep.Validators {
		if v.Node == eq {
			stats = v
		}
	}
	if stats.Total == 0 {
		t.Fatal("equivocator absent from the report")
	}
	// One of its two signatures per round is on the canonical page, so
	// ValidFraction ≈ closed/(2·rounds) ≤ 0.5 and Class() files it under
	// the paper's benign "laggard" population — a validator "struggling
	// to stay in sync". Figure 2 alone cannot see the attack.
	if got := stats.Class(); got != "laggard" {
		t.Errorf("equivocator classed %q; the documented miss expects the benign class %q", got, "laggard")
	}
	if f := stats.ValidFraction(); f <= 0.3 || f > 0.5 {
		t.Errorf("equivocator ValidFraction = %.2f, want ≈0.5 from double-signing", f)
	}
	if s := c.Detector().Summary(); s.Equivocations != 60 || s.EquivocatingValidators != 1 {
		t.Errorf("detector missed the equivocator: %+v", s)
	}
}
