// Package replay implements the paper's Table II experiment: "We started
// from a stable snapshot ... of the Ripple network. Then, we extracted
// all payments submitted after the snapshot and successfully delivered
// ... So, we remove them [the Market Makers] and the exchange orders from
// the system and replay the extracted payments on the modified trust
// network," updating balances after each successful payment and applying
// the trust-line updates that happened on the real system.
//
// Two replay paths produce bit-identical results:
//
//   - Run applies everything sequentially — the reference semantics.
//   - RunParallel plans payments optimistically on worker goroutines
//     while a single applier commits them in ledger order, falling back
//     to sequential re-planning when a plan's read set was touched by an
//     earlier write (see the package's batch protocol below).
//
// Both consume history through a decode-ahead page stream, and both use
// the source's sequence index (RangeSource) when available, so a replay
// from a 70% snapshot reads each byte of the store once instead of
// scanning it twice.
package replay

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/ledgerstore"
	"ripplestudy/internal/orderbook"
	"ripplestudy/internal/pathfind"
	"ripplestudy/internal/payment"
	"ripplestudy/internal/shamap"
)

// Source streams ledger pages in order; ledgerstore.Store satisfies it.
type Source interface {
	Pages(fn func(*ledger.Page) error) error
}

// RangeSource is a Source that can stream only the pages whose header
// sequence falls in [lo, hi], skipping the rest without decoding them.
// ledgerstore.Store satisfies it via its segment sequence index.
type RangeSource interface {
	Source
	PagesRange(lo, hi uint64, fn func(*ledger.Page) error) error
}

// sliceSource adapts an in-memory page list (tests, freshly generated
// histories).
type sliceSource []*ledger.Page

func (s sliceSource) Pages(fn func(*ledger.Page) error) error {
	for _, p := range s {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// PagesRange implements RangeSource; pages are in append (ledger) order.
func (s sliceSource) PagesRange(lo, hi uint64, fn func(*ledger.Page) error) error {
	for _, p := range s {
		seq := p.Header.Sequence
		if seq < lo {
			continue
		}
		if seq > hi {
			return nil
		}
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// FromPages wraps an in-memory page list as a Source.
func FromPages(pages []*ledger.Page) Source { return sliceSource(pages) }

// errStopBuild stops a full scan once past the requested range. It must
// be matched with errors.Is: wrapped errors compared with != would leak
// past the check and abort callers that merely reached the snapshot.
var errStopBuild = errors.New("replay: snapshot reached")

// rangePages streams the pages with sequence in [lo, hi] from src,
// using PagesRange when the source supports it and an early-stopping
// full scan otherwise (history pages are in ledger order).
func rangePages(src Source, lo, hi uint64, fn func(*ledger.Page) error) error {
	if rs, ok := src.(RangeSource); ok {
		return rs.PagesRange(lo, hi, fn)
	}
	err := src.Pages(func(p *ledger.Page) error {
		seq := p.Header.Sequence
		if seq < lo {
			return nil
		}
		if seq > hi {
			return errStopBuild
		}
		return fn(p)
	})
	if errors.Is(err, errStopBuild) {
		return nil
	}
	return err
}

// pageOrErr is one element of the decode-ahead stream. release, when
// non-nil, recycles the page's decode arena; the consumer must call it
// exactly once after it is done with the page (and everything reachable
// from it — replayed tx pointers included).
type pageOrErr struct {
	page    *ledger.Page
	release func()
	err     error
}

// recycledRangeSource is the optional fast path of the decode-ahead
// stream: a source that can decode each page into a pooled arena and
// hand ownership to the consumer (ledgerstore.Store implements it).
type recycledRangeSource interface {
	PagesRangeRecycled(lo, hi uint64, fn func(p *ledger.Page, release func()) error) error
}

// streamPages decodes pages [lo, hi] on a producer goroutine, sending
// them through a buffered channel so decoding overlaps whatever the
// consumer does with each page (engine apply, planning). Sources with
// recycled-arena decoding stream through pooled arenas — the consumer
// releases each page once it has finished with it, so a steady-state
// replay reuses a bounded ring of arenas instead of heap-decoding the
// whole history. Closing stop makes the producer quit promptly; the
// channel is always closed when the producer finishes.
func streamPages(src Source, lo, hi uint64, stop <-chan struct{}) <-chan pageOrErr {
	ch := make(chan pageOrErr, 64)
	send := func(pe pageOrErr) error {
		select {
		case ch <- pe:
			return nil
		case <-stop:
			if pe.release != nil {
				pe.release()
			}
			return errStopBuild
		}
	}
	go func() {
		defer close(ch)
		var err error
		if rs, ok := src.(recycledRangeSource); ok {
			err = rs.PagesRangeRecycled(lo, hi, func(p *ledger.Page, release func()) error {
				return send(pageOrErr{page: p, release: release})
			})
		} else {
			err = rangePages(src, lo, hi, func(p *ledger.Page) error {
				return send(pageOrErr{page: p})
			})
		}
		if err != nil && !errors.Is(err, errStopBuild) {
			select {
			case ch <- pageOrErr{err: err}:
			case <-stop:
			}
		}
	}()
	return ch
}

// maxSeq is the inclusive upper bound meaning "to the end of history".
const maxSeq = ^uint64(0)

// BuildOptions configure state-tree checkpointing during a replay.
// The zero value replays cold with no checkpoint writes — but a resume
// still happens automatically when the source carries usable
// checkpoints (set DisableResume to force cold).
type BuildOptions struct {
	// CheckpointEvery persists a sealed checkpoint to the sidecar every N
	// pages applied. 0 disables checkpoint writing.
	CheckpointEvery uint64
	// DisableResume forces a cold rebuild even when checkpoints exist.
	DisableResume bool
	// CheckpointDir overrides the sidecar directory. Empty uses the
	// source's own sidecar when it has one (ledgerstore.Store does); a
	// memory source with no dir neither writes nor resumes.
	CheckpointDir string
}

// checkpointDirer is satisfied by sources with a checkpoint sidecar
// (ledgerstore.Store).
type checkpointDirer interface {
	CheckpointDir() string
}

func (o BuildOptions) dir(src Source) string {
	if o.CheckpointDir != "" {
		return o.CheckpointDir
	}
	if cd, ok := src.(checkpointDirer); ok {
		return cd.CheckpointDir()
	}
	return ""
}

// resumeFromCheckpoint restores the engine from the newest usable
// checkpoint at or before snapshotSeq. Any failure — no sidecar, no
// eligible checkpoint, damaged batches, a tree that does not decode —
// reports ok=false and the caller replays cold; a checkpoint can speed
// a replay up but never make it fail.
func resumeFromCheckpoint(dir string, snapshotSeq uint64) (eng *payment.Engine, seq uint64, ok bool) {
	metas, err := ledgerstore.ListCheckpoints(dir)
	if err != nil || len(metas) == 0 {
		return nil, 0, false
	}
	last := -1
	for i := range metas {
		if metas[i].Seq <= snapshotSeq {
			last = i
		}
	}
	if last < 0 {
		return nil, 0, false
	}
	// The tree at checkpoint N lives in the union of every batch ≤ N.
	getter, err := ledgerstore.OpenCheckpointNodes(dir, metas[:last+1])
	if err != nil {
		return nil, 0, false
	}
	cp := metas[last]
	tree, err := shamap.Load(cp.Root, getter.Get)
	if err != nil {
		return nil, 0, false
	}
	restored, err := payment.RestoreEngine(tree, payment.RestoreScalars{
		TotalDrops:    cp.TotalDrops,
		FeesDestroyed: amount.Drops(cp.FeesDestroyed),
		StateDigest:   cp.StateDigest,
	})
	if err != nil {
		return nil, 0, false
	}
	return restored, cp.Seq, true
}

// checkpointWriter seals and persists the engine's state tree every
// `every` pages.
type checkpointWriter struct {
	dir   string
	every uint64
	since uint64
}

func (cw *checkpointWriter) maybe(eng *payment.Engine, seq uint64) error {
	if cw == nil {
		return nil
	}
	cw.since++
	if cw.since < cw.every {
		return nil
	}
	cw.since = 0
	root, err := eng.SealState()
	if err != nil {
		return err
	}
	meta := &ledgerstore.CheckpointMeta{
		Seq:           seq,
		Root:          root,
		StateDigest:   eng.StateDigest(),
		TotalDrops:    eng.TotalDrops(),
		FeesDestroyed: int64(eng.FeesDestroyed()),
	}
	return ledgerstore.WriteCheckpoint(cw.dir, meta, eng.WriteNewStateNodes)
}

// BuildState replays every transaction in pages with sequence ≤
// snapshotSeq into a fresh engine, reconstructing the network state at
// the snapshot. Replaying is deterministic, so the rebuilt state matches
// the state that produced the history. When the source carries
// checkpoints, the rebuild resumes from the newest one at or before the
// snapshot instead of starting from genesis.
func BuildState(src Source, snapshotSeq uint64) (*payment.Engine, error) {
	return BuildStateOpts(src, snapshotSeq, BuildOptions{})
}

// BuildStateOpts is BuildState with explicit checkpoint options.
func BuildStateOpts(src Source, snapshotSeq uint64, opts BuildOptions) (*payment.Engine, error) {
	dir := opts.dir(src)
	var eng *payment.Engine
	from := uint64(0)
	if dir != "" && !opts.DisableResume {
		if restored, seq, ok := resumeFromCheckpoint(dir, snapshotSeq); ok {
			eng, from = restored, seq+1
		}
	}
	if eng == nil {
		eng = payment.NewEngine(payment.WithStateTree())
	}
	var cw *checkpointWriter
	if dir != "" && opts.CheckpointEvery > 0 {
		cw = &checkpointWriter{dir: dir, every: opts.CheckpointEvery}
	}
	stop := make(chan struct{})
	defer close(stop)
	for pe := range streamPages(src, from, snapshotSeq, stop) {
		if pe.err != nil {
			return nil, pe.err
		}
		seq, err := applyPage(eng, pe)
		if err != nil {
			return nil, err
		}
		if err := cw.maybe(eng, seq); err != nil {
			return nil, fmt.Errorf("replay: checkpointing at page %d: %w", seq, err)
		}
	}
	return eng, nil
}

// applyPage applies every transaction of one streamed page. The page's
// decode arena (when pooled) is recycled exactly once on every exit
// path; the engine keeps no references into the page — it reads value
// fields only.
func applyPage(eng *payment.Engine, pe pageOrErr) (seq uint64, err error) {
	if pe.release != nil {
		defer pe.release()
	}
	seq = pe.page.Header.Sequence
	for _, tx := range pe.page.Txs {
		if _, err := eng.Apply(tx); err != nil {
			return seq, fmt.Errorf("replay: rebuilding state at page %d: %w", seq, err)
		}
	}
	return seq, nil
}

// Category buckets replayed payments as the paper's Table II does.
type Category int

const (
	// CategoryCross are payments whose source and delivered currencies
	// differ (68.7% of the paper's replay set).
	CategoryCross Category = iota + 1
	// CategorySingle are same-currency IOU payments.
	CategorySingle
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CategoryCross:
		return "Cross-currency"
	case CategorySingle:
		return "Single-currency"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Row is one line of Table II.
type Row struct {
	Category  Category
	Submitted int
	Delivered int
}

// Rate returns the delivery rate.
func (r Row) Rate() float64 {
	if r.Submitted == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Submitted)
}

// Stats reports how the optimistic-parallel pipeline behaved. It is
// informational: two runs with different Stats can (and must) still
// agree on every other Result field.
type Stats struct {
	// Workers is the planner goroutine count (0 for sequential Run).
	Workers int
	// Batches is the number of planning batches.
	Batches int
	// PlannedAhead counts payments committed straight from an optimistic
	// plan whose read set was untouched.
	PlannedAhead int
	// Conflicts counts payments whose optimistic plan was invalidated by
	// an earlier write in the same batch and had to be re-planned
	// sequentially.
	Conflicts int
}

// Result is the full Table II.
type Result struct {
	Cross, Single Row
	// RemovedMarketMakers is how many accounts the ablation deleted.
	RemovedMarketMakers int
	// SnapshotSeq is the page sequence the snapshot was taken at.
	SnapshotSeq uint64
	// StateDigest is the replay engine's deterministic state fingerprint
	// after the last replayed transaction — the strongest equality check
	// between two replays of the same history.
	StateDigest ledger.Hash
	// StateRoot is the sealed Merkle root of the engine's final state —
	// the authenticated complement to StateDigest: the digest pins the
	// history taken, the root commits to the state reached, and the pair
	// is pinned differentially across sequential, parallel, and
	// checkpoint-resumed replays.
	StateRoot ledger.Hash
	// Stats describes the pipeline; excluded from result equality.
	Stats Stats
}

// Total aggregates both categories.
func (r Result) Total() Row {
	return Row{
		Submitted: r.Cross.Submitted + r.Single.Submitted,
		Delivered: r.Cross.Delivered + r.Single.Delivered,
	}
}

// Run executes the Table II experiment over the history in src,
// snapshotting at snapshotSeq: it rebuilds the state, removes every
// market maker and their offers, and replays the post-snapshot IOU
// payments (direct XRP transfers don't traverse trust or books and are
// excluded, as in the paper's 1.7M-payment replay set).
func Run(src Source, snapshotSeq uint64) (*Result, error) {
	return RunOpts(src, snapshotSeq, BuildOptions{})
}

// RunOpts is Run with explicit checkpoint options for the state
// rebuild phase.
func RunOpts(src Source, snapshotSeq uint64, opts BuildOptions) (*Result, error) {
	state, removed, res, err := setupReplay(src, snapshotSeq, opts)
	if err != nil {
		return nil, err
	}
	stop := make(chan struct{})
	defer close(stop)
	for pe := range streamPages(src, snapshotSeq+1, maxSeq, stop) {
		if pe.err != nil {
			return nil, pe.err
		}
		for i, tx := range pe.page.Txs {
			it, ok := classify(tx, pe.page.Metas[i], removed, res)
			if !ok || it.skip {
				continue
			}
			if m := replayTx(state, tx); m != nil && m.Result.Succeeded() && it.row != nil {
				it.row.Delivered++
			}
		}
		if pe.release != nil {
			pe.release()
		}
	}
	return finishResult(state, res)
}

// finishResult stamps the final digest and sealed state root.
func finishResult(state *payment.Engine, res *Result) (*Result, error) {
	res.StateDigest = state.StateDigest()
	root, err := state.SealState()
	if err != nil {
		return nil, err
	}
	res.StateRoot = root
	return res, nil
}

// setupReplay rebuilds the snapshot state and performs the market-maker
// ablation shared by Run and RunParallel.
func setupReplay(src Source, snapshotSeq uint64, opts BuildOptions) (*payment.Engine, map[addr.AccountID]bool, *Result, error) {
	state, err := BuildStateOpts(src, snapshotSeq, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	removedList := state.RemoveMarketMakers()
	removed := make(map[addr.AccountID]bool, len(removedList))
	for _, a := range removedList {
		removed[a] = true
	}
	res := &Result{RemovedMarketMakers: len(removedList), SnapshotSeq: snapshotSeq}
	return state, removed, res, nil
}

// item is one replayable post-snapshot transaction, in ledger order.
type item struct {
	tx *ledger.Tx
	// row is the Table II row the payment counts toward (nil for
	// trust-line updates).
	row *Row
	// skip marks payments that are counted as submitted but not
	// replayed (an endpoint vanished with the market makers).
	skip bool

	// Optimistic planning outputs (RunParallel only).
	planned bool
	plan    *pathfind.Plan
	reads   pathfind.ReadSet
}

// classify applies the Table II filters to one historical transaction,
// bumping the submitted counters as a side effect. ok is false for
// transactions the replay ignores entirely.
func classify(tx *ledger.Tx, meta *ledger.TxMeta, removed map[addr.AccountID]bool, res *Result) (item, bool) {
	switch tx.Type {
	case ledger.TxTrustSet:
		// "We also reflected in the modified trust network the updates
		// happening on the real system to trust-lines."
		if removed[tx.Account] || removed[tx.LimitPeer] {
			return item{}, false
		}
		return item{tx: tx}, true
	case ledger.TxPayment:
		if !meta.Result.Succeeded() {
			return item{}, false // the paper replays successfully delivered payments
		}
		if isDirectXRP(tx) {
			return item{}, false
		}
		row := &res.Single
		if meta.CrossCurrency {
			row = &res.Cross
		}
		row.Submitted++
		if removed[tx.Account] || removed[tx.Destination] {
			return item{skip: true}, true // its endpoint vanished with the makers
		}
		return item{tx: tx, row: row}, true
	}
	return item{}, false
}

// planBatchSize is how many replayable transactions are planned per
// optimistic batch. Within a batch the engine state is immutable (all
// planners run before the first apply), so plans validate against the
// writes of earlier items in the same batch only — dirt never
// accumulates across batches.
const planBatchSize = 256

// RunParallel is Run with optimistic parallel planning: `workers`
// goroutines run the pathfinder over the current engine state while it
// is frozen, then a single applier commits the batch in ledger order.
// Each payment's plan carries the read set the search depended on
// (accounts whose trust edges were inspected, order-book pairs quoted);
// the applier re-plans a payment sequentially when an earlier commit in
// the batch dirtied anything in its read set. Since the planner is
// deterministic, an untouched read set guarantees the optimistic plan
// is byte-for-byte the plan sequential replay would have computed — the
// differential tests pin Result (including StateDigest) bit-identical
// to Run's.
//
// workers < 1 uses GOMAXPROCS. The engine must be driven by replay only
// (payments and trust-line updates); offer placement would bypass the
// dirty tracking.
func RunParallel(src Source, snapshotSeq uint64, workers int) (*Result, error) {
	return RunParallelOpts(src, snapshotSeq, workers, BuildOptions{})
}

// RunParallelOpts is RunParallel with explicit checkpoint options for
// the state rebuild phase.
func RunParallelOpts(src Source, snapshotSeq uint64, workers int, opts BuildOptions) (*Result, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	state, removed, res, err := setupReplay(src, snapshotSeq, opts)
	if err != nil {
		return nil, err
	}
	res.Stats.Workers = workers

	// Per-worker planners share the frozen state but own their scratch.
	// They must use the engine's pathfinding defaults so a valid
	// optimistic plan is exactly what Apply would have computed.
	finders := make([]*pathfind.Finder, workers)
	for i := range finders {
		finders[i] = pathfind.New(state.Graph(), state.Books(), pathfind.WithRecording())
	}

	ap := applier{
		state:     state,
		res:       res,
		dirtyAcct: make(map[addr.AccountID]struct{}),
		dirtyPair: make(map[orderbook.Pair]struct{}),
	}

	stop := make(chan struct{})
	defer close(stop)
	batch := make([]item, 0, planBatchSize)
	// Batch items hold tx pointers into their source pages, so a page's
	// decode arena may only recycle after every batch referencing it has
	// been applied. Fully-consumed pages wait here until the next flush
	// drains the batch.
	var pending []func()
	flush := func() error {
		if len(batch) > 0 {
			planBatch(batch, finders)
			if err := ap.applyBatch(batch); err != nil {
				return err
			}
			res.Stats.Batches++
			batch = batch[:0]
		}
		for _, release := range pending {
			release()
		}
		pending = pending[:0]
		return nil
	}
	for pe := range streamPages(src, snapshotSeq+1, maxSeq, stop) {
		if pe.err != nil {
			return nil, pe.err
		}
		for i, tx := range pe.page.Txs {
			it, ok := classify(tx, pe.page.Metas[i], removed, res)
			if !ok {
				continue
			}
			batch = append(batch, it)
			if len(batch) >= planBatchSize {
				// Mid-page flush: this page is still being iterated, so its
				// release (queued below, after the loop) is not in pending yet
				// and its remaining txs stay valid.
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
		if pe.release != nil {
			pending = append(pending, pe.release)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return finishResult(state, res)
}

// planBatch runs the pathfinder for every replayable payment in the
// batch across the worker finders. The engine state is read-only for
// the duration: planning mutates nothing but each finder's own scratch.
func planBatch(batch []item, finders []*pathfind.Finder) {
	idx := make(chan int, len(batch))
	for i := range batch {
		it := &batch[i]
		if it.tx == nil || it.tx.Type != ledger.TxPayment || it.skip {
			continue
		}
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for _, f := range finders {
		wg.Add(1)
		go func(f *pathfind.Finder) {
			defer wg.Done()
			for i := range idx {
				it := &batch[i]
				tx := it.tx
				srcCur := tx.Amount.Currency
				if !tx.SendMax.IsZero() {
					srcCur = tx.SendMax.Currency
				}
				// Plan even when it comes back nil (no path): the failed
				// search's read set still certifies the PathDry outcome.
				plan, err := f.FindPayment(tx.Account, tx.Destination, srcCur, tx.Amount)
				if err != nil {
					plan = nil
				}
				it.plan = plan
				it.reads.Reset()
				f.AppendReadSet(&it.reads)
				it.planned = true
			}
		}(f)
	}
	wg.Wait()
}

// applier commits batches in ledger order, tracking which state each
// commit dirtied so later optimistic plans in the batch can be
// validated.
type applier struct {
	state     *payment.Engine
	res       *Result
	dirtyAcct map[addr.AccountID]struct{}
	dirtyPair map[orderbook.Pair]struct{}
}

func (ap *applier) applyBatch(batch []item) error {
	clear(ap.dirtyAcct)
	clear(ap.dirtyPair)
	for i := range batch {
		it := &batch[i]
		if it.skip {
			continue
		}
		tx := it.tx
		if tx.Type == ledger.TxTrustSet {
			replayTx(ap.state, tx)
			ap.dirtyAcct[tx.Account] = struct{}{}
			ap.dirtyAcct[tx.LimitPeer] = struct{}{}
			continue
		}
		var meta *ledger.TxMeta
		if it.planned && ap.clean(&it.reads) {
			meta = replayTxPlanned(ap.state, tx, it.plan)
			ap.res.Stats.PlannedAhead++
		} else {
			// The plan (or its PathDry verdict) may be stale: re-plan
			// against live state, exactly as sequential replay would.
			if it.planned {
				ap.res.Stats.Conflicts++
			}
			meta = replayTx(ap.state, tx)
		}
		if meta != nil && meta.Result.Succeeded() {
			if it.row != nil {
				it.row.Delivered++
			}
			ap.markExecuted()
		}
	}
	return nil
}

// clean reports whether nothing in the read set has been dirtied by an
// earlier commit in this batch.
func (ap *applier) clean(rs *pathfind.ReadSet) bool {
	if len(ap.dirtyAcct) > 0 {
		for _, a := range rs.Accounts {
			if _, dirty := ap.dirtyAcct[a]; dirty {
				return false
			}
		}
	}
	if len(ap.dirtyPair) > 0 {
		for _, p := range rs.Pairs {
			if _, dirty := ap.dirtyPair[p]; dirty {
				return false
			}
		}
	}
	return true
}

// markExecuted records the state the just-committed payment mutated:
// every trust-flow endpoint and every quoted book pair. XRP balances,
// fees, and sequence numbers are not tracked because the planner never
// reads them (the applier re-checks them live on every commit).
func (ap *applier) markExecuted() {
	plan := ap.state.ExecutedPlan()
	if plan == nil {
		return
	}
	for _, fl := range plan.TrustFlows {
		ap.dirtyAcct[fl.From] = struct{}{}
		ap.dirtyAcct[fl.To] = struct{}{}
	}
	for _, q := range plan.Quotes {
		ap.dirtyPair[q.Pair] = struct{}{}
	}
}

// isDirectXRP reports whether the payment is a plain XRP transfer.
func isDirectXRP(tx *ledger.Tx) bool {
	return tx.Amount.Currency.IsXRP() && (tx.SendMax.IsZero() || tx.SendMax.Currency.IsXRP())
}

// replayTx re-submits a historical transaction against the (diverged)
// replay state: the sequence number is rewritten to the replay engine's
// expectation. Signatures are not re-checked (they cover the original
// sequence); the engine does not verify them during Apply.
func replayTx(eng *payment.Engine, tx *ledger.Tx) *ledger.TxMeta {
	clone := *tx
	clone.Sequence = eng.NextSequence(tx.Account)
	meta, err := eng.Apply(&clone)
	if err != nil {
		return nil
	}
	return meta
}

// replayTxPlanned is replayTx committing a pre-computed path plan.
func replayTxPlanned(eng *payment.Engine, tx *ledger.Tx, plan *pathfind.Plan) *ledger.TxMeta {
	clone := *tx
	clone.Sequence = eng.NextSequence(tx.Account)
	meta, err := eng.ApplyPlanned(&clone, plan)
	if err != nil {
		return nil
	}
	return meta
}
