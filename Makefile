GO ?= go

.PHONY: all build vet test race chaos check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Data-race check over the concurrent stream/collection path.
race:
	$(GO) test -race ./internal/netstream/... ./internal/monitor/... ./internal/faultnet/...

# Short chaos pass: fault injection, resilience, and the degraded-stream
# integration test.
chaos:
	$(GO) test -run 'Fault|Chaos|Resilient|Stalled|Corrupt|Inject|Malformed|Health|BadFrames|Truncat|BitFlip' ./internal/...

check: vet build test race chaos
