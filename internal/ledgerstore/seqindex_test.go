package ledgerstore

import (
	"os"
	"path/filepath"
	"testing"

	"ripplestudy/internal/ledger"
)

func openSmall(t *testing.T, pages int) (*Store, []*ledger.Page) {
	t.Helper()
	dir := t.TempDir()
	all := writeStore(t, dir, pages, 3, WithSegmentBytes(4<<10))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s, all
}

func TestSegmentRangesCoverHistory(t *testing.T) {
	s, all := openSmall(t, 40)
	ranges, err := s.SegmentRanges()
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) < 2 {
		t.Fatalf("got %d segments, want a multi-segment store", len(ranges))
	}
	pages, next := 0, uint64(1)
	for _, sr := range ranges {
		if sr.MinSeq != next {
			t.Errorf("segment %s starts at %d, want %d", sr.File, sr.MinSeq, next)
		}
		if sr.MaxSeq < sr.MinSeq {
			t.Errorf("segment %s range inverted", sr.File)
		}
		next = sr.MaxSeq + 1
		pages += sr.Pages
	}
	if pages != len(all) {
		t.Errorf("indexed %d pages, want %d", pages, len(all))
	}
	// The sidecar must exist and a second call must agree with it.
	if _, err := os.Stat(filepath.Join(s.Dir(), SeqIndexFile)); err != nil {
		t.Fatalf("sidecar not written: %v", err)
	}
	again, err := s.SegmentRanges()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ranges {
		if again[i] != ranges[i] {
			t.Fatalf("cached range %d = %+v, want %+v", i, again[i], ranges[i])
		}
	}
}

func TestLastSeq(t *testing.T) {
	s, all := openSmall(t, 25)
	seq, ok, err := s.LastSeq()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || seq != all[len(all)-1].Header.Sequence {
		t.Fatalf("LastSeq = %d/%v, want %d", seq, ok, all[len(all)-1].Header.Sequence)
	}
}

func TestSeqIndexStaleAfterAppend(t *testing.T) {
	s, all := openSmall(t, 10)
	if _, err := s.SegmentRanges(); err != nil {
		t.Fatal(err)
	}
	// Append more pages: the final segment's size changes, so its stale
	// sidecar entry must be rebuilt, not trusted.
	last := all[len(all)-1]
	extra := buildPageAfter(last, 5)
	for _, p := range extra {
		if err := s.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	seq, ok, err := s.LastSeq()
	if err != nil {
		t.Fatal(err)
	}
	want := extra[len(extra)-1].Header.Sequence
	if !ok || seq != want {
		t.Fatalf("LastSeq after append = %d/%v, want %d", seq, ok, want)
	}
}

// buildPageAfter continues a chain from p with n more pages.
func buildPageAfter(p *ledger.Page, n int) []*ledger.Page {
	out := make([]*ledger.Page, 0, n)
	parent := p.Header.Hash()
	seq := p.Header.Sequence
	for i := 0; i < n; i++ {
		seq++
		np := &ledger.Page{Header: ledger.PageHeader{
			Sequence:   seq,
			ParentHash: parent,
			CloseTime:  ledger.CloseTime(seq * 5),
			TotalDrops: ledger.GenesisTotalDrops,
		}}
		parent = np.Header.Hash()
		out = append(out, np)
	}
	return out
}

func TestSeqIndexSurvivesDeletion(t *testing.T) {
	s, all := openSmall(t, 20)
	if _, err := s.SegmentRanges(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(s.Dir(), SeqIndexFile)); err != nil {
		t.Fatal(err)
	}
	// Rebuild from scratch: same answer.
	seq, ok, err := s.LastSeq()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || seq != all[len(all)-1].Header.Sequence {
		t.Fatalf("LastSeq after sidecar deletion = %d/%v", seq, ok)
	}
}

func TestPagesRange(t *testing.T) {
	s, all := openSmall(t, 40)
	lo, hi := uint64(13), uint64(29)
	var got []uint64
	err := s.PagesRange(lo, hi, func(p *ledger.Page) error {
		got = append(got, p.Header.Sequence)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []uint64
	for _, p := range all {
		if p.Header.Sequence >= lo && p.Header.Sequence <= hi {
			want = append(want, p.Header.Sequence)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d pages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("page %d = seq %d, want %d", i, got[i], want[i])
		}
	}
	// Degenerate ranges.
	if err := s.PagesRange(5, 4, func(*ledger.Page) error { t.Fatal("inverted range visited a page"); return nil }); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := s.PagesRange(1000, 2000, func(*ledger.Page) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("out-of-history range visited %d pages", count)
	}
}
