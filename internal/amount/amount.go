package amount

import (
	"fmt"
	"strconv"
	"strings"
)

// DropsPerXRP is the number of drops in one XRP. The ledger accounts XRP
// in integral drops; user-facing amounts are in XRP.
const DropsPerXRP = 1_000_000

// Drops is an integral quantity of the native currency, as stored in
// account balances and destroyed as transaction fees.
type Drops int64

// XRPValue converts a whole number of drops into a decimal Value expressed
// in XRP units, the representation used in payment amounts and analyses.
func (d Drops) XRPValue() Value {
	v, err := NewValue(int64(d), -6)
	if err != nil {
		panic(err) // unreachable: int64 drops always fit
	}
	return v
}

// String renders the drops as an XRP decimal, e.g. "1.5" for 1500000.
func (d Drops) String() string { return d.XRPValue().String() }

// DropsFromValue converts an XRP-denominated Value into drops, truncating
// any fraction of a drop toward zero. It returns an error when the value
// does not fit in an int64 number of drops.
func DropsFromValue(v Value) (Drops, error) {
	if v.IsZero() {
		return 0, nil
	}
	// drops = mantissa × 10^(exponent+6)
	e := v.Exponent() + 6
	m := v.Mantissa()
	switch {
	case e >= 0:
		if e >= len(pow10) || m > uint64(1<<63-1)/pow10[e] {
			return 0, fmt.Errorf("amount: %s XRP overflows drops", v)
		}
		m *= pow10[e]
	default:
		if -e >= len(pow10) {
			return 0, nil
		}
		m /= pow10[-e]
	}
	d := Drops(m)
	if v.IsNegative() {
		d = -d
	}
	return d, nil
}

// Amount is a quantity of a specific currency: the unit of payments,
// offers, and balances throughout the study. For the native currency the
// Value is denominated in XRP (not drops). Issued-currency amounts carry
// the issuer at the ledger layer, not here: the paper's analyses treat
// currency codes, not (code, issuer) pairs, as the currency feature C.
type Amount struct {
	Currency Currency `json:"currency"`
	Value    Value    `json:"value"`
}

// New returns an Amount of the given currency and value.
func New(c Currency, v Value) Amount { return Amount{Currency: c, Value: v} }

// XRPAmount returns an Amount of d drops denominated in XRP.
func XRPAmount(d Drops) Amount { return Amount{Currency: XRP, Value: d.XRPValue()} }

// IsZero reports whether the amount's value is zero.
func (a Amount) IsZero() bool { return a.Value.IsZero() }

// IsNegative reports whether the amount's value is negative.
func (a Amount) IsNegative() bool { return a.Value.IsNegative() }

// SameCurrency reports whether a and b are denominated in the same
// currency.
func (a Amount) SameCurrency(b Amount) bool { return a.Currency == b.Currency }

// Add returns a + b. It is an error to add amounts of different
// currencies.
func (a Amount) Add(b Amount) (Amount, error) {
	if !a.SameCurrency(b) {
		return Amount{}, fmt.Errorf("amount: cannot add %s and %s", a.Currency, b.Currency)
	}
	v, err := a.Value.Add(b.Value)
	if err != nil {
		return Amount{}, err
	}
	return Amount{Currency: a.Currency, Value: v}, nil
}

// Sub returns a - b. It is an error to subtract amounts of different
// currencies.
func (a Amount) Sub(b Amount) (Amount, error) {
	if !a.SameCurrency(b) {
		return Amount{}, fmt.Errorf("amount: cannot subtract %s from %s", b.Currency, a.Currency)
	}
	v, err := a.Value.Sub(b.Value)
	if err != nil {
		return Amount{}, err
	}
	return Amount{Currency: a.Currency, Value: v}, nil
}

// String renders the amount as "value/CUR", e.g. "4.5/USD".
func (a Amount) String() string { return a.Value.String() + "/" + a.Currency.String() }

// ParseAmount parses the "value/CUR" form produced by Amount.String.
func ParseAmount(s string) (Amount, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return Amount{}, fmt.Errorf("amount: %q: want value/CUR", s)
	}
	v, err := Parse(s[:i])
	if err != nil {
		return Amount{}, err
	}
	c, err := NewCurrency(s[i+1:])
	if err != nil {
		return Amount{}, err
	}
	return Amount{Currency: c, Value: v}, nil
}

// MustAmount is like ParseAmount but panics on error. Intended for tests.
func MustAmount(s string) Amount {
	a, err := ParseAmount(s)
	if err != nil {
		panic(err)
	}
	return a
}

// FormatDrops renders a raw drop count with thousands separators for
// human-readable reports.
func FormatDrops(d Drops) string {
	s := strconv.FormatInt(int64(d), 10)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
		if len(s) > lead {
			b.WriteByte(',')
		}
	}
	for i := lead; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	return b.String()
}
