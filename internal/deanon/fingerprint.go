package deanon

import (
	"encoding/binary"

	"ripplestudy/internal/amount"
)

// The hot path of the §V study hashes every payment under every
// resolution tuple — 10 fingerprints per payment, 230M fingerprints at
// the paper's 23M-payment scale. The generic FingerprintOf used to build
// a fresh hash.Hash per call; at that scale the allocations dominated.
// This file is the allocation-free fast path: FNV-1a is inlined over
// stack buffers, and FeatureEnc precomputes every feature's byte
// encoding (all Table I rounding levels, all time granularities) once
// per payment so that a study over k resolutions performs the rounding
// and serialization work 1×, not k×. Both paths are bit-identical to
// hashing the same byte sequence with hash/fnv's New64a.

// FNV-1a 64-bit parameters (FNV-0 offset basis hashed over
// "chongo <Landon Curt Noll> /\\../\\", and the 64-bit FNV prime).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvBytes folds b into the running FNV-1a state h.
func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// Feature-chunk sizes: each chunk carries its domain-separation tag
// ('A', 'T', 'C', 'D') followed by the fixed-width feature encoding.
const (
	amtChunkLen  = 1 + 16 // 'A' ∥ mantissa ∥ exponent<<1|sign
	timeChunkLen = 1 + 8  // 'T' ∥ coarsened close time
	curChunkLen  = 1 + 3  // 'C' ∥ currency code
	dstChunkLen  = 1 + 20 // 'D' ∥ destination account
)

// encodeAmount serializes a rounded amount value into an 'A' chunk.
func encodeAmount(dst *[amtChunkLen]byte, v amount.Value) {
	dst[0] = 'A'
	m := v.Mantissa()
	e := uint64(int64(v.Exponent()))
	s := uint64(0)
	if v.IsNegative() {
		s = 1
	}
	binary.BigEndian.PutUint64(dst[1:9], m)
	binary.BigEndian.PutUint64(dst[9:17], e<<1|s)
}

// FeatureEnc is a payment's features pre-encoded at every resolution
// level: three Table I rounding levels plus the exact amount, and the
// four time granularities. Building one costs three roundings and four
// truncations; every subsequent Fingerprint call is a pure FNV pass
// over the precomputed chunks, with no allocation and no re-rounding.
type FeatureEnc struct {
	// amt[r-1] is the chunk for AmountRes r (Max, Avg, Low, Exact).
	amt [4][amtChunkLen]byte
	// tim[r-1] is the chunk for TimeRes r (Seconds … Days).
	tim [4][timeChunkLen]byte
	cur [curChunkLen]byte
	dst [dstChunkLen]byte
}

// EncodeFeatures precomputes f's fingerprint chunks at every level.
func EncodeFeatures(f Features) FeatureEnc {
	var e FeatureEnc
	// One strength lookup covers all three Table I levels: Avg and Low
	// round one and two decades coarser than Max by definition, so the
	// per-level RoundAmount calls (three currency-strength map probes)
	// collapse into a single base-exponent derivation.
	base := tableIBase(amount.StrengthOf(f.Currency))
	encodeAmount(&e.amt[AmountMax-1], f.Amount.RoundToPow10(base))
	encodeAmount(&e.amt[AmountAvg-1], f.Amount.RoundToPow10(base+1))
	encodeAmount(&e.amt[AmountLow-1], f.Amount.RoundToPow10(base+2))
	encodeAmount(&e.amt[AmountExact-1], f.Amount)
	for res := TimeSeconds; res <= TimeDays; res++ {
		e.tim[res-1][0] = 'T'
		binary.BigEndian.PutUint64(e.tim[res-1][1:9], uint64(CoarsenTime(f.Time, res)))
	}
	e.cur[0] = 'C'
	copy(e.cur[1:], f.Currency[:])
	e.dst[0] = 'D'
	copy(e.dst[1:], f.Destination[:])
	return e
}

// Fingerprint combines the precomputed chunks selected by res into the
// payment's fingerprint. The result is identical to FingerprintOf on
// the original features.
func (e *FeatureEnc) Fingerprint(res Resolution) Fingerprint {
	h := fnvOffset64
	if res.Amount != AmountOff {
		h = fnvBytes(h, e.amt[res.Amount-1][:])
	}
	if res.Time != TimeOff {
		h = fnvBytes(h, e.tim[res.Time-1][:])
	}
	if res.Currency {
		h = fnvBytes(h, e.cur[:])
	}
	if res.Destination {
		h = fnvBytes(h, e.dst[:])
	}
	return Fingerprint(h)
}

// FingerprintPlan is a compiled resolution list for AppendFingerprints.
// Building the plan once per study (instead of re-deriving per payment)
// lets the hot loop exploit two structural facts about real resolution
// sets like Figure3Rows:
//
//   - Rows share (amount, time) hash prefixes — Figure 3's ten rows have
//     only seven distinct prefixes — so the prefix FNV state is computed
//     once per distinct prefix and memoized.
//   - Most rows end with the 21-byte destination chunk. FNV-1a is a
//     serial multiply chain, so folding it row-by-row pays the full
//     multiply latency 21×k times; folding it lane-interleaved across k
//     independent row states pipelines the multiplies and costs close to
//     one chain.
type FingerprintPlan struct {
	rows []planRow
	// dstRows indexes the rows whose resolution selects the destination
	// feature, in row order.
	dstRows []int32
}

type planRow struct {
	amt int8 // AmountRes (0 = off)
	tim int8 // TimeRes (0 = off)
	cur bool
}

// NewFingerprintPlan compiles a resolution list. The plan is immutable
// and safe for concurrent use by any number of goroutines.
func NewFingerprintPlan(resolutions []Resolution) *FingerprintPlan {
	p := &FingerprintPlan{rows: make([]planRow, len(resolutions))}
	for i, r := range resolutions {
		p.rows[i] = planRow{amt: int8(r.Amount), tim: int8(r.Time), cur: r.Currency}
		if r.Destination {
			p.dstRows = append(p.dstRows, int32(i))
		}
	}
	return p
}

// Rows returns the number of resolutions the plan fingerprints.
func (p *FingerprintPlan) Rows() int { return len(p.rows) }

// dstLanes is how many row states the destination fold interleaves at
// once: 16 lanes of running FNV state is 128 B, two cache lines.
const dstLanes = 16

// AppendFingerprints appends one fingerprint per plan row to out and
// returns the extended slice. Each appended value is bit-identical to
// e.Fingerprint (and FingerprintOf) for the corresponding resolution —
// the plan only reorders work, never the per-row byte sequence.
func (e *FeatureEnc) AppendFingerprints(p *FingerprintPlan, out []Fingerprint) []Fingerprint {
	// Prefix stage: fold the amount and time chunks once per distinct
	// (amt, tim) level pair, then branch per row for the 4-byte currency
	// chunk. memo is indexed by the raw resolution levels (0 = off).
	var memo [5][5]uint64
	var have [5][5]bool
	start := len(out)
	for _, r := range p.rows {
		h := memo[r.amt][r.tim]
		if !have[r.amt][r.tim] {
			h = fnvOffset64
			if r.amt != 0 {
				h = fnvBytes(h, e.amt[r.amt-1][:])
			}
			if r.tim != 0 {
				h = fnvBytes(h, e.tim[r.tim-1][:])
			}
			memo[r.amt][r.tim] = h
			have[r.amt][r.tim] = true
		}
		if r.cur {
			h = fnvBytes(h, e.cur[:])
		}
		out = append(out, Fingerprint(h))
	}
	// Destination stage: interleave the 21-byte fold across up to
	// dstLanes independent row states so the multiply chains pipeline.
	rows := out[start:]
	for lo := 0; lo < len(p.dstRows); lo += dstLanes {
		batch := p.dstRows[lo:]
		if len(batch) > dstLanes {
			batch = batch[:dstLanes]
		}
		var st [dstLanes]uint64
		n := len(batch)
		for j, ri := range batch {
			st[j] = uint64(rows[ri])
		}
		for _, c := range e.dst {
			x := uint64(c)
			for j := 0; j < n; j++ {
				st[j] = (st[j] ^ x) * fnvPrime64
			}
		}
		for j, ri := range batch {
			rows[ri] = Fingerprint(st[j])
		}
	}
	return out
}
