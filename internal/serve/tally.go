package serve

import (
	"encoding/binary"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/monitor"
)

// tallyState is the mutable Figure 2 view: per-validator total/valid
// page counts maintained incrementally from the validation stream.
//
// The batch pipeline (monitor.Collector) retains every validation and
// recomputes valid counts at Report time — O(validations) per report.
// Here a close event retroactively credits the validators that already
// signed the page (the pending index), and a validation of an
// already-valid page credits immediately, so the per-validator counters
// are always current and a snapshot is O(validators).
type tallyState struct {
	labels  map[addr.NodeID]string
	totals  map[addr.NodeID]int
	valids  map[addr.NodeID]int
	badSigs map[addr.NodeID]int
	// pending maps a page hash to the validators that signed it before
	// it was announced valid (one entry per validation, duplicates
	// kept, matching the batch semantics).
	pending    map[ledger.Hash][]addr.NodeID
	validPages map[ledger.Hash]bool
	events     int
	malformed  int
}

func newTallyState(labels map[addr.NodeID]string) *tallyState {
	return &tallyState{
		labels:     labels,
		totals:     make(map[addr.NodeID]int),
		valids:     make(map[addr.NodeID]int),
		badSigs:    make(map[addr.NodeID]int),
		pending:    make(map[ledger.Hash][]addr.NodeID),
		validPages: make(map[ledger.Hash]bool),
	}
}

// apply folds one stream event in, with the same malformed-event
// quarantine rules as monitor.Collector.Record.
func (t *tallyState) apply(ev consensus.Event) {
	switch ev.Kind {
	case consensus.EventValidation:
		if ev.LedgerHash.IsZero() || ev.Node == (addr.NodeID{}) {
			t.malformed++
			return
		}
		t.events++
		t.totals[ev.Node]++
		if t.validPages[ev.LedgerHash] {
			t.valids[ev.Node]++
		} else {
			t.pending[ev.LedgerHash] = append(t.pending[ev.LedgerHash], ev.Node)
		}
		if len(ev.Signature) > 0 && !addr.Verify(ev.Node.PublicKey(), ev.LedgerHash[:], ev.Signature) {
			t.badSigs[ev.Node]++
		}
	case consensus.EventLedgerClosed:
		if ev.LedgerHash.IsZero() {
			t.malformed++
			return
		}
		t.events++
		if !t.validPages[ev.LedgerHash] {
			t.validPages[ev.LedgerHash] = true
			for _, node := range t.pending[ev.LedgerHash] {
				t.valids[node]++
			}
			delete(t.pending, ev.LedgerHash)
		}
	default:
		t.malformed++
	}
}

// snapshot seals the current tallies as an immutable TallySnapshot.
func (t *tallyState) snapshot(epoch, appliedSeq uint64) *TallySnapshot {
	stats := make([]monitor.ValidatorStats, 0, len(t.totals))
	for node, total := range t.totals {
		stats = append(stats, monitor.ValidatorStats{
			Node:          node,
			Label:         t.displayName(node),
			Total:         total,
			Valid:         t.valids[node],
			BadSignatures: t.badSigs[node],
		})
	}
	monitor.SortStats(stats)
	return &TallySnapshot{
		Epoch:      epoch,
		AppliedSeq: appliedSeq,
		Rounds:     len(t.validPages),
		Events:     t.events,
		Malformed:  t.malformed,
		Validators: stats,
	}
}

func (t *tallyState) displayName(node addr.NodeID) string {
	if l, ok := t.labels[node]; ok && l != "" {
		return l
	}
	return node.Short()
}

// tallyShards is the Figure 2 view sharded for the multi-worker
// pipeline: each apply worker owns one full tallyState, and events are
// routed by ledger hash (tallyRoute), so a page's validations, its
// close event, its pending index entry, and its validPages bit all
// colocate on one shard. Within a hash the validation/close interplay
// commutes (a validation credits immediately after the close, or at the
// close if it signed first — either way total and valid both advance),
// and across hashes every statistic is an order-insensitive sum, so the
// merged snapshot is bit-identical to a sequential fold of the same
// events in any order.
type tallyShards struct {
	shards []*tallyState
}

func newTallyShards(labels map[addr.NodeID]string, n int) *tallyShards {
	if n < 1 {
		n = 1
	}
	t := &tallyShards{shards: make([]*tallyState, n)}
	for i := range t.shards {
		t.shards[i] = newTallyState(labels)
	}
	return t
}

// tallyRoute keys an update to the shard owning its ledger hash.
// Malformed events (zero hash, or no event at all) quarantine on shard
// 0; the worker reduces the key modulo the shard count.
func tallyRoute(u *update) uint64 {
	if u.ev == nil || u.ev.LedgerHash.IsZero() {
		return 0
	}
	return binary.BigEndian.Uint64(u.ev.LedgerHash[:8])
}

func (t *tallyShards) apply(shard int, ev consensus.Event) { t.shards[shard].apply(ev) }

// snapshot merges the shards into one immutable TallySnapshot — the
// deterministic cross-shard reconciliation at seal. Per-validator
// counters and event counts are plain sums; Rounds sums the disjoint
// per-shard validPages sets (each hash lives on exactly one shard).
// With a single shard it degenerates to that shard's own snapshot.
func (t *tallyShards) snapshot(epoch, appliedSeq uint64) *TallySnapshot {
	if len(t.shards) == 1 {
		return t.shards[0].snapshot(epoch, appliedSeq)
	}
	totals := make(map[addr.NodeID]int)
	valids := make(map[addr.NodeID]int)
	badSigs := make(map[addr.NodeID]int)
	rounds, events, malformed := 0, 0, 0
	for _, sh := range t.shards {
		for node, n := range sh.totals {
			totals[node] += n
		}
		for node, n := range sh.valids {
			valids[node] += n
		}
		for node, n := range sh.badSigs {
			badSigs[node] += n
		}
		rounds += len(sh.validPages)
		events += sh.events
		malformed += sh.malformed
	}
	stats := make([]monitor.ValidatorStats, 0, len(totals))
	for node, total := range totals {
		stats = append(stats, monitor.ValidatorStats{
			Node:          node,
			Label:         t.shards[0].displayName(node),
			Total:         total,
			Valid:         valids[node],
			BadSignatures: badSigs[node],
		})
	}
	monitor.SortStats(stats)
	return &TallySnapshot{
		Epoch:      epoch,
		AppliedSeq: appliedSeq,
		Rounds:     rounds,
		Events:     events,
		Malformed:  malformed,
		Validators: stats,
	}
}

// TallySnapshot is one sealed epoch of the Figure 2 view.
type TallySnapshot struct {
	// Epoch identifies the publish this snapshot came from; it keys the
	// HTTP response cache.
	Epoch uint64 `json:"epoch"`
	// AppliedSeq is the highest ledger sequence folded in.
	AppliedSeq uint64 `json:"applied_seq"`
	// Rounds is the number of distinct validated pages observed.
	Rounds int `json:"rounds"`
	// Events and Malformed count well-formed and quarantined events.
	Events    int `json:"events"`
	Malformed int `json:"malformed"`
	// Validators holds the per-validator tallies in the paper's
	// presentation order.
	Validators []monitor.ValidatorStats `json:"validators"`
}

// Report converts the snapshot to the batch pipeline's report type, so
// existing consumers (tables, comparisons) work unchanged.
func (s *TallySnapshot) Report(period string) monitor.Report {
	return monitor.Report{Period: period, Rounds: s.Rounds, Validators: s.Validators}
}
