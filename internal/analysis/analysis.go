// Package analysis implements the paper's appendix: the in-depth
// exploration of the ledger. A single streaming Collector folds pages in
// once and answers every appendix question: the most-used currencies
// (Fig. 4), the survival functions of payment amounts (Fig. 5), the
// path-length and parallel-path distributions (Fig. 6), the most
// frequent intermediaries with their trust and balance profiles
// (Fig. 7), and the concentration of exchange offers over market makers.
package analysis

import (
	"math"
	"sort"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/trustgraph"
)

// logBucket parameters: amounts are histogrammed at 0.1-decade
// granularity across 10^-10 .. 10^14, which reconstructs survival
// functions without retaining every amount.
const (
	bucketPerDecade = 10
	minDecade       = -10
	maxDecade       = 14
	numBuckets      = (maxDecade - minDecade) * bucketPerDecade
)

type histogram struct {
	buckets [numBuckets]int64
	total   int64
}

func (h *histogram) add(v float64) {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	d := math.Log10(v)
	idx := int((d - minDecade) * bucketPerDecade)
	if idx < 0 {
		idx = 0
	}
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	h.buckets[idx]++
	h.total++
}

// survival returns P(amount > x).
func (h *histogram) survival(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	if x <= 0 {
		return 1
	}
	d := math.Log10(x)
	idx := int((d - minDecade) * bucketPerDecade)
	if idx < 0 {
		return 1
	}
	if idx >= numBuckets {
		return 0
	}
	var above int64
	for i := idx + 1; i < numBuckets; i++ {
		above += h.buckets[i]
	}
	return float64(above) / float64(h.total)
}

// Collector accumulates the appendix statistics from a stream of pages.
// It is not safe for concurrent use.
type Collector struct {
	payments  int64
	failed    int64
	transacts int64

	byCurrency map[amount.Currency]int64
	amounts    map[amount.Currency]*histogram
	global     histogram

	hopHist      map[int]int64 // per-path intermediate hops (Fig. 6a)
	parallelHist map[int]int64 // parallel paths per payment (Fig. 6b)
	multiHop     int64

	intermediary map[addr.AccountID]int64

	offersByOwner map[addr.AccountID]int64
	offersTotal   int64

	senders, receivers map[addr.AccountID]struct{}

	feesByAccount map[addr.AccountID]amount.Drops
	feesTotal     amount.Drops

	resultCounts map[ledger.TxResult]int64
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{
		byCurrency:    make(map[amount.Currency]int64),
		amounts:       make(map[amount.Currency]*histogram),
		hopHist:       make(map[int]int64),
		parallelHist:  make(map[int]int64),
		intermediary:  make(map[addr.AccountID]int64),
		offersByOwner: make(map[addr.AccountID]int64),
		senders:       make(map[addr.AccountID]struct{}),
		receivers:     make(map[addr.AccountID]struct{}),
		feesByAccount: make(map[addr.AccountID]amount.Drops),
		resultCounts:  make(map[ledger.TxResult]int64),
	}
}

// Reset returns the collector to its empty state while keeping the
// allocations it has grown: maps are cleared, not reallocated, so their
// buckets survive. This is what lets a merge-target collector be
// recycled across seals instead of rebuilding O(view state) maps per
// epoch. Per-currency histogram entries are dropped outright — a
// currency absent from the next accumulation must read as absent
// (Survival returns nil), not as an empty curve.
func (c *Collector) Reset() {
	c.payments, c.failed, c.transacts = 0, 0, 0
	c.multiHop, c.offersTotal, c.feesTotal = 0, 0, 0
	clear(c.byCurrency)
	clear(c.amounts)
	c.global = histogram{}
	clear(c.hopHist)
	clear(c.parallelHist)
	clear(c.intermediary)
	clear(c.offersByOwner)
	clear(c.senders)
	clear(c.receivers)
	clear(c.feesByAccount)
	clear(c.resultCounts)
}

// Page folds one ledger page into the statistics.
func (c *Collector) Page(p *ledger.Page) error {
	for i, tx := range p.Txs {
		meta := p.Metas[i]
		c.transacts++
		// Fee accounting: every included transaction burns its fee —
		// Ripple's anti-spam design ("a small XRP fee is collected for
		// each transaction ... destroyed after the transaction is
		// confirmed").
		c.feesByAccount[tx.Account] += tx.Fee
		c.feesTotal += tx.Fee
		c.resultCounts[meta.Result]++
		switch tx.Type {
		case ledger.TxOfferCreate:
			if meta.Result.Succeeded() {
				c.offersByOwner[tx.Account]++
				c.offersTotal++
			}
		case ledger.TxPayment:
			if !meta.Result.Succeeded() {
				c.failed++
				continue
			}
			c.payments++
			c.byCurrency[tx.Amount.Currency]++
			h := c.amounts[tx.Amount.Currency]
			if h == nil {
				h = &histogram{}
				c.amounts[tx.Amount.Currency] = h
			}
			f := tx.Amount.Value.Float64()
			h.add(f)
			c.global.add(f)
			c.senders[tx.Account] = struct{}{}
			c.receivers[tx.Destination] = struct{}{}
			// The paper's Figure 6 set is the payments that "require
			// more than one hop on the trust-lines": at least one
			// intermediate account. Direct transfers (trust-line
			// neighbours, direct XRP) are excluded.
			if meta.MaxHops() >= 1 {
				c.multiHop++
				c.parallelHist[len(meta.PathHops)]++
				for _, hops := range meta.PathHops {
					c.hopHist[int(hops)]++
				}
			}
			for _, mid := range meta.Intermediaries {
				c.intermediary[mid]++
			}
		}
	}
	return nil
}

// AddPayment folds one successful payment in from its projected fields
// — the record-based entry point for consumers (the live serving
// layer's ecosystem view) that project pages once at ingest instead of
// handing the collector whole pages. pathHops is the per-path
// intermediate hop count list from the transaction metadata. The
// statistics it maintains are exactly the ones Collector.Page's payment
// arm does, bit-identically: currency counts, amount histograms,
// sender/receiver sets, and the multi-hop path-shape histograms.
// (Transaction-level stats with no payment projection — fees, engine
// result counts, intermediary appearances — are page-arm only.)
func (c *Collector) AddPayment(sender, dest addr.AccountID, cur amount.Currency, v amount.Value, pathHops []uint8) {
	c.payments++
	c.byCurrency[cur]++
	h := c.amounts[cur]
	if h == nil {
		h = &histogram{}
		c.amounts[cur] = h
	}
	f := v.Float64()
	h.add(f)
	c.global.add(f)
	c.senders[sender] = struct{}{}
	c.receivers[dest] = struct{}{}
	maxHops := 0
	for _, hops := range pathHops {
		if int(hops) > maxHops {
			maxHops = int(hops)
		}
	}
	if maxHops >= 1 {
		c.multiHop++
		c.parallelHist[len(pathHops)]++
		for _, hops := range pathHops {
			c.hopHist[int(hops)]++
		}
	}
}

// AddFailedPayments counts n failed payment transactions, matching the
// page arm's failed branch.
func (c *Collector) AddFailedPayments(n int) { c.failed += int64(n) }

// AddOffer counts one successful OfferCreate by owner, matching the
// page arm's offer branch.
func (c *Collector) AddOffer(owner addr.AccountID) {
	c.offersByOwner[owner]++
	c.offersTotal++
}

// Merge folds another collector's accumulated statistics into c,
// leaving other unusable. Every statistic the collector keeps is an
// order-insensitive sum (counts, histograms) or union (account sets),
// so merging per-worker collectors from a segment-parallel scan yields
// exactly the state a single sequential collector would have reached —
// the property the parallel cmd/ledger-analyze path relies on.
func (c *Collector) Merge(other *Collector) { c.mergeFrom(other, true) }

// MergeCloned folds another collector's statistics into c like Merge
// but leaves other untouched and reusable: per-currency histograms are
// copied, never adopted, so the same source collector can keep
// accumulating and be merged again later. This is the repeated
// seal-time merge the serving layer's sharded ecosystem view runs
// against its persistent per-worker shards.
func (c *Collector) MergeCloned(other *Collector) { c.mergeFrom(other, false) }

// mergeFrom is the shared merge walk; adopt controls whether histogram
// pointers first seen under a currency are taken over (cheap,
// destructive) or deep-copied (repeatable).
func (c *Collector) mergeFrom(other *Collector, adopt bool) {
	c.payments += other.payments
	c.failed += other.failed
	c.transacts += other.transacts
	c.multiHop += other.multiHop
	c.offersTotal += other.offersTotal
	c.feesTotal += other.feesTotal
	for cur, n := range other.byCurrency {
		c.byCurrency[cur] += n
	}
	for cur, h := range other.amounts {
		mine := c.amounts[cur]
		if mine == nil {
			if adopt {
				c.amounts[cur] = h
			} else {
				cp := *h
				c.amounts[cur] = &cp
			}
			continue
		}
		mine.merge(h)
	}
	c.global.merge(&other.global)
	for k, v := range other.hopHist {
		c.hopHist[k] += v
	}
	for k, v := range other.parallelHist {
		c.parallelHist[k] += v
	}
	for a, n := range other.intermediary {
		c.intermediary[a] += n
	}
	for a, n := range other.offersByOwner {
		c.offersByOwner[a] += n
	}
	for a := range other.senders {
		c.senders[a] = struct{}{}
	}
	for a := range other.receivers {
		c.receivers[a] = struct{}{}
	}
	for a, f := range other.feesByAccount {
		c.feesByAccount[a] += f
	}
	for k, v := range other.resultCounts {
		c.resultCounts[k] += v
	}
}

// merge adds another histogram's buckets into h.
func (h *histogram) merge(other *histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.total += other.total
}

// Payments returns the number of successful payments folded in.
func (c *Collector) Payments() int64 { return c.payments }

// FailedPayments returns the number of failed payment transactions.
func (c *Collector) FailedPayments() int64 { return c.failed }

// MultiHopPayments returns payments that used at least one trust path
// (the paper's "10M transactions that require more than one hop").
func (c *Collector) MultiHopPayments() int64 { return c.multiHop }

// ActiveAccounts returns the number of distinct payment senders.
func (c *Collector) ActiveAccounts() int { return len(c.senders) }

// CurrencyCount is one bar of Figure 4.
type CurrencyCount struct {
	Currency amount.Currency
	Payments int64
}

// CurrencyHistogram returns currencies by descending payment count —
// Figure 4.
func (c *Collector) CurrencyHistogram() []CurrencyCount {
	out := make([]CurrencyCount, 0, len(c.byCurrency))
	for cur, n := range c.byCurrency {
		out = append(out, CurrencyCount{Currency: cur, Payments: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Payments != out[j].Payments {
			return out[i].Payments > out[j].Payments
		}
		return out[i].Currency.String() < out[j].Currency.String()
	})
	return out
}

// SurvivalPoint is one sample of a Figure 5 curve.
type SurvivalPoint struct {
	Amount   float64
	Fraction float64 // P(payment amount > Amount)
}

// Survival samples the survival function of the currency's payment
// amounts at the given thresholds. The zero currency with global=true
// gives the currency-unaware "Global" curve. One suffix-sum pass over
// the buckets serves every threshold, so a whole curve costs
// O(buckets + thresholds) instead of O(buckets × thresholds) — the
// live serving layer seals these curves on every ecosystem publish.
// Each point is bit-identical to histogram.survival: the suffix sums
// are the same integer additions, in the same order.
func (c *Collector) Survival(cur amount.Currency, global bool, thresholds []float64) []SurvivalPoint {
	h := &c.global
	if !global {
		h = c.amounts[cur]
		if h == nil {
			return nil
		}
	}
	// suffix[i] counts payments in buckets strictly above i-1, i.e.
	// suffix[idx+1] is histogram.survival's "above" sum for idx.
	var suffix [numBuckets + 1]int64
	for i := numBuckets - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + h.buckets[i]
	}
	out := make([]SurvivalPoint, 0, len(thresholds))
	for _, x := range thresholds {
		out = append(out, SurvivalPoint{Amount: x, Fraction: h.survivalAt(x, &suffix)})
	}
	return out
}

// survivalAt is histogram.survival answered from a precomputed suffix
// table.
func (h *histogram) survivalAt(x float64, suffix *[numBuckets + 1]int64) float64 {
	if h.total == 0 {
		return 0
	}
	if x <= 0 {
		return 1
	}
	d := math.Log10(x)
	idx := int((d - minDecade) * bucketPerDecade)
	if idx < 0 {
		return 1
	}
	if idx >= numBuckets {
		return 0
	}
	return float64(suffix[idx+1]) / float64(h.total)
}

// FeaturedCurrencies returns the currencies whose survival curves the
// paper plots in Figure 5, in presentation order. Shared by the batch
// facade (core.Figure5) and the live serving layer.
func FeaturedCurrencies() []amount.Currency {
	return []amount.Currency{amount.BTC, amount.CCK, amount.CNY, amount.EUR, amount.MTL, amount.USD, amount.XRP}
}

// DefaultSurvivalGrid returns the paper's x-axis: powers of ten from
// 10^-4 to 10^12.
func DefaultSurvivalGrid() []float64 {
	var out []float64
	for d := -4; d <= 12; d++ {
		out = append(out, math.Pow(10, float64(d)))
	}
	return out
}

// HopHistogram returns path counts by intermediate hops — Figure 6(a).
func (c *Collector) HopHistogram() map[int]int64 {
	out := make(map[int]int64, len(c.hopHist))
	for k, v := range c.hopHist {
		out[k] = v
	}
	return out
}

// ParallelHistogram returns payment counts by number of parallel paths —
// Figure 6(b).
func (c *Collector) ParallelHistogram() map[int]int64 {
	out := make(map[int]int64, len(c.parallelHist))
	for k, v := range c.parallelHist {
		out[k] = v
	}
	return out
}

// Intermediary is one bar of Figure 7(a), optionally annotated with the
// trust/balance profile of Figures 7(b) and 7(c).
type Intermediary struct {
	Account addr.AccountID
	Name    string
	Gateway bool
	// TimesIntermediate counts appearances as an intermediate hop.
	TimesIntermediate int64
	// Profile aggregates trust and balances (filled by ProfileTop).
	Profile trustgraph.Profile
}

// Namer resolves display names and gateway status; synth.Registry
// satisfies it.
type Namer interface {
	Name(addr.AccountID) string
	IsGateway(addr.AccountID) bool
}

// TopIntermediaries returns the k accounts appearing most often as
// intermediate hops — Figure 7(a).
func (c *Collector) TopIntermediaries(k int, names Namer) []Intermediary {
	out := make([]Intermediary, 0, len(c.intermediary))
	for a, n := range c.intermediary {
		it := Intermediary{Account: a, TimesIntermediate: n}
		if names != nil {
			it.Name = names.Name(a)
			it.Gateway = names.IsGateway(a)
		} else {
			it.Name = a.Short()
		}
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TimesIntermediate != out[j].TimesIntermediate {
			return out[i].TimesIntermediate > out[j].TimesIntermediate
		}
		return out[i].Account.String() < out[j].Account.String()
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// ProfileTop fills the trust/balance profiles of the intermediaries from
// the final credit network — Figures 7(b) and 7(c). rate converts each
// currency into the reference currency (the paper uses EUR).
func ProfileTop(top []Intermediary, g *trustgraph.Graph, rate func(amount.Currency) float64) {
	for i := range top {
		top[i].Profile = g.ProfileOf(top[i].Account, rate)
	}
}

// OfferConcentration returns, for each k in ks, the fraction of all
// offers placed by the k most active offer creators — the appendix's
// "44M (50%) are generated by 10 Market Makers only" measurement.
func (c *Collector) OfferConcentration(ks []int) map[int]float64 {
	counts := make([]int64, 0, len(c.offersByOwner))
	for _, n := range c.offersByOwner {
		counts = append(counts, n)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	out := make(map[int]float64, len(ks))
	for _, k := range ks {
		var topK int64
		for i := 0; i < k && i < len(counts); i++ {
			topK += counts[i]
		}
		if c.offersTotal == 0 {
			out[k] = 0
		} else {
			out[k] = float64(topK) / float64(c.offersTotal)
		}
	}
	return out
}

// TotalOffers returns the number of successful OfferCreate transactions.
func (c *Collector) TotalOffers() int64 { return c.offersTotal }

// ResultCounts returns how many transactions landed on each engine
// result code — the health profile of the history.
func (c *Collector) ResultCounts() map[ledger.TxResult]int64 {
	out := make(map[ledger.TxResult]int64, len(c.resultCounts))
	for k, v := range c.resultCounts {
		out[k] = v
	}
	return out
}

// FeePayer is one row of the spam-cost analysis: an account and the XRP
// it burned in fees.
type FeePayer struct {
	Account addr.AccountID
	Name    string
	Fees    amount.Drops
	Share   float64 // of all fees burned
}

// TotalFees returns the XRP destroyed across the history.
func (c *Collector) TotalFees() amount.Drops { return c.feesTotal }

// TopFeePayers ranks accounts by fees burned — the cost side of the
// paper's spam campaigns: the MTL and CCK attackers and the
// ACCOUNT_ZERO spammers dominate this list, quantifying how much the
// anti-spam fee actually charged them.
func (c *Collector) TopFeePayers(k int, names Namer) []FeePayer {
	out := make([]FeePayer, 0, len(c.feesByAccount))
	for a, f := range c.feesByAccount {
		fp := FeePayer{Account: a, Fees: f}
		if names != nil {
			fp.Name = names.Name(a)
		} else {
			fp.Name = a.Short()
		}
		if c.feesTotal > 0 {
			fp.Share = float64(f) / float64(c.feesTotal)
		}
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fees != out[j].Fees {
			return out[i].Fees > out[j].Fees
		}
		return out[i].Account.String() < out[j].Account.String()
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
