package serve

import (
	"sync/atomic"

	"ripplestudy/internal/amount"
	"ripplestudy/internal/analysis"
)

// ecosystemState is the mutable Figures 4–6 view. analysis.Collector is
// already a streaming accumulator, so the incremental maintenance IS
// the batch computation — the view work is sealing its derived
// statistics into immutable snapshots per epoch. The view consumes
// projected records (project.go), not pages: the collector's record
// entry points fold in exactly the statistics the snapshot surfaces,
// bit-identical to Collector.Page over the originals.
type ecosystemState struct {
	col   *analysis.Collector
	pages uint64
}

func newEcosystemState() *ecosystemState {
	return &ecosystemState{col: analysis.NewCollector()}
}

func (e *ecosystemState) apply(rec *pageRecord) {
	e.pages++
	e.col.AddFailedPayments(rec.failed)
	for _, owner := range rec.offerOwners {
		e.col.AddOffer(owner)
	}
	for i := range rec.payments {
		p := &rec.payments[i]
		e.col.AddPayment(p.sender, p.dest, p.currency, p.value,
			rec.hops[p.hopsOff:p.hopsOff+p.hopsLen])
	}
}

// snapshot seals the derived histograms. Every accessor used here
// (CurrencyHistogram, Survival, HopHistogram, ParallelHistogram,
// OfferConcentration) copies out of the collector, so the snapshot
// shares no mutable state with it.
func (e *ecosystemState) snapshot(epoch, appliedSeq uint64) *EcosystemSnapshot {
	grid := analysis.DefaultSurvivalGrid()
	curves := []SurvivalCurve{{Label: "Global", Points: e.col.Survival(amount.Currency{}, true, grid)}}
	for _, cur := range analysis.FeaturedCurrencies() {
		curves = append(curves, SurvivalCurve{Label: cur.String(), Points: e.col.Survival(cur, false, grid)})
	}
	return &EcosystemSnapshot{
		Epoch:              epoch,
		AppliedSeq:         appliedSeq,
		Pages:              e.pages,
		Payments:           e.col.Payments(),
		Failed:             e.col.FailedPayments(),
		MultiHop:           e.col.MultiHopPayments(),
		Offers:             e.col.TotalOffers(),
		ActiveUsers:        e.col.ActiveAccounts(),
		Currencies:         e.col.CurrencyHistogram(),
		Survival:           curves,
		Hops:               e.col.HopHistogram(),
		Parallel:           e.col.ParallelHistogram(),
		OfferConcentration: e.col.OfferConcentration([]int{10, 50, 100}),
	}
}

// ecoShards is the Figures 4–6 view sharded for the multi-worker
// pipeline: each apply worker folds records into its own
// analysis.Collector, and the seal merges them — MergeCloned into a
// fresh collector, leaving the per-worker shards accumulating — before
// building the snapshot. Every collector statistic is an
// order-insensitive sum or union, so any partition of the record stream
// merges to the state a sequential fold reaches (the property
// analysis.Merge already pins for the segment-parallel batch scan).
type ecoShards struct {
	shards []*ecosystemState
	// pages counts records folded across all shards; atomic because the
	// sealer reads it for the publish gate without a barrier (it is a
	// heuristic, exactness is not needed).
	pages atomic.Uint64
	// lastSealPages is the folded page count the previous seal covered.
	// Sealer-goroutine only.
	lastSealPages uint64
	// merged is the recycled merge target for multi-shard seals: every
	// seal re-merges the cumulative shards from scratch, so instead of
	// allocating a fresh collector (and regrowing its maps) per epoch,
	// the previous epoch's is Reset — buckets and histograms kept — and
	// refilled. Sealer-goroutine only, like lastSealPages.
	merged *ecosystemState
}

func newEcoShards(n int) *ecoShards {
	if n < 1 {
		n = 1
	}
	e := &ecoShards{shards: make([]*ecosystemState, n)}
	for i := range e.shards {
		e.shards[i] = newEcosystemState()
	}
	return e
}

func (e *ecoShards) apply(shard int, rec *pageRecord) {
	e.shards[shard].apply(rec)
	e.pages.Add(1)
}

// sealDue spaces merged publishes geometrically under sustained load:
// a merge clones every shard's histograms and account sets — O(view
// state), not O(batch) — so requiring the folded page count to double
// since the previous seal bounds total merge traffic at ≤2× the final
// state, the same discipline the fingerprint view applies to its shard
// clones. Ring-dry and shutdown seals bypass the gate, so idle epochs
// stay fresh and Drain always completes. Only wired at workers>1; the
// single-worker view publishes on the classic batch cadence.
func (e *ecoShards) sealDue() bool {
	return e.pages.Load() >= 2*e.lastSealPages
}

// snapshot merges the shards and seals the derived histograms. At
// workers>1 it runs under the seal barrier (or after shutdown), so the
// shard collectors are quiescent. With a single shard it degenerates to
// that shard's own snapshot — no merge, no clone.
func (e *ecoShards) snapshot(epoch, appliedSeq uint64) *EcosystemSnapshot {
	e.lastSealPages = e.pages.Load()
	if len(e.shards) == 1 {
		return e.shards[0].snapshot(epoch, appliedSeq)
	}
	if e.merged == nil {
		e.merged = newEcosystemState()
	} else {
		e.merged.col.Reset()
		e.merged.pages = 0
	}
	for _, sh := range e.shards {
		e.merged.col.MergeCloned(sh.col)
		e.merged.pages += sh.pages
	}
	return e.merged.snapshot(epoch, appliedSeq)
}

// SurvivalCurve is one labelled Figure 5 curve.
type SurvivalCurve struct {
	Label  string                   `json:"label"`
	Points []analysis.SurvivalPoint `json:"points"`
}

// EcosystemSnapshot is one sealed epoch of the Figures 4–6 view.
type EcosystemSnapshot struct {
	// Epoch identifies the publish this snapshot came from.
	Epoch uint64 `json:"epoch"`
	// AppliedSeq is the highest ledger sequence folded in.
	AppliedSeq uint64 `json:"applied_seq"`
	// Pages is the number of pages folded in.
	Pages uint64 `json:"pages"`

	Payments    int64 `json:"payments"`
	Failed      int64 `json:"failed"`
	MultiHop    int64 `json:"multi_hop"`
	Offers      int64 `json:"offers"`
	ActiveUsers int   `json:"active_users"`

	// Currencies is Figure 4: currencies by descending payment count.
	Currencies []analysis.CurrencyCount `json:"currencies"`
	// Survival is Figure 5: the global curve plus the paper's featured
	// currencies, sampled on the default grid.
	Survival []SurvivalCurve `json:"survival"`
	// Hops and Parallel are Figures 6(a) and 6(b).
	Hops     map[int]int64 `json:"hops"`
	Parallel map[int]int64 `json:"parallel"`
	// OfferConcentration is the appendix market-maker measurement for
	// k ∈ {10, 50, 100}.
	OfferConcentration map[int]float64 `json:"offer_concentration"`
}
