// Package addr implements Ripple's identifier scheme: 160-bit account IDs
// rendered in Ripple's base58 dialect with a checksum (addresses starting
// with 'r'), validator node public keys (starting with 'n'), and the
// ed25519 keypairs that sign transactions and validations.
//
// The paper's de-anonymization study targets exactly these identifiers:
// "Ripple accounts are unambiguously identified by a 160 bits string,
// typically displayed in a human-readable form by using the Base58
// encoding."
package addr

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// rippleAlphabet is Ripple's base58 alphabet. Unlike Bitcoin's, it begins
// with 'r' so that version byte zero yields addresses starting with "r".
const rippleAlphabet = "rpshnaf39wBUDNEGHJKLM4PQRST7VWXYZ2bcdeCg65jkm8oFqi1tuvAxyz"

var decodeTable = func() [256]int8 {
	var t [256]int8
	for i := range t {
		t[i] = -1
	}
	for i := 0; i < len(rippleAlphabet); i++ {
		t[rippleAlphabet[i]] = int8(i)
	}
	return t
}()

// Version bytes for the token types used in this repository.
const (
	// VersionAccountID prefixes 20-byte account identifiers; the encoded
	// form starts with 'r'.
	VersionAccountID byte = 0x00
	// VersionNodePublic prefixes 33-byte validator node public keys; the
	// encoded form starts with 'n'.
	VersionNodePublic byte = 0x1c
)

// ErrChecksum is returned when a base58check token fails checksum
// verification.
var ErrChecksum = errors.New("addr: bad base58 checksum")

// checksum returns the first four bytes of double-SHA256, the base58check
// integrity tag.
func checksum(payload []byte) [4]byte {
	first := sha256.Sum256(payload)
	second := sha256.Sum256(first[:])
	var c [4]byte
	copy(c[:], second[:4])
	return c
}

// EncodeBase58Check encodes version ∥ payload ∥ checksum in Ripple's
// base58 alphabet.
func EncodeBase58Check(version byte, payload []byte) string {
	full := make([]byte, 0, len(payload)+5)
	full = append(full, version)
	full = append(full, payload...)
	sum := checksum(full)
	full = append(full, sum[:]...)
	return encodeBase58(full)
}

// DecodeBase58Check decodes a Ripple base58check token, verifying the
// checksum and the expected version byte, and returns the payload.
func DecodeBase58Check(s string, wantVersion byte) ([]byte, error) {
	full, err := decodeBase58(s)
	if err != nil {
		return nil, err
	}
	if len(full) < 5 {
		return nil, fmt.Errorf("addr: token %q too short", s)
	}
	payload, sum := full[:len(full)-4], full[len(full)-4:]
	want := checksum(payload)
	if [4]byte(sum) != want {
		return nil, ErrChecksum
	}
	if payload[0] != wantVersion {
		return nil, fmt.Errorf("addr: token %q: version 0x%02x, want 0x%02x", s, payload[0], wantVersion)
	}
	return payload[1:], nil
}

// encodeBase58 converts bytes to Ripple base58, preserving leading zero
// bytes as leading 'r' characters.
func encodeBase58(input []byte) string {
	zeros := 0
	for zeros < len(input) && input[zeros] == 0 {
		zeros++
	}
	// Upper bound on output size: log(256)/log(58) ≈ 1.37 digits per byte.
	size := (len(input)-zeros)*138/100 + 1
	buf := make([]byte, size)
	high := size - 1
	for _, b := range input[zeros:] {
		carry := int(b)
		i := size - 1
		for ; i > high || carry != 0; i-- {
			carry += 256 * int(buf[i])
			buf[i] = byte(carry % 58)
			carry /= 58
		}
		high = i
	}
	// Skip leading zero digits in buf.
	start := 0
	for start < size && buf[start] == 0 {
		start++
	}
	out := make([]byte, 0, zeros+size-start)
	for i := 0; i < zeros; i++ {
		out = append(out, rippleAlphabet[0])
	}
	for _, d := range buf[start:] {
		out = append(out, rippleAlphabet[d])
	}
	return string(out)
}

// decodeBase58 converts a Ripple base58 string back to bytes.
func decodeBase58(s string) ([]byte, error) {
	if s == "" {
		return nil, errors.New("addr: empty base58 string")
	}
	zeros := 0
	for zeros < len(s) && s[zeros] == rippleAlphabet[0] {
		zeros++
	}
	size := len(s)*733/1000 + 1 // log(58)/log(256) ≈ 0.733
	buf := make([]byte, size)
	high := size - 1
	for k := zeros; k < len(s); k++ {
		d := decodeTable[s[k]]
		if d < 0 {
			return nil, fmt.Errorf("addr: invalid base58 character %q", s[k])
		}
		carry := int(d)
		i := size - 1
		for ; i > high || carry != 0; i-- {
			if i < 0 {
				return nil, fmt.Errorf("addr: base58 string %q overflows", s)
			}
			carry += 58 * int(buf[i])
			buf[i] = byte(carry % 256)
			carry /= 256
		}
		high = i
	}
	start := 0
	for start < size && buf[start] == 0 {
		start++
	}
	out := make([]byte, 0, zeros+size-start)
	out = append(out, make([]byte, zeros)...)
	out = append(out, buf[start:]...)
	return out, nil
}
