package txq

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/payment"
	"ripplestudy/internal/replay"
	"ripplestudy/internal/synth"
)

// generate builds a small synthetic history in memory.
func generate(t testing.TB, payments int, seed int64) []*ledger.Page {
	t.Helper()
	var pages []*ledger.Page
	_, err := synth.Generate(synth.Config{
		Payments: payments, Seed: seed, SkipSignatures: true,
	}, func(p *ledger.Page) error {
		pages = append(pages, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pages
}

// drainAndClose waits for the front door to resolve everything admitted
// and shuts it down.
func drainAndClose(t testing.TB, fd *FrontDoor) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fd.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	fd.Close()
}

// TestFrontDoorDifferentialDigest is the acceptance differential: the
// same post-snapshot history, once through sequential replay.Run and
// once as live submissions through the admission queue and optimistic
// batch applier, must land on a bit-identical state digest. Equal fees
// make the escalation heap globally FIFO, and auto-sequencing mirrors
// replayTx's sequence rewrite, so apply order and applied bytes match.
func TestFrontDoorDifferentialDigest(t *testing.T) {
	pages := generate(t, 3000, 42)
	mid := pages[len(pages)/2].Header.Sequence

	want, err := replay.Run(replay.FromPages(pages), mid)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := replay.BuildState(replay.FromPages(pages), mid)
	if err != nil {
		t.Fatal(err)
	}
	removedList := eng.RemoveMarketMakers()
	removed := make(map[addr.AccountID]bool, len(removedList))
	for _, a := range removedList {
		removed[a] = true
	}

	fd := New(eng, Options{QueueDepth: 512, BatchSize: 64, Backpressure: true, SubmitWait: 30 * time.Second})
	submitted := 0
	for _, p := range pages {
		if p.Header.Sequence <= mid {
			continue
		}
		for i, tx := range p.Txs {
			meta := p.Metas[i]
			// The replay.classify filters: trust-line updates not touching
			// removed accounts, successful indirect payments whose
			// endpoints survive the market-maker ablation.
			switch tx.Type {
			case ledger.TxTrustSet:
				if removed[tx.Account] || removed[tx.LimitPeer] {
					continue
				}
			case ledger.TxPayment:
				if !meta.Result.Succeeded() || isDirectXRP(tx) {
					continue
				}
				if removed[tx.Account] || removed[tx.Destination] {
					continue
				}
			default:
				continue
			}
			sub := *tx
			sub.Sequence = 0 // auto-sequence, as replayTx rewrites
			if _, err := fd.Submit(&sub); err != nil {
				t.Fatalf("submit tx %d of page %d: %v", i, p.Header.Sequence, err)
			}
			submitted++
		}
	}
	drainAndClose(t, fd)

	if got := fd.StateDigest(); got != want.StateDigest {
		t.Fatalf("queued live submissions digest %s != sequential replay digest %s",
			got.Short(), want.StateDigest.Short())
	}
	st := fd.StatsNow()
	if st.Applied != uint64(submitted) {
		t.Errorf("applied = %d, want %d (every admitted tx resolved)", st.Applied, submitted)
	}
	if st.Shed != 0 || st.Rejected != 0 {
		t.Errorf("shed = %d rejected = %d, want 0/0 under backpressure", st.Shed, st.Rejected)
	}
	if submitted > 0 && st.Batches == 0 {
		t.Error("no batches recorded")
	}
	t.Logf("differential: %d txs, %d batches, planned ahead %d, conflicts %d",
		submitted, st.Batches, st.PlannedAhead, st.Conflicts)
}

// TestFrontDoorConcurrentPerAccountOrdering hammers the queue from many
// account goroutines with explicit sequences and escalating fees. Any
// same-account reorder would apply a later sequence first and fail with
// BadSequence, so "every tx succeeded" is the ordering invariant.
func TestFrontDoorConcurrentPerAccountOrdering(t *testing.T) {
	const accounts = 8
	const perAccount = 40

	eng := payment.NewEngine()
	sink := acct(10_000)
	eng.Fund(sink, 1_000_000)
	senders := make([]addr.AccountID, accounts)
	for i := range senders {
		senders[i] = acct(uint64(100 + i))
		eng.Fund(senders[i], 100_000_000)
	}
	fd := New(eng, Options{QueueDepth: 64, BatchSize: 16, Backpressure: true, SubmitWait: 30 * time.Second})

	var wg sync.WaitGroup
	tickets := make([][]*Ticket, accounts)
	for i := range senders {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			from := senders[i]
			for s := 0; s < perAccount; s++ {
				tx := &ledger.Tx{
					Type:        ledger.TxPayment,
					Account:     from,
					Sequence:    uint32(1 + s), // funded accounts start at sequence 1
					Fee:         amount.Drops(10 + (s%7)*10),
					Destination: sink,
					Amount:      amount.XRPAmount(100),
				}
				tk, err := fd.Submit(tx)
				if err != nil {
					t.Errorf("account %d seq %d: %v", i, s+1, err)
					return
				}
				tickets[i] = append(tickets[i], tk)
			}
		}(i)
	}
	wg.Wait()
	drainAndClose(t, fd)

	ctx := context.Background()
	for i, tks := range tickets {
		for s, tk := range tks {
			st, err := tk.Wait(ctx)
			if err != nil {
				t.Fatalf("account %d seq %d status: %v", i, s+1, err)
			}
			if !st.Succeeded {
				t.Fatalf("account %d seq %d result %q — per-account sequence order violated", i, s+1, st.Result)
			}
		}
	}
	fd.WithEngine(func(eng *payment.Engine) {
		for i, from := range senders {
			if next := eng.NextSequence(from); next != perAccount+1 {
				t.Errorf("account %d next sequence = %d, want %d", i, next, perAccount+1)
			}
		}
	})
}

// TestFrontDoorShedFailFast pins the fail-fast admission path: with no
// backpressure a full queue sheds immediately with ErrQueueFull.
func TestFrontDoorShedFailFast(t *testing.T) {
	eng := payment.NewEngine()
	from := acct(1)
	eng.Fund(from, 100_000_000)
	fd := New(eng, Options{QueueDepth: 2, BatchSize: 256})

	// Depth 2: submissions beyond the queue bound shed until the applier
	// frees slots; at least one of an immediate burst of 50 must shed.
	var shed, admitted int
	for i := 0; i < 50; i++ {
		tx := &ledger.Tx{
			Type: ledger.TxPayment, Account: from, Fee: 10,
			Destination: acct(2), Amount: amount.XRPAmount(100),
		}
		_, err := fd.Submit(tx)
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrQueueFull):
			shed++
		default:
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	drainAndClose(t, fd)
	st := fd.StatsNow()
	if st.Offered != 50 {
		t.Fatalf("offered = %d, want 50", st.Offered)
	}
	if st.Shed != uint64(shed) || st.Applied != uint64(admitted) {
		t.Errorf("stats shed=%d applied=%d, observed shed=%d admitted=%d", st.Shed, st.Applied, shed, admitted)
	}
	if st.Shed+st.Applied+st.Rejected != st.Offered {
		t.Errorf("shed(%d) + applied(%d) + rejected(%d) != offered(%d)", st.Shed, st.Applied, st.Rejected, st.Offered)
	}
}

// FuzzAdmission fuzzes the admission boundary: arbitrary bursts against
// arbitrary queue depths, with a sprinkle of malformed submissions, must
// always account for every offer — shed + applied + rejected == offered
// — and never deadlock.
func FuzzAdmission(f *testing.F) {
	f.Add(uint8(8), uint8(2), false, uint8(0))
	f.Add(uint8(50), uint8(1), true, uint8(3))
	f.Add(uint8(200), uint8(16), false, uint8(7))
	f.Fuzz(func(t *testing.T, n, depth uint8, backpressure bool, malformedEvery uint8) {
		eng := payment.NewEngine()
		from := acct(1)
		eng.Fund(from, 1_000_000_000)
		fd := New(eng, Options{
			QueueDepth:   int(depth%16) + 1,
			BatchSize:    8,
			Backpressure: backpressure,
			SubmitWait:   20 * time.Second,
		})

		var wg sync.WaitGroup
		const submitters = 4
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < int(n); i++ {
					var tx *ledger.Tx
					if malformedEvery > 0 && i%int(malformedEvery)+1 == 1 && w == 0 {
						tx = &ledger.Tx{Type: ledger.TxType(99)} // unknown type: rejected
					} else {
						tx = &ledger.Tx{
							Type: ledger.TxPayment, Account: from, Fee: 10,
							Destination: acct(2), Amount: amount.XRPAmount(10),
						}
					}
					_, err := fd.Submit(tx)
					if err != nil && !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrMalformed) {
						t.Errorf("submit: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		drainAndClose(t, fd)
		st := fd.StatsNow()
		if st.Shed+st.Applied+st.Rejected != st.Offered {
			t.Fatalf("shed(%d) + applied(%d) + rejected(%d) != offered(%d)",
				st.Shed, st.Applied, st.Rejected, st.Offered)
		}
		if backpressure && st.Offered == uint64(submitters)*uint64(n) && st.Depth != 0 {
			t.Fatalf("depth = %d after drain", st.Depth)
		}
	})
}

// TestFrontDoorMalformedRejected covers the pre-admission rejections.
func TestFrontDoorMalformedRejected(t *testing.T) {
	eng := payment.NewEngine()
	fd := New(eng, Options{QueueDepth: 4})
	defer fd.Close()
	if _, err := fd.Submit(nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("nil tx: err = %v, want ErrMalformed", err)
	}
	if _, err := fd.Submit(&ledger.Tx{Type: ledger.TxPayment}); !errors.Is(err, ErrMalformed) {
		t.Errorf("zero account: err = %v, want ErrMalformed", err)
	}
	from := acct(1)
	tx := &ledger.Tx{Type: ledger.TxPayment, Account: from, Sequence: 3, Fee: 10,
		Destination: acct(2), Amount: amount.XRPAmount(1)}
	if _, err := fd.Submit(tx); err != nil {
		t.Fatalf("explicit sequence submit: %v", err)
	}
	dup := *tx
	if _, err := fd.Submit(&dup); !errors.Is(err, ErrDuplicateSequence) {
		t.Errorf("duplicate explicit sequence: err = %v, want ErrDuplicateSequence", err)
	}
	st := fd.StatsNow()
	if st.Rejected != 3 {
		t.Errorf("rejected = %d, want 3", st.Rejected)
	}
}

// TestFrontDoorSubmitAfterClose pins ErrClosed.
func TestFrontDoorSubmitAfterClose(t *testing.T) {
	eng := payment.NewEngine()
	from := acct(1)
	eng.Fund(from, 1_000_000)
	fd := New(eng, Options{QueueDepth: 4})
	fd.Close()
	tx := &ledger.Tx{Type: ledger.TxPayment, Account: from, Fee: 10,
		Destination: acct(2), Amount: amount.XRPAmount(1)}
	if _, err := fd.Submit(tx); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
}

// TestFrontDoorStatusLookup exercises the as-submitted vs as-applied
// hash lookup for auto-sequenced submissions.
func TestFrontDoorStatusLookup(t *testing.T) {
	eng := payment.NewEngine()
	from := acct(1)
	eng.Fund(from, 100_000_000)
	fd := New(eng, Options{QueueDepth: 4, Backpressure: true})
	tx := &ledger.Tx{Type: ledger.TxPayment, Account: from, Fee: 10,
		Destination: acct(2), Amount: amount.XRPAmount(500)}
	tk, err := fd.Submit(tx)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Succeeded || st.State != "applied" {
		t.Fatalf("status = %+v, want applied+succeeded", st)
	}
	if st.Sequence != 1 {
		t.Errorf("auto-assigned sequence = %d, want 1", st.Sequence)
	}
	// Both the as-submitted hash (the ticket's) and the as-applied hash
	// (the status') must resolve.
	if _, ok := fd.Status(tk.Hash); !ok {
		t.Error("as-submitted hash lookup failed")
	}
	if _, ok := fd.Status(st.Hash); !ok {
		t.Error("as-applied hash lookup failed")
	}
	if st.WaitNS <= 0 {
		t.Error("submit-to-applied latency not recorded")
	}
	drainAndClose(t, fd)
}
