package txq

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/pathfind"
	"ripplestudy/internal/payment"
	"ripplestudy/internal/synth"
)

// quoteTuple is one viable quote request discovered at bench setup.
type quoteTuple struct {
	src, dst addr.AccountID
	cur      amount.Currency
}

// benchState generates a synthetic economy and discovers user pairs
// with live liquidity between them (shared gateway, funded line).
func benchState(b *testing.B, payments int) (*payment.Engine, []quoteTuple) {
	b.Helper()
	res, err := synth.Generate(synth.Config{
		Payments: payments, Seed: 7, SkipSignatures: true,
	}, func(*ledger.Page) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
	eng := res.Engine
	f := pathfind.New(eng.Graph(), eng.Books())
	var tuples []quoteTuple
	users := res.Population.Users
	for i := 0; i < len(users) && len(tuples) < 128; i++ {
		for j := i + 1; j < len(users) && len(tuples) < 128; j++ {
			for _, lu := range users[i].Lines {
				match := false
				for _, lv := range users[j].Lines {
					if lu.HostID == lv.HostID && lu.Currency == lv.Currency {
						match = true
						break
					}
				}
				if !match {
					continue
				}
				deliver := amount.New(lu.Currency, amount.MustParse("1"))
				if plan, err := f.FindPayment(users[i].ID, users[j].ID, lu.Currency, deliver); err == nil && plan != nil {
					tuples = append(tuples, quoteTuple{src: users[i].ID, dst: users[j].ID, cur: lu.Currency})
					break
				}
			}
		}
	}
	if len(tuples) == 0 {
		b.Fatal("no viable quote tuples in the generated economy")
	}
	return eng, tuples
}

// BenchmarkTxqFrontDoor measures the online front door: quote latency
// (cold search vs plan-cache hit) and sustained submission throughput
// through the admission queue and optimistic batch applier. The
// reported p50-ns/p99-ns metrics are the windowed latency quantiles the
// serving SLOs track; submissions/s is end-to-end (submit → applied).
func BenchmarkTxqFrontDoor(b *testing.B) {
	b.Run("quote_cold", func(b *testing.B) {
		eng, tuples := benchState(b, 2000)
		// CacheSize 1 forces (almost) every quote through a live search:
		// the steady-state cost of a cache miss.
		fd := New(eng, Options{CacheSize: 1})
		defer fd.Close()
		vals := []amount.Value{
			amount.MustParse("1"), amount.MustParse("2"), amount.MustParse("0.5"),
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tu := tuples[i%len(tuples)]
			deliver := amount.New(tu.cur, vals[i%len(vals)])
			if _, err := fd.PathFind(tu.src, tu.dst, tu.cur, deliver); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		p50, p99, _ := fd.QuoteLatency()
		b.ReportMetric(float64(p50.Nanoseconds()), "p50-ns")
		b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
	})

	b.Run("quote_cached", func(b *testing.B) {
		eng, tuples := benchState(b, 2000)
		fd := New(eng, Options{})
		defer fd.Close()
		tu := tuples[0]
		deliver := amount.New(tu.cur, amount.MustParse("1"))
		if _, err := fd.PathFind(tu.src, tu.dst, tu.cur, deliver); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fd.PathFind(tu.src, tu.dst, tu.cur, deliver); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		p50, p99, _ := fd.QuoteLatency()
		b.ReportMetric(float64(p50.Nanoseconds()), "p50-ns")
		b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
		st := fd.StatsNow()
		if st.CacheHits == 0 {
			b.Fatal("cached quote bench never hit the cache")
		}
	})

	// Sustained direct-XRP submission at several queue depths: the
	// submit-to-applied latency under saturation is dominated by queue
	// wait, so the depth sweep is the latency-vs-depth curve.
	for _, depth := range []int{64, 512, 2048} {
		b.Run(fmt.Sprintf("submit_xrp_depth_%d", depth), func(b *testing.B) {
			eng := payment.NewEngine()
			const senders = 64
			accts := make([]addr.AccountID, senders)
			for i := range accts {
				accts[i] = addr.KeyPairFromSeed(uint64(1000 + i)).AccountID()
				eng.Fund(accts[i], 1<<40)
			}
			sink := addr.KeyPairFromSeed(99).AccountID()
			eng.Fund(sink, 1_000_000)
			fd := New(eng, Options{QueueDepth: depth, Backpressure: true, SubmitWait: time.Minute})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := &ledger.Tx{
					Type: ledger.TxPayment, Account: accts[i%senders], Fee: 10,
					Destination: sink, Amount: amount.XRPAmount(100),
				}
				if _, err := fd.Submit(tx); err != nil {
					b.Fatal(err)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			if err := fd.Drain(ctx); err != nil {
				b.Fatal(err)
			}
			cancel()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "submissions/s")
			p50, p99, _ := fd.SubmitLatency()
			b.ReportMetric(float64(p50.Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
			fd.Close()
		})
	}

	b.Run("submit_iou", func(b *testing.B) {
		eng, tuples := benchState(b, 2000)
		fd := New(eng, Options{QueueDepth: 2048, Backpressure: true, SubmitWait: time.Minute})
		small := amount.MustParse("0.0001")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tu := tuples[i%len(tuples)]
			tx := &ledger.Tx{
				Type: ledger.TxPayment, Account: tu.src, Fee: 10,
				Destination: tu.dst, Amount: amount.New(tu.cur, small),
			}
			if _, err := fd.Submit(tx); err != nil {
				b.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		if err := fd.Drain(ctx); err != nil {
			b.Fatal(err)
		}
		cancel()
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "submissions/s")
		p50, p99, _ := fd.SubmitLatency()
		b.ReportMetric(float64(p50.Nanoseconds()), "p50-ns")
		b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
		st := fd.StatsNow()
		b.Logf("iou: applied=%d planned ahead=%d conflicts=%d batches=%d",
			st.Applied, st.PlannedAhead, st.Conflicts, st.Batches)
		fd.Close()
	})
}
