package monitor

import (
	"fmt"
	"io"

	"ripplestudy/internal/netstream"
)

// CollectionHealth reports how much the transport degraded during a
// collection period — the §IV measurement is only as trustworthy as
// the stream it was collected from, so every run surfaces this
// alongside the Figure 2 table.
type CollectionHealth struct {
	// Connects/Reconnects count stream connections; any value of
	// Reconnects above zero means the collection survived disconnects.
	Connects   int
	Reconnects int
	// Gaps counts detected sequence discontinuities; each triggered a
	// repair replay from the server.
	Gaps int
	// Missed counts events confirmed lost (the replay ring had already
	// evicted them). Nonzero Missed means the report may undercount.
	Missed uint64
	// Duplicates counts replayed events skipped by sequence dedup.
	Duplicates uint64
	// BadFrames counts corrupted or truncated wire frames skipped.
	BadFrames uint64
	// Malformed counts decoded events the Collector rejected.
	Malformed int
	// Events counts well-formed events recorded.
	Events int
	// Attack carries the fork/equivocation detector's findings; the
	// collection is only trustworthy when it is also attack-free.
	Attack AttackSummary
}

// Health combines a resilient client's transport counters with a
// collector's acceptance counters and its detector's attack findings.
func Health(cs netstream.ClientStats, col *Collector) CollectionHealth {
	return CollectionHealth{
		Connects:   cs.Connects,
		Reconnects: cs.Reconnects,
		Gaps:       cs.Gaps,
		Missed:     cs.Missed,
		Duplicates: cs.Duplicates,
		BadFrames:  cs.BadFrames,
		Malformed:  col.Malformed(),
		Events:     col.Events(),
		Attack:     col.Detector().Summary(),
	}
}

// Complete reports whether the collection, despite any faults it
// survived, lost no events: every published event was either delivered
// first-hand or recovered through a repair replay. A collection that
// observed no events at all proves nothing and is never complete — a
// dead subscription must not masquerade as a clean two-week window.
func (h CollectionHealth) Complete() bool {
	return h.Events > 0 && h.Missed == 0 && h.Malformed == 0
}

// Attacked reports whether the detector flagged any attack indicator.
func (h CollectionHealth) Attacked() bool { return h.Attack.Attacked() }

func (h CollectionHealth) String() string {
	verdict := "complete"
	switch {
	case h.Events == 0:
		verdict = "empty"
	case !h.Complete():
		verdict = "lossy"
	}
	if h.Attacked() {
		verdict += ", ATTACK DETECTED"
	}
	return fmt.Sprintf(
		"events=%d reconnects=%d gaps=%d missed=%d duplicates=%d bad_frames=%d malformed=%d deduped=%d alerts=%d (%s)",
		h.Events, h.Reconnects, h.Gaps, h.Missed, h.Duplicates, h.BadFrames, h.Malformed,
		h.Attack.DedupedEvents, h.Attack.Alerts, verdict)
}

// WriteReport renders the health block that accompanies a Figure 2
// table.
func (h CollectionHealth) WriteReport(w io.Writer) error {
	rows := []struct {
		name  string
		value any
	}{
		{"events recorded", h.Events},
		{"connections", h.Connects},
		{"reconnects", h.Reconnects},
		{"sequence gaps repaired", h.Gaps},
		{"events lost for good", h.Missed},
		{"duplicates deduplicated", h.Duplicates},
		{"bad frames skipped", h.BadFrames},
		{"malformed events skipped", h.Malformed},
		{"duplicates deduped (collector)", h.Attack.DedupedEvents},
	}
	if _, err := fmt.Fprintln(w, "Collection health"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "  %-30s %v\n", r.name, r.value); err != nil {
			return err
		}
	}
	verdict := "collection complete: report covers every published event"
	switch {
	case h.Events == 0:
		verdict = "collection empty: no events observed — nothing to report"
	case !h.Complete():
		verdict = "collection lossy: the report may undercount"
	}
	if _, err := fmt.Fprintf(w, "  %s\n", verdict); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "Adversarial indicators"); err != nil {
		return err
	}
	atk := []struct {
		name  string
		value int
	}{
		{"equivocations", h.Attack.Equivocations},
		{"equivocating validators", h.Attack.EquivocatingValidators},
		{"forked sequences", h.Attack.ForkedSequences},
		{"suspected censored txs", h.Attack.SuspectedCensoredTxs},
		{"starved txs (liveness)", h.Attack.StarvedTxs},
		{"liveness stall alarms", h.Attack.StallAlarms},
		{"late validations", h.Attack.LateValidations},
	}
	for _, r := range atk {
		if _, err := fmt.Fprintf(w, "  %-30s %d\n", r.name, r.value); err != nil {
			return err
		}
	}
	atkVerdict := "no attack indicators"
	if h.Attacked() {
		atkVerdict = "ATTACK DETECTED: the observed population is not benign"
	}
	_, err := fmt.Fprintf(w, "  %s\n", atkVerdict)
	return err
}
