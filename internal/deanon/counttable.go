package deanon

// countTable is the shard-local fingerprint counter: an open-addressed,
// linear-probed table with 8-byte keys and 1-byte saturating counts.
// Two properties of the workload make it much cheaper than a Go map:
//
//   - Fingerprints are already FNV-1a outputs, uniformly mixed, so the
//     low bits index the table directly — no per-access re-hashing.
//   - The study only distinguishes count 0 / 1 / ≥2, so a uint8
//     saturating at 2 replaces a uint32, and the whole table is 9 bytes
//     per slot (vs ~17 bytes per entry in a map[Fingerprint]uint32
//     bucket array, before overflow buckets).
//
// Shard routing uses the fingerprint's HIGH bits (ParallelStudy), the
// probe sequence its LOW bits, so the two never interfere.
//
// The all-zero fingerprint doubles as the empty-slot marker; its count
// lives out-of-band in zeroCount.
type countTable struct {
	keys   []Fingerprint
	counts []uint8
	mask   uint64
	// used is the number of occupied slots (excluding the zero key).
	used      int
	zeroCount uint8
	// uniques is the number of fingerprints currently at count exactly 1,
	// maintained incrementally by incrCount so reading it is O(1) instead
	// of an O(capacity) table scan per Results call.
	uniques int
}

const (
	// countTableMinCap is the initial capacity (power of two).
	countTableMinCap = 256
	// countTable grows when used exceeds cap×13/16 (≈81% load).
	countTableLoadNum = 13
	countTableLoadDen = 16
)

func newCountTable() *countTable {
	return &countTable{
		keys:   make([]Fingerprint, countTableMinCap),
		counts: make([]uint8, countTableMinCap),
		mask:   countTableMinCap - 1,
	}
}

// countTablePool recycles tables across studies. A Figure 3 run over
// the full history grows each shard table to megabytes; a serving layer
// that rebuilds studies on a refresh cadence would otherwise churn that
// allocation (and the GC) on every cycle.
var countTablePool = struct {
	mu   chan struct{} // 1-slot semaphore; avoids sync.Pool's per-P drift
	free []*countTable
}{mu: make(chan struct{}, 1)}

// maxPooledSlots bounds the capacity of tables kept in the pool so one
// pathological study can't pin an arbitrarily large table forever.
const maxPooledSlots = 1 << 21

// getCountTable returns a zeroed table, reusing pooled capacity.
func getCountTable() *countTable {
	countTablePool.mu <- struct{}{}
	n := len(countTablePool.free)
	var t *countTable
	if n > 0 {
		t = countTablePool.free[n-1]
		countTablePool.free[n-1] = nil
		countTablePool.free = countTablePool.free[:n-1]
	}
	<-countTablePool.mu
	if t == nil {
		return newCountTable()
	}
	return t
}

// release resets the table and returns it to the pool. The caller must
// not use it afterwards.
func (t *countTable) release() {
	if len(t.keys) > maxPooledSlots {
		return
	}
	t.reset()
	countTablePool.mu <- struct{}{}
	countTablePool.free = append(countTablePool.free, t)
	<-countTablePool.mu
}

// reset zeroes the table in place, keeping its capacity. The two
// range-clears compile to memclr.
func (t *countTable) reset() {
	for i := range t.keys {
		t.keys[i] = 0
	}
	for i := range t.counts {
		t.counts[i] = 0
	}
	t.used = 0
	t.zeroCount = 0
	t.uniques = 0
}

// incr bumps fp's saturating counter.
func (t *countTable) incr(fp Fingerprint) { t.incrCount(fp) }

// incrCount bumps fp's saturating counter and returns the count the
// fingerprint had BEFORE the increment (0 = first sight, 1 = was unique,
// countSaturated = already saturated). The pre-count lets an incremental
// consumer maintain a running unique-count in O(1): 0 means "became
// unique", 1 means "stopped being unique".
func (t *countTable) incrCount(fp Fingerprint) uint8 {
	if fp == 0 {
		prev := t.zeroCount
		if t.zeroCount < countSaturated {
			t.zeroCount++
		}
		switch prev {
		case 0:
			t.uniques++
		case 1:
			t.uniques--
		}
		return prev
	}
	i := uint64(fp) & t.mask
	for {
		switch t.keys[i] {
		case fp:
			prev := t.counts[i]
			if t.counts[i] < countSaturated {
				t.counts[i]++
			}
			if prev == 1 {
				t.uniques--
			}
			return prev
		case 0:
			t.keys[i] = fp
			t.counts[i] = 1
			t.used++
			t.uniques++
			if t.used*countTableLoadDen > len(t.keys)*countTableLoadNum {
				t.grow()
			}
			return 0
		}
		i = (i + 1) & t.mask
	}
}

// get returns fp's saturating count (0 = never seen, 1 = unique,
// countSaturated = seen at least twice). O(1) expected.
func (t *countTable) get(fp Fingerprint) uint8 {
	if fp == 0 {
		return t.zeroCount
	}
	i := uint64(fp) & t.mask
	for {
		switch t.keys[i] {
		case fp:
			return t.counts[i]
		case 0:
			return 0
		}
		i = (i + 1) & t.mask
	}
}

// clone deep-copies the table — the copy-on-publish step behind the
// serving layer's epoch snapshots. The copy is two slice memmoves, so a
// snapshot costs O(capacity) with no rehashing.
func (t *countTable) clone() *countTable {
	// make-then-copy (not make inside the literal) compiles to
	// makeslicecopy, which skips zeroing memory the copy overwrites —
	// clone is the dominant cost of every snapshot publish.
	keys := make([]Fingerprint, len(t.keys))
	copy(keys, t.keys)
	counts := make([]uint8, len(t.counts))
	copy(counts, t.counts)
	return &countTable{
		keys:      keys,
		counts:    counts,
		mask:      t.mask,
		used:      t.used,
		zeroCount: t.zeroCount,
		uniques:   t.uniques,
	}
}

// grow doubles the table and reinserts every occupied slot.
func (t *countTable) grow() {
	oldKeys, oldCounts := t.keys, t.counts
	t.keys = make([]Fingerprint, 2*len(oldKeys))
	t.counts = make([]uint8, 2*len(oldCounts))
	t.mask = uint64(len(t.keys) - 1)
	for j, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := uint64(k) & t.mask
		for t.keys[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.keys[i] = k
		t.counts[i] = oldCounts[j]
	}
}

// unique returns the number of fingerprints seen exactly once —
// maintained incrementally by incrCount, so reading it is O(1).
func (t *countTable) unique() int { return t.uniques }

// uniqueScan recomputes unique() from the slots; the O(capacity)
// reference implementation the incremental counter is tested against.
func (t *countTable) uniqueScan() int {
	n := 0
	for i, k := range t.keys {
		if k != 0 && t.counts[i] == 1 {
			n++
		}
	}
	if t.zeroCount == 1 {
		n++
	}
	return n
}

// distinct returns the number of distinct fingerprints in the table.
func (t *countTable) distinct() int {
	n := t.used
	if t.zeroCount > 0 {
		n++
	}
	return n
}

// bytes reports the table's resident footprint (keys + counts arrays).
func (t *countTable) bytes() int {
	return len(t.keys)*8 + len(t.counts)
}
