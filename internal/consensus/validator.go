// Package consensus implements a Ripple Protocol Consensus Algorithm
// (RPCA) style network: validators exchange transaction-set proposals
// over rounds with rising agreement thresholds, close a ledger page when
// the set converges, and broadcast signed validations. A page is fully
// validated when at least 80% of the trusted validator list signs it —
// "only those pages that are signed by at least 80% of the validators end
// up in the distributed ledger."
//
// The paper's §IV measurements are reproduced by populating the network
// with the validator classes the authors observed: always-on Ripple Labs
// validators (R1–R5), active unidentified validators, laggards whose
// signed pages rarely match the main ledger, validators on a private
// fork, and the test-net cluster running a parallel chain.
package consensus

import (
	"fmt"

	"ripplestudy/internal/addr"
)

// Behavior classifies how a validator participates, mirroring the
// validator populations the paper infers from its Figure 2 data.
type Behavior int

const (
	// BehaviorActive validators are well-provisioned and in sync: they
	// propose, converge, and sign the canonical page nearly every round
	// (R1–R5 and the handful of active unidentified validators).
	BehaviorActive Behavior = iota + 1
	// BehaviorLaggard validators struggle "to stay in sync with the rest
	// of the system, due to limited hardware or network performance":
	// they sign pages, but the pages only rarely match the main ledger.
	BehaviorLaggard
	// BehaviorForked validators contribute "to a different, private
	// Ripple ledger": every page they sign is alien to the main chain.
	BehaviorForked
	// BehaviorTestnet validators run the consensus protocol for the
	// parallel test-net chain (testnet.ripple.com); their pages are valid
	// there but never on the main ledger.
	BehaviorTestnet
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case BehaviorActive:
		return "active"
	case BehaviorLaggard:
		return "laggard"
	case BehaviorForked:
		return "forked"
	case BehaviorTestnet:
		return "testnet"
	default:
		return fmt.Sprintf("Behavior(%d)", int(b))
	}
}

// ValidatorSpec describes one validator joining the network.
type ValidatorSpec struct {
	// Label is the public identity: an internet domain for validators
	// that announce one, or empty to display the truncated node key, as
	// in the paper's Figure 2 x-axis.
	Label string
	// Behavior selects the participation model.
	Behavior Behavior
	// Seed derives the validator's deterministic keypair.
	Seed uint64
	// Availability is the per-round probability of being online
	// (defaults to 0.98 for active, 0.9 otherwise when zero).
	Availability float64
	// SyncProbability is, for laggards, the chance a signed page matches
	// the main chain (defaults to 0.05 when zero).
	SyncProbability float64
	// JoinRound and LeaveRound bound the rounds (1-based, inclusive)
	// during which the validator exists; zero means unbounded. The
	// churn between the paper's three collection periods is expressed
	// through these bounds.
	JoinRound, LeaveRound int
	// Trusted marks membership in the UNL used for the 80% validation
	// quorum. Typically the active validators.
	Trusted bool
}

// validator is the runtime state of one validator.
type validator struct {
	spec ValidatorSpec
	key  *addr.KeyPair
	id   addr.NodeID
	// disabled marks a hijacked or downed validator: it stops signing
	// but remains on the trusted list, so it still counts against the
	// validation quorum — the paper's DoS scenario.
	disabled bool
}

func newValidator(spec ValidatorSpec) *validator {
	if spec.Availability == 0 {
		if spec.Behavior == BehaviorActive {
			spec.Availability = 0.98
		} else {
			spec.Availability = 0.9
		}
	}
	if spec.SyncProbability == 0 {
		spec.SyncProbability = 0.05
	}
	key := addr.KeyPairFromSeed(spec.Seed)
	return &validator{spec: spec, key: key, id: key.NodeID()}
}

// present reports whether the validator exists at the given round.
func (v *validator) present(round int) bool {
	if v.spec.JoinRound > 0 && round < v.spec.JoinRound {
		return false
	}
	if v.spec.LeaveRound > 0 && round > v.spec.LeaveRound {
		return false
	}
	return true
}

// DisplayName renders the Figure 2 x-axis label: the domain when
// announced, otherwise the truncated node key.
func (v *validator) DisplayName() string {
	if v.spec.Label != "" {
		return v.spec.Label
	}
	return v.id.Short()
}
