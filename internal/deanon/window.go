package deanon

import (
	"sort"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/ledger"
)

// The paper's bar scenario gives Alice "the time at which the
// transaction occurred" — but a bystander's clock is approximate.
// WindowIndex extends the attack to interval knowledge: the observer
// knows amount/currency/destination (possibly coarsened) and that the
// payment happened within ±Δ of some moment. This also quantifies the
// resolution ladder continuously: Figure 3's Tsc/Tmn/Thr/Tdy rows are
// the special cases Δ ∈ {0, 30s, 30min, 12h} (up to alignment).

// WindowIndex indexes payments by their non-time fingerprint, keeping
// per-match timestamps for interval queries.
type WindowIndex struct {
	res Resolution // Time is forced to TimeOff internally
	m   map[Fingerprint][]windowEntry
}

type windowEntry struct {
	t      ledger.CloseTime
	sender addr.AccountID
}

// NewWindowIndex creates an index at the given amount/currency/
// destination resolution; the time component of res is ignored.
func NewWindowIndex(res Resolution) *WindowIndex {
	res.Time = TimeOff
	return &WindowIndex{res: res, m: make(map[Fingerprint][]windowEntry)}
}

// Add indexes one payment.
func (w *WindowIndex) Add(f Features) {
	fp := FingerprintOf(f, w.res)
	w.m[fp] = append(w.m[fp], windowEntry{t: f.Time, sender: f.Sender})
}

// Candidates returns the distinct senders of payments matching the
// observation's non-time features whose timestamp lies within ±delta
// seconds of the observation's time.
func (w *WindowIndex) Candidates(f Features, delta uint32) []addr.AccountID {
	entries := w.m[FingerprintOf(f, w.res)]
	lo := ledger.CloseTime(0)
	if uint32(f.Time) > delta {
		lo = f.Time - ledger.CloseTime(delta)
	}
	hi := f.Time + ledger.CloseTime(delta)
	seen := make(map[addr.AccountID]bool)
	var out []addr.AccountID
	for _, e := range entries {
		if e.t < lo || e.t > hi {
			continue
		}
		if !seen[e.sender] {
			seen[e.sender] = true
			out = append(out, e.sender)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// WindowPoint is one point of the uniqueness-vs-uncertainty curve.
type WindowPoint struct {
	// DeltaSeconds is the clock uncertainty (the window is ±Δ).
	DeltaSeconds uint32
	// UniqueRate is the fraction of payments whose window query returns
	// exactly one candidate sender.
	UniqueRate float64
}

// UncertaintySweep measures, for each clock uncertainty Δ, how many of
// the indexed payments an observer with that uncertainty de-anonymizes
// uniquely. The payments slice must be the same set fed to Add.
func (w *WindowIndex) UncertaintySweep(payments []Features, deltas []uint32) []WindowPoint {
	out := make([]WindowPoint, 0, len(deltas))
	for _, d := range deltas {
		unique := 0
		for _, f := range payments {
			if len(w.Candidates(f, d)) == 1 {
				unique++
			}
		}
		rate := 0.0
		if len(payments) > 0 {
			rate = float64(unique) / float64(len(payments))
		}
		out = append(out, WindowPoint{DeltaSeconds: d, UniqueRate: rate})
	}
	return out
}
