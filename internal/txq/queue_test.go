package txq

import (
	"errors"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
)

func acct(seed uint64) addr.AccountID { return addr.KeyPairFromSeed(seed).AccountID() }

// mkTx builds a direct XRP payment for queue-ordering tests. Sequence 0
// marks auto-sequencing.
func mkTx(from addr.AccountID, seq uint32, fee amount.Drops) *queuedTx {
	tx := &ledger.Tx{
		Type:        ledger.TxPayment,
		Account:     from,
		Sequence:    seq,
		Fee:         fee,
		Destination: acct(999),
		Amount:      amount.XRPAmount(1000),
	}
	return &queuedTx{tx: tx, fee: fee, autoSeq: seq == 0}
}

func popAll(t *testing.T, q *queue, n int) []*queuedTx {
	t.Helper()
	out := q.popBatch(n)
	if len(out) != n {
		t.Fatalf("popBatch returned %d txs, want %d", len(out), n)
	}
	return out
}

func TestQueueExplicitSequencesSortAscending(t *testing.T) {
	q := newQueue()
	a := acct(1)
	// Out-of-order arrival: 3, 1, 2 must drain as 1, 2, 3.
	for _, seq := range []uint32{3, 1, 2} {
		if err := q.push(mkTx(a, seq, 10)); err != nil {
			t.Fatal(err)
		}
	}
	got := popAll(t, q, 3)
	for i, want := range []uint32{1, 2, 3} {
		if got[i].tx.Sequence != want {
			t.Errorf("pop[%d].Sequence = %d, want %d", i, got[i].tx.Sequence, want)
		}
	}
}

func TestQueueExplicitBeforeAutoSequenced(t *testing.T) {
	q := newQueue()
	a := acct(1)
	if err := q.push(mkTx(a, 0, 10)); err != nil { // auto
		t.Fatal(err)
	}
	if err := q.push(mkTx(a, 5, 10)); err != nil { // explicit, arrives later
		t.Fatal(err)
	}
	got := popAll(t, q, 2)
	if got[0].autoSeq || got[0].tx.Sequence != 5 {
		t.Errorf("explicit sequence must drain before auto-sequenced arrivals")
	}
	if !got[1].autoSeq {
		t.Errorf("auto-sequenced tx must drain last")
	}
}

func TestQueueFeeEscalationAcrossAccounts(t *testing.T) {
	q := newQueue()
	a, b, c := acct(1), acct(2), acct(3)
	// a arrives first at fee 10, b later at fee 100, c last at fee 10.
	if err := q.push(mkTx(a, 1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkTx(b, 1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkTx(c, 1, 10)); err != nil {
		t.Fatal(err)
	}
	got := popAll(t, q, 3)
	wantOrder := []addr.AccountID{b, a, c} // fee desc, then arrival FIFO
	for i, want := range wantOrder {
		if got[i].tx.Account != want {
			t.Errorf("pop[%d] from wrong account (fee escalation / FIFO tie-break broken)", i)
		}
	}
}

func TestQueueFeeNeverReordersSameAccount(t *testing.T) {
	q := newQueue()
	a := acct(1)
	// Later same-account txs pay 100× the fee; sequence order must hold
	// anyway — only the account's HEAD competes on fee.
	if err := q.push(mkTx(a, 1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkTx(a, 2, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkTx(a, 3, 5000)); err != nil {
		t.Fatal(err)
	}
	got := popAll(t, q, 3)
	for i, want := range []uint32{1, 2, 3} {
		if got[i].tx.Sequence != want {
			t.Errorf("pop[%d].Sequence = %d, want %d (fee escalation reordered one account)", i, got[i].tx.Sequence, want)
		}
	}
}

func TestQueueLateLowSequenceBecomesHead(t *testing.T) {
	q := newQueue()
	a, b := acct(1), acct(2)
	if err := q.push(mkTx(a, 2, 10)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkTx(b, 1, 10)); err != nil {
		t.Fatal(err)
	}
	// Sequence 1 arrives late with a high fee: it must both become a's
	// head AND re-key a in the escalation heap ahead of b.
	if err := q.push(mkTx(a, 1, 500)); err != nil {
		t.Fatal(err)
	}
	got := popAll(t, q, 3)
	if got[0].tx.Account != a || got[0].tx.Sequence != 1 {
		t.Fatalf("first pop is not a's late-arriving sequence 1")
	}
	if got[1].tx.Account != a || got[1].tx.Sequence != 2 {
		t.Fatalf("second pop is not a's sequence 2")
	}
	if got[2].tx.Account != b {
		t.Fatalf("third pop is not b's tx")
	}
}

func TestQueueDuplicateSequenceRejected(t *testing.T) {
	q := newQueue()
	a := acct(1)
	if err := q.push(mkTx(a, 7, 10)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkTx(a, 7, 10)); !errors.Is(err, ErrDuplicateSequence) {
		t.Fatalf("duplicate explicit sequence: err = %v, want ErrDuplicateSequence", err)
	}
	if q.size() != 1 {
		t.Errorf("size = %d after rejected duplicate, want 1", q.size())
	}
}

func TestQueueCloseDrainsThenEnds(t *testing.T) {
	q := newQueue()
	a := acct(1)
	if err := q.push(mkTx(a, 1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkTx(a, 2, 10)); err != nil {
		t.Fatal(err)
	}
	q.close()
	if err := q.push(mkTx(a, 3, 10)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: err = %v, want ErrClosed", err)
	}
	if got := q.popBatch(10); len(got) != 2 {
		t.Fatalf("popBatch after close returned %d txs, want the 2 admitted before close", len(got))
	}
	if got := q.popBatch(10); got != nil {
		t.Fatalf("popBatch on closed+drained queue = %v, want nil", got)
	}
}
