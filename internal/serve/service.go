package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/ledgerstore"
	"ripplestudy/internal/netstream"
	"ripplestudy/internal/replay"
	"ripplestudy/internal/txq"
)

// defaultWorkers is the parallel-backfill default worker count.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// defaultIngestBatch is the default flush size for the batched ingest
// paths (backfill, IngestPages) and the capacity hint for pooled
// update batches.
const defaultIngestBatch = 64

// Options tunes a Service. The zero value picks defaults suitable for
// tests and laptop-scale serving.
type Options struct {
	// QueueSize bounds each view's inbox, in batches (default 1024).
	QueueSize int
	// PublishBatch is the most updates a view applies between epoch
	// publishes; a view also publishes whenever its inbox runs dry, and
	// never in the middle of an ingest batch (default 256).
	PublishBatch int
	// IngestBatchPages is how many projected pages the batched ingest
	// paths (Backfill, BackfillStore, IngestPages) accumulate before
	// flushing one batch to the view inboxes (default 64).
	IngestBatchPages int
	// FingerprintShards is the number of single-writer count shards
	// behind the fingerprint view, rounded up to a power of two;
	// 1 pins the sequential single-writer baseline. Default: the
	// smallest power of two covering GOMAXPROCS.
	FingerprintShards int
	// PipelineWorkers is the apply fan-out of every view pipeline: each
	// view keeps that many state shards, each owned by one goroutine fed
	// over its own bounded ring, merged into one snapshot at seal.
	// 1 pins the classic single-writer view (apply and publish on one
	// goroutine, no barriers). Default: GOMAXPROCS, capped at 64.
	PipelineWorkers int
	// NonBlocking switches ingest fan-out from backpressure (lossless;
	// the differential-test configuration) to drop-on-full
	// (load-shedding, counted per view and in DroppedEvents).
	NonBlocking bool
	// MaxConcurrent bounds in-flight HTTP requests (default 64).
	MaxConcurrent int
	// AdmitWait is how long a request waits for an admission slot
	// before being shed with 503 (default 2s).
	AdmitWait time.Duration
	// LatencyWindow is the per-endpoint latency sample window behind
	// the /metrics quantiles (default 512).
	LatencyWindow int
	// ValidatorLabels maps node IDs to display labels (domains) for the
	// Figure 2 view, like monitor.Collector.SetLabel.
	ValidatorLabels map[addr.NodeID]string
}

func (o Options) withDefaults() Options {
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.PublishBatch <= 0 {
		o.PublishBatch = 256
	}
	if o.IngestBatchPages <= 0 {
		o.IngestBatchPages = defaultIngestBatch
	}
	if o.PipelineWorkers <= 0 {
		o.PipelineWorkers = runtime.GOMAXPROCS(0)
	}
	if o.PipelineWorkers > 64 {
		o.PipelineWorkers = 64
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.AdmitWait <= 0 {
		o.AdmitWait = 2 * time.Second
	}
	if o.LatencyWindow <= 0 {
		o.LatencyWindow = 512
	}
	return o
}

// ErrClosed is returned by ingest entry points after Close.
var ErrClosed = errors.New("serve: service closed")

// Service is the live query-serving layer: one ingestion front door
// projecting pages into owned records and fanning them out in batches
// to single-writer materialized views, plus the query surface (snapshot
// accessors and the HTTP API in http.go).
type Service struct {
	opts    Options
	metrics *metricsSet
	proj    *projector
	fpState *fingerprintState

	tallyW *viewWorker
	fpW    *viewWorker
	ecoW   *viewWorker
	views  []*viewWorker

	tallySnap atomic.Pointer[TallySnapshot]
	fpSnap    atomic.Pointer[FingerprintSnapshot]
	ecoSnap   atomic.Pointer[EcosystemSnapshot]

	ingestedEvents   atomic.Uint64
	ingestedPages    atomic.Uint64
	ingestedPayments atomic.Uint64
	ingestBatches    atomic.Uint64
	ingestBatchPages atomic.Uint64
	undecodable      atomic.Uint64
	streamLastSeq    atomic.Uint64
	lastIngestNano   atomic.Int64

	inflight atomic.Int64
	rejected atomic.Uint64
	admit    chan struct{}

	// fd, when attached, adds the online front door (path_find quotes,
	// transaction submission) to the HTTP API and /metrics.
	fd *txq.FrontDoor

	// progressCh is closed and replaced on every view seal or drop; the
	// Drain waiters re-arm on it instead of sleep-polling.
	progressMu sync.Mutex
	progressCh chan struct{}

	mu     sync.RWMutex // guards closed against in-flight ingests
	closed bool
}

// NewService builds the views and starts their writer goroutines.
func NewService(opts Options) *Service {
	opts = opts.withDefaults()
	s := &Service{
		opts:       opts,
		metrics:    newMetricsSet(opts.LatencyWindow),
		admit:      make(chan struct{}, opts.MaxConcurrent),
		progressCh: make(chan struct{}),
	}

	workers := opts.PipelineWorkers

	tally := newTallyShards(opts.ValidatorLabels, workers)
	s.tallyW = newViewWorker(viewConfig{
		name:    "fig2_tally",
		workers: workers,
		queue:   opts.QueueSize,
		batch:   opts.PublishBatch,
		block:   !opts.NonBlocking,
		apply:   func(shard int, u update) { tally.apply(shard, *u.ev) },
		route:   tallyRoute,
		publish: func(epoch uint64) { s.tallySnap.Store(tally.snapshot(epoch, seqOf(s.tallyW))) },
		notify:  s.notifyProgress,
	})

	fp := newFingerprintState(opts.FingerprintShards)
	if workers > 1 {
		fp.attachFeeders(workers)
	}
	s.fpState = fp
	s.proj = newProjector(fp.plan())
	s.fpW = newViewWorker(viewConfig{
		name:    "fig3_fingerprints",
		workers: workers,
		queue:   opts.QueueSize,
		batch:   opts.PublishBatch,
		block:   !opts.NonBlocking,
		apply: func(shard int, u update) {
			if u.rec != nil {
				fp.applyShard(shard, u.rec)
				u.rec.unref()
			}
		},
		publish: func(epoch uint64) { s.fpSnap.Store(fp.snapshot(epoch, seqOf(s.fpW))) },
		notify:  s.notifyProgress,
		sealDue: fp.sealDue,
	})

	eco := newEcoShards(workers)
	var ecoGate func() bool
	if workers > 1 {
		// The merged publish clones every shard's state; gate it
		// geometrically like the fingerprint view. The single-worker
		// snapshot is clone-free, so it keeps the classic cadence.
		ecoGate = eco.sealDue
	}
	s.ecoW = newViewWorker(viewConfig{
		name:    "fig4to6_ecosystem",
		workers: workers,
		queue:   opts.QueueSize,
		batch:   opts.PublishBatch,
		block:   !opts.NonBlocking,
		apply: func(shard int, u update) {
			if u.rec != nil {
				eco.apply(shard, u.rec)
				u.rec.unref()
			}
		},
		publish: func(epoch uint64) { s.ecoSnap.Store(eco.snapshot(epoch, seqOf(s.ecoW))) },
		notify:  s.notifyProgress,
		sealDue: ecoGate,
	})

	s.views = []*viewWorker{s.tallyW, s.fpW, s.ecoW}
	return s
}

// seqOf reads a worker's applied ledger sequence, tolerating the
// bootstrap publish that runs before the worker pointer is assigned.
func seqOf(w *viewWorker) uint64 {
	if w == nil {
		return 0
	}
	return w.appliedSeq.Load()
}

// pageViews is the number of views every page record fans out to (the
// fingerprint and ecosystem views); it is the record's initial
// refcount.
const pageViews = 2

// IngestEvent folds one validation-stream event into the views: every
// well-formed event feeds the Figure 2 tally, and ledger-close events
// carrying a page payload feed the page views. The payload is projected
// in place (never materialized as a *ledger.Page); an undecodable one
// is quarantined (counted in DroppedEvents) without losing the close
// event itself.
func (s *Service) IngestEvent(ev consensus.Event) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.noteIngest(ev.StreamSeq)
	s.ingestedEvents.Add(1)

	var rec *pageRecord
	if ev.Kind == consensus.EventLedgerClosed && len(ev.PageData) > 0 {
		rec = newPageRecord(pageViews)
		if err := s.proj.fromPayload(ev.PageData, rec); err != nil {
			s.undecodable.Add(1)
			rec.unrefN(pageViews)
			rec = nil
		}
	}
	seq := ev.Seq
	if rec != nil {
		seq = rec.seq
	}
	s.tallyW.offer(update{ev: &ev, seq: seq, streamSeq: ev.StreamSeq})
	if rec != nil {
		s.ingestedPages.Add(1)
		s.ingestedPayments.Add(uint64(len(rec.payments)))
		u := update{rec: rec, seq: rec.seq, streamSeq: ev.StreamSeq}
		s.fpW.offer(u)
		s.ecoW.offer(u)
	}
	return nil
}

// IngestPage folds one sealed page into the page views — the
// single-page backfill path (no validation events, so the Figure 2
// view is untouched). Bulk loads should prefer IngestPages or
// BackfillStore, which amortize the queue operations.
func (s *Service) IngestPage(p *ledger.Page) error {
	rec := newPageRecord(pageViews)
	s.proj.fromPage(p, rec)
	b := getUpdateBatch()
	b = append(b, update{rec: rec, seq: rec.seq})
	return s.ingestPageBatch(b, len(rec.payments))
}

// IngestPages folds a batch of sealed pages into the page views with
// one queue operation per view per IngestBatchPages pages. When the
// pipeline has multiple workers and the batch is large enough to
// amortize the goroutine fan-out, projection itself runs in parallel:
// contiguous chunks of pages are projected by PipelineWorkers
// goroutines, each feeding the view rings through its own batcher.
// Every view statistic is order-insensitive, so the interleaving cannot
// change any sealed snapshot.
func (s *Service) IngestPages(pages []*ledger.Page) error {
	workers := s.opts.PipelineWorkers
	if workers > 1 && len(pages) >= 2*s.opts.IngestBatchPages {
		return s.ingestPagesParallel(pages, workers)
	}
	b := s.newBatcher()
	for _, p := range pages {
		rec := newPageRecord(pageViews)
		s.proj.fromPage(p, rec)
		if err := b.add(rec); err != nil {
			return err
		}
	}
	return b.flush()
}

// ingestPagesParallel is the multi-worker IngestPages body: chunked
// parallel projection with per-goroutine batchers.
func (s *Service) ingestPagesParallel(pages []*ledger.Page, workers int) error {
	chunk := (len(pages) + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for g := 0; g*chunk < len(pages); g++ {
		lo, hi := g*chunk, (g+1)*chunk
		if hi > len(pages) {
			hi = len(pages)
		}
		wg.Add(1)
		go func(g int, chunk []*ledger.Page) {
			defer wg.Done()
			b := s.newBatcher()
			for _, p := range chunk {
				rec := newPageRecord(pageViews)
				s.proj.fromPage(p, rec)
				if err := b.add(rec); err != nil {
					// add only fails once the service is closed, and the
					// failing flush already released the flushed records;
					// nothing is left buffered.
					errs[g] = err
					return
				}
			}
			errs[g] = b.flush()
		}(g, pages[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ingestPageBatch is the shared back half of every page ingest path:
// bookkeeping once per batch, then fan-out of the batch to both page
// views. It takes ownership of b (and one of each record's refs per
// view).
func (s *Service) ingestPageBatch(b []update, payments int) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		for i := range b {
			b[i].rec.unrefN(pageViews)
		}
		putUpdateBatch(b)
		return ErrClosed
	}
	s.noteIngest(0)
	s.ingestedPages.Add(uint64(len(b)))
	s.ingestedPayments.Add(uint64(payments))
	s.ingestBatches.Add(1)
	s.ingestBatchPages.Add(uint64(len(b)))

	// Each view consumes (and recycles) its own batch slice; the
	// updates inside share the records via the refcount.
	fpB := getUpdateBatch()
	fpB = append(fpB, b...)
	if !s.fpW.offerBatch(fpB) {
		for i := range fpB {
			fpB[i].rec.unref()
		}
		putUpdateBatch(fpB)
	}
	if !s.ecoW.offerBatch(b) {
		for i := range b {
			b[i].rec.unref()
		}
		putUpdateBatch(b)
	}
	return nil
}

// noteIngest stamps the ingest clock and advances the stream high-water
// mark. It runs once per ingest call or batch — not once per page — so
// the time.Now and CAS costs amortize over the batch.
func (s *Service) noteIngest(streamSeq uint64) {
	s.lastIngestNano.Store(time.Now().UnixNano())
	if streamSeq == 0 {
		return
	}
	// CAS only when actually advancing; concurrent backfills and
	// streams mostly observe an already-higher watermark.
	for cur := s.streamLastSeq.Load(); streamSeq > cur; cur = s.streamLastSeq.Load() {
		if s.streamLastSeq.CompareAndSwap(cur, streamSeq) {
			return
		}
	}
}

// recBatcher accumulates projected records and flushes them through
// ingestPageBatch every IngestBatchPages pages. Not safe for concurrent
// use; parallel backfills keep one per worker.
type recBatcher struct {
	s        *Service
	buf      []update
	payments int
	limit    int
}

func (s *Service) newBatcher() *recBatcher {
	return &recBatcher{s: s, buf: getUpdateBatch(), limit: s.opts.IngestBatchPages}
}

func (b *recBatcher) add(rec *pageRecord) error {
	b.buf = append(b.buf, update{rec: rec, seq: rec.seq})
	b.payments += len(rec.payments)
	if len(b.buf) >= b.limit {
		return b.flush()
	}
	return nil
}

func (b *recBatcher) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	buf, n := b.buf, b.payments
	b.buf, b.payments = getUpdateBatch(), 0
	return b.s.ingestPageBatch(buf, n)
}

// discard releases anything still buffered (abandoned backfill).
func (b *recBatcher) discard() {
	for i := range b.buf {
		b.buf[i].rec.unrefN(pageViews)
	}
	putUpdateBatch(b.buf)
	b.buf, b.payments = nil, 0
}

// Backfill streams a closed history into the page views, in order,
// batching the fan-out.
func (s *Service) Backfill(ctx context.Context, src replay.Source) error {
	b := s.newBatcher()
	err := src.Pages(func(p *ledger.Page) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		rec := newPageRecord(pageViews)
		s.proj.fromPage(p, rec)
		return b.add(rec)
	})
	if err != nil {
		b.discard()
		return err
	}
	return b.flush()
}

// BackfillStore is Backfill over a ledgerstore at memory-scan speed: up
// to workers goroutines walk the raw record payloads (mmap'd where the
// platform allows) and project each page in place into an owned record
// — no *ledger.Page is ever materialized — then feed the views in
// batches. Pages interleave across segments, but every view statistic
// is order-insensitive, so the result is identical to a sequential
// backfill.
//
// Projection validates record framing exactly like the decoding scans
// (a CRC-clean record that DecodePage accepts always projects) plus the
// payment fields the views consume; fields of non-payment transactions
// are not inspected.
func (s *Service) BackfillStore(ctx context.Context, store *ledgerstore.Store, workers int) error {
	if workers < 1 {
		workers = defaultWorkers()
	}
	batchers := make([]*recBatcher, workers)
	err := store.PayloadsParallel(ctx, workers, func(w int, payload []byte) error {
		b := batchers[w]
		if b == nil {
			b = s.newBatcher()
			batchers[w] = b
		}
		rec := newPageRecord(pageViews)
		if perr := s.proj.fromPayload(payload, rec); perr != nil {
			rec.unrefN(pageViews)
			return fmt.Errorf("serve: backfill: %w", perr)
		}
		return b.add(rec)
	})
	for _, b := range batchers {
		if b == nil {
			continue
		}
		if err != nil {
			b.discard()
		} else if ferr := b.flush(); ferr != nil {
			err = ferr
		}
	}
	return err
}

// Follow subscribes to a live validation stream through a
// netstream.ResilientClient and ingests every event until the context
// is cancelled or the stream ends. It returns the client's final
// counters alongside any terminal error.
func (s *Service) Follow(ctx context.Context, addr string, opts netstream.ResilientOptions) (netstream.ClientStats, error) {
	client := netstream.NewResilientClient(addr, opts)
	err := client.Run(ctx, func(ev consensus.Event) error {
		if ierr := s.IngestEvent(ev); ierr != nil {
			return netstream.ErrStop
		}
		return nil
	})
	if errors.Is(err, context.Canceled) {
		err = nil
	}
	return client.Stats(), err
}

// AttachFrontDoor adds a transaction front door to the service: Handler
// gains /v1/path_find, /v1/submit, and /v1/tx_status (behind the same
// admission limiter as the query endpoints), and /metrics gains the txq
// family. Call before Handler. The service does not own the front door;
// the caller closes it (typically after draining the HTTP server).
func (s *Service) AttachFrontDoor(fd *txq.FrontDoor) { s.fd = fd }

// FrontDoor returns the attached front door, or nil.
func (s *Service) FrontDoor() *txq.FrontDoor { return s.fd }

// Tally returns the current Figure 2 snapshot.
func (s *Service) Tally() *TallySnapshot { return s.tallySnap.Load() }

// Fingerprints returns the current Figure 3 / lookup snapshot.
func (s *Service) Fingerprints() *FingerprintSnapshot { return s.fpSnap.Load() }

// Ecosystem returns the current Figures 4–6 snapshot.
func (s *Service) Ecosystem() *EcosystemSnapshot { return s.ecoSnap.Load() }

// ViewHealth is one view's ingestion status.
type ViewHealth struct {
	Name          string `json:"name"`
	Epoch         uint64 `json:"epoch"`
	AppliedSeq    uint64 `json:"applied_seq"`
	AppliedEvents uint64 `json:"applied_events"`
	Lag           uint64 `json:"ingest_lag_events"`
	Dropped       uint64 `json:"dropped_events"`
	// Shards is the view's pipeline fan-out (state shards / rings).
	Shards int `json:"shards"`
}

// HealthReport summarizes the service for /healthz.
type HealthReport struct {
	Status           string        `json:"status"`
	IngestedEvents   uint64        `json:"ingested_events"`
	IngestedPages    uint64        `json:"ingested_pages"`
	IngestedPayments uint64        `json:"ingested_payments"`
	DroppedEvents    uint64        `json:"dropped_events"`
	StreamLastSeq    uint64        `json:"stream_last_seq"`
	IngestIdle       time.Duration `json:"ingest_idle_ns"`
	Views            []ViewHealth  `json:"views"`
}

// Health reports the service's ingestion state. Status is "ok" while
// nothing has been dropped, "degraded" otherwise.
func (s *Service) Health() HealthReport {
	h := HealthReport{
		Status:           "ok",
		IngestedEvents:   s.ingestedEvents.Load(),
		IngestedPages:    s.ingestedPages.Load(),
		IngestedPayments: s.ingestedPayments.Load(),
		StreamLastSeq:    s.streamLastSeq.Load(),
	}
	if last := s.lastIngestNano.Load(); last > 0 {
		h.IngestIdle = time.Since(time.Unix(0, last))
	}
	dropped := s.undecodable.Load()
	for _, w := range s.views {
		dropped += w.dropped.Load()
		h.Views = append(h.Views, ViewHealth{
			Name:          w.name,
			Epoch:         w.epoch.Load(),
			AppliedSeq:    w.appliedSeq.Load(),
			AppliedEvents: w.applied.Load(),
			Lag:           w.lag(),
			Dropped:       w.dropped.Load(),
			Shards:        w.workerCount(),
		})
	}
	h.DroppedEvents = dropped
	if dropped > 0 {
		h.Status = "degraded"
	}
	return h
}

// progressGate returns a channel closed at the next view seal or drop.
// Waiters must take the gate BEFORE re-checking their condition, so a
// seal between check and wait can never be missed.
func (s *Service) progressGate() <-chan struct{} {
	s.progressMu.Lock()
	ch := s.progressCh
	s.progressMu.Unlock()
	return ch
}

// notifyProgress wakes every waiter armed on the current gate.
func (s *Service) notifyProgress() {
	s.progressMu.Lock()
	close(s.progressCh)
	s.progressCh = make(chan struct{})
	s.progressMu.Unlock()
}

// Drain blocks until every view has applied everything offered so far
// and published it, or the context expires — the barrier differential
// tests and graceful shutdown use. Ingestion may continue concurrently;
// Drain only guarantees the offers that happened before the call are
// visible. Waiting is notification-driven (views signal every seal and
// drop), so drain latency is bounded by the last seal, not a poll
// interval.
func (s *Service) Drain(ctx context.Context) error {
	target := make([]uint64, len(s.views))
	for i, w := range s.views {
		target[i] = w.offered.Load()
	}
	for {
		gate := s.progressGate()
		done := true
		for i, w := range s.views {
			// Sealed (published) plus dropped must cover everything
			// offered before the call; dropped updates never publish.
			if w.sealed.Load()+w.dropped.Load() < target[i] {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %w", ctx.Err())
		case <-gate:
		}
	}
}

// Close stops ingestion, drains every view inbox, publishes the final
// epochs, and stops the writer goroutines (including the fingerprint
// count shards). Queries keep working against the final snapshots
// afterwards.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, w := range s.views {
		w.close()
	}
	s.fpState.close()
}
