package monitor

import (
	"strings"
	"testing"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/netstream"
)

func validEvent(seq uint64) consensus.Event {
	kp := addr.KeyPairFromSeed(seq)
	h := ledger.SHA512Half([]byte{byte(seq)})
	return consensus.Event{
		Kind:       consensus.EventValidation,
		Seq:        seq,
		LedgerHash: h,
		Node:       kp.NodeID(),
		Signature:  kp.Sign(h[:]),
		Time:       time.Date(2015, 12, 1, 0, 0, int(seq), 0, time.UTC),
	}
}

// TestCollectorSkipsMalformedEvents: garbage from a degraded stream is
// counted, not recorded, and never aborts the collection.
func TestCollectorSkipsMalformedEvents(t *testing.T) {
	c := NewCollector()
	c.Record(validEvent(1))

	c.Record(consensus.Event{})                                    // unknown kind
	c.Record(consensus.Event{Kind: consensus.EventKind(99)})       // bogus kind
	c.Record(consensus.Event{Kind: consensus.EventValidation})     // zero hash, zero node
	c.Record(consensus.Event{Kind: consensus.EventLedgerClosed})   // zero hash
	ev := validEvent(2)
	ev.Node = addr.NodeID{}
	c.Record(ev) // validation without a signer

	c.Record(validEvent(3))
	closed := consensus.Event{
		Kind:       consensus.EventLedgerClosed,
		LedgerHash: validEvent(1).LedgerHash,
	}
	c.Record(closed)

	if c.Events() != 3 {
		t.Errorf("Events = %d, want 3", c.Events())
	}
	if c.Malformed() != 5 {
		t.Errorf("Malformed = %d, want 5", c.Malformed())
	}
	rep := c.Report("test")
	if len(rep.Validators) != 2 {
		t.Errorf("validators = %d, want 2 (malformed events must not create validators)", len(rep.Validators))
	}
}

func TestCollectionHealthReport(t *testing.T) {
	col := NewCollector()
	col.Record(validEvent(1))
	col.Record(consensus.Event{}) // malformed

	h := Health(netstream.ClientStats{
		Connects:   3,
		Reconnects: 2,
		Gaps:       1,
		Duplicates: 4,
		BadFrames:  5,
	}, col)
	if h.Reconnects != 2 || h.Gaps != 1 || h.BadFrames != 5 || h.Events != 1 || h.Malformed != 1 {
		t.Errorf("health mismapped: %+v", h)
	}
	if h.Complete() {
		t.Error("a run with malformed events is not complete")
	}
	var b strings.Builder
	if err := h.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"reconnects", "2", "bad frames skipped", "lossy"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	cleanCol := NewCollector()
	cleanCol.Record(validEvent(1))
	clean := Health(netstream.ClientStats{Connects: 1}, cleanCol)
	if !clean.Complete() {
		t.Error("clean run must report complete")
	}
	if !strings.Contains(clean.String(), "complete") {
		t.Errorf("String() = %q, want a 'complete' verdict", clean.String())
	}
	if clean.Attacked() {
		t.Errorf("clean run reports an attack: %+v", clean.Attack)
	}
}

// TestZeroEventCollectionNotComplete: a subscription that delivered
// nothing proves nothing — it must not masquerade as a clean window.
func TestZeroEventCollectionNotComplete(t *testing.T) {
	empty := Health(netstream.ClientStats{Connects: 1}, NewCollector())
	if empty.Complete() {
		t.Error("zero-event collection reported complete")
	}
	if !strings.Contains(empty.String(), "empty") {
		t.Errorf("String() = %q, want an 'empty' verdict", empty.String())
	}
	var b strings.Builder
	if err := empty.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "collection empty") {
		t.Errorf("report missing the empty-stream verdict:\n%s", b.String())
	}
}
