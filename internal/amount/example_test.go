package amount_test

import (
	"fmt"

	"ripplestudy/internal/amount"
)

func ExampleParse() {
	v := amount.MustParse("4.5")
	sum, _ := v.Add(amount.MustParse("0.75"))
	fmt.Println(sum)
	// Output: 5.25
}

func ExampleValue_RoundToPow10() {
	// Table I's "maximum" resolution for a medium currency rounds to
	// the closest ten: the 4.5 USD latte becomes indistinguishable from
	// zero, yet the timestamp still betrays the payment (Figure 3).
	latte := amount.MustParse("4.5")
	fmt.Println(latte.RoundToPow10(1))
	fmt.Println(amount.MustParse("47").RoundToPow10(1))
	// Output:
	// 0
	// 50
}

func ExampleDrops_XRPValue() {
	fee := amount.Drops(10)
	fmt.Printf("%s XRP destroyed per transaction\n", fee.XRPValue())
	// Output: 0.00001 XRP destroyed per transaction
}

func ExampleStrengthOf() {
	for _, c := range []amount.Currency{amount.BTC, amount.USD, amount.XRP} {
		fmt.Printf("%s is %s\n", c, amount.StrengthOf(c))
	}
	// Output:
	// BTC is powerful
	// USD is medium
	// XRP is weak
}
