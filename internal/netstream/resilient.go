package netstream

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ripplestudy/internal/consensus"
)

// ResilientOptions tunes a ResilientClient. The zero value picks
// defaults suitable for a long-lived collection run.
type ResilientOptions struct {
	// InitialBackoff is the delay before the first reconnect attempt
	// (default 50ms). Subsequent attempts double it, capped at
	// MaxBackoff (default 5s), with deterministic jitter.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	// JitterSeed seeds the backoff jitter (default 1), keeping chaos
	// tests reproducible.
	JitterSeed int64
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// ReadTimeout is the per-read deadline; it bounds how long a
	// blocked read can ignore a cancelled context (default 500ms).
	ReadTimeout time.Duration
	// StallTimeout, when nonzero, treats a connection that delivers no
	// frame for that long as dead and reconnects.
	StallTimeout time.Duration
	// MaxConsecutiveFailures gives up after this many failed connection
	// attempts in a row (default 10; negative = retry forever).
	MaxConsecutiveFailures int
	// Logf, when set, receives one line per reconnect/gap decision.
	Logf func(format string, args ...any)
}

func (o ResilientOptions) withDefaults() ResilientOptions {
	if o.InitialBackoff <= 0 {
		o.InitialBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 500 * time.Millisecond
	}
	if o.MaxConsecutiveFailures == 0 {
		o.MaxConsecutiveFailures = 10
	}
	return o
}

// ClientStats summarizes a ResilientClient's life so far. All counters
// are cumulative across reconnects.
type ClientStats struct {
	// Connects counts successful connections; Reconnects is
	// Connects-1 clamped at zero.
	Connects   int
	Reconnects int
	// Gaps counts detected sequence discontinuities (each triggers one
	// repair attempt that re-requests the missing range from the
	// server's replay ring).
	Gaps int
	// Missed counts events confirmed lost after a failed repair — the
	// replay ring no longer held them.
	Missed uint64
	// Duplicates counts events skipped because their sequence was
	// already processed (replay overlap after resume).
	Duplicates uint64
	// BadFrames counts corrupted/truncated wire frames skipped.
	BadFrames uint64
	// Events counts events delivered to the callback.
	Events uint64
	// LastSeq is the highest stream sequence processed.
	LastSeq uint64
}

// ErrUnavailable is returned by Run when the server stays unreachable
// past MaxConsecutiveFailures.
var ErrUnavailable = errors.New("netstream: server unavailable")

// errRepair forces a reconnect that re-requests a missing sequence
// range from the server's replay ring.
var errRepair = errors.New("netstream: gap repair")

// ResilientClient consumes a validation stream across connection
// failures: it reconnects with capped exponential backoff plus jitter,
// resumes from the last stream sequence it processed, deduplicates
// replayed events, and detects gaps — repairing them from the server's
// replay ring when possible, counting them as Missed when not.
type ResilientClient struct {
	addr string
	opts ResilientOptions
	rng  *rand.Rand

	mu          sync.Mutex
	stats       ClientStats
	lastSeq     uint64
	repairedAt  uint64 // lastSeq value a gap repair was already tried from
	repairTries int    // repair attempts made from repairedAt
	stopped     bool
}

// maxGapRepairs bounds how many repair reconnects are attempted for one
// gap position before the loss is accepted. The replay itself rides the
// same degraded transport, so a single attempt can be corrupted away;
// retrying a few times makes recovery survive fault-on-fault, while the
// bound keeps a truly evicted range from looping forever.
const maxGapRepairs = 3

// NewResilientClient prepares a client for addr; no connection is made
// until Run.
func NewResilientClient(addr string, opts ResilientOptions) *ResilientClient {
	o := opts.withDefaults()
	return &ResilientClient{
		addr:       addr,
		opts:       o,
		rng:        rand.New(rand.NewSource(o.JitterSeed)),
		repairedAt: ^uint64(0),
	}
}

// Stats returns a snapshot of the client's counters.
func (rc *ResilientClient) Stats() ClientStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.stats
}

// LastSeq returns the highest stream sequence processed so far.
func (rc *ResilientClient) LastSeq() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.lastSeq
}

func (rc *ResilientClient) logf(format string, args ...any) {
	if rc.opts.Logf != nil {
		rc.opts.Logf(format, args...)
	}
}

// Run consumes the stream until the context is cancelled, fn returns an
// error (ErrStop stops cleanly), or the server stays unreachable past
// MaxConsecutiveFailures (ErrUnavailable). Disconnects, EOFs, stalls,
// and detected gaps all reconnect and resume from the last processed
// sequence.
func (rc *ResilientClient) Run(ctx context.Context, fn func(ev consensus.Event) error) error {
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		c, err := DialResume(rc.addr, rc.LastSeq(), rc.opts.DialTimeout)
		if err != nil {
			failures++
			if rc.opts.MaxConsecutiveFailures > 0 && failures >= rc.opts.MaxConsecutiveFailures {
				return fmt.Errorf("%w: %d consecutive failed connects, last: %v",
					ErrUnavailable, failures, err)
			}
			backoff := rc.nextBackoff(failures)
			rc.logf("netstream: connect to %s failed (attempt %d): %v; retrying in %v",
				rc.addr, failures, err, backoff)
			if !rc.sleep(ctx, backoff) {
				return ctx.Err()
			}
			continue
		}
		failures = 0
		c.readTimeout = rc.opts.ReadTimeout
		c.stallAfter = rc.opts.StallTimeout
		rc.mu.Lock()
		rc.stats.Connects++
		if rc.stats.Connects > 1 {
			rc.stats.Reconnects++
			rc.logf("netstream: reconnected to %s, resuming after seq %d", rc.addr, rc.lastSeq)
		}
		rc.mu.Unlock()

		err = c.EventsContext(ctx, func(ev consensus.Event) error { return rc.observe(ev, fn) })
		rc.mu.Lock()
		rc.stats.BadFrames += c.BadFrames()
		stopped := rc.stopped
		rc.mu.Unlock()
		c.Close()

		switch {
		case stopped:
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		case err == nil:
			// EOF: the server hung up (shutdown or restart). Reconnect
			// and resume; a gone-for-good server ends the run via
			// MaxConsecutiveFailures.
		case errors.Is(err, errRepair):
			rc.logf("netstream: sequence gap after %d; reconnecting to repair from the replay ring", rc.LastSeq())
		case errors.Is(err, ErrRead):
			rc.logf("netstream: stream broke: %v; reconnecting", err)
		default:
			// Callback error: not ours to retry.
			return err
		}
	}
}

// nextBackoff returns the delay before reconnect attempt `attempt`
// (1-based): the exponential base min(InitialBackoff·2^(attempt−1),
// MaxBackoff) jittered uniformly down into [base/2, base]. The jitter
// spreads a fleet of subscribers that lost the same server at the same
// instant, so their reconnects don't thundering-herd the sim; the
// result is deterministic per JitterSeed and NEVER exceeds MaxBackoff.
func (rc *ResilientClient) nextBackoff(attempt int) time.Duration {
	base, limit := rc.opts.InitialBackoff, rc.opts.MaxBackoff
	for i := 1; i < attempt && base < limit; i++ {
		if base > limit/2 { // doubling again would pass (or overflow past) the cap
			base = limit
			break
		}
		base *= 2
	}
	base = min(base, limit)
	rc.mu.Lock()
	d := base/2 + time.Duration(rc.rng.Int63n(int64(base/2)+1))
	rc.mu.Unlock()
	return min(d, limit)
}

// sleep waits for d, returning false if the context is cancelled first.
func (rc *ResilientClient) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// observe applies sequence bookkeeping — dedup, gap detection and
// repair, resume cursor — before handing the event to fn.
func (rc *ResilientClient) observe(ev consensus.Event, fn func(consensus.Event) error) error {
	rc.mu.Lock()
	if seq := ev.StreamSeq; seq != 0 {
		if seq <= rc.lastSeq {
			rc.stats.Duplicates++
			rc.mu.Unlock()
			return nil
		}
		if rc.lastSeq != 0 && seq > rc.lastSeq+1 {
			if rc.repairedAt != rc.lastSeq {
				// First sight of this gap: reconnect and ask the server
				// to replay from lastSeq. The cursor stays put so the
				// replay can fill the hole.
				rc.repairedAt = rc.lastSeq
				rc.repairTries = 1
				rc.stats.Gaps++
				rc.mu.Unlock()
				return errRepair
			}
			if rc.repairTries < maxGapRepairs {
				// The repair replay itself lost the frame (it rides the
				// same degraded transport); try again.
				rc.repairTries++
				rc.mu.Unlock()
				return errRepair
			}
			// Repeated repairs came back and the hole is still there:
			// the ring no longer holds the range. Accept the loss.
			rc.stats.Missed += seq - rc.lastSeq - 1
		}
		rc.lastSeq = seq
		rc.stats.LastSeq = seq
	}
	rc.stats.Events++
	rc.mu.Unlock()
	err := fn(ev)
	if errors.Is(err, ErrStop) {
		rc.mu.Lock()
		rc.stopped = true
		rc.mu.Unlock()
	}
	return err
}
