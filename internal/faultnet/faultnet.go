// Package faultnet injects deterministic faults into network
// connections and stored files, for chaos-testing the collection
// pipeline. The paper's §IV measurement rests on a collection server
// staying subscribed to a validation stream for two-week windows;
// faultnet reproduces, under a fixed seed, the faults such a window
// sees — added latency, mid-frame disconnects, silently truncated
// writes, and bit corruption — so tests can prove the pipeline's
// reports are identical with and without them.
//
// Wrap a server's listener with Wrap (or a single connection with
// WrapConn) to degrade every byte written through it. The file helpers
// (FlipBitAt, FlipRandomBit, TruncateTail) apply the same corruption
// model to on-disk segment files.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects the faults to inject. Rates are per Write call and
// mutually exclusive (one fault at most per write, picked in the order
// corrupt, drop, truncate); their sum must not exceed 1.
type Config struct {
	// Seed drives all randomness; the same seed over the same write
	// sequence injects the same faults.
	Seed int64
	// CorruptRate is the probability of flipping one random bit of the
	// written data.
	CorruptRate float64
	// DropRate is the probability of closing the connection after
	// writing only a prefix — a mid-frame disconnect.
	DropRate float64
	// TruncateRate is the probability of silently writing only a
	// prefix while reporting complete success.
	TruncateRate float64
	// Latency is a fixed delay added to every write.
	Latency time.Duration
}

// Stats counts injected faults across all connections of a Listener
// (or one wrapped Conn).
type Stats struct {
	Writes    uint64
	Corrupted uint64
	Dropped   uint64
	Truncated uint64
}

// FaultRate is the fraction of writes that had a fault injected.
func (s Stats) FaultRate() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.Corrupted+s.Dropped+s.Truncated) / float64(s.Writes)
}

func (s Stats) String() string {
	return fmt.Sprintf("writes=%d corrupted=%d dropped=%d truncated=%d (%.1f%% faulty)",
		s.Writes, s.Corrupted, s.Dropped, s.Truncated, 100*s.FaultRate())
}

// counters is the shared tally wrapped connections report into.
type counters struct {
	writes, corrupted, dropped, truncated atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Writes:    c.writes.Load(),
		Corrupted: c.corrupted.Load(),
		Dropped:   c.dropped.Load(),
		Truncated: c.truncated.Load(),
	}
}

// Listener wraps a net.Listener so every accepted connection injects
// faults on writes. Each connection gets its own deterministic RNG
// derived from Config.Seed and the accept index.
type Listener struct {
	net.Listener
	cfg   Config
	next  atomic.Int64
	stats counters
}

// Wrap degrades every connection accepted from ln according to cfg.
func Wrap(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

// Accept waits for the next connection and wraps it.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	idx := l.next.Add(1)
	return newConn(conn, l.cfg, l.cfg.Seed+idx*7919, &l.stats), nil
}

// Stats reports the faults injected so far across all connections.
func (l *Listener) Stats() Stats { return l.stats.snapshot() }

// ErrInjected is the error surfaced by an injected disconnect.
var ErrInjected = errors.New("faultnet: injected disconnect")

// Conn wraps a net.Conn, injecting faults into Write. Reads pass
// through untouched (the remote side's faulty writes are what this end
// reads).
type Conn struct {
	net.Conn
	cfg   Config
	mu    sync.Mutex
	rng   *rand.Rand
	tally *counters
	local counters
}

// WrapConn degrades a single connection with its own fault tally.
func WrapConn(conn net.Conn, cfg Config) *Conn {
	return newConn(conn, cfg, cfg.Seed, nil)
}

func newConn(conn net.Conn, cfg Config, seed int64, tally *counters) *Conn {
	c := &Conn{Conn: conn, cfg: cfg, rng: rand.New(rand.NewSource(seed)), tally: tally}
	if c.tally == nil {
		c.tally = &c.local
	}
	return c
}

// Stats reports faults injected by this connection (for WrapConn; a
// Listener's connections share the Listener tally).
func (c *Conn) Stats() Stats { return c.tally.snapshot() }

// Write injects at most one fault, then forwards to the wrapped
// connection.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	roll := c.rng.Float64()
	var bit int
	if len(p) > 0 {
		bit = c.rng.Intn(len(p) * 8)
	}
	c.mu.Unlock()
	c.tally.writes.Add(1)
	if c.cfg.Latency > 0 {
		time.Sleep(c.cfg.Latency)
	}
	if len(p) == 0 {
		return c.Conn.Write(p)
	}
	switch {
	case roll < c.cfg.CorruptRate:
		c.tally.corrupted.Add(1)
		corrupted := make([]byte, len(p))
		copy(corrupted, p)
		corrupted[bit/8] ^= 1 << (bit % 8)
		return c.Conn.Write(corrupted)
	case roll < c.cfg.CorruptRate+c.cfg.DropRate:
		c.tally.dropped.Add(1)
		_, _ = c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		return len(p) / 2, ErrInjected
	case roll < c.cfg.CorruptRate+c.cfg.DropRate+c.cfg.TruncateRate:
		c.tally.truncated.Add(1)
		if _, err := c.Conn.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		// Report full success: the loss is silent, exactly like a
		// crashed peer whose kernel acked but never delivered.
		return len(p), nil
	default:
		return c.Conn.Write(p)
	}
}

// FlipBitAt flips one bit of the file at path: bit `bit` (0–7) of the
// byte at offset off.
func FlipBitAt(path string, off int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("faultnet: open %s: %w", path, err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return fmt.Errorf("faultnet: read %s@%d: %w", path, off, err)
	}
	b[0] ^= 1 << (bit % 8)
	if _, err := f.WriteAt(b[:], off); err != nil {
		return fmt.Errorf("faultnet: write %s@%d: %w", path, off, err)
	}
	return nil
}

// FlipRandomBit flips one deterministically-chosen bit of the file and
// returns its position.
func FlipRandomBit(path string, seed int64) (off int64, bit uint, err error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, 0, fmt.Errorf("faultnet: stat %s: %w", path, err)
	}
	if info.Size() == 0 {
		return 0, 0, fmt.Errorf("faultnet: %s is empty", path)
	}
	rng := rand.New(rand.NewSource(seed))
	off = rng.Int63n(info.Size())
	bit = uint(rng.Intn(8))
	return off, bit, FlipBitAt(path, off, bit)
}

// TruncateTail removes the last n bytes of the file — a mid-write
// crash.
func TruncateTail(path string, n int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("faultnet: stat %s: %w", path, err)
	}
	size := info.Size() - n
	if size < 0 {
		size = 0
	}
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("faultnet: truncate %s: %w", path, err)
	}
	return nil
}
