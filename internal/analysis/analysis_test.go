package analysis

import (
	"math"
	"reflect"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/synth"
)

func acct(seed uint64) addr.AccountID { return addr.KeyPairFromSeed(seed).AccountID() }

// page builds a one-page ledger with the given txs/metas.
func page(txs []*ledger.Tx, metas []*ledger.TxMeta) *ledger.Page {
	return &ledger.Page{
		Header: ledger.PageHeader{Sequence: 2, TxSetHash: ledger.TxSetHash(txs)},
		Txs:    txs, Metas: metas,
	}
}

func pay(sender, dest uint64, a string, metas *ledger.TxMeta) (*ledger.Tx, *ledger.TxMeta) {
	tx := &ledger.Tx{
		Type: ledger.TxPayment, Account: acct(sender), Destination: acct(dest),
		Amount: amount.MustAmount(a),
	}
	if metas == nil {
		metas = &ledger.TxMeta{Result: ledger.ResultSuccess}
	}
	return tx, metas
}

func TestCurrencyHistogram(t *testing.T) {
	c := NewCollector()
	var txs []*ledger.Tx
	var metas []*ledger.TxMeta
	add := func(a string) {
		tx, m := pay(1, 2, a, nil)
		txs = append(txs, tx)
		metas = append(metas, m)
	}
	add("1/USD")
	add("2/USD")
	add("3/USD")
	add("1/EUR")
	add("5/XRP")
	add("5/XRP")
	// A failed payment must not count.
	tx, _ := pay(1, 2, "9/BTC", nil)
	txs = append(txs, tx)
	metas = append(metas, &ledger.TxMeta{Result: ledger.ResultPathDry})
	if err := c.Page(page(txs, metas)); err != nil {
		t.Fatal(err)
	}
	hist := c.CurrencyHistogram()
	if len(hist) != 3 {
		t.Fatalf("histogram has %d currencies, want 3", len(hist))
	}
	if hist[0].Currency != amount.USD || hist[0].Payments != 3 {
		t.Errorf("top = %+v, want USD×3", hist[0])
	}
	if c.Payments() != 6 || c.FailedPayments() != 1 {
		t.Errorf("payments=%d failed=%d", c.Payments(), c.FailedPayments())
	}
}

func TestSurvival(t *testing.T) {
	c := NewCollector()
	var txs []*ledger.Tx
	var metas []*ledger.TxMeta
	for _, a := range []string{"1/USD", "10/USD", "100/USD", "1000/USD"} {
		tx, m := pay(1, 2, a, nil)
		txs = append(txs, tx)
		metas = append(metas, m)
	}
	if err := c.Page(page(txs, metas)); err != nil {
		t.Fatal(err)
	}
	pts := c.Survival(amount.USD, false, []float64{0.5, 5, 50, 500, 5000})
	want := []float64{1.0, 0.75, 0.5, 0.25, 0}
	for i, p := range pts {
		if math.Abs(p.Fraction-want[i]) > 1e-9 {
			t.Errorf("survival(%g) = %g, want %g", p.Amount, p.Fraction, want[i])
		}
	}
	// Global curve covers all currencies.
	g := c.Survival(amount.Currency{}, true, []float64{0.5})
	if g[0].Fraction != 1.0 {
		t.Errorf("global survival(0.5) = %g", g[0].Fraction)
	}
	// Unknown currency: nil.
	if c.Survival(amount.BTC, false, []float64{1}) != nil {
		t.Error("unknown currency should return nil")
	}
}

func TestHopAndParallelHistograms(t *testing.T) {
	c := NewCollector()
	tx1, m1 := pay(1, 2, "1/USD", &ledger.TxMeta{
		Result: ledger.ResultSuccess, PathHops: []uint8{1, 1, 2},
	})
	tx2, m2 := pay(3, 4, "1/USD", &ledger.TxMeta{
		Result: ledger.ResultSuccess, PathHops: []uint8{8, 8, 8, 8, 8, 8},
	})
	tx3, m3 := pay(5, 6, "1/XRP", nil) // direct XRP: no paths
	if err := c.Page(page([]*ledger.Tx{tx1, tx2, tx3}, []*ledger.TxMeta{m1, m2, m3})); err != nil {
		t.Fatal(err)
	}
	hops := c.HopHistogram()
	if hops[1] != 2 || hops[2] != 1 || hops[8] != 6 {
		t.Errorf("hop histogram = %v", hops)
	}
	par := c.ParallelHistogram()
	if par[3] != 1 || par[6] != 1 {
		t.Errorf("parallel histogram = %v", par)
	}
	if c.MultiHopPayments() != 2 {
		t.Errorf("multi-hop = %d, want 2 (XRP direct excluded)", c.MultiHopPayments())
	}
}

func TestTopIntermediaries(t *testing.T) {
	c := NewCollector()
	hub, gw := acct(100), acct(101)
	var txs []*ledger.Tx
	var metas []*ledger.TxMeta
	for i := 0; i < 5; i++ {
		tx, m := pay(uint64(i), uint64(50+i), "1/USD", &ledger.TxMeta{
			Result: ledger.ResultSuccess, PathHops: []uint8{2},
			Intermediaries: []addr.AccountID{hub, gw},
		})
		txs = append(txs, tx)
		metas = append(metas, m)
	}
	tx, m := pay(9, 10, "1/USD", &ledger.TxMeta{
		Result: ledger.ResultSuccess, PathHops: []uint8{1},
		Intermediaries: []addr.AccountID{gw},
	})
	txs = append(txs, tx)
	metas = append(metas, m)
	if err := c.Page(page(txs, metas)); err != nil {
		t.Fatal(err)
	}
	top := c.TopIntermediaries(10, nil)
	if len(top) != 2 {
		t.Fatalf("top = %d entries, want 2", len(top))
	}
	if top[0].Account != gw || top[0].TimesIntermediate != 6 {
		t.Errorf("top[0] = %+v, want gw×6", top[0])
	}
	if top[1].Account != hub || top[1].TimesIntermediate != 5 {
		t.Errorf("top[1] = %+v, want hub×5", top[1])
	}
	// k truncation.
	if got := c.TopIntermediaries(1, nil); len(got) != 1 {
		t.Errorf("k=1 returned %d", len(got))
	}
}

func TestOfferConcentration(t *testing.T) {
	c := NewCollector()
	var txs []*ledger.Tx
	var metas []*ledger.TxMeta
	// Owner 1 places 6 offers, owners 2..5 one each.
	mk := func(owner uint64) {
		txs = append(txs, &ledger.Tx{
			Type: ledger.TxOfferCreate, Account: acct(owner),
			TakerPays: amount.MustAmount("1/USD"), TakerGets: amount.MustAmount("1/EUR"),
		})
		metas = append(metas, &ledger.TxMeta{Result: ledger.ResultSuccess})
	}
	for i := 0; i < 6; i++ {
		mk(1)
	}
	for o := uint64(2); o <= 5; o++ {
		mk(o)
	}
	if err := c.Page(page(txs, metas)); err != nil {
		t.Fatal(err)
	}
	conc := c.OfferConcentration([]int{1, 3, 100})
	if conc[1] != 0.6 {
		t.Errorf("top-1 share = %v, want 0.6", conc[1])
	}
	if conc[3] != 0.8 {
		t.Errorf("top-3 share = %v, want 0.8", conc[3])
	}
	if conc[100] != 1.0 {
		t.Errorf("top-100 share = %v, want 1.0", conc[100])
	}
	if c.TotalOffers() != 10 {
		t.Errorf("total offers = %d", c.TotalOffers())
	}
}

func TestResultCounts(t *testing.T) {
	c := NewCollector()
	tx1, m1 := pay(1, 2, "1/USD", nil)
	tx2, _ := pay(1, 3, "1/USD", nil)
	m2 := &ledger.TxMeta{Result: ledger.ResultPathDry}
	tx3, _ := pay(1, 4, "1/USD", nil)
	m3 := &ledger.TxMeta{Result: ledger.ResultPathDry}
	if err := c.Page(page([]*ledger.Tx{tx1, tx2, tx3}, []*ledger.TxMeta{m1, m2, m3})); err != nil {
		t.Fatal(err)
	}
	counts := c.ResultCounts()
	if counts[ledger.ResultSuccess] != 1 || counts[ledger.ResultPathDry] != 2 {
		t.Errorf("result counts = %v", counts)
	}
}

func TestFeeAccounting(t *testing.T) {
	c := NewCollector()
	var txs []*ledger.Tx
	var metas []*ledger.TxMeta
	// Account 1 sends three transactions at 10 drops, account 2 one at
	// 50; even failed transactions burn their fee.
	for i := 0; i < 3; i++ {
		tx, m := pay(1, 9, "1/USD", nil)
		tx.Fee = 10
		txs = append(txs, tx)
		metas = append(metas, m)
	}
	tx, _ := pay(2, 9, "1/USD", nil)
	tx.Fee = 50
	txs = append(txs, tx)
	metas = append(metas, &ledger.TxMeta{Result: ledger.ResultPathDry})
	if err := c.Page(page(txs, metas)); err != nil {
		t.Fatal(err)
	}
	if c.TotalFees() != 80 {
		t.Errorf("total fees = %d, want 80", c.TotalFees())
	}
	top := c.TopFeePayers(10, nil)
	if len(top) != 2 {
		t.Fatalf("fee payers = %d, want 2", len(top))
	}
	if top[0].Account != acct(2) || top[0].Fees != 50 {
		t.Errorf("top payer = %+v, want account 2 at 50", top[0])
	}
	if top[0].Share != 50.0/80 {
		t.Errorf("share = %v", top[0].Share)
	}
	if got := c.TopFeePayers(1, nil); len(got) != 1 {
		t.Errorf("k=1 returned %d", len(got))
	}
}

// TestAppendixShapeOnSyntheticHistory checks the appendix figures'
// qualitative shape over a generated history.
func TestAppendixShapeOnSyntheticHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 15k-payment history")
	}
	c := NewCollector()
	res, err := synth.Generate(synth.Config{
		Payments: 15_000, Seed: 11, SkipSignatures: true,
	}, c.Page)
	if err != nil {
		t.Fatal(err)
	}

	// Fig. 4: XRP first; CCK and MTL in the top 3; BTC above JPY.
	hist := c.CurrencyHistogram()
	if hist[0].Currency != amount.XRP {
		t.Errorf("top currency = %s, want XRP", hist[0].Currency)
	}
	top3 := map[amount.Currency]bool{hist[0].Currency: true, hist[1].Currency: true, hist[2].Currency: true}
	if !top3[amount.CCK] || !top3[amount.MTL] {
		t.Errorf("top-3 = %v, want CCK and MTL present", hist[:3])
	}

	// Fig. 5: BTC payments are much smaller than CNY payments; MTL sits
	// at ~1e9.
	btc := c.Survival(amount.BTC, false, []float64{100})
	if btc[0].Fraction > 0.05 {
		t.Errorf("P(BTC > 100) = %g, want tiny", btc[0].Fraction)
	}
	mtl := c.Survival(amount.MTL, false, []float64{1e8})
	if mtl[0].Fraction < 0.9 {
		t.Errorf("P(MTL > 1e8) = %g, want ≈1 (spam quantum)", mtl[0].Fraction)
	}

	// Fig. 6(a): hops decrease overall but spike at 8 (MTL spam).
	hops := c.HopHistogram()
	if hops[8] < hops[4] {
		t.Errorf("hop histogram lacks the 8-hop spam spike: %v", hops)
	}
	if hops[1] == 0 {
		t.Error("no 1-hop paths at all")
	}

	// Fig. 6(b): the MTL spam forces a spike at exactly 6 parallel
	// paths.
	par := c.ParallelHistogram()
	if par[6] < par[5] {
		t.Errorf("parallel histogram lacks the 6-path spam spike: %v", par)
	}
	if par[1] == 0 {
		t.Error("no single-path payments at all")
	}

	// Fig. 7(a): the two hubs are the most frequent intermediaries.
	reg := res.Population.Registry()
	top := c.TopIntermediaries(50, reg)
	if len(top) < 20 {
		t.Fatalf("only %d intermediaries observed", len(top))
	}
	hubs := map[addr.AccountID]bool{
		res.Population.Hubs[0].ID: true,
		res.Population.Hubs[1].ID: true,
	}
	if !hubs[top[0].Account] {
		t.Errorf("most frequent intermediary = %s, want a hub", top[0].Name)
	}
	gatewaysInTop := 0
	for _, it := range top[:20] {
		if it.Gateway {
			gatewaysInTop++
		}
	}
	if gatewaysInTop < 5 {
		t.Errorf("gateways in top-20 intermediaries = %d, want several", gatewaysInTop)
	}

	// Fig. 7(b)/(c): gateways receive trust and run negative balances.
	ProfileTop(top, res.Engine.Graph(), synth.RateEUR)
	for _, it := range top[:20] {
		if !it.Gateway {
			continue
		}
		if it.Profile.TrustReceived <= 0 {
			t.Errorf("gateway %s has no received trust", it.Name)
		}
		if it.Profile.NetBalance >= 0 {
			t.Errorf("gateway %s balance = %g, want negative (debt)", it.Name, it.Profile.NetBalance)
		}
	}

	// Offer concentration: top-10 ≈ half of all offers.
	conc := c.OfferConcentration([]int{10, 50, 100})
	if conc[10] < 0.3 || conc[10] > 0.8 {
		t.Errorf("top-10 offer share = %.2f, want ≈0.5", conc[10])
	}
	if conc[50] < conc[10] || conc[100] < conc[50] {
		t.Error("offer concentration not monotone in k")
	}
}

// collectorFingerprint reduces a collector's externally visible state to
// one comparable value: every accessor a snapshot consumer reads.
func collectorFingerprint(c *Collector) map[string]any {
	return map[string]any{
		"payments":    c.Payments(),
		"failed":      c.FailedPayments(),
		"multiHop":    c.MultiHopPayments(),
		"offers":      c.TotalOffers(),
		"active":      c.ActiveAccounts(),
		"currencies":  c.CurrencyHistogram(),
		"hops":        c.HopHistogram(),
		"parallel":    c.ParallelHistogram(),
		"survival":    c.Survival(amount.Currency{}, true, DefaultSurvivalGrid()),
		"survivalBTC": c.Survival(amount.BTC, false, DefaultSurvivalGrid()),
		"conc":        c.OfferConcentration([]int{10, 50, 100}),
		"fees":        c.TotalFees(),
	}
}

// TestMergeClonedRepeatable pins the shard/merge lifecycle the serving
// layer's sharded ecosystem view runs: per-shard collectors keep
// accumulating across repeated MergeCloned merges, and each merged
// result equals the sequential fold of the same prefix — so the merge
// neither corrupts the sources (Merge would: it adopts histogram
// pointers) nor drifts from the single-writer answer.
func TestMergeClonedRepeatable(t *testing.T) {
	var pages []*ledger.Page
	_, err := synth.Generate(synth.Config{
		Payments: 4000, Seed: 17, SkipSignatures: true,
	}, func(p *ledger.Page) error {
		pages = append(pages, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	const shards = 3
	shard := make([]*Collector, shards)
	for i := range shard {
		shard[i] = NewCollector()
	}
	seq := NewCollector()

	cuts := []int{len(pages) / 4, len(pages) / 2, len(pages)}
	prev := 0
	for _, cut := range cuts {
		for i, p := range pages[prev:cut] {
			if err := shard[(prev+i)%shards].Page(p); err != nil {
				t.Fatal(err)
			}
			if err := seq.Page(p); err != nil {
				t.Fatal(err)
			}
		}
		prev = cut
		// Merge the live shards into a fresh collector — repeatedly, one
		// merge per cut, shards never reset.
		merged := NewCollector()
		for _, sh := range shard {
			merged.MergeCloned(sh)
		}
		got, want := collectorFingerprint(merged), collectorFingerprint(seq)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: merged state diverges from sequential fold\ngot  %+v\nwant %+v", cut, got, want)
		}
	}

	// Destructive-merge cross-check: Merge over clones of nothing — the
	// classic batch path — must agree with MergeCloned's answer.
	adopted := NewCollector()
	fresh := make([]*Collector, shards)
	for i := range fresh {
		fresh[i] = NewCollector()
	}
	for i, p := range pages {
		if err := fresh[i%shards].Page(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, sh := range fresh {
		adopted.Merge(sh)
	}
	if !reflect.DeepEqual(collectorFingerprint(adopted), collectorFingerprint(seq)) {
		t.Fatal("destructive Merge diverges from sequential fold")
	}
}

// TestResetMatchesFresh pins the recycle contract: a Reset collector is
// indistinguishable from a brand-new one — including after it has
// accumulated state, so retained (zeroed-in-place) histograms and map
// buckets never leak previous contents into the next accumulation.
func TestResetMatchesFresh(t *testing.T) {
	var pages []*ledger.Page
	_, err := synth.Generate(synth.Config{
		Payments: 3000, Seed: 19, SkipSignatures: true,
	}, func(p *ledger.Page) error {
		pages = append(pages, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	half := len(pages) / 2

	recycled := NewCollector()
	for _, p := range pages[:half] {
		if err := recycled.Page(p); err != nil {
			t.Fatal(err)
		}
	}
	recycled.Reset()
	if !reflect.DeepEqual(collectorFingerprint(recycled), collectorFingerprint(NewCollector())) {
		t.Fatal("reset collector differs from a fresh one")
	}

	fresh := NewCollector()
	for _, p := range pages[half:] {
		if err := recycled.Page(p); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Page(p); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(collectorFingerprint(recycled), collectorFingerprint(fresh)) {
		t.Fatal("accumulation after Reset diverges from a fresh collector")
	}
	// The recycle loop the sharded view runs: Reset + MergeCloned must
	// also round-trip.
	recycled.Reset()
	recycled.MergeCloned(fresh)
	if !reflect.DeepEqual(collectorFingerprint(recycled), collectorFingerprint(fresh)) {
		t.Fatal("Reset+MergeCloned diverges from the merge source")
	}
}
