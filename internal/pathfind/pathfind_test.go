package pathfind

import (
	"errors"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/orderbook"
	"ripplestudy/internal/trustgraph"
)

func acct(seed uint64) addr.AccountID { return addr.KeyPairFromSeed(seed).AccountID() }

func val(s string) amount.Value { return amount.MustParse(s) }

func usd(s string) amount.Amount { return amount.New(amount.USD, val(s)) }

// figure1 builds the paper's Figure 1: A trusts B for 10 USD, B trusts C
// for 20 USD, so C can pay A up to 10 USD through B.
func figure1(t *testing.T) (*trustgraph.Graph, addr.AccountID, addr.AccountID, addr.AccountID) {
	t.Helper()
	g := trustgraph.New()
	a, b, c := acct(1), acct(2), acct(3)
	if err := g.SetTrust(a, b, amount.USD, val("10")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTrust(b, c, amount.USD, val("20")); err != nil {
		t.Fatal(err)
	}
	return g, a, b, c
}

func TestFigure1Payment(t *testing.T) {
	g, a, b, c := figure1(t)
	f := New(g, orderbook.New())
	plan, err := f.FindPayment(c, a, amount.USD, usd("10"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Delivered.Cmp(val("10")) != 0 {
		t.Errorf("delivered %s, want 10", plan.Delivered)
	}
	if len(plan.Paths) != 1 || plan.Paths[0].Hops != 1 {
		t.Errorf("paths = %+v, want one path through B (1 hop)", plan.Paths)
	}
	if len(plan.TrustFlows) != 2 {
		t.Fatalf("flows = %d, want 2 (C→B, B→A)", len(plan.TrustFlows))
	}
	if plan.TrustFlows[0].From != c || plan.TrustFlows[0].To != b {
		t.Error("first flow is not C→B")
	}
	if plan.TrustFlows[1].From != b || plan.TrustFlows[1].To != a {
		t.Error("second flow is not B→A")
	}
	if plan.UsedBridge {
		t.Error("pure trust path marked as bridged")
	}
}

func TestFigure1CapacityLimit(t *testing.T) {
	g, a, _, c := figure1(t)
	f := New(g, orderbook.New())
	// More than A's trust in B: impossible.
	if _, err := f.FindPayment(c, a, amount.USD, usd("15")); !errors.Is(err, ErrNoPath) {
		// Partial delivery yields a plan below the request; the planner
		// reports it, and the engine rejects it. Either way 15 must not
		// be fully deliverable.
		plan, err2 := f.FindPayment(c, a, amount.USD, usd("15"))
		if err2 == nil && plan.Delivered.Cmp(val("15")) >= 0 {
			t.Errorf("delivered %s over a 10-capacity path", plan.Delivered)
		}
		_ = err
	}
}

func TestDirectTrustPayment(t *testing.T) {
	g := trustgraph.New()
	a, b := acct(1), acct(2)
	if err := g.SetTrust(a, b, amount.USD, val("100")); err != nil {
		t.Fatal(err)
	}
	f := New(g, orderbook.New())
	plan, err := f.FindPayment(b, a, amount.USD, usd("40"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Paths[0].Hops != 0 {
		t.Errorf("direct payment hops = %d, want 0", plan.Paths[0].Hops)
	}
}

func TestParallelPathSplitting(t *testing.T) {
	// Diamond: s→{m1,m2}→d, each branch capacity 5; paying 8 needs both.
	g := trustgraph.New()
	s, m1, m2, d := acct(1), acct(2), acct(3), acct(4)
	for _, edge := range []struct{ truster, trustee addr.AccountID }{
		{m1, s}, {m2, s}, {d, m1}, {d, m2},
	} {
		if err := g.SetTrust(edge.truster, edge.trustee, amount.USD, val("5")); err != nil {
			t.Fatal(err)
		}
	}
	f := New(g, orderbook.New())
	plan, err := f.FindPayment(s, d, amount.USD, usd("8"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Delivered.Cmp(val("8")) != 0 {
		t.Fatalf("delivered %s, want 8", plan.Delivered)
	}
	if len(plan.Paths) != 2 {
		t.Fatalf("parallel paths = %d, want 2", len(plan.Paths))
	}
	for _, p := range plan.Paths {
		if p.Hops != 1 {
			t.Errorf("path hops = %d, want 1", p.Hops)
		}
	}
}

func TestMaxPathsBound(t *testing.T) {
	// 8 disjoint 1-hop branches of capacity 1; with MaxPaths(3) only 3
	// can be used.
	g := trustgraph.New()
	s, d := acct(100), acct(101)
	for i := uint64(0); i < 8; i++ {
		m := acct(10 + i)
		if err := g.SetTrust(m, s, amount.USD, val("1")); err != nil {
			t.Fatal(err)
		}
		if err := g.SetTrust(d, m, amount.USD, val("1")); err != nil {
			t.Fatal(err)
		}
	}
	f := New(g, orderbook.New(), WithMaxPaths(3))
	plan, err := f.FindPayment(s, d, amount.USD, usd("8"))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Paths) != 3 {
		t.Errorf("paths = %d, want 3 (bounded)", len(plan.Paths))
	}
	if plan.Delivered.Cmp(val("3")) != 0 {
		t.Errorf("delivered %s, want 3", plan.Delivered)
	}
}

func TestMaxHopsBound(t *testing.T) {
	// Chain with 4 intermediaries; MaxHops(3) cannot reach.
	g := trustgraph.New()
	nodes := []addr.AccountID{acct(1), acct(2), acct(3), acct(4), acct(5), acct(6)}
	for i := 0; i+1 < len(nodes); i++ {
		// value flows nodes[i] → nodes[i+1], so nodes[i+1] trusts nodes[i]
		if err := g.SetTrust(nodes[i+1], nodes[i], amount.USD, val("10")); err != nil {
			t.Fatal(err)
		}
	}
	short := New(g, orderbook.New(), WithMaxHops(3))
	if _, err := short.FindPayment(nodes[0], nodes[5], amount.USD, usd("1")); !errors.Is(err, ErrNoPath) {
		t.Errorf("4-intermediary path found with MaxHops=3: %v", err)
	}
	long := New(g, orderbook.New(), WithMaxHops(4))
	plan, err := long.FindPayment(nodes[0], nodes[5], amount.USD, usd("1"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Paths[0].Hops != 4 {
		t.Errorf("hops = %d, want 4", plan.Paths[0].Hops)
	}
}

func TestNoPath(t *testing.T) {
	g := trustgraph.New()
	a, b := acct(1), acct(2)
	if err := g.SetTrust(a, b, amount.USD, val("10")); err != nil {
		t.Fatal(err)
	}
	f := New(g, orderbook.New())
	// Wrong direction: B never trusted A.
	if _, err := f.FindPayment(a, b, amount.USD, usd("1")); !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
	// Disconnected destination.
	if _, err := f.FindPayment(a, acct(99), amount.USD, usd("1")); !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestFindPaymentValidation(t *testing.T) {
	f := New(trustgraph.New(), orderbook.New())
	if _, err := f.FindPayment(acct(1), acct(1), amount.USD, usd("1")); err == nil {
		t.Error("self-payment accepted")
	}
	if _, err := f.FindPayment(acct(1), acct(2), amount.USD, usd("0")); err == nil {
		t.Error("zero payment accepted")
	}
}

// crossSetup builds: sender src holds EUR trust route to market maker mm;
// mm sells USD for EUR; destination dst trusts mm in USD.
func crossSetup(t *testing.T) (*Finder, addr.AccountID, addr.AccountID, addr.AccountID) {
	t.Helper()
	g := trustgraph.New()
	books := orderbook.New()
	src, mm, dst := acct(1), acct(2), acct(3)
	// src can move EUR to mm: mm trusts src in EUR.
	if err := g.SetTrust(mm, src, amount.EUR, val("1000")); err != nil {
		t.Fatal(err)
	}
	// mm can move USD to dst: dst trusts mm in USD.
	if err := g.SetTrust(dst, mm, amount.USD, val("1000")); err != nil {
		t.Fatal(err)
	}
	// mm's offer: sells 100 USD for 90 EUR (taker pays EUR, gets USD).
	err := books.Place(&orderbook.Offer{
		Owner: mm, Seq: 1,
		Pays: amount.New(amount.EUR, val("90")),
		Gets: amount.New(amount.USD, val("100")),
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(g, books), src, mm, dst
}

func TestCrossCurrencyDirectBook(t *testing.T) {
	f, src, mm, dst := crossSetup(t)
	plan, err := f.FindPayment(src, dst, amount.EUR, usd("50"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Delivered.Cmp(val("50")) != 0 {
		t.Errorf("delivered %s, want 50", plan.Delivered)
	}
	// 50 USD at 0.9 EUR/USD = 45 EUR.
	if plan.SourceCost.Cmp(val("45")) != 0 {
		t.Errorf("source cost %s EUR, want 45", plan.SourceCost)
	}
	if !plan.UsedBridge {
		t.Error("cross-currency plan not marked as bridged")
	}
	if len(plan.Quotes) != 1 {
		t.Fatalf("quotes = %d, want 1", len(plan.Quotes))
	}
	if plan.Quotes[0].Fills[0].Offer.Owner != mm {
		t.Error("bridge offer not the market maker's")
	}
	// The market maker appears as an intermediate hop.
	if len(plan.Paths) != 1 || plan.Paths[0].Hops < 1 {
		t.Errorf("paths = %+v, want the MM as intermediate hop", plan.Paths)
	}
}

func TestCrossCurrencyInsufficientBook(t *testing.T) {
	f, src, _, dst := crossSetup(t)
	// The book only has 100 USD of liquidity.
	if _, err := f.FindPayment(src, dst, amount.EUR, usd("150")); !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath for oversize conversion", err)
	}
}

func TestCrossCurrencyNeedsTrustLegs(t *testing.T) {
	// Book exists but src has no trust route to the MM: plan must fail.
	g := trustgraph.New()
	books := orderbook.New()
	src, mm, dst := acct(1), acct(2), acct(3)
	if err := g.SetTrust(dst, mm, amount.USD, val("1000")); err != nil {
		t.Fatal(err)
	}
	err := books.Place(&orderbook.Offer{
		Owner: mm, Seq: 1,
		Pays: amount.New(amount.EUR, val("90")),
		Gets: amount.New(amount.USD, val("100")),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := New(g, books)
	if _, err := f.FindPayment(src, dst, amount.EUR, usd("10")); !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath without a source trust leg", err)
	}
}

func TestAutoBridgeViaXRP(t *testing.T) {
	// No direct EUR→USD book; instead EUR→XRP and XRP→USD books exist.
	g := trustgraph.New()
	books := orderbook.New()
	src, mm1, mm2, dst := acct(1), acct(2), acct(3), acct(4)
	if err := g.SetTrust(mm1, src, amount.EUR, val("1000")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTrust(dst, mm2, amount.USD, val("1000")); err != nil {
		t.Fatal(err)
	}
	// mm1 sells XRP for EUR: taker pays EUR, gets XRP. 1 EUR = 100 XRP.
	err := books.Place(&orderbook.Offer{
		Owner: mm1, Seq: 1,
		Pays: amount.New(amount.EUR, val("100")),
		Gets: amount.New(amount.XRP, val("10000")),
	})
	if err != nil {
		t.Fatal(err)
	}
	// mm2 sells USD for XRP: taker pays XRP, gets USD. 100 XRP = 1 USD.
	err = books.Place(&orderbook.Offer{
		Owner: mm2, Seq: 1,
		Pays: amount.New(amount.XRP, val("20000")),
		Gets: amount.New(amount.USD, val("200")),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := New(g, books)
	plan, err := f.FindPayment(src, dst, amount.EUR, usd("50"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Delivered.Cmp(val("50")) != 0 {
		t.Errorf("delivered %s, want 50", plan.Delivered)
	}
	if len(plan.Quotes) != 2 {
		t.Fatalf("quotes = %d, want 2 (auto-bridge)", len(plan.Quotes))
	}
	// 50 USD needs 5000 XRP, which needs 50 EUR.
	if plan.SourceCost.Cmp(val("50")) != 0 {
		t.Errorf("source cost %s EUR, want 50", plan.SourceCost)
	}
}

func TestSameCurrencyBridgeFallback(t *testing.T) {
	// No USD trust path from src to dst at all: src reaches only mm1
	// and dst trusts only mm2. USD↔XRP books at the two market makers
	// let offers carry the payment (sell USD for XRP at mm1, buy USD
	// back at mm2) — the paper's "exchange offers make up for the lack
	// of direct trust".
	g := trustgraph.New()
	books := orderbook.New()
	src, mm1, mm2, dst := acct(1), acct(2), acct(3), acct(4)
	if err := g.SetTrust(mm1, src, amount.USD, val("1000")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTrust(dst, mm2, amount.USD, val("1000")); err != nil {
		t.Fatal(err)
	}
	// mm1 sells XRP for USD (entry leg: taker pays USD, gets XRP).
	err := books.Place(&orderbook.Offer{
		Owner: mm1, Seq: 1,
		Pays: amount.New(amount.USD, val("100")),
		Gets: amount.New(amount.XRP, val("10000")),
	})
	if err != nil {
		t.Fatal(err)
	}
	// mm2 sells USD for XRP (exit leg: taker pays XRP, gets USD).
	err = books.Place(&orderbook.Offer{
		Owner: mm2, Seq: 1,
		Pays: amount.New(amount.XRP, val("10000")),
		Gets: amount.New(amount.USD, val("100")),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := New(g, books)
	plan, err := f.FindPayment(src, dst, amount.USD, usd("10"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Delivered.Cmp(val("10")) != 0 {
		t.Fatalf("delivered %s, want 10", plan.Delivered)
	}
	if !plan.UsedBridge {
		t.Error("fallback plan not marked as bridged")
	}
	if len(plan.Quotes) != 2 {
		t.Errorf("quotes = %d, want 2 (USD→XRP→USD)", len(plan.Quotes))
	}
}

func TestPlannerDoesNotMutate(t *testing.T) {
	g, a, b, c := figure1(t)
	books := orderbook.New()
	f := New(g, books)
	before := g.Capacity(c, b, amount.USD)
	if _, err := f.FindPayment(c, a, amount.USD, usd("10")); err != nil {
		t.Fatal(err)
	}
	after := g.Capacity(c, b, amount.USD)
	if before.Cmp(after) != 0 {
		t.Errorf("planning mutated capacity: %s -> %s", before, after)
	}
	_ = b
}
