// Command deanon runs the paper's §V de-anonymization study over a
// ledgerstore directory: it prints the Table I rounding specification,
// computes the Figure 3 information gain for all ten resolution tuples,
// and then demonstrates the attack on randomly drawn payments —
// reporting how often a single (possibly coarsened) observation
// identifies the sender uniquely.
//
//	deanon -store ./history -samples 1000
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"ripplestudy/internal/core"
	"ripplestudy/internal/deanon"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/ledgerstore"
)

func main() {
	storeDir := flag.String("store", "history", "ledgerstore directory")
	samples := flag.Int("samples", 1000, "observations to attack in the demo")
	seed := flag.Int64("seed", 1, "seed for observation sampling")
	workers := flag.Int("workers", 0, "parallel scan/study workers (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(*storeDir, *samples, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "deanon:", err)
		os.Exit(1)
	}
}

func run(storeDir string, samples int, seed int64, workers int) error {
	fmt.Println("Table I — rounding resolutions per currency-strength group:")
	for _, row := range core.TableI() {
		fmt.Println("  " + row)
	}

	ds, err := core.OpenDataset(storeDir)
	if err != nil {
		return err
	}
	ds.SetWorkers(workers)
	rows, err := ds.Figure3()
	if err != nil {
		return err
	}
	fmt.Println("\nFigure 3 — information gain per resolution tuple:")
	for _, r := range rows {
		pct := 100 * r.IG
		fmt.Printf("  %-16s %6.2f%%  (%d unique of %d)  %s\n",
			r.Resolution, pct, r.Unique, r.Total, strings.Repeat("#", int(pct/2.5)))
	}

	imp, fullIG, err := ds.FeatureImportance(context.Background(), workers)
	if err != nil {
		return err
	}
	fmt.Printf("\nFeature importance (full-resolution IG %.2f%%), strongest first:\n", 100*fullIG)
	fmt.Printf("  %-12s %12s %12s %12s\n", "feature", "alone", "dropped", "marginal")
	for _, fi := range imp {
		fmt.Printf("  %-12s %11.2f%% %11.2f%% %11.2f%%\n",
			fi.Feature, 100*fi.Alone, 100*fi.Dropped, 100*(fullIG-fi.Dropped))
	}

	// Attack demo: build the attacker's index at full resolution, then
	// sample payments and query with the sender blinded.
	store, err := ledgerstore.Open(storeDir)
	if err != nil {
		return err
	}
	res := deanon.Figure3Rows[0] // ⟨Am;Tsc;C;D⟩
	idx := deanon.NewIndex(res)
	var reservoir []deanon.Features
	rng := rand.New(rand.NewSource(seed))
	n := 0
	err = store.Transactions(func(p *ledger.Page, tx *ledger.Tx, m *ledger.TxMeta) error {
		f, ok := deanon.FromTransaction(p, tx, m)
		if !ok {
			return nil
		}
		idx.Add(f)
		n++
		// Reservoir-sample the observations to attack.
		if len(reservoir) < samples {
			reservoir = append(reservoir, f)
		} else if j := rng.Intn(n); j < samples {
			reservoir[j] = f
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Clustering (the paper's §D / related-work [10] heuristic): link
	// accounts activated by the same funder.
	clusterer := deanon.NewClusterer()
	if err := store.Pages(clusterer.Page); err != nil {
		return err
	}
	clusters := clusterer.Clusters(2)
	fmt.Printf("\nActivation clustering: %d multi-account clusters", len(clusters))
	if len(clusters) > 0 {
		fmt.Printf("; largest links %d accounts through %s",
			len(clusters[0].Accounts), clusters[0].Activator.Short())
	}
	fmt.Println()
	fmt.Println("(de-anonymizing any member exposes the whole cluster's history)")

	unique, hit := 0, 0
	for _, obs := range reservoir {
		truth := obs.Sender
		blinded := obs
		blinded.Sender = [20]byte{}
		cands := idx.Candidates(blinded)
		if len(cands) == 1 {
			unique++
			if cands[0] == truth {
				hit++
			}
		}
	}
	fmt.Printf("\nAttack demo at %s over %d sampled observations:\n", res, len(reservoir))
	fmt.Printf("  uniquely identified: %d (%.1f%%); all unique identifications correct: %v\n",
		unique, 100*float64(unique)/float64(len(reservoir)), unique == hit)
	fmt.Println("\nAnyone who overhears a single payment can, with this probability,")
	fmt.Println("link it to the sender's account — and thus to the account's entire")
	fmt.Println("past and future financial history on the public ledger.")
	return nil
}
