// Package netstream carries the validation stream over TCP as
// newline-delimited, checksummed JSON frames. It reproduces the paper's
// data-collection setup: "we needed to collect real-time information on
// the consensus rounds and the validation process in the system. We did
// so by setting up a Ripple server that made use of the Ripple's
// validation stream."
//
// A Server attached to a consensus.Network publishes every validation
// and ledger-close event to all connected subscribers; a Client is the
// collection server that consumes them. The paper's collection windows
// span two weeks, so the transport is built to survive the faults such
// a window sees in practice:
//
//   - Every published event carries a monotonically increasing stream
//     sequence number; the server keeps a bounded replay ring so a
//     subscriber that reconnects can resume from the last sequence it
//     saw (wire handshake: the client's first line is a JSON hello
//     {"resume_after": N}).
//   - Each wire frame is "crc32hex SP json LF"; a corrupted or
//     truncated frame fails its checksum and is skipped (and counted),
//     never parsed into a bogus event.
//   - Each subscriber owns a bounded queue drained by its own writer
//     goroutine, so one slow or stalled peer cannot delay Publish or
//     other subscribers. Overflow drops the oldest queued frame and is
//     counted per subscriber; the dropped range surfaces client-side as
//     a sequence gap, which a ResilientClient repairs from the ring.
package netstream

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ripplestudy/internal/consensus"
)

// Defaults for server tunables; override with Options.
const (
	DefaultReplayRing   = 8192
	DefaultQueueSize    = 1024
	DefaultWriteTimeout = 5 * time.Second
	DefaultHelloTimeout = 10 * time.Second
)

// hello is the first line a subscriber sends after connecting.
type hello struct {
	// ResumeAfter asks the server to replay buffered events with a
	// stream sequence strictly greater than this value (0 = from the
	// oldest the ring still holds).
	ResumeAfter uint64 `json:"resume_after"`
}

// frame is one encoded wire line plus the sequence it carries.
type frame struct {
	seq  uint64
	line []byte
}

// encodeFrame renders an event as "crc32hex SP json LF".
func encodeFrame(ev consensus.Event) ([]byte, error) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(payload))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// decodeFrame parses a wire line. ok is false for any malformed,
// corrupted, or truncated frame.
func decodeFrame(line []byte) (ev consensus.Event, ok bool) {
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	if len(line) < 10 || line[8] != ' ' {
		return ev, false
	}
	crc, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return ev, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != uint32(crc) {
		return ev, false
	}
	if json.Unmarshal(payload, &ev) != nil {
		return ev, false
	}
	return ev, true
}

// subscriber is one connected consumer with its own bounded queue and
// writer goroutine.
type subscriber struct {
	conn net.Conn
	// replay holds the ring snapshot owed to this subscriber; it is
	// written before any live frame and owned solely by the writer.
	replay []frame
	ch     chan frame

	replayed   atomic.Bool // replay fully written
	dropped    uint64      // frames dropped from ch (guarded by Server.mu)
	registered time.Time
}

// SubscriberStats describes one live subscriber.
type SubscriberStats struct {
	RemoteAddr string
	// Dropped counts frames evicted from this subscriber's queue
	// because it could not keep up.
	Dropped uint64
	// Queued is the current queue depth.
	Queued int
}

// ServerStats aggregates a server's lifetime counters.
type ServerStats struct {
	// Published counts events accepted by Publish.
	Published uint64
	// Replayed counts frames scheduled for resume replays.
	Replayed uint64
	// Dropped counts frames dropped across all subscriber queues
	// (including subscribers since evicted).
	Dropped uint64
	// Evicted counts subscribers removed after write failures.
	Evicted uint64
	// Served counts subscribers that completed the handshake.
	Served uint64
	// Subscribers is the current subscriber count.
	Subscribers int
	// LastSeq is the highest stream sequence published.
	LastSeq uint64
}

// Option configures a Server.
type Option func(*Server)

// WithReplayRing sets how many recent frames the server retains for
// resume replays.
func WithReplayRing(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.ringCap = n
		}
	}
}

// WithQueueSize bounds each subscriber's live-frame queue.
func WithQueueSize(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.queueCap = n
		}
	}
}

// WithWriteTimeout bounds each write to a subscriber connection; a
// stalled peer is evicted when it trips.
func WithWriteTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.writeTimeout = d
		}
	}
}

// WithHelloTimeout bounds how long a new connection may take to send
// its hello line.
func WithHelloTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.helloTimeout = d
		}
	}
}

// WithListenerWrapper installs a wrapper around the TCP listener —
// the hook faultnet uses to inject faults into every subscriber
// connection.
func WithListenerWrapper(wrap func(net.Listener) net.Listener) Option {
	return func(s *Server) { s.wrapListener = wrap }
}

// Server publishes consensus events to TCP subscribers.
type Server struct {
	ln           net.Listener
	wrapListener func(net.Listener) net.Listener

	ringCap      int
	queueCap     int
	writeTimeout time.Duration
	helloTimeout time.Duration

	mu        sync.Mutex
	subs      map[*subscriber]struct{}
	pending   map[net.Conn]struct{} // conns mid-handshake
	closed    bool
	seq       uint64
	ring      []frame
	ringStart int
	ringLen   int
	stats     ServerStats

	wg sync.WaitGroup
}

// Serve starts a server listening on address (use "127.0.0.1:0" for an
// ephemeral port).
func Serve(address string, opts ...Option) (*Server, error) {
	s := &Server{
		ringCap:      DefaultReplayRing,
		queueCap:     DefaultQueueSize,
		writeTimeout: DefaultWriteTimeout,
		helloTimeout: DefaultHelloTimeout,
		subs:         make(map[*subscriber]struct{}),
		pending:      make(map[net.Conn]struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	ln, err := net.Listen("tcp", address)
	if err != nil {
		return nil, fmt.Errorf("netstream: listen: %w", err)
	}
	if s.wrapListener != nil {
		ln = s.wrapListener(ln)
	}
	s.ln = ln
	s.ring = make([]frame, s.ringCap)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.pending[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handshake(conn)
	}
}

// handshake reads the subscriber's hello line, snapshots the replay it
// is owed, registers it, and starts its writer.
func (s *Server) handshake(conn net.Conn) {
	defer s.wg.Done()
	_ = conn.SetReadDeadline(time.Now().Add(s.helloTimeout))
	var h hello
	line, err := bufio.NewReaderSize(conn, 1024).ReadBytes('\n')
	if err != nil || json.Unmarshal(line, &h) != nil {
		s.mu.Lock()
		delete(s.pending, conn)
		s.mu.Unlock()
		conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	s.mu.Lock()
	delete(s.pending, conn)
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	sub := &subscriber{
		conn:       conn,
		replay:     s.ringAfterLocked(h.ResumeAfter),
		ch:         make(chan frame, s.queueCap),
		registered: time.Now(),
	}
	s.stats.Replayed += uint64(len(sub.replay))
	s.stats.Served++
	s.subs[sub] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	go s.writeLoop(sub)
}

// ringAfterLocked snapshots buffered frames with seq > after, oldest
// first. Caller holds s.mu.
func (s *Server) ringAfterLocked(after uint64) []frame {
	var out []frame
	for i := 0; i < s.ringLen; i++ {
		f := s.ring[(s.ringStart+i)%s.ringCap]
		if f.seq > after {
			out = append(out, f)
		}
	}
	return out
}

// ringAppendLocked adds a frame to the replay ring, evicting the oldest
// when full. Caller holds s.mu.
func (s *Server) ringAppendLocked(f frame) {
	if s.ringLen < s.ringCap {
		s.ring[(s.ringStart+s.ringLen)%s.ringCap] = f
		s.ringLen++
		return
	}
	s.ring[s.ringStart] = f
	s.ringStart = (s.ringStart + 1) % s.ringCap
}

// writeLoop drains one subscriber's replay and queue, flushing whenever
// the queue runs empty. A failed or timed-out write evicts the
// subscriber without affecting anyone else.
func (s *Server) writeLoop(sub *subscriber) {
	defer s.wg.Done()
	bw := bufio.NewWriterSize(sub.conn, 1<<15)
	write := func(f frame) bool {
		_ = sub.conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		if _, err := bw.Write(f.line); err != nil {
			return false
		}
		return true
	}
	fail := func() {
		sub.conn.Close()
		s.mu.Lock()
		if _, ok := s.subs[sub]; ok {
			delete(s.subs, sub)
			s.stats.Evicted++
		}
		s.mu.Unlock()
	}
	for _, f := range sub.replay {
		if !write(f) {
			sub.replayed.Store(true)
			fail()
			return
		}
	}
	sub.replay = nil
	_ = sub.conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
	if err := bw.Flush(); err != nil {
		sub.replayed.Store(true)
		fail()
		return
	}
	sub.replayed.Store(true)
	for {
		f, ok := <-sub.ch
		if !ok {
			// Server shutdown: the channel was closed after draining
			// publishes; flush what remains and hang up.
			_ = sub.conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
			_ = bw.Flush()
			sub.conn.Close()
			return
		}
		if !write(f) {
			fail()
			return
		}
		if len(sub.ch) == 0 {
			_ = sub.conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
			if err := bw.Flush(); err != nil {
				fail()
				return
			}
		}
	}
}

// Publish sends the event to every connected subscriber. It never
// blocks on a slow subscriber: each subscriber has a bounded queue and
// overflow drops that subscriber's oldest queued frame (counted in its
// SubscriberStats). Events with StreamSeq zero are assigned the next
// server sequence. Safe for concurrent use.
func (s *Server) Publish(ev consensus.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if ev.StreamSeq == 0 {
		s.seq++
		ev.StreamSeq = s.seq
	} else if ev.StreamSeq > s.seq {
		s.seq = ev.StreamSeq
	}
	line, err := encodeFrame(ev)
	if err != nil {
		// Events are plain data; marshalling cannot fail in practice.
		return
	}
	f := frame{seq: ev.StreamSeq, line: line}
	s.ringAppendLocked(f)
	s.stats.Published++
	s.stats.LastSeq = s.seq
	for sub := range s.subs {
		select {
		case sub.ch <- f:
			continue
		default:
		}
		// Queue full: drop the oldest queued frame to make room. The
		// subscriber sees the loss as a sequence gap it can repair.
		select {
		case <-sub.ch:
			sub.dropped++
			s.stats.Dropped++
		default:
		}
		select {
		case sub.ch <- f:
		default:
			sub.dropped++
			s.stats.Dropped++
		}
	}
}

// queuesDrainedLocked reports whether every subscriber has finished its
// replay and emptied its queue. Caller holds s.mu.
func (s *Server) queuesDrainedLocked() bool {
	for sub := range s.subs {
		if !sub.replayed.Load() || len(sub.ch) > 0 {
			return false
		}
	}
	return true
}

// Flush waits (bounded) until every subscriber's queue has drained;
// writers flush their buffers whenever their queue runs empty. Kept for
// API compatibility with the blocking-writer implementation.
func (s *Server) Flush() {
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		drained := s.queuesDrainedLocked()
		s.mu.Unlock()
		if drained || time.Now().After(deadline) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// NumSubscribers reports the current subscriber count.
func (s *Server) NumSubscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Stats returns the server's aggregate counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Subscribers = len(s.subs)
	return st
}

// Subscribers returns per-subscriber queue statistics.
func (s *Server) Subscribers() []SubscriberStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SubscriberStats, 0, len(s.subs))
	for sub := range s.subs {
		out = append(out, SubscriberStats{
			RemoteAddr: sub.conn.RemoteAddr().String(),
			Dropped:    sub.dropped,
			Queued:     len(sub.ch),
		})
	}
	return out
}

// Close stops accepting, drains subscriber queues, and closes all
// connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for sub := range s.subs {
		// Writers drain the remaining buffered frames from a closed
		// channel before seeing it closed, then flush and hang up.
		close(sub.ch)
		delete(s.subs, sub)
	}
	for conn := range s.pending {
		conn.Close()
		delete(s.pending, conn)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client consumes a validation stream.
type Client struct {
	conn net.Conn
	r    *bufio.Reader

	// readTimeout bounds each read; on expiry the read is retried
	// (after a context check) rather than failed, so it acts as the
	// cancellation poll interval.
	readTimeout time.Duration
	// stallAfter, when nonzero, fails the stream with ErrStalled if no
	// complete frame arrives for that long.
	stallAfter time.Duration

	badFrames atomic.Uint64
}

// Dial connects to a stream server and subscribes from the present
// moment (no replay).
func Dial(address string) (*Client, error) {
	return DialResume(address, 0, 0)
}

// DialResume connects and asks the server to replay buffered events
// with stream sequence greater than resumeAfter. A zero timeout means
// no dial timeout.
func DialResume(address string, resumeAfter uint64, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", address, timeout)
	if err != nil {
		return nil, fmt.Errorf("netstream: dial: %w", err)
	}
	h, _ := json.Marshal(hello{ResumeAfter: resumeAfter})
	h = append(h, '\n')
	if timeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	if _, err := conn.Write(h); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netstream: hello: %w", err)
	}
	_ = conn.SetWriteDeadline(time.Time{})
	return &Client{conn: conn, r: bufio.NewReaderSize(conn, 1<<15)}, nil
}

// ErrStop can be returned from an Events callback to stop consumption
// without error.
var ErrStop = errors.New("netstream: stop")

// ErrRead marks transport-level read failures, as opposed to callback
// errors; a ResilientClient reconnects on it.
var ErrRead = errors.New("netstream: read")

// ErrStalled reports that the stream delivered no complete frame
// within the configured stall window.
var ErrStalled = fmt.Errorf("%w: stream stalled", ErrRead)

// BadFrames returns how many malformed, corrupted, or truncated frames
// the client has skipped.
func (c *Client) BadFrames() uint64 { return c.badFrames.Load() }

// Events reads events until the stream closes or fn returns an error.
// Returning ErrStop stops cleanly. Corrupt frames are skipped and
// counted in BadFrames rather than aborting the stream.
func (c *Client) Events(fn func(consensus.Event) error) error {
	return c.EventsContext(context.Background(), fn)
}

// EventsContext is Events with cancellation and per-read deadlines:
// the context is checked at least every readTimeout (when configured),
// and a nonzero stall window fails the stream with ErrStalled when no
// frame completes in time.
func (c *Client) EventsContext(ctx context.Context, fn func(consensus.Event) error) error {
	var pending []byte
	lastFrame := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if c.readTimeout > 0 {
			_ = c.conn.SetReadDeadline(time.Now().Add(c.readTimeout))
		}
		chunk, err := c.r.ReadBytes('\n')
		pending = append(pending, chunk...)
		if len(pending) > 0 && pending[len(pending)-1] == '\n' {
			ev, ok := decodeFrame(pending)
			pending = pending[:0]
			if !ok {
				c.badFrames.Add(1)
			} else {
				lastFrame = time.Now()
				if ferr := fn(ev); ferr != nil {
					if errors.Is(ferr, ErrStop) {
						return nil
					}
					return ferr
				}
			}
		}
		if err == nil {
			continue
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if c.stallAfter > 0 && time.Since(lastFrame) > c.stallAfter {
				return ErrStalled
			}
			continue
		}
		if len(pending) > 0 {
			// Truncated final line (mid-frame disconnect).
			c.badFrames.Add(1)
		}
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("%w: %v", ErrRead, err)
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
