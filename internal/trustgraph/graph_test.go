package trustgraph

import (
	"math/rand"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
)

func acct(seed uint64) addr.AccountID { return addr.KeyPairFromSeed(seed).AccountID() }

func val(s string) amount.Value { return amount.MustParse(s) }

func TestSetTrustAndCapacity(t *testing.T) {
	g := New()
	a, b := acct(1), acct(2)

	// "A trusts B for 10 USD" limits payments from B to A to 10 USD.
	if err := g.SetTrust(a, b, amount.USD, val("10")); err != nil {
		t.Fatal(err)
	}
	if got := g.Capacity(b, a, amount.USD); got.Cmp(val("10")) != 0 {
		t.Errorf("capacity B→A = %s, want 10", got)
	}
	if got := g.Capacity(a, b, amount.USD); !got.IsZero() {
		t.Errorf("capacity A→B = %s, want 0 (no trust from B, no debt)", got)
	}
	if got := g.Trust(a, b, amount.USD); got.Cmp(val("10")) != 0 {
		t.Errorf("Trust(a,b) = %s, want 10", got)
	}
	if got := g.Trust(b, a, amount.USD); !got.IsZero() {
		t.Errorf("Trust(b,a) = %s, want 0", got)
	}
}

func TestSetTrustValidation(t *testing.T) {
	g := New()
	a, b := acct(1), acct(2)
	if err := g.SetTrust(a, b, amount.XRP, val("10")); err == nil {
		t.Error("XRP trust-line accepted")
	}
	if err := g.SetTrust(a, a, amount.USD, val("10")); err == nil {
		t.Error("self-trust accepted")
	}
	if err := g.SetTrust(a, b, amount.USD, val("-1")); err == nil {
		t.Error("negative limit accepted")
	}
}

func TestApplyFlowAndOwed(t *testing.T) {
	g := New()
	a, b := acct(1), acct(2)
	if err := g.SetTrust(a, b, amount.USD, val("10")); err != nil {
		t.Fatal(err)
	}
	// B pays A 4.5 USD: B's debt to A grows.
	if err := g.ApplyFlow(b, a, amount.USD, val("4.5")); err != nil {
		t.Fatal(err)
	}
	if got := g.Owed(a, b, amount.USD); got.Cmp(val("4.5")) != 0 {
		t.Errorf("B owes A %s, want 4.5", got)
	}
	if got := g.Owed(b, a, amount.USD); !got.IsZero() {
		t.Errorf("A owes B %s, want 0", got)
	}
	// Remaining capacity B→A is reduced; reverse capacity is the debt.
	if got := g.Capacity(b, a, amount.USD); got.Cmp(val("5.5")) != 0 {
		t.Errorf("capacity B→A = %s, want 5.5", got)
	}
	if got := g.Capacity(a, b, amount.USD); got.Cmp(val("4.5")) != 0 {
		t.Errorf("capacity A→B = %s, want 4.5 (debt pay-down)", got)
	}
	// Paying back more than the debt fails without reverse trust.
	if err := g.ApplyFlow(a, b, amount.USD, val("5")); err == nil {
		t.Error("overflow flow accepted")
	}
	// Paying down exactly the debt works.
	if err := g.ApplyFlow(a, b, amount.USD, val("4.5")); err != nil {
		t.Fatal(err)
	}
	if got := g.Owed(a, b, amount.USD); !got.IsZero() {
		t.Errorf("after pay-down B owes A %s, want 0", got)
	}
}

func TestApplyFlowErrors(t *testing.T) {
	g := New()
	a, b, c := acct(1), acct(2), acct(3)
	if err := g.SetTrust(a, b, amount.USD, val("10")); err != nil {
		t.Fatal(err)
	}
	if err := g.ApplyFlow(b, a, amount.USD, val("0")); err == nil {
		t.Error("zero flow accepted")
	}
	if err := g.ApplyFlow(b, a, amount.USD, val("-1")); err == nil {
		t.Error("negative flow accepted")
	}
	if err := g.ApplyFlow(b, c, amount.USD, val("1")); err == nil {
		t.Error("flow on missing edge accepted")
	}
	if err := g.ApplyFlow(b, a, amount.USD, val("11")); err == nil {
		t.Error("flow above capacity accepted")
	}
	// Failed flows must leave the balance untouched.
	if got := g.Owed(a, b, amount.USD); !got.IsZero() {
		t.Errorf("failed flows changed balance to %s", got)
	}
}

func TestBidirectionalTrust(t *testing.T) {
	g := New()
	a, b := acct(1), acct(2)
	if err := g.SetTrust(a, b, amount.USD, val("10")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTrust(b, a, amount.USD, val("20")); err != nil {
		t.Fatal(err)
	}
	// A can pay B up to 20 (B's trust), B can pay A up to 10.
	if got := g.Capacity(a, b, amount.USD); got.Cmp(val("20")) != 0 {
		t.Errorf("capacity A→B = %s, want 20", got)
	}
	if got := g.Capacity(b, a, amount.USD); got.Cmp(val("10")) != 0 {
		t.Errorf("capacity B→A = %s, want 10", got)
	}
	// After A pays B 5, capacity A→B drops to 15 and B→A rises to 15.
	if err := g.ApplyFlow(a, b, amount.USD, val("5")); err != nil {
		t.Fatal(err)
	}
	if got := g.Capacity(a, b, amount.USD); got.Cmp(val("15")) != 0 {
		t.Errorf("capacity A→B = %s, want 15", got)
	}
	if got := g.Capacity(b, a, amount.USD); got.Cmp(val("15")) != 0 {
		t.Errorf("capacity B→A = %s, want 15", got)
	}
}

func TestPerCurrencyIsolation(t *testing.T) {
	g := New()
	a, b := acct(1), acct(2)
	if err := g.SetTrust(a, b, amount.USD, val("10")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTrust(a, b, amount.EUR, val("7")); err != nil {
		t.Fatal(err)
	}
	if err := g.ApplyFlow(b, a, amount.USD, val("3")); err != nil {
		t.Fatal(err)
	}
	if got := g.Owed(a, b, amount.EUR); !got.IsZero() {
		t.Errorf("EUR balance affected by USD flow: %s", got)
	}
	count := 0
	g.Currencies(a, func(amount.Currency) { count++ })
	if count != 2 {
		t.Errorf("Currencies reported %d, want 2", count)
	}
}

func TestNeighbors(t *testing.T) {
	g := New()
	hub, s1, s2, s3 := acct(1), acct(2), acct(3), acct(4)
	for i, spoke := range []addr.AccountID{s1, s2, s3} {
		if err := g.SetTrust(spoke, hub, amount.USD, amount.FromInt64(int64(10*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[addr.AccountID]string)
	g.Neighbors(hub, amount.USD, func(peer addr.AccountID, c amount.Value) {
		got[peer] = c.String()
	})
	want := map[addr.AccountID]string{s1: "10", s2: "20", s3: "30"}
	if len(got) != len(want) {
		t.Fatalf("neighbors = %v, want 3 spokes", got)
	}
	for peer, c := range want {
		if got[peer] != c {
			t.Errorf("capacity hub→%s = %s, want %s", peer.Short(), got[peer], c)
		}
	}
	// Wrong currency: no neighbors.
	n := 0
	g.Neighbors(hub, amount.EUR, func(addr.AccountID, amount.Value) { n++ })
	if n != 0 {
		t.Errorf("EUR neighbors = %d, want 0", n)
	}
}

func TestRemoveAccount(t *testing.T) {
	g := New()
	a, b, c := acct(1), acct(2), acct(3)
	if err := g.SetTrust(a, b, amount.USD, val("10")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTrust(b, c, amount.USD, val("10")); err != nil {
		t.Fatal(err)
	}
	if g.NumPairs() != 2 || g.NumAccounts() != 3 {
		t.Fatalf("pairs=%d accounts=%d, want 2 and 3", g.NumPairs(), g.NumAccounts())
	}
	g.RemoveAccount(b)
	if g.NumPairs() != 0 {
		t.Errorf("pairs=%d after removing hub, want 0", g.NumPairs())
	}
	if g.HasAccount(b) || g.HasAccount(a) || g.HasAccount(c) {
		t.Error("orphaned accounts remain after hub removal")
	}
	if got := g.Capacity(b, a, amount.USD); !got.IsZero() {
		t.Errorf("capacity through removed account = %s", got)
	}
}

func TestClone(t *testing.T) {
	g := New()
	a, b := acct(1), acct(2)
	if err := g.SetTrust(a, b, amount.USD, val("10")); err != nil {
		t.Fatal(err)
	}
	if err := g.ApplyFlow(b, a, amount.USD, val("4")); err != nil {
		t.Fatal(err)
	}
	cp := g.Clone()
	// Mutating the clone must not affect the original.
	if err := cp.ApplyFlow(b, a, amount.USD, val("6")); err != nil {
		t.Fatal(err)
	}
	if got := g.Owed(a, b, amount.USD); got.Cmp(val("4")) != 0 {
		t.Errorf("original mutated by clone: owed = %s, want 4", got)
	}
	if got := cp.Owed(a, b, amount.USD); got.Cmp(val("10")) != 0 {
		t.Errorf("clone owed = %s, want 10", got)
	}
	// The clone shares pair identity internally: both endpoints must see
	// the same state.
	if cp.Capacity(b, a, amount.USD).Sign() != 0 {
		t.Errorf("clone capacity B→A = %s, want 0", cp.Capacity(b, a, amount.USD))
	}
}

func TestCheckInvariants(t *testing.T) {
	g := New()
	a, b := acct(1), acct(2)
	if err := g.SetTrust(a, b, amount.USD, val("10")); err != nil {
		t.Fatal(err)
	}
	if err := g.ApplyFlow(b, a, amount.USD, val("8")); err != nil {
		t.Fatal(err)
	}
	if errs := g.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("healthy graph reports violations: %v", errs)
	}
	// Reducing the limit below the balance is legal but flags a
	// violation.
	if err := g.SetTrust(a, b, amount.USD, val("5")); err != nil {
		t.Fatal(err)
	}
	if errs := g.CheckInvariants(); len(errs) != 1 {
		t.Fatalf("want 1 violation after limit cut, got %v", errs)
	}
}

func TestProfileOf(t *testing.T) {
	g := New()
	gw, u1, u2 := acct(1), acct(2), acct(3)
	// Users trust the gateway; the gateway owes them (deposits).
	if err := g.SetTrust(u1, gw, amount.USD, val("100")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTrust(u2, gw, amount.USD, val("50")); err != nil {
		t.Fatal(err)
	}
	if err := g.ApplyFlow(gw, u1, amount.USD, val("30")); err != nil {
		t.Fatal(err)
	}
	rate := func(c amount.Currency) float64 { return 1 }
	p := g.ProfileOf(gw, rate)
	if p.TrustReceived != 150 {
		t.Errorf("gateway trust received = %v, want 150", p.TrustReceived)
	}
	if p.TrustGiven != 0 {
		t.Errorf("gateway trust given = %v, want 0", p.TrustGiven)
	}
	if p.NetBalance != -30 {
		t.Errorf("gateway net balance = %v, want -30 (debt)", p.NetBalance)
	}
	if p.Lines != 2 {
		t.Errorf("gateway lines = %d, want 2", p.Lines)
	}
	up := g.ProfileOf(u1, rate)
	if up.NetBalance != 30 {
		t.Errorf("user net balance = %v, want 30 (credit)", up.NetBalance)
	}
	// A rate of zero skips the currency entirely.
	zero := g.ProfileOf(gw, func(amount.Currency) float64 { return 0 })
	if zero.Lines != 0 || zero.TrustReceived != 0 {
		t.Errorf("zero-rate profile = %+v, want empty", zero)
	}
}

func TestPairsIteration(t *testing.T) {
	g := New()
	for i := uint64(0); i < 10; i++ {
		if err := g.SetTrust(acct(i), acct(i+1), amount.USD, val("5")); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	g.Pairs(func(p *Pair) {
		count++
		if !p.Lo.Less(p.Hi) {
			t.Error("pair endpoints not canonically ordered")
		}
	})
	if count != 10 {
		t.Errorf("Pairs visited %d, want 10", count)
	}
}

// TestPropRandomFlowsRespectInvariants drives random flows through a
// random topology and verifies capacity bookkeeping never breaks the
// credit invariants.
func TestPropRandomFlowsRespectInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	g := New()
	const n = 12
	accounts := make([]addr.AccountID, n)
	for i := range accounts {
		accounts[i] = acct(uint64(i + 100))
	}
	for i := 0; i < 40; i++ {
		a, b := accounts[r.Intn(n)], accounts[r.Intn(n)]
		if a == b {
			continue
		}
		_ = g.SetTrust(a, b, amount.USD, amount.FromInt64(int64(r.Intn(100)+1)))
	}
	applied := 0
	for i := 0; i < 3000; i++ {
		a, b := accounts[r.Intn(n)], accounts[r.Intn(n)]
		if a == b {
			continue
		}
		cap := g.Capacity(a, b, amount.USD)
		if cap.IsZero() {
			continue
		}
		// Sometimes exceed capacity on purpose.
		v := amount.FromInt64(int64(r.Intn(150) + 1))
		err := g.ApplyFlow(a, b, amount.USD, v)
		if v.Cmp(cap) <= 0 && err != nil {
			t.Fatalf("flow %s within capacity %s rejected: %v", v, cap, err)
		}
		if v.Cmp(cap) > 0 && err == nil {
			t.Fatalf("flow %s above capacity %s accepted", v, cap)
		}
		if err == nil {
			applied++
		}
		if errs := g.CheckInvariants(); len(errs) != 0 {
			t.Fatalf("invariants broken after %d flows: %v", applied, errs)
		}
	}
	if applied == 0 {
		t.Fatal("property test applied no flows; topology too sparse")
	}
}
