package deanon

import (
	"reflect"
	"sync"
	"testing"
)

// TestShardedIncMatchesBatchStudy pins the serving-layer study to the
// batch reference: for every shard fan-out (including the inline
// single-writer configuration) the sealed Results, Payments, and every
// observed payment's Lookup must be bit-identical to a batch Study over
// the same stream.
func TestShardedIncMatchesBatchStudy(t *testing.T) {
	feats := randomFeatures(4000, 31)
	batch := NewStudy(Figure3Rows)
	// Independent saturating-count reference: a plain map per row.
	refCounts := make([]map[Fingerprint]uint8, len(Figure3Rows))
	for row := range refCounts {
		refCounts[row] = make(map[Fingerprint]uint8)
	}
	for _, f := range feats {
		batch.Observe(f)
		for row, res := range Figure3Rows {
			fp := FingerprintOf(f, res)
			if refCounts[row][fp] < countSaturated {
				refCounts[row][fp]++
			}
		}
	}
	want := batch.Results()

	for _, shardBits := range []int{0, 1, 3} {
		inc := NewShardedIncStudy(Figure3Rows, shardBits)
		if (shardBits == 0) != (inc.Shards() == 1) {
			t.Fatalf("shardBits=%d: got %d shards", shardBits, inc.Shards())
		}
		for _, f := range feats {
			inc.Observe(f)
		}
		snap := inc.Seal()
		if snap.Payments() != batch.Payments() {
			t.Fatalf("shardBits=%d: payments %d != %d", shardBits, snap.Payments(), batch.Payments())
		}
		if got := snap.Results(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shardBits=%d: results diverge\ngot  %+v\nwant %+v", shardBits, got, want)
		}
		// Every observed payment must be found; counts must equal the
		// reference saturating count at every resolution row.
		for fi, f := range feats {
			for row, res := range Figure3Rows {
				got := snap.Lookup(row, f)
				if wantC := refCounts[row][FingerprintOf(f, res)]; got != wantC {
					t.Fatalf("shardBits=%d feat=%d row=%d: lookup %d, reference %d", shardBits, fi, row, got, wantC)
				}
			}
			if fi >= 400 {
				break
			}
		}
		inc.Close()
		// Snapshots must outlive Close (independent clones).
		if got := snap.Results(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shardBits=%d: results changed after Close", shardBits)
		}
	}
}

// TestShardedIncMidStreamSeals cuts the stream at several points and
// checks each sealed epoch against a batch study over exactly the
// observed prefix — and that earlier snapshots stay frozen while the
// live study keeps moving.
func TestShardedIncMidStreamSeals(t *testing.T) {
	feats := randomFeatures(3000, 37)
	for _, shardBits := range []int{0, 2} {
		inc := NewShardedIncStudy(Figure3Rows, shardBits)
		cuts := []int{len(feats) / 5, len(feats) / 2, len(feats)}
		var snaps []*IncSnapshot
		var wants [][]RowResult
		prev := 0
		for _, cut := range cuts {
			for _, f := range feats[prev:cut] {
				inc.Observe(f)
			}
			prev = cut
			snap := inc.Seal()
			prefix := NewStudy(Figure3Rows)
			for _, f := range feats[:cut] {
				prefix.Observe(f)
			}
			want := prefix.Results()
			if got := snap.Results(); !reflect.DeepEqual(got, want) {
				t.Fatalf("shardBits=%d cut=%d: epoch diverges from batch prefix\ngot  %+v\nwant %+v", shardBits, cut, got, want)
			}
			snaps = append(snaps, snap)
			wants = append(wants, want)
		}
		inc.Close()
		// Immutability: every earlier epoch still answers as it did when
		// sealed, despite later observes, seals, and Close.
		for i, snap := range snaps {
			if got := snap.Results(); !reflect.DeepEqual(got, wants[i]) {
				t.Fatalf("shardBits=%d: snapshot %d mutated after later seals", shardBits, i)
			}
		}
	}
}

// TestShardedIncObserveFingerprintsMatchesObserve pins the projected
// fast path (fingerprints precomputed upstream through the study plan)
// to the Observe path.
func TestShardedIncObserveFingerprintsMatchesObserve(t *testing.T) {
	feats := randomFeatures(2000, 41)
	ref := NewShardedIncStudy(Figure3Rows, 2)
	defer ref.Close()
	pre := NewShardedIncStudy(Figure3Rows, 2)
	defer pre.Close()

	var fps []Fingerprint
	for _, f := range feats {
		ref.Observe(f)
		enc := EncodeFeatures(f)
		fps = enc.AppendFingerprints(pre.Plan(), fps[:0])
		pre.ObserveFingerprints(fps)
	}
	want, got := ref.Seal(), pre.Seal()
	if !reflect.DeepEqual(got.Results(), want.Results()) {
		t.Fatalf("ObserveFingerprints diverges from Observe\ngot  %+v\nwant %+v", got.Results(), want.Results())
	}
	for _, f := range feats[:200] {
		for row := range Figure3Rows {
			if a, b := got.Lookup(row, f), want.Lookup(row, f); a != b {
				t.Fatalf("row %d: lookup %d != %d", row, a, b)
			}
		}
	}
}

// TestShardedIncUnseenLookups checks that fingerprints never observed
// report count 0 in a sealed snapshot.
func TestShardedIncUnseenLookups(t *testing.T) {
	inc := NewShardedIncStudy(Figure3Rows, 3)
	defer inc.Close()
	for _, f := range randomFeatures(500, 43) {
		inc.Observe(f)
	}
	snap := inc.Seal()
	// Different destination pool than randomFeatures uses → disjoint
	// fingerprints for every destination-selecting row.
	unseen := Features{Destination: acct(999_999)}
	for row, res := range Figure3Rows {
		if !res.Destination {
			continue
		}
		if got := snap.Lookup(row, unseen); got != 0 {
			t.Fatalf("row %d: unseen feature reported count %d", row, got)
		}
	}
}

// TestShardedIncFeedersMatchSingleProducer drives the multi-producer
// feeder intake from concurrent goroutines — including the 1-shard
// configuration whose inline fast path Feeders must disable — and pins
// every sealed answer to the single-producer reference over the same
// stream. Mid-stream seals interleave with live producers after a
// quiescent Flush, the serving layer's merge pattern; run under -race.
func TestShardedIncFeedersMatchSingleProducer(t *testing.T) {
	feats := randomFeatures(4000, 53)
	ref := NewShardedIncStudy(Figure3Rows, 2)
	defer ref.Close()
	for _, f := range feats {
		ref.Observe(f)
	}
	want := ref.Seal()

	for _, shardBits := range []int{0, 2} {
		for _, producers := range []int{1, 3} {
			inc := NewShardedIncStudy(Figure3Rows, shardBits)
			feeders := inc.Feeders(producers)

			// Split the stream across producers in contiguous chunks; the
			// counts are order-insensitive sums so any partition must seal
			// to the same answers.
			var wg sync.WaitGroup
			per := (len(feats) + producers - 1) / producers
			for p := 0; p < producers; p++ {
				lo, hi := p*per, (p+1)*per
				if hi > len(feats) {
					hi = len(feats)
				}
				wg.Add(1)
				go func(fd *IncFeeder, chunk []Features) {
					defer wg.Done()
					var fps []Fingerprint
					for _, f := range chunk {
						enc := EncodeFeatures(f)
						fps = enc.AppendFingerprints(inc.Plan(), fps[:0])
						fd.ObserveFingerprints(fps)
					}
				}(feeders[p], feats[lo:hi])
			}
			wg.Wait()
			for _, fd := range feeders {
				fd.Flush()
			}
			snap := inc.Seal()
			if snap.Payments() != want.Payments() {
				t.Fatalf("bits=%d producers=%d: payments %d != %d", shardBits, producers, snap.Payments(), want.Payments())
			}
			if !reflect.DeepEqual(snap.Results(), want.Results()) {
				t.Fatalf("bits=%d producers=%d: results diverge\ngot  %+v\nwant %+v", shardBits, producers, snap.Results(), want.Results())
			}
			for _, f := range feats[:300] {
				for row := range Figure3Rows {
					if a, b := snap.Lookup(row, f), want.Lookup(row, f); a != b {
						t.Fatalf("bits=%d producers=%d row=%d: lookup %d != %d", shardBits, producers, row, a, b)
					}
				}
			}
			inc.Close()
		}
	}
}

// TestShardedIncConcurrentReaders hammers sealed snapshots from reader
// goroutines while the producer keeps observing and sealing — the
// serving pattern, run under -race in CI.
func TestShardedIncConcurrentReaders(t *testing.T) {
	feats := randomFeatures(2400, 47)
	inc := NewShardedIncStudy(Figure3Rows, 2)
	defer inc.Close()

	snapCh := make(chan *IncSnapshot, 16)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for snap := range snapCh {
				for _, f := range feats[:50] {
					for row := range Figure3Rows {
						snap.Lookup(row, f)
					}
				}
				snap.Results()
			}
		}()
	}
	for i, f := range feats {
		inc.Observe(f)
		if i%200 == 199 {
			snapCh <- inc.Seal()
		}
	}
	close(snapCh)
	wg.Wait()

	batch := NewStudy(Figure3Rows)
	for _, f := range feats {
		batch.Observe(f)
	}
	if got, want := inc.Seal().Results(), batch.Results(); !reflect.DeepEqual(got, want) {
		t.Fatalf("final seal diverges from batch\ngot  %+v\nwant %+v", got, want)
	}
}
