package synth

import (
	"testing"

	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
)

// generateSmall runs a small but full history and returns the result
// plus all pages.
func generateSmall(t *testing.T, payments int, seed int64) (*Result, []*ledger.Page) {
	t.Helper()
	var pages []*ledger.Page
	res, err := Generate(Config{
		Payments:       payments,
		Seed:           seed,
		SkipSignatures: true,
	}, func(p *ledger.Page) error {
		pages = append(pages, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, pages
}

func TestGenerateSmokes(t *testing.T) {
	res, pages := generateSmall(t, 4000, 1)
	if res.Stats.PaymentsOK < 3000 {
		t.Fatalf("payments ok = %d of %d attempts (failed %d)",
			res.Stats.PaymentsOK, 4000, res.Stats.PaymentsFailed)
	}
	failRate := float64(res.Stats.PaymentsFailed) / float64(res.Stats.PaymentsOK+res.Stats.PaymentsFailed)
	if failRate > 0.12 {
		t.Errorf("failure rate %.3f too high", failRate)
	}
	if len(pages) < 100 {
		t.Errorf("pages = %d, want many", len(pages))
	}
	// Chain linkage must hold across all pages.
	for i := 1; i < len(pages); i++ {
		if pages[i].Header.ParentHash != pages[i-1].Header.Hash() {
			t.Fatalf("page %d parent linkage broken", i)
		}
		if err := pages[i].Validate(); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	// Engine invariants hold at the end.
	if errs := res.Engine.Graph().CheckInvariants(); len(errs) != 0 {
		t.Fatalf("graph invariants violated: %v (first of %d)", errs[0], len(errs))
	}
}

func TestCurrencyMixCalibration(t *testing.T) {
	res, _ := generateSmall(t, 6000, 2)
	total := float64(res.Stats.PaymentsOK)
	share := func(c amount.Currency) float64 {
		return float64(res.Stats.ByCurrency[c]) / total
	}
	// XRP ≈ 49%, the dominant currency (Fig. 4).
	if s := share(amount.XRP); s < 0.40 || s > 0.58 {
		t.Errorf("XRP share = %.3f, want ≈0.49", s)
	}
	// CCK and MTL are next (spam campaigns).
	if s := share(amount.CCK); s < 0.10 || s > 0.22 {
		t.Errorf("CCK share = %.3f, want ≈0.16", s)
	}
	if s := share(amount.MTL); s < 0.08 || s > 0.20 {
		t.Errorf("MTL share = %.3f, want ≈0.14", s)
	}
	// Ordering of the majors: BTC > USD > CNY > JPY > EUR.
	if !(res.Stats.ByCurrency[amount.BTC] > res.Stats.ByCurrency[amount.JPY]) {
		t.Errorf("BTC (%d) should outnumber JPY (%d)",
			res.Stats.ByCurrency[amount.BTC], res.Stats.ByCurrency[amount.JPY])
	}
	if !(res.Stats.ByCurrency[amount.USD] > res.Stats.ByCurrency[amount.EUR]) {
		t.Errorf("USD (%d) should outnumber EUR (%d)",
			res.Stats.ByCurrency[amount.USD], res.Stats.ByCurrency[amount.EUR])
	}
}

func TestMTLSpamShape(t *testing.T) {
	_, pages := generateSmall(t, 5000, 3)
	spam, long := 0, 0
	for _, p := range pages {
		for i, tx := range p.Txs {
			if tx.Type != ledger.TxPayment || tx.Amount.Currency != amount.MTL {
				continue
			}
			meta := p.Metas[i]
			if !meta.Result.Succeeded() {
				continue
			}
			if meta.MaxHops() == 44 {
				// The Figure 6(a) long-chain oddity: single path, 44
				// intermediaries.
				long++
				if got := meta.ParallelPaths(); got != 1 {
					t.Fatalf("long-chain parallel paths = %d, want 1", got)
				}
				continue
			}
			spam++
			if got := meta.ParallelPaths(); got != 6 {
				t.Fatalf("MTL spam parallel paths = %d, want exactly 6", got)
			}
			if got := meta.MaxHops(); got != 8 {
				t.Fatalf("MTL spam hops = %d, want exactly 8", got)
			}
		}
	}
	if spam < 300 {
		t.Errorf("MTL spam payments = %d, want a large campaign", spam)
	}
	if long == 0 {
		t.Error("no 44-hop long-chain payments observed")
	}
	if long*20 > spam {
		t.Errorf("long-chain payments = %d of %d, want rare", long, spam)
	}
}

func TestCrossCurrencyPresent(t *testing.T) {
	res, _ := generateSmall(t, 5000, 4)
	if res.Stats.CrossCurrency < 70 {
		t.Errorf("cross-currency payments = %d, want a substantial share", res.Stats.CrossCurrency)
	}
	if res.Stats.Offers < 500 {
		t.Errorf("offers placed = %d, want ≈0.5×payments", res.Stats.Offers)
	}
}

func TestDeterminism(t *testing.T) {
	res1, pages1 := generateSmall(t, 1500, 7)
	res2, pages2 := generateSmall(t, 1500, 7)
	if res1.LastHash != res2.LastHash {
		t.Error("same seed produced different final hashes")
	}
	if len(pages1) != len(pages2) {
		t.Fatalf("page counts differ: %d vs %d", len(pages1), len(pages2))
	}
	res3, _ := generateSmall(t, 1500, 8)
	if res1.LastHash == res3.LastHash {
		t.Error("different seeds produced identical histories")
	}
	_ = res3
}

func TestGatewayAndUserBalanceSigns(t *testing.T) {
	// Figure 7(c): gateways in debt (negative), most users in credit.
	res, _ := generateSmall(t, 4000, 5)
	g := res.Engine.Graph()
	negGateways := 0
	for _, gw := range res.Population.Gateways {
		p := g.ProfileOf(gw.ID, RateEUR)
		if p.NetBalance < 0 {
			negGateways++
		}
	}
	if negGateways < len(res.Population.Gateways)*3/4 {
		t.Errorf("gateways with negative balance = %d/%d, want most",
			negGateways, len(res.Population.Gateways))
	}
	posUsers, sampled := 0, 0
	for i, u := range res.Population.Users {
		if i%7 != 0 {
			continue
		}
		sampled++
		if g.ProfileOf(u.ID, RateEUR).NetBalance > 0 {
			posUsers++
		}
	}
	if posUsers < sampled/2 {
		t.Errorf("users with positive balance = %d/%d, want most", posUsers, sampled)
	}
}

func TestOfferConcentration(t *testing.T) {
	// Appendix C: the top-10 market makers place ~50% of offers.
	_, pages := generateSmall(t, 4000, 6)
	byOwner := make(map[string]int)
	total := 0
	for _, p := range pages {
		for i, tx := range p.Txs {
			if tx.Type == ledger.TxOfferCreate && p.Metas[i].Result.Succeeded() {
				byOwner[tx.Account.String()]++
				total++
			}
		}
	}
	counts := make([]int, 0, len(byOwner))
	for _, c := range byOwner {
		counts = append(counts, c)
	}
	// Sort descending.
	for i := range counts {
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[i] {
				counts[i], counts[j] = counts[j], counts[i]
			}
		}
	}
	top10 := 0
	for i := 0; i < 10 && i < len(counts); i++ {
		top10 += counts[i]
	}
	frac := float64(top10) / float64(total)
	if frac < 0.35 || frac > 0.75 {
		t.Errorf("top-10 maker offer share = %.3f, want ≈0.5", frac)
	}
}

func TestPopulationStructure(t *testing.T) {
	res, _ := generateSmall(t, 1500, 9)
	pop := res.Population
	if len(pop.Gateways) != len(GatewayNames) {
		t.Errorf("gateways = %d, want %d", len(pop.Gateways), len(GatewayNames))
	}
	reg := pop.Registry()
	for _, gw := range pop.Gateways {
		if !reg.IsGateway(gw.ID) {
			t.Errorf("%s not marked as gateway", gw.Name)
		}
		if reg.Name(gw.ID) != gw.Name {
			t.Errorf("gateway name lookup failed for %s", gw.Name)
		}
	}
	if reg.IsGateway(pop.Hubs[0].ID) {
		t.Error("hub wrongly marked as gateway")
	}
	if reg.Name(pop.RippleSpin.AccountID()) != "~Ripple Spin" {
		t.Error("Ripple Spin registry name missing")
	}
	// Every user got funded lines.
	for i, u := range pop.Users {
		if len(u.Lines) == 0 {
			t.Fatalf("user %d has no funded lines", i)
		}
	}
}

func TestTimestampsAdvance(t *testing.T) {
	_, pages := generateSmall(t, 1500, 10)
	var last ledger.CloseTime
	for _, p := range pages {
		if p.Header.CloseTime < last {
			t.Fatal("close times regress")
		}
		last = p.Header.CloseTime
	}
	first := pages[0].Header.CloseTime
	if last == first {
		t.Error("history spans zero simulated time")
	}
}

func TestRateTable(t *testing.T) {
	if RateUSD(amount.USD) != 1 {
		t.Error("USD rate must be 1")
	}
	if RateUSD(amount.BTC) < 100 {
		t.Error("BTC should be a strong currency")
	}
	if RateEUR(amount.EUR) != 1 {
		t.Error("EUR→EUR rate must be 1")
	}
	if RateUSD(amount.MustCurrency("ZQX")) <= 0 {
		t.Error("tail currencies need a positive default rate")
	}
}
