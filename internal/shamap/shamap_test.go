package shamap

import (
	"encoding/binary"
	"fmt"
	"testing"

	"ripplestudy/internal/ledger"
)

// key derives a deterministic test key.
func key(i int) ledger.Hash {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(i))
	return ledger.SHA512Half(buf[:])
}

func val(i int) []byte {
	return []byte(fmt.Sprintf("value-%d", i))
}

// build constructs a fresh tree from the entries of m, inserted in
// index order.
func build(n int, skip func(int) bool) *Tree {
	t := New()
	for i := 0; i < n; i++ {
		if skip != nil && skip(i) {
			continue
		}
		t.Set(key(i), val(i))
	}
	return t
}

func TestSetGetDelete(t *testing.T) {
	const n = 500
	tr := build(n, nil)
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, ok := tr.Get(key(i))
		if !ok || string(got) != string(val(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, got, ok)
		}
	}
	if _, ok := tr.Get(key(n + 1)); ok {
		t.Fatal("Get of absent key reported present")
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) reported absent", i)
		}
	}
	if tr.Delete(key(0)) {
		t.Fatal("double Delete reported present")
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len after deletes = %d, want %d", tr.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
}

// TestCanonicalRoot pins the core Merkle property: the sealed root is a
// pure function of the key/value set, independent of the mutation
// history that produced it.
func TestCanonicalRoot(t *testing.T) {
	const n = 300
	// Path A: insert everything, delete the multiples of 3, overwrite
	// the multiples of 5, with interleaved seals.
	a := build(n, nil)
	a.Seal()
	for i := 0; i < n; i += 3 {
		a.Delete(key(i))
	}
	a.Seal()
	for i := 0; i < n; i += 5 {
		if i%3 == 0 {
			continue
		}
		a.Set(key(i), []byte("overwritten"))
	}
	rootA := a.Seal()

	// Path B: build the final state from scratch, reverse order, one seal.
	b := New()
	for i := n - 1; i >= 0; i-- {
		if i%3 == 0 {
			continue
		}
		if i%5 == 0 {
			b.Set(key(i), []byte("overwritten"))
		} else {
			b.Set(key(i), val(i))
		}
	}
	if rootB := b.Seal(); rootB != rootA {
		t.Fatalf("roots diverge: %s vs %s", rootA.Short(), rootB.Short())
	}
	if a.Len() != b.Len() {
		t.Fatalf("sizes diverge: %d vs %d", a.Len(), b.Len())
	}
}

func TestEmptyTreeSealsToZero(t *testing.T) {
	tr := New()
	if root := tr.Seal(); !root.IsZero() {
		t.Fatalf("empty tree sealed to %s", root.Short())
	}
	tr.Set(key(1), val(1))
	tr.Delete(key(1))
	if root := tr.Seal(); !root.IsZero() {
		t.Fatalf("emptied tree sealed to %s", root.Short())
	}
}

func TestSealIdempotentAndSensitive(t *testing.T) {
	tr := build(100, nil)
	r1 := tr.Seal()
	if r2 := tr.Seal(); r2 != r1 {
		t.Fatalf("re-seal without mutation changed root: %s vs %s", r1.Short(), r2.Short())
	}
	tr.Set(key(7), []byte("changed"))
	if r3 := tr.Seal(); r3 == r1 {
		t.Fatal("root unchanged after value change")
	}
	tr.Set(key(7), val(7))
	if r4 := tr.Seal(); r4 != r1 {
		t.Fatalf("restoring the value did not restore the root: %s vs %s", r1.Short(), r4.Short())
	}
}

// TestSnapshotIsolation pins copy-on-write: mutations after a seal leave
// the snapshot's contents and root untouched, in both directions.
func TestSnapshotIsolation(t *testing.T) {
	tr := build(64, nil)
	root := tr.Seal()
	snap, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tr.Set(key(3), []byte("mutated"))
	tr.Delete(key(10))
	tr.Set(key(1000), val(1000))
	if got, _ := snap.Get(key(3)); string(got) != string(val(3)) {
		t.Fatalf("snapshot saw live mutation: %q", got)
	}
	if _, ok := snap.Get(key(10)); !ok {
		t.Fatal("snapshot lost a deleted key")
	}
	if r := snap.Seal(); r != root {
		t.Fatalf("snapshot root drifted: %s vs %s", r.Short(), root.Short())
	}
	// And the other direction: mutating the snapshot leaves the live
	// tree's state alone.
	snap.Set(key(5), []byte("snap-only"))
	if got, _ := tr.Get(key(5)); string(got) != string(val(5)) {
		t.Fatalf("live tree saw snapshot mutation: %q", got)
	}

	tr.Set(key(4), []byte("x"))
	if _, err := tr.Snapshot(); err == nil {
		t.Fatal("Snapshot of a dirty tree did not error")
	}
}

func TestWalkOrderAndCompleteness(t *testing.T) {
	const n = 200
	tr := build(n, func(i int) bool { return i%7 == 0 })
	var prev ledger.Hash
	first := true
	seen := 0
	err := tr.Walk(func(k ledger.Hash, v []byte) error {
		if !first && string(prev[:]) >= string(k[:]) {
			t.Fatalf("walk order violated: %s ≥ %s", prev.Short(), k.Short())
		}
		prev, first = k, false
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != tr.Len() {
		t.Fatalf("walk visited %d of %d leaves", seen, tr.Len())
	}
}

// storeMap is a minimal content-addressed store for round-trip tests.
type storeMap map[ledger.Hash][]byte

func (m storeMap) put(h ledger.Hash, data []byte) error {
	m[h] = append([]byte(nil), data...)
	return nil
}

func (m storeMap) get(h ledger.Hash) ([]byte, error) {
	d, ok := m[h]
	if !ok {
		return nil, fmt.Errorf("missing node %s", h.Short())
	}
	return d, nil
}

func TestWriteNewLoadRoundTrip(t *testing.T) {
	store := storeMap{}
	tr := build(150, nil)
	root1 := tr.Seal()
	n1, err := tr.WriteNew(store.put)
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 {
		t.Fatal("first WriteNew wrote nothing")
	}

	// Incremental: a second WriteNew after a small change writes only
	// the changed path, and the union of both batches still loads.
	tr.Set(key(3), []byte("changed"))
	tr.Delete(key(4))
	root2 := tr.Seal()
	n2, err := tr.WriteNew(store.put)
	if err != nil {
		t.Fatal(err)
	}
	if n2 == 0 || n2 >= n1 {
		t.Fatalf("incremental WriteNew wrote %d nodes (full write was %d)", n2, n1)
	}
	if n3, _ := tr.WriteNew(store.put); n3 != 0 {
		t.Fatalf("idle WriteNew wrote %d nodes", n3)
	}

	for _, root := range []ledger.Hash{root1, root2} {
		loaded, err := Load(root, store.get)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Root() != root {
			t.Fatalf("loaded root %s, want %s", loaded.Root().Short(), root.Short())
		}
		if reroot := loaded.Seal(); reroot != root {
			t.Fatalf("loaded tree re-seals to %s, want %s", reroot.Short(), root.Short())
		}
	}

	// The loaded tree matches leaf-for-leaf and keeps working.
	loaded, err := Load(root2, store.get)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != tr.Len() {
		t.Fatalf("loaded %d leaves, want %d", loaded.Len(), tr.Len())
	}
	err = tr.Walk(func(k ledger.Hash, v []byte) error {
		got, ok := loaded.Get(k)
		if !ok || string(got) != string(v) {
			return fmt.Errorf("leaf %s: got %q, %v", k.Short(), got, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded.Set(key(9999), val(9999))
	tr.Set(key(9999), val(9999))
	if a, b := loaded.Seal(), tr.Seal(); a != b {
		t.Fatalf("post-load mutation diverged: %s vs %s", a.Short(), b.Short())
	}

	// Loaded nodes count as saved: WriteNew persists only the new path.
	wrote, err := loaded.WriteNew(store.put)
	if err != nil {
		t.Fatal(err)
	}
	if wrote == 0 || wrote > maxDepth+1 {
		t.Fatalf("post-load WriteNew wrote %d nodes", wrote)
	}
}

func TestWriteNewRequiresSeal(t *testing.T) {
	tr := build(10, nil)
	if _, err := tr.WriteNew(storeMap{}.put); err == nil {
		t.Fatal("WriteNew on an unsealed tree did not error")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	store := storeMap{}
	tr := build(50, nil)
	root := tr.Seal()
	if _, err := tr.WriteNew(store.put); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in one stored node: the load must fail (on that
	// node's hash check), never return a silently wrong tree.
	for h, data := range store {
		bad := append([]byte(nil), data...)
		bad[len(bad)-1] ^= 0x01
		store[h] = bad
		if _, err := Load(root, store.get); err == nil {
			t.Fatalf("load succeeded over corrupted node %s", h.Short())
		}
		store[h] = data
		break
	}
	// A missing interior node fails too.
	for h := range store {
		saved := store[h]
		delete(store, h)
		if _, err := Load(root, store.get); err == nil {
			t.Fatalf("load succeeded with node %s missing", h.Short())
		}
		store[h] = saved
		break
	}
}

func TestDecodeNodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{'X'},
		{'L'},
		append([]byte{'L'}, make([]byte, 16)...), // short key
		{'I'},
		{'I', 0x00},
		{'I', 0x00, 0x01},                        // bitmap wants 1 child, none present
		append([]byte{'I', 0x00, 0x00}, 1, 2, 3), // bitmap empty but trailing bytes
		append([]byte{'I', 0x80, 0x00}, make([]byte, 32)...), // zero child hash
	}
	for i, c := range cases {
		if _, err := DecodeNode(c); err == nil {
			t.Errorf("case %d: DecodeNode accepted %x", i, c)
		}
	}
}

// BenchmarkShamapSeal measures a ledger close: mutate a small working
// set of a large sealed tree, then re-hash. The per-seal cost must stay
// O(changed·depth), not O(tree).
func BenchmarkShamapSeal(b *testing.B) {
	for _, size := range []int{1_000, 50_000} {
		b.Run(fmt.Sprintf("size=%d/touch=64", size), func(b *testing.B) {
			tr := build(size, nil)
			tr.Seal()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := (i * 64) % size
				for j := 0; j < 64; j++ {
					tr.Set(key((base+j)%size), val(i))
				}
				tr.Seal()
			}
		})
	}
}

// BenchmarkShamapLookup measures point reads on a sealed tree.
func BenchmarkShamapLookup(b *testing.B) {
	const size = 50_000
	tr := build(size, nil)
	tr.Seal()
	keys := make([]ledger.Hash, 1024)
	for i := range keys {
		keys[i] = key(i * (size / len(keys)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.Get(keys[i%len(keys)]); !ok {
			b.Fatal("missing key")
		}
	}
}

// BenchmarkShamapWriteNew measures the incremental checkpoint batch: the
// encode+emit cost of persisting one seal's changed nodes.
func BenchmarkShamapWriteNew(b *testing.B) {
	const size = 50_000
	tr := build(size, nil)
	tr.Seal()
	sink := 0
	put := func(h ledger.Hash, data []byte) error { sink += len(data); return nil }
	if _, err := tr.WriteNew(put); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			tr.Set(key((i*64+j)%size), val(i+1))
		}
		tr.Seal()
		if _, err := tr.WriteNew(put); err != nil {
			b.Fatal(err)
		}
	}
	_ = sink
}
