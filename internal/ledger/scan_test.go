package ledger

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
)

// randomMeta builds execution metadata with the variable-length parts
// (path hops, intermediaries) exercised across their shapes.
func randomMeta(r *rand.Rand) *TxMeta {
	m := &TxMeta{
		Result:         TxResult(r.Intn(3)),
		Delivered:      amount.New(amount.USD, amount.MustValue(int64(r.Intn(5000)+1), -2)),
		OffersConsumed: uint32(r.Intn(10)),
		CrossCurrency:  r.Intn(2) == 0,
	}
	if n := r.Intn(4); n > 0 {
		m.PathHops = make([]uint8, n)
		for i := range m.PathHops {
			m.PathHops[i] = uint8(r.Intn(8) + 1)
		}
	}
	if n := r.Intn(3); n > 0 {
		m.Intermediaries = make([]addr.AccountID, n)
		for i := range m.Intermediaries {
			m.Intermediaries[i] = addr.KeyPairFromSeed(r.Uint64()).AccountID()
		}
	}
	return m
}

// randomScanPage builds a valid page with nTxs transactions of mixed
// types and results.
func randomScanPage(r *rand.Rand, seq uint64, nTxs int) *Page {
	txs := make([]*Tx, nTxs)
	metas := make([]*TxMeta, nTxs)
	for i := range txs {
		txs[i] = randomTx(r)
		metas[i] = randomMeta(r)
	}
	return &Page{
		Header: PageHeader{
			Sequence:   seq,
			ParentHash: SHA512Half([]byte{byte(seq)}),
			TxSetHash:  TxSetHash(txs),
			StateHash:  SHA512Half([]byte{byte(seq), 1}),
			CloseTime:  CloseTimeFromTime(time.Date(2015, 1, 1, 0, 0, int(seq%3600), 0, time.UTC)),
			TotalDrops: GenesisTotalDrops - seq,
		},
		Txs:   txs,
		Metas: metas,
	}
}

// Differential: DecodePageInto must be bit-identical to DecodePage,
// including across arena reuse and slab growth.
func TestDecodePageIntoMatchesDecodePage(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	var a PageArena
	for i := 0; i < 40; i++ {
		p := randomScanPage(r, uint64(i+1), r.Intn(12)) // includes empty pages
		data := p.Encode(nil)
		want, wantUsed, err := DecodePage(data)
		if err != nil {
			t.Fatal(err)
		}
		got, used, err := DecodePageInto(data, &a)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if used != wantUsed {
			t.Fatalf("page %d: consumed %d, DecodePage consumed %d", i, used, wantUsed)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("page %d: arena decode differs from DecodePage", i)
		}
	}
}

// Arena truncation behavior must match DecodePage: every strict prefix
// fails.
func TestDecodePageIntoAllPrefixesFail(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	p := randomScanPage(r, 3, 2)
	data := p.Encode(nil)
	var a PageArena
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := DecodePageInto(data[:cut], &a); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(data))
		}
	}
}

func TestDecodeHeaderMatchesDecodePage(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	p := randomScanPage(r, 77, 3)
	data := p.Encode(nil)
	h, used, err := DecodeHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if h != p.Header {
		t.Fatalf("header mismatch:\n%+v\n%+v", h, p.Header)
	}
	if used != pageHeaderBytes {
		t.Fatalf("consumed %d, want %d", used, pageHeaderBytes)
	}
	if _, _, err := DecodeHeader(data[:pageHeaderBytes-1]); err == nil {
		t.Error("truncated header accepted")
	}
}

// Differential: VisitTxs field accessors must agree with the fully
// decoded page on every transaction.
func TestVisitTxsMatchesDecodePage(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	p := randomScanPage(r, 5, 8)
	data := p.Encode(nil)
	i := 0
	used, err := VisitTxs(data, func(hdr *PageHeader, v *TxView) error {
		if *hdr != p.Header {
			t.Fatal("header mismatch")
		}
		if v.Index != i {
			t.Fatalf("index %d, want %d", v.Index, i)
		}
		tx, meta := p.Txs[i], p.Metas[i]
		if v.Type() != tx.Type || v.Account() != tx.Account ||
			v.Sequence() != tx.Sequence || v.Fee() != tx.Fee ||
			v.Destination() != tx.Destination || v.Currency() != tx.Amount.Currency {
			t.Fatalf("tx %d: view fields differ from decoded tx", i)
		}
		av, err := v.AmountValue()
		if err != nil || !av.Equal(tx.Amount.Value) {
			t.Fatalf("tx %d: amount %v (err %v), want %v", i, av, err, tx.Amount.Value)
		}
		if v.Result() != meta.Result || v.OffersConsumed() != meta.OffersConsumed ||
			v.CrossCurrency() != meta.CrossCurrency {
			t.Fatalf("tx %d: view meta fields differ", i)
		}
		if hops := v.PathHops(); !bytes.Equal(hops, meta.PathHops) {
			t.Fatalf("tx %d: hops %v, want %v", i, hops, meta.PathHops)
		}
		// Raw slices must be exact record encodings.
		if fullTx, err := v.DecodeTx(); err != nil || !reflect.DeepEqual(fullTx, tx) {
			t.Fatalf("tx %d: DecodeTx from view differs (err %v)", i, err)
		}
		if fullMeta, err := v.DecodeMeta(); err != nil || !reflect.DeepEqual(fullMeta, meta) {
			t.Fatalf("tx %d: DecodeMeta from view differs (err %v)", i, err)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(p.Txs) {
		t.Fatalf("visited %d txs, want %d", i, len(p.Txs))
	}
	if used != len(data) {
		t.Fatalf("consumed %d of %d bytes", used, len(data))
	}
}

// projectPayments is the reference projection: full decode, then the
// exact filter deanon.FromTransaction applies.
func projectPayments(p *Page) []PaymentView {
	var out []PaymentView
	for i, tx := range p.Txs {
		m := p.Metas[i]
		if tx.Type != TxPayment || !m.Result.Succeeded() {
			continue
		}
		out = append(out, PaymentView{
			Seq:            p.Header.Sequence,
			Time:           p.Header.CloseTime,
			Index:          i,
			Sender:         tx.Account,
			Destination:    tx.Destination,
			Currency:       tx.Amount.Currency,
			Amount:         tx.Amount.Value,
			ParallelPaths:  m.ParallelPaths(),
			MaxHops:        m.MaxHops(),
			OffersConsumed: m.OffersConsumed,
			CrossCurrency:  m.CrossCurrency,
		})
	}
	return out
}

// Differential: ScanPayments must yield exactly the payments the full
// decode path projects, field for field.
func TestScanPaymentsMatchesDecodePage(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for trial := 0; trial < 30; trial++ {
		p := randomScanPage(r, uint64(trial+1), r.Intn(10))
		data := p.Encode(nil)
		want := projectPayments(p)
		var got []PaymentView
		used, err := ScanPayments(data, func(pv *PaymentView) error {
			got = append(got, *pv) // the view is reused; copy it
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if used != len(data) {
			t.Fatalf("trial %d: consumed %d of %d bytes", trial, used, len(data))
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: projection mismatch:\nwant %+v\ngot  %+v", trial, want, got)
		}
	}
}

func TestScanPaymentsAllPrefixesFail(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	p := randomScanPage(r, 4, 2)
	data := p.Encode(nil)
	for cut := 0; cut < len(data); cut++ {
		if _, err := ScanPayments(data[:cut], nil); err == nil {
			t.Fatalf("prefix of %d/%d bytes scanned successfully", cut, len(data))
		}
	}
}

func TestScanCallbackErrorsPropagate(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	p := randomScanPage(r, 4, 6)
	// Force at least one payment so the ScanPayments callback fires.
	p.Txs[0].Type = TxPayment
	p.Metas[0].Result = ResultSuccess
	p.Header.TxSetHash = TxSetHash(p.Txs)
	data := p.Encode(nil)
	sentinel := ErrTruncated // any distinguishable error
	if _, err := ScanPayments(data, func(*PaymentView) error { return sentinel }); err != sentinel {
		t.Errorf("ScanPayments error = %v, want sentinel", err)
	}
	if _, err := VisitTxs(data, func(*PageHeader, *TxView) error { return sentinel }); err != sentinel {
		t.Errorf("VisitTxs error = %v, want sentinel", err)
	}
}

// seedScanCorpus adds valid page encodings (plus light mutations of
// them, contributed by the fuzzer itself at runtime) to a fuzz corpus.
func seedScanCorpus(f *testing.F) {
	r := rand.New(rand.NewSource(30))
	f.Add([]byte{})
	f.Add(Genesis("main", 0).Encode(nil))
	for _, n := range []int{0, 1, 3, 7} {
		f.Add(randomScanPage(r, uint64(n+1), n).Encode(nil))
	}
}

// FuzzScanPayments checks the zero-copy scan against the full decoder
// on arbitrary input: it must never panic, must accept whatever
// DecodePage accepts (with an identical projection), and must not
// consume a different byte count.
func FuzzScanPayments(f *testing.F) {
	seedScanCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var got []PaymentView
		used, err := ScanPayments(data, func(pv *PaymentView) error {
			got = append(got, *pv)
			return nil
		})
		p, wantUsed, perr := DecodePage(data)
		if perr != nil {
			// ScanPayments validates framing only, so it may accept
			// inputs whose field contents the full decoder rejects —
			// but not the other way around (checked below).
			return
		}
		if err != nil {
			t.Fatalf("DecodePage accepted input ScanPayments rejected: %v", err)
		}
		if used != wantUsed {
			t.Fatalf("consumed %d bytes, DecodePage consumed %d", used, wantUsed)
		}
		if want := projectPayments(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("projection mismatch:\nwant %+v\ngot  %+v", want, got)
		}
	})
}

// FuzzDecodePageInto checks the arena decoder against DecodePage on
// arbitrary input: same accept/reject decision, same result, same byte
// count — and no panic, even with a reused arena.
func FuzzDecodePageInto(f *testing.F) {
	seedScanCorpus(f)
	var a PageArena
	f.Fuzz(func(t *testing.T, data []byte) {
		got, used, err := DecodePageInto(data, &a)
		want, wantUsed, werr := DecodePage(data)
		if (err == nil) != (werr == nil) {
			t.Fatalf("arena err %v, DecodePage err %v", err, werr)
		}
		if err != nil {
			return
		}
		if used != wantUsed {
			t.Fatalf("consumed %d bytes, DecodePage consumed %d", used, wantUsed)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatal("arena decode differs from DecodePage")
		}
	})
}
