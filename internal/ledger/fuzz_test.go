package ledger

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Decoder robustness: arbitrary bytes must never panic, and must either
// fail cleanly or round-trip.

func TestDecodeTxNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		tx, used, err := DecodeTx(data)
		if err != nil {
			return tx == nil
		}
		// A successful decode must re-encode to the consumed prefix.
		out := tx.Encode(nil)
		return used == len(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeMetaNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		m, _, err := DecodeMeta(data)
		return (err == nil) == (m != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestDecodePageNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		p, _, err := DecodePage(data)
		return (err == nil) == (p != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Bit-flip robustness: corrupting a valid encoding must either decode to
// a *different* transaction or fail — silent identity corruption would
// break hashing and signatures.
func TestDecodeTxBitFlips(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tx := randomTx(r)
	data := tx.Encode(nil)
	orig := tx.Hash()
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		got, _, err := DecodeTx(mut)
		if err != nil {
			continue
		}
		if got.Hash() == orig && got.Encode(nil)[i] == data[i] {
			t.Fatalf("bit flip at byte %d silently preserved the transaction", i)
		}
	}
}

// Truncation sweep: every strict prefix of a valid page encoding must
// fail to decode (no partial acceptance).
func TestDecodePageAllPrefixesFail(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	txs := []*Tx{randomTx(r), randomTx(r)}
	metas := []*TxMeta{
		{Result: ResultSuccess, PathHops: []uint8{1, 2}},
		{Result: ResultPathDry},
	}
	p := &Page{
		Header: PageHeader{Sequence: 9, TxSetHash: TxSetHash(txs)},
		Txs:    txs,
		Metas:  metas,
	}
	data := p.Encode(nil)
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := DecodePage(data[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(data))
		}
	}
}
