package replay

import (
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/ledgerstore"
	"ripplestudy/internal/payment"
)

// sameResult asserts two replay results are bit-identical in everything
// but the informational pipeline Stats.
func sameResult(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if got.Cross != want.Cross {
		t.Errorf("%s: cross row = %+v, want %+v", label, got.Cross, want.Cross)
	}
	if got.Single != want.Single {
		t.Errorf("%s: single row = %+v, want %+v", label, got.Single, want.Single)
	}
	if got.RemovedMarketMakers != want.RemovedMarketMakers {
		t.Errorf("%s: removed MMs = %d, want %d", label, got.RemovedMarketMakers, want.RemovedMarketMakers)
	}
	if got.SnapshotSeq != want.SnapshotSeq {
		t.Errorf("%s: snapshot seq = %d, want %d", label, got.SnapshotSeq, want.SnapshotSeq)
	}
	if got.StateDigest != want.StateDigest {
		t.Errorf("%s: state digest differs from sequential replay", label)
	}
	if got.StateRoot != want.StateRoot {
		t.Errorf("%s: sealed state root differs from sequential replay", label)
	}
	if got.StateRoot.IsZero() {
		t.Errorf("%s: sealed state root is zero", label)
	}
}

// TestRunParallelMatchesSequential is the differential test pinning the
// optimistic-parallel replay bit-identical to the sequential reference,
// across worker counts. `make race` runs it under the race detector,
// which also exercises the concurrent planner.
func TestRunParallelMatchesSequential(t *testing.T) {
	pages, _ := generate(t, 4000, 7)
	snap := pages[len(pages)*7/10].Header.Sequence
	want, err := Run(FromPages(pages), snap)
	if err != nil {
		t.Fatal(err)
	}
	if want.Total().Submitted == 0 {
		t.Fatal("no replayable payments; differential test is vacuous")
	}
	for _, w := range []int{1, 2, 4, 8} {
		got, err := RunParallel(FromPages(pages), snap, w)
		if err != nil {
			t.Fatalf("RunParallel(%d workers): %v", w, err)
		}
		sameResult(t, want, got, "parallel")
		if got.Stats.Workers != w {
			t.Errorf("stats workers = %d, want %d", got.Stats.Workers, w)
		}
		if got.Stats.PlannedAhead+got.Stats.Conflicts == 0 {
			t.Error("no payments went through the optimistic planner")
		}
		t.Logf("workers=%d: %d batches, %d planned ahead, %d conflicts",
			w, got.Stats.Batches, got.Stats.PlannedAhead, got.Stats.Conflicts)
	}
}

// TestRunStoreMatchesSlice replays the same history from a disk store
// (exercising the segment sequence index / PagesRange path) and from
// memory, sequentially and in parallel — all four must agree.
func TestRunStoreMatchesSlice(t *testing.T) {
	pages, _ := generate(t, 2000, 8)
	snap := pages[len(pages)*7/10].Header.Sequence

	dir := t.TempDir()
	store, err := ledgerstore.Create(dir, ledgerstore.WithSegmentBytes(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		if err := store.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	want, err := Run(FromPages(pages), snap)
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := Run(store, snap)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, fromStore, "store sequential")
	parStore, err := RunParallel(store, snap, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, parStore, "store parallel")
}

// hist drives a real engine to produce a consistent crafted history:
// each submitted transaction is applied immediately, so sequences,
// funding, and metadata always match what replay's BuildState will see.
type hist struct {
	t     *testing.T
	eng   *payment.Engine
	pages []*ledger.Page
	seq   uint64
	txs   []*ledger.Tx
	metas []*ledger.TxMeta
}

func newHist(t *testing.T) *hist {
	return &hist{t: t, eng: payment.NewEngine()}
}

func (h *hist) submit(mutate func(*ledger.Tx)) *ledger.TxMeta {
	h.t.Helper()
	tx := &ledger.Tx{Fee: payment.BaseFee}
	mutate(tx)
	tx.Sequence = h.eng.NextSequence(tx.Account)
	meta, err := h.eng.Apply(tx)
	if err != nil {
		h.t.Fatalf("hist apply: %v", err)
	}
	h.txs = append(h.txs, tx)
	h.metas = append(h.metas, meta)
	return meta
}

// close seals the pending transactions into the next page.
func (h *hist) close() uint64 {
	h.seq++
	h.pages = append(h.pages, &ledger.Page{
		Header: ledger.PageHeader{Sequence: h.seq},
		Txs:    h.txs,
		Metas:  h.metas,
	})
	h.txs, h.metas = nil, nil
	return h.seq
}

func (h *hist) fund(a addr.AccountID, drops amount.Drops) {
	h.t.Helper()
	meta := h.submit(func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Account = addr.AccountZero
		tx.Destination = a
		tx.Amount = amount.XRPAmount(drops)
	})
	if !meta.Result.Succeeded() {
		h.t.Fatalf("funding failed: %s", meta.Result)
	}
}

func (h *hist) trust(truster, trustee addr.AccountID, cur amount.Currency, limit string) {
	h.t.Helper()
	meta := h.submit(func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.Account = truster
		tx.LimitPeer = trustee
		tx.Limit = amount.New(cur, amount.MustParse(limit))
	})
	if !meta.Result.Succeeded() {
		h.t.Fatalf("trust set failed: %s", meta.Result)
	}
}

func (h *hist) pay(from, to addr.AccountID, cur amount.Currency, v string) *ledger.TxMeta {
	h.t.Helper()
	return h.submit(func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Account = from
		tx.Destination = to
		tx.Amount = amount.New(cur, amount.MustParse(v))
	})
}

func acct(b byte) addr.AccountID { return addr.AccountID{b} }

// TestReplaySourceCreatedAfterSnapshot covers a payment whose sender
// account only comes into existence after the snapshot: the funding is
// a direct XRP transfer (excluded from replay), so the replayed payment
// must fail cleanly as unfunded — counted submitted, not delivered —
// and sequential and parallel replay must agree exactly.
func TestReplaySourceCreatedAfterSnapshot(t *testing.T) {
	eur := amount.MustCurrency("EUR")
	alice, bob, dave := acct(1), acct(2), acct(3)

	h := newHist(t)
	h.fund(alice, 1_000_000_000)
	h.fund(bob, 1_000_000_000)
	h.trust(bob, alice, eur, "100")
	snap := h.close()

	// Post-snapshot: dave is born, gets trusted, and pays.
	h.fund(dave, 1_000_000_000) // direct XRP: not replayed
	h.trust(bob, dave, eur, "100")
	if m := h.pay(dave, bob, eur, "40"); !m.Result.Succeeded() {
		t.Fatalf("dave's payment failed in history: %s", m.Result)
	}
	// A control payment from a pre-snapshot account still delivers.
	if m := h.pay(alice, bob, eur, "30"); !m.Result.Succeeded() {
		t.Fatalf("alice's payment failed in history: %s", m.Result)
	}
	h.close()

	want, err := Run(FromPages(h.pages), snap)
	if err != nil {
		t.Fatal(err)
	}
	if want.Single.Submitted != 2 {
		t.Fatalf("submitted = %d, want 2", want.Single.Submitted)
	}
	if want.Single.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (dave unborn, alice fine)", want.Single.Delivered)
	}
	got, err := RunParallel(FromPages(h.pages), snap, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got, "parallel")
}

// TestOptimisticTrustLineRaceReplans pins the conflict path: a
// trust-line update lands in the same batch as a payment whose plan
// depends on it, so the optimistic plan (computed against the frozen
// pre-batch state, where the line is too small) must be detected as
// stale and re-planned — delivering the payment exactly as sequential
// replay does.
func TestOptimisticTrustLineRaceReplans(t *testing.T) {
	eur := amount.MustCurrency("EUR")
	alice, bob := acct(4), acct(5)

	h := newHist(t)
	h.fund(alice, 1_000_000_000)
	h.fund(bob, 1_000_000_000)
	h.trust(bob, alice, eur, "100")
	snap := h.close()

	// Post-snapshot, in one batch: the line grows, then a payment needs
	// the grown limit.
	h.trust(bob, alice, eur, "200")
	if m := h.pay(alice, bob, eur, "150"); !m.Result.Succeeded() {
		t.Fatalf("payment failed in history: %s", m.Result)
	}
	h.close()

	want, err := Run(FromPages(h.pages), snap)
	if err != nil {
		t.Fatal(err)
	}
	if want.Single.Delivered != 1 {
		t.Fatalf("sequential delivered = %d, want 1", want.Single.Delivered)
	}
	got, err := RunParallel(FromPages(h.pages), snap, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got, "parallel")
	if got.Stats.Conflicts != 1 {
		t.Errorf("conflicts = %d, want exactly 1 (the raced payment)", got.Stats.Conflicts)
	}
	if got.Single.Delivered != 1 {
		t.Errorf("parallel delivered = %d, want 1 after re-plan", got.Single.Delivered)
	}
}
