package serve

import (
	"sync"
	"testing"
)

// TestViewWorkerShedAccounting pins the load-shedding ledger at the
// worker level: with a gated apply and concurrent non-blocking offerers,
// every offered update must end up either applied (and sealed by the
// shutdown publish) or counted as dropped — sealed + dropped == offered,
// with no update lost or double-counted. Run under -race in CI.
func TestViewWorkerShedAccounting(t *testing.T) {
	release := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	w := newViewWorker(viewConfig{name: "test", queue: 2, batch: 4,
		apply: func(int, update) {
			once.Do(func() { close(first) })
			<-release
		},
		publish: func(uint64) {}})

	w.offer(update{}) // worker blocks in apply
	<-first

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if i%10 == 0 {
					b := getUpdateBatch()
					for j := 0; j < 3; j++ {
						b = append(b, update{})
					}
					if !w.offerBatch(b) {
						putUpdateBatch(b)
					}
				} else {
					w.offer(update{})
				}
			}
		}()
	}
	wg.Wait()
	close(release)
	w.close()

	offered, applied, dropped, sealed := w.offered.Load(), w.applied.Load(), w.dropped.Load(), w.sealed.Load()
	if dropped == 0 {
		t.Fatal("no updates dropped with a gated worker and concurrent offerers")
	}
	if applied+dropped != offered {
		t.Fatalf("applied %d + dropped %d != offered %d", applied, dropped, offered)
	}
	if sealed != applied {
		t.Fatalf("sealed %d != applied %d after shutdown seal", sealed, applied)
	}
	if w.lag() != 0 {
		t.Fatalf("lag %d after close, want 0", w.lag())
	}
}

// TestNonBlockingServiceShedsAndDegrades drives a NonBlocking service
// with a one-batch inbox until the page views shed real load, checking
// along the way that /healthz status is coupled exactly to the drop
// counter — "ok" iff zero drops — and afterwards that every view's
// ledger balances: sealed + dropped == offered.
func TestNonBlockingServiceShedsAndDegrades(t *testing.T) {
	pages := genPages(t, 1500, 53)
	s := NewService(Options{NonBlocking: true, QueueSize: 1, PublishBatch: 1})
	defer s.Close()

	if h := s.Health(); h.Status != "ok" || h.DroppedEvents != 0 {
		t.Fatalf("fresh service health = %+v, want ok with 0 drops", h)
	}

	// PublishBatch 1 makes the fingerprint view clone tables per update,
	// so with a single-slot inbox the producer outruns it quickly.
	dropped := uint64(0)
	for round := 0; round < 20 && dropped == 0; round++ {
		for _, p := range pages {
			if err := s.IngestPage(p); err != nil {
				t.Fatal(err)
			}
			h := s.Health()
			if (h.DroppedEvents > 0) != (h.Status == "degraded") {
				t.Fatalf("status %q decoupled from drop counter %d", h.Status, h.DroppedEvents)
			}
			if h.DroppedEvents > 0 {
				dropped = h.DroppedEvents
				break
			}
		}
	}
	if dropped == 0 {
		t.Fatal("no drops after 20 rounds through a single-slot inbox")
	}

	drain(t, s)
	for _, w := range s.views {
		offered, droppedW, sealed := w.offered.Load(), w.dropped.Load(), w.sealed.Load()
		if sealed+droppedW != offered {
			t.Fatalf("view %s: sealed %d + dropped %d != offered %d", w.name, sealed, droppedW, offered)
		}
		if w.applied.Load()+droppedW != offered {
			t.Fatalf("view %s: applied %d + dropped %d != offered %d", w.name, w.applied.Load(), droppedW, offered)
		}
	}
	if h := s.Health(); h.Status != "degraded" {
		t.Fatalf("health after shedding = %q, want degraded", h.Status)
	}
}
