package deanon

import (
	"math/rand"
	"testing"

	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/synth"
)

// generateInto streams a small synthetic history into sink.
func generateInto(t *testing.T, sink func(*ledger.Page) error) error {
	t.Helper()
	_, err := synth.Generate(synth.Config{Payments: 8000, Seed: 3, SkipSignatures: true}, sink)
	return err
}

// mitFeatures builds a history of `perSender` payments for each of
// `senders` accounts, mostly with unique fingerprints.
func mitFeatures(senders, perSender int) []Features {
	r := rand.New(rand.NewSource(31))
	var out []Features
	tm := uint32(1000)
	for s := 0; s < senders; s++ {
		for p := 0; p < perSender; p++ {
			tm += uint32(1 + r.Intn(10))
			out = append(out, Features{
				Sender:      acct(uint64(s + 1)),
				Destination: acct(uint64(1000 + r.Intn(20))),
				Currency:    amount.USD,
				Amount:      amount.FromInt64(int64(10 * (1 + r.Intn(500)))),
				Time:        ledger.CloseTime(tm),
			})
		}
	}
	return out
}

func TestFeatureImportanceTimestampDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a history")
	}
	s := NewImportanceStudy()
	err := generateInto(t, func(p *ledger.Page) error {
		for i := range p.Txs {
			if f, ok := FromTransaction(p, p.Txs[i], p.Metas[i]); ok {
				s.Observe(f)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	full := s.FullIG()
	rows := s.Results()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-12s alone=%.4f dropped=%.4f marginal=%.4f", r.Feature, r.Alone, r.Dropped, full-r.Dropped)
	}
	// The paper's claim: the timestamp has the highest information gain
	// of all features, both alone and marginally.
	if rows[0].Feature != "timestamp" {
		t.Errorf("strongest marginal feature = %s, want timestamp", rows[0].Feature)
	}
	var byName = map[string]FeatureImportance{}
	for _, r := range rows {
		byName[r.Feature] = r
	}
	if byName["timestamp"].Alone <= byName["amount"].Alone {
		t.Errorf("timestamp alone (%.4f) should beat amount alone (%.4f)",
			byName["timestamp"].Alone, byName["amount"].Alone)
	}
	if byName["currency"].Alone > 0.05 {
		t.Errorf("currency alone = %.4f, should be nearly useless", byName["currency"].Alone)
	}
	// Dropping any single feature never increases IG.
	for _, r := range rows {
		if r.Dropped > full+1e-9 {
			t.Errorf("dropping %s increased IG", r.Feature)
		}
	}
}

func TestMitigationExposureDropsWithWallets(t *testing.T) {
	feats := mitFeatures(10, 40)
	rows := MitigationStudy(feats, []int{1, 2, 4, 8})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Uniqueness is unaffected by splitting (the sender is not in the
	// fingerprint).
	for _, r := range rows[1:] {
		if r.UniqueRate != rows[0].UniqueRate {
			t.Errorf("k=%d changed unique rate %v -> %v", r.Wallets, rows[0].UniqueRate, r.UniqueRate)
		}
	}
	// Exposure at k=1 equals the unique rate (a unique payment exposes
	// the whole history).
	if diff := rows[0].Exposure - rows[0].UniqueRate; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("k=1 exposure %v != unique rate %v", rows[0].Exposure, rows[0].UniqueRate)
	}
	// Exposure decreases monotonically, roughly as 1/k.
	for i := 1; i < len(rows); i++ {
		if rows[i].Exposure >= rows[i-1].Exposure {
			t.Errorf("exposure not decreasing: k=%d %v -> k=%d %v",
				rows[i-1].Wallets, rows[i-1].Exposure, rows[i].Wallets, rows[i].Exposure)
		}
	}
	if rows[3].Exposure > rows[0].Exposure/4 {
		t.Errorf("k=8 exposure %v, want well under a quarter of k=1's %v",
			rows[3].Exposure, rows[0].Exposure)
	}
}

func TestMitigationCostGrowsLinearly(t *testing.T) {
	feats := mitFeatures(10, 40)
	rows := MitigationStudy(feats, []int{1, 2, 3})
	if rows[0].ExtraTrustLines != 0 || rows[0].ExtraReserveXRP != 0 {
		t.Errorf("k=1 has bootstrap cost: %+v", rows[0])
	}
	if rows[1].ExtraTrustLines == 0 {
		t.Error("k=2 has no trust-line cost")
	}
	if rows[2].ExtraTrustLines != 2*rows[1].ExtraTrustLines {
		t.Errorf("trust-line cost not linear: k=2 %d, k=3 %d",
			rows[1].ExtraTrustLines, rows[2].ExtraTrustLines)
	}
	if rows[1].ExtraReserveXRP <= 0 {
		t.Error("k=2 locks no reserve")
	}
}

func TestMitigationLinkability(t *testing.T) {
	// One sender paying the same destination repeatedly: with k wallets
	// the destination links all of them.
	var feats []Features
	for i := 0; i < 30; i++ {
		feats = append(feats, Features{
			Sender:      acct(1),
			Destination: acct(2),
			Currency:    amount.USD,
			Amount:      amount.FromInt64(int64(10 * (i + 1))),
			Time:        ledger.CloseTime(uint32(1000 + i)),
		})
	}
	rows := MitigationStudy(feats, []int{1, 4})
	if rows[0].LinkableAccounts != 0 {
		t.Errorf("k=1 linkable = %d, want 0 (nothing to link)", rows[0].LinkableAccounts)
	}
	if rows[1].LinkableAccounts != 4 {
		t.Errorf("k=4 linkable = %d, want 4 (the destination sees all wallets)", rows[1].LinkableAccounts)
	}
}

func TestMitigationOnSyntheticHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a history")
	}
	// End-to-end over generated data, via the core-facade style path.
	var feats []Features
	study := func(p *ledger.Page) error {
		for i := range p.Txs {
			if f, ok := FromTransaction(p, p.Txs[i], p.Metas[i]); ok {
				feats = append(feats, f)
			}
		}
		return nil
	}
	if err := generateInto(t, study); err != nil {
		t.Fatal(err)
	}
	rows := MitigationStudy(feats, []int{1, 2, 4, 8, 16})
	prev := 2.0
	for _, r := range rows {
		t.Logf("k=%2d exposure=%.4f unique=%.4f extra-lines=%d reserve=%.0f XRP linkable=%d",
			r.Wallets, r.Exposure, r.UniqueRate, r.ExtraTrustLines, r.ExtraReserveXRP, r.LinkableAccounts)
		if r.Exposure > prev {
			t.Errorf("exposure increased at k=%d", r.Wallets)
		}
		prev = r.Exposure
	}
	// The paper's argument: even at high k, the attack itself still
	// works (uniqueness stays high) and the cost is real.
	if rows[len(rows)-1].UniqueRate < 0.9 {
		t.Errorf("unique rate = %v, splitting should not change it", rows[len(rows)-1].UniqueRate)
	}
	if rows[len(rows)-1].ExtraReserveXRP <= 0 {
		t.Error("no reserve cost at k=16")
	}
}
