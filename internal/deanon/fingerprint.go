package deanon

import (
	"encoding/binary"

	"ripplestudy/internal/amount"
)

// The hot path of the §V study hashes every payment under every
// resolution tuple — 10 fingerprints per payment, 230M fingerprints at
// the paper's 23M-payment scale. The generic FingerprintOf used to build
// a fresh hash.Hash per call; at that scale the allocations dominated.
// This file is the allocation-free fast path: FNV-1a is inlined over
// stack buffers, and FeatureEnc precomputes every feature's byte
// encoding (all Table I rounding levels, all time granularities) once
// per payment so that a study over k resolutions performs the rounding
// and serialization work 1×, not k×. Both paths are bit-identical to
// hashing the same byte sequence with hash/fnv's New64a.

// FNV-1a 64-bit parameters (FNV-0 offset basis hashed over
// "chongo <Landon Curt Noll> /\\../\\", and the 64-bit FNV prime).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvBytes folds b into the running FNV-1a state h.
func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// Feature-chunk sizes: each chunk carries its domain-separation tag
// ('A', 'T', 'C', 'D') followed by the fixed-width feature encoding.
const (
	amtChunkLen  = 1 + 16 // 'A' ∥ mantissa ∥ exponent<<1|sign
	timeChunkLen = 1 + 8  // 'T' ∥ coarsened close time
	curChunkLen  = 1 + 3  // 'C' ∥ currency code
	dstChunkLen  = 1 + 20 // 'D' ∥ destination account
)

// encodeAmount serializes a rounded amount value into an 'A' chunk.
func encodeAmount(dst *[amtChunkLen]byte, v amount.Value) {
	dst[0] = 'A'
	m := v.Mantissa()
	e := uint64(int64(v.Exponent()))
	s := uint64(0)
	if v.IsNegative() {
		s = 1
	}
	binary.BigEndian.PutUint64(dst[1:9], m)
	binary.BigEndian.PutUint64(dst[9:17], e<<1|s)
}

// FeatureEnc is a payment's features pre-encoded at every resolution
// level: three Table I rounding levels plus the exact amount, and the
// four time granularities. Building one costs three roundings and four
// truncations; every subsequent Fingerprint call is a pure FNV pass
// over the precomputed chunks, with no allocation and no re-rounding.
type FeatureEnc struct {
	// amt[r-1] is the chunk for AmountRes r (Max, Avg, Low, Exact).
	amt [4][amtChunkLen]byte
	// tim[r-1] is the chunk for TimeRes r (Seconds … Days).
	tim [4][timeChunkLen]byte
	cur [curChunkLen]byte
	dst [dstChunkLen]byte
}

// EncodeFeatures precomputes f's fingerprint chunks at every level.
func EncodeFeatures(f Features) FeatureEnc {
	var e FeatureEnc
	for res := AmountMax; res <= AmountExact; res++ {
		encodeAmount(&e.amt[res-1], RoundAmount(f.Amount, f.Currency, res))
	}
	for res := TimeSeconds; res <= TimeDays; res++ {
		e.tim[res-1][0] = 'T'
		binary.BigEndian.PutUint64(e.tim[res-1][1:9], uint64(CoarsenTime(f.Time, res)))
	}
	e.cur[0] = 'C'
	copy(e.cur[1:], f.Currency[:])
	e.dst[0] = 'D'
	copy(e.dst[1:], f.Destination[:])
	return e
}

// Fingerprint combines the precomputed chunks selected by res into the
// payment's fingerprint. The result is identical to FingerprintOf on
// the original features.
func (e *FeatureEnc) Fingerprint(res Resolution) Fingerprint {
	h := fnvOffset64
	if res.Amount != AmountOff {
		h = fnvBytes(h, e.amt[res.Amount-1][:])
	}
	if res.Time != TimeOff {
		h = fnvBytes(h, e.tim[res.Time-1][:])
	}
	if res.Currency {
		h = fnvBytes(h, e.cur[:])
	}
	if res.Destination {
		h = fnvBytes(h, e.dst[:])
	}
	return Fingerprint(h)
}
