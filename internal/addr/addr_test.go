package addr

import (
	"bytes"
	"crypto/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBase58RoundTrip(t *testing.T) {
	tests := [][]byte{
		{0},
		{0, 0, 0},
		{1},
		{0xff},
		{0, 1, 2, 3},
		bytes.Repeat([]byte{0xab}, 20),
		bytes.Repeat([]byte{0x00}, 5),
	}
	for _, in := range tests {
		enc := encodeBase58(in)
		dec, err := decodeBase58(enc)
		if err != nil {
			t.Errorf("decode(%q): %v", enc, err)
			continue
		}
		if !bytes.Equal(dec, in) {
			t.Errorf("round trip %x -> %q -> %x", in, enc, dec)
		}
	}
}

func TestPropBase58RoundTrip(t *testing.T) {
	f := func(in []byte) bool {
		if len(in) == 0 {
			return true // tokens are never empty; empty has no encoding
		}
		dec, err := decodeBase58(encodeBase58(in))
		return err == nil && bytes.Equal(dec, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestBase58CheckDetectsCorruption(t *testing.T) {
	payload := bytes.Repeat([]byte{0x42}, 20)
	token := EncodeBase58Check(VersionAccountID, payload)
	// Flip one character somewhere past the prefix.
	for i := 5; i < len(token); i++ {
		for _, repl := range []byte{'r', 'p', 'z'} {
			if token[i] == repl {
				continue
			}
			corrupted := token[:i] + string(repl) + token[i+1:]
			if _, err := DecodeBase58Check(corrupted, VersionAccountID); err == nil {
				t.Fatalf("corrupted token %q accepted", corrupted)
			}
			break
		}
	}
}

func TestDecodeBase58Errors(t *testing.T) {
	if _, err := decodeBase58(""); err == nil {
		t.Error("empty string: want error")
	}
	if _, err := decodeBase58("0OIl"); err == nil {
		t.Error("characters outside alphabet: want error")
	}
	if _, err := DecodeBase58Check("rrr", VersionAccountID); err == nil {
		t.Error("too-short token: want error")
	}
}

func TestAccountIDEncoding(t *testing.T) {
	kp := KeyPairFromSeed(7)
	id := kp.AccountID()
	s := id.String()
	if !strings.HasPrefix(s, "r") {
		t.Errorf("account address %q does not start with 'r'", s)
	}
	back, err := ParseAccountID(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Errorf("round trip %s -> %s", id, back)
	}
}

func TestAccountZero(t *testing.T) {
	if !AccountZero.IsZero() {
		t.Error("AccountZero.IsZero() = false")
	}
	s := AccountZero.String()
	if !strings.HasPrefix(s, "r") {
		t.Errorf("AccountZero address %q does not start with 'r'", s)
	}
	back, err := ParseAccountID(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != AccountZero {
		t.Error("AccountZero does not round trip")
	}
}

func TestAccountIDShort(t *testing.T) {
	id := KeyPairFromSeed(99).AccountID()
	short := id.Short()
	full := id.String()
	if !strings.Contains(short, "...") {
		t.Errorf("Short() = %q, want ellipsis form", short)
	}
	if !strings.HasPrefix(full, short[:6]) {
		t.Errorf("Short() prefix %q does not match address %q", short[:6], full)
	}
	if !strings.HasSuffix(full, short[len(short)-6:]) {
		t.Errorf("Short() suffix does not match address")
	}
}

func TestNodeIDEncoding(t *testing.T) {
	kp := KeyPairFromSeed(13)
	n := kp.NodeID()
	s := n.String()
	if !strings.HasPrefix(s, "n") {
		t.Errorf("node key %q does not start with 'n'", s)
	}
	back, err := ParseNodeID(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != n {
		t.Errorf("round trip %s -> %s", n, back)
	}
	if !bytes.Equal(back.PublicKey(), kp.PublicKey()) {
		t.Error("NodeID does not carry the public key")
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	kp := KeyPairFromSeed(1)
	accountToken := kp.AccountID().String()
	if _, err := ParseNodeID(accountToken); err == nil {
		t.Error("parsing an account token as a node ID: want error")
	}
	nodeToken := kp.NodeID().String()
	if _, err := ParseAccountID(nodeToken); err == nil {
		t.Error("parsing a node token as an account ID: want error")
	}
}

func TestKeyPairDeterminism(t *testing.T) {
	a := KeyPairFromSeed(42)
	b := KeyPairFromSeed(42)
	c := KeyPairFromSeed(43)
	if a.AccountID() != b.AccountID() {
		t.Error("same seed produced different accounts")
	}
	if a.AccountID() == c.AccountID() {
		t.Error("different seeds produced the same account")
	}
}

func TestSignVerify(t *testing.T) {
	kp, err := GenerateKeyPair(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("ledger page 12345")
	sig := kp.Sign(msg)
	if !Verify(kp.PublicKey(), msg, sig) {
		t.Error("valid signature rejected")
	}
	if Verify(kp.PublicKey(), []byte("other message"), sig) {
		t.Error("signature accepted for wrong message")
	}
	other := KeyPairFromSeed(5)
	if Verify(other.PublicKey(), msg, sig) {
		t.Error("signature accepted under wrong key")
	}
	if Verify(nil, msg, sig) {
		t.Error("nil key accepted")
	}
	if Verify(kp.PublicKey(), msg, sig[:10]) {
		t.Error("truncated signature accepted")
	}
}

func TestAccountIDTextMarshal(t *testing.T) {
	id := KeyPairFromSeed(3).AccountID()
	text, err := id.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back AccountID
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Error("text marshal round trip failed")
	}
}

func TestAccountIDLess(t *testing.T) {
	a := AccountID{1}
	b := AccountID{2}
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Error("Less ordering is inconsistent")
	}
}

func TestNodeIDFromPublicKeyRejectsBadLength(t *testing.T) {
	if _, err := NodeIDFromPublicKey(make([]byte, 31)); err == nil {
		t.Error("31-byte key accepted")
	}
}
