package ledger

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
)

func TestHashBasics(t *testing.T) {
	h := SHA512Half([]byte("hello"))
	if h.IsZero() {
		t.Fatal("SHA512Half returned zero hash")
	}
	if h == SHA512Half([]byte("world")) {
		t.Error("distinct inputs produced equal hashes")
	}
	s := h.String()
	if len(s) != 64 {
		t.Fatalf("hash string length %d, want 64", len(s))
	}
	if strings.ToUpper(s) != s {
		t.Error("hash string is not uppercase")
	}
	back, err := ParseHash(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Error("hash does not round trip through hex")
	}
	if _, err := ParseHash("zz"); err == nil {
		t.Error("short hash accepted")
	}
	if _, err := ParseHash(strings.Repeat("g", 64)); err == nil {
		t.Error("non-hex hash accepted")
	}
	if h.Short() != s[:8] {
		t.Error("Short() is not the 8-char prefix")
	}
}

func TestCloseTime(t *testing.T) {
	ref := time.Date(2015, 8, 24, 15, 41, 3, 0, time.UTC)
	ct := CloseTimeFromTime(ref)
	if !ct.Time().Equal(ref) {
		t.Errorf("close time round trip: %v -> %v", ref, ct.Time())
	}
	if got := ct.String(); got != "2015-08-24 15:41:03" {
		t.Errorf("CloseTime.String() = %q", got)
	}
	// Times before the Ripple epoch clamp to zero.
	if CloseTimeFromTime(time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC)) != 0 {
		t.Error("pre-epoch time did not clamp to 0")
	}
}

func randomTx(r *rand.Rand) *Tx {
	kp := addr.KeyPairFromSeed(r.Uint64())
	dest := addr.KeyPairFromSeed(r.Uint64())
	tx := &Tx{
		Type:        TxType(r.Intn(5) + 1),
		Account:     kp.AccountID(),
		Sequence:    r.Uint32(),
		Fee:         amount.Drops(r.Intn(100) + 10),
		Destination: dest.AccountID(),
		Amount:      amount.New(amount.USD, amount.MustValue(int64(r.Intn(100000)+1), -2)),
		SendMax:     amount.New(amount.EUR, amount.MustValue(int64(r.Intn(100000)+1), -2)),
		TakerPays:   amount.New(amount.BTC, amount.MustValue(int64(r.Intn(1000)+1), -4)),
		TakerGets:   amount.New(amount.XRP, amount.MustValue(int64(r.Intn(1000000)+1), -6)),
		LimitPeer:   dest.AccountID(),
		Limit:       amount.New(amount.USD, amount.FromInt64(int64(r.Intn(1000)))),
	}
	tx.Sign(kp)
	return tx
}

func TestTxEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		tx := randomTx(r)
		data := tx.Encode(nil)
		back, used, err := DecodeTx(data)
		if err != nil {
			t.Fatalf("tx %d: decode: %v", i, err)
		}
		if used != len(data) {
			t.Fatalf("tx %d: consumed %d of %d bytes", i, used, len(data))
		}
		if !reflect.DeepEqual(tx, back) {
			t.Fatalf("tx %d: round trip mismatch:\n%+v\n%+v", i, tx, back)
		}
		if tx.Hash() != back.Hash() {
			t.Fatalf("tx %d: hash changed across round trip", i)
		}
	}
}

func TestTxDecodeTruncated(t *testing.T) {
	tx := randomTx(rand.New(rand.NewSource(2)))
	data := tx.Encode(nil)
	for _, cut := range []int{0, 1, 10, len(data) / 2, len(data) - 1} {
		if _, _, err := DecodeTx(data[:cut]); err == nil {
			t.Errorf("decoding %d-byte prefix succeeded", cut)
		}
	}
}

func TestTxDecodeBadVersion(t *testing.T) {
	tx := randomTx(rand.New(rand.NewSource(3)))
	data := tx.Encode(nil)
	data[0] = 99
	if _, _, err := DecodeTx(data); err == nil {
		t.Error("bad codec version accepted")
	}
}

func TestTxSignVerify(t *testing.T) {
	kp := addr.KeyPairFromSeed(77)
	tx := &Tx{
		Type:        TxPayment,
		Account:     kp.AccountID(),
		Sequence:    1,
		Fee:         10,
		Destination: addr.KeyPairFromSeed(78).AccountID(),
		Amount:      amount.MustAmount("4.5/USD"),
	}
	if tx.VerifySignature() {
		t.Error("unsigned transaction verified")
	}
	tx.Sign(kp)
	if !tx.VerifySignature() {
		t.Error("signed transaction did not verify")
	}
	// Tampering invalidates the signature.
	tx.Amount = amount.MustAmount("1000000/USD")
	if tx.VerifySignature() {
		t.Error("tampered transaction verified")
	}
	// Signing key must match the sending account.
	tx.Amount = amount.MustAmount("4.5/USD")
	tx.Sign(addr.KeyPairFromSeed(79))
	if tx.VerifySignature() {
		t.Error("transaction signed by a different account verified")
	}
}

func TestTxHashCoversSignature(t *testing.T) {
	kp := addr.KeyPairFromSeed(80)
	tx := &Tx{Type: TxPayment, Account: kp.AccountID(), Sequence: 1, Fee: 10}
	unsigned := tx.Hash()
	tx.Sign(kp)
	if tx.Hash() == unsigned {
		t.Error("tx hash did not change after signing")
	}
}

func TestMetaRoundTrip(t *testing.T) {
	m := &TxMeta{
		Result:         ResultSuccess,
		Delivered:      amount.MustAmount("4.5/USD"),
		PathHops:       []uint8{2, 3, 2, 8},
		OffersConsumed: 5,
		CrossCurrency:  true,
		Intermediaries: []addr.AccountID{
			addr.KeyPairFromSeed(1).AccountID(),
			addr.KeyPairFromSeed(2).AccountID(),
		},
	}
	data := m.EncodeMeta(nil)
	back, used, err := DecodeMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(data) {
		t.Fatalf("consumed %d of %d bytes", used, len(data))
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("meta round trip mismatch:\n%+v\n%+v", m, back)
	}
	if back.ParallelPaths() != 4 || back.MaxHops() != 8 {
		t.Errorf("ParallelPaths=%d MaxHops=%d, want 4 and 8", back.ParallelPaths(), back.MaxHops())
	}
}

func TestPageEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	txs := []*Tx{randomTx(r), randomTx(r), randomTx(r)}
	metas := []*TxMeta{
		{Result: ResultSuccess, Delivered: amount.MustAmount("1/USD"), PathHops: []uint8{1}},
		{Result: ResultPathDry},
		{Result: ResultSuccess, Delivered: amount.MustAmount("2/XRP")},
	}
	p := &Page{
		Header: PageHeader{
			Sequence:   42,
			ParentHash: SHA512Half([]byte("parent")),
			TxSetHash:  TxSetHash(txs),
			StateHash:  SHA512Half([]byte("state")),
			CloseTime:  CloseTimeFromTime(time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)),
			TotalDrops: GenesisTotalDrops - 1000,
		},
		Txs:   txs,
		Metas: metas,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	data := p.Encode(nil)
	back, used, err := DecodePage(data)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(data) {
		t.Fatalf("consumed %d of %d bytes", used, len(data))
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatal("page round trip mismatch")
	}
	if p.Header.Hash() != back.Header.Hash() {
		t.Error("page hash changed across round trip")
	}
}

func TestPageValidateCatchesMismatches(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	txs := []*Tx{randomTx(r)}
	p := &Page{
		Header: PageHeader{Sequence: 2, TxSetHash: TxSetHash(txs)},
		Txs:    txs,
		Metas:  nil, // parity violation
	}
	if err := p.Validate(); err == nil {
		t.Error("meta/tx parity violation not caught")
	}
	p.Metas = []*TxMeta{{Result: ResultSuccess}}
	p.Header.TxSetHash = Hash{}
	if err := p.Validate(); err == nil {
		t.Error("tx set hash mismatch not caught")
	}
}

func TestChainAppend(t *testing.T) {
	g := Genesis("main", 0)
	c := NewChain(g)
	if c.Len() != 1 || c.Tip() != g {
		t.Fatal("fresh chain is malformed")
	}
	next := &Page{
		Header: PageHeader{
			Sequence:   2,
			ParentHash: g.Header.Hash(),
			TxSetHash:  TxSetHash(nil),
			StateHash:  SHA512Half([]byte("s2")),
			CloseTime:  5,
			TotalDrops: GenesisTotalDrops,
		},
	}
	if err := c.Append(next); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Tip() != next {
		t.Error("append did not extend the chain")
	}
	if got, ok := c.ByHash(next.Header.Hash()); !ok || got != next {
		t.Error("ByHash lookup failed")
	}

	// Wrong sequence.
	bad := &Page{Header: PageHeader{Sequence: 7, ParentHash: next.Header.Hash(), TxSetHash: TxSetHash(nil)}}
	if err := c.Append(bad); err == nil {
		t.Error("wrong sequence accepted")
	}
	// Wrong parent.
	bad = &Page{Header: PageHeader{Sequence: 3, ParentHash: Hash{1}, TxSetHash: TxSetHash(nil)}}
	if err := c.Append(bad); err == nil {
		t.Error("wrong parent hash accepted")
	}
}

func TestGenesisChainsDiffer(t *testing.T) {
	main := Genesis("main", 0)
	test := Genesis("testnet", 0)
	if main.Header.Hash() == test.Header.Hash() {
		t.Error("main and testnet genesis pages hash identically")
	}
}

func TestTxTypeAndResultStrings(t *testing.T) {
	if TxPayment.String() != "Payment" || TxTrustSet.String() != "TrustSet" {
		t.Error("TxType strings wrong")
	}
	if !strings.Contains(TxType(99).String(), "99") {
		t.Error("unknown TxType string should include the numeric value")
	}
	if ResultSuccess.String() != "tesSUCCESS" || !ResultSuccess.Succeeded() {
		t.Error("ResultSuccess misbehaves")
	}
	if ResultPathDry.Succeeded() {
		t.Error("ResultPathDry reports success")
	}
	if !strings.Contains(TxResult(99).String(), "99") {
		t.Error("unknown TxResult string should include the numeric value")
	}
}

func TestIssueString(t *testing.T) {
	if (Issue{}).String() != "XRP" {
		t.Errorf("zero issue = %q, want XRP", (Issue{}).String())
	}
	iss := Issue{Currency: amount.USD, Issuer: addr.KeyPairFromSeed(1).AccountID()}
	if !strings.HasPrefix(iss.String(), "USD/r") {
		t.Errorf("issue string = %q", iss.String())
	}
	if (Issue{}).IsXRP() != true || iss.IsXRP() {
		t.Error("IsXRP misbehaves")
	}
}
