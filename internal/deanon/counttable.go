package deanon

// countTable is the shard-local fingerprint counter: an open-addressed,
// linear-probed table with 8-byte keys and 1-byte saturating counts.
// Two properties of the workload make it much cheaper than a Go map:
//
//   - Fingerprints are already FNV-1a outputs, uniformly mixed, so the
//     low bits index the table directly — no per-access re-hashing.
//   - The study only distinguishes count 0 / 1 / ≥2, so a uint8
//     saturating at 2 replaces a uint32, and the whole table is 9 bytes
//     per slot (vs ~17 bytes per entry in a map[Fingerprint]uint32
//     bucket array, before overflow buckets).
//
// Shard routing uses the fingerprint's HIGH bits (ParallelStudy), the
// probe sequence its LOW bits, so the two never interfere.
//
// The all-zero fingerprint doubles as the empty-slot marker; its count
// lives out-of-band in zeroCount.
type countTable struct {
	keys   []Fingerprint
	counts []uint8
	mask   uint64
	// used is the number of occupied slots (excluding the zero key).
	used      int
	zeroCount uint8
}

const (
	// countTableMinCap is the initial capacity (power of two).
	countTableMinCap = 256
	// countTable grows when used exceeds cap×13/16 (≈81% load).
	countTableLoadNum = 13
	countTableLoadDen = 16
)

func newCountTable() *countTable {
	return &countTable{
		keys:   make([]Fingerprint, countTableMinCap),
		counts: make([]uint8, countTableMinCap),
		mask:   countTableMinCap - 1,
	}
}

// incr bumps fp's saturating counter.
func (t *countTable) incr(fp Fingerprint) { t.incrCount(fp) }

// incrCount bumps fp's saturating counter and returns the count the
// fingerprint had BEFORE the increment (0 = first sight, 1 = was unique,
// countSaturated = already saturated). The pre-count lets an incremental
// consumer maintain a running unique-count in O(1): 0 means "became
// unique", 1 means "stopped being unique".
func (t *countTable) incrCount(fp Fingerprint) uint8 {
	if fp == 0 {
		prev := t.zeroCount
		if t.zeroCount < countSaturated {
			t.zeroCount++
		}
		return prev
	}
	i := uint64(fp) & t.mask
	for {
		switch t.keys[i] {
		case fp:
			prev := t.counts[i]
			if t.counts[i] < countSaturated {
				t.counts[i]++
			}
			return prev
		case 0:
			t.keys[i] = fp
			t.counts[i] = 1
			t.used++
			if t.used*countTableLoadDen > len(t.keys)*countTableLoadNum {
				t.grow()
			}
			return 0
		}
		i = (i + 1) & t.mask
	}
}

// get returns fp's saturating count (0 = never seen, 1 = unique,
// countSaturated = seen at least twice). O(1) expected.
func (t *countTable) get(fp Fingerprint) uint8 {
	if fp == 0 {
		return t.zeroCount
	}
	i := uint64(fp) & t.mask
	for {
		switch t.keys[i] {
		case fp:
			return t.counts[i]
		case 0:
			return 0
		}
		i = (i + 1) & t.mask
	}
}

// clone deep-copies the table — the copy-on-publish step behind the
// serving layer's epoch snapshots. The copy is two slice memmoves, so a
// snapshot costs O(capacity) with no rehashing.
func (t *countTable) clone() *countTable {
	c := &countTable{
		keys:      make([]Fingerprint, len(t.keys)),
		counts:    make([]uint8, len(t.counts)),
		mask:      t.mask,
		used:      t.used,
		zeroCount: t.zeroCount,
	}
	copy(c.keys, t.keys)
	copy(c.counts, t.counts)
	return c
}

// grow doubles the table and reinserts every occupied slot.
func (t *countTable) grow() {
	oldKeys, oldCounts := t.keys, t.counts
	t.keys = make([]Fingerprint, 2*len(oldKeys))
	t.counts = make([]uint8, 2*len(oldCounts))
	t.mask = uint64(len(t.keys) - 1)
	for j, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := uint64(k) & t.mask
		for t.keys[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.keys[i] = k
		t.counts[i] = oldCounts[j]
	}
}

// unique returns the number of fingerprints seen exactly once.
func (t *countTable) unique() int {
	n := 0
	for i, k := range t.keys {
		if k != 0 && t.counts[i] == 1 {
			n++
		}
	}
	if t.zeroCount == 1 {
		n++
	}
	return n
}

// distinct returns the number of distinct fingerprints in the table.
func (t *countTable) distinct() int {
	n := t.used
	if t.zeroCount > 0 {
		n++
	}
	return n
}

// bytes reports the table's resident footprint (keys + counts arrays).
func (t *countTable) bytes() int {
	return len(t.keys)*8 + len(t.counts)
}
