// Package serve is the live query-serving layer: it ingests closed
// ledger pages and validation events as they happen — from a
// netstream.ResilientClient subscription, a ledgerstore backfill, or
// both — incrementally maintains the materialized views behind the
// paper's figures (per-validator tallies for Fig. 2, the fingerprint
// count tables for Fig. 3 and sender-uniqueness lookups, the ecosystem
// histograms for Figs. 4–6), and answers queries from immutable epoch
// snapshots over an HTTP JSON API (cmd/ripple-serve).
//
// Concurrency model: every view is owned by exactly one writer
// goroutine fed over a bounded channel (single-writer principle — the
// view's mutable state needs no locks). Ingest projects each page once
// at the front door (project.go) into an owned record and fans the
// record out in batches, so queue operations, channel wakeups, and
// bookkeeping amortize over IngestBatchPages updates instead of one.
// Readers never touch mutable state: each publish seals an immutable
// copy-on-publish snapshot behind an atomic pointer and bumps the
// view's epoch, so queries never block ingestion and ingestion never
// blocks queries. Publishes happen whenever a view's inbox runs dry
// (fresh epochs under light load) and at least every PublishBatch
// updates (amortized snapshot cost under heavy load) — but never in
// the middle of an ingest batch, so a snapshot always covers whole
// batches.
package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"ripplestudy/internal/consensus"
)

// update is one unit of ingest work fanned out to the views: a stream
// event (validation or ledger close) for the tally view, or a projected
// page record for the page views. seq and streamSeq carry the ledger
// and stream sequence bookkeeping so workers never re-inspect payloads.
// The event rides behind a pointer: a consensus.Event is ~200 bytes, and
// page updates (the firehose path) never carry one, so keeping it inline
// would make every pooled batch slab 7× larger to copy and GC-scan.
type update struct {
	ev        *consensus.Event // tally view only
	rec       *pageRecord      // page views only
	seq       uint64
	streamSeq uint64
}

// batchPool recycles the []update batches flowing through the view
// inboxes: producers take, consumers (or failed offers) return.
var batchPool = sync.Pool{New: func() any {
	s := make([]update, 0, defaultIngestBatch)
	return &s
}}

func getUpdateBatch() []update {
	return (*batchPool.Get().(*[]update))[:0]
}

func putUpdateBatch(b []update) {
	for i := range b {
		b[i] = update{} // drop event payload / record references
	}
	b = b[:0]
	batchPool.Put(&b)
}

// sealGrace is how long a view waits on a dry inbox before paying for
// a publish. Under sustained ingest the producer refills the inbox well
// inside the grace window, so snapshots coalesce to PublishBatch
// boundaries instead of sealing once per scheduler pass; on a genuinely
// idle stream the epoch is still fresh within half a millisecond.
const sealGrace = 500 * time.Microsecond

// viewWorker is the single-writer machinery shared by all views: a
// bounded inbox of update batches drained by one goroutine that applies
// updates to the view's private state and publishes immutable
// snapshots.
type viewWorker struct {
	name    string
	in      chan []update
	apply   func(update)
	publish func(epoch uint64)
	notify  func() // progress signal: fired after every seal and drop
	sealDue func() bool
	batch   int
	block   bool

	epoch      atomic.Uint64
	offered    atomic.Uint64
	applied    atomic.Uint64
	dropped    atomic.Uint64
	sealed     atomic.Uint64 // applied updates covered by the latest publish
	appliedSeq atomic.Uint64 // highest ledger sequence applied
	streamSeq  atomic.Uint64 // highest stream sequence applied
	seals      atomic.Uint64 // publishes since start (excluding bootstrap)
	sealNanos  atomic.Int64  // duration of the latest publish

	done chan struct{}
}

// newViewWorker starts a view. publish(0) is called synchronously before
// any update so queries always find a (possibly empty) snapshot. notify
// (optional) is invoked after every seal and every dropped batch — the
// service's Drain waiters key off it. sealDue (optional) further gates
// batch-boundary seals: a view whose publish cost grows with its state
// (the fingerprint view clones every dirty count shard) uses it to space
// publishes geometrically under sustained load, keeping total
// copy-on-publish traffic linear in ingest instead of quadratic.
// Inbox-dry and shutdown seals ignore the gate, so idle epochs stay
// fresh and Drain always completes.
func newViewWorker(name string, queue, batch int, block bool, apply func(update), publish func(epoch uint64), notify func(), sealDue func() bool) *viewWorker {
	if queue < 1 {
		queue = 1
	}
	if batch < 1 {
		batch = 1
	}
	w := &viewWorker{
		name:    name,
		in:      make(chan []update, queue),
		apply:   apply,
		publish: publish,
		notify:  notify,
		sealDue: sealDue,
		batch:   batch,
		block:   block,
		done:    make(chan struct{}),
	}
	w.publish(0)
	go w.run()
	return w
}

func (w *viewWorker) run() {
	defer close(w.done)
	sinceLast := 0
	seal := func() {
		if sinceLast == 0 {
			return
		}
		start := time.Now()
		w.publish(w.epoch.Add(1))
		w.sealNanos.Store(int64(time.Since(start)))
		w.seals.Add(1)
		// Published; everything applied so far is now visible to readers.
		w.sealed.Store(w.applied.Load())
		sinceLast = 0
		if w.notify != nil {
			w.notify()
		}
	}
	grace := time.NewTimer(sealGrace)
	if !grace.Stop() {
		<-grace.C
	}
	for {
		var b []update
		var ok bool
		select {
		case b, ok = <-w.in:
		default:
			if sinceLast == 0 {
				// Nothing unpublished: just wait for work.
				b, ok = <-w.in
				break
			}
			// Inbox dry with updates pending: give the producer a grace
			// window to refill before paying for a publish. A seal is a
			// copy-on-publish snapshot (for the fingerprint view, a
			// scatter-gather clone of every dirty shard), so sealing on
			// every scheduling gap would melt a backfill into clone
			// traffic.
			grace.Reset(sealGrace)
			select {
			case b, ok = <-w.in:
				if !grace.Stop() {
					<-grace.C
				}
			case <-grace.C:
				seal()
				b, ok = <-w.in
			}
		}
		if !ok {
			// Shutdown: everything offered has been applied; seal the
			// final epoch so the last snapshot reflects the full ingest.
			seal()
			return
		}
		for i := range b {
			u := &b[i]
			w.apply(*u)
			if u.seq > 0 {
				w.bumpSeq(&w.appliedSeq, u.seq)
			}
			if u.streamSeq > 0 {
				w.bumpSeq(&w.streamSeq, u.streamSeq)
			}
		}
		w.applied.Add(uint64(len(b)))
		sinceLast += len(b)
		putUpdateBatch(b)
		// Seal only between batches — a snapshot never splits one — and
		// only once the view's publish-cost gate (if any) agrees.
		if sinceLast >= w.batch && (w.sealDue == nil || w.sealDue()) {
			seal()
		}
	}
}

// bumpSeq raises a monotonic gauge to at least v. Only the worker
// goroutine writes it, but parallel backfills interleave segments, so
// "highest seen" — not "last seen" — is the meaningful value.
func (w *viewWorker) bumpSeq(g *atomic.Uint64, v uint64) {
	if v > g.Load() {
		g.Store(v)
	}
}

// offer hands a single update to the view, as a one-element batch.
func (w *viewWorker) offer(u update) bool {
	b := getUpdateBatch()
	b = append(b, u)
	if !w.offerBatch(b) {
		if u.rec != nil {
			u.rec.unref()
		}
		putUpdateBatch(b)
		return false
	}
	return true
}

// offerBatch hands a batch of updates to the view. On success the view
// owns the slice (it is recycled after apply). Blocking mode applies
// backpressure (lossless, the differential-test configuration);
// non-blocking mode drops the whole batch and counts its updates when
// the inbox is full (load-shedding for live serving where falling
// behind the stream is worse than a coarser view). On failure the
// CALLER still owns the slice — and the records it references.
func (w *viewWorker) offerBatch(b []update) bool {
	n := uint64(len(b))
	if n == 0 {
		putUpdateBatch(b)
		return true
	}
	w.offered.Add(n)
	if w.block {
		w.in <- b
		return true
	}
	select {
	case w.in <- b:
		return true
	default:
		w.dropped.Add(n)
		// A drop can complete a Drain target (dropped updates never
		// seal), so it must wake waiters too.
		if w.notify != nil {
			w.notify()
		}
		return false
	}
}

// lag reports updates offered but not yet applied (nor dropped) — the
// view's ingest backlog.
func (w *viewWorker) lag() uint64 {
	return w.offered.Load() - w.applied.Load() - w.dropped.Load()
}

// close drains the inbox, publishes the final epoch, and waits for the
// worker to exit. The caller must guarantee no concurrent offer.
func (w *viewWorker) close() {
	close(w.in)
	<-w.done
}
