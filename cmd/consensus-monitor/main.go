// Command consensus-monitor is the paper's collection server: it
// connects to a validation stream (cmd/rippled-sim), records every
// validation and ledger-close event, and prints the per-validator
// total/valid page counts of Figure 2.
//
//	consensus-monitor -connect 127.0.0.1:5006 -label "December 2015"
//
// The monitor reads until the stream closes (the simulator finished its
// period) or -max-events is reached.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ripplestudy/internal/consensus"
	"ripplestudy/internal/monitor"
	"ripplestudy/internal/netstream"
)

func main() {
	connect := flag.String("connect", "127.0.0.1:5006", "validation stream address")
	label := flag.String("label", "collection period", "period label for the report")
	maxEvents := flag.Int("max-events", 0, "stop after this many events (0 = until stream ends)")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of a table")
	flag.Parse()

	if err := run(*connect, *label, *maxEvents, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "consensus-monitor:", err)
		os.Exit(1)
	}
}

func run(connect, label string, maxEvents int, asJSON bool) error {
	client, err := netstream.Dial(connect)
	if err != nil {
		return err
	}
	defer client.Close()
	fmt.Printf("consensus-monitor: collecting from %s\n", connect)

	col := monitor.NewCollector()
	err = client.Events(func(ev consensus.Event) error {
		col.Record(ev)
		if maxEvents > 0 && col.Events() >= maxEvents {
			return netstream.ErrStop
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("consensus-monitor: %d events collected\n\n", col.Events())
	rep := col.Report(label)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	if err := rep.WriteTable(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nsummary: %d validators observed, %d active (≥50%% of busiest), %d with zero valid pages\n",
		len(rep.Validators), rep.ActiveCount(0.5), rep.ZeroValidCount())
	return nil
}
