// Package pathfind implements Ripple's payment routing: it searches the
// credit network for transaction paths ("a sequence of trust-lines, along
// which IOU payments travel"), splits payments across parallel paths when
// a single path lacks liquidity, and bridges currencies through order
// books — directly or via XRP, "a universal bridge between markets".
//
// The planner is pure: it never mutates the trust graph or the books.
// It produces a Plan — ordered trust flows plus order-book quotes — that
// the payment engine applies atomically.
package pathfind

import (
	"errors"
	"fmt"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/orderbook"
	"ripplestudy/internal/trustgraph"
)

// Defaults bounding the search. BFS returns shortest paths first, so a
// generous hop bound does not lengthen organic routes; it only allows
// the rare absurdly long chains the paper's Figure 6(a) shows (one
// route used exactly 44 intermediate hops). Callers that want rippled's
// tighter behaviour pass WithMaxHops.
const (
	DefaultMaxHops  = 46 // maximum intermediate accounts on one path
	DefaultMaxPaths = 6  // maximum parallel paths per payment
)

// ErrNoPath is returned when no liquidity at all can be found.
var ErrNoPath = errors.New("pathfind: no path with liquidity")

// Flow is one planned trust-line movement: value flows From → To. Path
// is the index of the parallel path the flow belongs to, so consumers
// can attribute hops per path (an account on three parallel paths served
// as an intermediate hop three times).
type Flow struct {
	From, To addr.AccountID
	Currency amount.Currency
	Value    amount.Value
	Path     int
}

// PathInfo describes one parallel path for transaction metadata: the
// number of intermediate accounts and the value carried.
type PathInfo struct {
	Hops  int
	Value amount.Value
}

// Plan is an executable payment route. TrustFlows apply in order; Quotes
// consume order-book offers. Delivered may be less than requested when
// liquidity ran short — callers treat partial delivery as failure unless
// they support partial payments.
type Plan struct {
	Src, Dst    addr.AccountID
	Currency    amount.Currency // delivered currency
	SrcCurrency amount.Currency // currency the sender spends
	Delivered   amount.Value
	SourceCost  amount.Value // amount spent in SrcCurrency
	TrustFlows  []Flow
	Quotes      []orderbook.Quote
	Paths       []PathInfo
	// UsedBridge records whether the plan crossed an order book (directly
	// or via XRP) — cross-currency metadata for the analyses.
	UsedBridge bool
}

// Finder searches for payment paths. The zero value is not usable; call
// New.
type Finder struct {
	graph    *trustgraph.Graph
	books    *orderbook.Books
	maxHops  int
	maxPaths int
}

// Option configures a Finder.
type Option func(*Finder)

// WithMaxHops bounds intermediate accounts per path.
func WithMaxHops(n int) Option { return func(f *Finder) { f.maxHops = n } }

// WithMaxPaths bounds the number of parallel paths per payment.
func WithMaxPaths(n int) Option { return func(f *Finder) { f.maxPaths = n } }

// New creates a Finder over a credit network and an order-book set.
func New(graph *trustgraph.Graph, books *orderbook.Books, opts ...Option) *Finder {
	f := &Finder{graph: graph, books: books, maxHops: DefaultMaxHops, maxPaths: DefaultMaxPaths}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// overlay tracks planned flows so capacity queries reflect in-plan usage
// without mutating the graph.
type overlayKey struct {
	from, to addr.AccountID
	cur      amount.Currency
}

type overlay struct {
	g   *trustgraph.Graph
	net map[overlayKey]amount.Value // net planned flow from→to
}

func newOverlay(g *trustgraph.Graph) *overlay {
	return &overlay{g: g, net: make(map[overlayKey]amount.Value)}
}

// capacity returns residual capacity from→to: base capacity minus planned
// forward flow plus planned reverse flow.
func (o *overlay) capacity(from, to addr.AccountID, cur amount.Currency) amount.Value {
	base := o.g.Capacity(from, to, cur)
	fwd := o.net[overlayKey{from, to, cur}]
	rev := o.net[overlayKey{to, from, cur}]
	c, err := base.Sub(fwd)
	if err != nil {
		return amount.Zero
	}
	c, err = c.Add(rev)
	if err != nil {
		return amount.Zero
	}
	if c.IsNegative() {
		return amount.Zero
	}
	return c
}

func (o *overlay) addFlow(from, to addr.AccountID, cur amount.Currency, v amount.Value) error {
	k := overlayKey{from, to, cur}
	sum, err := o.net[k].Add(v)
	if err != nil {
		return err
	}
	o.net[k] = sum
	return nil
}

// FindPayment plans delivery of `deliver` (in its currency) from src to
// dst. When srcCur differs from the delivery currency the plan bridges
// through order books. XRP-to-XRP payments need no path (the ledger moves
// drops directly); callers handle them before planning.
func (f *Finder) FindPayment(src, dst addr.AccountID, srcCur amount.Currency, deliver amount.Amount) (*Plan, error) {
	if src == dst {
		return nil, fmt.Errorf("pathfind: src and dst are the same account")
	}
	if !deliver.Value.IsPositive() {
		return nil, fmt.Errorf("pathfind: non-positive delivery %s", deliver)
	}
	if srcCur == deliver.Currency {
		return f.planSameCurrency(src, dst, deliver)
	}
	return f.planCrossCurrency(src, dst, srcCur, deliver)
}

// planSameCurrency routes over trust-lines only, falling back to an
// XRP auto-bridge (cur→XRP→cur through the books) for any residue the
// trust network cannot carry.
func (f *Finder) planSameCurrency(src, dst addr.AccountID, deliver amount.Amount) (*Plan, error) {
	plan := &Plan{Src: src, Dst: dst, Currency: deliver.Currency, SrcCurrency: deliver.Currency}
	ov := newOverlay(f.graph)
	delivered, err := f.routeTrust(plan, ov, src, dst, deliver.Currency, deliver.Value)
	if err != nil {
		return nil, err
	}
	plan.Delivered = delivered
	plan.SourceCost = delivered
	if delivered.Cmp(deliver.Value) < 0 && !deliver.Currency.IsXRP() {
		// Residue: try bridging the same currency through XRP books
		// (sell cur for XRP, buy cur back). This is how offers "make up
		// for the lack of direct trust on a particular currency".
		residue, err := deliver.Value.Sub(delivered)
		if err != nil {
			return nil, err
		}
		if bridged := f.tryBridge(plan, ov, src, dst, deliver.Currency, amount.New(deliver.Currency, residue)); bridged != nil {
			plan = bridged
		}
	}
	if plan.Delivered.IsZero() {
		return nil, ErrNoPath
	}
	return plan, nil
}

// routeTrust finds up to maxPaths augmenting paths carrying `want` from
// src to dst in cur, appending flows and path metadata to the plan.
// Returns the total value routed.
func (f *Finder) routeTrust(plan *Plan, ov *overlay, src, dst addr.AccountID, cur amount.Currency, want amount.Value) (amount.Value, error) {
	total := amount.Zero
	remaining := want
	for len(plan.Paths) < f.maxPaths && remaining.IsPositive() {
		path := f.shortestPath(ov, src, dst, cur)
		if path == nil {
			break
		}
		// Bottleneck along the path, capped at the remaining need.
		bottleneck := remaining
		for i := 0; i+1 < len(path); i++ {
			c := ov.capacity(path[i], path[i+1], cur)
			bottleneck = bottleneck.Min(c)
		}
		if !bottleneck.IsPositive() {
			break
		}
		for i := 0; i+1 < len(path); i++ {
			plan.TrustFlows = append(plan.TrustFlows, Flow{
				From: path[i], To: path[i+1], Currency: cur, Value: bottleneck,
				Path: len(plan.Paths),
			})
			if err := ov.addFlow(path[i], path[i+1], cur, bottleneck); err != nil {
				return amount.Zero, fmt.Errorf("pathfind: overlay: %w", err)
			}
		}
		plan.Paths = append(plan.Paths, PathInfo{Hops: len(path) - 2, Value: bottleneck})
		var err error
		if total, err = total.Add(bottleneck); err != nil {
			return amount.Zero, err
		}
		if remaining, err = remaining.Sub(bottleneck); err != nil {
			return amount.Zero, err
		}
	}
	return total, nil
}

// shortestPath runs a BFS from src to dst over edges with positive
// residual capacity, bounded by maxHops intermediate accounts. It returns
// the node list src..dst, or nil.
func (f *Finder) shortestPath(ov *overlay, src, dst addr.AccountID, cur amount.Currency) []addr.AccountID {
	type visit struct {
		parent addr.AccountID
		depth  int
	}
	visited := map[addr.AccountID]visit{src: {depth: 0}}
	frontier := []addr.AccountID{src}
	maxLen := f.maxHops + 1 // edges allowed = intermediate hops + 1
	for len(frontier) > 0 {
		var next []addr.AccountID
		for _, u := range frontier {
			du := visited[u].depth
			if du >= maxLen {
				continue
			}
			found := false
			f.graph.Neighbors(u, cur, func(peer addr.AccountID, _ amount.Value) {
				if found {
					return
				}
				if _, seen := visited[peer]; seen {
					return
				}
				if !ov.capacity(u, peer, cur).IsPositive() {
					return
				}
				visited[peer] = visit{parent: u, depth: du + 1}
				if peer == dst {
					found = true
					return
				}
				next = append(next, peer)
			})
			if found {
				// Reconstruct.
				var rev []addr.AccountID
				for at := dst; ; at = visited[at].parent {
					rev = append(rev, at)
					if at == src {
						break
					}
				}
				path := make([]addr.AccountID, len(rev))
				for i := range rev {
					path[i] = rev[len(rev)-1-i]
				}
				return path
			}
		}
		frontier = next
	}
	return nil
}

// bridgeQuote finds the cheapest conversion of srcCur into `deliver`:
// the direct book, or an XRP auto-bridge composing two books. It returns
// the quotes (1 or 2) and the source-currency cost, or ok=false when no
// liquidity exists.
func (f *Finder) bridgeQuote(srcCur amount.Currency, deliver amount.Amount) (quotes []orderbook.Quote, cost amount.Value, ok bool) {
	type option struct {
		quotes []orderbook.Quote
		cost   amount.Value
	}
	var best *option

	// Direct book: taker pays srcCur, receives deliver.Currency.
	direct, err := f.books.QuoteBuy(orderbook.Pair{Pays: srcCur, Gets: deliver.Currency}, deliver.Value)
	if err == nil && direct.TotalGets.Cmp(deliver.Value) == 0 {
		best = &option{quotes: []orderbook.Quote{direct}, cost: direct.TotalPays}
	}

	// Auto-bridge via XRP: buy deliver with XRP, then buy that XRP with
	// srcCur. Skipped when either leg is already XRP.
	if !srcCur.IsXRP() && !deliver.Currency.IsXRP() {
		leg2, err2 := f.books.QuoteBuy(orderbook.Pair{Pays: amount.XRP, Gets: deliver.Currency}, deliver.Value)
		if err2 == nil && leg2.TotalGets.Cmp(deliver.Value) == 0 {
			leg1, err1 := f.books.QuoteBuy(orderbook.Pair{Pays: srcCur, Gets: amount.XRP}, leg2.TotalPays)
			if err1 == nil && leg1.TotalGets.Cmp(leg2.TotalPays) == 0 {
				if best == nil || leg1.TotalPays.Cmp(best.cost) < 0 {
					best = &option{quotes: []orderbook.Quote{leg1, leg2}, cost: leg1.TotalPays}
				}
			}
		}
	}
	if best == nil {
		return nil, amount.Zero, false
	}
	return best.quotes, best.cost, true
}

// planCrossCurrency bridges srcCur→deliver.Currency through books, then
// routes the source side src→(offer owners) and the delivery side
// (offer owners)→dst over trust-lines.
func (f *Finder) planCrossCurrency(src, dst addr.AccountID, srcCur amount.Currency, deliver amount.Amount) (*Plan, error) {
	plan := &Plan{Src: src, Dst: dst, Currency: deliver.Currency, SrcCurrency: srcCur}
	ov := newOverlay(f.graph)
	out := f.tryBridge(plan, ov, src, dst, srcCur, deliver)
	if out == nil || out.Delivered.IsZero() {
		return nil, ErrNoPath
	}
	return out, nil
}

// tryBridge attempts to add a bridged route for `deliver` to the plan.
// It returns the updated plan, or nil when bridging is impossible.
//
// Routing model: the sender moves srcCur to each consumed offer's owner
// over trust-lines (unless the leg is XRP, which transfers freely), the
// conversion happens at the owner, and the owner moves the delivery
// currency to the destination over trust-lines. A leg with no trust route
// voids the bridge.
func (f *Finder) tryBridge(plan *Plan, ov *overlay, src, dst addr.AccountID, srcCur amount.Currency, deliver amount.Amount) *Plan {
	quotes, cost, ok := f.bridgeQuote(srcCur, deliver)
	if !ok {
		return nil
	}
	// Snapshot plan state for rollback-free trial: work on a copy.
	trial := *plan
	trial.TrustFlows = append([]Flow(nil), plan.TrustFlows...)
	trial.Paths = append([]PathInfo(nil), plan.Paths...)
	trial.Quotes = append([]orderbook.Quote(nil), plan.Quotes...)

	entry := quotes[0]            // sender pays srcCur into this quote's offers
	exit := quotes[len(quotes)-1] // delivery currency comes out of this quote's offers

	// Source leg: src → each entry-offer owner, in srcCur.
	if !srcCur.IsXRP() {
		for _, fill := range entry.Fills {
			owner := fill.Offer.Owner
			if owner == src {
				continue // self-owned offer: no movement needed
			}
			savedPaths := len(trial.Paths)
			routed, err := f.routeTrust(&trial, ov, src, owner, srcCur, fill.Pays)
			if err != nil || routed.Cmp(fill.Pays) < 0 {
				return nil
			}
			// Source-side hops are part of the overall path; fold their
			// path records into bridge accounting below by trimming the
			// separate entries (we count one logical path per fill).
			trial.Paths = trial.Paths[:savedPaths]
		}
	}
	// Delivery leg: each exit-offer owner → dst, in deliver.Currency.
	exitHops := 0
	if !deliver.Currency.IsXRP() {
		for _, fill := range exit.Fills {
			owner := fill.Offer.Owner
			if owner == dst {
				continue
			}
			savedPaths := len(trial.Paths)
			routed, err := f.routeTrust(&trial, ov, owner, dst, deliver.Currency, fill.Gets)
			if err != nil || routed.Cmp(fill.Gets) < 0 {
				return nil
			}
			for _, p := range trial.Paths[savedPaths:] {
				if p.Hops > exitHops {
					exitHops = p.Hops
				}
			}
			trial.Paths = trial.Paths[:savedPaths]
		}
	}
	trial.Quotes = append(trial.Quotes, quotes...)
	// Record one logical parallel path per exit fill; each crosses the
	// offer owner (1 hop) plus any trust hops on the delivery leg.
	for _, fill := range exit.Fills {
		trial.Paths = append(trial.Paths, PathInfo{Hops: 1 + exitHops, Value: fill.Gets})
	}
	var err error
	if trial.Delivered, err = trial.Delivered.Add(deliver.Value); err != nil {
		return nil
	}
	if trial.SourceCost, err = trial.SourceCost.Add(cost); err != nil {
		return nil
	}
	trial.UsedBridge = true
	return &trial
}
