// Package replay implements the paper's Table II experiment: "We started
// from a stable snapshot ... of the Ripple network. Then, we extracted
// all payments submitted after the snapshot and successfully delivered
// ... So, we remove them [the Market Makers] and the exchange orders from
// the system and replay the extracted payments on the modified trust
// network," updating balances after each successful payment and applying
// the trust-line updates that happened on the real system.
package replay

import (
	"fmt"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/payment"
)

// Source streams ledger pages in order; ledgerstore.Store satisfies it.
type Source interface {
	Pages(fn func(*ledger.Page) error) error
}

// sliceSource adapts an in-memory page list (tests, freshly generated
// histories).
type sliceSource []*ledger.Page

func (s sliceSource) Pages(fn func(*ledger.Page) error) error {
	for _, p := range s {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// FromPages wraps an in-memory page list as a Source.
func FromPages(pages []*ledger.Page) Source { return sliceSource(pages) }

// BuildState replays every transaction in pages with sequence ≤
// snapshotSeq into a fresh engine, reconstructing the network state at
// the snapshot. Replaying is deterministic, so the rebuilt state matches
// the state that produced the history.
func BuildState(src Source, snapshotSeq uint64) (*payment.Engine, error) {
	eng := payment.NewEngine()
	err := src.Pages(func(p *ledger.Page) error {
		if p.Header.Sequence > snapshotSeq {
			return errStopBuild
		}
		for _, tx := range p.Txs {
			if _, err := eng.Apply(tx); err != nil {
				return fmt.Errorf("replay: rebuilding state at page %d: %w", p.Header.Sequence, err)
			}
		}
		return nil
	})
	if err != nil && err != errStopBuild {
		return nil, err
	}
	return eng, nil
}

var errStopBuild = fmt.Errorf("replay: snapshot reached")

// Category buckets replayed payments as the paper's Table II does.
type Category int

const (
	// CategoryCross are payments whose source and delivered currencies
	// differ (68.7% of the paper's replay set).
	CategoryCross Category = iota + 1
	// CategorySingle are same-currency IOU payments.
	CategorySingle
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CategoryCross:
		return "Cross-currency"
	case CategorySingle:
		return "Single-currency"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Row is one line of Table II.
type Row struct {
	Category  Category
	Submitted int
	Delivered int
}

// Rate returns the delivery rate.
func (r Row) Rate() float64 {
	if r.Submitted == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Submitted)
}

// Result is the full Table II.
type Result struct {
	Cross, Single Row
	// RemovedMarketMakers is how many accounts the ablation deleted.
	RemovedMarketMakers int
	// SnapshotSeq is the page sequence the snapshot was taken at.
	SnapshotSeq uint64
}

// Total aggregates both categories.
func (r Result) Total() Row {
	return Row{
		Submitted: r.Cross.Submitted + r.Single.Submitted,
		Delivered: r.Cross.Delivered + r.Single.Delivered,
	}
}

// Run executes the Table II experiment over the history in src,
// snapshotting at snapshotSeq: it rebuilds the state, removes every
// market maker and their offers, and replays the post-snapshot IOU
// payments (direct XRP transfers don't traverse trust or books and are
// excluded, as in the paper's 1.7M-payment replay set).
func Run(src Source, snapshotSeq uint64) (*Result, error) {
	state, err := BuildState(src, snapshotSeq)
	if err != nil {
		return nil, err
	}
	removedList := state.RemoveMarketMakers()
	removed := make(map[addr.AccountID]bool, len(removedList))
	for _, a := range removedList {
		removed[a] = true
	}

	res := &Result{RemovedMarketMakers: len(removedList), SnapshotSeq: snapshotSeq}
	err = src.Pages(func(p *ledger.Page) error {
		if p.Header.Sequence <= snapshotSeq {
			return nil
		}
		for i, tx := range p.Txs {
			meta := p.Metas[i]
			switch tx.Type {
			case ledger.TxTrustSet:
				// "We also reflected in the modified trust network the
				// updates happening on the real system to trust-lines."
				if removed[tx.Account] || removed[tx.LimitPeer] {
					continue
				}
				replayTx(state, tx)
			case ledger.TxPayment:
				if !meta.Result.Succeeded() {
					continue // the paper replays successfully delivered payments
				}
				if isDirectXRP(tx) {
					continue
				}
				row := &res.Single
				if meta.CrossCurrency {
					row = &res.Cross
				}
				row.Submitted++
				if removed[tx.Account] || removed[tx.Destination] {
					continue // its endpoint vanished with the makers
				}
				if m := replayTx(state, tx); m != nil && m.Result.Succeeded() {
					row.Delivered++
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// isDirectXRP reports whether the payment is a plain XRP transfer.
func isDirectXRP(tx *ledger.Tx) bool {
	return tx.Amount.Currency.IsXRP() && (tx.SendMax.IsZero() || tx.SendMax.Currency.IsXRP())
}

// replayTx re-submits a historical transaction against the (diverged)
// replay state: the sequence number is rewritten to the replay engine's
// expectation. Signatures are not re-checked (they cover the original
// sequence); the engine does not verify them during Apply.
func replayTx(eng *payment.Engine, tx *ledger.Tx) *ledger.TxMeta {
	clone := *tx
	clone.Sequence = eng.NextSequence(tx.Account)
	meta, err := eng.Apply(&clone)
	if err != nil {
		return nil
	}
	return meta
}
