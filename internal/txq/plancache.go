package txq

import (
	"sync"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/orderbook"
	"ripplestudy/internal/pathfind"
)

// The quote cache. A path_find answer is a pure function of the state
// the search read: the trust edges it walked and the order-book pairs
// it probed (pathfind.WithRecording captures both, including probes of
// empty books and the endpoints themselves). The cache therefore keys
// entries on the quote parameters and stamps each with the trust-graph
// epoch it was computed at; the applier bumps the epoch once per batch
// that mutated anything and records WHAT it mutated, so an entry stays
// valid — across arbitrarily many epochs — until something in its own
// read set is touched. That is the same read-set validation rule the
// optimistic replay applier uses, applied across time instead of
// across a batch.

// quoteKey identifies one cacheable path_find request. amount.Value and
// amount.Currency are comparable value types, so the whole key is a
// valid map key.
type quoteKey struct {
	src, dst addr.AccountID
	srcCur   amount.Currency
	dstCur   amount.Currency
	deliver  amount.Value
}

// Quote is a path_find answer: the liquidity summary of a planned
// route, detached from the plan's execution detail so cached copies
// alias no live order-book state.
type Quote struct {
	// Found is false when the search proved no liquidity (the cached
	// negative is invalidated exactly like a positive: its read set
	// certifies the absence).
	Found       bool                `json:"found"`
	Delivered   amount.Value        `json:"delivered"`
	SourceCost  amount.Value        `json:"source_cost"`
	SrcCurrency amount.Currency     `json:"source_currency"`
	DstCurrency amount.Currency     `json:"currency"`
	Paths       []pathfind.PathInfo `json:"paths,omitempty"`
	UsedBridge  bool                `json:"used_bridge"`
	// Epoch is the trust-graph epoch the quote was computed at; Cached
	// reports whether this answer came from the cache.
	Epoch  uint64 `json:"epoch"`
	Cached bool   `json:"cached"`
}

type cacheEntry struct {
	epoch uint64
	quote Quote
	reads pathfind.ReadSet
}

// planCache is the epoch-stamped quote cache. It is safe for concurrent
// use; the epoch only advances inside the applier's write-locked
// section, so a reader holding the engine's read lock always sees an
// epoch consistent with the state it plans against.
type planCache struct {
	mu        sync.Mutex
	max       int
	epoch     uint64
	dirtyAcct map[addr.AccountID]uint64 // epoch at which last mutated
	dirtyPair map[orderbook.Pair]uint64
	entries   map[quoteKey]*cacheEntry
	order     []quoteKey // insertion order, for FIFO eviction

	hits, misses, stale, evicted uint64
}

func newPlanCache(max int) *planCache {
	if max < 1 {
		max = 1
	}
	return &planCache{
		max:       max,
		dirtyAcct: make(map[addr.AccountID]uint64),
		dirtyPair: make(map[orderbook.Pair]uint64),
		entries:   make(map[quoteKey]*cacheEntry),
	}
}

// get returns the cached quote when its read set is untouched since it
// was computed; stale entries are dropped on the way out.
func (c *planCache) get(k quoteKey) (Quote, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[k]
	if e == nil {
		c.misses++
		return Quote{}, false
	}
	if !c.validLocked(e) {
		delete(c.entries, k)
		c.stale++
		c.misses++
		return Quote{}, false
	}
	c.hits++
	q := e.quote
	q.Cached = true
	return q, true
}

// validLocked reports whether nothing in the entry's read set was
// mutated after the entry's epoch.
func (c *planCache) validLocked(e *cacheEntry) bool {
	for _, a := range e.reads.Accounts {
		if c.dirtyAcct[a] > e.epoch {
			return false
		}
	}
	for _, p := range e.reads.Pairs {
		if c.dirtyPair[p] > e.epoch {
			return false
		}
	}
	return true
}

// put stores a freshly computed quote. The caller hands over reads.
func (c *planCache) put(k quoteKey, q Quote, reads pathfind.ReadSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if q.Epoch < c.epoch {
		// Computed against a state the applier has since advanced past
		// (the reader raced a batch commit); caching it with validity
		// checks anchored at an old epoch would be unsound.
		return
	}
	if _, exists := c.entries[k]; !exists {
		if len(c.order) >= c.max {
			oldest := c.order[0]
			c.order = c.order[1:]
			if _, ok := c.entries[oldest]; ok {
				delete(c.entries, oldest)
				c.evicted++
			}
		}
		c.order = append(c.order, k)
	}
	c.entries[k] = &cacheEntry{epoch: q.Epoch, quote: q, reads: reads}
}

// invalidate advances the epoch and stamps everything the just-applied
// batch mutated. Called with the engine write lock held, so no quote
// can be computed (or cached) concurrently against the superseded
// state.
func (c *planCache) invalidate(accts map[addr.AccountID]struct{}, pairs map[orderbook.Pair]struct{}) {
	if len(accts) == 0 && len(pairs) == 0 {
		return
	}
	c.mu.Lock()
	c.epoch++
	for a := range accts {
		c.dirtyAcct[a] = c.epoch
	}
	for p := range pairs {
		c.dirtyPair[p] = c.epoch
	}
	c.mu.Unlock()
}

// currentEpoch returns the trust-graph epoch.
func (c *planCache) currentEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// stats returns the cache counters: hits, misses, stale drops,
// evictions, and the live entry count.
func (c *planCache) statsNow() (hits, misses, stale, evicted uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.stale, c.evicted, len(c.entries)
}
