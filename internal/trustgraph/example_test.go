package trustgraph_test

import (
	"fmt"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/trustgraph"
)

// ExampleGraph reproduces the paper's Figure 1: A trusts B for 10 USD
// and B trusts C for 20 USD, so C can send up to 10 USD to A through B.
func ExampleGraph() {
	g := trustgraph.New()
	a := addr.KeyPairFromSeed(1).AccountID()
	b := addr.KeyPairFromSeed(2).AccountID()
	c := addr.KeyPairFromSeed(3).AccountID()

	_ = g.SetTrust(a, b, amount.USD, amount.MustParse("10"))
	_ = g.SetTrust(b, c, amount.USD, amount.MustParse("20"))

	// The IOU payment travels opposite to the trust direction: C→B→A.
	fmt.Println("C can send B up to", g.Capacity(c, b, amount.USD), "USD")
	fmt.Println("B can send A up to", g.Capacity(b, a, amount.USD), "USD")

	// Deliver 10 USD from C to A: debt moves along the chain.
	_ = g.ApplyFlow(c, b, amount.USD, amount.MustParse("10"))
	_ = g.ApplyFlow(b, a, amount.USD, amount.MustParse("10"))
	fmt.Println("C owes B", g.Owed(b, c, amount.USD), "USD")
	fmt.Println("B owes A", g.Owed(a, b, amount.USD), "USD")
	// Output:
	// C can send B up to 20 USD
	// B can send A up to 10 USD
	// C owes B 10 USD
	// B owes A 10 USD
}
