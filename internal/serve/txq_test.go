package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/payment"
	"ripplestudy/internal/txq"
)

// frontDoorService wires a small Figure-1 economy (a trusts b, b trusts
// c, so c pays a through b) behind a Service with an attached front
// door, mirroring how cmd/ripple-serve assembles the two.
func frontDoorService(t *testing.T) (*Service, *txq.FrontDoor, [3]addr.AccountID) {
	t.Helper()
	eng := payment.NewEngine()
	var ids [3]addr.AccountID
	for i := range ids {
		ids[i] = addr.KeyPairFromSeed(uint64(i + 1)).AccountID()
		eng.Fund(ids[i], 100_000_000)
	}
	trust := func(truster, trustee addr.AccountID) {
		tx := &ledger.Tx{
			Type: ledger.TxTrustSet, Account: truster,
			Sequence: eng.NextSequence(truster), Fee: 10,
			LimitPeer: trustee, Limit: amount.New(amount.USD, amount.MustParse("100")),
		}
		if meta, err := eng.Apply(tx); err != nil || !meta.Result.Succeeded() {
			t.Fatalf("trust set: %v %v", err, meta)
		}
	}
	trust(ids[0], ids[1])
	trust(ids[1], ids[2])

	fd := txq.New(eng, txq.Options{QueueDepth: 64, Backpressure: true})
	s := NewService(Options{})
	s.AttachFrontDoor(fd)
	t.Cleanup(func() { s.Close(); fd.Close() })
	return s, fd, ids
}

// TestFrontDoorEndpoints drives the quote → submit → status flow through
// the real HTTP handler, then checks /metrics exports the txq families.
func TestFrontDoorEndpoints(t *testing.T) {
	s, _, ids := frontDoorService(t)
	h := s.Handler()
	a, c := ids[0], ids[2]

	// Quote: c can deliver USD to a through b.
	quoteURL := "/v1/path_find?src=" + c.String() + "&dst=" + a.String() + "&amount=10/USD"
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", quoteURL, nil))
	if rec.Code != 200 {
		t.Fatalf("path_find status %d: %s", rec.Code, rec.Body)
	}
	var q txq.PathFindResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if !q.Found || q.Delivered.Cmp(amount.MustParse("10")) != 0 {
		t.Fatalf("quote = %+v, want 10 USD deliverable", q)
	}

	// The identical quote again must come from the plan cache.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", quoteURL, nil))
	var q2 txq.PathFindResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &q2); err != nil {
		t.Fatal(err)
	}
	if !q2.Cached {
		t.Fatalf("second identical quote not served from cache: %+v", q2)
	}

	// Submit the quoted payment and wait for it to apply in-line.
	body, err := json.Marshal(txq.SubmitRequest{
		Tx: &ledger.Tx{
			Type: ledger.TxPayment, Account: c, Sequence: 0, Fee: 10,
			Destination: a, Amount: amount.New(amount.USD, amount.MustParse("4")),
		},
		Wait: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/submit", bytes.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body)
	}
	var sub txq.SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	if !sub.Accepted || sub.Status == nil || !sub.Status.Succeeded {
		t.Fatalf("submit response = %+v, want accepted+applied", sub)
	}

	// Status lookup by the applied hash.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tx_status?hash="+sub.Status.Hash.String(), nil))
	if rec.Code != 200 {
		t.Fatalf("tx_status status %d: %s", rec.Code, rec.Body)
	}
	var st txq.TxStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "applied" || !st.Succeeded {
		t.Fatalf("tx_status = %+v, want applied+succeeded", st)
	}

	// The payment consumed trust on the quoted path: the cached quote
	// must have been invalidated and the fresh one reflect the new limit.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", quoteURL, nil))
	var q3 txq.PathFindResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &q3); err != nil {
		t.Fatal(err)
	}
	if q3.Cached {
		t.Fatal("stale quote served after an on-path payment applied")
	}

	// Metrics must export the txq families alongside the serve ones.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	metrics := rec.Body.String()
	for _, family := range []string{
		"txq_depth", "txq_applied_total", "txq_plan_cache_hits_total",
		"txq_quote_latency_seconds", "txq_submit_latency_seconds",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}

// TestFrontDoorEndpointErrors pins the HTTP error mapping: bad params
// 400, unknown hash 404, malformed tx 400, and absent front door 404.
func TestFrontDoorEndpointErrors(t *testing.T) {
	s, _, ids := frontDoorService(t)
	h := s.Handler()

	for _, path := range []string{
		"/v1/path_find",                                             // missing params
		"/v1/path_find?src=bogus&dst=bogus&amount=10/USD",           // bad accounts
		"/v1/path_find?src=" + ids[0].String() + "&dst=" + ids[1].String() + "&amount=nonsense", // bad amount
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 400 {
			t.Errorf("GET %s status = %d, want 400", path, rec.Code)
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tx_status?hash="+strings.Repeat("00", 32), nil))
	if rec.Code != 404 {
		t.Errorf("unknown hash status = %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/submit", strings.NewReader(`{"tx":null}`)))
	if rec.Code != 400 {
		t.Errorf("nil tx submit status = %d, want 400", rec.Code)
	}

	// Without an attached front door the routes are simply not mounted.
	bare := NewService(Options{})
	defer bare.Close()
	rec = httptest.NewRecorder()
	bare.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/path_find?src=x", nil))
	if rec.Code != 404 {
		t.Errorf("path_find without front door status = %d, want 404", rec.Code)
	}
}
