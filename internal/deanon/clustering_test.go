package deanon

import (
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/synth"
)

// xrpPage builds a page with the given XRP payments (from, to pairs).
func xrpPage(seq uint64, tm uint32, pairs [][2]uint64) *ledger.Page {
	var txs []*ledger.Tx
	var metas []*ledger.TxMeta
	for _, pr := range pairs {
		txs = append(txs, &ledger.Tx{
			Type: ledger.TxPayment, Account: acct(pr[0]), Destination: acct(pr[1]),
			Amount: amount.XRPAmount(1_000_000),
		})
		metas = append(metas, &ledger.TxMeta{Result: ledger.ResultSuccess})
	}
	return &ledger.Page{
		Header: ledger.PageHeader{Sequence: seq, CloseTime: ledger.CloseTime(tm), TxSetHash: ledger.TxSetHash(txs)},
		Txs:    txs, Metas: metas,
	}
}

func TestActivationRecordsFirstFunderOnly(t *testing.T) {
	c := NewClusterer()
	// 1 activates 10; later 2 also pays 10 — only the first counts.
	if err := c.Page(xrpPage(2, 100, [][2]uint64{{1, 10}})); err != nil {
		t.Fatal(err)
	}
	if err := c.Page(xrpPage(3, 200, [][2]uint64{{2, 10}})); err != nil {
		t.Fatal(err)
	}
	act, ok := c.ActivationOf(acct(10))
	if !ok {
		t.Fatal("activation missing")
	}
	if act.Activator != acct(1) || act.Time != 100 {
		t.Errorf("activation = %+v, want by account 1 at t=100", act)
	}
}

func TestClustersByActivator(t *testing.T) {
	c := NewClusterer()
	// Account 1 activates 10, 11, 12; account 2 activates 20.
	if err := c.Page(xrpPage(2, 100, [][2]uint64{{1, 10}, {1, 11}, {1, 12}, {2, 20}})); err != nil {
		t.Fatal(err)
	}
	clusters := c.Clusters(2)
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1 (singleton filtered)", len(clusters))
	}
	if clusters[0].Activator != acct(1) || len(clusters[0].Accounts) != 3 {
		t.Errorf("cluster = %+v", clusters[0])
	}
	if !c.SameEntity(acct(10), acct(11)) {
		t.Error("siblings not linked")
	}
	if !c.SameEntity(acct(10), acct(1)) {
		t.Error("activator not linked to its account")
	}
	if c.SameEntity(acct(10), acct(20)) {
		t.Error("unrelated accounts linked")
	}
	merged := c.MergeHistories(acct(10))
	if len(merged) != 4 { // 10, 11, 12, and the activator 1
		t.Errorf("merged = %d accounts, want 4", len(merged))
	}
}

func TestAccountZeroExcluded(t *testing.T) {
	c := NewClusterer()
	// ACCOUNT_ZERO funds everyone: must not merge the network.
	page := &ledger.Page{Header: ledger.PageHeader{Sequence: 2, CloseTime: 5}}
	for i := uint64(1); i <= 5; i++ {
		page.Txs = append(page.Txs, &ledger.Tx{
			Type: ledger.TxPayment, Account: addr.AccountZero, Destination: acct(i),
			Amount: amount.XRPAmount(1),
		})
		page.Metas = append(page.Metas, &ledger.TxMeta{Result: ledger.ResultSuccess})
	}
	page.Header.TxSetHash = ledger.TxSetHash(page.Txs)
	if err := c.Page(page); err != nil {
		t.Fatal(err)
	}
	if got := c.Clusters(2); len(got) != 0 {
		t.Errorf("ACCOUNT_ZERO produced %d clusters", len(got))
	}
	if c.SameEntity(acct(1), acct(2)) {
		t.Error("accounts linked through the excluded faucet")
	}
}

func TestCustomExclusion(t *testing.T) {
	c := NewClusterer(acct(99))
	if err := c.Page(xrpPage(2, 1, [][2]uint64{{99, 1}, {99, 2}})); err != nil {
		t.Fatal(err)
	}
	if c.SameEntity(acct(1), acct(2)) {
		t.Error("accounts linked through an explicitly excluded activator")
	}
	c2 := NewClusterer()
	c2.Exclude(acct(98))
	if err := c2.Page(xrpPage(2, 1, [][2]uint64{{98, 1}, {98, 2}})); err != nil {
		t.Fatal(err)
	}
	if c2.SameEntity(acct(1), acct(2)) {
		t.Error("Exclude() not honored")
	}
}

// TestAkhavrClusterOnSyntheticHistory reproduces the paper's §D finding:
// the two hyper-active hubs were both activated by ~akhavr, so the
// activation heuristic links them into one cluster.
func TestAkhavrClusterOnSyntheticHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a history")
	}
	c := NewClusterer()
	var pop *synth.Population
	res, err := synth.Generate(synth.Config{
		Payments: 3000, Seed: 13, SkipSignatures: true,
	}, c.Page)
	if err != nil {
		t.Fatal(err)
	}
	pop = res.Population

	hub1, hub2 := pop.Hubs[0].ID, pop.Hubs[1].ID
	akhavr := pop.Akhavr.AccountID()
	if !c.SameEntity(hub1, hub2) {
		t.Error("the two hubs are not linked (both were activated by ~akhavr)")
	}
	if !c.SameEntity(hub1, akhavr) {
		t.Error("hub not linked to its activator ~akhavr")
	}
	// The akhavr cluster appears in the cluster list.
	found := false
	for _, cl := range c.Clusters(2) {
		if cl.Activator == akhavr {
			found = true
			if len(cl.Accounts) != 2 {
				t.Errorf("akhavr cluster has %d accounts, want the 2 hubs", len(cl.Accounts))
			}
		}
	}
	if !found {
		t.Error("akhavr cluster not found")
	}
	// De-anonymizing one hub hands the attacker the other hub's history
	// too.
	merged := c.MergeHistories(hub1)
	if len(merged) != 3 {
		t.Errorf("merged histories = %d accounts, want hub1+hub2+akhavr", len(merged))
	}
}
