// Package core is the public facade of the study: it wires the synthetic
// history generator, the ledger store, the consensus simulator, and the
// analysis engines into one-call experiment runners — one per table and
// figure of the paper. The cmd/ binaries and the benchmark harness are
// thin wrappers around this package.
package core

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sort"

	"ripplestudy/internal/amount"
	"ripplestudy/internal/analysis"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/deanon"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/ledgerstore"
	"ripplestudy/internal/monitor"
	"ripplestudy/internal/replay"
	"ripplestudy/internal/synth"
)

// Config parameterizes a study run.
type Config struct {
	// Payments sizes the synthetic history (the paper's full scale is
	// 23M; the default is laptop-friendly).
	Payments int
	// Seed drives all randomness.
	Seed int64
	// StoreDir, when set, persists the history to a ledgerstore and
	// streams analyses from disk; otherwise pages stay in memory.
	StoreDir string
	// ConsensusRounds scales the Figure 2 collection periods (a full
	// 2-week period is consensus.FullPeriodRounds).
	ConsensusRounds int
	// Workers caps the scan/study parallelism of the de-anonymization
	// pipeline; 0 means GOMAXPROCS.
	Workers int
	// CheckpointEvery, when nonzero on a disk-backed dataset, makes the
	// replay-based experiments persist sealed state-tree checkpoints every
	// N pages into the store's sidecar, and resume from the nearest one on
	// later runs. Zero still resumes from any checkpoints already present.
	CheckpointEvery uint64
}

func (c Config) withDefaults() Config {
	if c.Payments == 0 {
		c.Payments = 50_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ConsensusRounds == 0 {
		c.ConsensusRounds = 2000
	}
	return c
}

// Dataset is a generated history plus the state needed by the analyses.
type Dataset struct {
	cfg    Config
	source replay.Source
	result *synth.Result

	collector *analysis.Collector // lazy ecosystem statistics
}

// BuildDataset generates the history (persisting it when StoreDir is
// set) and returns the dataset the experiments run on.
func BuildDataset(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	ds := &Dataset{cfg: cfg}

	genCfg := synth.Config{
		Payments:       cfg.Payments,
		Seed:           cfg.Seed,
		SkipSignatures: true,
	}
	if cfg.StoreDir != "" {
		store, err := ledgerstore.Create(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		res, err := synth.Generate(genCfg, store.Append)
		if err != nil {
			return nil, err
		}
		if err := store.Close(); err != nil {
			return nil, err
		}
		ds.source = store
		ds.result = res
		return ds, nil
	}
	var pages []*ledger.Page
	res, err := synth.Generate(genCfg, func(p *ledger.Page) error {
		pages = append(pages, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	ds.source = replay.FromPages(pages)
	ds.result = res
	return ds, nil
}

// OpenDataset runs the experiments over a previously generated store.
// Analyses that need the final network state (Figure 7's profiles,
// Table II) rebuild it by replaying the store.
func OpenDataset(dir string) (*Dataset, error) {
	store, err := ledgerstore.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Dataset{cfg: Config{StoreDir: dir}.withDefaults(), source: store}, nil
}

// Source exposes the page stream.
func (ds *Dataset) Source() replay.Source { return ds.source }

// GeneratorResult returns the generator's output, or nil for datasets
// opened from disk.
func (ds *Dataset) GeneratorResult() *synth.Result { return ds.result }

// ecosystem builds (once) the streaming appendix statistics. Store-backed
// datasets scan segments in parallel at the configured worker count, one
// private collector per worker, merged at the end — every collector
// statistic is an order-insensitive sum or union, so the merged result
// is identical to a sequential scan.
func (ds *Dataset) ecosystem() (*analysis.Collector, error) {
	if ds.collector != nil {
		return ds.collector, nil
	}
	workers := ds.workers()
	if store, ok := ds.source.(*ledgerstore.Store); ok {
		cols := make([]*analysis.Collector, workers)
		for i := range cols {
			cols[i] = analysis.NewCollector()
		}
		// Collector.Page copies everything it keeps, so the arena-decoded
		// scan path is safe and skips the per-page decode garbage.
		err := store.PagesParallelArena(context.Background(), workers, func(w int, p *ledger.Page) error {
			return cols[w].Page(p)
		})
		if err != nil {
			return nil, fmt.Errorf("core: scanning history: %w", err)
		}
		c := cols[0]
		for _, other := range cols[1:] {
			c.Merge(other)
		}
		ds.collector = c
		return c, nil
	}
	c := analysis.NewCollector()
	if err := ds.source.Pages(c.Page); err != nil {
		return nil, fmt.Errorf("core: scanning history: %w", err)
	}
	ds.collector = c
	return c, nil
}

// lastSeq returns the final page sequence of the history. Sources with
// a sequence index (ledgerstore.Store) answer without scanning.
func (ds *Dataset) lastSeq() (uint64, error) {
	if ls, ok := ds.source.(interface{ LastSeq() (uint64, bool, error) }); ok {
		seq, has, err := ls.LastSeq()
		if err != nil {
			return 0, err
		}
		if has {
			return seq, nil
		}
		return 0, nil
	}
	var last uint64
	err := ds.source.Pages(func(p *ledger.Page) error {
		last = p.Header.Sequence
		return nil
	})
	return last, err
}

// Figure2 runs the three collection-period simulations and returns one
// validator report per period — the data behind Figure 2(a–c).
func Figure2(rounds int, seed int64) ([]monitor.Report, error) {
	if rounds == 0 {
		rounds = 2000
	}
	var out []monitor.Report
	for _, spec := range consensus.Periods(rounds) {
		rep, err := monitor.CollectPeriod(spec, consensus.Config{Seed: seed}, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// TableI returns the rounding specification rows.
func TableI() []string { return deanon.TableISpec() }

// SetWorkers overrides the de-anonymization pipeline's parallelism
// (0 restores the GOMAXPROCS default).
func (ds *Dataset) SetWorkers(n int) { ds.cfg.Workers = n }

// SetCheckpointEvery adjusts the checkpoint cadence after opening a
// dataset (flags on the cmd binaries go through here).
func (ds *Dataset) SetCheckpointEvery(n uint64) { ds.cfg.CheckpointEvery = n }

// buildOpts resolves the replay options the dataset's experiments use:
// write checkpoints at the configured cadence, resume from whatever the
// sidecar already holds.
func (ds *Dataset) buildOpts() replay.BuildOptions {
	return replay.BuildOptions{CheckpointEvery: ds.cfg.CheckpointEvery}
}

// workers resolves the configured parallelism.
func (ds *Dataset) workers() int {
	if ds.cfg.Workers > 0 {
		return ds.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// shardBitsFor sizes the fingerprint shard count to the worker count:
// the next power of two ≥ workers, so every producer can make progress
// against a worker-private map.
func shardBitsFor(workers int) int {
	if workers <= 1 {
		return 0
	}
	return bits.Len(uint(workers - 1))
}

// feedStudy streams every payment's features into the sharded study.
// Store-backed datasets take the zero-copy payment projection
// (ledgerstore.ScanPayments) with one Feeder per scan worker — no page,
// transaction, or metadata object is ever materialized; in-memory
// datasets feed sequentially (the shard workers still count
// concurrently).
func (ds *Dataset) feedStudy(ctx context.Context, workers int, study *deanon.ParallelStudy) error {
	if store, ok := ds.source.(*ledgerstore.Store); ok {
		feeders := make([]*deanon.Feeder, workers)
		for i := range feeders {
			feeders[i] = study.Feeder()
		}
		return store.ScanPayments(ctx, workers, func(w int, pv *ledger.PaymentView) error {
			feeders[w].Observe(deanon.Features{
				Sender:      pv.Sender,
				Destination: pv.Destination,
				Currency:    pv.Currency,
				Amount:      pv.Amount,
				Time:        pv.Time,
			})
			return nil
		})
	}
	return ds.source.Pages(func(p *ledger.Page) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := range p.Txs {
			if f, ok := deanon.FromTransaction(p, p.Txs[i], p.Metas[i]); ok {
				study.Observe(f)
			}
		}
		return nil
	})
}

// Figure3 computes the information gain for the paper's ten resolution
// tuples over the dataset, using the sharded pipeline at the configured
// parallelism.
func (ds *Dataset) Figure3() ([]deanon.RowResult, error) {
	return ds.Figure3Parallel(context.Background(), 0)
}

// Figure3Parallel is Figure3 with explicit cancellation and worker
// count (0 means the dataset's configured parallelism). The results are
// bit-identical to a sequential deanon.Study pass regardless of worker
// count.
func (ds *Dataset) Figure3Parallel(ctx context.Context, workers int) ([]deanon.RowResult, error) {
	if workers < 1 {
		workers = ds.workers()
	}
	study := deanon.NewParallelStudy(deanon.Figure3Rows, shardBitsFor(workers))
	defer study.Close()
	if err := ds.feedStudy(ctx, workers, study); err != nil {
		return nil, err
	}
	return study.Results(), nil
}

// FeatureImportance computes the per-feature contribution breakdown
// (alone / dropped IG per feature) plus the full-fingerprint IG, over
// the same parallel pipeline as Figure3.
func (ds *Dataset) FeatureImportance(ctx context.Context, workers int) ([]deanon.FeatureImportance, float64, error) {
	if workers < 1 {
		workers = ds.workers()
	}
	imp := deanon.NewImportanceStudyParallel(shardBitsFor(workers))
	defer imp.Close()
	study := imp.Parallel()
	if err := ds.feedStudy(ctx, workers, study); err != nil {
		return nil, 0, err
	}
	return imp.Results(), imp.FullIG(), nil
}

// collectFeatures gathers every payment's features in history order,
// scanning segments in parallel when the dataset is store-backed. The
// parallel path tags each page's features with its sequence and sorts,
// so the result is identical to a sequential scan.
func (ds *Dataset) collectFeatures(ctx context.Context) ([]deanon.Features, error) {
	workers := ds.workers()
	store, ok := ds.source.(*ledgerstore.Store)
	if !ok || workers <= 1 {
		var feats []deanon.Features
		err := ds.source.Pages(func(p *ledger.Page) error {
			for i := range p.Txs {
				if f, ok := deanon.FromTransaction(p, p.Txs[i], p.Metas[i]); ok {
					feats = append(feats, f)
				}
			}
			return nil
		})
		return feats, err
	}
	type taggedFeat struct {
		seq uint64
		idx int
		f   deanon.Features
	}
	perWorker := make([][]taggedFeat, workers)
	err := store.ScanPayments(ctx, workers, func(w int, pv *ledger.PaymentView) error {
		perWorker[w] = append(perWorker[w], taggedFeat{
			seq: pv.Seq,
			idx: pv.Index,
			f: deanon.Features{
				Sender:      pv.Sender,
				Destination: pv.Destination,
				Currency:    pv.Currency,
				Amount:      pv.Amount,
				Time:        pv.Time,
			},
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	var tagged []taggedFeat
	for _, pw := range perWorker {
		tagged = append(tagged, pw...)
	}
	// (sequence, intra-page index) is unique per payment, so sorting
	// restores exact history order regardless of worker interleaving.
	sort.Slice(tagged, func(i, j int) bool {
		if tagged[i].seq != tagged[j].seq {
			return tagged[i].seq < tagged[j].seq
		}
		return tagged[i].idx < tagged[j].idx
	})
	feats := make([]deanon.Features, 0, len(tagged))
	for _, tf := range tagged {
		feats = append(feats, tf.f)
	}
	return feats, nil
}

// Figure4 returns the currency histogram.
func (ds *Dataset) Figure4() ([]analysis.CurrencyCount, error) {
	c, err := ds.ecosystem()
	if err != nil {
		return nil, err
	}
	return c.CurrencyHistogram(), nil
}

// Figure5Curve is one survival curve of Figure 5.
type Figure5Curve struct {
	Label  string
	Points []analysis.SurvivalPoint
}

// Figure5 returns the survival functions for the paper's featured
// currencies plus the currency-unaware global curve.
func (ds *Dataset) Figure5() ([]Figure5Curve, error) {
	c, err := ds.ecosystem()
	if err != nil {
		return nil, err
	}
	grid := analysis.DefaultSurvivalGrid()
	out := []Figure5Curve{{Label: "Global", Points: c.Survival(amount.Currency{}, true, grid)}}
	for _, cur := range analysis.FeaturedCurrencies() {
		out = append(out, Figure5Curve{Label: cur.String(), Points: c.Survival(cur, false, grid)})
	}
	return out, nil
}

// Figure6 returns the hop histogram (a) and parallel-path histogram (b).
func (ds *Dataset) Figure6() (hops, parallel map[int]int64, err error) {
	c, err := ds.ecosystem()
	if err != nil {
		return nil, nil, err
	}
	return c.HopHistogram(), c.ParallelHistogram(), nil
}

// Figure7 returns the top-k intermediaries with their trust and balance
// profiles. The final network state comes from the generator when
// available, otherwise from replaying the store.
func (ds *Dataset) Figure7(k int) ([]analysis.Intermediary, error) {
	c, err := ds.ecosystem()
	if err != nil {
		return nil, err
	}
	var names analysis.Namer
	if ds.result != nil {
		names = ds.result.Population.Registry()
	}
	top := c.TopIntermediaries(k, names)
	graph := ds.finalGraphSource()
	if graph == nil {
		last, err := ds.lastSeq()
		if err != nil {
			return nil, err
		}
		eng, err := replay.BuildStateOpts(ds.source, last, ds.buildOpts())
		if err != nil {
			return nil, err
		}
		analysis.ProfileTop(top, eng.Graph(), synth.RateEUR)
		return top, nil
	}
	analysis.ProfileTop(top, graph.Engine.Graph(), synth.RateEUR)
	return top, nil
}

func (ds *Dataset) finalGraphSource() *synth.Result { return ds.result }

// OfferConcentration returns the top-k offer shares for the appendix's
// market-maker concentration claim (k ∈ {10, 50, 100}).
func (ds *Dataset) OfferConcentration() (map[int]float64, error) {
	c, err := ds.ecosystem()
	if err != nil {
		return nil, err
	}
	return c.OfferConcentration([]int{10, 50, 100}), nil
}

// TableII runs the market-maker ablation, snapshotting at the given
// fraction of the history (the paper's snapshot sits ~70% through its
// window, past the spam campaigns).
func (ds *Dataset) TableII(snapshotFraction float64) (*replay.Result, error) {
	if snapshotFraction <= 0 || snapshotFraction >= 1 {
		snapshotFraction = 0.7
	}
	last, err := ds.lastSeq()
	if err != nil {
		return nil, err
	}
	snap := uint64(float64(last) * snapshotFraction)
	if snap < 1 {
		snap = 1
	}
	// Optimistic-parallel replay is pinned bit-identical to replay.Run by
	// the differential tests, so the experiment can always take it.
	return replay.RunParallelOpts(ds.source, snap, ds.workers(), ds.buildOpts())
}

// Mitigation runs the §V wallet-splitting countermeasure study over the
// dataset: the privacy gained and the bootstrapping cost paid when every
// sender splits activity across k wallets, for each k.
func (ds *Dataset) Mitigation(ks []int) ([]deanon.MitigationResult, error) {
	feats, err := ds.collectFeatures(context.Background())
	if err != nil {
		return nil, err
	}
	return deanon.MitigationStudy(feats, ks), nil
}

// IncentiveScenario pairs a label with a reward-economy configuration.
type IncentiveScenario struct {
	Label  string
	Config consensus.IncentiveConfig
	Series []consensus.IncentivePoint
}

// Incentives runs the §IV reward-system extension: Ripple as-is (fees
// destroyed, no reward) against two levels of the paper's proposed
// transaction tax.
func Incentives(epochs int) []IncentiveScenario {
	scenarios := []IncentiveScenario{
		{Label: "no reward (Ripple today)", Config: consensus.IncentiveConfig{
			TaxPerRound: 0, InitialValidators: 13, Epochs: epochs,
		}},
		{Label: "modest tax (0.2/round)", Config: consensus.IncentiveConfig{
			TaxPerRound: 0.2, RoundsPerEpoch: 100_000, OperatingCost: 1000,
			InitialValidators: 13, Epochs: epochs,
		}},
		{Label: "strong tax (1.0/round)", Config: consensus.IncentiveConfig{
			TaxPerRound: 1.0, RoundsPerEpoch: 100_000, OperatingCost: 1000,
			InitialValidators: 13, Epochs: epochs,
		}},
	}
	for i := range scenarios {
		scenarios[i].Series = consensus.SimulateIncentives(scenarios[i].Config)
	}
	return scenarios
}

// SpamCost returns the top fee payers — what the anti-spam fee actually
// charged the spam campaigns.
func (ds *Dataset) SpamCost(k int) ([]analysis.FeePayer, amount.Drops, error) {
	c, err := ds.ecosystem()
	if err != nil {
		return nil, 0, err
	}
	var names analysis.Namer
	if ds.result != nil {
		names = ds.result.Population.Registry()
	}
	return c.TopFeePayers(k, names), c.TotalFees(), nil
}

// ClockUncertainty runs the time-window attack sweep: the fraction of
// payments uniquely de-anonymized by an observer whose clock is only
// accurate to ±Δ, for each Δ. It generalizes Figure 3's Tsc/Tmn/Thr/Tdy
// ladder to a continuous curve.
func (ds *Dataset) ClockUncertainty(deltas []uint32) ([]deanon.WindowPoint, error) {
	w := deanon.NewWindowIndex(deanon.Resolution{
		Amount: deanon.AmountMax, Currency: true, Destination: true,
	})
	payments, err := ds.collectFeatures(context.Background())
	if err != nil {
		return nil, err
	}
	for _, f := range payments {
		w.Add(f)
	}
	return w.UncertaintySweep(payments, deltas), nil
}

// Stats summarizes the dataset for reports.
type Stats struct {
	Payments    int64
	Failed      int64
	MultiHop    int64
	Offers      int64
	ActiveUsers int
	TotalPages  int
}

// Stats scans the dataset.
func (ds *Dataset) Stats() (Stats, error) {
	c, err := ds.ecosystem()
	if err != nil {
		return Stats{}, err
	}
	pages := 0
	if store, ok := ds.source.(*ledgerstore.Store); ok {
		// The sequence index answers the page count from the sidecar (one
		// stat per segment when warm) instead of re-decoding the history.
		ranges, err := store.SegmentRanges()
		if err != nil {
			return Stats{}, err
		}
		for _, sr := range ranges {
			pages += sr.Pages
		}
	} else if err := ds.source.Pages(func(*ledger.Page) error { pages++; return nil }); err != nil {
		return Stats{}, err
	}
	return Stats{
		Payments:    c.Payments(),
		Failed:      c.FailedPayments(),
		MultiHop:    c.MultiHopPayments(),
		Offers:      c.TotalOffers(),
		ActiveUsers: c.ActiveAccounts(),
		TotalPages:  pages,
	}, nil
}
