package deanon_test

import (
	"fmt"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/deanon"
	"ripplestudy/internal/ledger"
)

// ExampleIndex shows the paper's attack in four lines: index the public
// ledger, observe one payment, recover the sender.
func ExampleIndex() {
	bob := addr.KeyPairFromSeed(10).AccountID()
	bar := addr.KeyPairFromSeed(20).AccountID()

	idx := deanon.NewIndex(deanon.Figure3Rows[0]) // ⟨Am;Tsc;C;D⟩
	idx.Add(deanon.Features{
		Sender:      bob,
		Destination: bar,
		Currency:    amount.USD,
		Amount:      amount.MustParse("4.5"),
		Time:        ledger.CloseTime(500_000_000),
	})

	// Alice observed everything except the sender.
	observation := deanon.Features{
		Destination: bar,
		Currency:    amount.USD,
		Amount:      amount.MustParse("4.5"),
		Time:        ledger.CloseTime(500_000_000),
	}
	candidates := idx.Candidates(observation)
	fmt.Println(len(candidates) == 1 && candidates[0] == bob)
	// Output: true
}

func ExampleRoundAmount() {
	// The Table I rounding process per strength group.
	fmt.Println(deanon.RoundAmount(amount.MustParse("0.0042"), amount.BTC, deanon.AmountMax))
	fmt.Println(deanon.RoundAmount(amount.MustParse("447"), amount.USD, deanon.AmountAvg))
	fmt.Println(deanon.RoundAmount(amount.MustParse("123456"), amount.XRP, deanon.AmountMax))
	// Output:
	// 0.004
	// 400
	// 100000
}

func ExampleResolution_String() {
	fmt.Println(deanon.Figure3Rows[0])
	fmt.Println(deanon.Resolution{Amount: deanon.AmountLow, Time: deanon.TimeDays})
	// Output:
	// <Am;Tsc;C;D>
	// <Al;Tdy;-;->
}
