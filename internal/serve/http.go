package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/deanon"
	"ripplestudy/internal/ledger"
)

// cachedResponse is one rendered body pinned to the view epoch it was
// rendered from. Snapshot endpoints are pure functions of their view's
// epoch, so a matching epoch means the bytes can be replayed verbatim.
type cachedResponse struct {
	epoch uint64
	body  []byte
}

// Handler returns the service's HTTP API:
//
//	GET /healthz          ingestion health (JSON, never limited)
//	GET /metrics          Prometheus text exposition (never limited)
//	GET /v1/validators    Figure 2 per-validator tallies
//	GET /v1/deanon        Figure 3 information-gain rows
//	GET /v1/deanon/lookup sender-uniqueness point query (O(1))
//	GET /v1/ecosystem     Figures 4–6 histograms and curves
//
// Query endpoints pass through the admission limiter (MaxConcurrent
// slots, AdmitWait grace, then 503) and serve from immutable epoch
// snapshots, so they never block — and are never blocked by — ingestion.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Health())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writeMetrics(w)
	})

	var tallyCache, fpCache, ecoCache atomic.Pointer[cachedResponse]
	mux.Handle("GET /v1/validators", s.limited("validators", func(w http.ResponseWriter, r *http.Request) {
		snap := s.Tally()
		s.serveCached(w, "validators", &tallyCache, snap.Epoch, snap)
	}))
	mux.Handle("GET /v1/deanon", s.limited("deanon", func(w http.ResponseWriter, r *http.Request) {
		snap := s.Fingerprints()
		s.serveCached(w, "deanon", &fpCache, snap.Epoch, snap)
	}))
	mux.Handle("GET /v1/ecosystem", s.limited("ecosystem", func(w http.ResponseWriter, r *http.Request) {
		snap := s.Ecosystem()
		s.serveCached(w, "ecosystem", &ecoCache, snap.Epoch, snap)
	}))
	mux.Handle("GET /v1/deanon/lookup", s.limited("deanon_lookup", s.handleLookup))

	if s.fd != nil {
		// Front-door endpoints share the admission limiter: a quote storm
		// cannot starve the snapshot queries and vice versa. Submission
		// backpressure (queue depth) is the front door's own second gate.
		mux.Handle("GET /v1/path_find", s.limited("path_find", s.fd.HandlePathFind))
		mux.Handle("POST /v1/submit", s.limited("submit", s.fd.HandleSubmit))
		mux.Handle("GET /v1/tx_status", s.limited("tx_status", s.fd.HandleTxStatus))
	}
	return mux
}

// limited wraps a query handler with the admission limiter and latency
// recording.
func (s *Service) limited(name string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.admit <- struct{}{}:
		default:
			// Full: wait out the grace period rather than failing fast.
			t := time.NewTimer(s.opts.AdmitWait)
			select {
			case s.admit <- struct{}{}:
				t.Stop()
			case <-t.C:
				s.rejected.Add(1)
				http.Error(w, "overloaded", http.StatusServiceUnavailable)
				return
			case <-r.Context().Done():
				t.Stop()
				s.rejected.Add(1)
				return
			}
		}
		s.inflight.Add(1)
		start := time.Now()
		defer func() {
			s.metrics.endpoint(name).latency.record(time.Since(start))
			s.inflight.Add(-1)
			<-s.admit
		}()
		h(w, r)
	})
}

// serveCached replays the cached body when the endpoint's view epoch
// has not advanced, re-rendering (and republishing the cache) otherwise.
// A stale concurrent store is harmless: every body is valid for its own
// epoch and the next request re-checks.
func (s *Service) serveCached(w http.ResponseWriter, name string, cache *atomic.Pointer[cachedResponse], epoch uint64, v any) {
	if c := cache.Load(); c != nil && c.epoch == epoch {
		s.metrics.endpoint(name).recordCacheHit()
		writeJSONBytes(w, c.body)
		return
	}
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	cache.Store(&cachedResponse{epoch: epoch, body: body})
	writeJSONBytes(w, body)
}

// LookupResult is the JSON answer to /v1/deanon/lookup.
type LookupResult struct {
	Epoch      uint64 `json:"epoch"`
	AppliedSeq uint64 `json:"applied_seq"`
	Row        int    `json:"row"`
	Resolution string `json:"resolution"`
	// Count is the saturating fingerprint count: 0 never seen, 1 unique,
	// 2 two-or-more.
	Count uint8 `json:"count"`
	// Verdict spells Count out: "unseen", "unique" (the sender is
	// de-anonymized at this resolution), or "ambiguous".
	Verdict string `json:"verdict"`
}

// handleLookup answers a point query: given an observation (amount,
// currency, close time, destination) and a Figure 3 resolution row, how
// many payments in the current snapshot share its fingerprint?
func (s *Service) handleLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	row, err := strconv.Atoi(q.Get("row"))
	if err != nil {
		http.Error(w, "row: integer index into the Figure 3 resolution rows required", http.StatusBadRequest)
		return
	}
	var f deanon.Features
	if v := q.Get("amount"); v != "" {
		f.Amount, err = amount.Parse(v)
		if err != nil {
			http.Error(w, fmt.Sprintf("amount: %v", err), http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("currency"); v != "" {
		f.Currency, err = amount.NewCurrency(v)
		if err != nil {
			http.Error(w, fmt.Sprintf("currency: %v", err), http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("time"); v != "" {
		t, terr := strconv.ParseUint(v, 10, 32)
		if terr != nil {
			http.Error(w, "time: seconds since the Ripple epoch required", http.StatusBadRequest)
			return
		}
		f.Time = ledger.CloseTime(t)
	}
	if v := q.Get("dest"); v != "" {
		f.Destination, err = addr.ParseAccountID(v)
		if err != nil {
			http.Error(w, fmt.Sprintf("dest: %v", err), http.StatusBadRequest)
			return
		}
	}
	snap := s.Fingerprints()
	count, ok := snap.Lookup(row, f)
	if !ok {
		http.Error(w, fmt.Sprintf("row: %d out of range [0, %d)", row, len(snap.Rows)), http.StatusBadRequest)
		return
	}
	verdict := "unseen"
	switch count {
	case 1:
		verdict = "unique"
	case 2:
		verdict = "ambiguous"
	}
	writeJSON(w, LookupResult{
		Epoch:      snap.Epoch,
		AppliedSeq: snap.AppliedSeq,
		Row:        row,
		Resolution: snap.Resolutions()[row].String(),
		Count:      count,
		Verdict:    verdict,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSONBytes(w, body)
}

func writeJSONBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	w.Write([]byte("\n"))
}
