package serve

import (
	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/monitor"
)

// tallyState is the mutable Figure 2 view: per-validator total/valid
// page counts maintained incrementally from the validation stream.
//
// The batch pipeline (monitor.Collector) retains every validation and
// recomputes valid counts at Report time — O(validations) per report.
// Here a close event retroactively credits the validators that already
// signed the page (the pending index), and a validation of an
// already-valid page credits immediately, so the per-validator counters
// are always current and a snapshot is O(validators).
type tallyState struct {
	labels  map[addr.NodeID]string
	totals  map[addr.NodeID]int
	valids  map[addr.NodeID]int
	badSigs map[addr.NodeID]int
	// pending maps a page hash to the validators that signed it before
	// it was announced valid (one entry per validation, duplicates
	// kept, matching the batch semantics).
	pending    map[ledger.Hash][]addr.NodeID
	validPages map[ledger.Hash]bool
	events     int
	malformed  int
}

func newTallyState(labels map[addr.NodeID]string) *tallyState {
	return &tallyState{
		labels:     labels,
		totals:     make(map[addr.NodeID]int),
		valids:     make(map[addr.NodeID]int),
		badSigs:    make(map[addr.NodeID]int),
		pending:    make(map[ledger.Hash][]addr.NodeID),
		validPages: make(map[ledger.Hash]bool),
	}
}

// apply folds one stream event in, with the same malformed-event
// quarantine rules as monitor.Collector.Record.
func (t *tallyState) apply(ev consensus.Event) {
	switch ev.Kind {
	case consensus.EventValidation:
		if ev.LedgerHash.IsZero() || ev.Node == (addr.NodeID{}) {
			t.malformed++
			return
		}
		t.events++
		t.totals[ev.Node]++
		if t.validPages[ev.LedgerHash] {
			t.valids[ev.Node]++
		} else {
			t.pending[ev.LedgerHash] = append(t.pending[ev.LedgerHash], ev.Node)
		}
		if len(ev.Signature) > 0 && !addr.Verify(ev.Node.PublicKey(), ev.LedgerHash[:], ev.Signature) {
			t.badSigs[ev.Node]++
		}
	case consensus.EventLedgerClosed:
		if ev.LedgerHash.IsZero() {
			t.malformed++
			return
		}
		t.events++
		if !t.validPages[ev.LedgerHash] {
			t.validPages[ev.LedgerHash] = true
			for _, node := range t.pending[ev.LedgerHash] {
				t.valids[node]++
			}
			delete(t.pending, ev.LedgerHash)
		}
	default:
		t.malformed++
	}
}

// snapshot seals the current tallies as an immutable TallySnapshot.
func (t *tallyState) snapshot(epoch, appliedSeq uint64) *TallySnapshot {
	stats := make([]monitor.ValidatorStats, 0, len(t.totals))
	for node, total := range t.totals {
		stats = append(stats, monitor.ValidatorStats{
			Node:          node,
			Label:         t.displayName(node),
			Total:         total,
			Valid:         t.valids[node],
			BadSignatures: t.badSigs[node],
		})
	}
	monitor.SortStats(stats)
	return &TallySnapshot{
		Epoch:      epoch,
		AppliedSeq: appliedSeq,
		Rounds:     len(t.validPages),
		Events:     t.events,
		Malformed:  t.malformed,
		Validators: stats,
	}
}

func (t *tallyState) displayName(node addr.NodeID) string {
	if l, ok := t.labels[node]; ok && l != "" {
		return l
	}
	return node.Short()
}

// TallySnapshot is one sealed epoch of the Figure 2 view.
type TallySnapshot struct {
	// Epoch identifies the publish this snapshot came from; it keys the
	// HTTP response cache.
	Epoch uint64 `json:"epoch"`
	// AppliedSeq is the highest ledger sequence folded in.
	AppliedSeq uint64 `json:"applied_seq"`
	// Rounds is the number of distinct validated pages observed.
	Rounds int `json:"rounds"`
	// Events and Malformed count well-formed and quarantined events.
	Events    int `json:"events"`
	Malformed int `json:"malformed"`
	// Validators holds the per-validator tallies in the paper's
	// presentation order.
	Validators []monitor.ValidatorStats `json:"validators"`
}

// Report converts the snapshot to the batch pipeline's report type, so
// existing consumers (tables, comparisons) work unchanged.
func (s *TallySnapshot) Report(period string) monitor.Report {
	return monitor.Report{Period: period, Rounds: s.Rounds, Validators: s.Validators}
}
