GO ?= go

.PHONY: all build vet test race chaos bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Data-race check over the concurrent paths: stream/collection plus the
# sharded de-anonymization pipeline (PagesParallel + ParallelStudy).
race:
	$(GO) test -race ./internal/netstream/... ./internal/monitor/... ./internal/faultnet/... ./internal/deanon/... ./internal/ledgerstore/...

# Perf trajectory: run the Figure 3 pipeline and store benchmarks with
# allocation stats and archive them as JSON so future PRs can diff
# payments/s, ns/op, and B/op against this one.
bench:
	$(GO) test -run '^$$' -bench 'Figure3|Fig3Deanon|Store' -benchmem . | tee bench.out
	$(GO) test -run '^$$' -bench 'PagesParallel' -benchmem ./internal/ledgerstore | tee -a bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_deanon.json
	@echo "wrote BENCH_deanon.json"

# Short chaos pass: fault injection, resilience, and the degraded-stream
# integration test.
chaos:
	$(GO) test -run 'Fault|Chaos|Resilient|Stalled|Corrupt|Inject|Malformed|Health|BadFrames|Truncat|BitFlip' ./internal/...

check: vet build test race chaos
