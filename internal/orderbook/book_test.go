package orderbook

import (
	"math/rand"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
)

func acct(seed uint64) addr.AccountID { return addr.KeyPairFromSeed(seed).AccountID() }

func usdEUR() Pair { return Pair{Pays: amount.USD, Gets: amount.EUR} }

// offer builds an offer selling `gets` EUR for `pays` USD.
func offer(owner uint64, seq uint32, pays, gets string) *Offer {
	return &Offer{
		Owner: acct(owner),
		Seq:   seq,
		Pays:  amount.New(amount.USD, amount.MustParse(pays)),
		Gets:  amount.New(amount.EUR, amount.MustParse(gets)),
	}
}

func TestPlaceAndBestOrdering(t *testing.T) {
	b := New()
	// Qualities: 1.2, 1.0, 1.1 — best must be 1.0.
	for i, o := range []*Offer{
		offer(1, 1, "120", "100"),
		offer(2, 1, "100", "100"),
		offer(3, 1, "110", "100"),
	} {
		if err := b.Place(o); err != nil {
			t.Fatalf("offer %d: %v", i, err)
		}
	}
	best := b.Best(usdEUR())
	if best == nil || best.Owner != acct(2) {
		t.Fatalf("best offer = %+v, want owner 2 at quality 1.0", best)
	}
	if b.Depth(usdEUR()) != 3 {
		t.Errorf("depth = %d, want 3", b.Depth(usdEUR()))
	}
	if b.Best(Pair{Pays: amount.EUR, Gets: amount.USD}) != nil {
		t.Error("reverse book should be empty")
	}
}

func TestPlaceValidation(t *testing.T) {
	b := New()
	if err := b.Place(offer(1, 1, "0", "100")); err == nil {
		t.Error("zero pays accepted")
	}
	if err := b.Place(offer(1, 1, "100", "0")); err == nil {
		t.Error("zero gets accepted")
	}
	same := &Offer{Owner: acct(1), Seq: 1,
		Pays: amount.MustAmount("1/USD"), Gets: amount.MustAmount("1/USD")}
	if err := b.Place(same); err == nil {
		t.Error("same-currency offer accepted")
	}
	if err := b.Place(offer(1, 7, "100", "100")); err != nil {
		t.Fatal(err)
	}
	if err := b.Place(offer(1, 7, "50", "50")); err == nil {
		t.Error("duplicate (owner, seq) accepted")
	}
}

func TestCancel(t *testing.T) {
	b := New()
	if err := b.Place(offer(1, 5, "100", "100")); err != nil {
		t.Fatal(err)
	}
	if !b.Cancel(acct(1), 5) {
		t.Error("cancel of standing offer reported false")
	}
	if b.Cancel(acct(1), 5) {
		t.Error("double cancel reported true")
	}
	if b.Depth(usdEUR()) != 0 || b.NumOffers() != 0 {
		t.Error("cancelled offer still standing")
	}
}

func TestQuoteBuyFullFill(t *testing.T) {
	b := New()
	if err := b.Place(offer(1, 1, "110", "100")); err != nil { // quality 1.1
		t.Fatal(err)
	}
	if err := b.Place(offer(2, 1, "100", "100")); err != nil { // quality 1.0
		t.Fatal(err)
	}
	q, err := b.QuoteBuy(usdEUR(), amount.MustParse("150"))
	if err != nil {
		t.Fatal(err)
	}
	if q.TotalGets.String() != "150" {
		t.Errorf("TotalGets = %s, want 150", q.TotalGets)
	}
	// 100 at 1.0 plus 50 at 1.1 = 155.
	if q.TotalPays.String() != "155" {
		t.Errorf("TotalPays = %s, want 155", q.TotalPays)
	}
	if len(q.Fills) != 2 {
		t.Fatalf("fills = %d, want 2", len(q.Fills))
	}
	if q.Fills[0].Offer.Owner != acct(2) {
		t.Error("best offer not consumed first")
	}
	// Quote must not mutate.
	if b.Best(usdEUR()).Gets.Value.String() != "100" {
		t.Error("QuoteBuy mutated the book")
	}
}

func TestQuotePartialLiquidity(t *testing.T) {
	b := New()
	if err := b.Place(offer(1, 1, "50", "50")); err != nil {
		t.Fatal(err)
	}
	q, err := b.QuoteBuy(usdEUR(), amount.MustParse("200"))
	if err != nil {
		t.Fatal(err)
	}
	if q.TotalGets.String() != "50" {
		t.Errorf("TotalGets = %s, want 50 (partial)", q.TotalGets)
	}
	// Empty book quotes zero.
	empty, err := b.QuoteBuy(Pair{Pays: amount.BTC, Gets: amount.USD}, amount.MustParse("1"))
	if err != nil {
		t.Fatal(err)
	}
	if !empty.TotalGets.IsZero() || len(empty.Fills) != 0 {
		t.Errorf("empty book quote = %+v", empty)
	}
	if _, err := b.QuoteBuy(usdEUR(), amount.Zero); err == nil {
		t.Error("zero-amount quote accepted")
	}
}

func TestApplyConsumesOffers(t *testing.T) {
	b := New()
	if err := b.Place(offer(1, 1, "100", "100")); err != nil {
		t.Fatal(err)
	}
	if err := b.Place(offer(2, 1, "220", "200")); err != nil {
		t.Fatal(err)
	}
	q, err := b.QuoteBuy(usdEUR(), amount.MustParse("150"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(q); err != nil {
		t.Fatal(err)
	}
	// First offer fully consumed and removed; second reduced to 150 gets.
	if b.OffersOf(acct(1)) != 0 {
		t.Error("fully consumed offer still standing")
	}
	rest := b.Best(usdEUR())
	if rest == nil || rest.Owner != acct(2) {
		t.Fatal("remaining offer missing")
	}
	if rest.Gets.Value.String() != "150" {
		t.Errorf("remaining gets = %s, want 150", rest.Gets.Value)
	}
	if rest.Pays.Value.String() != "165" {
		t.Errorf("remaining pays = %s, want 165", rest.Pays.Value)
	}
	// Quality unchanged by proportional fill.
	if rest.Quality().String() != "1.1" {
		t.Errorf("quality after partial fill = %s, want 1.1", rest.Quality())
	}
}

func TestApplyStaleQuote(t *testing.T) {
	b := New()
	if err := b.Place(offer(1, 1, "100", "100")); err != nil {
		t.Fatal(err)
	}
	q, err := b.QuoteBuy(usdEUR(), amount.MustParse("10"))
	if err != nil {
		t.Fatal(err)
	}
	b.Cancel(acct(1), 1)
	if err := b.Apply(q); err == nil {
		t.Error("stale quote applied")
	}
}

func TestConservationUnderFills(t *testing.T) {
	// Property: across any sequence of quote/apply, the taker's pays and
	// gets per fill respect the offer's quality.
	r := rand.New(rand.NewSource(7))
	b := New()
	for i := 0; i < 20; i++ {
		pays := int64(r.Intn(500) + 50)
		gets := int64(r.Intn(500) + 50)
		o := &Offer{
			Owner: acct(uint64(i)),
			Seq:   uint32(i),
			Pays:  amount.New(amount.USD, amount.FromInt64(pays)),
			Gets:  amount.New(amount.EUR, amount.FromInt64(gets)),
		}
		if err := b.Place(o); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 30 && b.NumOffers() > 0; round++ {
		want := amount.FromInt64(int64(r.Intn(200) + 1))
		q, err := b.QuoteBuy(usdEUR(), want)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range q.Fills {
			// f.Pays / f.Gets must equal the offer's quality within
			// rounding (1 part in 1e12).
			ratio, err := f.Pays.Div(f.Gets)
			if err != nil {
				t.Fatal(err)
			}
			diff, err := ratio.Sub(f.Offer.Quality())
			if err != nil {
				t.Fatal(err)
			}
			rel, err := diff.Abs().Div(f.Offer.Quality())
			if err != nil {
				t.Fatal(err)
			}
			if rel.Cmp(amount.MustValue(1, -12)) > 0 {
				t.Fatalf("fill ratio %s deviates from quality %s", ratio, f.Offer.Quality())
			}
		}
		if err := b.Apply(q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRemoveOwner(t *testing.T) {
	b := New()
	for i := uint32(0); i < 5; i++ {
		if err := b.Place(offer(1, i, "100", "100")); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Place(offer(2, 0, "100", "100")); err != nil {
		t.Fatal(err)
	}
	if n := b.RemoveOwner(acct(1)); n != 5 {
		t.Errorf("RemoveOwner removed %d, want 5", n)
	}
	if b.NumOffers() != 1 {
		t.Errorf("offers remaining = %d, want 1", b.NumOffers())
	}
	if b.OffersOf(acct(1)) != 0 {
		t.Error("owner still has offers after removal")
	}
}

func TestOwnersIteration(t *testing.T) {
	b := New()
	if err := b.Place(offer(1, 1, "10", "10")); err != nil {
		t.Fatal(err)
	}
	if err := b.Place(offer(1, 2, "10", "10")); err != nil {
		t.Fatal(err)
	}
	if err := b.Place(offer(2, 1, "10", "10")); err != nil {
		t.Fatal(err)
	}
	got := make(map[addr.AccountID]int)
	b.Owners(func(o addr.AccountID, n int) { got[o] = n })
	if got[acct(1)] != 2 || got[acct(2)] != 1 {
		t.Errorf("owners = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	b := New()
	if err := b.Place(offer(1, 1, "100", "100")); err != nil {
		t.Fatal(err)
	}
	cp := b.Clone()
	q, err := cp.QuoteBuy(usdEUR(), amount.MustParse("100"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Apply(q); err != nil {
		t.Fatal(err)
	}
	if cp.NumOffers() != 0 {
		t.Error("clone not fully consumed")
	}
	if b.NumOffers() != 1 {
		t.Error("original book mutated through clone")
	}
}

func TestPairsIteration(t *testing.T) {
	b := New()
	if err := b.Place(offer(1, 1, "10", "10")); err != nil {
		t.Fatal(err)
	}
	xrpBTC := &Offer{Owner: acct(3), Seq: 9,
		Pays: amount.MustAmount("100/XRP"), Gets: amount.MustAmount("0.01/BTC")}
	if err := b.Place(xrpBTC); err != nil {
		t.Fatal(err)
	}
	pairs := make(map[Pair]int)
	b.Pairs(func(p Pair, n int) { pairs[p] = n })
	if len(pairs) != 2 {
		t.Errorf("pairs = %v, want 2 books", pairs)
	}
	if pairs[Pair{Pays: amount.XRP, Gets: amount.BTC}] != 1 {
		t.Error("XRP→BTC book missing")
	}
}
