package consensus

import (
	"testing"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
)

// activeSpecs builds n trusted, always-available active validators.
func activeSpecs(n int) []ValidatorSpec {
	specs := make([]ValidatorSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, ValidatorSpec{
			Behavior:     BehaviorActive,
			Seed:         uint64(i + 1),
			Availability: 1.0,
			Trusted:      true,
		})
	}
	return specs
}

// paymentTx builds a signed XRP payment from a funded keypair.
func paymentTx(n *Network, sender *addr.KeyPair, dest addr.AccountID, drops amount.Drops) *ledger.Tx {
	tx := &ledger.Tx{
		Type:        ledger.TxPayment,
		Account:     sender.AccountID(),
		Sequence:    n.Engine().NextSequence(sender.AccountID()),
		Fee:         10,
		Destination: dest,
		Amount:      amount.XRPAmount(drops),
	}
	tx.Sign(sender)
	return tx
}

func TestRoundClosesAndValidates(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, TxDropRate: 0}, activeSpecs(5))
	alice, bob := addr.KeyPairFromSeed(100), addr.KeyPairFromSeed(101)
	n.Engine().Fund(alice.AccountID(), 1_000_000_000)

	res, err := n.RunRound([]*ledger.Tx{paymentTx(n, alice, bob.AccountID(), 5_000_000)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Validated {
		t.Fatal("round with 5/5 active validators did not validate")
	}
	if res.Validations != 5 {
		t.Errorf("validations = %d, want 5", res.Validations)
	}
	if len(res.Page.Txs) != 1 {
		t.Fatalf("page sealed %d txs, want 1", len(res.Page.Txs))
	}
	if len(res.Deferred) != 0 {
		t.Errorf("deferred = %d, want 0", len(res.Deferred))
	}
	if n.Engine().XRPBalance(bob.AccountID()) != 5_000_000 {
		t.Error("payment not applied to canonical state")
	}
	if n.Chain().Len() != 2 {
		t.Errorf("chain length = %d, want 2", n.Chain().Len())
	}
	if err := res.Page.Validate(); err != nil {
		t.Errorf("sealed page invalid: %v", err)
	}
}

func TestValidationEventsEmitted(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, TxDropRate: 0}, activeSpecs(4))
	var validations, closes int
	var signedHash ledger.Hash
	var sig []byte
	var node addr.NodeID
	n.Subscribe(func(ev Event) {
		switch ev.Kind {
		case EventValidation:
			validations++
			signedHash, sig, node = ev.LedgerHash, ev.Signature, ev.Node
		case EventLedgerClosed:
			closes++
		}
	})
	res, err := n.RunRound(nil)
	if err != nil {
		t.Fatal(err)
	}
	if validations != 4 {
		t.Errorf("validation events = %d, want 4", validations)
	}
	if closes != 1 {
		t.Errorf("close events = %d, want 1", closes)
	}
	if signedHash != res.Page.Header.Hash() {
		t.Error("validation signed a non-canonical hash")
	}
	// Signatures must verify under the node's public key.
	if !addr.Verify(node.PublicKey(), signedHash[:], sig) {
		t.Error("validation signature does not verify")
	}
}

func TestQuorumFailsWithoutEnoughActives(t *testing.T) {
	// 5 trusted validators but 3 forked: only 2 can sign the canonical
	// page → below the 80% quorum.
	specs := activeSpecs(2)
	for i := 0; i < 3; i++ {
		specs = append(specs, ValidatorSpec{
			Behavior:     BehaviorForked,
			Seed:         uint64(50 + i),
			Availability: 1.0,
			Trusted:      true, // trusted but misbehaving
		})
	}
	// Trusted quorum counts only active trusted validators (2), so 2
	// matching signatures DO meet quorum over the active set. To model
	// the paper's failure case, mark the forked ones trusted and active
	// — instead verify here that forked signatures never match.
	n := NewNetwork(Config{Seed: 3, TxDropRate: 0}, specs)
	res, err := n.RunRound(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Validations != 2 {
		t.Errorf("canonical validations = %d, want 2 (forked never match)", res.Validations)
	}
}

func TestDisputedTransactionsDeferred(t *testing.T) {
	// With a very high drop rate most transactions fail to reach the
	// 95% final threshold and are deferred, not silently lost.
	n := NewNetwork(Config{Seed: 7, TxDropRate: 0.6}, activeSpecs(10))
	alice := addr.KeyPairFromSeed(100)
	n.Engine().Fund(alice.AccountID(), 1_000_000_000)
	var txs []*ledger.Tx
	for i := 0; i < 20; i++ {
		txs = append(txs, paymentTx(n, alice, addr.KeyPairFromSeed(uint64(200+i)).AccountID(), 1_000_000))
	}
	// Sequences were assigned consecutively above; deferral breaks the
	// sequence chain, so just count conservation here.
	res, err := n.RunRound(txs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Page.Txs)+len(res.Deferred) != 20 {
		t.Errorf("sealed %d + deferred %d != submitted 20", len(res.Page.Txs), len(res.Deferred))
	}
	if len(res.Deferred) == 0 {
		t.Log("note: no disputes at this seed; acceptable but unexpected")
	}
}

func TestRunRetriesDeferred(t *testing.T) {
	n := NewNetwork(Config{Seed: 11, TxDropRate: 0.3}, activeSpecs(8))
	alice := addr.KeyPairFromSeed(100)
	n.Engine().Fund(alice.AccountID(), 10_000_000_000)
	bob := addr.KeyPairFromSeed(101).AccountID()
	total := 30
	issued := 0
	results, err := n.Run(40, func(round int) []*ledger.Tx {
		if issued >= total {
			return nil
		}
		issued++
		return []*ledger.Tx{paymentTx(n, alice, bob, 1_000_000)}
	})
	if err != nil {
		t.Fatal(err)
	}
	sealed := 0
	for _, r := range results {
		sealed += len(r.Page.Txs)
	}
	if sealed != total {
		t.Errorf("sealed %d transactions over 40 rounds, want all %d (deferred retried)", sealed, total)
	}
}

func TestTestnetChainDivergesFromMain(t *testing.T) {
	specs := activeSpecs(5)
	specs = append(specs, ValidatorSpec{
		Label: "testnet.ripple.com", Behavior: BehaviorTestnet,
		Seed: 99, Availability: 1.0,
	})
	n := NewNetwork(Config{Seed: 5, TxDropRate: 0}, specs)
	var testnetHashes []ledger.Hash
	testnetNode, ok := n.NodeIDOf("testnet.ripple.com")
	if !ok {
		t.Fatal("testnet validator not found")
	}
	n.Subscribe(func(ev Event) {
		if ev.Kind == EventValidation && ev.Node == testnetNode {
			testnetHashes = append(testnetHashes, ev.LedgerHash)
		}
	})
	if _, err := n.Run(5, nil); err != nil {
		t.Fatal(err)
	}
	if len(testnetHashes) != 5 {
		t.Fatalf("testnet validations = %d, want 5", len(testnetHashes))
	}
	for _, h := range testnetHashes {
		if _, onMain := n.Chain().ByHash(h); onMain {
			t.Error("testnet validation matches a main-chain page")
		}
		if _, onTest := n.TestChain().ByHash(h); !onTest {
			t.Error("testnet validation not on the test chain")
		}
	}
}

func TestLaggardRarelyValid(t *testing.T) {
	specs := activeSpecs(5)
	specs = append(specs, ValidatorSpec{
		Behavior: BehaviorLaggard, Seed: 77,
		Availability: 1.0, SyncProbability: 0.1,
	})
	n := NewNetwork(Config{Seed: 9, TxDropRate: 0}, specs)
	lagNode := addr.KeyPairFromSeed(77).NodeID()
	signed, valid := 0, 0
	n.Subscribe(func(ev Event) {
		if ev.Kind != EventValidation || ev.Node != lagNode {
			return
		}
		signed++
		if _, ok := n.Chain().ByHash(ev.LedgerHash); ok {
			valid++
		}
	})
	const rounds = 300
	if _, err := n.Run(rounds, nil); err != nil {
		t.Fatal(err)
	}
	if signed < rounds*8/10 {
		t.Errorf("laggard signed %d of %d rounds", signed, rounds)
	}
	frac := float64(valid) / float64(signed)
	if frac < 0.02 || frac > 0.25 {
		t.Errorf("laggard valid fraction = %.3f, want near its 0.1 sync probability", frac)
	}
}

func TestChurnWindows(t *testing.T) {
	specs := activeSpecs(5)
	specs = append(specs, ValidatorSpec{
		Label: "brief.example", Behavior: BehaviorActive,
		Seed: 55, Availability: 1.0, Trusted: true,
		JoinRound: 3, LeaveRound: 5,
	})
	n := NewNetwork(Config{Seed: 2, TxDropRate: 0}, specs)
	briefNode, _ := n.NodeIDOf("brief.example")
	perRound := make(map[int]bool)
	round := 0
	n.Subscribe(func(ev Event) {
		if ev.Kind == EventValidation && ev.Node == briefNode {
			perRound[round] = true
		}
	})
	for i := 1; i <= 8; i++ {
		round = i
		if _, err := n.RunRound(nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 8; i++ {
		want := i >= 3 && i <= 5
		if perRound[i] != want {
			t.Errorf("round %d: signed=%v, want %v", i, perRound[i], want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ledger.Hash {
		n := NewNetwork(Config{Seed: 42}, December2015(0).Specs)
		if _, err := n.Run(20, nil); err != nil {
			t.Fatal(err)
		}
		return n.Chain().Tip().Header.Hash()
	}
	if run() != run() {
		t.Error("same seed produced different chains")
	}
}

func TestSimulatedClockAdvances(t *testing.T) {
	start := time.Date(2015, 12, 1, 0, 0, 0, 0, time.UTC)
	n := NewNetwork(Config{Seed: 1, StartTime: start, CloseInterval: 5 * time.Second}, activeSpecs(5))
	if _, err := n.Run(10, nil); err != nil {
		t.Fatal(err)
	}
	if got := n.Now(); !got.Equal(start.Add(50 * time.Second)) {
		t.Errorf("clock = %v, want start+50s", got)
	}
	// Close times on the chain are monotone.
	var last ledger.CloseTime
	for i := 0; i < n.Chain().Len(); i++ {
		ct := n.Chain().Page(i).Header.CloseTime
		if ct < last {
			t.Fatal("close times not monotone")
		}
		last = ct
	}
}

func TestPeriodSpecsShape(t *testing.T) {
	tests := []struct {
		spec        PeriodSpec
		total       int
		actives     int
		testnetters int
	}{
		{December2015(100), 34, 9, 0},
		{July2016(100), 33, 15, 5},
		{November2016(100), 39, 16, 5},
	}
	for _, tt := range tests {
		if got := len(tt.spec.Specs); got != tt.total {
			t.Errorf("%s: %d validators, want %d", tt.spec.Name, got, tt.total)
		}
		actives, testnetters := 0, 0
		for _, s := range tt.spec.Specs {
			switch s.Behavior {
			case BehaviorActive:
				actives++
			case BehaviorTestnet:
				testnetters++
			}
		}
		if actives != tt.actives {
			t.Errorf("%s: %d actives, want %d", tt.spec.Name, actives, tt.actives)
		}
		if testnetters != tt.testnetters {
			t.Errorf("%s: %d testnet validators, want %d", tt.spec.Name, testnetters, tt.testnetters)
		}
	}
}

func TestRecurringValidatorsShareKeys(t *testing.T) {
	// The validators present in all three periods must keep their node
	// identity (the paper tracks 9 recurring actives).
	dec := NewNetwork(Config{Seed: 1}, December2015(10).Specs)
	jul := NewNetwork(Config{Seed: 1}, July2016(10).Specs)
	nov := NewNetwork(Config{Seed: 1}, November2016(10).Specs)
	for i := 1; i <= 5; i++ {
		label := rLabel(i)
		d, ok1 := dec.NodeIDOf(label)
		j, ok2 := jul.NodeIDOf(label)
		n, ok3 := nov.NodeIDOf(label)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("%s missing from a period", label)
		}
		if d != j || j != n {
			t.Errorf("%s changed identity across periods", label)
		}
	}
}
