package deanon

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardedIncStudy is the incrementally-maintained counterpart of Study,
// built for the live serving layer (internal/serve): payments arrive in
// batches over the lifetime of a long-running process, and both the
// per-resolution information gain and individual sender-uniqueness
// lookups must be answerable in O(1) at any point — not only after a
// closing Results pass.
//
// Counting is sharded exactly like ParallelStudy: the fingerprint space
// is partitioned into 1<<shardBits shards by the fingerprint's HIGH
// bits, each shard owned by one worker goroutine with private
// countTables, so increments need no locks and scale with cores. The
// producer (one goroutine — the serving layer's fingerprint view
// worker) routes observations into per-shard batches and hands full
// batches to the owning worker over a channel.
//
// Seal is the scatter-gather snapshot step: it flushes every pending
// batch, barriers on the shards that received work since the last seal,
// deep-copies ONLY those shards' tables (copy-on-publish for changed
// shards; unchanged shards share their previous immutable clone), and
// returns an IncSnapshot whose Results and Lookup answers are
// bit-identical to a single-writer IncStudy — shards partition the
// fingerprint space, so per-resolution unique counts are plain sums and
// a lookup probes exactly one shard's table.
type ShardedIncStudy struct {
	resolutions []Resolution
	plan        *FingerprintPlan
	shift       uint
	shards      []*incShard
	// payments is atomic so concurrent IncFeeder producers can count
	// observations without a lock and seal-gate heuristics can read the
	// running total from a coordinator goroutine.
	payments atomic.Int64

	// pending is the single-producer batch per shard; dirty marks shards
	// that received observations since the last Seal. dirty is atomic so
	// multiple IncFeeder producers can mark shards concurrently; it is
	// read and cleared only at Seal, with every producer quiescent.
	pending [][]obsEntry
	dirty   []atomic.Bool

	// sealed[sh] is shard sh's tables as of its last dirty Seal —
	// immutable clones shared with every snapshot taken since.
	sealed [][]*countTable
	// empty is the shared all-zero table clean shards point at before
	// their first observation.
	empty *countTable

	batchPool sync.Pool // *[]obsEntry
	wg        sync.WaitGroup
	fps       []Fingerprint // Observe scratch
	closed    bool

	// inline short-circuits the 1-shard configuration: with a single
	// shard the producer IS the only writer, so observations increment
	// the tables directly — no batches, no channel hops, no shard
	// goroutine, no barrier. Results are identical by construction.
	inline bool
}

// incShard is one worker-owned slice of the fingerprint space.
type incShard struct {
	ch     chan incMsg
	ack    chan struct{}
	counts []*countTable
}

// incMsg is one unit of shard work: a batch of observations, or (when
// entries is nil) a barrier token the worker acknowledges once every
// prior batch has been applied.
type incMsg struct {
	entries []obsEntry
	sync    bool
}

// DefaultShardBits derives a shard count from the machine: the next
// power of two covering GOMAXPROCS, clamped to [0, maxShardBits].
func DefaultShardBits() int {
	n := runtime.GOMAXPROCS(0)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if bits > maxShardBits {
		bits = maxShardBits
	}
	return bits
}

// NewShardedIncStudy prepares an incremental sharded study over the
// given resolutions with 1<<shardBits counting shards. shardBits is
// clamped to [0, 10]; shardBits = 0 is the single-writer baseline the
// differential tests compare against. Close must be called to stop the
// shard workers.
func NewShardedIncStudy(resolutions []Resolution, shardBits int) *ShardedIncStudy {
	if shardBits < 0 {
		shardBits = 0
	}
	if shardBits > maxShardBits {
		shardBits = maxShardBits
	}
	s := &ShardedIncStudy{
		resolutions: append([]Resolution(nil), resolutions...),
		shift:       uint(64 - shardBits),
		empty:       newCountTable(),
		inline:      shardBits == 0,
	}
	s.plan = NewFingerprintPlan(s.resolutions)
	s.fps = make([]Fingerprint, 0, len(s.resolutions))
	n := 1 << shardBits
	s.pending = make([][]obsEntry, n)
	s.dirty = make([]atomic.Bool, n)
	s.sealed = make([][]*countTable, n)
	for i := 0; i < n; i++ {
		sh := &incShard{ch: make(chan incMsg, 4), ack: make(chan struct{}, 1)}
		for range s.resolutions {
			sh.counts = append(sh.counts, getCountTable())
		}
		s.shards = append(s.shards, sh)
		s.pending[i] = s.getBatch()
		// Until the shard's first dirty seal, snapshots share the one
		// immutable empty table.
		tables := make([]*countTable, len(s.resolutions))
		for r := range tables {
			tables[r] = s.empty
		}
		s.sealed[i] = tables
		if !s.inline {
			s.wg.Add(1)
			go s.runShard(sh)
		}
	}
	return s
}

// runShard drains one shard's batches into its private count tables and
// acknowledges barrier tokens.
func (s *ShardedIncStudy) runShard(sh *incShard) {
	defer s.wg.Done()
	for msg := range sh.ch {
		if msg.entries != nil {
			for _, e := range msg.entries {
				sh.counts[e.res].incr(e.fp)
			}
			b := msg.entries
			s.batchPool.Put(&b)
		}
		if msg.sync {
			sh.ack <- struct{}{}
		}
	}
}

func (s *ShardedIncStudy) getBatch() []obsEntry {
	if v := s.batchPool.Get(); v != nil {
		return (*v.(*[]obsEntry))[:0]
	}
	return make([]obsEntry, 0, batchEntries)
}

// Shards returns the number of counting shards.
func (s *ShardedIncStudy) Shards() int { return len(s.shards) }

// Resolutions returns the study's resolution rows, in order.
func (s *ShardedIncStudy) Resolutions() []Resolution { return s.resolutions }

// Payments returns the number of observations folded in. It is safe to
// call concurrently with feeder intake; the count is monotone and may
// trail in-flight observations by at most a batch.
func (s *ShardedIncStudy) Payments() int { return int(s.payments.Load()) }

// Plan returns the study's compiled fingerprint plan, for producers
// that precompute fingerprints upstream (the serving layer's projection
// front door) and feed them back through ObserveFingerprints.
func (s *ShardedIncStudy) Plan() *FingerprintPlan { return s.plan }

// ObserveFingerprints folds one payment's precomputed fingerprints —
// one per resolution row, produced by the study's Plan — into the shard
// counts. Like every mutating method it must only be called from the
// single producer goroutine.
func (s *ShardedIncStudy) ObserveFingerprints(fps []Fingerprint) {
	s.payments.Add(1)
	if s.inline {
		// Single shard: the producer is the sole writer — count in place.
		counts := s.shards[0].counts
		for i, fp := range fps {
			counts[i].incr(fp)
		}
		s.dirty[0].Store(true)
		return
	}
	for i, fp := range fps {
		sh := int(uint64(fp) >> s.shift)
		s.pending[sh] = append(s.pending[sh], obsEntry{res: uint16(i), fp: fp})
		s.dirty[sh].Store(true)
		if len(s.pending[sh]) == cap(s.pending[sh]) {
			s.shards[sh].ch <- incMsg{entries: s.pending[sh]}
			s.pending[sh] = s.getBatch()
		}
	}
}

// IncFeeder is a per-producer intake for a ShardedIncStudy: each
// concurrent producer goroutine owns one feeder and routes observations
// into private per-shard batches, so a counting shard receives one
// coalesced batch per flush instead of per-record handoffs and the
// producers never contend on shared batch state. Shard channels are the
// only cross-producer rendezvous, and Go channels are multi-producer
// safe; counts are order-insensitive sums, so interleaving batches from
// different feeders cannot change any sealed result.
//
// A feeder is single-goroutine: ObserveFingerprints and Flush must not
// be called concurrently on the SAME feeder. Flush must be called on
// every feeder — with all producers quiescent — before the coordinator
// calls Seal, or buffered observations miss the snapshot.
type IncFeeder struct {
	study   *ShardedIncStudy
	pending [][]obsEntry
}

// Feeders prepares n concurrent intakes. It must be called before any
// observation: it permanently switches the study out of the inline
// single-writer fast path (starting the shard goroutines a 1-shard
// study otherwise skips), because with multiple producers even one
// shard needs a channel-owned writer.
func (s *ShardedIncStudy) Feeders(n int) []*IncFeeder {
	if s.inline {
		s.inline = false
		for _, sh := range s.shards {
			s.wg.Add(1)
			go s.runShard(sh)
		}
	}
	out := make([]*IncFeeder, n)
	for i := range out {
		f := &IncFeeder{study: s, pending: make([][]obsEntry, len(s.shards))}
		for sh := range f.pending {
			f.pending[sh] = s.getBatch()
		}
		out[i] = f
	}
	return out
}

// ObserveFingerprints folds one payment's precomputed fingerprints into
// the feeder's per-shard batches, handing full batches to the owning
// shard goroutine.
func (f *IncFeeder) ObserveFingerprints(fps []Fingerprint) {
	s := f.study
	s.payments.Add(1)
	for i, fp := range fps {
		sh := int(uint64(fp) >> s.shift)
		f.pending[sh] = append(f.pending[sh], obsEntry{res: uint16(i), fp: fp})
		if len(f.pending[sh]) == cap(f.pending[sh]) {
			s.dirty[sh].Store(true)
			s.shards[sh].ch <- incMsg{entries: f.pending[sh]}
			f.pending[sh] = s.getBatch()
		}
	}
}

// Flush hands every buffered batch to its shard. The shard is marked
// dirty before the send so a following Seal barriers on it.
func (f *IncFeeder) Flush() {
	s := f.study
	for sh, buf := range f.pending {
		if len(buf) == 0 {
			continue
		}
		s.dirty[sh].Store(true)
		s.shards[sh].ch <- incMsg{entries: buf}
		f.pending[sh] = s.getBatch()
	}
}

// Observe folds one payment in, encoding its features and
// fingerprinting every resolution through the shared plan.
func (s *ShardedIncStudy) Observe(f Features) {
	enc := EncodeFeatures(f)
	s.fps = enc.AppendFingerprints(s.plan, s.fps[:0])
	s.ObserveFingerprints(s.fps)
}

// barrier flushes pending batches and waits until every dirty shard has
// applied them. On return the dirty shards' tables are quiescent and
// safe for the producer to read until the next Observe.
func (s *ShardedIncStudy) barrier() {
	if s.inline {
		return // no worker goroutine; the tables are already quiescent
	}
	for sh, buf := range s.pending {
		if !s.dirty[sh].Load() {
			continue
		}
		msg := incMsg{sync: true}
		if len(buf) > 0 {
			msg.entries = buf
			s.pending[sh] = s.getBatch()
		}
		s.shards[sh].ch <- msg
	}
	for sh := range s.shards {
		if s.dirty[sh].Load() {
			<-s.shards[sh].ack
		}
	}
}

// Seal publishes the current counts as an immutable IncSnapshot. Only
// shards that changed since the previous Seal are deep-copied; clean
// shards share the clone the previous snapshot already holds, so the
// amortized publish cost tracks the ingest rate, not the table size.
func (s *ShardedIncStudy) Seal() *IncSnapshot {
	s.barrier()
	for sh := range s.shards {
		if !s.dirty[sh].Load() {
			continue
		}
		tables := make([]*countTable, len(s.resolutions))
		for r, t := range s.shards[sh].counts {
			tables[r] = t.clone()
		}
		s.sealed[sh] = tables
		s.dirty[sh].Store(false)
	}
	snap := &IncSnapshot{
		resolutions: s.resolutions,
		shift:       s.shift,
		tables:      make([][]*countTable, len(s.sealed)),
		unique:      make([]int, len(s.resolutions)),
		payments:    int(s.payments.Load()),
		empty:       s.empty,
	}
	copy(snap.tables, s.sealed)
	for r := range s.resolutions {
		for sh := range snap.tables {
			snap.unique[r] += snap.tables[sh][r].unique()
		}
	}
	return snap
}

// Close stops the shard workers and returns the live tables to the
// package pool. Snapshots stay valid — their tables are independent
// clones. Close is idempotent; no Observe or Seal may follow it.
func (s *ShardedIncStudy) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if !s.inline {
		for _, sh := range s.shards {
			close(sh.ch)
		}
		s.wg.Wait()
	}
	for _, sh := range s.shards {
		for i, t := range sh.counts {
			if t != nil {
				t.release()
				sh.counts[i] = nil
			}
		}
	}
}

// IncSnapshot is one sealed, immutable epoch of a ShardedIncStudy: the
// per-shard count tables plus the derived per-resolution unique counts.
// It is safe to share across any number of reader goroutines.
type IncSnapshot struct {
	resolutions []Resolution
	shift       uint
	tables      [][]*countTable // [shard][resolution]
	unique      []int
	payments    int
	empty       *countTable
}

// Payments returns the number of observations sealed into the snapshot.
func (s *IncSnapshot) Payments() int { return s.payments }

// Resolutions returns the snapshot's resolution rows.
func (s *IncSnapshot) Resolutions() []Resolution { return s.resolutions }

// Results returns the information gain for every resolution, O(shards)
// per row. The rows are bit-identical to a batch Study (and to a
// single-writer incremental pass) fed the same payments in any order.
func (s *IncSnapshot) Results() []RowResult {
	out := make([]RowResult, 0, len(s.resolutions))
	for i, res := range s.resolutions {
		ig := 0.0
		if s.payments > 0 {
			ig = float64(s.unique[i]) / float64(s.payments)
		}
		out = append(out, RowResult{Resolution: res, IG: ig, Unique: s.unique[i], Total: s.payments})
	}
	return out
}

// Lookup returns how many sealed payments share the observation's
// fingerprint at resolution row i, saturating at 2: 0 = never seen,
// 1 = unique (a successful de-anonymization), 2 = ambiguous. O(1): the
// fingerprint's high bits pick the one shard table that can hold it.
func (s *IncSnapshot) Lookup(i int, f Features) uint8 {
	return s.LookupFingerprint(i, FingerprintOf(f, s.resolutions[i]))
}

// LookupFingerprint is Lookup for a precomputed fingerprint.
func (s *IncSnapshot) LookupFingerprint(i int, fp Fingerprint) uint8 {
	return s.tables[uint64(fp)>>s.shift][i].get(fp)
}

// DistinctFingerprints reports the number of distinct fingerprints per
// resolution.
func (s *IncSnapshot) DistinctFingerprints() []int {
	out := make([]int, len(s.resolutions))
	for i := range s.resolutions {
		for sh := range s.tables {
			out[i] += s.tables[sh][i].distinct()
		}
	}
	return out
}

// CountBytes reports the resident footprint of the sealed tables. The
// shared empty placeholder is counted once, not per shard.
func (s *IncSnapshot) CountBytes() int {
	n := 0
	sawEmpty := false
	for _, tables := range s.tables {
		for _, t := range tables {
			if t == s.empty {
				if !sawEmpty {
					n += t.bytes()
					sawEmpty = true
				}
				continue
			}
			n += t.bytes()
		}
	}
	return n
}
