// Quickstart: build a miniature Ripple network from scratch — accounts,
// trust-lines, an order book — run payments through the real engine, and
// seal them into a ledger page with a five-validator consensus round.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A consensus network of five always-on validators (think R1–R5).
	specs := make([]consensus.ValidatorSpec, 0, 5)
	for i := 0; i < 5; i++ {
		specs = append(specs, consensus.ValidatorSpec{
			Label:        fmt.Sprintf("R%d", i+1),
			Behavior:     consensus.BehaviorActive,
			Seed:         uint64(i + 1),
			Availability: 1.0,
			Trusted:      true,
		})
	}
	net := consensus.NewNetwork(consensus.Config{Seed: 42, TxDropRate: 0}, specs)
	eng := net.Engine()

	// Three parties: Alice, Bob, and a gateway that issues USD.
	alice := addr.KeyPairFromSeed(100)
	bob := addr.KeyPairFromSeed(101)
	gateway := addr.KeyPairFromSeed(102)
	for _, kp := range []*addr.KeyPair{alice, bob, gateway} {
		eng.Fund(kp.AccountID(), 1000*amount.DropsPerXRP)
	}
	fmt.Println("Alice:  ", alice.AccountID())
	fmt.Println("Bob:    ", bob.AccountID())
	fmt.Println("Gateway:", gateway.AccountID())

	// Helper: build, sign, and queue a transaction.
	var pending []*ledger.Tx
	submit := func(kp *addr.KeyPair, mutate func(*ledger.Tx)) {
		tx := &ledger.Tx{
			Account:  kp.AccountID(),
			Sequence: eng.NextSequence(kp.AccountID()) + uint32(countFrom(pending, kp.AccountID())),
			Fee:      10,
		}
		mutate(tx)
		tx.Sign(kp)
		pending = append(pending, tx)
	}

	// Round 1: Alice and Bob trust the gateway for 100 USD each; the
	// gateway deposits 50 USD to Bob (it now owes Bob 50).
	submit(alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = gateway.AccountID()
		tx.Limit = amount.MustAmount("100/USD")
	})
	submit(bob, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = gateway.AccountID()
		tx.Limit = amount.MustAmount("100/USD")
	})
	res, err := closeRound(net, &pending)
	if err != nil {
		return err
	}
	fmt.Printf("\nledger %d sealed: %d transactions, validated=%v\n",
		res.Page.Header.Sequence, len(res.Page.Txs), res.Validated)

	submit(gateway, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = bob.AccountID()
		tx.Amount = amount.MustAmount("50/USD")
	})
	if res, err = closeRound(net, &pending); err != nil {
		return err
	}
	fmt.Printf("ledger %d sealed: gateway deposited 50 USD to Bob\n", res.Page.Header.Sequence)

	// Round 2: Bob pays Alice 10 USD. There is no direct trust between
	// them — the payment ripples through the gateway (Figure 1 of the
	// paper, with the gateway as B).
	submit(bob, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = alice.AccountID()
		tx.Amount = amount.MustAmount("10/USD")
	})
	if res, err = closeRound(net, &pending); err != nil {
		return err
	}
	meta := res.Page.Metas[0]
	fmt.Printf("ledger %d sealed: Bob paid Alice %s (%s, %d intermediate hop)\n",
		res.Page.Header.Sequence, meta.Delivered, meta.Result, meta.MaxHops())

	// Inspect the resulting balances.
	fmt.Println("\nfinal credit state:")
	fmt.Printf("  gateway owes Bob:   %s USD\n",
		eng.Graph().Owed(bob.AccountID(), gateway.AccountID(), amount.USD))
	fmt.Printf("  gateway owes Alice: %s USD\n",
		eng.Graph().Owed(alice.AccountID(), gateway.AccountID(), amount.USD))
	fmt.Printf("  XRP fees destroyed: %s drops\n", amount.FormatDrops(eng.FeesDestroyed()))
	fmt.Printf("  chain height: %d, tip %s\n",
		net.Chain().Len(), net.Chain().Tip().Header.Hash().Short())
	return nil
}

// countFrom counts queued transactions from the account (sequence
// bookkeeping for multiple submissions in one round).
func countFrom(pending []*ledger.Tx, a addr.AccountID) int {
	n := 0
	for _, tx := range pending {
		if tx.Account == a {
			n++
		}
	}
	return n
}

// closeRound runs one consensus round over the pending transactions.
func closeRound(net *consensus.Network, pending *[]*ledger.Tx) (*consensus.RoundResult, error) {
	res, err := net.RunRound(*pending)
	if err != nil {
		return nil, err
	}
	*pending = res.Deferred
	return res, nil
}
