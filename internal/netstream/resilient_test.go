package netstream

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ripplestudy/internal/consensus"
)

func testOptions() ResilientOptions {
	return ResilientOptions{
		InitialBackoff:         2 * time.Millisecond,
		MaxBackoff:             50 * time.Millisecond,
		DialTimeout:            500 * time.Millisecond,
		ReadTimeout:            25 * time.Millisecond,
		MaxConsecutiveFailures: 2000,
	}
}

// collectSeqs accumulates stream sequences thread-safely.
type collectSeqs struct {
	mu   sync.Mutex
	seqs []uint64
}

func (c *collectSeqs) add(ev consensus.Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seqs = append(c.seqs, ev.StreamSeq)
	return nil
}

func (c *collectSeqs) snapshot() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]uint64(nil), c.seqs...)
}

func waitLastSeq(t *testing.T, rc *ResilientClient, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for rc.LastSeq() < want {
		if time.Now().After(deadline) {
			t.Fatalf("client stuck at seq %d, want %d", rc.LastSeq(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestResilientClientResumesAcrossServerRestart kills the server
// mid-stream, restarts it on the same address, and checks the client
// reconnects and loses nothing.
func TestResilientClientResumesAcrossServerRestart(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	rc := NewResilientClient(addr, testOptions())
	var got collectSeqs
	runErr := make(chan error, 1)
	go func() {
		runErr <- rc.Run(context.Background(), func(ev consensus.Event) error {
			if err := got.add(ev); err != nil {
				return err
			}
			if ev.StreamSeq == 80 {
				return ErrStop
			}
			return nil
		})
	}()
	waitSubscribers(t, srv, 1)
	for i := uint64(1); i <= 40; i++ {
		srv.Publish(testEvent(i))
	}
	waitLastSeq(t, rc, 40)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same address. The network's stream sequences keep
	// rising across the restart (a live consensus network assigns them,
	// not the server), so publish 41.. with explicit sequences.
	var srv2 *Server
	for attempt := 0; ; attempt++ {
		srv2, err = Serve(addr)
		if err == nil {
			break
		}
		if attempt > 100 {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer srv2.Close()
	for i := uint64(41); i <= 80; i++ {
		ev := testEvent(i)
		ev.StreamSeq = i
		srv2.Publish(ev)
	}

	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}
	seqs := got.snapshot()
	if len(seqs) != 80 {
		t.Fatalf("collected %d events, want 80", len(seqs))
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, seq, i+1)
		}
	}
	st := rc.Stats()
	if st.Reconnects == 0 {
		t.Error("expected at least one reconnect across the restart")
	}
	if st.Missed != 0 || st.Gaps != 0 {
		t.Errorf("lossless restart reported gaps=%d missed=%d", st.Gaps, st.Missed)
	}
}

// TestResilientClientReportsUnrecoverableGap: when the replay ring
// cannot fill a hole, the client repairs once, then accepts and counts
// the loss instead of looping.
func TestResilientClientReportsUnrecoverableGap(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rc := NewResilientClient(srv.Addr(), testOptions())
	var got collectSeqs
	runErr := make(chan error, 1)
	go func() {
		runErr <- rc.Run(context.Background(), func(ev consensus.Event) error {
			if err := got.add(ev); err != nil {
				return err
			}
			if ev.StreamSeq == 16 {
				return ErrStop
			}
			return nil
		})
	}()
	waitSubscribers(t, srv, 1)
	for i := uint64(1); i <= 10; i++ {
		srv.Publish(testEvent(i))
	}
	waitLastSeq(t, rc, 10)
	// Sequences 11–14 never exist anywhere: an unrecoverable gap.
	ev := testEvent(15)
	ev.StreamSeq = 15
	srv.Publish(ev)
	waitLastSeq(t, rc, 15)
	ev = testEvent(16)
	ev.StreamSeq = 16
	srv.Publish(ev)
	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := rc.Stats()
	if st.Gaps != 1 {
		t.Errorf("Gaps = %d, want 1", st.Gaps)
	}
	if st.Missed != 4 {
		t.Errorf("Missed = %d, want 4", st.Missed)
	}
	if st.Reconnects == 0 {
		t.Error("gap repair should have reconnected at least once")
	}
	if n := len(got.snapshot()); n != 12 {
		t.Errorf("collected %d events, want 12 (1–10, 15, 16)", n)
	}
}

// TestResilientClientGivesUpWhenUnreachable bounds the retry loop.
func TestResilientClientGivesUpWhenUnreachable(t *testing.T) {
	opts := testOptions()
	opts.MaxConsecutiveFailures = 3
	// An address nothing listens on: a freshly closed ephemeral port.
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	srv.Close()

	rc := NewResilientClient(addr, opts)
	err = rc.Run(context.Background(), func(consensus.Event) error { return nil })
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Run = %v, want ErrUnavailable", err)
	}
}

// TestResilientClientHonorsContext: cancellation ends Run promptly even
// while blocked reading an idle stream.
func TestResilientClientHonorsContext(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc := NewResilientClient(srv.Addr(), testOptions())
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() {
		runErr <- rc.Run(ctx, func(consensus.Event) error { return nil })
	}()
	waitSubscribers(t, srv, 1)
	cancel()
	select {
	case err := <-runErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

// TestResilientClientStallTimeout reconnects away from a connection
// that stops delivering frames.
func TestResilientClientStallTimeout(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	opts := testOptions()
	opts.StallTimeout = 100 * time.Millisecond
	rc := NewResilientClient(srv.Addr(), opts)
	runErr := make(chan error, 1)
	go func() {
		runErr <- rc.Run(context.Background(), func(ev consensus.Event) error {
			if ev.StreamSeq == 2 {
				return ErrStop
			}
			return nil
		})
	}()
	waitSubscribers(t, srv, 1)
	srv.Publish(testEvent(1))
	// Publish nothing for a while: the client should cycle connections
	// (stall → reconnect → resume) without losing its place, and still
	// receive the next event when it comes.
	time.Sleep(400 * time.Millisecond)
	srv.Publish(testEvent(2))
	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st := rc.Stats(); st.Reconnects == 0 {
		t.Error("expected stall-driven reconnects")
	} else if st.LastSeq != 2 {
		t.Errorf("LastSeq = %d, want 2", st.LastSeq)
	}
}
