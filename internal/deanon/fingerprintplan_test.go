package deanon

import (
	"math/rand"
	"testing"
)

// TestAppendFingerprintsMatchesFingerprintOf pins the planned
// fingerprint path (prefix memoization + interleaved destination fold)
// bit-identical to the per-resolution reference for every resolution
// combination. allResolutions() has 50 destination rows, so the
// dstLanes batching is exercised past one batch.
func TestAppendFingerprintsMatchesFingerprintOf(t *testing.T) {
	plans := map[string][]Resolution{
		"figure3":    Figure3Rows,
		"importance": importanceRows(),
		"all":        allResolutions(),
		"single":     {{Amount: AmountMax, Time: TimeSeconds, Currency: true, Destination: true}},
		"empty":      {},
	}
	for name, rows := range plans {
		plan := NewFingerprintPlan(rows)
		if plan.Rows() != len(rows) {
			t.Fatalf("%s: plan.Rows() = %d, want %d", name, plan.Rows(), len(rows))
		}
		var fps []Fingerprint
		for _, f := range randomFeatures(300, 11) {
			enc := EncodeFeatures(f)
			fps = enc.AppendFingerprints(plan, fps[:0])
			if len(fps) != len(rows) {
				t.Fatalf("%s: got %d fingerprints, want %d", name, len(fps), len(rows))
			}
			for i, res := range rows {
				if want := FingerprintOf(f, res); fps[i] != want {
					t.Fatalf("%s row %d (%s): planned fingerprint %x, FingerprintOf %x",
						name, i, res, fps[i], want)
				}
			}
		}
	}
}

// TestAppendFingerprintsAppends verifies the append contract: existing
// elements are preserved and new fingerprints land after them.
func TestAppendFingerprintsAppends(t *testing.T) {
	plan := NewFingerprintPlan(Figure3Rows)
	f := randomFeatures(1, 3)[0]
	enc := EncodeFeatures(f)
	out := []Fingerprint{42, 43}
	out = enc.AppendFingerprints(plan, out)
	if len(out) != 2+len(Figure3Rows) || out[0] != 42 || out[1] != 43 {
		t.Fatalf("append clobbered prefix: %v", out[:2])
	}
	for i, res := range Figure3Rows {
		if want := FingerprintOf(f, res); out[2+i] != want {
			t.Fatalf("row %d: %x, want %x", i, out[2+i], want)
		}
	}
}

// TestCountTableUniquesIncremental pins the O(1) uniques counter to the
// O(capacity) scan across growth, saturation, and the zero key.
func TestCountTableUniquesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tab := newCountTable()
	// A small key pool forces repeats (saturation) while still growing
	// the table several times; key 0 exercises the out-of-band slot.
	for i := 0; i < 50_000; i++ {
		tab.incr(Fingerprint(rng.Intn(8000)))
		if i%997 == 0 {
			if got, want := tab.unique(), tab.uniqueScan(); got != want {
				t.Fatalf("after %d incrs: unique() = %d, scan = %d", i+1, got, want)
			}
		}
	}
	if got, want := tab.unique(), tab.uniqueScan(); got != want {
		t.Fatalf("final: unique() = %d, scan = %d", got, want)
	}
	c := tab.clone()
	if got, want := c.unique(), c.uniqueScan(); got != want {
		t.Fatalf("clone: unique() = %d, scan = %d", got, want)
	}
	tab.reset()
	if tab.unique() != 0 || tab.uniqueScan() != 0 || tab.distinct() != 0 {
		t.Fatalf("reset left counts behind: unique=%d distinct=%d", tab.unique(), tab.distinct())
	}
	// The reset table must count correctly again.
	tab.incr(1)
	tab.incr(2)
	tab.incr(2)
	if tab.unique() != 1 || tab.get(1) != 1 || tab.get(2) != countSaturated {
		t.Fatalf("post-reset counting broken: unique=%d", tab.unique())
	}
}

// TestCountTablePoolRecycling verifies released tables come back zeroed
// with their grown capacity intact, and that oversized tables are
// dropped instead of pinned.
func TestCountTablePoolRecycling(t *testing.T) {
	tab := getCountTable()
	for i := 1; i <= 10_000; i++ {
		tab.incr(Fingerprint(i))
	}
	grown := len(tab.keys)
	if grown <= countTableMinCap {
		t.Fatalf("table did not grow (cap %d)", grown)
	}
	tab.release()
	got := getCountTable()
	if len(got.keys) < grown {
		t.Fatalf("pooled capacity lost: got %d, want >= %d", len(got.keys), grown)
	}
	if got.used != 0 || got.unique() != 0 || got.uniqueScan() != 0 {
		t.Fatalf("pooled table not zeroed: used=%d unique=%d", got.used, got.unique())
	}
	got.release()

	huge := &countTable{
		keys:   make([]Fingerprint, 2*maxPooledSlots),
		counts: make([]uint8, 2*maxPooledSlots),
		mask:   2*maxPooledSlots - 1,
	}
	huge.release() // must be a no-op
	if fresh := getCountTable(); len(fresh.keys) >= 2*maxPooledSlots {
		t.Fatalf("oversized table was pooled (cap %d)", len(fresh.keys))
	}
}

// TestParallelStudyCloseRecycles checks Close is safe (idempotent,
// post-Results) and that a study built after Close still produces
// correct results from recycled tables.
func TestParallelStudyCloseRecycles(t *testing.T) {
	feats := randomFeatures(5_000, 17)
	want := NewStudy(Figure3Rows)
	for _, f := range feats {
		want.Observe(f)
	}
	wantRows := want.Results()

	for round := 0; round < 3; round++ {
		par := NewParallelStudy(Figure3Rows, 2)
		for _, f := range feats {
			par.Observe(f)
		}
		rows := par.Results()
		for i := range wantRows {
			if rows[i].Unique != wantRows[i].Unique || rows[i].Total != wantRows[i].Total {
				t.Fatalf("round %d row %d: got %+v, want %+v", round, i, rows[i], wantRows[i])
			}
		}
		par.Close()
		par.Close() // idempotent
	}
}
