package payment

import (
	"math/rand"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
)

// TestPropXRPConservation drives a random XRP workload and verifies the
// fundamental supply invariant: circulating drops + destroyed fees =
// genesis supply, at every step.
func TestPropXRPConservation(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	e := NewEngine()
	const n = 12
	keys := make([]*addr.KeyPair, n)
	for i := range keys {
		keys[i] = kp(uint64(i + 1))
		e.Fund(keys[i].AccountID(), 1_000_000_000)
	}
	accounts := append([]addr.AccountID{addr.AccountZero}, make([]addr.AccountID, 0, n)...)
	for _, k := range keys {
		accounts = append(accounts, k.AccountID())
	}
	checkSupply := func(step int) {
		var circulating uint64
		for _, a := range accounts {
			circulating += uint64(e.XRPBalance(a))
		}
		if circulating+uint64(e.FeesDestroyed()) != ledger.GenesisTotalDrops {
			t.Fatalf("step %d: circulating %d + destroyed %d != genesis %d",
				step, circulating, e.FeesDestroyed(), ledger.GenesisTotalDrops)
		}
		if e.TotalDrops() != ledger.GenesisTotalDrops-uint64(e.FeesDestroyed()) {
			t.Fatalf("step %d: TotalDrops out of sync", step)
		}
	}
	checkSupply(0)
	for i := 0; i < 500; i++ {
		from := keys[r.Intn(n)]
		to := keys[r.Intn(n)]
		if from == to {
			continue
		}
		tx := &ledger.Tx{
			Type:        ledger.TxPayment,
			Account:     from.AccountID(),
			Sequence:    e.NextSequence(from.AccountID()),
			Fee:         amount.Drops(10 + r.Intn(100)),
			Destination: to.AccountID(),
			// Sometimes more than the balance, to exercise failures.
			Amount: amount.XRPAmount(amount.Drops(r.Int63n(2_000_000_000))),
		}
		tx.Sign(from)
		if _, err := e.Apply(tx); err != nil {
			t.Fatal(err)
		}
		checkSupply(i + 1)
	}
}

// TestPropIOUConservation verifies that issued-currency payments are
// zero-sum over the credit network: the sum of all pair balances,
// signed consistently, equals the net issuance — and rippled payments
// between users never change the total.
func TestPropIOUConservation(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	e := NewEngine()
	gw := kp(1)
	users := make([]*addr.KeyPair, 8)
	e.Fund(gw.AccountID(), 1_000_000_000)
	for i := range users {
		users[i] = kp(uint64(i + 2))
		e.Fund(users[i].AccountID(), 1_000_000_000)
	}
	apply := func(k *addr.KeyPair, mutate func(*ledger.Tx)) *ledger.TxMeta {
		tx := &ledger.Tx{Account: k.AccountID(), Sequence: e.NextSequence(k.AccountID()), Fee: 10}
		mutate(tx)
		tx.Sign(k)
		m, err := e.Apply(tx)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// Users trust the gateway and each other a bit.
	for _, u := range users {
		apply(u, func(tx *ledger.Tx) {
			tx.Type = ledger.TxTrustSet
			tx.LimitPeer = gw.AccountID()
			tx.Limit = amount.New(amount.USD, amount.MustParse("1000"))
		})
	}
	for i := 0; i < 10; i++ {
		a, b := users[r.Intn(len(users))], users[r.Intn(len(users))]
		if a == b {
			continue
		}
		apply(a, func(tx *ledger.Tx) {
			tx.Type = ledger.TxTrustSet
			tx.LimitPeer = b.AccountID()
			tx.Limit = amount.New(amount.USD, amount.MustParse("500"))
		})
	}
	// The gateway issues deposits; net issuance is what it owes.
	issued := amount.Zero
	for _, u := range users {
		v := amount.FromInt64(int64(100 + r.Intn(400)))
		m := apply(gw, func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = u.AccountID()
			tx.Amount = amount.New(amount.USD, v)
		})
		if m.Result.Succeeded() {
			var err error
			if issued, err = issued.Add(v); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The gateway's net debt must equal its issuance: rippled payments
	// move debt between creditors but never mint it.
	gwDebt := func() amount.Value {
		sum := amount.Zero
		for _, u := range users {
			owed := e.Graph().Owed(u.AccountID(), gw.AccountID(), amount.USD)
			var err error
			if sum, err = sum.Add(owed); err != nil {
				t.Fatal(err)
			}
		}
		return sum
	}
	if got := gwDebt(); got.Cmp(issued) != 0 {
		t.Fatalf("gateway debt %s != issuance %s", got, issued)
	}
	// Random user-to-user payments: the gateway's total debt must stay
	// exactly the issuance (debt moves, it is not created).
	for i := 0; i < 300; i++ {
		a, b := users[r.Intn(len(users))], users[r.Intn(len(users))]
		if a == b {
			continue
		}
		apply(a, func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = b.AccountID()
			tx.Amount = amount.New(amount.USD, amount.FromInt64(int64(1+r.Intn(120))))
		})
		if got := gwDebt(); got.Cmp(issued) != 0 {
			t.Fatalf("step %d: gateway debt %s != issuance %s (payments must move debt, not mint it)",
				i, got, issued)
		}
		if errs := e.Graph().CheckInvariants(); len(errs) != 0 {
			t.Fatalf("step %d: %v", i, errs[0])
		}
	}
}

// TestPropFailedPaymentsAreNoOps verifies atomicity: a failed payment
// leaves every balance untouched.
func TestPropFailedPaymentsAreNoOps(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	alice, bob := kp(1), kp(2)
	e := fundedEngine(t, alice, bob)
	submit(t, e, alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = bob.AccountID()
		tx.Limit = amount.New(amount.USD, val("10"))
	})
	for i := 0; i < 200; i++ {
		beforeXRPAlice := e.XRPBalance(alice.AccountID())
		beforeXRPBob := e.XRPBalance(bob.AccountID())
		beforeOwed := e.Graph().Owed(alice.AccountID(), bob.AccountID(), amount.USD)
		// An always-failing payment: far above the 10 USD limit.
		meta := submit(t, e, bob, func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = alice.AccountID()
			tx.Amount = amount.New(amount.USD, amount.FromInt64(int64(100+r.Intn(1000))))
		})
		if meta.Result.Succeeded() {
			t.Fatal("over-limit payment succeeded")
		}
		if e.Graph().Owed(alice.AccountID(), bob.AccountID(), amount.USD).Cmp(beforeOwed) != 0 {
			t.Fatal("failed payment moved IOU balance")
		}
		if e.XRPBalance(alice.AccountID()) != beforeXRPAlice {
			t.Fatal("failed payment touched the destination's XRP")
		}
		// Only the fee left the sender.
		if e.XRPBalance(bob.AccountID()) != beforeXRPBob-amount.Drops(BaseFee) {
			t.Fatal("failed payment moved more than the fee")
		}
	}
}
