package ledgerstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"ripplestudy/internal/ledger"
)

// Segment I/O. Reads used to go through a bufio frame reader that
// copied every payload into a grow-on-demand buffer; the scan path now
// maps the whole segment (mmap where the platform supports it, one
// ReadFile otherwise) and walks the framed records in place. Record
// payloads handed to the walkers alias the mapped region, which is why
// every consumer in this file either decodes onto the heap before
// returning (streamSegmentPages) or passes the explicit
// valid-only-inside-the-callback contract up to its caller
// (scanSegmentPayments, streamSegmentArena).

// errMmapUnavailable is returned by mapSegment when the platform (or
// the ledgerstore_nommap build tag) rules out memory mapping; callers
// fall back to ReadFile.
var errMmapUnavailable = fmt.Errorf("ledgerstore: mmap unavailable")

// forceFileRead disables the mmap path process-wide. Tests use it to
// run the same inputs through both readers in one process.
var forceFileRead = false

// segment is one segment file's contents, either memory-mapped or read
// into heap memory. Close releases the mapping (a no-op for heap data).
type segment struct {
	data  []byte
	unmap func() error
}

func (s *segment) Close() error {
	if s.unmap == nil {
		return nil
	}
	u := s.unmap
	s.unmap = nil
	s.data = nil
	return u()
}

// openSegment opens a segment read-only, preferring mmap. Any mapping
// failure (unsupported platform, empty file, exotic filesystem) falls
// back to reading the file into memory, so openSegment only fails when
// the file itself is unreadable.
func openSegment(path string) (segment, error) {
	if !forceFileRead {
		if data, unmap, err := mapSegment(path); err == nil {
			return segment{data: data, unmap: unmap}, nil
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return segment{}, fmt.Errorf("ledgerstore: opening %s: %w", path, err)
	}
	return segment{data: data}, nil
}

// forEachRecord walks a segment's framed records, calling fn with each
// CRC-verified payload. The payload aliases the segment's (possibly
// mapped) memory and is valid only inside fn. Semantics match the old
// incremental reader exactly: a truncated final record (length prefix,
// payload, or checksum cut short) ends the walk silently, an oversized
// length prefix or checksum mismatch returns ErrCorrupted, and fn's
// errors propagate as-is.
func forEachRecord(path string, fn func(payload []byte) error) error {
	seg, err := openSegment(path)
	if err != nil {
		return err
	}
	defer seg.Close()
	data := seg.data
	for off := 0; ; {
		if off+4 > len(data) {
			return nil // EOF, or a truncated length prefix: tolerate
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		if n > maxRecordBytes {
			return fmt.Errorf("%w: record claims %d bytes in %s", ErrCorrupted, n, path)
		}
		if off+4+n+4 > len(data) {
			return nil // truncated tail
		}
		payload := data[off+4 : off+4+n : off+4+n]
		sum := binary.BigEndian.Uint32(data[off+4+n:])
		if crc32.ChecksumIEEE(payload) != sum {
			return fmt.Errorf("%w in %s", ErrCorrupted, path)
		}
		if err := fn(payload); err != nil {
			return err
		}
		off += 8 + n
	}
}

// decodeRecordPage decodes a record payload as a full page, enforcing
// that the record contains exactly one page encoding.
func decodeRecordPage(path string, payload []byte) (*ledger.Page, error) {
	page, used, err := ledger.DecodePage(payload)
	if err != nil {
		return nil, fmt.Errorf("ledgerstore: decoding page in %s: %w", path, err)
	}
	if used != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes in record", ErrCorrupted, len(payload)-used)
	}
	return page, nil
}

// streamSegment streams a segment's pages, heap-decoded: pages are safe
// to retain.
func streamSegment(path string, fn func(*ledger.Page) error) error {
	return forEachRecord(path, func(payload []byte) error {
		page, err := decodeRecordPage(path, payload)
		if err != nil {
			return err
		}
		return fn(page)
	})
}

// streamSegmentArena streams a segment's pages decoded through the
// arena. Each page (and everything reachable from it) is valid only
// until fn returns — the next decode resets the arena.
func streamSegmentArena(path string, a *ledger.PageArena, fn func(*ledger.Page) error) error {
	return forEachRecord(path, func(payload []byte) error {
		page, used, err := ledger.DecodePageInto(payload, a)
		if err != nil {
			return fmt.Errorf("ledgerstore: decoding page in %s: %w", path, err)
		}
		if used != len(payload) {
			return fmt.Errorf("%w: %d trailing bytes in record", ErrCorrupted, len(payload)-used)
		}
		return fn(page)
	})
}

// scanSegmentPayments walks a segment's successful payments through the
// zero-copy projection, never materializing pages. The view is valid
// only inside fn. Structural framing is fully validated, so corruption
// detection matches the page path.
func scanSegmentPayments(path string, fn func(*ledger.PaymentView) error) error {
	return forEachRecord(path, func(payload []byte) error {
		var cbErr error
		used, err := ledger.ScanPayments(payload, func(pv *ledger.PaymentView) error {
			cbErr = fn(pv)
			return cbErr
		})
		if err != nil {
			if cbErr != nil && err == cbErr {
				return cbErr // the caller's own error, e.g. ErrStop
			}
			return fmt.Errorf("ledgerstore: scanning page in %s: %w", path, err)
		}
		if used != len(payload) {
			return fmt.Errorf("%w: %d trailing bytes in record", ErrCorrupted, len(payload)-used)
		}
		return nil
	})
}
