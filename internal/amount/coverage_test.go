package amount

import (
	"strings"
	"testing"
)

func TestValueMinMax(t *testing.T) {
	a, b := MustParse("3"), MustParse("7")
	if a.Min(b).Cmp(a) != 0 || b.Min(a).Cmp(a) != 0 {
		t.Error("Min wrong")
	}
	if a.Max(b).Cmp(b) != 0 || b.Max(a).Cmp(b) != 0 {
		t.Error("Max wrong")
	}
	if a.Min(a).Cmp(a) != 0 || a.Max(a).Cmp(a) != 0 {
		t.Error("Min/Max of equal values wrong")
	}
	neg := MustParse("-5")
	if neg.Min(a).Cmp(neg) != 0 {
		t.Error("Min with negative wrong")
	}
}

func TestValueComparisonHelpers(t *testing.T) {
	a, b := MustParse("2"), MustParse("3")
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Error("Less wrong")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("Equal wrong")
	}
	if a.Sign() != 1 || a.Neg().Sign() != -1 || Zero.Sign() != 0 {
		t.Error("Sign wrong")
	}
	if !Zero.Neg().IsZero() {
		t.Error("Neg of zero should stay zero")
	}
	if !a.IsPositive() || a.IsNegative() {
		t.Error("IsPositive/IsNegative wrong")
	}
	if a.Abs().Cmp(a) != 0 || a.Neg().Abs().Cmp(a) != 0 {
		t.Error("Abs wrong")
	}
}

func TestStrengthString(t *testing.T) {
	if StrengthPowerful.String() != "powerful" ||
		StrengthMedium.String() != "medium" ||
		StrengthWeak.String() != "weak" {
		t.Error("strength strings wrong")
	}
	if !strings.Contains(Strength(42).String(), "42") {
		t.Error("unknown strength should include the number")
	}
}

func TestParseCurrencyList(t *testing.T) {
	got, err := ParseCurrencyList("USD, EUR ,BTC")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != USD || got[1] != EUR || got[2] != BTC {
		t.Errorf("list = %v", got)
	}
	if got, err := ParseCurrencyList(""); err != nil || got != nil {
		t.Errorf("empty list = %v, %v", got, err)
	}
	if _, err := ParseCurrencyList("USD,BAD!X"); err == nil {
		t.Error("bad code accepted")
	}
}

func TestValueTextMarshalRoundTrip(t *testing.T) {
	v := MustParse("-123.456")
	text, err := v.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Value
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if back.Cmp(v) != 0 {
		t.Errorf("round trip %s -> %s", v, back)
	}
	if err := back.UnmarshalText([]byte("not-a-number")); err == nil {
		t.Error("bad text accepted")
	}
	var c Currency
	if err := c.UnmarshalText([]byte("TOOLONG")); err == nil {
		t.Error("bad currency text accepted")
	}
}

func TestXRPAmountHelper(t *testing.T) {
	a := XRPAmount(2_500_000)
	if a.Currency != XRP || a.Value.String() != "2.5" {
		t.Errorf("XRPAmount = %s", a)
	}
	if a.IsZero() || a.IsNegative() {
		t.Error("flags wrong")
	}
	if !XRPAmount(0).IsZero() {
		t.Error("zero drops should be zero amount")
	}
	if !a.SameCurrency(XRPAmount(1)) || a.SameCurrency(MustAmount("1/USD")) {
		t.Error("SameCurrency wrong")
	}
}
