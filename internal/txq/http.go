package txq

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
)

// HTTP surface for the front door. The serve layer mounts these under
// its admission limiter:
//
//	GET  /v1/path_find?src=r..&dst=r..&amount=5/USD[&source_currency=EUR]
//	POST /v1/submit        {"tx": {...}} or a bare transaction object
//	GET  /v1/tx_status?hash=...

// PathFindResponse is the JSON answer to /v1/path_find: the quote plus
// the summarized alternative (ripple_path_find returns alternatives;
// our planner already merges parallel paths into one best answer).
type PathFindResponse struct {
	Src string `json:"source_account"`
	Dst string `json:"destination_account"`
	Quote
}

// HandlePathFind is the GET /v1/path_find handler.
func (fd *FrontDoor) HandlePathFind(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	src, err := addr.ParseAccountID(q.Get("src"))
	if err != nil {
		httpError(w, fmt.Sprintf("src: %v", err), http.StatusBadRequest)
		return
	}
	dst, err := addr.ParseAccountID(q.Get("dst"))
	if err != nil {
		httpError(w, fmt.Sprintf("dst: %v", err), http.StatusBadRequest)
		return
	}
	deliver, err := amount.ParseAmount(q.Get("amount"))
	if err != nil {
		httpError(w, fmt.Sprintf("amount: value/CUR required: %v", err), http.StatusBadRequest)
		return
	}
	srcCur := deliver.Currency
	if v := q.Get("source_currency"); v != "" {
		srcCur, err = amount.NewCurrency(v)
		if err != nil {
			httpError(w, fmt.Sprintf("source_currency: %v", err), http.StatusBadRequest)
			return
		}
	}
	quote, err := fd.PathFind(src, dst, srcCur, deliver)
	if err != nil {
		if errors.Is(err, ErrClosed) {
			httpError(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		httpError(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, PathFindResponse{Src: q.Get("src"), Dst: q.Get("dst"), Quote: quote})
}

// SubmitRequest is the POST /v1/submit body: a transaction, optionally
// wrapped in {"tx": ...}, optionally asking to wait for the outcome.
type SubmitRequest struct {
	Tx *ledger.Tx `json:"tx"`
	// Wait blocks the response until the transaction is applied and
	// reports the final status inline.
	Wait bool `json:"wait"`
}

// SubmitResponse answers /v1/submit.
type SubmitResponse struct {
	// Accepted is true when the transaction was admitted to the queue.
	Accepted bool   `json:"accepted"`
	ID       uint64 `json:"id,omitempty"`
	// Hash is the as-submitted hash (auto-sequenced transactions hash
	// differently once applied; poll /v1/tx_status with either).
	Hash   string    `json:"hash,omitempty"`
	Error  string    `json:"error,omitempty"`
	Status *TxStatus `json:"status,omitempty"`
}

// HandleSubmit is the POST /v1/submit handler.
func (fd *FrontDoor) HandleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, fmt.Sprintf("body: %v", err), http.StatusBadRequest)
		return
	}
	if req.Tx == nil {
		httpError(w, "body: tx object required", http.StatusBadRequest)
		return
	}
	ticket, err := fd.Submit(req.Tx)
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrQueueFull):
			code = http.StatusServiceUnavailable
		case errors.Is(err, ErrClosed):
			code = http.StatusServiceUnavailable
		case errors.Is(err, ErrDuplicateSequence):
			code = http.StatusConflict
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		body, _ := json.Marshal(SubmitResponse{Accepted: false, Error: err.Error()})
		w.Write(body)
		w.Write([]byte("\n"))
		return
	}
	resp := SubmitResponse{Accepted: true, ID: ticket.ID, Hash: ticket.Hash.String()}
	if req.Wait {
		st, werr := ticket.Wait(r.Context())
		if werr == nil {
			resp.Status = &st
		}
	}
	writeJSON(w, resp)
}

// HandleTxStatus is the GET /v1/tx_status handler; hash may be the
// as-submitted or as-applied transaction hash.
func (fd *FrontDoor) HandleTxStatus(w http.ResponseWriter, r *http.Request) {
	h, err := ledger.ParseHash(r.URL.Query().Get("hash"))
	if err != nil {
		httpError(w, fmt.Sprintf("hash: %v", err), http.StatusBadRequest)
		return
	}
	st, ok := fd.Status(h)
	if !ok {
		httpError(w, "unknown transaction (never submitted, or status evicted)", http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	w.Write([]byte("\n"))
}

func httpError(w http.ResponseWriter, msg string, code int) {
	http.Error(w, msg, code)
}
