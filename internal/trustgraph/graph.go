// Package trustgraph implements Ripple's credit network: the backbone of
// trust-lines over which IOU payments "ripple". For each account pair and
// currency it tracks the two directional trust limits and the single net
// balance between the parties, exactly the three-field record (amount,
// currency, issuers) the paper describes.
//
// Payment capacity follows the paper's semantics: "if A trusts B for
// 10USD ... IOU transactions in the opposite direction (from B to A)
// [are limited] to 10USD". Value flowing B→A consumes A's trust in B;
// value flowing back A→B first pays down existing debt and then consumes
// B's trust in A.
//
// Accounts are interned to dense int32 indices on first contact, and the
// adjacency is slice-backed: the payment replay pipeline runs millions of
// breadth-first searches over this graph, and dense indices let the path
// finder keep visited/parent state in flat arrays instead of per-search
// maps. The dense index of an account is stable for the lifetime of the
// graph (removal tombstones the slot; it is never reused).
package trustgraph

import (
	"bytes"
	"fmt"
	"sort"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
)

// Pair is the credit state between two accounts in one currency. The two
// endpoints are stored in canonical order (Lo < Hi by account ID).
//
//   - LimitLoHi: Lo trusts Hi — the most Hi may owe Lo.
//   - LimitHiLo: Hi trusts Lo — the most Lo may owe Hi.
//   - Balance:   net debt, positive when Hi owes Lo, negative when Lo
//     owes Hi.
type Pair struct {
	Lo, Hi    addr.AccountID
	Currency  amount.Currency
	LimitLoHi amount.Value
	LimitHiLo amount.Value
	Balance   amount.Value
}

// edgeRec is one directed view of a trust pair in an account's adjacency
// list: the peer's dense index and the shared Pair record.
type edgeRec struct {
	cur  amount.Currency
	peer int32
	pair *Pair
}

// Graph is the in-memory credit network. It is not safe for concurrent
// mutation; analyses clone it before replaying. Concurrent readers are
// safe while no writer runs (all queries are pure).
type Graph struct {
	ids      map[addr.AccountID]int32
	accounts []addr.AccountID
	// adj[i] holds account i's edges sorted by (currency, peer account
	// ID), so iteration — and therefore path finding and everything
	// built on it — is deterministic and independent of interning order.
	adj [][]edgeRec
	// pairs counts distinct trust pairs for stats.
	pairs int
	// active counts accounts with at least one edge.
	active int
}

// New creates an empty credit network.
func New() *Graph {
	return &Graph{ids: make(map[addr.AccountID]int32)}
}

// NumInterned returns the size of the dense index space: every account
// ever seen by the graph, including removed ones. Path finders size their
// scratch arrays by it.
func (g *Graph) NumInterned() int { return len(g.accounts) }

// Index returns the dense index of an account, if it has ever been
// interned.
func (g *Graph) Index(a addr.AccountID) (int32, bool) {
	i, ok := g.ids[a]
	return i, ok
}

// AccountAt returns the account interned at dense index i.
func (g *Graph) AccountAt(i int32) addr.AccountID { return g.accounts[i] }

// intern returns the dense index for a, allocating one on first contact.
func (g *Graph) intern(a addr.AccountID) int32 {
	if i, ok := g.ids[a]; ok {
		return i
	}
	i := int32(len(g.accounts))
	g.ids[a] = i
	g.accounts = append(g.accounts, a)
	g.adj = append(g.adj, nil)
	return i
}

// edgeLess orders (cur, peer-account) probes against edge records:
// by currency bytes, then peer account ID bytes.
func (g *Graph) edgeLess(e edgeRec, cur amount.Currency, peer addr.AccountID) bool {
	if c := bytes.Compare(e.cur[:], cur[:]); c != 0 {
		return c < 0
	}
	return bytes.Compare(g.accounts[e.peer][:], peer[:]) < 0
}

// findEdge binary-searches account ai's adjacency for (peer, cur),
// returning the slot and whether it holds that exact edge.
func (g *Graph) findEdge(ai int32, cur amount.Currency, peer addr.AccountID) (int, bool) {
	edges := g.adj[ai]
	i := sort.Search(len(edges), func(i int) bool {
		return !g.edgeLess(edges[i], cur, peer)
	})
	if i < len(edges) && edges[i].cur == cur && g.accounts[edges[i].peer] == peer {
		return i, true
	}
	return i, false
}

// link inserts the edge (ai → pi, cur) → p into ai's adjacency.
func (g *Graph) link(ai, pi int32, cur amount.Currency, p *Pair) {
	i, ok := g.findEdge(ai, cur, g.accounts[pi])
	if ok {
		g.adj[ai][i].pair = p
		return
	}
	if len(g.adj[ai]) == 0 {
		g.active++
	}
	g.adj[ai] = append(g.adj[ai], edgeRec{})
	copy(g.adj[ai][i+1:], g.adj[ai][i:])
	g.adj[ai][i] = edgeRec{cur: cur, peer: pi, pair: p}
}

// unlink removes the edge (ai, cur, peer) from ai's adjacency.
func (g *Graph) unlink(ai int32, cur amount.Currency, peer addr.AccountID) {
	i, ok := g.findEdge(ai, cur, peer)
	if !ok {
		return
	}
	g.adj[ai] = append(g.adj[ai][:i], g.adj[ai][i+1:]...)
	if len(g.adj[ai]) == 0 {
		g.active--
	}
}

// canonical orders two accounts.
func canonical(a, b addr.AccountID) (lo, hi addr.AccountID, swapped bool) {
	if b.Less(a) {
		return b, a, true
	}
	return a, b, false
}

// pair returns the Pair for (a, b, cur), creating it when create is set.
func (g *Graph) pair(a, b addr.AccountID, cur amount.Currency, create bool) *Pair {
	if ai, ok := g.ids[a]; ok {
		if i, ok := g.findEdge(ai, cur, b); ok {
			return g.adj[ai][i].pair
		}
	}
	if !create {
		return nil
	}
	lo, hi, _ := canonical(a, b)
	p := &Pair{Lo: lo, Hi: hi, Currency: cur}
	ai, bi := g.intern(a), g.intern(b)
	g.link(ai, bi, cur, p)
	g.link(bi, ai, cur, p)
	g.pairs++
	return p
}

// SetTrust declares that truster extends credit of up to limit to trustee
// in the given currency — the effect of a TrustSet transaction. A zero
// limit removes the trust in that direction (the pair survives while the
// other direction or a balance remains).
func (g *Graph) SetTrust(truster, trustee addr.AccountID, cur amount.Currency, limit amount.Value) error {
	if cur.IsXRP() {
		return fmt.Errorf("trustgraph: XRP needs no trust-lines")
	}
	if truster == trustee {
		return fmt.Errorf("trustgraph: account cannot trust itself")
	}
	if limit.IsNegative() {
		return fmt.Errorf("trustgraph: negative trust limit %s", limit)
	}
	p := g.pair(truster, trustee, cur, true)
	if p.Lo == truster {
		p.LimitLoHi = limit
	} else {
		p.LimitHiLo = limit
	}
	return nil
}

// Trust returns the limit truster currently extends to trustee.
func (g *Graph) Trust(truster, trustee addr.AccountID, cur amount.Currency) amount.Value {
	p := g.pair(truster, trustee, cur, false)
	if p == nil {
		return amount.Zero
	}
	if p.Lo == truster {
		return p.LimitLoHi
	}
	return p.LimitHiLo
}

// Owed returns how much debtor currently owes creditor (zero or positive;
// debt in the other direction reports zero).
func (g *Graph) Owed(creditor, debtor addr.AccountID, cur amount.Currency) amount.Value {
	p := g.pair(creditor, debtor, cur, false)
	if p == nil {
		return amount.Zero
	}
	bal := p.Balance // positive: Hi owes Lo
	if p.Lo != creditor {
		bal = bal.Neg()
	}
	if bal.IsNegative() {
		return amount.Zero
	}
	return bal
}

// Capacity returns the maximum value that can flow from → to across the
// direct edge in the given currency: existing debt owed to `from` by `to`
// being paid down, plus fresh credit `to` extends to `from`.
func (g *Graph) Capacity(from, to addr.AccountID, cur amount.Currency) amount.Value {
	p := g.pair(from, to, cur, false)
	if p == nil {
		return amount.Zero
	}
	return pairCapacity(p, from)
}

// CapacityIdx is Capacity over dense indices, for path-finder hot loops.
func (g *Graph) CapacityIdx(from, to int32, cur amount.Currency) amount.Value {
	i, ok := g.findEdge(from, cur, g.accounts[to])
	if !ok {
		return amount.Zero
	}
	return pairCapacity(g.adj[from][i].pair, g.accounts[from])
}

// pairCapacity computes capacity for value flowing out of `from` across p.
func pairCapacity(p *Pair, from addr.AccountID) amount.Value {
	// Value flowing Lo→Hi decreases Balance; floor is -LimitHiLo.
	// capacity(Lo→Hi) = Balance + LimitHiLo
	// capacity(Hi→Lo) = LimitLoHi - Balance
	var c amount.Value
	var err error
	if p.Lo == from {
		c, err = p.Balance.Add(p.LimitHiLo)
	} else {
		c, err = p.LimitLoHi.Sub(p.Balance)
	}
	if err != nil || c.IsNegative() {
		return amount.Zero
	}
	return c
}

// ApplyFlow moves v of value from → to across the direct edge, consuming
// capacity. It fails, leaving the graph unchanged, if v exceeds the
// available capacity or the edge does not exist.
func (g *Graph) ApplyFlow(from, to addr.AccountID, cur amount.Currency, v amount.Value) error {
	if v.IsNegative() || v.IsZero() {
		return fmt.Errorf("trustgraph: flow must be positive, got %s", v)
	}
	p := g.pair(from, to, cur, false)
	if p == nil {
		return fmt.Errorf("trustgraph: no trust between %s and %s in %s", from.Short(), to.Short(), cur)
	}
	if pairCapacity(p, from).Cmp(v) < 0 {
		return fmt.Errorf("trustgraph: flow %s exceeds capacity %s on %s→%s/%s",
			v, pairCapacity(p, from), from.Short(), to.Short(), cur)
	}
	var nb amount.Value
	var err error
	if p.Lo == from {
		nb, err = p.Balance.Sub(v)
	} else {
		nb, err = p.Balance.Add(v)
	}
	if err != nil {
		return fmt.Errorf("trustgraph: applying flow: %w", err)
	}
	p.Balance = nb
	return nil
}

// curBlock returns the half-open range of account ai's edges in cur.
// Edges are sorted by (currency, peer), so the block is contiguous.
func (g *Graph) curBlock(ai int32, cur amount.Currency) (int, int) {
	edges := g.adj[ai]
	start := sort.Search(len(edges), func(i int) bool {
		return bytes.Compare(edges[i].cur[:], cur[:]) >= 0
	})
	end := start
	for end < len(edges) && edges[end].cur == cur {
		end++
	}
	return start, end
}

// Neighbors calls fn for every peer that shares a trust pair with account
// in the given currency, together with the current capacity for value
// flowing account→peer. Iteration order is deterministic (sorted by
// peer): payment routing must not depend on map iteration order.
func (g *Graph) Neighbors(account addr.AccountID, cur amount.Currency, fn func(peer addr.AccountID, capacity amount.Value)) {
	ai, ok := g.ids[account]
	if !ok {
		return
	}
	start, end := g.curBlock(ai, cur)
	for _, e := range g.adj[ai][start:end] {
		fn(g.accounts[e.peer], pairCapacity(e.pair, account))
	}
}

// NeighborsIdx is Neighbors over dense indices: fn receives the peer's
// dense index and the account→peer capacity. It is the path finder's hot
// loop; iteration order matches Neighbors exactly.
func (g *Graph) NeighborsIdx(account int32, cur amount.Currency, fn func(peer int32, capacity amount.Value)) {
	start, end := g.curBlock(account, cur)
	from := g.accounts[account]
	for _, e := range g.adj[account][start:end] {
		fn(e.peer, pairCapacity(e.pair, from))
	}
}

// Currencies calls fn for each currency in which account has any pair,
// in sorted order.
func (g *Graph) Currencies(account addr.AccountID, fn func(cur amount.Currency)) {
	ai, ok := g.ids[account]
	if !ok {
		return
	}
	var last amount.Currency
	first := true
	for _, e := range g.adj[ai] {
		if first || e.cur != last {
			fn(e.cur)
			last = e.cur
			first = false
		}
	}
}

// Pairs calls fn once per distinct trust pair in the graph, in a
// deterministic (dense-index) order.
func (g *Graph) Pairs(fn func(*Pair)) {
	for i := range g.adj {
		for _, e := range g.adj[i] {
			// Each pair is linked from both endpoints; visit it from the
			// lower dense index only.
			if e.peer > int32(i) {
				fn(e.pair)
			}
		}
	}
}

// PairOf returns the trust pair between a and b in the given currency,
// or nil when none exists. The returned Pair is live graph state —
// callers must treat it as read-only.
func (g *Graph) PairOf(a, b addr.AccountID, cur amount.Currency) *Pair {
	return g.pair(a, b, cur, false)
}

// PairsOf calls fn once per trust pair the account participates in, in
// the adjacency's canonical (currency, peer account) order — stable
// regardless of the order the pairs were created.
func (g *Graph) PairsOf(a addr.AccountID, fn func(*Pair)) {
	ai, ok := g.ids[a]
	if !ok {
		return
	}
	for _, e := range g.adj[ai] {
		fn(e.pair)
	}
}

// RestorePair reinstates a trust pair with explicit limits and balance —
// the restore path from a persisted state tree. lo and hi must already
// be in canonical order and the pair must not exist yet.
func (g *Graph) RestorePair(lo, hi addr.AccountID, cur amount.Currency, limLoHi, limHiLo, balance amount.Value) error {
	if cur.IsXRP() {
		return fmt.Errorf("trustgraph: XRP needs no trust-lines")
	}
	if lo == hi {
		return fmt.Errorf("trustgraph: account cannot trust itself")
	}
	if hi.Less(lo) {
		return fmt.Errorf("trustgraph: restored pair %s/%s not in canonical order", lo.Short(), hi.Short())
	}
	if g.pair(lo, hi, cur, false) != nil {
		return fmt.Errorf("trustgraph: restored pair %s/%s/%s already present", lo.Short(), hi.Short(), cur)
	}
	p := g.pair(lo, hi, cur, true)
	p.LimitLoHi = limLoHi
	p.LimitHiLo = limHiLo
	p.Balance = balance
	return nil
}

// NumPairs returns the number of distinct (pair, currency) trust records.
func (g *Graph) NumPairs() int { return g.pairs }

// NumAccounts returns the number of accounts with at least one pair.
func (g *Graph) NumAccounts() int { return g.active }

// HasAccount reports whether the account participates in any trust pair.
func (g *Graph) HasAccount(a addr.AccountID) bool {
	ai, ok := g.ids[a]
	return ok && len(g.adj[ai]) > 0
}

// RemoveAccount deletes an account and every trust pair it participates
// in — the mutation behind the paper's market-maker ablation (Table II).
// The dense index remains interned (a tombstone with no edges).
func (g *Graph) RemoveAccount(a addr.AccountID) {
	ai, ok := g.ids[a]
	if !ok || len(g.adj[ai]) == 0 {
		return
	}
	for _, e := range g.adj[ai] {
		g.unlink(e.peer, e.cur, a)
		g.pairs--
	}
	g.adj[ai] = nil
	g.active--
}

// Clone returns a deep copy of the graph, for replay experiments. The
// clone preserves dense indices, so iteration order — and therefore
// every analysis built on it — matches the original exactly.
func (g *Graph) Clone() *Graph {
	out := &Graph{
		ids:      make(map[addr.AccountID]int32, len(g.ids)),
		accounts: append([]addr.AccountID(nil), g.accounts...),
		adj:      make([][]edgeRec, len(g.adj)),
		pairs:    g.pairs,
		active:   g.active,
	}
	for a, i := range g.ids {
		out.ids[a] = i
	}
	copies := make(map[*Pair]*Pair, g.pairs)
	for i, edges := range g.adj {
		if len(edges) == 0 {
			continue
		}
		ne := make([]edgeRec, len(edges))
		copy(ne, edges)
		for j := range ne {
			cp, ok := copies[ne[j].pair]
			if !ok {
				dup := *ne[j].pair
				cp = &dup
				copies[ne[j].pair] = cp
			}
			ne[j].pair = cp
		}
		out.adj[i] = ne
	}
	return out
}

// CheckInvariants verifies every pair's balance lies within its limits,
// returning the list of violations (empty when healthy). Limit
// *reductions* below an existing balance are legal in Ripple, so callers
// decide whether violations are fatal.
func (g *Graph) CheckInvariants() []error {
	var errs []error
	g.Pairs(func(p *Pair) {
		if p.Balance.Cmp(p.LimitLoHi) > 0 {
			errs = append(errs, fmt.Errorf("trustgraph: %s owes %s %s/%s above limit %s",
				p.Hi.Short(), p.Lo.Short(), p.Balance, p.Currency, p.LimitLoHi))
		}
		if p.Balance.Neg().Cmp(p.LimitHiLo) > 0 {
			errs = append(errs, fmt.Errorf("trustgraph: %s owes %s %s/%s above limit %s",
				p.Lo.Short(), p.Hi.Short(), p.Balance.Neg(), p.Currency, p.LimitHiLo))
		}
	})
	return errs
}

// Profile aggregates one account's standing in the network, the data
// behind Figure 7(b) and 7(c). Sums are computed in a reference currency
// using the supplied conversion rate function (units of reference
// currency per one unit of cur); rate may return 0 to skip a currency.
type Profile struct {
	// TrustReceived is the total credit other accounts extend to this
	// account (positive trust in Fig. 7(b)).
	TrustReceived float64
	// TrustGiven is the total credit this account extends to others
	// (negative trust in Fig. 7(b)).
	TrustGiven float64
	// NetBalance is credit minus debt: positive for accounts owed value
	// (common users), negative for debtors (gateways) — Fig. 7(c).
	NetBalance float64
	// Lines counts the account's trust pairs.
	Lines int
}

// ProfileOf computes the aggregate standing of account under rates.
func (g *Graph) ProfileOf(account addr.AccountID, rate func(amount.Currency) float64) Profile {
	var pr Profile
	ai, ok := g.ids[account]
	if !ok {
		return pr
	}
	// Iterate in sorted edge order: float accumulation must be
	// deterministic so profiles compare equal across replays.
	for _, e := range g.adj[ai] {
		p := e.pair
		r := rate(e.cur)
		if r == 0 {
			continue
		}
		pr.Lines++
		var limitIn, limitOut, bal amount.Value
		if p.Lo == account {
			limitOut = p.LimitLoHi // account trusts peer
			limitIn = p.LimitHiLo  // peer trusts account
			bal = p.Balance        // positive: peer owes account
		} else {
			limitOut = p.LimitHiLo
			limitIn = p.LimitLoHi
			bal = p.Balance.Neg()
		}
		pr.TrustGiven += limitOut.Float64() * r
		pr.TrustReceived += limitIn.Float64() * r
		pr.NetBalance += bal.Float64() * r
	}
	return pr
}
