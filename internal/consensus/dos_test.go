package consensus

import (
	"testing"
)

// validatedFraction runs `rounds` rounds and returns the fraction that
// reached the validation quorum.
func validatedFraction(t *testing.T, n *Network, rounds int) float64 {
	t.Helper()
	validated := 0
	for i := 0; i < rounds; i++ {
		res, err := n.RunRound(nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Validated {
			validated++
		}
	}
	return float64(validated) / float64(rounds)
}

// TestDoSTakedownCollapsesValidation reproduces the paper's §IV threat:
// "a malicious party hijacking or compromising the majority of these
// validators could endanger the whole Ripple system." With 8 trusted
// actives and an 80% quorum, taking down 2 of them halts validation
// entirely — the downed machines still count against the quorum.
func TestDoSTakedownCollapsesValidation(t *testing.T) {
	n := NewNetwork(Config{Seed: 41}, December2015(0).Specs)
	before := validatedFraction(t, n, 150)
	if before < 0.9 {
		t.Fatalf("healthy validation fraction = %.2f, want ≈1", before)
	}
	if got := n.DisableTopActives(2); got != 2 {
		t.Fatalf("disabled %d validators, want 2", got)
	}
	after := validatedFraction(t, n, 150)
	if after != 0 {
		t.Errorf("validation fraction after losing 2/8 trusted = %.2f, want 0 (quorum unreachable)", after)
	}
}

func TestDoSSingleTakedownDegrades(t *testing.T) {
	n := NewNetwork(Config{Seed: 42}, December2015(0).Specs)
	before := validatedFraction(t, n, 200)
	if got := n.DisableTopActives(1); got != 1 {
		t.Fatalf("disabled %d, want 1", got)
	}
	after := validatedFraction(t, n, 200)
	if after >= before {
		t.Errorf("validation did not degrade: %.3f -> %.3f", before, after)
	}
	if after == 0 {
		t.Errorf("one loss of 8 should degrade, not halt (quorum 7 still reachable)")
	}
	t.Logf("validated fraction: %.3f healthy, %.3f with one trusted validator down", before, after)
}

func TestDisableByLabel(t *testing.T) {
	n := NewNetwork(Config{Seed: 43}, December2015(0).Specs)
	if got := n.Disable("R1", "R2"); got != 2 {
		t.Fatalf("Disable matched %d, want 2", got)
	}
	if got := n.Disable("no-such-validator"); got != 0 {
		t.Errorf("Disable matched %d for unknown label", got)
	}
	// Disabled validators stop signing entirely.
	r1, _ := n.NodeIDOf("R1")
	signed := false
	n.Subscribe(func(ev Event) {
		if ev.Kind == EventValidation && ev.Node == r1 {
			signed = true
		}
	})
	if _, err := n.Run(20, nil); err != nil {
		t.Fatal(err)
	}
	if signed {
		t.Error("disabled validator kept signing")
	}
}
