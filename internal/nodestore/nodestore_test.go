package nodestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ripplestudy/internal/ledger"
)

func rec(i int) (ledger.Hash, []byte) {
	payload := binary.BigEndian.AppendUint64(nil, uint64(i))
	payload = append(payload, bytes.Repeat([]byte{byte(i)}, i%13)...)
	return ledger.SHA512Half(payload), payload
}

func TestMemStoreIdempotentPut(t *testing.T) {
	s := NewMem()
	h, payload := rec(7)
	if err := s.Put(h, payload); err != nil {
		t.Fatal(err)
	}
	// Second put of the same hash must be a no-op, and the store must not
	// alias the caller's buffer.
	scratch := append([]byte(nil), payload...)
	if err := s.Put(h, scratch); err != nil {
		t.Fatal(err)
	}
	scratch[0] ^= 0xff
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	got, err := s.Get(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %x, want %x", got, payload)
	}
	if _, err := s.Get(ledger.Hash{1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing hash: err = %v, want ErrNotFound", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf []byte
	const n = 20
	for i := 0; i < n; i++ {
		h, payload := rec(i)
		buf = AppendRecord(buf, h, payload)
	}
	rest := buf
	for i := 0; i < n; i++ {
		wantH, wantPayload := rec(i)
		h, payload, next, err := DecodeRecord(rest)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if h != wantH || !bytes.Equal(payload, wantPayload) {
			t.Fatalf("record %d: decoded (%s, %x)", i, h.Short(), payload)
		}
		if err := VerifyRecord(h, payload); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		rest = next
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestDecodeRecordRejectsDamage(t *testing.T) {
	h, payload := rec(3)
	good := AppendRecord(nil, h, payload)

	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x01
		if _, _, _, err := DecodeRecord(bad); err == nil {
			// Flipping a length byte can still frame a valid-looking record
			// only if the CRC happens to match — it never does for a single
			// bit flip over this frame.
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	if _, _, _, err := DecodeRecord(good[:len(good)-1]); err == nil {
		t.Fatal("truncated record accepted")
	}
	huge := binary.BigEndian.AppendUint32(nil, MaxPayload+1)
	huge = append(huge, make([]byte, 64)...)
	if _, _, _, err := DecodeRecord(huge); err == nil {
		t.Fatal("oversized length accepted")
	}
	if err := VerifyRecord(ledger.Hash{1}, payload); err == nil {
		t.Fatal("wrong hash passed VerifyRecord")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.nodes")
	fw, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		h, payload := rec(i)
		if err := fw.Put(h, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate puts are skipped.
	h0, p0 := rec(0)
	if err := fw.Put(h0, p0); err != nil {
		t.Fatal(err)
	}
	if fw.Len() != n {
		t.Fatalf("writer Len = %d, want %d", fw.Len(), n)
	}
	wantBytes := fw.Bytes()
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != wantBytes {
		t.Fatalf("file size %v (err %v), writer reported %d", fi.Size(), err, wantBytes)
	}

	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != n {
		t.Fatalf("store Len = %d, want %d", fs.Len(), n)
	}
	for i := 0; i < n; i++ {
		h, payload := rec(i)
		got, err := fs.Get(h)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("record %d: got %x", i, got)
		}
	}
	if _, err := fs.Get(ledger.Hash{0xAA}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing hash: err = %v, want ErrNotFound", err)
	}

	// CreateFile refuses to overwrite an existing batch.
	if _, err := CreateFile(path); err == nil {
		t.Fatal("CreateFile overwrote an existing file")
	}
}

func TestOpenFileRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.nodes")
	fw, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h, payload := rec(i)
		if err := fw.Put(h, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0x10
	bad := filepath.Join(t.TempDir(), "flip.nodes")
	if err := os.WriteFile(bad, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(bad); err == nil {
		t.Fatal("OpenFile accepted a corrupt record")
	}

	torn := filepath.Join(t.TempDir(), "torn.nodes")
	if err := os.WriteFile(torn, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(torn); err == nil {
		t.Fatal("OpenFile accepted a torn file")
	}
}

func TestLayeredUnion(t *testing.T) {
	a, b := NewMem(), NewMem()
	ha, pa := rec(1)
	hb, pb := rec(2)
	hBoth, pBoth := rec(3)
	for _, put := range []struct {
		s *MemStore
		h ledger.Hash
		p []byte
	}{{a, ha, pa}, {b, hb, pb}, {a, hBoth, pBoth}, {b, hBoth, pBoth}} {
		if err := put.s.Put(put.h, put.p); err != nil {
			t.Fatal(err)
		}
	}
	l := Layered{a, b}
	for _, want := range []struct {
		h ledger.Hash
		p []byte
	}{{ha, pa}, {hb, pb}, {hBoth, pBoth}} {
		got, err := l.Get(want.h)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.p) {
			t.Fatalf("Get(%s) = %x", want.h.Short(), got)
		}
	}
	if _, err := l.Get(ledger.Hash{9}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing hash: err = %v, want ErrNotFound", err)
	}
}

type errGetter struct{ err error }

func (g errGetter) Get(ledger.Hash) ([]byte, error) { return nil, g.err }

func TestLayeredAbortsOnRealError(t *testing.T) {
	boom := fmt.Errorf("disk on fire")
	tail := NewMem()
	h, p := rec(4)
	if err := tail.Put(h, p); err != nil {
		t.Fatal(err)
	}
	l := Layered{errGetter{boom}, tail}
	if _, err := l.Get(h); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the layer's error", err)
	}
}

type countingGetter struct {
	inner Getter
	gets  int
}

func (g *countingGetter) Get(h ledger.Hash) ([]byte, error) {
	g.gets++
	return g.inner.Get(h)
}

func TestCacheLRU(t *testing.T) {
	mem := NewMem()
	const n = 6
	var hashes []ledger.Hash
	for i := 0; i < n; i++ {
		h, p := rec(i)
		if err := mem.Put(h, p); err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
	}
	counted := &countingGetter{inner: mem}
	c := NewCache(counted, 3)

	// Fill: 0,1,2 cached.
	for i := 0; i < 3; i++ {
		if _, err := c.Get(hashes[i]); err != nil {
			t.Fatal(err)
		}
	}
	if counted.gets != 3 || c.Len() != 3 {
		t.Fatalf("after fill: %d inner gets, cache Len %d", counted.gets, c.Len())
	}
	// Hits don't touch the inner store.
	for i := 0; i < 3; i++ {
		if _, err := c.Get(hashes[i]); err != nil {
			t.Fatal(err)
		}
	}
	if counted.gets != 3 {
		t.Fatalf("cache hit reached inner store (%d gets)", counted.gets)
	}
	// Touch 0 (making 1 the LRU), then insert 3 — evicting 1.
	if _, err := c.Get(hashes[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(hashes[3]); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("cache Len = %d, want 3", c.Len())
	}
	before := counted.gets
	if _, err := c.Get(hashes[0]); err != nil { // still cached
		t.Fatal(err)
	}
	if counted.gets != before {
		t.Fatal("recently used entry was evicted")
	}
	if _, err := c.Get(hashes[1]); err != nil { // evicted, refetched
		t.Fatal(err)
	}
	if counted.gets != before+1 {
		t.Fatalf("LRU entry not evicted (%d gets, want %d)", counted.gets, before+1)
	}
	hits, misses := c.Stats()
	if hits < 4 || misses != int64(counted.gets) {
		t.Fatalf("Stats = (%d, %d), inner gets %d", hits, misses, counted.gets)
	}

	// Misses are not negative-cached.
	missing := ledger.Hash{0xEE}
	for i := 0; i < 2; i++ {
		if _, err := c.Get(missing); !errors.Is(err, ErrNotFound) {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
	}
	if counted.gets != before+3 {
		t.Fatalf("miss was cached (%d gets, want %d)", counted.gets, before+3)
	}
}

// FuzzNodeDecode feeds arbitrary bytes through the record decoder: it
// must never panic or over-allocate, and anything it accepts must
// re-encode to the identical frame.
func FuzzNodeDecode(f *testing.F) {
	h, payload := rec(5)
	f.Add(AppendRecord(nil, h, payload))
	f.Add([]byte{})
	f.Add(make([]byte, recordHeader+recordTrailer))
	f.Add(binary.BigEndian.AppendUint32(nil, MaxPayload+1))

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for {
			h, payload, next, err := DecodeRecord(rest)
			if err != nil {
				break
			}
			consumed := rest[:len(rest)-len(next)]
			if got := AppendRecord(nil, h, payload); !bytes.Equal(got, consumed) {
				t.Fatalf("re-encode mismatch: %x vs %x", got, consumed)
			}
			if len(next) >= len(rest) {
				t.Fatal("decoder did not consume input")
			}
			rest = next
		}
	})
}
