// Latte: the paper's running example, end to end. Bob buys a 4.5 USD
// latte at a bar that accepts Ripple. Alice, a stranger in the queue,
// observes only the public side of the purchase — the bar's address, the
// amount, the currency, and (roughly) the time. From the public ledger
// alone she recovers Bob's account and, with it, his entire financial
// history.
//
//	go run ./examples/latte
package main

import (
	"fmt"
	"log"

	"ripplestudy/internal/amount"
	"ripplestudy/internal/deanon"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Generating a public ledger history (Bob's world)...")

	// The attacker's index at the resolution of Alice's observation:
	// she knows the amount to the cent, the bar, the currency, and the
	// moment of the purchase.
	res := deanon.Resolution{
		Amount:      deanon.AmountMax,
		Time:        deanon.TimeSeconds,
		Currency:    true,
		Destination: true,
	}
	idx := deanon.NewIndex(res)

	var all []deanon.Features
	var bobsLatte *deanon.Features
	genRes, err := synth.Generate(synth.Config{
		Payments:       12_000,
		Seed:           7,
		SkipSignatures: true,
	}, func(p *ledger.Page) error {
		for i := range p.Txs {
			f, ok := deanon.FromTransaction(p, p.Txs[i], p.Metas[i])
			if !ok {
				continue
			}
			idx.Add(f)
			all = append(all, f)
			// Pick one organic USD consumer payment as "Bob's latte".
			if bobsLatte == nil && f.Currency == amount.USD && p.Metas[i].MaxHops() >= 1 {
				lf := f
				bobsLatte = &lf
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if bobsLatte == nil {
		return fmt.Errorf("no USD payment found in the history")
	}
	fmt.Printf("ledger: %d payments from %d accounts\n\n",
		len(all), genRes.Stats.PaymentsOK)

	bob := bobsLatte.Sender
	fmt.Println("Bob pays the bar. Alice, behind him in line, notes down:")
	fmt.Printf("  destination (the bar): %s\n", bobsLatte.Destination)
	fmt.Printf("  amount:                %s %s\n", bobsLatte.Amount, bobsLatte.Currency)
	fmt.Printf("  time:                  %s\n", bobsLatte.Time)
	fmt.Println("  sender:                ??? (that is the point)")

	// Alice queries her index with the sender blinded.
	observation := *bobsLatte
	observation.Sender = [20]byte{}
	candidates := idx.Candidates(observation)
	fmt.Printf("\nAlice's query returns %d candidate sender(s):\n", len(candidates))
	for _, c := range candidates {
		marker := ""
		if c == bob {
			marker = "  <-- Bob"
		}
		fmt.Printf("  %s%s\n", c, marker)
	}
	if len(candidates) != 1 || candidates[0] != bob {
		fmt.Println("\n(this particular purchase was not unique; most are — see Figure 3)")
	}

	// With the account recovered, the entire history is an index scan.
	fmt.Println("\nEverything else Bob ever did is now public to Alice:")
	count := 0
	var total float64
	for _, f := range all {
		if f.Sender != bob {
			continue
		}
		count++
		if count <= 8 {
			fmt.Printf("  %s  %10s %-3s -> %s\n", f.Time, f.Amount, f.Currency, f.Destination.Short())
		}
		if f.Currency == amount.USD {
			total += f.Amount.Float64()
		}
	}
	if count > 8 {
		fmt.Printf("  ... and %d more payments\n", count-8)
	}
	fmt.Printf("\nBob's lifetime USD spending, reconstructed: %.2f USD over %d payments\n", total, count)
	fmt.Println("Future payments are trivially trackable from here on.")
	return nil
}
