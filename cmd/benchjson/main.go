// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON benchmark record, so CI can archive a perf
// trajectory across PRs:
//
//	go test -run '^$' -bench Figure3 -benchmem . | benchjson > BENCH_deanon.json
//
// Each benchmark line becomes an entry keyed by benchmark name with its
// iteration count and every reported metric (ns/op, B/op, allocs/op,
// and custom metrics like payments/s) as a unit→value map.
//
// With -out, the document is written to a file instead of stdout, and
// an existing file is merged rather than clobbered: entries for
// re-measured benchmark names are replaced in place, entries for
// benchmarks not in this run are kept, and new names append — so one
// archive can accumulate results from several `go test -bench` passes.
// Merging keys on the name with the trailing -GOMAXPROCS suffix
// stripped (a re-measure on a different core count replaces, not
// duplicates) while go test's #NN same-name dedup suffix is preserved;
// a stale #NN duplicate whose base name was re-measured without it is
// dropped, so a collision from an earlier duplicated sweep entry cannot
// outlive the run that fixed it.
//
// With -check, the run is instead compared against an archived baseline
// and the command fails when any benchmark's ns/op regressed by more
// than -tolerance percent:
//
//	go test -run '^$' -bench Serve -benchmem ./internal/serve | benchjson -check BENCH_serve.json -tolerance 20
//
// Names are matched with the trailing -GOMAXPROCS suffix stripped, so a
// baseline archived on an 8-core runner still gates a 4-core laptop.
// Benchmarks absent from the baseline are reported but never fail the
// check (they gate once archived), and improvements are never failures.
// Sub-benchmarks that sweep pipeline fan-out (".../workers=N") are
// skipped when N exceeds the fresh run's GOMAXPROCS: an oversubscribed
// configuration measures scheduler churn, not a regression. The run's
// GOMAXPROCS is derived from the -N name suffix and archived in the
// context as "gomaxprocs".
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the archived document.
type Output struct {
	// Context lines: the goos/goarch/pkg/cpu header go test prints.
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Entry           `json:"benchmarks"`
}

func main() {
	outPath := flag.String("out", "", "write (and merge into) this file instead of stdout")
	checkPath := flag.String("check", "", "compare against this baseline archive and fail on regression")
	tolerance := flag.Float64("tolerance", 20, "max allowed ns/op regression in percent for -check")
	flag.Parse()
	var err error
	if *checkPath != "" {
		err = runCheck(os.Stdin, os.Stdout, *checkPath, *tolerance)
	} else {
		err = run(os.Stdin, os.Stdout, *outPath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runCheck compares a fresh `go test -bench` run (stdin) against an
// archived baseline and errors if any shared benchmark's ns/op
// regressed by more than tolerance percent.
func runCheck(in io.Reader, out io.Writer, baselinePath string, tolerance float64) error {
	fresh, err := parse(bufio.NewScanner(in))
	if err != nil {
		return err
	}
	base, err := readExisting(baselinePath)
	if err != nil {
		return err
	}
	if base == nil {
		return fmt.Errorf("baseline %s does not exist", baselinePath)
	}
	compared, regressed := compare(base, fresh, tolerance, out)
	if compared == 0 {
		return fmt.Errorf("no benchmark in this run matches a baseline entry in %s", baselinePath)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed more than %g%% vs %s: %s",
			len(regressed), compared, tolerance, baselinePath, strings.Join(regressed, ", "))
	}
	fmt.Fprintf(out, "ok: %d benchmarks within %g%% of %s\n", compared, tolerance, baselinePath)
	return nil
}

// baseName strips the trailing -GOMAXPROCS suffix go test appends to
// benchmark names, so archives compare across machines with different
// core counts. go test's #NN same-name dedup suffix is kept: two
// entries that collided in one run are genuinely distinct measurements.
func baseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// dedupRoot strips go test's trailing #NN duplicate-name suffix from an
// already baseName'd benchmark name.
func dedupRoot(name string) string {
	i := strings.LastIndexByte(name, '#')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// nameGomaxprocs reads the -GOMAXPROCS suffix off one benchmark name;
// go test only appends it when GOMAXPROCS != 1, so no suffix means 1.
func nameGomaxprocs(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n < 1 {
		return 1
	}
	return n
}

// sweepWorkers extracts N from a ".../workers=N" fan-out sweep
// sub-benchmark name (GOMAXPROCS suffix already stripped); ok is false
// for benchmarks that don't sweep worker counts.
func sweepWorkers(name string) (int, bool) {
	i := strings.LastIndex(name, "workers=")
	if i < 0 {
		return 0, false
	}
	digits := name[i+len("workers="):]
	if j := strings.IndexFunc(digits, func(r rune) bool { return r < '0' || r > '9' }); j >= 0 {
		digits = digits[:j]
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// compare writes one report line per fresh benchmark and returns how
// many had a baseline ns/op to compare against plus the names that
// regressed beyond tolerance. Worker-sweep sub-benchmarks whose fan-out
// exceeds the fresh run's GOMAXPROCS are skipped: oversubscribed timing
// is scheduler noise, not a perf signal.
func compare(base, fresh *Output, tolerance float64, w io.Writer) (compared int, regressed []string) {
	maxprocs := 1
	if n, err := strconv.Atoi(fresh.Context["gomaxprocs"]); err == nil && n > maxprocs {
		maxprocs = n
	}
	baseline := make(map[string]Entry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		baseline[baseName(e.Name)] = e
	}
	for _, e := range fresh.Benchmarks {
		name := baseName(e.Name)
		if workers, ok := sweepWorkers(name); ok && workers > maxprocs {
			fmt.Fprintf(w, "skip: %s (oversubscribed: %d workers on GOMAXPROCS=%d)\n", name, workers, maxprocs)
			continue
		}
		got, okGot := e.Metrics["ns/op"]
		b, okBase := baseline[name]
		want, okWant := b.Metrics["ns/op"]
		if !okGot || !okBase || !okWant || want <= 0 {
			fmt.Fprintf(w, "skip: %s (no baseline ns/op)\n", name)
			continue
		}
		compared++
		delta := (got - want) / want * 100
		status := "ok"
		if delta > tolerance {
			status = "REGRESSED"
			regressed = append(regressed, name)
		}
		fmt.Fprintf(w, "%s: %s ns/op %.0f vs baseline %.0f (%+.1f%%)\n", status, name, got, want, delta)
	}
	return compared, regressed
}

func run(in io.Reader, stdout io.Writer, outPath string) error {
	out, err := parse(bufio.NewScanner(in))
	if err != nil {
		return err
	}
	if outPath != "" {
		prev, err := readExisting(outPath)
		if err != nil {
			return err
		}
		if prev != nil {
			out = merge(prev, out)
		}
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		stdout = f
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// readExisting loads a previous archive; a missing file is not an
// error (nil, nil), a corrupt one is.
func readExisting(path string) (*Output, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var prev Output
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil, fmt.Errorf("existing %s: %w", path, err)
	}
	return &prev, nil
}

// merge folds fresh results into a previous archive: re-measured names
// are replaced in place (keeping their position), new names append, and
// context keys from the fresh run win. Names are keyed with the
// -GOMAXPROCS suffix stripped, so a re-measure on a different core
// count replaces its entry instead of duplicating it, while the #NN
// dedup suffix stays significant. A previous entry whose dedup root was
// re-measured under a different dedup suffix set (e.g. a stale
// "workers=1#01" after the sweep stopped duplicating "workers=1") is
// dropped rather than kept forever.
func merge(prev, fresh *Output) *Output {
	merged := &Output{Context: map[string]string{}}
	for k, v := range prev.Context {
		merged.Context[k] = v
	}
	for k, v := range fresh.Context {
		merged.Context[k] = v
	}
	freshKeys := make(map[string]bool, len(fresh.Benchmarks))
	freshRoots := make(map[string]bool, len(fresh.Benchmarks))
	for _, e := range fresh.Benchmarks {
		key := baseName(e.Name)
		freshKeys[key] = true
		freshRoots[dedupRoot(key)] = true
	}
	index := make(map[string]int)
	for _, e := range prev.Benchmarks {
		key := baseName(e.Name)
		if !freshKeys[key] && freshRoots[dedupRoot(key)] {
			continue // stale duplicate of a re-measured benchmark
		}
		index[key] = len(merged.Benchmarks)
		merged.Benchmarks = append(merged.Benchmarks, e)
	}
	for _, e := range fresh.Benchmarks {
		key := baseName(e.Name)
		if i, ok := index[key]; ok {
			merged.Benchmarks[i] = e
		} else {
			index[key] = len(merged.Benchmarks)
			merged.Benchmarks = append(merged.Benchmarks, e)
		}
	}
	return merged
}

func parse(sc *bufio.Scanner) (*Output, error) {
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := &Output{Context: map[string]string{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			e, ok := parseBenchLine(line)
			if ok {
				out.Benchmarks = append(out.Benchmarks, e)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			if k, v, ok := strings.Cut(line, ":"); ok {
				out.Context[k] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	// The run's GOMAXPROCS, recovered from the -N name suffix (absent
	// when GOMAXPROCS=1), archives which fan-outs this machine could
	// actually exercise.
	maxprocs := 1
	for _, e := range out.Benchmarks {
		if n := nameGomaxprocs(e.Name); n > maxprocs {
			maxprocs = n
		}
	}
	out.Context["gomaxprocs"] = strconv.Itoa(maxprocs)
	return out, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkFigure3/parallel-8  92  12812383 ns/op  1523 B/op  4 allocs/op  936578 payments/s
func parseBenchLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}
