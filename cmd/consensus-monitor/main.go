// Command consensus-monitor is the paper's collection server: it
// connects to a validation stream (cmd/rippled-sim), records every
// validation and ledger-close event, and prints the per-validator
// total/valid page counts of Figure 2.
//
//	consensus-monitor -connect 127.0.0.1:5006 -label "December 2015"
//
// The monitor reads until the stream closes (the simulator finished its
// period) or -max-events is reached. It survives a degraded stream: the
// resilient client reconnects with backoff, resumes from the last seen
// sequence number, skips corrupt frames, and the collector skips
// malformed events. The final collection-health report says whether the
// run was lossless.
//
// The collector also cross-checks the stream for adversarial behavior:
// double-signed sequences (equivocation), divergent closed chains
// (forks), proposed-but-never-closed transactions (censorship), and
// validation streams that outrun the closed ledger (liveness stalls).
// Alerts print to stderr as they fire; with -fail-on-attack (the
// default) a detected attack exits with status 2 — after the partial
// Figure 2 report and health summary have been flushed, because a
// poisoned window is still data.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ripplestudy/internal/consensus"
	"ripplestudy/internal/monitor"
	"ripplestudy/internal/netstream"
)

// options collects the command-line configuration so run stays testable.
type options struct {
	connect      string
	label        string
	maxEvents    int
	asJSON       bool
	retries      int
	stall        time.Duration
	censorCloses int
	stallGap     int
	failOnAttack bool
}

func main() {
	var o options
	flag.StringVar(&o.connect, "connect", "127.0.0.1:5006", "validation stream address")
	flag.StringVar(&o.label, "label", "collection period", "period label for the report")
	flag.IntVar(&o.maxEvents, "max-events", 0, "stop after this many events (0 = until stream ends)")
	flag.BoolVar(&o.asJSON, "json", false, "emit the report as JSON instead of a table")
	flag.IntVar(&o.retries, "retries", 8, "consecutive connection failures before giving up")
	flag.DurationVar(&o.stall, "stall", 30*time.Second, "reconnect if no event arrives for this long (0 = never)")
	flag.IntVar(&o.censorCloses, "censor-closes", 0, "ledger closes a proposed tx may miss before a censorship alert (0 = default)")
	flag.IntVar(&o.stallGap, "stall-gap", 0, "validated sequences without a ledger close before a stall alarm (0 = default)")
	flag.BoolVar(&o.failOnAttack, "fail-on-attack", true, "exit with status 2 when the stream shows adversarial behavior")
	flag.Parse()

	attacked, err := run(o, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "consensus-monitor:", err)
		os.Exit(1)
	}
	if attacked && o.failOnAttack {
		fmt.Fprintln(os.Stderr, "consensus-monitor: attack indicators present, exiting 2")
		os.Exit(2)
	}
}

// run performs the collection and writes the reports; it returns whether
// the detector flagged the stream as adversarial. The exit code is the
// caller's call so the reports are always flushed first.
func run(o options, stdout, stderr io.Writer) (attacked bool, err error) {
	client := netstream.NewResilientClient(o.connect, netstream.ResilientOptions{
		MaxConsecutiveFailures: o.retries,
		StallTimeout:           o.stall,
	})
	fmt.Fprintf(stderr, "consensus-monitor: collecting from %s\n", o.connect)

	// SIGINT/SIGTERM stop the collection but still flush everything
	// gathered so far — a partial window is a valid (smaller) dataset.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	col := monitor.NewCollector()
	col.ConfigureDetector(monitor.DetectorConfig{
		CensorshipCloses: o.censorCloses,
		StallSequences:   o.stallGap,
		OnAlert: func(a monitor.Alert) {
			fmt.Fprintf(stderr, "consensus-monitor: %s\n", a)
		},
	})
	err = client.Run(ctx, func(ev consensus.Event) error {
		col.Record(ev)
		if o.maxEvents > 0 && col.Events() >= o.maxEvents {
			return netstream.ErrStop
		}
		return nil
	})
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(stderr, "consensus-monitor: interrupted, flushing partial collection")
		err = nil
	}
	// A server that finishes its period and exits looks like exhausted
	// retries; the collection up to that point is still the result. But
	// if we never connected at all there is no collection to report.
	if err != nil && (!errors.Is(err, netstream.ErrUnavailable) || client.Stats().Connects == 0) {
		return false, err
	}
	health := monitor.Health(client.Stats(), col)
	fmt.Fprintf(stderr, "consensus-monitor: %d events collected\n\n", col.Events())
	rep := col.Report(o.label)
	if o.asJSON {
		out := struct {
			Report monitor.Report           `json:"report"`
			Health monitor.CollectionHealth `json:"health"`
		}{rep, health}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return health.Attacked(), enc.Encode(out)
	}
	if err := rep.WriteTable(stdout); err != nil {
		return health.Attacked(), err
	}
	fmt.Fprintf(stdout, "\nsummary: %d validators observed, %d active (≥50%% of busiest), %d with zero valid pages\n",
		len(rep.Validators), rep.ActiveCount(0.5), rep.ZeroValidCount())
	fmt.Fprintln(stdout)
	return health.Attacked(), health.WriteReport(stdout)
}
