package replay

import (
	"testing"

	"ripplestudy/internal/ledger"
	"ripplestudy/internal/synth"
)

// generate builds a small history in memory and returns pages + result.
func generate(t *testing.T, payments int, seed int64) ([]*ledger.Page, *synth.Result) {
	t.Helper()
	var pages []*ledger.Page
	res, err := synth.Generate(synth.Config{
		Payments: payments, Seed: seed, SkipSignatures: true,
	}, func(p *ledger.Page) error {
		pages = append(pages, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pages, res
}

func TestBuildStateMatchesGenerator(t *testing.T) {
	pages, res := generate(t, 2500, 1)
	last := pages[len(pages)-1].Header.Sequence
	eng, err := BuildState(FromPages(pages), last)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic replay of the full history must land on the exact
	// same state digest the generator produced.
	if eng.StateDigest() != res.Engine.StateDigest() {
		t.Fatal("replayed state digest differs from the generator's")
	}
	if eng.TotalDrops() != res.Engine.TotalDrops() {
		t.Error("replayed XRP supply differs")
	}
	if eng.Graph().NumPairs() != res.Engine.Graph().NumPairs() {
		t.Errorf("replayed trust pairs = %d, generator = %d",
			eng.Graph().NumPairs(), res.Engine.Graph().NumPairs())
	}
	if eng.Books().NumOffers() != res.Engine.Books().NumOffers() {
		t.Errorf("replayed offers = %d, generator = %d",
			eng.Books().NumOffers(), res.Engine.Books().NumOffers())
	}
}

func TestBuildStateStopsAtSnapshot(t *testing.T) {
	pages, _ := generate(t, 1500, 2)
	mid := pages[len(pages)/2].Header.Sequence
	eng, err := BuildState(FromPages(pages), mid)
	if err != nil {
		t.Fatal(err)
	}
	full, err := BuildState(FromPages(pages), pages[len(pages)-1].Header.Sequence)
	if err != nil {
		t.Fatal(err)
	}
	if eng.StateDigest() == full.StateDigest() {
		t.Error("snapshot state equals full state; snapshot not honored")
	}
}

func TestTableIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 12k-payment history")
	}
	pages, _ := generate(t, 12_000, 3)
	// Snapshot at 70% of the history, past the spam campaigns' windows,
	// like the paper's stable Feb 2015 snapshot.
	snapSeq := pages[len(pages)*7/10].Header.Sequence
	res, err := Run(FromPages(pages), snapSeq)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Table II: cross %d/%d (%.1f%%), single %d/%d (%.1f%%), total %.1f%%, removed %d MMs",
		res.Cross.Delivered, res.Cross.Submitted, 100*res.Cross.Rate(),
		res.Single.Delivered, res.Single.Submitted, 100*res.Single.Rate(),
		100*res.Total().Rate(), res.RemovedMarketMakers)

	if res.RemovedMarketMakers < 50 {
		t.Errorf("removed %d market makers, want the full population", res.RemovedMarketMakers)
	}
	if res.Cross.Submitted < 50 {
		t.Fatalf("cross-currency submitted = %d, want a real population", res.Cross.Submitted)
	}
	if res.Single.Submitted < 50 {
		t.Fatalf("single-currency submitted = %d, want a real population", res.Single.Submitted)
	}
	// The paper's headline: without market makers ALL cross-currency
	// payments fail.
	if res.Cross.Delivered != 0 {
		t.Errorf("cross-currency delivered = %d, want 0", res.Cross.Delivered)
	}
	// And a striking share of single-currency payments fails too
	// (paper: 36.1% delivered).
	if r := res.Single.Rate(); r < 0.05 || r > 0.85 {
		t.Errorf("single-currency delivery rate = %.3f, want a partial rate (paper 0.361)", r)
	}
	// Total delivery collapses (paper: 11.2%).
	if r := res.Total().Rate(); r > 0.6 {
		t.Errorf("total delivery rate = %.3f, want a collapse (paper 0.112)", r)
	}
}

func TestReplayWithoutAblationDelivers(t *testing.T) {
	// Sanity: replaying the same payments on the UNmodified state must
	// deliver nearly everything — the collapse in TestTableIIShape is
	// caused by the ablation, not by replay artifacts.
	pages, _ := generate(t, 3000, 4)
	snapSeq := pages[len(pages)*7/10].Header.Sequence
	state, err := BuildState(FromPages(pages), snapSeq)
	if err != nil {
		t.Fatal(err)
	}
	submitted, delivered := 0, 0
	err = FromPages(pages).Pages(func(p *ledger.Page) error {
		if p.Header.Sequence <= snapSeq {
			return nil
		}
		for i, tx := range p.Txs {
			if tx.Type != ledger.TxPayment || !p.Metas[i].Result.Succeeded() {
				continue
			}
			if isDirectXRP(tx) {
				continue
			}
			submitted++
			if m := replayTx(state, tx); m != nil && m.Result.Succeeded() {
				delivered++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if submitted == 0 {
		t.Fatal("no IOU payments in replay window")
	}
	rate := float64(delivered) / float64(submitted)
	if rate < 0.95 {
		t.Errorf("un-ablated replay delivery = %.3f (%d/%d), want ≈1", rate, delivered, submitted)
	}
}

func TestCategoryStrings(t *testing.T) {
	if CategoryCross.String() != "Cross-currency" || CategorySingle.String() != "Single-currency" {
		t.Error("category strings wrong")
	}
	r := Row{Submitted: 0}
	if r.Rate() != 0 {
		t.Error("zero-submitted rate should be 0")
	}
}
