package consensus

import (
	"reflect"
	"testing"
)

func TestAttackSpecApply(t *testing.T) {
	base := activeSpecs(5)
	atk := AttackSpec{Equivocators: 2, Censors: 1, Delayers: 3, DelayIters: 2}
	specs := atk.Apply(base)
	if len(specs) != 11 {
		t.Fatalf("Apply produced %d specs, want 11", len(specs))
	}
	if !reflect.DeepEqual(specs[:5], base) {
		t.Error("Apply mutated the benign prefix")
	}
	counts := map[Behavior]int{}
	for _, s := range specs[5:] {
		counts[s.Behavior]++
		if !s.Trusted {
			t.Errorf("%s not trusted: the insider threat model requires UNL membership", s.Label)
		}
		if s.Label == "" {
			t.Error("Byzantine spec missing label")
		}
		if s.Behavior == BehaviorDelayer && s.DelayIters != 2 {
			t.Errorf("%s DelayIters = %d, want 2", s.Label, s.DelayIters)
		}
	}
	want := map[Behavior]int{BehaviorEquivocator: 2, BehaviorCensor: 1, BehaviorDelayer: 3}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("behavior counts = %v, want %v", counts, want)
	}
	if (AttackSpec{}).Enabled() {
		t.Error("zero AttackSpec reports Enabled")
	}
	if !atk.Enabled() || !(AttackSpec{Partition: &PartitionSpec{Overlap: 0.2}}).Enabled() {
		t.Error("configured AttackSpec reports disabled")
	}
}

// TestBenignStreamIgnoresAttackSeed pins the bit-identity guarantee at
// the consensus layer: without Byzantine validators or a partition, the
// event stream must not depend on the adversarial RNG at all.
func TestBenignStreamIgnoresAttackSeed(t *testing.T) {
	run := func(attackSeed int64) []Event {
		n := NewNetwork(Config{Seed: 7, AttackSeed: attackSeed}, December2015(40).Specs)
		var events []Event
		n.Subscribe(func(ev Event) { events = append(events, ev) })
		if _, err := n.Run(40, nil); err != nil {
			t.Fatal(err)
		}
		return events
	}
	a, b := run(111), run(999_999)
	if len(a) == 0 {
		t.Fatal("benign run emitted no events")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("benign event stream depends on AttackSeed: attack plumbing leaked into the benign path")
	}
}

// TestBenignScenarioMatchesPlainNetwork: a ScenarioConfig with a zero
// AttackSpec drives the identical network a direct NewNetwork would.
func TestBenignScenarioMatchesPlainNetwork(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{Name: "benign", Rounds: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.ForkRounds != 0 || res.Equivocations != 0 || res.CensoredRounds != 0 {
		t.Errorf("benign scenario reported attack outcomes: forks=%d equiv=%d censored=%d",
			res.ForkRounds, res.Equivocations, res.CensoredRounds)
	}
	if res.StallRounds > res.Rounds/2 {
		t.Errorf("benign scenario stalled %d/%d rounds", res.StallRounds, res.Rounds)
	}
	if res.Messages <= 0 || res.MeanLatency <= 0 {
		t.Errorf("SISSLE metrics missing: messages=%d latency=%v", res.Messages, res.MeanLatency)
	}
}

// TestEquivocatorDoubleSigns: the equivocator broadcasts two conflicting
// validations per round while the canonical chain keeps validating — the
// safety attack is visible only to a monitor that correlates signatures.
func TestEquivocatorDoubleSigns(t *testing.T) {
	sc := ScenarioConfig{Name: "equivocation", Rounds: 40, Seed: 5,
		Attack: AttackSpec{Equivocators: 1}}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivocations != 40 {
		t.Errorf("Equivocations = %d, want 40 (one conflicting pair per round)", res.Equivocations)
	}
	if res.StallRounds > 5 {
		t.Errorf("equivocator alone stalled %d/40 rounds: it should look benign", res.StallRounds)
	}

	// The stream-level signal: exactly two validations per sequence from
	// the equivocator node, with different hashes.
	net, traffic := sc.Build()
	eq, ok := net.NodeIDOf("equivocator-1")
	if !ok {
		t.Fatal("equivocator-1 not registered")
	}
	perSeq := map[uint64]int{}
	hashes := map[uint64]map[[32]byte]bool{}
	net.Subscribe(func(ev Event) {
		if ev.Kind == EventValidation && ev.Node == eq {
			perSeq[ev.Seq]++
			if hashes[ev.Seq] == nil {
				hashes[ev.Seq] = map[[32]byte]bool{}
			}
			hashes[ev.Seq][ev.LedgerHash] = true
		}
	})
	if _, err := net.Run(10, traffic); err != nil {
		t.Fatal(err)
	}
	for seq, count := range perSeq {
		if count != 2 {
			t.Errorf("seq %d: equivocator emitted %d validations, want 2", seq, count)
		}
		if len(hashes[seq]) != 2 {
			t.Errorf("seq %d: equivocator signed %d distinct hashes, want 2", seq, len(hashes[seq]))
		}
	}
}

// TestCensorBlocksVictim: one censor keeps the victim's payments out of
// the ledger every round (the agreed set requires unanimity), while
// background traffic still closes.
func TestCensorBlocksVictim(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{Name: "censorship", Rounds: 30, Seed: 5,
		Attack: AttackSpec{Censors: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.CensoredRounds != 30 {
		t.Errorf("CensoredRounds = %d, want 30: a single censor vetoes the victim every round", res.CensoredRounds)
	}
	if res.MaxCensorStreak != 30 {
		t.Errorf("MaxCensorStreak = %d, want 30", res.MaxCensorStreak)
	}
	closedTxs := 0
	for _, o := range res.Outcomes {
		closedTxs += o.AgreedTxs
	}
	if closedTxs == 0 {
		t.Error("no background traffic closed: censorship should be selective, not a stall")
	}
}

// TestDelayerDegradesLiveness: delayed proposers break liveness twice
// over. Any delayer empties the agreed set (the final 95% iteration
// cannot pass with a silent proposer in the denominator), and enough
// trusted delayers drag validation below the 80% quorum.
func TestDelayerDegradesLiveness(t *testing.T) {
	// One delayer: transaction throughput dies, validation survives.
	one, err := RunScenario(ScenarioConfig{Name: "delay-1", Rounds: 20, Seed: 5,
		Attack: AttackSpec{Delayers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range one.Outcomes {
		if o.AgreedTxs != 0 {
			t.Fatalf("round %d agreed %d txs despite a withholding proposer", o.Round, o.AgreedTxs)
		}
	}
	if one.StallRounds == one.Rounds {
		t.Error("one delayer should not stall every validation round")
	}

	// Three trusted delayers: quorum = ceil(0.8·11) = 9 > 8 possible
	// signers — validation stalls every round.
	three, err := RunScenario(ScenarioConfig{Name: "delay-3", Rounds: 20, Seed: 5,
		Attack: AttackSpec{Delayers: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if three.StallRounds != three.Rounds {
		t.Errorf("StallRounds = %d, want %d: 3 trusted delayers leave quorum unreachable",
			three.StallRounds, three.Rounds)
	}
	if three.MaxStallStreak != three.Rounds {
		t.Errorf("MaxStallStreak = %d, want %d", three.MaxStallStreak, three.Rounds)
	}
}

// TestDelayerValidationsArriveLate: the delayer's signature for sequence
// s is broadcast during round s+1, after validations for s+1 — trailing
// the stream's sequence high-water mark, which is how a monitor spots it.
func TestDelayerValidationsArriveLate(t *testing.T) {
	sc := ScenarioConfig{Rounds: 10, Seed: 5, Attack: AttackSpec{Delayers: 1}}
	net, traffic := sc.Build()
	dl, ok := net.NodeIDOf("delayer-1")
	if !ok {
		t.Fatal("delayer-1 not registered")
	}
	var highWater uint64
	lateSeen := 0
	net.Subscribe(func(ev Event) {
		if ev.Kind != EventValidation {
			return
		}
		if ev.Node == dl {
			if ev.Seq >= highWater {
				t.Errorf("delayer validation for seq %d arrived at high-water %d: not late", ev.Seq, highWater)
			}
			lateSeen++
		}
		if ev.Seq > highWater {
			highWater = ev.Seq
		}
	})
	if _, err := net.Run(10, traffic); err != nil {
		t.Fatal(err)
	}
	// 10 rounds: validations for seqs 1..9 flushed during rounds 2..10;
	// seq 10's sits in the queue when the run ends.
	if lateSeen != 9 {
		t.Errorf("late validations = %d, want 9", lateSeen)
	}
}

// TestPartitionForkBelowBound: overlap 0.2 < 2(1−0.8) — both partition
// groups reach quorum on different pages and the stream carries two
// fully validated ledgers at one sequence.
func TestPartitionForkBelowBound(t *testing.T) {
	if !ForkFeasible(0.2, 0.8) {
		t.Fatal("precondition: overlap 0.2 must be below the fork-feasibility bound")
	}
	sc := ScenarioConfig{Name: "partition", Rounds: 30, Seed: 5,
		Attack: AttackSpec{Partition: &PartitionSpec{Overlap: 0.2}}}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.ForkRounds == 0 {
		t.Fatal("no committed fork in 30 rounds at overlap 0.2")
	}
	if res.FirstForkRound == 0 || res.FirstForkRound > 10 {
		t.Errorf("FirstForkRound = %d, want an early fork", res.FirstForkRound)
	}

	// Stream-level: a forked round carries two EventLedgerClosed at the
	// same sequence with different hashes.
	net, traffic := sc.Build()
	closes := map[uint64]map[[32]byte]bool{}
	net.Subscribe(func(ev Event) {
		if ev.Kind == EventLedgerClosed {
			if closes[ev.Seq] == nil {
				closes[ev.Seq] = map[[32]byte]bool{}
			}
			closes[ev.Seq][ev.LedgerHash] = true
		}
	})
	if _, err := net.Run(30, traffic); err != nil {
		t.Fatal(err)
	}
	forkSeqs := net.ForkSeqs()
	if len(forkSeqs) == 0 {
		t.Fatal("ForkSeqs empty after forked rounds")
	}
	for _, seq := range forkSeqs {
		if len(closes[seq]) != 2 {
			t.Errorf("fork seq %d: %d distinct closed hashes on the stream, want 2", seq, len(closes[seq]))
		}
	}
}

// TestPartitionSafeAboveBound: overlap 0.8 > 2(1−0.8) — the shared
// members make simultaneous quorums arithmetically impossible.
func TestPartitionSafeAboveBound(t *testing.T) {
	if ForkFeasible(0.8, 0.8) {
		t.Fatal("precondition: overlap 0.8 must be above the fork-feasibility bound")
	}
	res, err := RunScenario(ScenarioConfig{Name: "partition-safe", Rounds: 30, Seed: 5,
		Attack: AttackSpec{Partition: &PartitionSpec{Overlap: 0.8}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ForkRounds != 0 {
		t.Errorf("ForkRounds = %d at overlap 0.8, want 0 (above the bound)", res.ForkRounds)
	}
}

// TestScenarioDeterminism: identical configs reproduce identical results.
func TestScenarioDeterminism(t *testing.T) {
	sc := ScenarioConfig{Rounds: 15, Seed: 9, Attack: AttackSpec{
		Equivocators: 1, Censors: 1, Delayers: 1,
		Partition: &PartitionSpec{Overlap: 0.3},
	}}
	a, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("scenario runs with identical configs diverged")
	}
}

// BenchmarkConsensusRound prices one consensus round per population —
// the SISSLE message-complexity/latency axis. The custom metrics report
// modeled protocol cost; ns/op reports simulation throughput.
func BenchmarkConsensusRound(b *testing.B) {
	cases := []struct {
		name   string
		attack AttackSpec
	}{
		{"benign", AttackSpec{}},
		{"equivocators", AttackSpec{Equivocators: 2}},
		{"censors", AttackSpec{Censors: 1}},
		{"partitioned", AttackSpec{Partition: &PartitionSpec{Overlap: 0.2}}},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			sc := ScenarioConfig{Rounds: 1, Seed: 2, Attack: bc.attack}
			net, traffic := sc.Build()
			var msgs, latencyNs, iters int64
			b.ResetTimer()
			for i := 0; b.Loop(); i++ {
				rr, err := net.RunRound(traffic(i + 1))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(rr.Messages)
				latencyNs += int64(rr.Latency)
				iters += int64(rr.ProposalIters)
			}
			rounds := int64(b.N)
			b.ReportMetric(float64(msgs)/float64(rounds), "msgs/round")
			b.ReportMetric(float64(latencyNs)/float64(rounds)/1e6, "modeled-ms/round")
			b.ReportMetric(float64(iters)/float64(rounds), "iters/round")
		})
	}
}
