package replay

import (
	"os"
	"path/filepath"
	"testing"

	"ripplestudy/internal/ledger"
	"ripplestudy/internal/ledgerstore"
)

// storeWithHistory persists pages into a fresh disk store and returns
// the reopened store plus the last page sequence.
func storeWithHistory(t *testing.T, pages []*ledger.Page) (*ledgerstore.Store, uint64) {
	t.Helper()
	dir := t.TempDir()
	store, err := ledgerstore.Create(dir, ledgerstore.WithSegmentBytes(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		if err := store.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	return store, pages[len(pages)-1].Header.Sequence
}

// TestCheckpointResumeMatchesCold is the resume differential: replays
// resumed from a checkpoint must be bit-identical — rows, digest, and
// sealed state root — to cold replays, for checkpoints strictly before,
// exactly on, and after the snapshot sequence. `make race` runs it
// under the race detector.
func TestCheckpointResumeMatchesCold(t *testing.T) {
	pages, _ := generate(t, 4000, 9)
	store, last := storeWithHistory(t, pages)
	snap := pages[len(pages)*7/10].Header.Sequence

	// Seed the sidecar across the FULL history, so later snapshots have
	// checkpoints past them (the resume must ignore those).
	const every = 40
	if _, err := BuildStateOpts(store, last, BuildOptions{CheckpointEvery: every, DisableResume: true}); err != nil {
		t.Fatal(err)
	}
	metas, err := ledgerstore.ListCheckpoints(store.CheckpointDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) < 3 {
		t.Fatalf("only %d checkpoints written; test needs several", len(metas))
	}
	if metas[len(metas)-1].Seq <= snap {
		t.Fatalf("no checkpoint past the snapshot (last %d, snap %d)", metas[len(metas)-1].Seq, snap)
	}

	// A checkpoint exactly on the snapshot, and one strictly before it.
	onSnap := uint64(0)
	for _, m := range metas {
		if m.Seq <= snap {
			onSnap = m.Seq
		}
	}
	if onSnap == 0 {
		t.Fatal("no checkpoint at or before the snapshot")
	}
	for _, tc := range []struct {
		name string
		snap uint64
	}{
		{"checkpoint-before-snapshot", snap},
		{"checkpoint-on-snapshot", onSnap},
		{"checkpoints-after-snapshot", metas[0].Seq + 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cold, err := RunOpts(store, tc.snap, BuildOptions{DisableResume: true})
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := RunOpts(store, tc.snap, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, cold, resumed, "resumed sequential")
			parResumed, err := RunParallelOpts(store, tc.snap, 4, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, cold, parResumed, "resumed parallel")
		})
	}

	// BuildState itself must agree too, at a snapshot between checkpoints.
	coldEng, err := BuildStateOpts(store, snap, BuildOptions{DisableResume: true})
	if err != nil {
		t.Fatal(err)
	}
	resumedEng, err := BuildStateOpts(store, snap, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if coldEng.StateDigest() != resumedEng.StateDigest() {
		t.Error("BuildState digest differs cold vs resumed")
	}
	coldRoot, err := coldEng.SealState()
	if err != nil {
		t.Fatal(err)
	}
	resumedRoot, err := resumedEng.SealState()
	if err != nil {
		t.Fatal(err)
	}
	if coldRoot != resumedRoot {
		t.Errorf("BuildState root %s cold vs %s resumed", coldRoot.Short(), resumedRoot.Short())
	}
}

// TestCheckpointCorruptionFallsBackCold damages a checkpoint batch and
// checks that resume silently degrades to a cold replay with identical
// results — corruption can slow a replay down but never change it.
func TestCheckpointCorruptionFallsBackCold(t *testing.T) {
	pages, _ := generate(t, 2000, 10)
	store, _ := storeWithHistory(t, pages)
	snap := pages[len(pages)*7/10].Header.Sequence

	if _, err := BuildStateOpts(store, snap, BuildOptions{CheckpointEvery: 30, DisableResume: true}); err != nil {
		t.Fatal(err)
	}
	cold, err := RunOpts(store, snap, BuildOptions{DisableResume: true})
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle of the first batch file: its CRC check
	// fails on open, which poisons the whole layered load.
	metas, err := ledgerstore.ListCheckpoints(store.CheckpointDir())
	if err != nil || len(metas) == 0 {
		t.Fatalf("checkpoints: %v (%d found)", err, len(metas))
	}
	nodesPath := filepath.Join(store.CheckpointDir(), "cp-"+pad16(metas[0].Seq)+".nodes")
	blob, err := os.ReadFile(nodesPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	if err := os.WriteFile(nodesPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := RunOpts(store, snap, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, cold, resumed, "fallback after corruption")
}

// pad16 renders a sequence like the checkpoint file naming does.
func pad16(seq uint64) string {
	const digits = "0123456789"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[seq%10]
		seq /= 10
	}
	return string(b[:])
}

// TestMemorySourceHasNoCheckpoints pins the zero-config behavior: a
// memory source neither writes nor resumes, and options asking for
// checkpointing on it are a quiet no-op.
func TestMemorySourceHasNoCheckpoints(t *testing.T) {
	pages, _ := generate(t, 800, 11)
	last := pages[len(pages)-1].Header.Sequence
	a, err := BuildStateOpts(FromPages(pages), last, BuildOptions{CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildState(FromPages(pages), last)
	if err != nil {
		t.Fatal(err)
	}
	if a.StateDigest() != b.StateDigest() {
		t.Error("checkpoint options changed a memory-source replay")
	}
}
