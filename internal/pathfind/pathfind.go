// Package pathfind implements Ripple's payment routing: it searches the
// credit network for transaction paths ("a sequence of trust-lines, along
// which IOU payments travel"), splits payments across parallel paths when
// a single path lacks liquidity, and bridges currencies through order
// books — directly or via XRP, "a universal bridge between markets".
//
// The planner is pure: it never mutates the trust graph or the books.
// It produces a Plan — ordered trust flows plus order-book quotes — that
// the payment engine applies atomically.
//
// A Finder owns a reusable scratch workspace (visited/parent/frontier
// arrays over the graph's dense account indices, a flow overlay, and
// quote buffers), so the BFS and trust routing allocate nothing on the
// steady state. A Finder is therefore NOT safe for concurrent use; spawn
// one Finder per goroutine over a shared read-only graph.
package pathfind

import (
	"errors"
	"fmt"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/orderbook"
	"ripplestudy/internal/trustgraph"
)

// Defaults bounding the search. BFS returns shortest paths first, so a
// generous hop bound does not lengthen organic routes; it only allows
// the rare absurdly long chains the paper's Figure 6(a) shows (one
// route used exactly 44 intermediate hops). Callers that want rippled's
// tighter behaviour pass WithMaxHops.
const (
	DefaultMaxHops  = 46 // maximum intermediate accounts on one path
	DefaultMaxPaths = 6  // maximum parallel paths per payment
)

// ErrNoPath is returned when no liquidity at all can be found.
var ErrNoPath = errors.New("pathfind: no path with liquidity")

// Flow is one planned trust-line movement: value flows From → To. Path
// is the index of the parallel path the flow belongs to, so consumers
// can attribute hops per path (an account on three parallel paths served
// as an intermediate hop three times).
type Flow struct {
	From, To addr.AccountID
	Currency amount.Currency
	Value    amount.Value
	Path     int
}

// PathInfo describes one parallel path for transaction metadata: the
// number of intermediate accounts and the value carried.
type PathInfo struct {
	Hops  int
	Value amount.Value
}

// Plan is an executable payment route. TrustFlows apply in order; Quotes
// consume order-book offers. Delivered may be less than requested when
// liquidity ran short — callers treat partial delivery as failure unless
// they support partial payments.
type Plan struct {
	Src, Dst    addr.AccountID
	Currency    amount.Currency // delivered currency
	SrcCurrency amount.Currency // currency the sender spends
	Delivered   amount.Value
	SourceCost  amount.Value // amount spent in SrcCurrency
	TrustFlows  []Flow
	Quotes      []orderbook.Quote
	Paths       []PathInfo
	// UsedBridge records whether the plan crossed an order book (directly
	// or via XRP) — cross-currency metadata for the analyses.
	UsedBridge bool
}

// ReadSet lists the state a plan (or a failed search) depended on: the
// accounts whose trust edges the search inspected and the order-book
// pairs it quoted. Optimistic replay validates a stale plan by checking
// that nothing in its read set has been mutated since planning — if the
// read set is untouched, re-planning against current state would read
// the exact same values and produce the exact same plan.
type ReadSet struct {
	Accounts []addr.AccountID
	Pairs    []orderbook.Pair
}

// Reset empties the read set, keeping capacity.
func (rs *ReadSet) Reset() {
	rs.Accounts = rs.Accounts[:0]
	rs.Pairs = rs.Pairs[:0]
}

// Finder searches for payment paths. The zero value is not usable; call
// New. A Finder is not safe for concurrent use (it reuses internal
// scratch buffers across calls).
type Finder struct {
	graph    *trustgraph.Graph
	books    *orderbook.Books
	maxHops  int
	maxPaths int
	record   bool

	// BFS scratch, indexed by the graph's dense account indices.
	// seen/readSeen are epoch-stamped so searches never clear them.
	epoch     uint32
	readEpoch uint32
	seen      []uint32
	readSeen  []uint32
	parent    []int32
	depth     []int32
	frontier  []int32
	next      []int32
	pathIdx   []int32

	ov overlay

	// Read-set accumulation for the current FindPayment (recording mode).
	readAcct []addr.AccountID
	readPair []orderbook.Pair

	// Scratch quotes for bridge probing; accepted quotes are deep-copied
	// out before the scratch is reused.
	qtmp [3]orderbook.Quote
}

// Option configures a Finder.
type Option func(*Finder)

// WithMaxHops bounds intermediate accounts per path.
func WithMaxHops(n int) Option { return func(f *Finder) { f.maxHops = n } }

// WithMaxPaths bounds the number of parallel paths per payment.
func WithMaxPaths(n int) Option { return func(f *Finder) { f.maxPaths = n } }

// WithRecording makes every FindPayment accumulate the ReadSet of state
// it inspected, retrievable via AppendReadSet until the next call.
func WithRecording() Option { return func(f *Finder) { f.record = true } }

// New creates a Finder over a credit network and an order-book set.
func New(graph *trustgraph.Graph, books *orderbook.Books, opts ...Option) *Finder {
	f := &Finder{graph: graph, books: books, maxHops: DefaultMaxHops, maxPaths: DefaultMaxPaths}
	for _, opt := range opts {
		opt(f)
	}
	f.ov.net = make(map[ovKey]amount.Value)
	return f
}

// AppendReadSet appends the most recent FindPayment's read set into rs
// (which the caller owns). Only meaningful with WithRecording.
func (f *Finder) AppendReadSet(rs *ReadSet) {
	rs.Accounts = append(rs.Accounts, f.readAcct...)
	rs.Pairs = append(rs.Pairs, f.readPair...)
}

// ensureScratch grows the dense-index scratch arrays to cover the graph.
func (f *Finder) ensureScratch() {
	n := f.graph.NumInterned()
	if n <= len(f.seen) {
		return
	}
	f.seen = append(f.seen, make([]uint32, n-len(f.seen))...)
	f.readSeen = append(f.readSeen, make([]uint32, n-len(f.readSeen))...)
	f.parent = append(f.parent, make([]int32, n-len(f.parent))...)
	f.depth = append(f.depth, make([]int32, n-len(f.depth))...)
}

// noteRead records that the search inspected account u's edges.
func (f *Finder) noteRead(u int32) {
	if !f.record || f.readSeen[u] == f.readEpoch {
		return
	}
	f.readSeen[u] = f.readEpoch
	f.readAcct = append(f.readAcct, f.graph.AccountAt(u))
}

// notePair records that the search quoted an order-book pair.
func (f *Finder) notePair(p orderbook.Pair) {
	if !f.record {
		return
	}
	for _, have := range f.readPair {
		if have == p {
			return
		}
	}
	f.readPair = append(f.readPair, p)
}

// overlay tracks planned flows so capacity queries reflect in-plan usage
// without mutating the graph. Keys use dense account indices.
type ovKey struct {
	from, to int32
	cur      amount.Currency
}

type overlay struct {
	net map[ovKey]amount.Value // net planned flow from→to
}

// residual adjusts a base capacity from→to by the planned net flows.
func (o *overlay) residual(base amount.Value, from, to int32, cur amount.Currency) amount.Value {
	if len(o.net) == 0 {
		return base // fast path: nothing planned yet
	}
	fwd := o.net[ovKey{from, to, cur}]
	rev := o.net[ovKey{to, from, cur}]
	c, err := base.Sub(fwd)
	if err != nil {
		return amount.Zero
	}
	c, err = c.Add(rev)
	if err != nil {
		return amount.Zero
	}
	if c.IsNegative() {
		return amount.Zero
	}
	return c
}

func (o *overlay) addFlow(from, to int32, cur amount.Currency, v amount.Value) error {
	k := ovKey{from, to, cur}
	sum, err := o.net[k].Add(v)
	if err != nil {
		return err
	}
	o.net[k] = sum
	return nil
}

// capacity returns the residual capacity from→to under the overlay.
func (f *Finder) capacity(from, to int32, cur amount.Currency) amount.Value {
	return f.ov.residual(f.graph.CapacityIdx(from, to, cur), from, to, cur)
}

// beginSearch resets the per-payment scratch: the overlay, the read set,
// and the read-dedup epoch.
func (f *Finder) beginSearch(src, dst addr.AccountID) {
	f.ensureScratch()
	clear(f.ov.net)
	if !f.record {
		return
	}
	f.readAcct = f.readAcct[:0]
	f.readPair = f.readPair[:0]
	f.readEpoch++
	if f.readEpoch == 0 {
		clear(f.readSeen)
		f.readEpoch = 1
	}
	// The endpoints' edge sets (including their absence) are always part
	// of what the search observed.
	f.recordAccount(src)
	f.recordAccount(dst)
}

// recordAccount adds an account to the read set, deduplicating interned
// accounts via the epoch stamps.
func (f *Finder) recordAccount(a addr.AccountID) {
	if i, ok := f.graph.Index(a); ok {
		f.noteRead(i)
		return
	}
	f.readAcct = append(f.readAcct, a)
}

// FindPayment plans delivery of `deliver` (in its currency) from src to
// dst. When srcCur differs from the delivery currency the plan bridges
// through order books. XRP-to-XRP payments need no path (the ledger moves
// drops directly); callers handle them before planning.
func (f *Finder) FindPayment(src, dst addr.AccountID, srcCur amount.Currency, deliver amount.Amount) (*Plan, error) {
	f.beginSearch(src, dst)
	if src == dst {
		return nil, fmt.Errorf("pathfind: src and dst are the same account")
	}
	if !deliver.Value.IsPositive() {
		return nil, fmt.Errorf("pathfind: non-positive delivery %s", deliver)
	}
	if srcCur == deliver.Currency {
		return f.planSameCurrency(src, dst, deliver)
	}
	return f.planCrossCurrency(src, dst, srcCur, deliver)
}

// planSameCurrency routes over trust-lines only, falling back to an
// XRP auto-bridge (cur→XRP→cur through the books) for any residue the
// trust network cannot carry.
func (f *Finder) planSameCurrency(src, dst addr.AccountID, deliver amount.Amount) (*Plan, error) {
	plan := &Plan{Src: src, Dst: dst, Currency: deliver.Currency, SrcCurrency: deliver.Currency}
	delivered, err := f.routeTrust(plan, src, dst, deliver.Currency, deliver.Value)
	if err != nil {
		return nil, err
	}
	plan.Delivered = delivered
	plan.SourceCost = delivered
	if delivered.Cmp(deliver.Value) < 0 && !deliver.Currency.IsXRP() {
		// Residue: try bridging the same currency through XRP books
		// (sell cur for XRP, buy cur back). This is how offers "make up
		// for the lack of direct trust on a particular currency".
		residue, err := deliver.Value.Sub(delivered)
		if err != nil {
			return nil, err
		}
		if bridged := f.tryBridge(plan, src, dst, deliver.Currency, amount.New(deliver.Currency, residue)); bridged != nil {
			plan = bridged
		}
	}
	if plan.Delivered.IsZero() {
		return nil, ErrNoPath
	}
	return plan, nil
}

// routeTrust finds up to maxPaths augmenting paths carrying `want` from
// src to dst in cur, appending flows and path metadata to the plan.
// Returns the total value routed.
func (f *Finder) routeTrust(plan *Plan, src, dst addr.AccountID, cur amount.Currency, want amount.Value) (amount.Value, error) {
	f.recordAccount(src)
	f.recordAccount(dst)
	srcIdx, ok := f.graph.Index(src)
	if !ok {
		return amount.Zero, nil
	}
	dstIdx, ok := f.graph.Index(dst)
	if !ok {
		return amount.Zero, nil
	}
	total := amount.Zero
	remaining := want
	for len(plan.Paths) < f.maxPaths && remaining.IsPositive() {
		path := f.shortestPath(srcIdx, dstIdx, cur)
		if path == nil {
			break
		}
		// Bottleneck along the path, capped at the remaining need.
		bottleneck := remaining
		for i := 0; i+1 < len(path); i++ {
			c := f.capacity(path[i], path[i+1], cur)
			bottleneck = bottleneck.Min(c)
		}
		if !bottleneck.IsPositive() {
			break
		}
		// Reserve the whole path's flows at once: one growth per path
		// instead of log(len) incremental doublings.
		if need := len(path) - 1; cap(plan.TrustFlows)-len(plan.TrustFlows) < need {
			grown := make([]Flow, len(plan.TrustFlows), len(plan.TrustFlows)+need)
			copy(grown, plan.TrustFlows)
			plan.TrustFlows = grown
		}
		for i := 0; i+1 < len(path); i++ {
			plan.TrustFlows = append(plan.TrustFlows, Flow{
				From: f.graph.AccountAt(path[i]), To: f.graph.AccountAt(path[i+1]),
				Currency: cur, Value: bottleneck,
				Path: len(plan.Paths),
			})
			if err := f.ov.addFlow(path[i], path[i+1], cur, bottleneck); err != nil {
				return amount.Zero, fmt.Errorf("pathfind: overlay: %w", err)
			}
		}
		plan.Paths = append(plan.Paths, PathInfo{Hops: len(path) - 2, Value: bottleneck})
		var err error
		if total, err = total.Add(bottleneck); err != nil {
			return amount.Zero, err
		}
		if remaining, err = remaining.Sub(bottleneck); err != nil {
			return amount.Zero, err
		}
	}
	return total, nil
}

// shortestPath runs a BFS from src to dst over edges with positive
// residual capacity, bounded by maxHops intermediate accounts. It
// returns the dense-index node list src..dst (valid until the next
// search), or nil. All state lives in the Finder's scratch arrays:
// the steady state allocates nothing.
func (f *Finder) shortestPath(src, dst int32, cur amount.Currency) []int32 {
	f.epoch++
	if f.epoch == 0 { // epoch counter wrapped: invalidate all stamps
		clear(f.seen)
		f.epoch = 1
	}
	e := f.epoch
	f.seen[src] = e
	f.depth[src] = 0
	frontier := f.frontier[:0]
	frontier = append(frontier, src)
	next := f.next[:0]
	maxLen := int32(f.maxHops + 1) // edges allowed = intermediate hops + 1
	defer func() {
		// Keep grown buffers for the next search.
		f.frontier = frontier[:0]
		f.next = next[:0]
	}()
	for len(frontier) > 0 {
		next = next[:0]
		for _, u := range frontier {
			du := f.depth[u]
			if du >= maxLen {
				continue
			}
			f.noteRead(u)
			found := false
			f.graph.NeighborsIdx(u, cur, func(peer int32, base amount.Value) {
				if found || f.seen[peer] == e {
					return
				}
				if !f.ov.residual(base, u, peer, cur).IsPositive() {
					return
				}
				f.seen[peer] = e
				f.parent[peer] = u
				f.depth[peer] = du + 1
				if peer == dst {
					found = true
					return
				}
				next = append(next, peer)
			})
			if found {
				// Reconstruct into the path scratch buffer.
				rev := f.pathIdx[:0]
				for at := dst; ; at = f.parent[at] {
					rev = append(rev, at)
					if at == src {
						break
					}
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				f.pathIdx = rev
				return rev
			}
		}
		frontier, next = next, frontier
	}
	return nil
}

// quoteBuy quotes the book into one of the Finder's scratch quotes,
// recording the pair read.
func (f *Finder) quoteBuy(slot int, pair orderbook.Pair, want amount.Value) (*orderbook.Quote, error) {
	f.notePair(pair)
	q := &f.qtmp[slot]
	if err := f.books.QuoteBuyInto(pair, want, q); err != nil {
		return nil, err
	}
	return q, nil
}

// cloneQuote deep-copies a scratch quote for inclusion in a plan.
func cloneQuote(q *orderbook.Quote) orderbook.Quote {
	out := *q
	out.Fills = append([]orderbook.Fill(nil), q.Fills...)
	return out
}

// bridgeQuote finds the cheapest conversion of srcCur into `deliver`:
// the direct book, or an XRP auto-bridge composing two books. It returns
// the quotes (1 or 2) and the source-currency cost, or ok=false when no
// liquidity exists.
func (f *Finder) bridgeQuote(srcCur amount.Currency, deliver amount.Amount) (quotes []orderbook.Quote, cost amount.Value, ok bool) {
	var bestQuotes []orderbook.Quote
	var bestCost amount.Value
	haveBest := false

	// Direct book: taker pays srcCur, receives deliver.Currency.
	direct, err := f.quoteBuy(0, orderbook.Pair{Pays: srcCur, Gets: deliver.Currency}, deliver.Value)
	if err == nil && direct.TotalGets.Cmp(deliver.Value) == 0 {
		bestQuotes = []orderbook.Quote{cloneQuote(direct)}
		bestCost = direct.TotalPays
		haveBest = true
	}

	// Auto-bridge via XRP: buy deliver with XRP, then buy that XRP with
	// srcCur. Skipped when either leg is already XRP.
	if !srcCur.IsXRP() && !deliver.Currency.IsXRP() {
		leg2, err2 := f.quoteBuy(1, orderbook.Pair{Pays: amount.XRP, Gets: deliver.Currency}, deliver.Value)
		if err2 == nil && leg2.TotalGets.Cmp(deliver.Value) == 0 {
			leg1, err1 := f.quoteBuy(2, orderbook.Pair{Pays: srcCur, Gets: amount.XRP}, leg2.TotalPays)
			if err1 == nil && leg1.TotalGets.Cmp(leg2.TotalPays) == 0 {
				if !haveBest || leg1.TotalPays.Cmp(bestCost) < 0 {
					bestQuotes = []orderbook.Quote{cloneQuote(leg1), cloneQuote(leg2)}
					bestCost = leg1.TotalPays
					haveBest = true
				}
			}
		}
	}
	if !haveBest {
		return nil, amount.Zero, false
	}
	return bestQuotes, bestCost, true
}

// planCrossCurrency bridges srcCur→deliver.Currency through books, then
// routes the source side src→(offer owners) and the delivery side
// (offer owners)→dst over trust-lines.
func (f *Finder) planCrossCurrency(src, dst addr.AccountID, srcCur amount.Currency, deliver amount.Amount) (*Plan, error) {
	plan := &Plan{Src: src, Dst: dst, Currency: deliver.Currency, SrcCurrency: srcCur}
	out := f.tryBridge(plan, src, dst, srcCur, deliver)
	if out == nil || out.Delivered.IsZero() {
		return nil, ErrNoPath
	}
	return out, nil
}

// tryBridge attempts to add a bridged route for `deliver` to the plan.
// It returns the updated plan, or nil when bridging is impossible.
//
// Routing model: the sender moves srcCur to each consumed offer's owner
// over trust-lines (unless the leg is XRP, which transfers freely), the
// conversion happens at the owner, and the owner moves the delivery
// currency to the destination over trust-lines. A leg with no trust route
// voids the bridge.
func (f *Finder) tryBridge(plan *Plan, src, dst addr.AccountID, srcCur amount.Currency, deliver amount.Amount) *Plan {
	quotes, cost, ok := f.bridgeQuote(srcCur, deliver)
	if !ok {
		return nil
	}
	// Snapshot plan state for rollback-free trial: work on a copy.
	trial := *plan
	trial.TrustFlows = append([]Flow(nil), plan.TrustFlows...)
	trial.Paths = append([]PathInfo(nil), plan.Paths...)
	trial.Quotes = append([]orderbook.Quote(nil), plan.Quotes...)

	entry := quotes[0]            // sender pays srcCur into this quote's offers
	exit := quotes[len(quotes)-1] // delivery currency comes out of this quote's offers

	// Source leg: src → each entry-offer owner, in srcCur.
	if !srcCur.IsXRP() {
		for _, fill := range entry.Fills {
			owner := fill.Offer.Owner
			if owner == src {
				continue // self-owned offer: no movement needed
			}
			savedPaths := len(trial.Paths)
			routed, err := f.routeTrust(&trial, src, owner, srcCur, fill.Pays)
			if err != nil || routed.Cmp(fill.Pays) < 0 {
				return nil
			}
			// Source-side hops are part of the overall path; fold their
			// path records into bridge accounting below by trimming the
			// separate entries (we count one logical path per fill).
			trial.Paths = trial.Paths[:savedPaths]
		}
	}
	// Delivery leg: each exit-offer owner → dst, in deliver.Currency.
	exitHops := 0
	if !deliver.Currency.IsXRP() {
		for _, fill := range exit.Fills {
			owner := fill.Offer.Owner
			if owner == dst {
				continue
			}
			savedPaths := len(trial.Paths)
			routed, err := f.routeTrust(&trial, owner, dst, deliver.Currency, fill.Gets)
			if err != nil || routed.Cmp(fill.Gets) < 0 {
				return nil
			}
			for _, p := range trial.Paths[savedPaths:] {
				if p.Hops > exitHops {
					exitHops = p.Hops
				}
			}
			trial.Paths = trial.Paths[:savedPaths]
		}
	}
	trial.Quotes = append(trial.Quotes, quotes...)
	// Record one logical parallel path per exit fill; each crosses the
	// offer owner (1 hop) plus any trust hops on the delivery leg.
	for _, fill := range exit.Fills {
		trial.Paths = append(trial.Paths, PathInfo{Hops: 1 + exitHops, Value: fill.Gets})
	}
	var err error
	if trial.Delivered, err = trial.Delivered.Add(deliver.Value); err != nil {
		return nil
	}
	if trial.SourceCost, err = trial.SourceCost.Add(cost); err != nil {
		return nil
	}
	trial.UsedBridge = true
	return &trial
}
