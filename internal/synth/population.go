// Package synth generates a calibrated synthetic Ripple history: the
// stand-in for the paper's 500 GB ledger download (Jan 2013 – Sep 2015,
// 23M payments). The generator builds a population of gateways, market
// makers, hub accounts, and ordinary users; wires the trust topology;
// places exchange offers; and then drives a payment workload through the
// real payment engine so every recorded transaction carries genuine path
// and order-book metadata.
//
// Calibration targets (the paper's reported marginals):
//   - currency mix: XRP 49% of payments, CCK and MTL next (spam
//     campaigns), then BTC 4.7%, USD 3.8%, CNY 3.3%, JPY 2.1%, EUR 0.4%,
//     and a long tail (Fig. 4);
//   - MTL spam forced through exactly 8 intermediate hops and 6 parallel
//     paths (Fig. 6);
//   - offer concentration: top-10 market makers place ~50% of offers,
//     top-50 ~75%, top-100 ~87% (Appendix C);
//   - ~10% of XRP payments to the Ripple Spin gambling account, and a
//     steady stream of spam to ACCOUNT_ZERO (Appendix A);
//   - gateways collect trust and hold negative balances; common users
//     hold positive balances (Fig. 7).
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
)

// GatewayNames are the publicly endorsed gateways of Figure 7.
var GatewayNames = []string{
	"SnapSwap", "Ripple Fox", "Bitstamp", "RippleChina", "Ripple Trade Japan",
	"rippleCN", "Justcoin", "The Rock Trading", "TokyoJPY", "Dividend Rippler",
	"Ripple Exchange Tokyo", "Digital Gate Japan", "Payroutes", "Mr. Ripple",
	"WisePass", "Bitso", "DotPayco", "Coinex", "Ripple LatAm", "Ripple Singapore",
}

// Gateway is a bank-like account: an entry/exit point that issues IOUs
// and is trusted by many users.
type Gateway struct {
	Name       string
	Key        *addr.KeyPair
	ID         addr.AccountID
	Currencies []amount.Currency
}

// Line records one of a user's funded trust-lines: a currency held at a
// host — usually a gateway, but often a market maker acting as a
// point-of-exchange. MM-hosted lines are what makes "almost 63% of
// single-currency transactions fail" when the market makers are removed
// (Table II): those users lose their only way in or out of the credit
// network.
type Line struct {
	Host     *addr.KeyPair
	HostID   addr.AccountID
	MMHosted bool
	Currency amount.Currency
}

// User is an ordinary account holding balances at one or more gateways.
type User struct {
	Key *addr.KeyPair
	ID  addr.AccountID
	// Gateways indexes into Population.Gateways: where the user holds
	// balances. Multiple memberships create the parallel payment paths
	// of Figure 6(b).
	Gateways []int
	// Lines are the user's funded trust-lines, filled in during setup.
	Lines []Line
	// Merchant users receive consumer payments priced from a small menu
	// (the "latte" price list), making amount values repeat.
	Merchant bool
	Prices   []amount.Value // non-empty only for merchants
}

// MarketMaker owns exchange offers. OfferWeight implements the zipfian
// concentration of offers over makers.
type MarketMaker struct {
	Key         *addr.KeyPair
	ID          addr.AccountID
	OfferWeight float64
}

// Population is the cast of the synthetic history.
type Population struct {
	Gateways     []Gateway
	Users        []User
	MarketMakers []MarketMaker

	// Hubs are the two hyper-connected non-gateway accounts the paper
	// singles out (rp2PaY… and r42Ccn…, both activated by ~akhavr).
	Hubs [2]User
	// Akhavr is the account that activated the hubs.
	Akhavr *addr.KeyPair
	// Attacker submits the MTL spam campaign.
	Attacker *addr.KeyPair
	// CCKSpammers run the CCK micro-transaction flood.
	CCKSpammers []*addr.KeyPair
	// RippleSpin is the XRP gambling site's receiving account.
	RippleSpin *addr.KeyPair
	// SpamRelays are the dedicated accounts on the tail of each MTL spam
	// chain. Each of the 6 chains runs attacker → hub1 → three gateways
	// → hub2 → three relays → sink: exactly 8 intermediaries, so the
	// spam is "routed through exactly 8 intermediate hops" while the
	// hubs and gateways — not anonymous throwaways — absorb the path
	// appearances, as in Figure 7(a).
	SpamRelays [6][3]*addr.KeyPair
	// SpamSink receives the MTL spam.
	SpamSink *addr.KeyPair
	// LongChain is the 44-intermediary oddity visible at the far right
	// of the paper's Figure 6(a) x-axis: a dedicated route of absurd
	// length (sender, 44 intermediates, receiver), exercised a handful
	// of times.
	LongChain []*addr.KeyPair

	registry *Registry
}

// Registry maps accounts to human-readable names and roles, standing in
// for the paper's crowd-sourced gateway list and manual investigation.
type Registry struct {
	names    map[addr.AccountID]string
	gateways map[addr.AccountID]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		names:    make(map[addr.AccountID]string),
		gateways: make(map[addr.AccountID]bool),
	}
}

// SetName records a display name.
func (r *Registry) SetName(id addr.AccountID, name string) { r.names[id] = name }

// MarkGateway records that the account is a publicly announced gateway.
func (r *Registry) MarkGateway(id addr.AccountID) { r.gateways[id] = true }

// Name returns the display name, falling back to the truncated address.
func (r *Registry) Name(id addr.AccountID) string {
	if n, ok := r.names[id]; ok {
		return n
	}
	return id.Short()
}

// IsGateway reports whether the account is a known gateway.
func (r *Registry) IsGateway(id addr.AccountID) bool { return r.gateways[id] }

// Registry exposes the population's registry.
func (p *Population) Registry() *Registry { return p.registry }

// Currency universe: the Figure 4 ranking. Weights are fractions of all
// payments; the organic tail decays geometrically.
type currencyShare struct {
	cur   amount.Currency
	share float64
}

// paymentMix returns the Figure 4 currency mix. XRP, CCK, and MTL carry
// dedicated traffic models (gambling/spam); the rest are organic IOU
// payments.
func paymentMix() []currencyShare {
	mix := []currencyShare{
		{amount.XRP, 0.49},
		{amount.CCK, 0.16},
		{amount.MTL, 0.14},
		{amount.BTC, 0.047},
		{amount.USD, 0.038},
		{amount.CNY, 0.033},
		{amount.JPY, 0.021},
	}
	// Long tail, ordered as in Figure 4, geometric decay summing to the
	// remaining ~7%.
	tail := []string{
		"SFO", "DVC", "GWD", "EUR", "RSC", "ICE", "STR", "GKO", "KRW",
		"TRC", "LTC", "CAD", "FMM", "MXN", "XTC", "XNF", "BRL", "DNX",
		"WTC", "ILS", "DOG", "GBP", "XEC", "NZD", "LWT", "NXT", "YOU",
		"ONC", "TBC", "CSC", "MRH", "SWD", "AUD", "NMC", "CTC", "PCV",
		"IOU", "LIK", "UKN", "RES", "JED", "VTC", "RJP",
	}
	remaining := 1.0
	for _, m := range mix {
		remaining -= m.share
	}
	w := remaining * 0.18
	for _, code := range tail {
		mix = append(mix, currencyShare{amount.MustCurrency(code), w})
		w *= 0.88
	}
	return mix
}

// organicCurrencies returns the currencies carried by ordinary IOU
// traffic (everything except XRP and the spam codes).
func organicCurrencies(mix []currencyShare) []currencyShare {
	var out []currencyShare
	for _, m := range mix {
		if m.cur == amount.XRP || m.cur == amount.CCK || m.cur == amount.MTL {
			continue
		}
		out = append(out, m)
	}
	return out
}

// gatewayCurrency assigns each gateway its primary currencies, loosely
// following the real gateways (Bitstamp: BTC/USD, TokyoJPY: JPY, ...).
func gatewayCurrencies(i int, organic []currencyShare) []amount.Currency {
	// Every gateway issues the four majors plus two tail currencies, so
	// all organic currencies are routable somewhere.
	majors := []amount.Currency{amount.BTC, amount.USD, amount.CNY, amount.JPY}
	out := append([]amount.Currency(nil), majors...)
	if len(organic) > 0 {
		out = append(out, organic[(2*i)%len(organic)].cur, organic[(2*i+1)%len(organic)].cur)
	}
	return out
}

// BuildPopulation derives a deterministic population of the given size.
// nUsers scales with the target payment count; the paper's full scale is
// 165k users (~55k active).
func BuildPopulation(rng *rand.Rand, nUsers, nMarketMakers int) *Population {
	if nUsers < 50 {
		nUsers = 50
	}
	if nMarketMakers < 10 {
		nMarketMakers = 10
	}
	reg := NewRegistry()
	p := &Population{registry: reg}

	mix := paymentMix()
	organic := organicCurrencies(mix)

	seed := uint64(1 << 20)
	nextKey := func() *addr.KeyPair {
		seed++
		return addr.KeyPairFromSeed(seed)
	}

	for i, name := range GatewayNames {
		kp := nextKey()
		g := Gateway{
			Name:       name,
			Key:        kp,
			ID:         kp.AccountID(),
			Currencies: gatewayCurrencies(i, organic),
		}
		p.Gateways = append(p.Gateways, g)
		reg.SetName(g.ID, name)
		reg.MarkGateway(g.ID)
	}

	for i := 0; i < nUsers; i++ {
		kp := nextKey()
		u := User{Key: kp, ID: kp.AccountID()}
		// Membership count 1–4, biased high; multiple memberships create
		// parallel paths.
		n := 1 + weightedIndex(rng, []float64{0.2, 0.25, 0.25, 0.3})
		u.Gateways = zipfDistinct(rng, len(p.Gateways), n)
		// ~15% of users are merchants with a short price menu.
		if rng.Float64() < 0.15 {
			u.Merchant = true
			prices := 1 + rng.Intn(8)
			for j := 0; j < prices; j++ {
				u.Prices = append(u.Prices, merchantPrice(rng))
			}
		}
		p.Users = append(p.Users, u)
		_ = i
	}

	// Market makers with zipfian offer weights: weight ∝ 1/rank^s with s
	// tuned so the top-10 share is ~50% at 150 makers.
	for i := 0; i < nMarketMakers; i++ {
		kp := nextKey()
		mm := MarketMaker{Key: kp, ID: kp.AccountID(), OfferWeight: offerWeight(i)}
		p.MarketMakers = append(p.MarketMakers, mm)
	}

	// The two hyper-connected hubs and their activator.
	p.Akhavr = nextKey()
	reg.SetName(p.Akhavr.AccountID(), "~akhavr")
	for i := range p.Hubs {
		kp := nextKey()
		p.Hubs[i] = User{Key: kp, ID: kp.AccountID()}
		reg.SetName(kp.AccountID(), fmt.Sprintf("hub-%d", i+1))
	}

	// Spam infrastructure.
	p.Attacker = nextKey()
	reg.SetName(p.Attacker.AccountID(), "mtl-attacker")
	p.SpamSink = nextKey()
	reg.SetName(p.SpamSink.AccountID(), "mtl-sink")
	for c := range p.SpamRelays {
		for h := range p.SpamRelays[c] {
			p.SpamRelays[c][h] = nextKey()
		}
	}
	for i := 0; i < 5; i++ {
		p.CCKSpammers = append(p.CCKSpammers, nextKey())
	}
	for i := 0; i < 46; i++ {
		p.LongChain = append(p.LongChain, nextKey())
	}
	p.RippleSpin = nextKey()
	reg.SetName(p.RippleSpin.AccountID(), "~Ripple Spin")

	return p
}

// weightedIndex draws an index with the given weights.
func weightedIndex(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	pick := rng.Float64() * total
	for i, w := range weights {
		if pick < w {
			return i
		}
		pick -= w
	}
	return len(weights) - 1
}

// zipfDistinct draws k distinct indexes in [0, n) with ~1/rank
// popularity: a handful of hosts (the Bitstamps of the network)
// accumulate most memberships.
func zipfDistinct(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		idx := int(math.Pow(float64(n), rng.Float64())) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}

// offerWeight gives market maker at rank i (0-based) its share weight.
// A zipf exponent of 1.1 over 150 makers puts ~50% of mass on the top
// 10, ~75% on the top 50, matching the paper's concentration.
func offerWeight(i int) float64 {
	rank := float64(i + 1)
	return 1 / math.Pow(rank, 1.1)
}

// merchantPrice draws a price-list entry: human-looking round prices
// (4.5, 10, 12.99, ...).
func merchantPrice(rng *rand.Rand) amount.Value {
	switch rng.Intn(3) {
	case 0: // small round: 0.5 .. 20.0 in halves
		halves := 1 + rng.Intn(40)
		return amount.MustValue(int64(halves*5), -1)
	case 1: // integer price 1..200
		return amount.FromInt64(int64(1 + rng.Intn(200)))
	default: // .99 price
		return amount.MustValue(int64(rng.Intn(100)*100+99), -2)
	}
}
