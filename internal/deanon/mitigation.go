package deanon

import (
	"sort"

	"ripplestudy/internal/addr"
)

// The paper's §V closes by weighing the classic Bitcoin countermeasure —
// "create multiple Bitcoin wallets unique to every single transaction" —
// against Ripple's trust backbone: "every new wallet would need to
// create enough new trustlines ... This makes the bootstrapping very
// complex and expensive." MitigationStudy quantifies that trade-off: how
// much splitting a user's activity over k wallets actually limits the
// damage of a single de-anonymized payment, and what the extra wallets
// cost in trust-lines and XRP reserves.

// Ripple's account reserve economics (2015 values): a wallet needs a
// base reserve plus an increment per owned object (trust-lines).
const (
	BaseReserveXRP      = 20
	OwnerReserveXRPLine = 5
)

// MitigationResult is one row of the wallet-splitting study.
type MitigationResult struct {
	// Wallets is k: the number of wallets each sender splits across.
	Wallets int
	// UniqueRate is the fraction of payments whose fingerprint remains
	// unique — unchanged by splitting (the fingerprint never contains
	// the sender), which is exactly the paper's point.
	UniqueRate float64
	// Exposure is the expected fraction of a sender's payment history
	// revealed by de-anonymizing one uniformly random payment: with one
	// wallet, a unique payment exposes everything; with k wallets, only
	// the observed wallet's share.
	Exposure float64
	// LinkableAccounts estimates how many wallet accounts a receiver
	// could still link: wallets paying the same destination remain
	// linkable through it ("possibly allowing the different wallets to
	// be linked back together").
	LinkableAccounts int
	// ExtraTrustLines is the bootstrapping cost: each additional wallet
	// must re-create the sender's trust-lines.
	ExtraTrustLines int
	// ExtraReserveXRP is the XRP locked by the additional wallets'
	// base and owner reserves.
	ExtraReserveXRP float64
}

// MitigationStudy evaluates wallet splitting at each k in ks over the
// payment history. Wallet assignment is round-robin per sender
// (deterministic), the strongest splitting a user can do without
// coordinating wallets per merchant.
func MitigationStudy(payments []Features, ks []int) []MitigationResult {
	// Pass 1: fingerprint uniqueness at the attack resolution.
	res := Figure3Rows[0] // ⟨Am;Tsc;C;D⟩
	counts := make(map[Fingerprint]uint32, len(payments))
	for _, f := range payments {
		counts[FingerprintOf(f, res)]++
	}

	// Per-sender statistics.
	type senderStats struct {
		total      int
		currencies map[[3]byte]bool
		dests      map[addr.AccountID]bool
	}
	bySender := make(map[addr.AccountID]*senderStats)
	for _, f := range payments {
		s := bySender[f.Sender]
		if s == nil {
			s = &senderStats{currencies: make(map[[3]byte]bool), dests: make(map[addr.AccountID]bool)}
			bySender[f.Sender] = s
		}
		s.total++
		s.currencies[f.Currency] = true
		s.dests[f.Destination] = true
	}

	// Stable ordering of each sender's payments for round-robin wallet
	// assignment: history order (the slice order).
	seen := make(map[addr.AccountID]int)

	out := make([]MitigationResult, 0, len(ks))
	for _, k := range ks {
		if k < 1 {
			k = 1
		}
		r := MitigationResult{Wallets: k}
		unique := 0
		exposure := 0.0
		// Wallet sizes per sender: round-robin makes them differ by at
		// most one; n_w = ceil or floor of total/k.
		for a := range seen {
			delete(seen, a)
		}
		// linkable: destinations receiving from ≥2 wallets of one
		// sender can link them. A destination links min(k, paymentsTo)
		// wallets.
		type sd struct {
			sender addr.AccountID
			dest   addr.AccountID
		}
		perDest := make(map[sd]map[int]bool)

		for _, f := range payments {
			idx := seen[f.Sender]
			seen[f.Sender] = idx + 1
			wallet := idx % k
			st := bySender[f.Sender]
			if counts[FingerprintOf(f, res)] == 1 {
				unique++
				// Size of this payment's wallet.
				walletSize := st.total / k
				if wallet < st.total%k {
					walletSize++
				}
				exposure += float64(walletSize) / float64(st.total)
			}
			key := sd{f.Sender, f.Destination}
			m := perDest[key]
			if m == nil {
				m = make(map[int]bool)
				perDest[key] = m
			}
			m[wallet] = true
		}
		r.UniqueRate = float64(unique) / float64(max(1, len(payments)))
		r.Exposure = exposure / float64(max(1, len(payments)))
		for _, wallets := range perDest {
			if len(wallets) >= 2 {
				r.LinkableAccounts += len(wallets)
			}
		}
		// Bootstrapping cost: (k-1) extra wallets per sender, each
		// re-creating the sender's trust-lines (one per currency used;
		// XRP needs none) and locking reserves.
		for _, st := range bySender {
			lines := 0
			for c := range st.currencies {
				if c != [3]byte{} {
					lines++
				}
			}
			r.ExtraTrustLines += (k - 1) * lines
			r.ExtraReserveXRP += float64(k-1) * (BaseReserveXRP + OwnerReserveXRPLine*float64(lines))
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Wallets < out[j].Wallets })
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
