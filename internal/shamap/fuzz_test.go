package shamap

import (
	"bytes"
	"testing"

	"ripplestudy/internal/ledger"
)

// FuzzShamapOps drives a random insert/update/delete sequence against
// one tree (with seals interleaved) and checks the fundamental Merkle
// invariant: the final root equals the root of a tree rebuilt from
// scratch out of the surviving entries — the sealed root is a pure
// function of the key/value set. It also round-trips the final tree
// through WriteNew/Load.
func FuzzShamapOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Add([]byte{0x80, 0x01, 0x81, 0x01, 0x41, 0x01, 0xC1})
	f.Add(bytes.Repeat([]byte{0x01, 0x02, 0x83, 0x44}, 40))

	f.Fuzz(func(t *testing.T, ops []byte) {
		tr := New()
		model := make(map[ledger.Hash][]byte)
		for i := 0; i+1 < len(ops); i += 2 {
			op, sel := ops[i], ops[i+1]
			// Keys are drawn from a small hashed universe so inserts,
			// overwrites, and deletes collide often.
			k := ledger.SHA512Half([]byte{sel & 0x3f})
			switch op % 4 {
			case 0, 1: // insert / overwrite
				v := []byte{op, sel}
				tr.Set(k, v)
				model[k] = v
			case 2: // delete
				_, want := model[k]
				if got := tr.Delete(k); got != want {
					t.Fatalf("op %d: Delete = %v, model says %v", i, got, want)
				}
				delete(model, k)
			case 3: // interleaved seal
				tr.Seal()
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("Len = %d, model has %d", tr.Len(), len(model))
		}
		root := tr.Seal()

		rebuilt := New()
		for k, v := range model {
			rebuilt.Set(k, v)
		}
		if r := rebuilt.Seal(); r != root {
			t.Fatalf("rebuilt root %s, incremental root %s", r.Short(), root.Short())
		}

		store := storeMap{}
		if _, err := tr.WriteNew(store.put); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(root, store.get)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Len() != len(model) {
			t.Fatalf("loaded %d leaves, model has %d", loaded.Len(), len(model))
		}
		for k, v := range model {
			got, ok := loaded.Get(k)
			if !ok || !bytes.Equal(got, v) {
				t.Fatalf("loaded leaf %s = %q, %v; want %q", k.Short(), got, ok, v)
			}
		}
	})
}
