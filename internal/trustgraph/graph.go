// Package trustgraph implements Ripple's credit network: the backbone of
// trust-lines over which IOU payments "ripple". For each account pair and
// currency it tracks the two directional trust limits and the single net
// balance between the parties, exactly the three-field record (amount,
// currency, issuers) the paper describes.
//
// Payment capacity follows the paper's semantics: "if A trusts B for
// 10USD ... IOU transactions in the opposite direction (from B to A)
// [are limited] to 10USD". Value flowing B→A consumes A's trust in B;
// value flowing back A→B first pays down existing debt and then consumes
// B's trust in A.
package trustgraph

import (
	"fmt"
	"sort"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
)

// Pair is the credit state between two accounts in one currency. The two
// endpoints are stored in canonical order (Lo < Hi by account ID).
//
//   - LimitLoHi: Lo trusts Hi — the most Hi may owe Lo.
//   - LimitHiLo: Hi trusts Lo — the most Lo may owe Hi.
//   - Balance:   net debt, positive when Hi owes Lo, negative when Lo
//     owes Hi.
type Pair struct {
	Lo, Hi    addr.AccountID
	Currency  amount.Currency
	LimitLoHi amount.Value
	LimitHiLo amount.Value
	Balance   amount.Value
}

// edgeKey addresses a pair from one endpoint's perspective.
type edgeKey struct {
	peer addr.AccountID
	cur  amount.Currency
}

// less orders edge keys deterministically: by currency, then peer.
func (k edgeKey) less(o edgeKey) bool {
	if k.cur != o.cur {
		return string(k.cur[:]) < string(o.cur[:])
	}
	return k.peer.Less(o.peer)
}

// accountEdges keeps one account's edges both indexed and in sorted
// order, so iteration (and therefore path finding and everything built
// on it) is deterministic — map iteration order must never influence a
// ledger's content.
type accountEdges struct {
	m    map[edgeKey]*Pair
	keys []edgeKey // sorted by edgeKey.less
}

func (e *accountEdges) insert(k edgeKey, p *Pair) {
	if _, exists := e.m[k]; !exists {
		i := sort.Search(len(e.keys), func(i int) bool { return k.less(e.keys[i]) })
		e.keys = append(e.keys, edgeKey{})
		copy(e.keys[i+1:], e.keys[i:])
		e.keys[i] = k
	}
	e.m[k] = p
}

func (e *accountEdges) remove(k edgeKey) {
	if _, exists := e.m[k]; !exists {
		return
	}
	delete(e.m, k)
	i := sort.Search(len(e.keys), func(i int) bool { return !e.keys[i].less(k) })
	if i < len(e.keys) && e.keys[i] == k {
		e.keys = append(e.keys[:i], e.keys[i+1:]...)
	}
}

// Graph is the in-memory credit network. It is not safe for concurrent
// mutation; analyses clone it before replaying.
type Graph struct {
	adj map[addr.AccountID]*accountEdges
	// pairs counts distinct trust pairs for stats.
	pairs int
}

// New creates an empty credit network.
func New() *Graph {
	return &Graph{adj: make(map[addr.AccountID]*accountEdges)}
}

// canonical orders two accounts.
func canonical(a, b addr.AccountID) (lo, hi addr.AccountID, swapped bool) {
	if b.Less(a) {
		return b, a, true
	}
	return a, b, false
}

func (g *Graph) edge(a addr.AccountID, k edgeKey) (*Pair, bool) {
	e, ok := g.adj[a]
	if !ok {
		return nil, false
	}
	p, ok := e.m[k]
	return p, ok
}

func (g *Graph) link(a addr.AccountID, k edgeKey, p *Pair) {
	e, ok := g.adj[a]
	if !ok {
		e = &accountEdges{m: make(map[edgeKey]*Pair)}
		g.adj[a] = e
	}
	e.insert(k, p)
}

// pair returns the Pair for (a, b, cur), creating it when create is set.
func (g *Graph) pair(a, b addr.AccountID, cur amount.Currency, create bool) *Pair {
	p, ok := g.edge(a, edgeKey{peer: b, cur: cur})
	if ok {
		return p
	}
	if !create {
		return nil
	}
	lo, hi, _ := canonical(a, b)
	p = &Pair{Lo: lo, Hi: hi, Currency: cur}
	g.link(a, edgeKey{peer: b, cur: cur}, p)
	g.link(b, edgeKey{peer: a, cur: cur}, p)
	g.pairs++
	return p
}

// SetTrust declares that truster extends credit of up to limit to trustee
// in the given currency — the effect of a TrustSet transaction. A zero
// limit removes the trust in that direction (the pair survives while the
// other direction or a balance remains).
func (g *Graph) SetTrust(truster, trustee addr.AccountID, cur amount.Currency, limit amount.Value) error {
	if cur.IsXRP() {
		return fmt.Errorf("trustgraph: XRP needs no trust-lines")
	}
	if truster == trustee {
		return fmt.Errorf("trustgraph: account cannot trust itself")
	}
	if limit.IsNegative() {
		return fmt.Errorf("trustgraph: negative trust limit %s", limit)
	}
	p := g.pair(truster, trustee, cur, true)
	if p.Lo == truster {
		p.LimitLoHi = limit
	} else {
		p.LimitHiLo = limit
	}
	return nil
}

// Trust returns the limit truster currently extends to trustee.
func (g *Graph) Trust(truster, trustee addr.AccountID, cur amount.Currency) amount.Value {
	p := g.pair(truster, trustee, cur, false)
	if p == nil {
		return amount.Zero
	}
	if p.Lo == truster {
		return p.LimitLoHi
	}
	return p.LimitHiLo
}

// Owed returns how much debtor currently owes creditor (zero or positive;
// debt in the other direction reports zero).
func (g *Graph) Owed(creditor, debtor addr.AccountID, cur amount.Currency) amount.Value {
	p := g.pair(creditor, debtor, cur, false)
	if p == nil {
		return amount.Zero
	}
	bal := p.Balance // positive: Hi owes Lo
	if p.Lo != creditor {
		bal = bal.Neg()
	}
	if bal.IsNegative() {
		return amount.Zero
	}
	return bal
}

// Capacity returns the maximum value that can flow from → to across the
// direct edge in the given currency: existing debt owed to `from` by `to`
// being paid down, plus fresh credit `to` extends to `from`.
func (g *Graph) Capacity(from, to addr.AccountID, cur amount.Currency) amount.Value {
	p := g.pair(from, to, cur, false)
	if p == nil {
		return amount.Zero
	}
	return pairCapacity(p, from)
}

// pairCapacity computes capacity for value flowing out of `from` across p.
func pairCapacity(p *Pair, from addr.AccountID) amount.Value {
	// Value flowing Lo→Hi decreases Balance; floor is -LimitHiLo.
	// capacity(Lo→Hi) = Balance + LimitHiLo
	// capacity(Hi→Lo) = LimitLoHi - Balance
	var c amount.Value
	var err error
	if p.Lo == from {
		c, err = p.Balance.Add(p.LimitHiLo)
	} else {
		c, err = p.LimitLoHi.Sub(p.Balance)
	}
	if err != nil || c.IsNegative() {
		return amount.Zero
	}
	return c
}

// ApplyFlow moves v of value from → to across the direct edge, consuming
// capacity. It fails, leaving the graph unchanged, if v exceeds the
// available capacity or the edge does not exist.
func (g *Graph) ApplyFlow(from, to addr.AccountID, cur amount.Currency, v amount.Value) error {
	if v.IsNegative() || v.IsZero() {
		return fmt.Errorf("trustgraph: flow must be positive, got %s", v)
	}
	p := g.pair(from, to, cur, false)
	if p == nil {
		return fmt.Errorf("trustgraph: no trust between %s and %s in %s", from.Short(), to.Short(), cur)
	}
	if pairCapacity(p, from).Cmp(v) < 0 {
		return fmt.Errorf("trustgraph: flow %s exceeds capacity %s on %s→%s/%s",
			v, pairCapacity(p, from), from.Short(), to.Short(), cur)
	}
	var nb amount.Value
	var err error
	if p.Lo == from {
		nb, err = p.Balance.Sub(v)
	} else {
		nb, err = p.Balance.Add(v)
	}
	if err != nil {
		return fmt.Errorf("trustgraph: applying flow: %w", err)
	}
	p.Balance = nb
	return nil
}

// Neighbors calls fn for every peer that shares a trust pair with account
// in the given currency, together with the current capacity for value
// flowing account→peer. Iteration order is deterministic (sorted by
// peer): payment routing must not depend on map iteration order.
func (g *Graph) Neighbors(account addr.AccountID, cur amount.Currency, fn func(peer addr.AccountID, capacity amount.Value)) {
	e, ok := g.adj[account]
	if !ok {
		return
	}
	// Keys are sorted by (currency, peer): binary-search the currency's
	// contiguous block.
	start := sort.Search(len(e.keys), func(i int) bool {
		return string(e.keys[i].cur[:]) >= string(cur[:])
	})
	for i := start; i < len(e.keys) && e.keys[i].cur == cur; i++ {
		k := e.keys[i]
		fn(k.peer, pairCapacity(e.m[k], account))
	}
}

// Currencies calls fn for each currency in which account has any pair,
// in sorted order.
func (g *Graph) Currencies(account addr.AccountID, fn func(cur amount.Currency)) {
	e, ok := g.adj[account]
	if !ok {
		return
	}
	var last amount.Currency
	first := true
	for _, k := range e.keys {
		if first || k.cur != last {
			fn(k.cur)
			last = k.cur
			first = false
		}
	}
}

// Pairs calls fn once per distinct trust pair in the graph. Iteration
// order is unspecified (callers aggregate).
func (g *Graph) Pairs(fn func(*Pair)) {
	seen := make(map[*Pair]bool, g.pairs)
	for _, edges := range g.adj {
		for _, p := range edges.m {
			if !seen[p] {
				seen[p] = true
				fn(p)
			}
		}
	}
}

// NumPairs returns the number of distinct (pair, currency) trust records.
func (g *Graph) NumPairs() int { return g.pairs }

// NumAccounts returns the number of accounts with at least one pair.
func (g *Graph) NumAccounts() int { return len(g.adj) }

// HasAccount reports whether the account participates in any trust pair.
func (g *Graph) HasAccount(a addr.AccountID) bool {
	e, ok := g.adj[a]
	return ok && len(e.m) > 0
}

// RemoveAccount deletes an account and every trust pair it participates
// in — the mutation behind the paper's market-maker ablation (Table II).
func (g *Graph) RemoveAccount(a addr.AccountID) {
	e, ok := g.adj[a]
	if !ok {
		return
	}
	for _, k := range append([]edgeKey(nil), e.keys...) {
		if peerEdges, ok := g.adj[k.peer]; ok {
			peerEdges.remove(edgeKey{peer: a, cur: k.cur})
			if len(peerEdges.m) == 0 {
				delete(g.adj, k.peer)
			}
		}
		g.pairs--
	}
	delete(g.adj, a)
}

// Clone returns a deep copy of the graph, for replay experiments.
func (g *Graph) Clone() *Graph {
	out := New()
	out.pairs = g.pairs
	copies := make(map[*Pair]*Pair, g.pairs)
	for acct, edges := range g.adj {
		ne := &accountEdges{
			m:    make(map[edgeKey]*Pair, len(edges.m)),
			keys: append([]edgeKey(nil), edges.keys...),
		}
		for k, p := range edges.m {
			cp, ok := copies[p]
			if !ok {
				dup := *p
				cp = &dup
				copies[p] = cp
			}
			ne.m[k] = cp
		}
		out.adj[acct] = ne
	}
	return out
}

// CheckInvariants verifies every pair's balance lies within its limits,
// returning the list of violations (empty when healthy). Limit
// *reductions* below an existing balance are legal in Ripple, so callers
// decide whether violations are fatal.
func (g *Graph) CheckInvariants() []error {
	var errs []error
	g.Pairs(func(p *Pair) {
		if p.Balance.Cmp(p.LimitLoHi) > 0 {
			errs = append(errs, fmt.Errorf("trustgraph: %s owes %s %s/%s above limit %s",
				p.Hi.Short(), p.Lo.Short(), p.Balance, p.Currency, p.LimitLoHi))
		}
		if p.Balance.Neg().Cmp(p.LimitHiLo) > 0 {
			errs = append(errs, fmt.Errorf("trustgraph: %s owes %s %s/%s above limit %s",
				p.Lo.Short(), p.Hi.Short(), p.Balance.Neg(), p.Currency, p.LimitHiLo))
		}
	})
	return errs
}

// Profile aggregates one account's standing in the network, the data
// behind Figure 7(b) and 7(c). Sums are computed in a reference currency
// using the supplied conversion rate function (units of reference
// currency per one unit of cur); rate may return 0 to skip a currency.
type Profile struct {
	// TrustReceived is the total credit other accounts extend to this
	// account (positive trust in Fig. 7(b)).
	TrustReceived float64
	// TrustGiven is the total credit this account extends to others
	// (negative trust in Fig. 7(b)).
	TrustGiven float64
	// NetBalance is credit minus debt: positive for accounts owed value
	// (common users), negative for debtors (gateways) — Fig. 7(c).
	NetBalance float64
	// Lines counts the account's trust pairs.
	Lines int
}

// ProfileOf computes the aggregate standing of account under rates.
func (g *Graph) ProfileOf(account addr.AccountID, rate func(amount.Currency) float64) Profile {
	var pr Profile
	e, ok := g.adj[account]
	if !ok {
		return pr
	}
	// Iterate in sorted key order: float accumulation must be
	// deterministic so profiles compare equal across replays.
	for _, k := range e.keys {
		p := e.m[k]
		r := rate(k.cur)
		if r == 0 {
			continue
		}
		pr.Lines++
		var limitIn, limitOut, bal amount.Value
		if p.Lo == account {
			limitOut = p.LimitLoHi // account trusts peer
			limitIn = p.LimitHiLo  // peer trusts account
			bal = p.Balance        // positive: peer owes account
		} else {
			limitOut = p.LimitHiLo
			limitIn = p.LimitLoHi
			bal = p.Balance.Neg()
		}
		pr.TrustGiven += limitOut.Float64() * r
		pr.TrustReceived += limitIn.Float64() * r
		pr.NetBalance += bal.Float64() * r
	}
	return pr
}
