package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"ripplestudy/internal/deanon"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/ledgerstore"
)

// benchService returns a warm service with a small history ingested,
// plus a feature vector from a real payment for lookup benchmarks.
func benchService(b *testing.B) (*Service, []*ledger.Page, deanon.Features) {
	b.Helper()
	pages := genPages(b, 3000, 37)
	s := NewService(Options{})
	b.Cleanup(s.Close)
	for _, p := range pages {
		if err := s.IngestPage(p); err != nil {
			b.Fatal(err)
		}
	}
	drain(b, s)
	for _, p := range pages {
		for i := range p.Txs {
			if f, ok := deanon.FromTransaction(p, p.Txs[i], p.Metas[i]); ok {
				return s, pages, f
			}
		}
	}
	b.Fatal("no observable payment")
	return nil, nil, deanon.Features{}
}

// BenchmarkServeIngestPage measures the full ingest fan-out: offer to
// every page view, applied and periodically published by the workers.
func BenchmarkServeIngestPage(b *testing.B) {
	pages := genPages(b, 3000, 37)
	s := NewService(Options{})
	b.Cleanup(s.Close)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.IngestPage(pages[i%len(pages)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	drain(b, s)
}

// BenchmarkServeLookup measures the O(1) point query against a sealed
// snapshot — the latency a /v1/deanon/lookup request pays after parsing.
func BenchmarkServeLookup(b *testing.B) {
	s, _, feat := benchService(b)
	snap := s.Fingerprints()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := snap.Lookup(i%len(snap.Rows), feat); !ok {
			b.Fatal("lookup rejected")
		}
	}
}

// BenchmarkServeHTTPValidators measures a cached snapshot endpoint
// end-to-end through the handler (admission, cache, write).
func BenchmarkServeHTTPValidators(b *testing.B) {
	s, _, _ := benchService(b)
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/validators", nil))
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkServeIngestThroughput measures end-to-end backfill speed —
// store → raw payload scan → projection → batched fan-out → sealed
// snapshots — and reports payments/s, the number the ROADMAP's
// line-rate streaming item tracks.
func BenchmarkServeIngestThroughput(b *testing.B) {
	pages := genPages(b, 20000, 37)
	payments := 0
	for _, p := range pages {
		for i := range p.Txs {
			if p.Txs[i].Type == ledger.TxPayment && p.Metas[i].Result.Succeeded() {
				payments++
			}
		}
	}
	dir := filepath.Join(b.TempDir(), "store")
	st, err := ledgerstore.Create(dir, ledgerstore.WithSegmentBytes(1<<22))
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range pages {
		if err := st.Append(p); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	if st, err = ledgerstore.Open(dir); err != nil {
		b.Fatal(err)
	}
	defer st.Close()

	// Sweep the pipeline fan-out: 1 is the single-writer baseline, the
	// fixed points let archives from different machines compare like for
	// like, and GOMAXPROCS is the full-machine configuration. Dedup keeps
	// the archived sub-benchmark names distinct on any core count.
	sweep := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, workers := range sweep {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				s := NewService(Options{PipelineWorkers: workers})
				if err := s.BackfillStore(context.Background(), st, workers); err != nil {
					b.Fatal(err)
				}
				drain(b, s)
				if got := s.Fingerprints().Payments; got != payments {
					b.Fatalf("ingested %d payments, want %d", got, payments)
				}
				s.Close()
			}
			elapsed := time.Since(start).Seconds()
			b.ReportMetric(float64(payments*b.N)/elapsed, "payments/s")
			b.ReportMetric(float64(len(pages)*b.N)/elapsed, "pages/s")
		})
	}
}

// BenchmarkServeSnapshotPublish measures one copy-on-publish seal of the
// fingerprint view — the cost amortized across PublishBatch updates.
// "dirty" re-observes a page before each seal (every changed shard is
// deep-copied); "clean" seals an unchanged study (clones shared, no
// copying) — the inbox-dry republish fast path.
func BenchmarkServeSnapshotPublish(b *testing.B) {
	pages := genPages(b, 3000, 37)
	st := newFingerprintState(1)
	defer st.close()
	proj := newProjector(st.plan())
	recs := make([]*pageRecord, len(pages))
	for i, p := range pages {
		recs[i] = new(pageRecord)
		proj.fromPage(p, recs[i])
		st.apply(recs[i])
	}
	b.Run("dirty", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.apply(recs[i%len(recs)])
			if snap := st.snapshot(uint64(i), 1); snap == nil {
				b.Fatal("nil snapshot")
			}
		}
	})
	b.Run("clean", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if snap := st.snapshot(uint64(i), 1); snap == nil {
				b.Fatal("nil snapshot")
			}
		}
	})
}
