package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ripplestudy
cpu: Test CPU
BenchmarkFigure3/parallel-8  92  12812383 ns/op  1523 B/op  4 allocs/op  936578 payments/s
BenchmarkStoreScan-8  10  98765432 ns/op
PASS
ok  	ripplestudy	2.071s
`

func parseString(t *testing.T, s string) *Output {
	t.Helper()
	out, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParseBenchOutput(t *testing.T) {
	out := parseString(t, sampleOutput)
	if len(out.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(out.Benchmarks))
	}
	e := out.Benchmarks[0]
	if e.Name != "BenchmarkFigure3/parallel-8" || e.Iterations != 92 {
		t.Fatalf("entry 0 = %+v", e)
	}
	want := map[string]float64{
		"ns/op": 12812383, "B/op": 1523, "allocs/op": 4, "payments/s": 936578,
	}
	if !reflect.DeepEqual(e.Metrics, want) {
		t.Fatalf("metrics = %v, want %v", e.Metrics, want)
	}
	if out.Context["pkg"] != "ripplestudy" || out.Context["cpu"] != "Test CPU" {
		t.Fatalf("context = %v", out.Context)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok x 1s\n"))); err == nil {
		t.Fatal("no error for input without benchmark lines")
	}
}

func TestParseSkipsMalformedLines(t *testing.T) {
	out := parseString(t, "BenchmarkBad notanumber 5 ns/op\nBenchmarkGood-4 7 100 ns/op\n")
	if len(out.Benchmarks) != 1 || out.Benchmarks[0].Name != "BenchmarkGood-4" {
		t.Fatalf("benchmarks = %+v", out.Benchmarks)
	}
}

// TestJSONSchemaRoundTrip pins the archived document shape: encode,
// decode, and compare — CI consumers rely on these field names.
func TestJSONSchemaRoundTrip(t *testing.T) {
	out := parseString(t, sampleOutput)
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"context"`, `"benchmarks"`, `"name"`, `"iterations"`, `"metrics"`, `"ns/op"`} {
		if !bytes.Contains(data, []byte(key)) {
			t.Errorf("encoded document missing %s: %s", key, data)
		}
	}
	var back Output
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, out) {
		t.Fatalf("round trip changed the document:\n%+v\n%+v", &back, out)
	}
}

// TestOutFileMergesExisting covers the -out path: a second run into the
// same file replaces re-measured entries, keeps absent ones, and
// appends new ones.
func TestOutFileMergesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")

	if err := run(strings.NewReader(sampleOutput), nil, path); err != nil {
		t.Fatal(err)
	}

	second := `goos: linux
cpu: Other CPU
BenchmarkStoreScan-8  20  555 ns/op
BenchmarkServeLookup-8  1000  42 ns/op
`
	if err := run(strings.NewReader(second), nil, path); err != nil {
		t.Fatal(err)
	}

	merged, err := readExisting(path)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(merged.Benchmarks))
	for i, e := range merged.Benchmarks {
		names[i] = e.Name
	}
	want := []string{"BenchmarkFigure3/parallel-8", "BenchmarkStoreScan-8", "BenchmarkServeLookup-8"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("merged names = %v, want %v", names, want)
	}
	if merged.Benchmarks[1].Metrics["ns/op"] != 555 {
		t.Fatalf("re-measured entry not replaced: %+v", merged.Benchmarks[1])
	}
	if merged.Benchmarks[0].Iterations != 92 {
		t.Fatalf("absent entry not kept: %+v", merged.Benchmarks[0])
	}
	if merged.Context["cpu"] != "Other CPU" || merged.Context["pkg"] != "ripplestudy" {
		t.Fatalf("context merge wrong: %v", merged.Context)
	}
}

// TestOutFileRejectsCorruptExisting refuses to silently clobber a file
// that is not a benchmark archive.
func TestOutFileRejectsCorruptExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader(sampleOutput), nil, path); err == nil {
		t.Fatal("no error merging into a corrupt archive")
	}
}

// TestStdoutModeUnchanged: without -out the document goes to the given
// writer and no file is touched.
func TestStdoutModeUnchanged(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &buf, ""); err != nil {
		t.Fatal(err)
	}
	var out Output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 2 {
		t.Fatalf("stdout document has %d benchmarks, want 2", len(out.Benchmarks))
	}
}

// checkString runs -check against a baseline built from baselineOut.
func checkString(t *testing.T, baselineOut, freshOut string, tolerance float64) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run(strings.NewReader(baselineOut), nil, path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := runCheck(strings.NewReader(freshOut), &buf, path, tolerance)
	return buf.String(), err
}

// TestCheckPassesWithinTolerance: a small slowdown and any improvement
// both pass; the report lists every comparison.
func TestCheckPassesWithinTolerance(t *testing.T) {
	baseline := "BenchmarkServeLookup-8  1000  100 ns/op\nBenchmarkServeIngestPage-8  100  5000 ns/op\n"
	fresh := "BenchmarkServeLookup-8  1000  110 ns/op\nBenchmarkServeIngestPage-8  100  3000 ns/op\n"
	report, err := checkString(t, baseline, fresh, 20)
	if err != nil {
		t.Fatalf("check failed within tolerance: %v\n%s", err, report)
	}
	if !strings.Contains(report, "ok: 2 benchmarks within 20%") {
		t.Fatalf("report = %q", report)
	}
}

// TestCheckFailsOnRegression: one benchmark past tolerance fails the
// whole check and is named in the error.
func TestCheckFailsOnRegression(t *testing.T) {
	baseline := "BenchmarkServeLookup-8  1000  100 ns/op\nBenchmarkServeIngestPage-8  100  5000 ns/op\n"
	fresh := "BenchmarkServeLookup-8  1000  121 ns/op\nBenchmarkServeIngestPage-8  100  5000 ns/op\n"
	report, err := checkString(t, baseline, fresh, 20)
	if err == nil {
		t.Fatalf("no error for a 21%% regression\n%s", report)
	}
	if !strings.Contains(err.Error(), "BenchmarkServeLookup") {
		t.Fatalf("error does not name the regressed benchmark: %v", err)
	}
	if !strings.Contains(report, "REGRESSED") {
		t.Fatalf("report = %q", report)
	}
}

// TestCheckMatchesAcrossCoreCounts: the -GOMAXPROCS suffix must not
// defeat the comparison when baseline and fresh run on different
// machines.
func TestCheckMatchesAcrossCoreCounts(t *testing.T) {
	baseline := "BenchmarkServeLookup-8  1000  100 ns/op\n"
	fresh := "BenchmarkServeLookup  1000  90 ns/op\n"
	report, err := checkString(t, baseline, fresh, 20)
	if err != nil {
		t.Fatalf("suffix mismatch broke the comparison: %v\n%s", err, report)
	}
	fresh = "BenchmarkServeLookup-2  1000  90 ns/op\n"
	if report, err = checkString(t, baseline, fresh, 20); err != nil {
		t.Fatalf("suffix mismatch broke the comparison: %v\n%s", err, report)
	}
}

// TestCheckNewBenchmarksNeverFail: a benchmark missing from the
// baseline is reported as skipped, and a run whose entries ALL miss the
// baseline errs (the check would be vacuous).
func TestCheckNewBenchmarksNeverFail(t *testing.T) {
	baseline := "BenchmarkServeLookup-8  1000  100 ns/op\n"
	fresh := "BenchmarkServeLookup-8  1000  100 ns/op\nBenchmarkBrandNew-8  10  999999 ns/op\n"
	report, err := checkString(t, baseline, fresh, 20)
	if err != nil {
		t.Fatalf("new benchmark failed the check: %v", err)
	}
	if !strings.Contains(report, "skip: BenchmarkBrandNew") {
		t.Fatalf("report = %q", report)
	}
	if _, err = checkString(t, baseline, "BenchmarkBrandNew-8  10  1 ns/op\n", 20); err == nil {
		t.Fatal("no error for a run with zero comparable benchmarks")
	}
}

// TestParseRecordsGomaxprocs pins the context key derived from the -N
// name suffix: 8 for an 8-core run, 1 when go test omits the suffix.
func TestParseRecordsGomaxprocs(t *testing.T) {
	if got := parseString(t, sampleOutput).Context["gomaxprocs"]; got != "8" {
		t.Fatalf("gomaxprocs = %q, want 8", got)
	}
	single := parseString(t, "BenchmarkServeIngestThroughput/workers=1  10  100 ns/op\n")
	if got := single.Context["gomaxprocs"]; got != "1" {
		t.Fatalf("gomaxprocs = %q, want 1", got)
	}
}

// TestMergeReplacesAcrossCoreCounts: re-measuring on a machine with a
// different GOMAXPROCS replaces the entry instead of duplicating it.
func TestMergeReplacesAcrossCoreCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run(strings.NewReader("BenchmarkServeLookup-8  1000  100 ns/op\n"), nil, path); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader("BenchmarkServeLookup-4  1000  90 ns/op\n"), nil, path); err != nil {
		t.Fatal(err)
	}
	merged, err := readExisting(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Benchmarks) != 1 {
		t.Fatalf("merged %d entries, want 1: %+v", len(merged.Benchmarks), merged.Benchmarks)
	}
	if e := merged.Benchmarks[0]; e.Name != "BenchmarkServeLookup-4" || e.Metrics["ns/op"] != 90 {
		t.Fatalf("entry = %+v", e)
	}
}

// TestMergeDropsStaleDedupDuplicates: an archive holding both
// "workers=1" and go test's "workers=1#01" collision entry loses the
// stale duplicate once a fresh run measures "workers=1" alone — but a
// run that still produces both keeps both.
func TestMergeDropsStaleDedupDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	collided := "BenchmarkServeIngestThroughput/workers=1  10  100 ns/op\n" +
		"BenchmarkServeIngestThroughput/workers=1#01  10  120 ns/op\n"
	if err := run(strings.NewReader(collided), nil, path); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader(collided), nil, path); err != nil {
		t.Fatal(err)
	}
	merged, err := readExisting(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Benchmarks) != 2 {
		t.Fatalf("re-measured collision collapsed: %+v", merged.Benchmarks)
	}

	fixed := "BenchmarkServeIngestThroughput/workers=1  10  95 ns/op\n"
	if err := run(strings.NewReader(fixed), nil, path); err != nil {
		t.Fatal(err)
	}
	if merged, err = readExisting(path); err != nil {
		t.Fatal(err)
	}
	if len(merged.Benchmarks) != 1 {
		t.Fatalf("stale #01 duplicate survived the deduplicated run: %+v", merged.Benchmarks)
	}
	if e := merged.Benchmarks[0]; e.Name != "BenchmarkServeIngestThroughput/workers=1" || e.Metrics["ns/op"] != 95 {
		t.Fatalf("entry = %+v", e)
	}
}

// TestCheckSkipsOversubscribedWorkers: a workers=N sweep entry with N
// beyond the fresh run's GOMAXPROCS must not gate — an oversubscribed
// pipeline measures scheduler churn — while in-budget fan-outs still
// compare.
func TestCheckSkipsOversubscribedWorkers(t *testing.T) {
	baseline := "BenchmarkServeIngestThroughput/workers=1-8  10  100 ns/op\n" +
		"BenchmarkServeIngestThroughput/workers=4-8  10  30 ns/op\n"
	// Fresh run on a single-core machine: no -N suffix, workers=4 badly
	// oversubscribed. Only workers=1 may gate.
	fresh := "BenchmarkServeIngestThroughput/workers=1  10  105 ns/op\n" +
		"BenchmarkServeIngestThroughput/workers=4  10  500 ns/op\n"
	report, err := checkString(t, baseline, fresh, 20)
	if err != nil {
		t.Fatalf("oversubscribed sweep entry failed the check: %v\n%s", err, report)
	}
	if !strings.Contains(report, "skip: BenchmarkServeIngestThroughput/workers=4 (oversubscribed") {
		t.Fatalf("report = %q", report)
	}
	if !strings.Contains(report, "ok: 1 benchmarks within 20%") {
		t.Fatalf("report = %q", report)
	}

	// On a machine with the cores to back it, workers=4 gates again.
	fresh = "BenchmarkServeIngestThroughput/workers=1-4  10  105 ns/op\n" +
		"BenchmarkServeIngestThroughput/workers=4-4  10  32 ns/op\n"
	if report, err = checkString(t, baseline, fresh, 20); err != nil {
		t.Fatalf("in-budget sweep failed: %v\n%s", err, report)
	}
	if !strings.Contains(report, "ok: 2 benchmarks within 20%") {
		t.Fatalf("report = %q", report)
	}
}

// TestCheckMissingBaseline errors instead of vacuously passing.
func TestCheckMissingBaseline(t *testing.T) {
	var buf bytes.Buffer
	err := runCheck(strings.NewReader(sampleOutput), &buf, filepath.Join(t.TempDir(), "nope.json"), 20)
	if err == nil {
		t.Fatal("no error for a missing baseline archive")
	}
}
