//go:build (linux || darwin) && !ledgerstore_nommap

package ledgerstore

import (
	"fmt"
	"os"
	"syscall"
)

// mapSegment memory-maps path read-only and returns the mapped bytes
// with their unmap function. Segments are append-only and readers
// reopen them after the writer's flush, so a private read-only mapping
// is always coherent. Empty files cannot be mapped; the caller falls
// back to ReadFile (which yields the same zero records).
//
// Build the package with -tags ledgerstore_nommap to force the portable
// ReadFile path on every open.
func mapSegment(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() // the mapping outlives the descriptor
	info, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := info.Size()
	if size == 0 {
		return nil, nil, errMmapUnavailable
	}
	if size > int64(int(^uint(0)>>1)) {
		return nil, nil, fmt.Errorf("ledgerstore: segment %s too large to map", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
