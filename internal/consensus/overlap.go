package consensus

import (
	"math/rand"
)

// UNL-overlap fork analysis. The paper notes that analyses of the Ripple
// consensus protocol ([7] Todd, [8] Armknecht et al.) "resulted in a
// modification of the protocol consisting in an increase of the
// agreement majority required to approve transactions." The underlying
// question is how much two validators' Unique Node Lists must overlap
// for the network to be fork-free: with disjoint-enough UNLs, two groups
// can each reach their internal validation quorum on *different* ledgers.
//
// SimulateUNLOverlap measures that directly: two groups of validators,
// each of size GroupSize, share an Overlap fraction of members. In a
// split round (a dispute the groups initially resolve differently), the
// exclusive members of each group sign their group's ledger and the
// shared members split between the two. A fork happens when both
// ledgers collect the quorum within their respective UNLs.

// OverlapConfig parameterizes the fork experiment.
type OverlapConfig struct {
	// GroupSize is each group's UNL size.
	GroupSize int
	// Overlap is the fraction of each UNL shared with the other group.
	Overlap float64
	// Quorum is the validation quorum (0.8 in Ripple).
	Quorum float64
	// Rounds is the number of split rounds to simulate.
	Rounds int
	// Seed drives the shared members' random tie-breaking.
	Seed int64
}

// OverlapResult reports the fork measurement.
type OverlapResult struct {
	Config OverlapConfig
	// ForkRounds counts rounds where both ledgers validated.
	ForkRounds int
	// StallRounds counts rounds where neither validated.
	StallRounds int
	// ForkRate is ForkRounds / Rounds.
	ForkRate float64
	// ForkPossible is the closed-form feasibility condition: with
	// quorum q, forks are possible iff overlap ≤ 2(1−q).
	ForkPossible bool
}

// ForkFeasible returns the closed-form condition: with each group of
// size n, shared s = overlap×n, exclusive d = n−s, a fork needs
// d + x ≥ qn and d + (s−x) ≥ qn for some split x of the shared members,
// which is satisfiable iff s ≥ 2(qn − d), i.e. overlap ≤ 2(1 − q).
// At Ripple's 80% quorum the threshold is 40%: UNLs overlapping less
// than 40% admit forks.
func ForkFeasible(overlap, quorum float64) bool {
	return overlap <= 2*(1-quorum)+1e-12
}

// SimulateUNLOverlap Monte-Carlos split rounds under the configuration.
func SimulateUNLOverlap(cfg OverlapConfig) OverlapResult {
	if cfg.GroupSize == 0 {
		cfg.GroupSize = 20
	}
	if cfg.Quorum == 0 {
		cfg.Quorum = 0.8
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 10_000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	n := cfg.GroupSize
	shared := int(cfg.Overlap*float64(n) + 0.5)
	if shared > n {
		shared = n
	}
	exclusive := n - shared
	quorum := int(cfg.Quorum*float64(n) + 0.999999)

	res := OverlapResult{Config: cfg, ForkPossible: ForkFeasible(cfg.Overlap, cfg.Quorum)}
	for r := 0; r < cfg.Rounds; r++ {
		// Each shared validator hears both proposals and follows
		// whichever reached it first: a fair coin in a symmetric split.
		votesA := 0
		for s := 0; s < shared; s++ {
			if rng.Intn(2) == 0 {
				votesA++
			}
		}
		sigA := exclusive + votesA
		sigB := exclusive + (shared - votesA)
		aValid := sigA >= quorum
		bValid := sigB >= quorum
		switch {
		case aValid && bValid:
			res.ForkRounds++
		case !aValid && !bValid:
			res.StallRounds++
		}
	}
	res.ForkRate = float64(res.ForkRounds) / float64(cfg.Rounds)
	return res
}

// OverlapSweep runs the simulation across overlap fractions and returns
// the fork rate per point — the curve showing where safety kicks in.
func OverlapSweep(groupSize int, quorum float64, overlaps []float64, rounds int, seed int64) []OverlapResult {
	out := make([]OverlapResult, 0, len(overlaps))
	for i, o := range overlaps {
		out = append(out, SimulateUNLOverlap(OverlapConfig{
			GroupSize: groupSize,
			Overlap:   o,
			Quorum:    quorum,
			Rounds:    rounds,
			Seed:      seed + int64(i),
		}))
	}
	return out
}
