package deanon

import (
	"strings"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/synth"
)

func acct(seed uint64) addr.AccountID { return addr.KeyPairFromSeed(seed).AccountID() }

func TestRoundAmountTableI(t *testing.T) {
	tests := []struct {
		v    string
		c    amount.Currency
		res  AmountRes
		want string
	}{
		// Medium strength (USD): max=10^1, avg=10^2, low=10^3.
		{"4.5", amount.USD, AmountMax, "0"},
		{"47", amount.USD, AmountMax, "50"},
		{"447", amount.USD, AmountAvg, "400"},
		{"447", amount.USD, AmountLow, "0"},
		{"1447", amount.USD, AmountLow, "1000"},
		// Powerful (BTC): max=10^-3, avg=10^-2, low=10^-1.
		{"0.0042", amount.BTC, AmountMax, "0.004"},
		{"0.0042", amount.BTC, AmountAvg, "0"},
		{"0.042", amount.BTC, AmountAvg, "0.04"},
		{"0.26", amount.BTC, AmountLow, "0.3"},
		// Weak (XRP): max=10^5, avg=10^6, low=10^7.
		{"123456", amount.XRP, AmountMax, "100000"},
		{"1234567", amount.XRP, AmountAvg, "1000000"},
		{"12345678", amount.XRP, AmountLow, "10000000"},
		// Exact keeps full precision.
		{"4.5", amount.USD, AmountExact, "4.5"},
	}
	for _, tt := range tests {
		got := RoundAmount(amount.MustParse(tt.v), tt.c, tt.res)
		if got.String() != tt.want {
			t.Errorf("RoundAmount(%s/%s, %s) = %s, want %s", tt.v, tt.c, tt.res, got, tt.want)
		}
	}
}

func TestCoarsenTime(t *testing.T) {
	// 2015-08-24 15:41:03 per the paper's example.
	ct := ledger.CloseTimeFromTime(ledger.RippleEpoch.AddDate(15, 7, 23).Add(15*3600e9 + 41*60e9 + 3e9))
	tests := []struct {
		res  TimeRes
		want string
	}{
		{TimeSeconds, "15:41:03"},
		{TimeMinutes, "15:41:00"},
		{TimeHours, "15:00:00"},
		{TimeDays, "00:00:00"},
	}
	for _, tt := range tests {
		got := CoarsenTime(ct, tt.res).String()
		if !strings.HasSuffix(got, tt.want) {
			t.Errorf("CoarsenTime(%s) = %s, want suffix %s", tt.res, got, tt.want)
		}
		if !strings.HasPrefix(got, "2015-08-24") {
			t.Errorf("CoarsenTime(%s) = %s, date changed", tt.res, got)
		}
	}
	if CoarsenTime(ct, TimeOff) != 0 {
		t.Error("TimeOff should zero the timestamp")
	}
}

func feat(sender, dest uint64, cur amount.Currency, v string, tm uint32) Features {
	return Features{
		Sender:      acct(sender),
		Destination: acct(dest),
		Currency:    cur,
		Amount:      amount.MustParse(v),
		Time:        ledger.CloseTime(tm),
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := feat(1, 2, amount.USD, "45", 1000)
	full := Resolution{Amount: AmountMax, Time: TimeSeconds, Currency: true, Destination: true}
	fp := FingerprintOf(base, full)

	// Each feature change must alter the fingerprint.
	if FingerprintOf(feat(1, 3, amount.USD, "45", 1000), full) == fp {
		t.Error("destination not in fingerprint")
	}
	if FingerprintOf(feat(1, 2, amount.EUR, "45", 1000), full) == fp {
		t.Error("currency not in fingerprint")
	}
	if FingerprintOf(feat(1, 2, amount.USD, "85", 1000), full) == fp {
		t.Error("amount not in fingerprint")
	}
	if FingerprintOf(feat(1, 2, amount.USD, "45", 2000), full) == fp {
		t.Error("time not in fingerprint")
	}
	// The sender must NOT be in the fingerprint (it is the secret).
	if FingerprintOf(feat(9, 2, amount.USD, "45", 1000), full) != fp {
		t.Error("sender leaked into fingerprint")
	}
}

func TestFingerprintRespectsRounding(t *testing.T) {
	res := Resolution{Amount: AmountMax, Time: TimeMinutes, Currency: true, Destination: true}
	// 44 and 41 both round to 40 USD at max resolution; 1000s and 1001s
	// share the minute.
	a := FingerprintOf(feat(1, 2, amount.USD, "44", 1000), res)
	b := FingerprintOf(feat(3, 2, amount.USD, "41", 1001), res)
	if a != b {
		t.Error("observations equal after coarsening must share a fingerprint")
	}
}

func TestFingerprintOffFeaturesIgnored(t *testing.T) {
	res := Resolution{Amount: AmountOff, Time: TimeOff, Currency: false, Destination: true}
	a := FingerprintOf(feat(1, 2, amount.USD, "44", 1000), res)
	b := FingerprintOf(feat(3, 2, amount.EUR, "9999", 555), res)
	if a != b {
		t.Error("off features leaked into fingerprint")
	}
}

func TestStudyIGComputation(t *testing.T) {
	full := Resolution{Amount: AmountExact, Time: TimeSeconds, Currency: true, Destination: true}
	coarse := Resolution{Amount: AmountOff, Time: TimeOff, Currency: true, Destination: false}
	s := NewStudy([]Resolution{full, coarse})
	// Three payments: two share (currency) only; all unique at full res.
	s.Observe(feat(1, 2, amount.USD, "10", 1))
	s.Observe(feat(3, 4, amount.USD, "20", 2))
	s.Observe(feat(5, 6, amount.EUR, "30", 3))
	res := s.Results()
	if res[0].IG != 1.0 {
		t.Errorf("full-res IG = %v, want 1.0", res[0].IG)
	}
	// Currency-only: USD appears twice (not unique), EUR once.
	if got := res[1].IG; got < 0.33 || got > 0.34 {
		t.Errorf("currency-only IG = %v, want 1/3", got)
	}
	if s.Payments() != 3 {
		t.Errorf("payments = %d", s.Payments())
	}
}

func TestFromTransaction(t *testing.T) {
	p := &ledger.Page{Header: ledger.PageHeader{CloseTime: 777}}
	pay := &ledger.Tx{
		Type: ledger.TxPayment, Account: acct(1), Destination: acct(2),
		Amount: amount.MustAmount("4.5/USD"),
	}
	okMeta := &ledger.TxMeta{Result: ledger.ResultSuccess}
	f, ok := FromTransaction(p, pay, okMeta)
	if !ok {
		t.Fatal("successful payment rejected")
	}
	if f.Time != 777 || f.Sender != acct(1) || f.Currency != amount.USD {
		t.Errorf("features = %+v", f)
	}
	if _, ok := FromTransaction(p, pay, &ledger.TxMeta{Result: ledger.ResultPathDry}); ok {
		t.Error("failed payment accepted")
	}
	trust := &ledger.Tx{Type: ledger.TxTrustSet, Account: acct(1)}
	if _, ok := FromTransaction(p, trust, okMeta); ok {
		t.Error("non-payment accepted")
	}
}

func TestIndexLatteAttack(t *testing.T) {
	// The paper's running example: Alice overhears Bob's 4.5 USD latte.
	res := Resolution{Amount: AmountMax, Time: TimeSeconds, Currency: true, Destination: true}
	idx := NewIndex(res)
	bob, bar := acct(10), acct(20)
	latte := Features{
		Sender: bob, Destination: bar, Currency: amount.USD,
		Amount: amount.MustParse("4.5"), Time: 50000,
	}
	idx.Add(latte)
	// Background traffic at other times/destinations.
	for i := uint64(0); i < 100; i++ {
		idx.Add(feat(100+i, 200+i, amount.USD, "4.5", uint32(60000+i)))
	}
	// Alice's observation: she does not know the sender.
	observation := latte
	observation.Sender = addr.AccountID{}
	got := idx.Candidates(observation)
	if len(got) != 1 || got[0] != bob {
		t.Fatalf("candidates = %v, want exactly Bob", got)
	}
	if idx.Resolution() != res {
		t.Error("resolution accessor broken")
	}
}

func TestIndexDeduplicatesSenders(t *testing.T) {
	res := Resolution{Amount: AmountMax, Time: TimeDays, Currency: true, Destination: true}
	idx := NewIndex(res)
	// Bob buys the same latte twice on the same day: still one
	// candidate.
	for i := uint32(0); i < 2; i++ {
		idx.Add(feat(1, 2, amount.USD, "4.5", 1000+i))
	}
	got := idx.Candidates(feat(0, 2, amount.USD, "4.5", 1500))
	if len(got) != 1 {
		t.Fatalf("candidates = %d, want 1 (deduplicated)", len(got))
	}
}

func TestFigure3RowsWellFormed(t *testing.T) {
	if len(Figure3Rows) != 10 {
		t.Fatalf("Figure3Rows = %d rows, want 10", len(Figure3Rows))
	}
	if Figure3Rows[0].String() != "<Am;Tsc;C;D>" {
		t.Errorf("row 1 = %s", Figure3Rows[0])
	}
	if Figure3Rows[9].String() != "<Al;Tdy;-;->" {
		t.Errorf("row 10 = %s", Figure3Rows[9])
	}
}

func TestTableISpec(t *testing.T) {
	rows := TableISpec()
	if len(rows) != 3 {
		t.Fatalf("TableISpec rows = %d, want 3", len(rows))
	}
	if !strings.Contains(rows[0], "10^-3") {
		t.Errorf("powerful row = %q", rows[0])
	}
	if !strings.Contains(rows[2], "10^5") {
		t.Errorf("weak row = %q", rows[2])
	}
}

// TestFigure3ShapeOnSyntheticHistory is the core end-to-end check: over
// a generated history, the IG ordering and anchor points of Figure 3
// must reproduce.
func TestFigure3ShapeOnSyntheticHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 20k-payment history")
	}
	study := NewStudy(Figure3Rows)
	_, err := synth.Generate(synth.Config{
		Payments:       20_000,
		Seed:           42,
		SkipSignatures: true,
	}, func(p *ledger.Page) error {
		for i := range p.Txs {
			if f, ok := FromTransaction(p, p.Txs[i], p.Metas[i]); ok {
				study.Observe(f)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res := study.Results()
	ig := make(map[string]float64, len(res))
	for _, r := range res {
		ig[r.Resolution.String()] = r.IG
		t.Logf("%-16s IG = %.4f", r.Resolution, r.IG)
	}

	// Anchor 1: full resolution de-anonymizes nearly everything
	// (paper: 99.83%).
	if got := ig["<Am;Tsc;C;D>"]; got < 0.95 {
		t.Errorf("IG<Am;Tsc;C;D> = %.4f, want ≥0.95", got)
	}
	// Anchor 2: dropping the currency barely matters (paper: equal).
	if full, noC := ig["<Am;Tsc;C;D>"], ig["<Am;Tsc;-;D>"]; full-noC > 0.02 {
		t.Errorf("dropping C changed IG too much: %.4f -> %.4f", full, noC)
	}
	// Anchor 3: the timestamp is the strongest feature — removing it
	// hurts far more than removing the amount (paper: 48.84 vs 89.86).
	if noT, noA := ig["<Am;-;C;D>"], ig["<-;Tsc;C;D>"]; noT >= noA {
		t.Errorf("IG without T (%.4f) should be well below IG without A (%.4f)", noT, noA)
	}
	if got := ig["<Am;-;C;D>"]; got < 0.25 || got > 0.75 {
		t.Errorf("IG<Am;-;C;D> = %.4f, want ≈0.5 (coin toss, paper 48.84%%)", got)
	}
	// Anchor 4: the minimum-information row collapses (paper: 1.28%).
	if got := ig["<Al;Tdy;-;->"]; got > 0.10 {
		t.Errorf("IG<Al;Tdy;-;-> = %.4f, want near zero", got)
	}
	// Anchor 5: monotone coarsening — each Figure 3 degradation row is
	// no better than full resolution.
	full := ig["<Am;Tsc;C;D>"]
	for _, key := range []string{"<Am;Tmn;C;D>", "<Aa;Thr;C;D>", "<Al;Tdy;C;D>"} {
		if ig[key] > full+1e-9 {
			t.Errorf("coarser %s has higher IG (%.4f) than full (%.4f)", key, ig[key], full)
		}
	}
	// And the coarsening ladder itself is monotone.
	if !(ig["<Am;Tmn;C;D>"] >= ig["<Aa;Thr;C;D>"] && ig["<Aa;Thr;C;D>"] >= ig["<Al;Tdy;C;D>"]) {
		t.Errorf("resolution ladder not monotone: %.4f, %.4f, %.4f",
			ig["<Am;Tmn;C;D>"], ig["<Aa;Thr;C;D>"], ig["<Al;Tdy;C;D>"])
	}
}
