package nodestore

import (
	"container/list"

	"ripplestudy/internal/ledger"
)

// Cache is an LRU read-through layer over any Getter: point lookups
// against a file-backed store (state proofs, interactive queries) hit
// memory for the working set instead of re-searching the batch files.
// Only successful reads are cached; ErrNotFound is not negative-cached,
// so a miss stays cheap to retry after more batches are layered in.
//
// Cache is not safe for concurrent use; wrap it per reader or guard it
// like the store it fronts.
type Cache struct {
	inner   Getter
	max     int
	ll      *list.List
	entries map[ledger.Hash]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	h    ledger.Hash
	data []byte
}

// NewCache wraps inner with an LRU of at most maxEntries records.
func NewCache(inner Getter, maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{
		inner:   inner,
		max:     maxEntries,
		ll:      list.New(),
		entries: make(map[ledger.Hash]*list.Element),
	}
}

// Get implements Getter.
func (c *Cache) Get(h ledger.Hash) ([]byte, error) {
	if el, ok := c.entries[h]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).data, nil
	}
	data, err := c.inner.Get(h)
	if err != nil {
		return nil, err
	}
	c.misses++
	c.entries[h] = c.ll.PushFront(&cacheEntry{h: h, data: data})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).h)
	}
	return data, nil
}

// Len returns the number of cached records.
func (c *Cache) Len() int { return c.ll.Len() }

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }
