// Package ledgerstore persists closed ledger pages to disk in an
// append-only, segmented format and streams them back without loading the
// whole history in memory. It is the repository's stand-in for the
// paper's "more than 500GB worth of data" downloaded from Ripple's public
// ledger: every analysis consumes history by streaming a store.
//
// On-disk layout: a directory of segment files named
// "segment-NNNNNN.rlst", each a concatenation of framed records:
//
//	u32 payload length ∥ payload (ledger.Page encoding) ∥ u32 CRC-32
//
// The CRC detects corruption; a truncated final record (e.g. after a
// crash) is tolerated on read and reported via Stats.
package ledgerstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ripplestudy/internal/ledger"
)

const (
	segmentPrefix = "segment-"
	segmentSuffix = ".rlst"

	// DefaultSegmentBytes is the rollover threshold for segment files.
	DefaultSegmentBytes = 8 << 20

	// maxRecordBytes bounds a single record's claimed payload length.
	// A corrupted length prefix must surface as ErrCorrupted, not as a
	// multi-gigabyte allocation.
	maxRecordBytes = 1 << 26
)

// ErrCorrupted is returned when a record's checksum does not match.
var ErrCorrupted = errors.New("ledgerstore: corrupted record")

// Option configures a Store.
type Option func(*Store)

// WithSegmentBytes sets the segment rollover threshold.
func WithSegmentBytes(n int64) Option {
	return func(s *Store) { s.segmentBytes = n }
}

// Store is an append-only ledger page store rooted at a directory. A
// Store is not safe for concurrent use; writers own it exclusively.
type Store struct {
	dir          string
	segmentBytes int64

	cur     *os.File
	curBuf  *bufio.Writer
	curSize int64
	nextSeg int

	// indexReport records the seqindex sidecar's health as observed by
	// the last SegmentRanges call (see IndexReport).
	indexReport IndexLoadReport
}

// Create initializes a new store in dir, which must be empty or absent.
func Create(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledgerstore: creating %s: %w", dir, err)
	}
	existing, err := segmentFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(existing) > 0 {
		return nil, fmt.Errorf("ledgerstore: %s already contains %d segments", dir, len(existing))
	}
	s := &Store{dir: dir, segmentBytes: DefaultSegmentBytes, nextSeg: 1}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Open opens an existing store for reading and further appends.
func Open(dir string, opts ...Option) (*Store, error) {
	segs, err := segmentFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("ledgerstore: %s contains no segments", dir)
	}
	s := &Store{dir: dir, segmentBytes: DefaultSegmentBytes, nextSeg: len(segs) + 1}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// segmentFiles lists segment files in dir in ascending numeric order.
func segmentFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ledgerstore: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, segmentPrefix) && strings.HasSuffix(name, segmentSuffix) {
			names = append(names, filepath.Join(dir, name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Append writes a page at the end of the store, rolling to a new segment
// when the current one exceeds the threshold.
func (s *Store) Append(p *ledger.Page) error {
	if s.cur == nil || s.curSize >= s.segmentBytes {
		if err := s.roll(); err != nil {
			return err
		}
	}
	payload := p.Encode(nil)
	var frame [4]byte
	binary.BigEndian.PutUint32(frame[:], uint32(len(payload)))
	if _, err := s.curBuf.Write(frame[:]); err != nil {
		return fmt.Errorf("ledgerstore: writing frame: %w", err)
	}
	if _, err := s.curBuf.Write(payload); err != nil {
		return fmt.Errorf("ledgerstore: writing payload: %w", err)
	}
	binary.BigEndian.PutUint32(frame[:], crc32.ChecksumIEEE(payload))
	if _, err := s.curBuf.Write(frame[:]); err != nil {
		return fmt.Errorf("ledgerstore: writing checksum: %w", err)
	}
	s.curSize += int64(len(payload)) + 8
	return nil
}

func (s *Store) roll() error {
	if err := s.closeCurrent(); err != nil {
		return err
	}
	name := filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", segmentPrefix, s.nextSeg, segmentSuffix))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ledgerstore: creating segment: %w", err)
	}
	s.cur = f
	s.curBuf = bufio.NewWriterSize(f, 1<<16)
	s.curSize = 0
	s.nextSeg++
	return nil
}

func (s *Store) closeCurrent() error {
	if s.cur == nil {
		return nil
	}
	if err := s.curBuf.Flush(); err != nil {
		return fmt.Errorf("ledgerstore: flushing segment: %w", err)
	}
	if err := s.cur.Close(); err != nil {
		return fmt.Errorf("ledgerstore: closing segment: %w", err)
	}
	s.cur, s.curBuf = nil, nil
	return nil
}

// Close flushes and closes any open segment. The store may still be read
// afterwards.
func (s *Store) Close() error { return s.closeCurrent() }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Pages streams every stored page, in append order, to fn. Iteration
// stops early if fn returns a non-nil error, which is propagated. A
// truncated final record terminates iteration silently (crash-tolerant
// tail); a checksum mismatch returns ErrCorrupted. Pages are decoded
// onto the heap, so fn may retain them; scans that don't need that use
// PagesArena or ScanPayments and skip the per-page allocations.
func (s *Store) Pages(fn func(*ledger.Page) error) error {
	if err := s.closeCurrent(); err != nil {
		return err
	}
	segs, err := segmentFiles(s.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := streamSegment(seg, fn); err != nil {
			return err
		}
	}
	return nil
}

// PagesArena streams every stored page, in append order, decoding
// through the caller's arena: each page is valid only until fn returns
// (the next decode resets the arena). A nil arena allocates one.
func (s *Store) PagesArena(a *ledger.PageArena, fn func(*ledger.Page) error) error {
	if err := s.closeCurrent(); err != nil {
		return err
	}
	segs, err := segmentFiles(s.dir)
	if err != nil {
		return err
	}
	if a == nil {
		a = new(ledger.PageArena)
	}
	for _, seg := range segs {
		if err := streamSegmentArena(seg, a, fn); err != nil {
			return err
		}
	}
	return nil
}

// ErrStop is a sentinel fn can return from Pages/Transactions to stop
// iteration without Pages reporting an error.
var ErrStop = errors.New("ledgerstore: stop iteration")

// Transactions streams every (page, tx, meta) triple, in ledger order.
func (s *Store) Transactions(fn func(*ledger.Page, *ledger.Tx, *ledger.TxMeta) error) error {
	err := s.Pages(func(p *ledger.Page) error {
		for i := range p.Txs {
			if err := fn(p, p.Txs[i], p.Metas[i]); err != nil {
				return err
			}
		}
		return nil
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// Stats summarizes a store's contents.
type Stats struct {
	Pages        int
	Transactions int
	Payments     int
	FirstSeq     uint64
	LastSeq      uint64
	Segments     int
	Bytes        int64
	// Index reports the health of the seqindex.json sidecar: a corrupt
	// or stale sidecar is rebuilt transparently but surfaced here.
	Index IndexLoadReport
}

// Stats scans the store and reports its contents. The scan is a
// zero-copy walk (headers and per-transaction type bytes only), so it
// validates framing and checksums but not every field of every record —
// VerifyIntegrity does the full decode.
func (s *Store) Stats() (Stats, error) {
	var st Stats
	if err := s.closeCurrent(); err != nil {
		return st, err
	}
	segs, err := segmentFiles(s.dir)
	if err != nil {
		return st, err
	}
	st.Segments = len(segs)
	for _, seg := range segs {
		info, err := os.Stat(seg)
		if err != nil {
			return st, fmt.Errorf("ledgerstore: stat %s: %w", seg, err)
		}
		st.Bytes += info.Size()
	}
	_, st.Index = loadSeqIndex(s.dir)
	for _, seg := range segs {
		err := forEachRecord(seg, func(payload []byte) error {
			used, err := ledger.VisitTxs(payload, func(_ *ledger.PageHeader, v *ledger.TxView) error {
				st.Transactions++
				if v.Type() == ledger.TxPayment {
					st.Payments++
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("ledgerstore: scanning page in %s: %w", seg, err)
			}
			if used != len(payload) {
				return fmt.Errorf("%w: %d trailing bytes in record", ErrCorrupted, len(payload)-used)
			}
			h, _, err := ledger.DecodeHeader(payload)
			if err != nil {
				return err
			}
			if st.Pages == 0 {
				st.FirstSeq = h.Sequence
			}
			st.LastSeq = h.Sequence
			st.Pages++
			return nil
		})
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// IntegrityReport summarizes a full store verification.
type IntegrityReport struct {
	Pages int
	// ChainOK is false when a page's parent hash does not match its
	// predecessor.
	ChainOK bool
	// BrokenAt holds the sequence of the first page with broken
	// linkage (when ChainOK is false).
	BrokenAt uint64
	// PageErrors counts pages whose internal consistency check
	// (tx-set digest, meta parity) failed.
	PageErrors int
}

// VerifyIntegrity streams the whole store, checking record checksums
// (via Pages), per-page internal consistency, and parent-hash linkage.
// Checksum corruption surfaces as an error; structural problems are
// reported in the IntegrityReport.
func (s *Store) VerifyIntegrity() (IntegrityReport, error) {
	rep := IntegrityReport{ChainOK: true}
	var prev ledger.Hash
	first := true
	err := s.Pages(func(p *ledger.Page) error {
		rep.Pages++
		if err := p.Validate(); err != nil {
			rep.PageErrors++
		}
		if !first && rep.ChainOK && p.Header.ParentHash != prev {
			rep.ChainOK = false
			rep.BrokenAt = p.Header.Sequence
		}
		prev = p.Header.Hash()
		first = false
		return nil
	})
	return rep, err
}

// ExportJSON streams the store as newline-delimited JSON, one page per
// line — the interchange format for external tooling.
func (s *Store) ExportJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	if err := s.Pages(func(p *ledger.Page) error { return enc.Encode(p) }); err != nil {
		return err
	}
	return bw.Flush()
}
