// Monitor: the paper's §IV data collection, live over TCP. The example
// starts an in-process consensus network for a scaled-down December 2015
// period, serves its validation stream on an ephemeral port, subscribes
// a collection client to it — exactly like the authors' rippled server —
// and prints the Figure 2 table it gathers.
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/monitor"
	"ripplestudy/internal/netstream"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const rounds = 400
	spec := consensus.December2015(rounds)

	srv, err := netstream.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("validation stream on %s (%s, %d rounds)\n", srv.Addr(), spec.Name, rounds)

	// The collection server: dial the stream and fold every event into
	// a Collector, as the paper's ad-hoc Ripple server did.
	client, err := netstream.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer client.Close()

	col := monitor.NewCollector()
	for _, s := range spec.Specs {
		if s.Label != "" {
			col.SetLabel(addr.KeyPairFromSeed(s.Seed).NodeID(), s.Label)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := client.Events(func(ev consensus.Event) error {
			col.Record(ev)
			return nil
		}); err != nil {
			log.Println("collector:", err)
		}
	}()

	// The "network": run the consensus rounds, publishing every event.
	net := consensus.NewNetwork(consensus.Config{Seed: 2015, StartTime: spec.Start}, spec.Specs)
	net.Subscribe(srv.Publish)
	for i := 1; i <= rounds; i++ {
		if _, err := net.RunRound(nil); err != nil {
			return err
		}
	}
	srv.Flush()
	srv.Close() // EOF tells the collector the period ended
	wg.Wait()

	fmt.Printf("collected %d events over TCP\n\n", col.Events())
	rep := col.Report(spec.Name)
	if err := rep.WriteTable(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\n%d validators observed; %d actively validating; %d signing pages that never validate\n",
		len(rep.Validators), rep.ActiveCount(0.5), rep.ZeroValidCount())
	fmt.Println("\nThe handful of active validators is the paper's §IV robustness concern:")
	fmt.Println("compromising them would endanger the whole system.")
	return nil
}
