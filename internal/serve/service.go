package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/ledgerstore"
	"ripplestudy/internal/netstream"
	"ripplestudy/internal/replay"
)

// Options tunes a Service. The zero value picks defaults suitable for
// tests and laptop-scale serving.
type Options struct {
	// QueueSize bounds each view's inbox (default 1024).
	QueueSize int
	// PublishBatch is the most updates a view applies between epoch
	// publishes; a view also publishes whenever its inbox runs dry
	// (default 64).
	PublishBatch int
	// NonBlocking switches ingest fan-out from backpressure (lossless;
	// the differential-test configuration) to drop-on-full
	// (load-shedding, counted per view and in DroppedEvents).
	NonBlocking bool
	// MaxConcurrent bounds in-flight HTTP requests (default 64).
	MaxConcurrent int
	// AdmitWait is how long a request waits for an admission slot
	// before being shed with 503 (default 2s).
	AdmitWait time.Duration
	// LatencyWindow is the per-endpoint latency sample window behind
	// the /metrics quantiles (default 512).
	LatencyWindow int
	// ValidatorLabels maps node IDs to display labels (domains) for the
	// Figure 2 view, like monitor.Collector.SetLabel.
	ValidatorLabels map[addr.NodeID]string
}

func (o Options) withDefaults() Options {
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.PublishBatch <= 0 {
		o.PublishBatch = 64
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.AdmitWait <= 0 {
		o.AdmitWait = 2 * time.Second
	}
	if o.LatencyWindow <= 0 {
		o.LatencyWindow = 512
	}
	return o
}

// ErrClosed is returned by ingest entry points after Close.
var ErrClosed = errors.New("serve: service closed")

// Service is the live query-serving layer: one ingestion front door
// fanning out to single-writer materialized views, plus the query
// surface (snapshot accessors and the HTTP API in http.go).
type Service struct {
	opts    Options
	metrics *metricsSet

	tallyW *viewWorker
	fpW    *viewWorker
	ecoW   *viewWorker
	views  []*viewWorker

	tallySnap atomic.Pointer[TallySnapshot]
	fpSnap    atomic.Pointer[FingerprintSnapshot]
	ecoSnap   atomic.Pointer[EcosystemSnapshot]

	ingestedEvents atomic.Uint64
	ingestedPages  atomic.Uint64
	undecodable    atomic.Uint64
	streamLastSeq  atomic.Uint64
	lastIngestNano atomic.Int64

	inflight atomic.Int64
	rejected atomic.Uint64
	admit    chan struct{}

	mu     sync.RWMutex // guards closed against in-flight ingests
	closed bool
}

// NewService builds the views and starts their writer goroutines.
func NewService(opts Options) *Service {
	opts = opts.withDefaults()
	s := &Service{
		opts:    opts,
		metrics: newMetricsSet(opts.LatencyWindow),
		admit:   make(chan struct{}, opts.MaxConcurrent),
	}

	tally := newTallyState(opts.ValidatorLabels)
	s.tallyW = newViewWorker("fig2_tally", opts.QueueSize, opts.PublishBatch, !opts.NonBlocking,
		func(u update) { tally.apply(u.ev) },
		func(epoch uint64) { s.tallySnap.Store(tally.snapshot(epoch, seqOf(s.tallyW))) })

	fp := newFingerprintState()
	s.fpW = newViewWorker("fig3_fingerprints", opts.QueueSize, opts.PublishBatch, !opts.NonBlocking,
		func(u update) { fp.apply(u.page) },
		func(epoch uint64) { s.fpSnap.Store(fp.snapshot(epoch, seqOf(s.fpW))) })

	eco := newEcosystemState()
	s.ecoW = newViewWorker("fig4to6_ecosystem", opts.QueueSize, opts.PublishBatch, !opts.NonBlocking,
		func(u update) { eco.apply(u.page) },
		func(epoch uint64) { s.ecoSnap.Store(eco.snapshot(epoch, seqOf(s.ecoW))) })

	s.views = []*viewWorker{s.tallyW, s.fpW, s.ecoW}
	return s
}

// seqOf reads a worker's applied ledger sequence, tolerating the
// bootstrap publish that runs before the worker pointer is assigned.
func seqOf(w *viewWorker) uint64 {
	if w == nil {
		return 0
	}
	return w.appliedSeq.Load()
}

// IngestEvent folds one validation-stream event into the views: every
// well-formed event feeds the Figure 2 tally, and ledger-close events
// carrying a page payload feed the page views. An undecodable page
// payload is quarantined (counted in DroppedEvents) without losing the
// close event itself.
func (s *Service) IngestEvent(ev consensus.Event) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.noteIngest(ev.StreamSeq)
	s.ingestedEvents.Add(1)

	var page *ledger.Page
	if ev.Kind == consensus.EventLedgerClosed && len(ev.PageData) > 0 {
		p, err := ev.Page()
		if err != nil {
			s.undecodable.Add(1)
		} else {
			page = p
		}
	}
	u := update{ev: ev, page: page}
	s.tallyW.offer(u)
	if page != nil {
		s.ingestedPages.Add(1)
		s.fpW.offer(u)
		s.ecoW.offer(u)
	}
	return nil
}

// IngestPage folds one sealed page into the page views — the backfill
// path (no validation events, so the Figure 2 view is untouched).
func (s *Service) IngestPage(p *ledger.Page) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.noteIngest(0)
	s.ingestedPages.Add(1)
	u := update{page: p}
	s.fpW.offer(u)
	s.ecoW.offer(u)
	return nil
}

func (s *Service) noteIngest(streamSeq uint64) {
	s.lastIngestNano.Store(time.Now().UnixNano())
	if streamSeq > 0 {
		for {
			cur := s.streamLastSeq.Load()
			if streamSeq <= cur || s.streamLastSeq.CompareAndSwap(cur, streamSeq) {
				return
			}
		}
	}
}

// Backfill streams a closed history into the page views, in order.
func (s *Service) Backfill(ctx context.Context, src replay.Source) error {
	return src.Pages(func(p *ledger.Page) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return s.IngestPage(p)
	})
}

// BackfillStore is Backfill over a ledgerstore with segment-parallel
// decoding: up to workers goroutines decode pages concurrently and feed
// the views' inboxes. Pages interleave across segments, but every view
// statistic is order-insensitive, so the result is identical to a
// sequential backfill.
//
// This path deliberately uses PagesParallel (heap-decoded pages), not
// the arena-decoding scan: IngestPage queues each page into the view
// workers' inboxes and returns before they consume it, so pages are
// retained past the callback — exactly what the arena recycling
// contract forbids.
func (s *Service) BackfillStore(ctx context.Context, store *ledgerstore.Store, workers int) error {
	return store.PagesParallel(ctx, workers, func(_ int, p *ledger.Page) error {
		return s.IngestPage(p)
	})
}

// Follow subscribes to a live validation stream through a
// netstream.ResilientClient and ingests every event until the context
// is cancelled or the stream ends. It returns the client's final
// counters alongside any terminal error.
func (s *Service) Follow(ctx context.Context, addr string, opts netstream.ResilientOptions) (netstream.ClientStats, error) {
	client := netstream.NewResilientClient(addr, opts)
	err := client.Run(ctx, func(ev consensus.Event) error {
		if ierr := s.IngestEvent(ev); ierr != nil {
			return netstream.ErrStop
		}
		return nil
	})
	if errors.Is(err, context.Canceled) {
		err = nil
	}
	return client.Stats(), err
}

// Tally returns the current Figure 2 snapshot.
func (s *Service) Tally() *TallySnapshot { return s.tallySnap.Load() }

// Fingerprints returns the current Figure 3 / lookup snapshot.
func (s *Service) Fingerprints() *FingerprintSnapshot { return s.fpSnap.Load() }

// Ecosystem returns the current Figures 4–6 snapshot.
func (s *Service) Ecosystem() *EcosystemSnapshot { return s.ecoSnap.Load() }

// ViewHealth is one view's ingestion status.
type ViewHealth struct {
	Name          string `json:"name"`
	Epoch         uint64 `json:"epoch"`
	AppliedSeq    uint64 `json:"applied_seq"`
	AppliedEvents uint64 `json:"applied_events"`
	Lag           uint64 `json:"ingest_lag_events"`
	Dropped       uint64 `json:"dropped_events"`
}

// HealthReport summarizes the service for /healthz.
type HealthReport struct {
	Status         string        `json:"status"`
	IngestedEvents uint64        `json:"ingested_events"`
	IngestedPages  uint64        `json:"ingested_pages"`
	DroppedEvents  uint64        `json:"dropped_events"`
	StreamLastSeq  uint64        `json:"stream_last_seq"`
	IngestIdle     time.Duration `json:"ingest_idle_ns"`
	Views          []ViewHealth  `json:"views"`
}

// Health reports the service's ingestion state. Status is "ok" while
// nothing has been dropped, "degraded" otherwise.
func (s *Service) Health() HealthReport {
	h := HealthReport{
		Status:         "ok",
		IngestedEvents: s.ingestedEvents.Load(),
		IngestedPages:  s.ingestedPages.Load(),
		StreamLastSeq:  s.streamLastSeq.Load(),
	}
	if last := s.lastIngestNano.Load(); last > 0 {
		h.IngestIdle = time.Since(time.Unix(0, last))
	}
	dropped := s.undecodable.Load()
	for _, w := range s.views {
		dropped += w.dropped.Load()
		h.Views = append(h.Views, ViewHealth{
			Name:          w.name,
			Epoch:         w.epoch.Load(),
			AppliedSeq:    w.appliedSeq.Load(),
			AppliedEvents: w.applied.Load(),
			Lag:           w.lag(),
			Dropped:       w.dropped.Load(),
		})
	}
	h.DroppedEvents = dropped
	if dropped > 0 {
		h.Status = "degraded"
	}
	return h
}

// Drain blocks until every view has applied everything offered so far
// and published it, or the context expires — the barrier differential
// tests and graceful shutdown use. Ingestion may continue concurrently;
// Drain only guarantees the offers that happened before the call are
// visible.
func (s *Service) Drain(ctx context.Context) error {
	target := make([]uint64, len(s.views))
	for i, w := range s.views {
		target[i] = w.offered.Load()
	}
	for {
		done := true
		for i, w := range s.views {
			// Sealed (published) plus dropped must cover everything
			// offered before the call; dropped updates never publish.
			if w.sealed.Load()+w.dropped.Load() < target[i] {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %w", ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// Close stops ingestion, drains every view inbox, publishes the final
// epochs, and stops the writer goroutines. Queries keep working against
// the final snapshots afterwards.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, w := range s.views {
		w.close()
	}
}
