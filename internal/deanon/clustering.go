package deanon

import (
	"sort"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/ledger"
)

// Account clustering, after the paper's §D observation: "both users have
// been 'activated' (i.e. received their first XRP payment) by a third
// Ripple user known as ~akhavr ... This suggests a possible connection
// between ~akhavr and the 2 most active nodes." Moreno-Sanchez et al.
// (the paper's [10]) generalize such linkings into clustering heuristics;
// this implementation provides the activation heuristic: accounts first
// funded by the same (non-faucet) account likely belong to one entity.

// Activation records who sent an account its first XRP payment.
type Activation struct {
	Account   addr.AccountID
	Activator addr.AccountID
	Time      ledger.CloseTime
}

// Clusterer streams a history and groups accounts by their activator.
type Clusterer struct {
	firstFunder map[addr.AccountID]addr.AccountID
	firstTime   map[addr.AccountID]ledger.CloseTime
	// excluded activators (faucets/exchanges like ACCOUNT_ZERO) whose
	// funding fan-out says nothing about common ownership.
	excluded map[addr.AccountID]bool
}

// NewClusterer creates a clusterer. ACCOUNT_ZERO is excluded by default:
// it activates everyone (the genesis distribution), so clustering on it
// would merge the whole network.
func NewClusterer(exclude ...addr.AccountID) *Clusterer {
	c := &Clusterer{
		firstFunder: make(map[addr.AccountID]addr.AccountID),
		firstTime:   make(map[addr.AccountID]ledger.CloseTime),
		excluded:    map[addr.AccountID]bool{addr.AccountZero: true},
	}
	for _, a := range exclude {
		c.excluded[a] = true
	}
	return c
}

// Exclude marks an activator as a known faucet/exchange.
func (c *Clusterer) Exclude(a addr.AccountID) { c.excluded[a] = true }

// Page folds one ledger page into the activation records.
func (c *Clusterer) Page(p *ledger.Page) error {
	for i, tx := range p.Txs {
		if tx.Type != ledger.TxPayment || !p.Metas[i].Result.Succeeded() {
			continue
		}
		if !tx.Amount.Currency.IsXRP() {
			continue
		}
		if _, seen := c.firstFunder[tx.Destination]; seen {
			continue
		}
		c.firstFunder[tx.Destination] = tx.Account
		c.firstTime[tx.Destination] = p.Header.CloseTime
	}
	return nil
}

// ActivationOf returns who activated the account, if observed.
func (c *Clusterer) ActivationOf(a addr.AccountID) (Activation, bool) {
	f, ok := c.firstFunder[a]
	if !ok {
		return Activation{}, false
	}
	return Activation{Account: a, Activator: f, Time: c.firstTime[a]}, true
}

// Cluster is a set of accounts sharing a (non-excluded) activator.
type Cluster struct {
	Activator addr.AccountID
	Accounts  []addr.AccountID
}

// Clusters returns all activation clusters with at least minSize
// members, largest first. Accounts within a cluster are sorted.
func (c *Clusterer) Clusters(minSize int) []Cluster {
	byActivator := make(map[addr.AccountID][]addr.AccountID)
	for account, funder := range c.firstFunder {
		if c.excluded[funder] {
			continue
		}
		byActivator[funder] = append(byActivator[funder], account)
	}
	out := make([]Cluster, 0, len(byActivator))
	for activator, accounts := range byActivator {
		if len(accounts) < minSize {
			continue
		}
		sort.Slice(accounts, func(i, j int) bool { return accounts[i].Less(accounts[j]) })
		out = append(out, Cluster{Activator: activator, Accounts: accounts})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Accounts) != len(out[j].Accounts) {
			return len(out[i].Accounts) > len(out[j].Accounts)
		}
		return out[i].Activator.Less(out[j].Activator)
	})
	return out
}

// SameEntity reports whether the heuristic links a and b: they share a
// non-excluded activator, or one activated the other.
func (c *Clusterer) SameEntity(a, b addr.AccountID) bool {
	fa, oka := c.firstFunder[a]
	fb, okb := c.firstFunder[b]
	if oka && fa == b && !c.excluded[b] {
		return true
	}
	if okb && fb == a && !c.excluded[a] {
		return true
	}
	return oka && okb && fa == fb && !c.excluded[fa]
}

// MergeHistories returns, for a de-anonymized account, the full set of
// accounts the heuristic attributes to the same entity — what an
// attacker gains beyond the single recovered wallet.
func (c *Clusterer) MergeHistories(a addr.AccountID) []addr.AccountID {
	out := []addr.AccountID{a}
	f, ok := c.firstFunder[a]
	if !ok || c.excluded[f] {
		return out
	}
	out = append(out, f)
	for account, funder := range c.firstFunder {
		if funder == f && account != a {
			out = append(out, account)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
