// Package txq is the online payment front door: an admission-controlled
// transaction queue feeding the optimistic parallel planner, plus the
// ripple_path_find-style quote surface with a read-set-invalidated plan
// cache. It turns the offline replay engine (pathfind + payment) into a
// serving subsystem that accepts live submissions and quote queries
// under load.
//
// The queue orders work the way rippled's TxQ does: strict per-account
// sequence ordering (a later sequence never applies before an earlier
// one, whatever its fee), with fee escalation ACROSS accounts — the
// account whose head transaction pays the highest fee drains first, ties
// broken by arrival so equal-fee traffic stays FIFO. Admission is a
// bounded depth with either backpressure (Submit waits for space) or
// load-shedding (Submit fails fast), both accounted.
package txq

import (
	"container/heap"
	"sync"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
)

// queuedTx is one admitted transaction waiting to be applied.
type queuedTx struct {
	tx     *ledger.Tx
	id     uint64 // ticket id
	fee    amount.Drops
	arrive uint64 // admission order, for stable FIFO among equal fees
	// autoSeq marks a submission with Sequence 0: the applier assigns
	// the account's next sequence at apply time (rippled's "fill in the
	// sequence" convenience).
	autoSeq  bool
	enqueued time.Time

	// Optimistic planning outputs (set by the batch planner).
	planned bool
	plan    *plannedRoute
}

// acctQueue is one account's pending transactions in apply order:
// explicit sequences ascending, then auto-sequenced arrivals FIFO. The
// cross-account heap keys each account by its head transaction.
type acctQueue struct {
	account addr.AccountID
	txs     []*queuedTx
	heapIdx int
}

// before orders a's head transaction against b's for the escalation
// heap: higher fee first, earlier arrival among equals.
func (a *acctQueue) before(b *acctQueue) bool {
	ta, tb := a.txs[0], b.txs[0]
	if ta.fee != tb.fee {
		return ta.fee > tb.fee
	}
	return ta.arrive < tb.arrive
}

// insert places q in apply order: explicit sequences sort ascending
// among themselves and ahead of every auto-sequenced transaction;
// auto-sequenced ones keep arrival order. Returns false when an
// explicit sequence duplicates one already queued for the account.
func (aq *acctQueue) insert(q *queuedTx) bool {
	if q.autoSeq {
		aq.txs = append(aq.txs, q)
		return true
	}
	at := len(aq.txs)
	for i, have := range aq.txs {
		if have.autoSeq {
			at = i
			break
		}
		if have.tx.Sequence == q.tx.Sequence {
			return false
		}
		if have.tx.Sequence > q.tx.Sequence {
			at = i
			break
		}
	}
	aq.txs = append(aq.txs, nil)
	copy(aq.txs[at+1:], aq.txs[at:])
	aq.txs[at] = q
	return true
}

// acctHeap is the fee-escalation max-heap over accounts with pending
// transactions.
type acctHeap []*acctQueue

func (h acctHeap) Len() int            { return len(h) }
func (h acctHeap) Less(i, j int) bool  { return h[i].before(h[j]) }
func (h acctHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *acctHeap) Push(x any)         { aq := x.(*acctQueue); aq.heapIdx = len(*h); *h = append(*h, aq) }
func (h *acctHeap) Pop() any           { old := *h; n := len(old); aq := old[n-1]; old[n-1] = nil; *h = old[:n-1]; return aq }

// queue is the ordered core behind the front door's admission control.
// Depth bounding lives outside (the FrontDoor's slot semaphore gives
// Submit timeout-able waits); the queue itself only orders.
type queue struct {
	mu       sync.Mutex
	accounts map[addr.AccountID]*acctQueue
	heap     acctHeap
	depth    int
	arrive   uint64
	closed   bool

	// ready is a 1-buffered wake-up signal for the applier.
	ready chan struct{}
}

func newQueue() *queue {
	return &queue{
		accounts: make(map[addr.AccountID]*acctQueue),
		ready:    make(chan struct{}, 1),
	}
}

// push admits one transaction. It fails only on a duplicate explicit
// (account, sequence) or after close.
func (q *queue) push(qt *queuedTx) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	aq := q.accounts[qt.tx.Account]
	fresh := aq == nil
	if fresh {
		aq = &acctQueue{account: qt.tx.Account}
	}
	q.arrive++
	qt.arrive = q.arrive
	wasHead := !fresh && len(aq.txs) > 0
	var oldHead *queuedTx
	if wasHead {
		oldHead = aq.txs[0]
	}
	if !aq.insert(qt) {
		q.mu.Unlock()
		return ErrDuplicateSequence
	}
	if fresh {
		q.accounts[qt.tx.Account] = aq
		heap.Push(&q.heap, aq)
	} else if wasHead && aq.txs[0] != oldHead {
		// The new transaction became the account's head (an earlier
		// sequence arrived late): the heap key changed.
		heap.Fix(&q.heap, aq.heapIdx)
	}
	q.depth++
	q.mu.Unlock()
	select {
	case q.ready <- struct{}{}:
	default:
	}
	return nil
}

// popBatch removes up to max transactions in apply order, blocking
// until at least one is available or the queue is closed and drained
// (nil return). Within the batch, accounts drain by descending head
// fee; one account's transactions keep their sequence order because
// only its head is ever eligible.
func (q *queue) popBatch(max int) []*queuedTx {
	for {
		q.mu.Lock()
		if q.depth > 0 {
			batch := make([]*queuedTx, 0, min(max, q.depth))
			for len(batch) < max && len(q.heap) > 0 {
				aq := q.heap[0]
				qt := aq.txs[0]
				copy(aq.txs, aq.txs[1:])
				aq.txs[len(aq.txs)-1] = nil
				aq.txs = aq.txs[:len(aq.txs)-1]
				if len(aq.txs) == 0 {
					heap.Pop(&q.heap)
					delete(q.accounts, aq.account)
				} else {
					heap.Fix(&q.heap, 0)
				}
				q.depth--
				batch = append(batch, qt)
			}
			q.mu.Unlock()
			return batch
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return nil
		}
		<-q.ready
	}
}

// close marks the queue closed; push fails afterwards and popBatch
// returns nil once drained.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.ready <- struct{}{}:
	default:
	}
}

// size returns the current queued depth.
func (q *queue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}
