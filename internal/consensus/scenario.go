package consensus

import (
	"fmt"
	"math/rand"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
)

// Adversarial scenario engine. "Security Analysis of Ripple Consensus"
// (Amores-Sesar, Cachin, Mićić) proves the protocol loses safety when
// UNL overlap drops below the 2(1−q) bound and loses liveness under
// delayed or censoring proposers. An AttackSpec injects exactly those
// adversaries into a benign validator population, and RunScenario
// reports the per-round safety/liveness outcomes — did a fork commit,
// did the round stall, how long did a targeted transaction stay
// censored — so the collection pipeline's detectors can be graded
// against ground truth.

// AttackSpec selects the Byzantine validators layered onto a benign
// population and, optionally, a sub-bound UNL partition.
type AttackSpec struct {
	// Equivocators, Censors, and Delayers count the Byzantine
	// validators of each class added to the trusted list.
	Equivocators int
	Censors      int
	Delayers     int
	// DelayIters overrides the delayers' withheld proposal iterations
	// (0 = the class default: silent past the 50→65→70% deadlines).
	DelayIters int
	// CensorTargets lists the accounts the censors strip from their
	// proposals. Scenario runs default it to the scenario's victim
	// account when censors are configured.
	CensorTargets []addr.AccountID
	// Partition, when non-nil, splits the trusted UNL (see
	// Config.Partition); overlap below 2(1−q) admits committed forks.
	Partition *PartitionSpec
}

// Enabled reports whether any attack is configured.
func (a AttackSpec) Enabled() bool {
	return a.Equivocators > 0 || a.Censors > 0 || a.Delayers > 0 || a.Partition != nil
}

// Apply returns base plus the configured Byzantine validators. The
// attackers are trusted (the insider threat model): they count against
// the 80% quorum denominator whether or not they sign.
func (a AttackSpec) Apply(base []ValidatorSpec) []ValidatorSpec {
	out := append(make([]ValidatorSpec, 0, len(base)+a.Equivocators+a.Censors+a.Delayers), base...)
	add := func(class string, n int, mutate func(*ValidatorSpec)) {
		for i := 1; i <= n; i++ {
			label := fmt.Sprintf("%s-%d", class, i)
			spec := ValidatorSpec{
				Label:   label,
				Seed:    seedFor(label, uint64(i)),
				Trusted: true,
			}
			mutate(&spec)
			out = append(out, spec)
		}
	}
	add("equivocator", a.Equivocators, func(s *ValidatorSpec) { s.Behavior = BehaviorEquivocator })
	add("censor", a.Censors, func(s *ValidatorSpec) {
		s.Behavior = BehaviorCensor
		s.CensorAccounts = a.CensorTargets
	})
	add("delayer", a.Delayers, func(s *ValidatorSpec) {
		s.Behavior = BehaviorDelayer
		s.DelayIters = a.DelayIters
	})
	return out
}

// ScenarioConfig describes one adversarial run: a benign population, the
// attack layered on top, and the synthetic traffic pushed through
// consensus (including the victim payments censors target).
type ScenarioConfig struct {
	Name   string
	Rounds int
	Seed   int64
	// Base is the benign population (default: the December 2015
	// validator classes).
	Base   []ValidatorSpec
	Attack AttackSpec
	// Config overrides consensus parameters; StreamProposals is forced
	// on whenever an attack is enabled so monitors can see censorship.
	Config Config
	// TrafficPerRound is the number of background payments per round
	// (default 3). VictimEvery injects one payment to the victim account
	// every that-many rounds (default 1) when censors are configured.
	TrafficPerRound int
	VictimEvery     int
	// OnEvent, when set, is subscribed to the network's event stream —
	// the hook RunScenario callers use to feed a monitor.Collector the
	// same events a netstream subscriber would see.
	OnEvent func(Event)
}

// scenarioTrafficSeed/scenarioVictimSeed derive the funded traffic
// account and the censorship victim deterministically.
const (
	scenarioTrafficSeed = 424242
	scenarioVictimSeed  = 616161
)

// VictimAccount returns the account censors target in scenario runs.
func VictimAccount() addr.AccountID {
	return addr.KeyPairFromSeed(scenarioVictimSeed).AccountID()
}

// TrafficAccount returns the pre-funded account scenario traffic spends
// from; ScenarioFunding is its genesis balance in drops.
func TrafficAccount() addr.AccountID {
	return addr.KeyPairFromSeed(scenarioTrafficSeed).AccountID()
}

// ScenarioFunding is the scenario traffic account's funded balance.
const ScenarioFunding = 1_000_000_000_000

func (sc ScenarioConfig) withDefaults() ScenarioConfig {
	if sc.Rounds == 0 {
		sc.Rounds = 100
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Base == nil {
		sc.Base = December2015(sc.Rounds).Specs
	}
	if sc.TrafficPerRound == 0 {
		sc.TrafficPerRound = 3
	}
	if sc.VictimEvery == 0 {
		sc.VictimEvery = 1
	}
	if sc.Attack.Censors > 0 && len(sc.Attack.CensorTargets) == 0 {
		sc.Attack.CensorTargets = []addr.AccountID{VictimAccount()}
	}
	return sc
}

// Build constructs the attacked network and its traffic generator. The
// traffic account is pre-funded; each round carries TrafficPerRound
// background payments plus, when censors are configured, a payment to
// the victim account every VictimEvery rounds.
func (sc ScenarioConfig) Build() (*Network, func(round int) []*ledger.Tx) {
	sc = sc.withDefaults()
	cfg := sc.Config
	if cfg.Seed == 0 {
		cfg.Seed = sc.Seed
	}
	if sc.Attack.Partition != nil {
		cfg.Partition = sc.Attack.Partition
	}
	if sc.Attack.Enabled() {
		cfg.StreamProposals = true
	}
	net := NewNetwork(cfg, sc.Attack.Apply(sc.Base))
	if sc.OnEvent != nil {
		net.Subscribe(sc.OnEvent)
	}

	trafficKey := addr.KeyPairFromSeed(scenarioTrafficSeed)
	net.Engine().Fund(trafficKey.AccountID(), ScenarioFunding)
	rng := rand.New(rand.NewSource(sc.Seed + 7))
	victim := VictimAccount()
	traffic := func(round int) []*ledger.Tx {
		txs := make([]*ledger.Tx, 0, sc.TrafficPerRound+1)
		next := net.Engine().NextSequence(trafficKey.AccountID())
		mk := func(dst addr.AccountID) {
			tx := &ledger.Tx{
				Type:        ledger.TxPayment,
				Account:     trafficKey.AccountID(),
				Sequence:    next + uint32(len(txs)),
				Fee:         10,
				Destination: dst,
				Amount:      amount.XRPAmount(amount.Drops(1_000_000 + rng.Int63n(50_000_000))),
			}
			tx.Sign(trafficKey)
			txs = append(txs, tx)
		}
		for i := 0; i < sc.TrafficPerRound; i++ {
			mk(addr.KeyPairFromSeed(uint64(20000 + rng.Intn(500))).AccountID())
		}
		if sc.Attack.Censors > 0 && round%sc.VictimEvery == 0 {
			mk(victim)
		}
		return txs
	}
	return net, traffic
}

// RoundOutcome is the per-round safety/liveness ground truth.
type RoundOutcome struct {
	Round         int
	Validated     bool
	ForkCommitted bool
	AgreedTxs     int
	CensoredTxs   int
	ProposalIters int
	Messages      int
	Latency       time.Duration
}

// ScenarioResult aggregates a scenario run.
type ScenarioResult struct {
	Name   string
	Rounds int
	// Safety: rounds in which two pages at one sequence both reached
	// quorum, and the first round it happened (0 = never).
	ForkRounds     int
	FirstForkRound int
	// Liveness: rounds without a validated canonical close, and the
	// longest consecutive run of them.
	StallRounds    int
	MaxStallStreak int
	// Censorship: rounds in which a censor vetoed at least one candidate
	// out of the agreed set, and the longest consecutive run — "the
	// victim's payment stayed out of the ledger for N rounds".
	CensoredRounds  int
	MaxCensorStreak int
	// Equivocations is the number of conflicting signature pairs
	// broadcast (from Network.Equivocations).
	Equivocations int
	// SISSLE axes: total protocol messages, mean messages and modeled
	// latency per round, and mean proposal iterations.
	Messages    int
	MeanMsgs    float64
	MeanLatency time.Duration
	MeanIters   float64

	Outcomes []RoundOutcome
}

// RunScenario executes the scenario in-process and returns the
// aggregated ground truth. Integration tests that need the event stream
// on the wire use Build directly and publish to a netstream server.
func RunScenario(sc ScenarioConfig) (*ScenarioResult, error) {
	sc = sc.withDefaults()
	net, traffic := sc.Build()
	res := &ScenarioResult{Name: sc.Name, Rounds: sc.Rounds}
	stallStreak, censorStreak := 0, 0
	var latencySum time.Duration
	var iterSum int
	carry := []*ledger.Tx(nil)
	for round := 1; round <= sc.Rounds; round++ {
		candidates := append(carry, traffic(round)...)
		rr, err := net.RunRound(candidates)
		if err != nil {
			return nil, fmt.Errorf("consensus: scenario %q round %d: %w", sc.Name, round, err)
		}
		carry = rr.Deferred
		out := RoundOutcome{
			Round:         round,
			Validated:     rr.Validated,
			ForkCommitted: rr.ForkCommitted,
			AgreedTxs:     len(rr.Page.Txs),
			CensoredTxs:   rr.CensoredTxs,
			ProposalIters: rr.ProposalIters,
			Messages:      rr.Messages,
			Latency:       rr.Latency,
		}
		res.Outcomes = append(res.Outcomes, out)
		res.Messages += rr.Messages
		latencySum += rr.Latency
		iterSum += rr.ProposalIters
		if rr.ForkCommitted {
			res.ForkRounds++
			if res.FirstForkRound == 0 {
				res.FirstForkRound = round
			}
		}
		if !rr.Validated {
			res.StallRounds++
			stallStreak++
			res.MaxStallStreak = max(res.MaxStallStreak, stallStreak)
		} else {
			stallStreak = 0
		}
		if rr.CensoredTxs > 0 {
			res.CensoredRounds++
			censorStreak++
			res.MaxCensorStreak = max(res.MaxCensorStreak, censorStreak)
		} else {
			censorStreak = 0
		}
	}
	res.Equivocations = net.Equivocations()
	if sc.Rounds > 0 {
		res.MeanMsgs = float64(res.Messages) / float64(sc.Rounds)
		res.MeanLatency = latencySum / time.Duration(sc.Rounds)
		res.MeanIters = float64(iterSum) / float64(sc.Rounds)
	}
	return res, nil
}
