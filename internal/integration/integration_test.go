// Package integration exercises the whole system end to end: the
// generate → persist → reopen → analyze pipeline, the consensus →
// TCP stream → monitor pipeline, and the consistency between in-memory
// and store-backed execution of every experiment.
package integration

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/core"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/ledgerstore"
	"ripplestudy/internal/monitor"
	"ripplestudy/internal/netstream"
	"ripplestudy/internal/payment"
	"ripplestudy/internal/synth"
)

// TestStoreAndMemoryAgreeOnEveryExperiment generates one history twice —
// once streamed to disk, once kept in memory — and checks that every
// experiment produces identical results from both sources.
func TestStoreAndMemoryAgreeOnEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	const payments = 4000
	const seed = 17

	mem, err := core.BuildDataset(core.Config{Payments: payments, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	if _, err := core.BuildDataset(core.Config{Payments: payments, Seed: seed, StoreDir: dir}); err != nil {
		t.Fatal(err)
	}
	disk, err := core.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Stats agree.
	ms, err := mem.Stats()
	if err != nil {
		t.Fatal(err)
	}
	dsStats, err := disk.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if ms != dsStats {
		t.Fatalf("stats differ:\nmem:  %+v\ndisk: %+v", ms, dsStats)
	}

	// Figure 3 agrees bit-for-bit.
	f3m, err := mem.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	f3d, err := disk.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f3m, f3d) {
		t.Error("Figure 3 differs between memory and store")
	}

	// Figure 4 agrees.
	f4m, err := mem.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	f4d, err := disk.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f4m, f4d) {
		t.Error("Figure 4 differs between memory and store")
	}

	// Figure 6 agrees.
	hm, pm, err := mem.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	hd, pd, err := disk.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hm, hd) || !reflect.DeepEqual(pm, pd) {
		t.Error("Figure 6 differs between memory and store")
	}

	// Table II agrees (the replay rebuilds state from pages in both
	// cases).
	t2m, err := mem.TableII(0.7)
	if err != nil {
		t.Fatal(err)
	}
	t2d, err := disk.TableII(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if t2m.Cross != t2d.Cross || t2m.Single != t2d.Single {
		t.Errorf("Table II differs:\nmem:  %+v %+v\ndisk: %+v %+v",
			t2m.Cross, t2m.Single, t2d.Cross, t2d.Single)
	}

	// Figure 7 intermediary ordering agrees (names differ: the disk
	// dataset has no registry).
	f7m, err := mem.Figure7(20)
	if err != nil {
		t.Fatal(err)
	}
	f7d, err := disk.Figure7(20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f7m {
		if f7m[i].Account != f7d[i].Account || f7m[i].TimesIntermediate != f7d[i].TimesIntermediate {
			t.Fatalf("Figure 7 rank %d differs", i)
		}
		// Profiles come from generator state vs replayed state — they
		// must match too.
		if f7m[i].Profile != f7d[i].Profile {
			t.Fatalf("Figure 7 profile %d differs: %+v vs %+v", i, f7m[i].Profile, f7d[i].Profile)
		}
	}
}

// TestConsensusStreamMonitorPipeline runs the full §IV pipeline over a
// real TCP socket: network → stream server → client → collector, and
// verifies the report matches a directly-subscribed collector.
func TestConsensusStreamMonitorPipeline(t *testing.T) {
	const rounds = 150
	spec := consensus.December2015(rounds)

	srv, err := netstream.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := netstream.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	labels := func(c *monitor.Collector) {
		for _, s := range spec.Specs {
			if s.Label != "" {
				c.SetLabel(addr.KeyPairFromSeed(s.Seed).NodeID(), s.Label)
			}
		}
	}
	remote := monitor.NewCollector()
	labels(remote)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = client.Events(func(ev consensus.Event) error {
			remote.Record(ev)
			return nil
		})
	}()

	local := monitor.NewCollector()
	labels(local)
	net := consensus.NewNetwork(consensus.Config{Seed: 3, StartTime: spec.Start}, spec.Specs)
	net.Subscribe(local.Record)
	net.Subscribe(srv.Publish)
	if _, err := net.Run(rounds, nil); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	srv.Close()
	wg.Wait()

	lr := local.Report(spec.Name)
	rr := remote.Report(spec.Name)
	if lr.Rounds != rr.Rounds {
		t.Fatalf("rounds differ: local %d, remote %d", lr.Rounds, rr.Rounds)
	}
	if len(lr.Validators) != len(rr.Validators) {
		t.Fatalf("validator counts differ: %d vs %d", len(lr.Validators), len(rr.Validators))
	}
	for i := range lr.Validators {
		l, r := lr.Validators[i], rr.Validators[i]
		if l.Node != r.Node || l.Total != r.Total || l.Valid != r.Valid {
			t.Fatalf("validator %d differs across the TCP hop:\nlocal:  %+v\nremote: %+v", i, l, r)
		}
		if r.BadSignatures != 0 {
			t.Errorf("%s: %d bad signatures after TCP transport", r.Label, r.BadSignatures)
		}
	}
}

// TestSignedHistoryVerifies generates a fully signed history, checks
// every signature, and replays the whole history through a
// signature-verifying engine — the strictest end-to-end integrity check.
func TestSignedHistoryVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("signing is slow")
	}
	var pages []*ledger.Page
	genRes, err := synth.Generate(synth.Config{
		Payments: 600,
		Seed:     5,
		// SkipSignatures off: real signing.
	}, func(p *ledger.Page) error {
		pages = append(pages, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replay through a verifying engine: every transaction must land on
	// the same result it had in the generated history, and the final
	// state digests must match.
	verifier := payment.NewEngine(payment.WithSignatureVerification())
	for _, p := range pages {
		for i, tx := range p.Txs {
			meta, err := verifier.Apply(tx)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Result != p.Metas[i].Result {
				t.Fatalf("verifying replay diverged: %s vs %s for %s tx",
					meta.Result, p.Metas[i].Result, tx.Type)
			}
		}
	}
	if verifier.StateDigest() != genRes.Engine.StateDigest() {
		t.Fatal("verifying replay reached a different state digest")
	}
	checked := 0
	for _, p := range pages {
		for _, tx := range p.Txs {
			if len(tx.Signature) == 0 {
				// ACCOUNT_ZERO transactions are submitted unsigned (its
				// key is "publicly known"; the generator models that by
				// skipping the signature).
				if tx.Account != addr.AccountZero {
					t.Fatalf("unsigned transaction from %s", tx.Account.Short())
				}
				continue
			}
			if !tx.VerifySignature() {
				t.Fatalf("invalid signature on %s tx from %s", tx.Type, tx.Account.Short())
			}
			checked++
		}
	}
	if checked < 1000 {
		t.Errorf("verified only %d signatures", checked)
	}
}

// TestStoreSurvivesReopenCycles appends across multiple open/close
// cycles and checks the chain links end to end.
func TestStoreSurvivesReopenCycles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cycles")
	var prev ledger.Hash
	seq := uint64(1)

	writeBatch := func(store *ledgerstore.Store, n int) {
		for i := 0; i < n; i++ {
			page := &ledger.Page{
				Header: ledger.PageHeader{
					Sequence:   seq,
					ParentHash: prev,
					TxSetHash:  ledger.TxSetHash(nil),
					CloseTime:  ledger.CloseTime(seq),
				},
			}
			prev = page.Header.Hash()
			seq++
			if err := store.Append(page); err != nil {
				t.Fatal(err)
			}
		}
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
	}

	first, err := ledgerstore.Create(dir, ledgerstore.WithSegmentBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	writeBatch(first, 20)
	for cycle := 0; cycle < 3; cycle++ {
		store, err := ledgerstore.Open(dir, ledgerstore.WithSegmentBytes(512))
		if err != nil {
			t.Fatal(err)
		}
		writeBatch(store, 20)
	}

	store, err := ledgerstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []*ledger.Page
	if err := store.Pages(func(p *ledger.Page) error { got = append(got, p); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 80 {
		t.Fatalf("pages = %d, want 80", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Header.ParentHash != got[i-1].Header.Hash() {
			t.Fatalf("chain broken at page %d after reopen cycles", i)
		}
	}
}
