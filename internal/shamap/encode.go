// Node encoding: the canonical byte form of a tree node, which is both
// what a nodestore persists and the preimage of the node's hash —
// hash = SHA512Half(encoding) — so content-addressed storage verifies
// itself on read.
//
//	leaf:  'L' ‖ key[32] ‖ value
//	inner: 'I' ‖ bitmap(u16 BE) ‖ hash[32] per set bit, nibble order
//
// The leaf value's length is implicit (the store frames records), and
// an inner node stores hashes only for present children, so a sparse
// node costs 3 + 32·children bytes.
package shamap

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"ripplestudy/internal/ledger"
)

const (
	kindLeaf  = 'L'
	kindInner = 'I'
)

// appendNode appends the canonical encoding of n to dst. Inner children
// must already carry valid hashes.
func appendNode(dst []byte, n *node) []byte {
	if n.leaf {
		dst = append(dst, kindLeaf)
		dst = append(dst, n.key[:]...)
		return append(dst, n.value...)
	}
	var bitmap uint16
	for i, c := range n.children {
		if c != nil {
			bitmap |= 1 << uint(i)
		}
	}
	dst = append(dst, kindInner)
	dst = binary.BigEndian.AppendUint16(dst, bitmap)
	for _, c := range n.children {
		if c != nil {
			dst = append(dst, c.hash[:]...)
		}
	}
	return dst
}

// Node is the decoded form of a stored tree node.
type Node struct {
	Leaf bool
	// Leaf fields. Value aliases the input buffer.
	Key   ledger.Hash
	Value []byte
	// Inner field: one child hash per nibble, zero when absent.
	Children [16]ledger.Hash
}

// DecodeNode parses a canonical node encoding. Node.Value aliases data;
// callers that outlive the buffer must copy it.
func DecodeNode(data []byte) (Node, error) {
	if len(data) == 0 {
		return Node{}, fmt.Errorf("shamap: empty node record")
	}
	switch data[0] {
	case kindLeaf:
		if len(data) < 1+32 {
			return Node{}, fmt.Errorf("shamap: leaf record truncated at %d bytes", len(data))
		}
		var n Node
		n.Leaf = true
		copy(n.Key[:], data[1:33])
		n.Value = data[33:]
		return n, nil
	case kindInner:
		if len(data) < 3 {
			return Node{}, fmt.Errorf("shamap: inner record truncated at %d bytes", len(data))
		}
		bitmap := binary.BigEndian.Uint16(data[1:3])
		want := 3 + 32*bits.OnesCount16(bitmap)
		if len(data) != want {
			return Node{}, fmt.Errorf("shamap: inner record is %d bytes, bitmap %04x wants %d", len(data), bitmap, want)
		}
		var n Node
		off := 3
		for i := 0; i < 16; i++ {
			if bitmap&(1<<uint(i)) == 0 {
				continue
			}
			copy(n.Children[i][:], data[off:off+32])
			if n.Children[i].IsZero() {
				return Node{}, fmt.Errorf("shamap: inner record carries a zero child hash at nibble %d", i)
			}
			off += 32
		}
		return n, nil
	default:
		return Node{}, fmt.Errorf("shamap: unknown node kind 0x%02x", data[0])
	}
}
