// Package netstream carries the validation stream over TCP as
// newline-delimited JSON. It reproduces the paper's data-collection
// setup: "we needed to collect real-time information on the consensus
// rounds and the validation process in the system. We did so by setting
// up a Ripple server that made use of the Ripple's validation stream."
//
// A Server attached to a consensus.Network publishes every validation
// and ledger-close event to all connected subscribers; a Client is the
// collection server that consumes them.
package netstream

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"ripplestudy/internal/consensus"
)

// Server publishes consensus events to TCP subscribers.
type Server struct {
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]*bufio.Writer
	closed bool

	wg sync.WaitGroup
}

// Serve starts a server listening on address (use "127.0.0.1:0" for an
// ephemeral port).
func Serve(address string) (*Server, error) {
	ln, err := net.Listen("tcp", address)
	if err != nil {
		return nil, fmt.Errorf("netstream: listen: %w", err)
	}
	s := &Server{ln: ln, conns: make(map[net.Conn]*bufio.Writer)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = bufio.NewWriterSize(conn, 1<<15)
		s.mu.Unlock()
	}
}

// Publish sends the event to every connected subscriber, dropping
// subscribers whose connection fails. It is safe for concurrent use.
func (s *Server) Publish(ev consensus.Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		// Events are plain data; marshalling cannot fail in practice.
		return
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn, w := range s.conns {
		if _, err := w.Write(data); err != nil {
			conn.Close()
			delete(s.conns, conn)
		}
	}
}

// Flush pushes buffered events out to subscribers.
func (s *Server) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn, w := range s.conns {
		if err := w.Flush(); err != nil {
			conn.Close()
			delete(s.conns, conn)
		}
	}
}

// NumSubscribers reports the current subscriber count.
func (s *Server) NumSubscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Close stops accepting, flushes, and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn, w := range s.conns {
		_ = w.Flush()
		conn.Close()
		delete(s.conns, conn)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client consumes a validation stream.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a stream server.
func Dial(address string) (*Client, error) {
	conn, err := net.Dial("tcp", address)
	if err != nil {
		return nil, fmt.Errorf("netstream: dial: %w", err)
	}
	return &Client{conn: conn, r: bufio.NewReaderSize(conn, 1<<15)}, nil
}

// ErrStop can be returned from an Events callback to stop consumption
// without error.
var ErrStop = errors.New("netstream: stop")

// Events reads events until the stream closes or fn returns an error.
// Returning ErrStop stops cleanly.
func (c *Client) Events(fn func(consensus.Event) error) error {
	for {
		line, err := c.r.ReadBytes('\n')
		if len(line) > 0 {
			var ev consensus.Event
			if jerr := json.Unmarshal(line, &ev); jerr != nil {
				return fmt.Errorf("netstream: bad event: %w", jerr)
			}
			if ferr := fn(ev); ferr != nil {
				if errors.Is(ferr, ErrStop) {
					return nil
				}
				return ferr
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("netstream: read: %w", err)
		}
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
