package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"ripplestudy/internal/deanon"
)

// get performs one request against the service handler.
func get(t *testing.T, s *Service, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// TestLookupEndpointVerdicts drives /v1/deanon/lookup with a feature
// vector taken from a real ingested payment (must not be "unseen") and
// an absurd one (must be "unseen"), and checks the verdict wording.
func TestLookupEndpointVerdicts(t *testing.T) {
	pages := genPages(t, 800, 13)
	s := NewService(Options{})
	defer s.Close()
	for _, p := range pages {
		if err := s.IngestPage(p); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, s)

	var feat deanon.Features
	found := false
	for _, p := range pages {
		for i := range p.Txs {
			if f, ok := deanon.FromTransaction(p, p.Txs[i], p.Metas[i]); ok {
				feat, found = f, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("history has no observable payment")
	}

	path := "/v1/deanon/lookup?row=0" +
		"&amount=" + feat.Amount.String() +
		"&currency=" + feat.Currency.String() +
		"&time=" + strconv.FormatUint(uint64(feat.Time), 10) +
		"&dest=" + feat.Destination.String()
	rec := get(t, s, path)
	if rec.Code != 200 {
		t.Fatalf("lookup status %d: %s", rec.Code, rec.Body)
	}
	var res LookupResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 || res.Verdict == "unseen" {
		t.Fatalf("ingested payment reported unseen: %+v", res)
	}
	if res.Verdict != "unique" && res.Verdict != "ambiguous" {
		t.Fatalf("bad verdict %q", res.Verdict)
	}
	if res.Resolution == "" || res.Epoch == 0 {
		t.Fatalf("missing context fields: %+v", res)
	}

	// A fingerprint nobody paid: amount and time far outside the
	// generated history.
	rec = get(t, s, "/v1/deanon/lookup?row=0&amount=999999999&currency=USD&time=4000000000")
	var miss LookupResult
	if err := json.Unmarshal(rec.Body.Bytes(), &miss); err != nil {
		t.Fatal(err)
	}
	if miss.Count != 0 || miss.Verdict != "unseen" {
		t.Fatalf("phantom payment reported seen: %+v", miss)
	}
}

// TestLookupEndpointRejectsBadParams pins the 400 paths.
func TestLookupEndpointRejectsBadParams(t *testing.T) {
	s := NewService(Options{})
	defer s.Close()
	for _, path := range []string{
		"/v1/deanon/lookup",                            // row missing
		"/v1/deanon/lookup?row=banana",                 // row not an int
		"/v1/deanon/lookup?row=999",                    // row out of range
		"/v1/deanon/lookup?row=0&amount=not-a-value",   // bad amount
		"/v1/deanon/lookup?row=0&currency=TOOLONGCODE", // bad currency
		"/v1/deanon/lookup?row=0&time=-5",              // bad time
		"/v1/deanon/lookup?row=0&dest=nonsense",        // bad account
	} {
		if rec := get(t, s, path); rec.Code != 400 {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}

// TestEpochCacheReplaysAndInvalidates checks the response cache: same
// epoch replays identical bytes and counts a hit; new ingest bumps the
// epoch and re-renders.
func TestEpochCacheReplaysAndInvalidates(t *testing.T) {
	pages := genPages(t, 300, 19)
	s := NewService(Options{})
	defer s.Close()
	half := len(pages) / 2
	for _, p := range pages[:half] {
		if err := s.IngestPage(p); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, s)

	// Handler must be reused: caches live in its closure.
	h := s.Handler()
	serve := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	first := serve("/v1/ecosystem")
	second := serve("/v1/ecosystem")
	if first.Body.String() != second.Body.String() {
		t.Fatal("same epoch rendered different bytes")
	}
	if hits := s.metrics.endpoint("ecosystem").cacheHitCount(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}

	for _, p := range pages[half:] {
		if err := s.IngestPage(p); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, s)
	third := serve("/v1/ecosystem")
	if third.Body.String() == first.Body.String() {
		t.Fatal("cache served a stale epoch after ingest")
	}
	var snap EcosystemSnapshot
	if err := json.Unmarshal(third.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Pages != uint64(len(pages)) {
		t.Fatalf("post-ingest snapshot has %d pages, want %d", snap.Pages, len(pages))
	}
}

// TestMetricsExposition spot-checks the Prometheus text output.
func TestMetricsExposition(t *testing.T) {
	pages := genPages(t, 200, 29)
	s := NewService(Options{})
	defer s.Close()
	for _, p := range pages {
		if err := s.IngestPage(p); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, s)
	get(t, s, "/v1/validators") // register one endpoint's metrics

	body := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"serve_ingested_pages_total " + strconv.Itoa(len(pages)),
		"serve_view_epoch{view=\"fig3_fingerprints\"}",
		"serve_view_ingest_lag_events{view=\"fig4to6_ecosystem\"} 0",
		"serve_query_total{endpoint=\"validators\"} 1",
		"serve_query_latency_seconds{endpoint=\"validators\",quantile=\"0.99\"}",
		"serve_http_rejected_total 0",
		"serve_ingest_idle_seconds",
		fmt.Sprintf("serve_pipeline_workers %d", s.opts.PipelineWorkers),
		"serve_view_last_merge_seconds{view=\"fig3_fingerprints\"}",
		"serve_view_shard_queue_depth{view=\"fig2_tally\",shard=\"0\"} 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
	// Every pipeline shard must expose its ring depth gauge, whatever
	// the worker fan-out this machine defaults to.
	for _, vw := range s.views {
		for i := range vw.shardDepths() {
			want := fmt.Sprintf("serve_view_shard_queue_depth{view=%q,shard=\"%d\"}", vw.name, i)
			if !strings.Contains(body, want) {
				t.Errorf("metrics missing %q", want)
			}
		}
	}
}
