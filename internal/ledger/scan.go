package ledger

import (
	"encoding/binary"
	"fmt"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
)

// This file is the zero-copy scan path over the canonical page
// encoding. DecodePage materializes a full object graph per record —
// fine for consumers that need every field, but the history-scale scans
// (the Figure 3 feature feed, ecosystem statistics, sequence-index
// rebuilds) read a handful of fields from each of millions of
// transactions. The visitors here walk the encoding in place: fixed
// fields are read at their constant offsets (see the txOff* layout in
// codec.go), variable-length fields are skipped by their length
// prefixes, and nothing is allocated.
//
// Aliasing rules: the views passed to the callbacks are reused between
// calls and, when the payload comes from ledgerstore's mmap reader,
// their raw byte fields alias the mapped segment. Everything a callback
// receives is valid only until it returns; retain copies, not views.

// pageHeaderBytes is the encoded size of a PageHeader.
const pageHeaderBytes = 8 + 32 + 32 + 32 + 4 + 8

// DecodeHeader decodes just the page header from a page encoding,
// without touching the transaction area. It returns the number of
// header bytes consumed (the transaction count follows at that offset).
func DecodeHeader(data []byte) (PageHeader, int, error) {
	var h PageHeader
	if len(data) < pageHeaderBytes {
		return h, 0, ErrTruncated
	}
	h.Sequence = binary.BigEndian.Uint64(data[0:8])
	copy(h.ParentHash[:], data[8:40])
	copy(h.TxSetHash[:], data[40:72])
	copy(h.StateHash[:], data[72:104])
	h.CloseTime = CloseTime(binary.BigEndian.Uint32(data[104:108]))
	h.TotalDrops = binary.BigEndian.Uint64(data[108:116])
	return h, pageHeaderBytes, nil
}

// skipTx returns the total encoded length of the transaction starting
// at data[0], validating the codec version and that the record fits.
func skipTx(data []byte) (int, error) {
	if len(data) < txFixedBytes+2 {
		return 0, ErrTruncated
	}
	if data[0] != txCodecVersion {
		return 0, fmt.Errorf("ledger: tx codec version %d, want %d", data[0], txCodecVersion)
	}
	n := txFixedBytes
	skLen := int(binary.BigEndian.Uint16(data[n:]))
	n += 2 + skLen
	if len(data) < n+2 {
		return 0, ErrTruncated
	}
	sigLen := int(binary.BigEndian.Uint16(data[n:]))
	n += 2 + sigLen
	if len(data) < n {
		return 0, ErrTruncated
	}
	return n, nil
}

// Fixed layout of the meta encoding before its variable tails.
const (
	metaOffResult    = 0
	metaOffDelivered = 1                 // 14-byte amount
	metaOffNPaths    = 1 + amountBytes   // u8 parallel-path count
	metaFixedTail    = 4 + 1 + 2         // offersConsumed ∥ cross ∥ nIntermediaries
	metaMinBytes     = 1 + amountBytes + 1 + metaFixedTail
)

// skipMeta returns the total encoded length of the TxMeta starting at
// data[0].
func skipMeta(data []byte) (int, error) {
	if len(data) < metaMinBytes {
		return 0, ErrTruncated
	}
	nPaths := int(data[metaOffNPaths])
	n := metaOffNPaths + 1 + nPaths
	if len(data) < n+metaFixedTail {
		return 0, ErrTruncated
	}
	nInterm := int(binary.BigEndian.Uint16(data[n+5:]))
	n += metaFixedTail + 20*nInterm
	if len(data) < n {
		return 0, ErrTruncated
	}
	return n, nil
}

// TxView is a zero-copy view of one (transaction, metadata) record
// inside a page encoding. Tx and Meta alias the scanned payload; the
// accessors decode individual fields on demand. The view (and the
// bytes it aliases) is valid only inside the VisitTxs callback.
type TxView struct {
	// Index is the transaction's position within the page.
	Index int
	// Tx and Meta are the records' raw canonical encodings.
	Tx, Meta []byte
}

// Type returns the transaction type.
func (v *TxView) Type() TxType { return TxType(v.Tx[txOffType]) }

// Account returns the sender account.
func (v *TxView) Account() (id addr.AccountID) {
	copy(id[:], v.Tx[txOffAccount:])
	return id
}

// Sequence returns the per-account sequence number.
func (v *TxView) Sequence() uint32 {
	return binary.BigEndian.Uint32(v.Tx[txOffSequence:])
}

// Fee returns the XRP fee.
func (v *TxView) Fee() amount.Drops {
	return amount.Drops(binary.BigEndian.Uint64(v.Tx[txOffFee:]))
}

// Destination returns the payment destination account.
func (v *TxView) Destination() (id addr.AccountID) {
	copy(id[:], v.Tx[txOffDestination:])
	return id
}

// Currency returns the delivered amount's currency code.
func (v *TxView) Currency() (c amount.Currency) {
	copy(c[:], v.Tx[txOffAmount:])
	return c
}

// AmountValue decodes the delivered amount's value, applying the same
// validation as the full decoder.
func (v *TxView) AmountValue() (amount.Value, error) {
	return decodeValueAt(v.Tx, txOffAmount+3)
}

// Result returns the execution result code.
func (v *TxView) Result() TxResult { return TxResult(v.Meta[metaOffResult]) }

// PathHops returns the per-path hop counts, aliasing the payload.
func (v *TxView) PathHops() []uint8 {
	n := int(v.Meta[metaOffNPaths])
	return v.Meta[metaOffNPaths+1 : metaOffNPaths+1+n]
}

// CrossCurrency reports whether source and delivered currencies differ.
func (v *TxView) CrossCurrency() bool {
	n := metaOffNPaths + 1 + int(v.Meta[metaOffNPaths])
	return v.Meta[n+4] == 1
}

// OffersConsumed returns the consumed-offer count.
func (v *TxView) OffersConsumed() uint32 {
	n := metaOffNPaths + 1 + int(v.Meta[metaOffNPaths])
	return binary.BigEndian.Uint32(v.Meta[n:])
}

// DecodeTx fully decodes the viewed transaction (heap-allocated, safe
// to retain).
func (v *TxView) DecodeTx() (*Tx, error) {
	tx, _, err := DecodeTx(v.Tx)
	return tx, err
}

// DecodeMeta fully decodes the viewed metadata (heap-allocated, safe to
// retain).
func (v *TxView) DecodeMeta() (*TxMeta, error) {
	m, _, err := DecodeMeta(v.Meta)
	return m, err
}

// TxIter walks a page encoding in place, one transaction at a time,
// with the same framing validation as VisitTxs. Unlike VisitTxs it is
// allocation-free: the header and the reused view live inside the
// caller-owned iterator, so a projection loop whose views never escape
// keeps the whole walk on its stack. The view returned by Next aliases
// both the iterator and the payload and is valid only until the next
// Next call.
type TxIter struct {
	// Hdr is the decoded page header, valid after Init.
	Hdr PageHeader

	v       TxView
	payload []byte
	off     int
	n       int
	i       int
}

// Init validates the header and positions the iterator before the
// first transaction.
func (it *TxIter) Init(payload []byte) error {
	hdr, off, err := DecodeHeader(payload)
	if err != nil {
		return err
	}
	if len(payload) < off+4 {
		return ErrTruncated
	}
	it.Hdr = hdr
	it.n = int(binary.BigEndian.Uint32(payload[off:]))
	it.off = off + 4
	it.payload = payload
	it.i = 0
	return nil
}

// Next advances to the next transaction. It returns (nil, nil) after
// the last one.
func (it *TxIter) Next() (*TxView, error) {
	if it.i >= it.n {
		return nil, nil
	}
	txLen, err := skipTx(it.payload[it.off:])
	if err != nil {
		return nil, fmt.Errorf("ledger: page %d, tx %d: %w", it.Hdr.Sequence, it.i, err)
	}
	it.v.Tx = it.payload[it.off : it.off+txLen]
	it.off += txLen
	metaLen, err := skipMeta(it.payload[it.off:])
	if err != nil {
		return nil, fmt.Errorf("ledger: page %d, meta %d: %w", it.Hdr.Sequence, it.i, err)
	}
	it.v.Meta = it.payload[it.off : it.off+metaLen]
	it.off += metaLen
	it.v.Index = it.i
	it.i++
	return &it.v, nil
}

// Used reports the payload bytes consumed so far; after a complete walk
// it is the page encoding's length.
func (it *TxIter) Used() int { return it.off }

// VisitTxs walks a page encoding in place, calling fn once per
// transaction with a reused zero-copy view, and returns the bytes
// consumed. The walk validates record framing (lengths, codec version)
// but not field contents; a page that DecodePage accepts is always
// walkable, and the per-field accessors apply DecodePage's validation
// on the fields they touch. fn errors abort the walk and propagate.
func VisitTxs(payload []byte, fn func(hdr *PageHeader, v *TxView) error) (int, error) {
	var it TxIter
	if err := it.Init(payload); err != nil {
		return 0, err
	}
	for {
		v, err := it.Next()
		if err != nil {
			return 0, err
		}
		if v == nil {
			return it.Used(), nil
		}
		if err := fn(&it.Hdr, v); err != nil {
			return it.Used(), err
		}
	}
}

// PaymentView is the field projection the de-anonymization and
// analysis scans consume: one successful payment's observable features
// plus its execution shape, without the enclosing *Page object graph.
// The view is reused between callbacks; all fields are values, so
// copying the struct (or individual fields) is always safe.
type PaymentView struct {
	// Seq and Time come from the enclosing page header.
	Seq  uint64
	Time CloseTime
	// Index is the transaction's position within its page.
	Index int

	Sender      addr.AccountID
	Destination addr.AccountID
	Currency    amount.Currency
	Amount      amount.Value

	// Execution shape from the metadata.
	ParallelPaths  int
	MaxHops        int
	OffersConsumed uint32
	CrossCurrency  bool
}

// decodeValueAt decodes an amount.Value at data[off:], with the exact
// validation the full decoder applies.
func decodeValueAt(data []byte, off int) (amount.Value, error) {
	neg := data[off]
	mant := binary.BigEndian.Uint64(data[off+1 : off+9])
	exp := int(int16(binary.BigEndian.Uint16(data[off+9 : off+11])))
	m := int64(mant)
	if m < 0 {
		return amount.Value{}, fmt.Errorf("ledger: mantissa %d out of range", mant)
	}
	if neg == 1 {
		m = -m
	}
	v, err := amount.NewValue(m, exp)
	if err != nil {
		return amount.Value{}, fmt.Errorf("ledger: decoding value: %w", err)
	}
	return v, nil
}

// ScanPayments walks a page encoding in place and calls fn once per
// successful payment with a reused PaymentView, returning the bytes
// consumed. The projection is exactly the set of payments
// deanon.FromTransaction accepts from the DecodePage'd equivalent:
// transactions of type TxPayment whose result is tesSUCCESS. Framing is
// fully validated (a CRC-clean store record that DecodePage accepts
// never fails here); field contents of skipped transactions are not
// inspected. fn errors abort the scan and propagate.
func ScanPayments(payload []byte, fn func(pv *PaymentView) error) (int, error) {
	hdr, off, err := DecodeHeader(payload)
	if err != nil {
		return 0, err
	}
	if len(payload) < off+4 {
		return 0, ErrTruncated
	}
	n := int(binary.BigEndian.Uint32(payload[off:]))
	off += 4
	var pv PaymentView
	pv.Seq = hdr.Sequence
	pv.Time = hdr.CloseTime
	for i := 0; i < n; i++ {
		tx := payload[off:]
		txLen, err := skipTx(tx)
		if err != nil {
			return 0, fmt.Errorf("ledger: page %d, tx %d: %w", hdr.Sequence, i, err)
		}
		tx = tx[:txLen]
		off += txLen
		meta := payload[off:]
		metaLen, err := skipMeta(meta)
		if err != nil {
			return 0, fmt.Errorf("ledger: page %d, meta %d: %w", hdr.Sequence, i, err)
		}
		meta = meta[:metaLen]
		off += metaLen
		if TxType(tx[txOffType]) != TxPayment || TxResult(meta[metaOffResult]) != ResultSuccess {
			continue
		}
		pv.Index = i
		copy(pv.Sender[:], tx[txOffAccount:])
		copy(pv.Destination[:], tx[txOffDestination:])
		copy(pv.Currency[:], tx[txOffAmount:])
		if pv.Amount, err = decodeValueAt(tx, txOffAmount+3); err != nil {
			return 0, fmt.Errorf("ledger: page %d, tx %d: %w", hdr.Sequence, i, err)
		}
		hops := meta[metaOffNPaths+1 : metaOffNPaths+1+int(meta[metaOffNPaths])]
		pv.ParallelPaths = len(hops)
		maxHops := 0
		for _, h := range hops {
			if int(h) > maxHops {
				maxHops = int(h)
			}
		}
		pv.MaxHops = maxHops
		tail := metaOffNPaths + 1 + len(hops)
		pv.OffersConsumed = binary.BigEndian.Uint32(meta[tail:])
		pv.CrossCurrency = meta[tail+4] == 1
		if err := fn(&pv); err != nil {
			return off, err
		}
	}
	return off, nil
}
