package serve

import (
	"ripplestudy/internal/deanon"
)

// fingerprintState is the mutable Figure 3 / Table I view: the
// fingerprint count tables for the paper's ten resolution tuples,
// maintained incrementally by a deanon.ShardedIncStudy — K single-writer
// count shards routed by fingerprint high bits — so both the
// information-gain rows and individual sender-uniqueness lookups stay
// O(1) at any point of the stream while increments scale with cores.
//
// The fingerprints themselves are computed upstream, once per payment,
// by the projection front door (project.go) through the study's shared
// plan; apply only routes them. Sealing is epoch-consistent
// scatter-gather: the study flushes and barriers every shard that
// changed, then clones only those shards' tables, so Lookup and the
// Figure 3 rows are bit-identical to a single-writer (1-shard) pass
// over the same pages.
type fingerprintState struct {
	study *deanon.ShardedIncStudy
	// feeders are the per-pipeline-worker intakes at workers>1: each
	// apply worker batches observations through its own feeder, so a
	// count shard receives one coalesced batch per flush instead of
	// contended per-record handoffs. nil at workers==1 (the study's
	// single-producer path, including its inline 1-shard fast path).
	feeders []*deanon.IncFeeder
	rows    int
	// lastSealPayments is the study size the previous seal covered;
	// sealDue compares against it. Written only by the sealing
	// goroutine (the view worker at workers==1, the sealer otherwise).
	lastSealPayments int
}

// newFingerprintState builds the view with the requested shard count
// (rounded up to a power of two; <= 0 picks the machine default).
func newFingerprintState(shards int) *fingerprintState {
	bits := deanon.DefaultShardBits()
	if shards > 0 {
		bits = 0
		for 1<<bits < shards {
			bits++
		}
	}
	study := deanon.NewShardedIncStudy(deanon.Figure3Rows, bits)
	return &fingerprintState{study: study, rows: len(deanon.Figure3Rows)}
}

// plan exposes the study's compiled fingerprint plan for the projection
// front door.
func (f *fingerprintState) plan() *deanon.FingerprintPlan { return f.study.Plan() }

// shards reports the count-shard fan-out, for metrics.
func (f *fingerprintState) shards() int { return f.study.Shards() }

// attachFeeders switches the view to multi-producer intake, one feeder
// per pipeline worker. Must run before any apply; it disables the
// study's inline fast path.
func (f *fingerprintState) attachFeeders(n int) {
	f.feeders = f.study.Feeders(n)
}

// apply folds one projected page in: the record's fingerprint slab
// holds rows fingerprints per payment, already in the study's row
// order.
func (f *fingerprintState) apply(rec *pageRecord) {
	for off := 0; off < len(rec.fps); off += f.rows {
		f.study.ObserveFingerprints(rec.fps[off : off+f.rows])
	}
}

// applyShard is apply for the multi-worker pipeline: observations route
// through the calling worker's own feeder, which only that worker (and
// the sealer, under barrier) touches.
func (f *fingerprintState) applyShard(shard int, rec *pageRecord) {
	if f.feeders == nil {
		f.apply(rec)
		return
	}
	fd := f.feeders[shard]
	for off := 0; off < len(rec.fps); off += f.rows {
		fd.ObserveFingerprints(rec.fps[off : off+f.rows])
	}
}

// sealDue is the view's batch-boundary publish-cost gate: a seal clones
// every dirty count shard, which under uniform fingerprint traffic is
// the entire table — O(distinct fingerprints), not O(batch). Requiring
// the study to double since the previous seal spaces publishes
// geometrically, so total copy-on-publish traffic stays linear in
// ingest (≤2× the final table) while a firehose backfill still surfaces
// mid-stream epochs. Inbox-dry seals bypass this gate, so any pause in
// the stream — including every Drain — still publishes immediately and
// idle epochs stay fresh.
func (f *fingerprintState) sealDue() bool {
	return f.study.Payments() >= 2*f.lastSealPayments
}

// snapshot seals the study as an immutable FingerprintSnapshot.
// Copy-on-publish touches only the shards that changed since the last
// seal; unchanged shards share their previous clones.
func (f *fingerprintState) snapshot(epoch, appliedSeq uint64) *FingerprintSnapshot {
	// At workers>1 this runs with every apply worker paused (seal
	// barrier) or stopped (shutdown), so flushing their feeders here is
	// single-threaded by construction.
	for _, fd := range f.feeders {
		fd.Flush()
	}
	snap := f.study.Seal()
	f.lastSealPayments = snap.Payments()
	return &FingerprintSnapshot{
		Epoch:      epoch,
		AppliedSeq: appliedSeq,
		Payments:   snap.Payments(),
		Rows:       snap.Results(),
		study:      snap,
	}
}

// close stops the study's shard workers. Snapshots stay valid.
func (f *fingerprintState) close() { f.study.Close() }

// FingerprintSnapshot is one sealed epoch of the de-anonymization view.
type FingerprintSnapshot struct {
	// Epoch identifies the publish this snapshot came from.
	Epoch uint64 `json:"epoch"`
	// AppliedSeq is the highest ledger sequence folded in.
	AppliedSeq uint64 `json:"applied_seq"`
	// Payments is the number of observable payments fingerprinted.
	Payments int `json:"payments"`
	// Rows holds the Figure 3 information-gain rows.
	Rows []deanon.RowResult `json:"rows"`

	// study is the sealed shard snapshot answering lookups; read-only.
	study *deanon.IncSnapshot
}

// Lookup reports how many payments in this snapshot share the
// observation's fingerprint at Figure 3 resolution row — 0 never seen,
// 1 unique (the sender is de-anonymized), 2 ambiguous (≥2). O(1).
func (s *FingerprintSnapshot) Lookup(row int, f deanon.Features) (count uint8, ok bool) {
	if row < 0 || row >= len(s.Rows) {
		return 0, false
	}
	return s.study.Lookup(row, f), true
}

// Resolutions returns the snapshot's resolution rows.
func (s *FingerprintSnapshot) Resolutions() []deanon.Resolution {
	return s.study.Resolutions()
}

// CountBytes reports the sealed tables' resident footprint.
func (s *FingerprintSnapshot) CountBytes() int { return s.study.CountBytes() }
