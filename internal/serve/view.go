// Package serve is the live query-serving layer: it ingests closed
// ledger pages and validation events as they happen — from a
// netstream.ResilientClient subscription, a ledgerstore backfill, or
// both — incrementally maintains the materialized views behind the
// paper's figures (per-validator tallies for Fig. 2, the fingerprint
// count tables for Fig. 3 and sender-uniqueness lookups, the ecosystem
// histograms for Figs. 4–6), and answers queries from immutable epoch
// snapshots over an HTTP JSON API (cmd/ripple-serve).
//
// Concurrency model: every view is owned by exactly one writer
// goroutine fed over a bounded channel (single-writer principle — the
// view's mutable state needs no locks). Readers never touch mutable
// state: each publish seals an immutable copy-on-publish snapshot
// behind an atomic pointer and bumps the view's epoch, so queries never
// block ingestion and ingestion never blocks queries. Publishes happen
// whenever a view's inbox runs dry (fresh epochs under light load) and
// at least every PublishBatch updates (amortized snapshot cost under
// heavy load).
package serve

import (
	"sync/atomic"

	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
)

// update is one unit of ingest work fanned out to the views: a stream
// event (validation or ledger close), a decoded sealed page, or both.
// Backfilled pages carry no event.
type update struct {
	ev   consensus.Event
	page *ledger.Page
}

// viewWorker is the single-writer machinery shared by all views: a
// bounded inbox drained by one goroutine that applies updates to the
// view's private state and publishes immutable snapshots.
type viewWorker struct {
	name    string
	in      chan update
	apply   func(update)
	publish func(epoch uint64)
	batch   int
	block   bool

	epoch      atomic.Uint64
	offered    atomic.Uint64
	applied    atomic.Uint64
	dropped    atomic.Uint64
	sealed     atomic.Uint64 // applied updates covered by the latest publish
	appliedSeq atomic.Uint64 // highest ledger sequence applied
	streamSeq  atomic.Uint64 // highest stream sequence applied

	done chan struct{}
}

// newViewWorker starts a view. publish(0) is called synchronously before
// any update so queries always find a (possibly empty) snapshot.
func newViewWorker(name string, queue, batch int, block bool, apply func(update), publish func(epoch uint64)) *viewWorker {
	if queue < 1 {
		queue = 1
	}
	if batch < 1 {
		batch = 1
	}
	w := &viewWorker{
		name:    name,
		in:      make(chan update, queue),
		apply:   apply,
		publish: publish,
		batch:   batch,
		block:   block,
		done:    make(chan struct{}),
	}
	w.publish(0)
	go w.run()
	return w
}

func (w *viewWorker) run() {
	defer close(w.done)
	sinceLast := 0
	seal := func() {
		if sinceLast == 0 {
			return
		}
		w.publish(w.epoch.Add(1))
		// Published; everything applied so far is now visible to readers.
		w.sealed.Store(w.applied.Load())
		sinceLast = 0
	}
	for {
		var u update
		var ok bool
		select {
		case u, ok = <-w.in:
		default:
			// Inbox dry: seal what has accumulated, then wait.
			seal()
			u, ok = <-w.in
		}
		if !ok {
			// Shutdown: everything offered has been applied; seal the
			// final epoch so the last snapshot reflects the full ingest.
			seal()
			return
		}
		w.apply(u)
		if u.page != nil {
			w.bumpSeq(&w.appliedSeq, u.page.Header.Sequence)
		} else if u.ev.Seq > 0 {
			w.bumpSeq(&w.appliedSeq, u.ev.Seq)
		}
		if u.ev.StreamSeq > 0 {
			w.bumpSeq(&w.streamSeq, u.ev.StreamSeq)
		}
		w.applied.Add(1)
		sinceLast++
		if sinceLast >= w.batch {
			seal()
		}
	}
}

// bumpSeq raises a monotonic gauge to at least v. Only the worker
// goroutine writes it, but parallel backfills interleave segments, so
// "highest seen" — not "last seen" — is the meaningful value.
func (w *viewWorker) bumpSeq(g *atomic.Uint64, v uint64) {
	if v > g.Load() {
		g.Store(v)
	}
}

// offer hands an update to the view. Blocking mode applies backpressure
// (lossless, the differential-test configuration); non-blocking mode
// drops and counts when the inbox is full (load-shedding for live
// serving where falling behind the stream is worse than a coarser
// view).
func (w *viewWorker) offer(u update) bool {
	w.offered.Add(1)
	if w.block {
		w.in <- u
		return true
	}
	select {
	case w.in <- u:
		return true
	default:
		w.dropped.Add(1)
		return false
	}
}

// lag reports updates offered but not yet applied (nor dropped) — the
// view's ingest backlog.
func (w *viewWorker) lag() uint64 {
	return w.offered.Load() - w.applied.Load() - w.dropped.Load()
}

// close drains the inbox, publishes the final epoch, and waits for the
// worker to exit. The caller must guarantee no concurrent offer.
func (w *viewWorker) close() {
	close(w.in)
	<-w.done
}
