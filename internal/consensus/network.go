package consensus

import (
	"fmt"
	"math/rand"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/payment"
)

// Config parameterizes a consensus network.
type Config struct {
	// Thresholds is the rising agreement schedule of the proposal
	// phase. rippled raises the required majority across proposal
	// iterations; the analyses of the protocol ([7], [8] in the paper)
	// led to the current 80% final quorum.
	Thresholds []float64
	// ValidationQuorum is the fraction of the trusted list whose
	// signatures make a page fully validated (0.8 in Ripple).
	ValidationQuorum float64
	// TxDropRate is the probability that a candidate transaction fails
	// to reach one validator before proposals start (network
	// propagation loss) — the source of disputes.
	TxDropRate float64
	// CloseInterval is the simulated wall-clock time between ledger
	// closes ("paying someone ... takes, on average, from 5 to 10
	// seconds").
	CloseInterval time.Duration
	// Seed drives all randomness in the simulation.
	Seed int64
	// StartTime anchors the simulated clock.
	StartTime time.Time
	// StreamPages attaches the canonical encoding of each validated
	// page to its EventLedgerClosed event, so stream consumers can
	// materialize transaction-level views without a separate ledger
	// fetch path.
	StreamPages bool
	// StreamProposals publishes, per round, one aggregate EventProposal
	// carrying the candidate transaction-set hashes plus one
	// per-validator EventProposal (Node set) for every proposer's initial
	// transaction set, and attaches the agreed tx hashes to each
	// ledger-close event. The aggregate event tells a monitor a tx was in
	// play; the per-validator events let it tell targeted censorship (one
	// node omits a tx its peers propose) apart from global starvation (a
	// liveness failure where nobody's proposal closes). Off by default so
	// the benign stream stays byte-identical to the pre-attack pipeline.
	StreamProposals bool
	// Partition, when non-nil, models the sub-bound UNL-overlap attack:
	// the trusted quorum members split into two groups sharing Overlap
	// of their UNLs, and in split rounds each group validates its own
	// page. Below the 2(1−q) overlap bound both sides can reach quorum —
	// a committed fork the collection pipeline must notice.
	Partition *PartitionSpec
	// PropagationDelay is the modeled one-hop message latency used for
	// the per-round latency metric (default 150ms). It does not slow the
	// simulation down; it prices each proposal iteration and the
	// validation broadcast, the SISSLE round-latency axis.
	PropagationDelay time.Duration
	// AttackSeed drives all adversarial randomness (partition coin
	// flips) separately from Seed, so enabling an attack never perturbs
	// the benign population's random draws. Zero derives it from Seed.
	AttackSeed int64
}

// PartitionSpec configures the sub-bound overlap split.
type PartitionSpec struct {
	// Overlap is the fraction of each group's UNL shared with the other
	// (forks are feasible iff Overlap <= 2(1-quorum); see ForkFeasible).
	Overlap float64
	// SplitRate is the per-round probability that a dispute splits the
	// groups onto different pages (default 1: every round splits).
	SplitRate float64
}

// DefaultConfig returns the production-like parameters.
func DefaultConfig() Config {
	return Config{
		Thresholds:       []float64{0.5, 0.65, 0.7, 0.95},
		ValidationQuorum: 0.8,
		TxDropRate:       0.02,
		CloseInterval:    5 * time.Second,
		Seed:             1,
		StartTime:        time.Date(2015, 12, 1, 0, 0, 0, 0, time.UTC),
	}
}

// EventKind discriminates stream events.
type EventKind int

const (
	// EventValidation is one validator's signed validation of a page.
	EventValidation EventKind = iota + 1
	// EventLedgerClosed announces a fully validated main-chain page.
	EventLedgerClosed
	// EventProposal announces a candidate transaction set entering a
	// consensus round (emitted only with Config.StreamProposals): the
	// round's aggregate set (Node unset), then each proposer's initial
	// set (Node set). A monitor correlates proposals against closes to
	// spot censorship, and diffs the per-validator sets to tell a
	// targeted censor from a global liveness starvation.
	EventProposal
)

// Event is one entry of the validation stream — the data source the
// paper's collection server subscribed to.
type Event struct {
	Kind EventKind `json:"kind"`
	// StreamSeq is the event's position in the emitting network's
	// stream, assigned monotonically from 1. It lets collectors detect
	// gaps, deduplicate replays after a reconnect, and resume a broken
	// subscription from the last event they saw.
	StreamSeq uint64 `json:"stream_seq,omitempty"`
	// Seq is the ledger sequence the event refers to.
	Seq uint64 `json:"seq"`
	// LedgerHash is the page hash signed (validations) or committed
	// (closes).
	LedgerHash ledger.Hash `json:"ledger_hash"`
	// Node identifies the signing validator (validations only).
	Node addr.NodeID `json:"node,omitempty"`
	// Signature is the validator's signature over the page hash.
	Signature []byte `json:"signature,omitempty"`
	// Time is the simulated time of the event.
	Time time.Time `json:"time"`
	// TxCount is the number of transactions sealed (closes only).
	TxCount int `json:"tx_count,omitempty"`
	// PageData is the canonical encoding of the sealed page, attached
	// to EventLedgerClosed when the network runs with StreamPages —
	// the rippled "ledger stream with transactions" a live analytics
	// consumer (internal/serve) materializes views from. Empty for
	// validation events and metadata-only streams.
	PageData []byte `json:"page_data,omitempty"`
	// TxHashes carries, with Config.StreamProposals, the candidate
	// transaction hashes of an EventProposal or the agreed hashes of an
	// EventLedgerClosed — the censorship-detection signal. Empty
	// otherwise, keeping the default wire encoding unchanged.
	TxHashes []ledger.Hash `json:"tx_hashes,omitempty"`
}

// Page decodes the sealed page attached to a ledger-close event.
// It returns (nil, nil) when the event carries no page payload.
func (ev Event) Page() (*ledger.Page, error) {
	if len(ev.PageData) == 0 {
		return nil, nil
	}
	p, used, err := ledger.DecodePage(ev.PageData)
	if err != nil {
		return nil, err
	}
	if used != len(ev.PageData) {
		return nil, fmt.Errorf("consensus: %d trailing bytes after page %d payload", len(ev.PageData)-used, p.Header.Sequence)
	}
	return p, nil
}

// RoundResult summarizes one consensus round.
type RoundResult struct {
	Page          *ledger.Page
	Validated     bool
	Validations   int // signatures matching the canonical page
	ProposalIters int
	Deferred      []*ledger.Tx // transactions that failed to converge

	// Messages counts the protocol messages the round cost: each
	// proposal iteration is a full proposer-to-proposer broadcast, and
	// each validation or close is broadcast to every present node — the
	// SISSLE message-complexity axis.
	Messages int
	// ProposalMsgs and ValidationMsgs break Messages down by phase.
	ProposalMsgs   int
	ValidationMsgs int
	// Latency is the modeled wall-clock cost of the round: one
	// PropagationDelay per proposal iteration plus one for the
	// validation broadcast. Delayed proposers stretch it by forcing
	// extra iterations before convergence.
	Latency time.Duration

	// CensoredTxs counts candidate transactions a censor validator
	// vetoed out of the agreed set this round.
	CensoredTxs int
	// ForkCommitted marks a partitioned round in which both groups
	// reached their internal quorum on different pages; ForkHash is the
	// rival page's hash (the canonical page stays in Page).
	ForkCommitted bool
	ForkHash      ledger.Hash
}

// Network simulates the validator network plus the canonical ledger
// state machine. It is not safe for concurrent use.
type Network struct {
	cfg        Config
	rng        *rand.Rand
	validators []*validator

	engine *payment.Engine
	chain  *ledger.Chain

	// testnet: the parallel chain the test-net cluster validates.
	testChain *ledger.Chain

	round int
	now   time.Time

	streamSeq   uint64
	subscribers []func(Event)

	// Adversarial state. atkRng drives all Byzantine randomness so the
	// benign population's draws from rng are identical with and without
	// an attack configured; lateQueue holds delayer validations to
	// broadcast next round; hasByzantine short-circuits every attack
	// path when no Byzantine validator is configured.
	atkRng        *rand.Rand
	lateQueue     []Event
	hasByzantine  bool
	equivocations int
	forkSeqs      []uint64
}

// NewNetwork creates a network with the given validators over a fresh
// genesis state.
func NewNetwork(cfg Config, specs []ValidatorSpec) *Network {
	if cfg.ValidationQuorum == 0 {
		cfg.ValidationQuorum = 0.8
	}
	if len(cfg.Thresholds) == 0 {
		cfg.Thresholds = DefaultConfig().Thresholds
	}
	if cfg.CloseInterval == 0 {
		cfg.CloseInterval = 5 * time.Second
	}
	if cfg.StartTime.IsZero() {
		cfg.StartTime = DefaultConfig().StartTime
	}
	if cfg.PropagationDelay == 0 {
		cfg.PropagationDelay = 150 * time.Millisecond
	}
	if cfg.AttackSeed == 0 {
		cfg.AttackSeed = cfg.Seed*6364136223846793005 + 1442695040888963407
	}
	if cfg.Partition != nil && cfg.Partition.SplitRate == 0 {
		p := *cfg.Partition
		p.SplitRate = 1
		cfg.Partition = &p
	}
	n := &Network{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		atkRng:    rand.New(rand.NewSource(cfg.AttackSeed)),
		engine:    payment.NewEngine(),
		chain:     ledger.NewChain(ledger.Genesis("main", ledger.CloseTimeFromTime(cfg.StartTime))),
		testChain: ledger.NewChain(ledger.Genesis("testnet", ledger.CloseTimeFromTime(cfg.StartTime))),
		now:       cfg.StartTime,
	}
	for _, spec := range specs {
		v := newValidator(spec)
		n.validators = append(n.validators, v)
		if spec.Behavior.Byzantine() {
			n.hasByzantine = true
		}
	}
	return n
}

// Equivocations returns how many conflicting validation signatures the
// network's equivocators have broadcast so far.
func (n *Network) Equivocations() int { return n.equivocations }

// ForkSeqs returns the ledger sequences at which a partitioned round
// committed a fork (both groups reached quorum on different pages).
func (n *Network) ForkSeqs() []uint64 { return n.forkSeqs }

// Engine exposes the canonical state machine (e.g. to fund accounts
// before a simulation).
func (n *Network) Engine() *payment.Engine { return n.engine }

// Chain exposes the canonical main chain.
func (n *Network) Chain() *ledger.Chain { return n.chain }

// TestChain exposes the parallel test-net chain.
func (n *Network) TestChain() *ledger.Chain { return n.testChain }

// Round returns the number of completed rounds.
func (n *Network) Round() int { return n.round }

// Now returns the simulated clock.
func (n *Network) Now() time.Time { return n.now }

// Subscribe registers a stream consumer. Events are delivered
// synchronously during RunRound, in deterministic order.
func (n *Network) Subscribe(fn func(Event)) { n.subscribers = append(n.subscribers, fn) }

func (n *Network) emit(ev Event) {
	n.streamSeq++
	ev.StreamSeq = n.streamSeq
	for _, fn := range n.subscribers {
		fn(ev)
	}
}

// EventsEmitted returns the stream sequence number of the last emitted
// event (the total number of events the network has published).
func (n *Network) EventsEmitted() uint64 { return n.streamSeq }

// Disable takes validators down (hijack or DoS): they stop proposing and
// signing, but remain on the trusted lists and keep counting against the
// validation quorum. It returns how many validators matched.
func (n *Network) Disable(labels ...string) int {
	hit := 0
	for _, v := range n.validators {
		for _, l := range labels {
			if v.spec.Label == l || v.DisplayName() == l {
				v.disabled = true
				hit++
			}
		}
	}
	return hit
}

// DisableTopActives takes down the k first trusted active validators —
// the paper's attack on "the majority of these validators".
func (n *Network) DisableTopActives(k int) int {
	hit := 0
	for _, v := range n.validators {
		if hit == k {
			break
		}
		if v.spec.Behavior == BehaviorActive && v.spec.Trusted && !v.disabled {
			v.disabled = true
			hit++
		}
	}
	return hit
}

// Validators returns the display names of all configured validators, for
// reports.
func (n *Network) Validators() []string {
	out := make([]string, len(n.validators))
	for i, v := range n.validators {
		out[i] = v.DisplayName()
	}
	return out
}

// NodeIDOf returns the node ID for a configured validator label, for
// tests and registries.
func (n *Network) NodeIDOf(label string) (addr.NodeID, bool) {
	for _, v := range n.validators {
		if v.spec.Label == label || v.DisplayName() == label {
			return v.id, true
		}
	}
	return addr.NodeID{}, false
}

// RunRound executes one full consensus round over the candidate
// transactions: proposal convergence, canonical application, validation
// broadcast, and the parallel test-net close. Deferred transactions (ones
// that failed to reach agreement) are reported for resubmission.
//
// With Byzantine validators configured, the round additionally carries
// their attacks: censors veto targeted transactions, delayers withhold
// proposals and broadcast their validations a round late, equivocators
// double-sign, and a Partition config can split the trusted UNL onto two
// pages. All adversarial randomness comes from a separate RNG, so a
// network without Byzantine validators or a partition produces a
// bit-identical event stream to the pre-attack implementation.
func (n *Network) RunRound(candidates []*ledger.Tx) (*RoundResult, error) {
	n.round++
	n.now = n.now.Add(n.cfg.CloseInterval)

	// Validations a delayer withheld last round arrive this round,
	// after the live traffic (attack path; always empty in benign runs).
	late := n.lateQueue
	n.lateQueue = nil

	var candHashes []ledger.Hash
	if n.cfg.StreamProposals && len(candidates) > 0 {
		candHashes = make([]ledger.Hash, len(candidates))
		for i, tx := range candidates {
			candHashes[i] = tx.Hash()
		}
		n.emit(Event{
			Kind:     EventProposal,
			Seq:      n.chain.Tip().Header.Sequence + 1,
			TxHashes: candHashes,
			Time:     n.now,
		})
	}

	// Gather the active validators present this round.
	var actives []*validator
	for _, v := range n.validators {
		if v.spec.Behavior == BehaviorActive && !v.disabled && v.present(n.round) && n.rng.Float64() < v.spec.Availability {
			actives = append(actives, v)
		}
	}
	// Byzantine proposers (equivocators, censors, delayers) join the
	// proposal phase after the benign actives, so the benign RNG draw
	// order is untouched.
	proposers := actives
	if n.hasByzantine {
		proposers = append(make([]*validator, 0, len(actives)+4), actives...)
		for _, v := range n.validators {
			if v.spec.Behavior.Byzantine() && !v.disabled && v.present(n.round) && n.atkRng.Float64() < v.spec.Availability {
				proposers = append(proposers, v)
			}
		}
	}

	agreed, iters, initial := n.proposalPhase(proposers, candidates)

	// Per-validator proposal events: each proposer's initial transaction
	// set, the signal that separates a censor (omits one tx, proposes the
	// rest) from a stalled proposer (proposes nothing — no event at all,
	// since an empty set carries no information). Not counted as protocol
	// messages: proposals are already priced by the iteration count.
	if n.cfg.StreamProposals && len(initial) > 0 {
		seq := n.chain.Tip().Header.Sequence + 1
		for i, v := range proposers {
			var hashes []ledger.Hash
			for j := range candidates {
				if initial[i][j] {
					hashes = append(hashes, candHashes[j])
				}
			}
			if len(hashes) == 0 {
				continue
			}
			n.emit(Event{
				Kind:     EventProposal,
				Seq:      seq,
				Node:     v.id,
				TxHashes: hashes,
				Time:     n.now,
			})
		}
	}

	var deferred []*ledger.Tx
	censored := 0
	agreedSet := make(map[ledger.Hash]bool, len(agreed))
	for _, tx := range agreed {
		agreedSet[tx.Hash()] = true
	}
	for _, tx := range candidates {
		if !agreedSet[tx.Hash()] {
			deferred = append(deferred, tx)
			for _, v := range proposers {
				if v.censors(tx) {
					censored++
					break
				}
			}
		}
	}

	// Apply the agreed set to the canonical state machine.
	page, err := n.closeMainPage(agreed)
	if err != nil {
		return nil, err
	}

	// Close the parallel test-net page (empty traffic).
	testPage, err := closeEmptyPage(n.testChain, n.now)
	if err != nil {
		return nil, err
	}

	// Sub-bound overlap attack: split the trusted quorum members into
	// two groups; group B validates a divergent page this round.
	canonical := page.Header.Hash()
	var (
		split      bool
		forkHash   ledger.Hash
		groupOf    map[*validator]int // 1 = canonical side, 2 = fork side
		groupSize  int
		sigA, sigB int
	)
	if p := n.cfg.Partition; p != nil && n.atkRng.Float64() < p.SplitRate {
		groupOf, groupSize = n.partitionGroups(p.Overlap)
		if groupSize > 0 {
			split = true
			forkHash = ledger.SHA512Half(fmt.Appendf(nil, "partition:%d:%d", page.Header.Sequence, n.cfg.AttackSeed))
		}
	}

	// Validation broadcast. The quorum denominator is the trusted list
	// itself (UNLs are configuration, not liveness): a validator that is
	// merely offline — or hijacked — still counts against the 80%
	// requirement. Validators outside their join/leave window have been
	// retired from operators' lists and do not count. Trusted Byzantine
	// validators count against the denominator too: an insider that
	// withholds its signature is indistinguishable from a downed one.
	matching := 0
	trustedTotal := 0
	emitted := 0
	present := 0
	for _, v := range n.validators {
		if !v.present(n.round) {
			continue
		}
		present++
		if v.spec.Trusted && (v.spec.Behavior == BehaviorActive || v.spec.Behavior.Byzantine()) {
			trustedTotal++
		}
		rng := n.rng
		if v.spec.Behavior.Byzantine() {
			rng = n.atkRng
		}
		if v.disabled || rng.Float64() >= v.spec.Availability {
			continue
		}
		emitVal := func(h ledger.Hash) {
			emitted++
			n.emit(Event{
				Kind:       EventValidation,
				Seq:        page.Header.Sequence,
				LedgerHash: h,
				Node:       v.id,
				Signature:  v.key.Sign(h[:]),
				Time:       n.now,
			})
		}
		switch v.spec.Behavior {
		case BehaviorDelayer:
			// Signs the canonical page, but broadcasts it past the close
			// deadline: the signature goes out during the next round and
			// never counts toward this round's quorum.
			n.lateQueue = append(n.lateQueue, Event{
				Kind:       EventValidation,
				Seq:        page.Header.Sequence,
				LedgerHash: canonical,
				Node:       v.id,
				Signature:  v.key.Sign(canonical[:]),
			})
			continue
		case BehaviorEquivocator:
			// Double-sign: the canonical page toward one UNL partition
			// and a conflicting hash toward the other. In a split round
			// the conflicting signature is the rival page itself, pushing
			// both sides toward quorum.
			other := ledger.SHA512Half(fmt.Appendf(nil, "equiv:%s:%d", v.DisplayName(), page.Header.Sequence))
			if split {
				other = forkHash
			}
			emitVal(canonical)
			emitVal(other)
			n.equivocations++
			if v.spec.Trusted {
				matching++
			}
			if split && groupOf[v] != 0 {
				sigA++
				sigB++
			}
			continue
		}
		signed := n.validationHashFor(v, page, testPage)
		if split && groupOf[v] == 2 && signed == canonical {
			signed = forkHash
		}
		if signed.IsZero() {
			continue
		}
		// Only trusted (UNL) validations count towards the quorum;
		// anyone can broadcast validations, but rippled only tallies
		// its configured list.
		if signed == canonical && v.spec.Trusted {
			matching++
		}
		if split {
			switch groupOf[v] {
			case 1:
				if signed == canonical {
					sigA++
				}
			case 2:
				if signed == forkHash {
					sigB++
				}
			}
		}
		emitVal(signed)
	}

	quorum := int(float64(trustedTotal)*n.cfg.ValidationQuorum + 0.999999)
	validated := trustedTotal > 0 && matching >= quorum
	forkCommitted := false
	closes := 0
	if split {
		// Each group tallies against its own UNL of groupSize members.
		gq := int(float64(groupSize)*n.cfg.ValidationQuorum + 0.999999)
		validated = sigA >= gq
		forkCommitted = validated && sigB >= gq
		if sigB >= gq {
			// The rival partition validated its page: a second fully
			// validated ledger at the same sequence enters the stream.
			closes++
			n.emit(Event{
				Kind:       EventLedgerClosed,
				Seq:        page.Header.Sequence,
				LedgerHash: forkHash,
				Time:       n.now,
			})
			if forkCommitted {
				n.forkSeqs = append(n.forkSeqs, page.Header.Sequence)
			}
		}
	}
	if validated {
		closes++
		ev := Event{
			Kind:       EventLedgerClosed,
			Seq:        page.Header.Sequence,
			LedgerHash: canonical,
			Time:       n.now,
			TxCount:    len(page.Txs),
		}
		if n.cfg.StreamPages {
			ev.PageData = page.Encode(nil)
		}
		if n.cfg.StreamProposals && len(agreed) > 0 {
			hashes := make([]ledger.Hash, len(agreed))
			for i, tx := range agreed {
				hashes[i] = tx.Hash()
			}
			ev.TxHashes = hashes
		}
		n.emit(ev)
	}

	// Last round's withheld validations finally go out — trailing the
	// sequence high-water mark, which is how a monitor spots them.
	for _, ev := range late {
		ev.Time = n.now
		emitted++
		n.emit(ev)
	}

	propMsgs := iters * len(proposers) * max(len(proposers)-1, 0)
	valMsgs := (emitted + closes) * max(present-1, 0)
	return &RoundResult{
		Page:           page,
		Validated:      validated,
		Validations:    matching,
		ProposalIters:  iters,
		Deferred:       deferred,
		Messages:       propMsgs + valMsgs,
		ProposalMsgs:   propMsgs,
		ValidationMsgs: valMsgs,
		Latency:        time.Duration(iters+1) * n.cfg.PropagationDelay,
		CensoredTxs:    censored,
		ForkCommitted:  forkCommitted,
		ForkHash:       forkHash,
	}, nil
}

// partitionGroups splits the present trusted quorum members into two
// UNL groups sharing `overlap` of their members: with N members and
// group size g, each group holds e = g−s exclusive members and s shared
// ones (N = 2e+s, overlap = s/g). Shared members follow whichever
// proposal reached them first — a fair coin in a symmetric split.
// Returns the side of each member (1 = canonical, 2 = fork) and g.
func (n *Network) partitionGroups(overlap float64) (map[*validator]int, int) {
	var members []*validator
	for _, v := range n.validators {
		if !v.present(n.round) || v.disabled {
			continue
		}
		if v.spec.Trusted && (v.spec.Behavior == BehaviorActive || v.spec.Behavior.Byzantine()) {
			members = append(members, v)
		}
	}
	total := len(members)
	if total < 2 {
		return nil, 0
	}
	if overlap < 0 {
		overlap = 0
	}
	if overlap > 1 {
		overlap = 1
	}
	exclusive := int((1-overlap)/(2-overlap)*float64(total) + 0.5)
	if 2*exclusive > total {
		exclusive = total / 2
	}
	groupOf := make(map[*validator]int, total)
	for i, v := range members {
		switch {
		case i < exclusive:
			groupOf[v] = 1
		case i >= total-exclusive:
			groupOf[v] = 2
		default:
			// Shared member: coin-flip which page reached it first.
			groupOf[v] = 1 + n.atkRng.Intn(2)
		}
	}
	shared := total - 2*exclusive
	return groupOf, exclusive + shared
}

// proposalPhase runs the avalanche-style dispute resolution: each active
// validator starts from its (lossy) view of the candidate set and
// iteratively keeps a transaction only when the fraction of peers
// proposing it meets the rising threshold. Byzantine proposers bend the
// rules: censors force targeted transactions out of their proposals at
// every iteration, and delayers withhold all votes until their
// DelayIters deadline passes. Returns the agreed set, the number of
// iterations used, and the iteration-0 proposal matrix
// (initial[i][j] — did validator i's first broadcast include candidate
// j), which RunRound streams as per-validator proposal events.
func (n *Network) proposalPhase(actives []*validator, candidates []*ledger.Tx) ([]*ledger.Tx, int, [][]bool) {
	if len(actives) == 0 || len(candidates) == 0 {
		return nil, 0, nil
	}
	// proposals[i][j] — does validator i currently propose candidate j.
	proposals := make([][]bool, len(actives))
	for i, v := range actives {
		proposals[i] = make([]bool, len(candidates))
		for j := range candidates {
			keep := n.rng.Float64() >= n.cfg.TxDropRate
			if v.spec.Behavior.Byzantine() && (v.withholds(0) || v.censors(candidates[j])) {
				keep = false
			}
			proposals[i][j] = keep
		}
	}
	initial := proposals // iteration loop replaces, never mutates, rows
	iters := 0
	for ti, threshold := range n.cfg.Thresholds {
		iters++
		next := make([][]bool, len(actives))
		converged := true
		for i := range actives {
			next[i] = make([]bool, len(candidates))
			for j := range candidates {
				votes := 0
				for k := range actives {
					if proposals[k][j] {
						votes++
					}
				}
				keep := float64(votes) >= threshold*float64(len(actives))
				if actives[i].spec.Behavior.Byzantine() &&
					(actives[i].withholds(ti+1) || actives[i].censors(candidates[j])) {
					keep = false
				}
				next[i][j] = keep
				if keep != proposals[i][j] {
					converged = false
				}
			}
		}
		proposals = next
		if converged {
			break
		}
	}
	// The final set: transactions every active validator proposes.
	var agreed []*ledger.Tx
	for j, tx := range candidates {
		all := true
		for i := range actives {
			if !proposals[i][j] {
				all = false
				break
			}
		}
		if all {
			agreed = append(agreed, tx)
		}
	}
	return agreed, iters, initial
}

// closeMainPage applies the agreed set to the canonical engine and
// appends the resulting page to the main chain.
func (n *Network) closeMainPage(agreed []*ledger.Tx) (*ledger.Page, error) {
	metas := make([]*ledger.TxMeta, 0, len(agreed))
	for _, tx := range agreed {
		meta, err := n.engine.Apply(tx)
		if err != nil {
			return nil, fmt.Errorf("consensus: applying tx: %w", err)
		}
		metas = append(metas, meta)
	}
	tip := n.chain.Tip()
	page := &ledger.Page{
		Header: ledger.PageHeader{
			Sequence:   tip.Header.Sequence + 1,
			ParentHash: tip.Header.Hash(),
			TxSetHash:  ledger.TxSetHash(agreed),
			StateHash:  n.engine.StateDigest(),
			CloseTime:  ledger.CloseTimeFromTime(n.now),
			TotalDrops: n.engine.TotalDrops(),
		},
		Txs:   agreed,
		Metas: metas,
	}
	if err := n.chain.Append(page); err != nil {
		return nil, fmt.Errorf("consensus: appending page: %w", err)
	}
	return page, nil
}

// closeEmptyPage extends a chain with an empty page.
func closeEmptyPage(c *ledger.Chain, now time.Time) (*ledger.Page, error) {
	tip := c.Tip()
	page := &ledger.Page{
		Header: ledger.PageHeader{
			Sequence:   tip.Header.Sequence + 1,
			ParentHash: tip.Header.Hash(),
			TxSetHash:  ledger.TxSetHash(nil),
			StateHash:  tip.Header.StateHash,
			CloseTime:  ledger.CloseTimeFromTime(now),
			TotalDrops: tip.Header.TotalDrops,
		},
	}
	if err := c.Append(page); err != nil {
		return nil, err
	}
	return page, nil
}

// validationHashFor selects the ledger hash a validator signs this
// round, per its behavior class.
func (n *Network) validationHashFor(v *validator, mainPage, testPage *ledger.Page) ledger.Hash {
	switch v.spec.Behavior {
	case BehaviorActive:
		return mainPage.Header.Hash()
	case BehaviorLaggard:
		if n.rng.Float64() < v.spec.SyncProbability {
			return mainPage.Header.Hash()
		}
		// Out of sync: the laggard's divergent state produces a page
		// hash of its own.
		return ledger.SHA512Half([]byte(fmt.Sprintf("laggard:%s:%d:%d", v.DisplayName(), mainPage.Header.Sequence, n.rng.Int63())))
	case BehaviorForked:
		// A private ledger: deterministic per validator, never on the
		// main chain.
		return ledger.SHA512Half([]byte(fmt.Sprintf("fork:%s:%d", v.DisplayName(), mainPage.Header.Sequence)))
	case BehaviorTestnet:
		return testPage.Header.Hash()
	case BehaviorCensor:
		// The censor signs the page it helped converge: with the targets
		// stripped during proposals, its validations look perfectly
		// healthy — the attack is invisible in the validation stream.
		return mainPage.Header.Hash()
	default:
		return ledger.Hash{}
	}
}

// Run executes `rounds` rounds pulling candidate transactions from next,
// which may return nil for an empty round. Deferred transactions are
// retried in the following round ahead of new traffic.
func (n *Network) Run(rounds int, next func(round int) []*ledger.Tx) ([]*RoundResult, error) {
	results := make([]*RoundResult, 0, rounds)
	var carry []*ledger.Tx
	for i := 1; i <= rounds; i++ {
		candidates := carry
		if next != nil {
			candidates = append(candidates, next(i)...)
		}
		res, err := n.RunRound(candidates)
		if err != nil {
			return results, err
		}
		carry = res.Deferred
		results = append(results, res)
	}
	return results, nil
}
