package orderbook

import (
	"testing"

	"ripplestudy/internal/amount"
)

func TestLookup(t *testing.T) {
	b := New()
	o := offer(1, 7, "110", "100")
	if err := b.Place(o); err != nil {
		t.Fatal(err)
	}
	if got := b.Lookup(acct(1), 7); got != o {
		t.Fatalf("Lookup = %p, want the placed offer %p", got, o)
	}
	if b.Lookup(acct(1), 8) != nil || b.Lookup(acct(2), 7) != nil {
		t.Error("Lookup of a missing offer must be nil")
	}
	b.Cancel(acct(1), 7)
	if b.Lookup(acct(1), 7) != nil {
		t.Error("Lookup after cancel must be nil")
	}
}

func TestBestQuality(t *testing.T) {
	b := New()
	if _, ok := b.BestQuality(usdEUR()); ok {
		t.Fatal("empty book reported a best quality")
	}
	for _, o := range []*Offer{
		offer(1, 1, "120", "100"), // 1.2
		offer(2, 1, "105", "100"), // 1.05
	} {
		if err := b.Place(o); err != nil {
			t.Fatal(err)
		}
	}
	q, ok := b.BestQuality(usdEUR())
	if !ok || q.Cmp(amount.MustParse("1.05")) != 0 {
		t.Fatalf("best quality = %s/%v, want 1.05", q, ok)
	}
}

// TestQualityMemoRefreshedAfterPartialFill pins that a partially filled
// offer's memoized quality tracks its residual amounts, exactly as the
// pre-memoization code recomputed Pays/Gets on every read.
func TestQualityMemoRefreshedAfterPartialFill(t *testing.T) {
	b := New()
	o := offer(1, 1, "110", "100") // quality 1.1
	if err := b.Place(o); err != nil {
		t.Fatal(err)
	}
	q, err := b.QuoteBuy(usdEUR(), amount.MustParse("40"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(q); err != nil {
		t.Fatal(err)
	}
	want, err := o.Pays.Value.Div(o.Gets.Value)
	if err != nil {
		t.Fatal(err)
	}
	if o.Quality().Cmp(want) != 0 {
		t.Errorf("memoized quality = %s, want residual Pays/Gets = %s", o.Quality(), want)
	}
}

// TestQuoteBuyIntoFullFillExact pins the full-fill fast path: consuming
// a whole offer pays its exact asking amount, no multiply rounding.
func TestQuoteBuyIntoFullFillExact(t *testing.T) {
	b := New()
	// Quality 110/3 is not representable exactly; a naive take×quality
	// for the full fill would round.
	if err := b.Place(offer(1, 1, "110", "3")); err != nil {
		t.Fatal(err)
	}
	var q Quote
	if err := b.QuoteBuyInto(usdEUR(), amount.MustParse("3"), &q); err != nil {
		t.Fatal(err)
	}
	if q.TotalGets.Cmp(amount.MustParse("3")) != 0 {
		t.Fatalf("gets = %s, want 3", q.TotalGets)
	}
	if q.TotalPays.Cmp(amount.MustParse("110")) != 0 {
		t.Fatalf("full fill pays = %s, want exactly 110", q.TotalPays)
	}
}

// TestQuoteBuyIntoReusesFills pins the zero-alloc contract: quoting
// into a warm Quote allocates nothing.
func TestQuoteBuyIntoReusesFills(t *testing.T) {
	b := New()
	for i := uint32(1); i <= 4; i++ {
		if err := b.Place(offer(uint64(i), i, "110", "100")); err != nil {
			t.Fatal(err)
		}
	}
	var q Quote
	want := amount.MustParse("250")
	if err := b.QuoteBuyInto(usdEUR(), want, &q); err != nil {
		t.Fatal(err) // warm-up sizes q.Fills
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := b.QuoteBuyInto(usdEUR(), want, &q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("QuoteBuyInto allocates %.1f per call, want 0", allocs)
	}
	if len(q.Fills) != 3 {
		t.Fatalf("fills = %d, want 3", len(q.Fills))
	}
}
