package synth

import (
	"math"
	"math/rand"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
)

// trafficClass is one currency's payment budget. WindowEnd < 1 confines
// the traffic to an early fraction of the history — the spam campaigns
// predate the paper's Table II replay window (Feb–Aug 2015), so they end
// before the final stretch of the generated history.
type trafficClass struct {
	cur       amount.Currency
	budget    int
	windowEnd float64
}

// poisson draws a Poisson variate (Knuth's method; λ here is ~1).
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// workload drives the payment and offer traffic, page by page.
func (g *generator) workload() error {
	target := g.cfg.Payments
	lambda := g.cfg.TxRate * g.cfg.CloseInterval.Seconds()
	offerBudget := int(float64(target) * g.cfg.OffersPerPayment)
	offerLambda := lambda * g.cfg.OffersPerPayment

	g.buildWorkloadIndexes()

	// Seed the books so early cross-currency payments find liquidity.
	initialOffers := 400
	if initialOffers > offerBudget {
		initialOffers = offerBudget
	}
	for i := 0; i < initialOffers; i++ {
		if err := g.placeOfferOrCancel(); err != nil {
			return err
		}
		offerBudget--
		if i%50 == 49 {
			if err := g.tick(); err != nil {
				return err
			}
		}
	}
	if err := g.tick(); err != nil {
		return err
	}

	// Currency budgets. Setup already emitted organic-currency deposits
	// (they are payments too), diluting the headline shares; the
	// dedicated traffic classes (XRP, CCK, MTL) compensate by targeting
	// share × (setup + workload) so the final ledger mix matches
	// Figure 4.
	totalExpected := float64(target + g.stats.PaymentsOK)
	var classes []trafficClass
	for _, m := range g.mix {
		b := int(m.share*totalExpected) - g.stats.ByCurrency[m.cur]
		if b < 0 {
			b = 0
		}
		tc := trafficClass{cur: m.cur, budget: b, windowEnd: 1}
		switch m.cur {
		case amount.MTL:
			tc.windowEnd = 0.6
		case amount.CCK:
			tc.windowEnd = 0.65
		}
		classes = append(classes, tc)
	}

	attempts := 0
	for attempts < target {
		n := poisson(g.rng, lambda)
		for i := 0; i < n && attempts < target; i++ {
			attempts++
			progress := float64(attempts) / float64(target)
			ci := g.pickClass(classes, progress)
			if ci < 0 {
				continue
			}
			classes[ci].budget--
			if err := g.onePayment(classes[ci].cur); err != nil {
				return err
			}
		}
		for o := poisson(g.rng, offerLambda); o > 0 && offerBudget > 0; o-- {
			if err := g.placeOfferOrCancel(); err != nil {
				return err
			}
			offerBudget--
		}
		if err := g.tick(); err != nil {
			return err
		}
	}
	return nil
}

// workload indexes built once.
type userLineRef struct {
	user int
	line int
}

func (g *generator) buildWorkloadIndexes() {
	g.linesByCur = make(map[amount.Currency][]userLineRef)
	g.merchantsByCur = make(map[amount.Currency][]int)
	for ui := range g.pop.Users {
		u := &g.pop.Users[ui]
		for li, l := range u.Lines {
			g.linesByCur[l.Currency] = append(g.linesByCur[l.Currency], userLineRef{user: ui, line: li})
			if u.Merchant {
				ms := g.merchantsByCur[l.Currency]
				if len(ms) == 0 || ms[len(ms)-1] != ui {
					g.merchantsByCur[l.Currency] = append(ms, ui)
				}
			}
		}
	}
	// Market-maker offer placement weights (zipfian concentration).
	total := 0.0
	for _, mm := range g.pop.MarketMakers {
		total += mm.OfferWeight
	}
	acc := 0.0
	g.mmCumWeights = make([]float64, len(g.pop.MarketMakers))
	for i, mm := range g.pop.MarketMakers {
		acc += mm.OfferWeight / total
		g.mmCumWeights[i] = acc
	}
}

// pickClass samples a currency class proportionally to its remaining
// budget divided by the time left in its window, so classes confined to
// an early window (the spam campaigns) spend their full budget before
// the window closes.
func (g *generator) pickClass(classes []trafficClass, progress float64) int {
	const eps = 1e-6
	total := 0.0
	weight := func(c trafficClass) float64 {
		if c.budget <= 0 || progress > c.windowEnd {
			return 0
		}
		left := c.windowEnd - progress
		if left < eps {
			left = eps
		}
		return float64(c.budget) / left
	}
	for _, c := range classes {
		total += weight(c)
	}
	if total == 0 {
		// All windows closed or budgets spent: fall back to any budget.
		for i, c := range classes {
			if c.budget > 0 {
				return i
			}
		}
		return -1
	}
	pick := g.rng.Float64() * total
	for i, c := range classes {
		w := weight(c)
		if w == 0 {
			continue
		}
		if pick < w {
			return i
		}
		pick -= w
	}
	return -1
}

// onePayment emits one payment of the given currency, dispatching to the
// per-currency traffic model.
func (g *generator) onePayment(cur amount.Currency) error {
	switch cur {
	case amount.XRP:
		return g.xrpPayment()
	case amount.CCK:
		return g.cckSpam()
	case amount.MTL:
		return g.mtlSpam()
	default:
		return g.organicPayment(cur)
	}
}

// xrpPayment: direct XRP traffic — gambling bets to Ripple Spin (~10%),
// ACCOUNT_ZERO ping-pong spam (~8%), and person-to-person transfers.
func (g *generator) xrpPayment() error {
	r := g.rng.Float64()
	switch {
	case r < 0.10: // Ripple Spin bet
		u := &g.pop.Users[g.rng.Intn(len(g.pop.Users))]
		bet := spinBets[g.rng.Intn(len(spinBets))]
		_, err := g.submit(u.Key, func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = g.pop.RippleSpin.AccountID()
			tx.Amount = amount.New(amount.XRP, bet)
		})
		return err
	case r < 0.18: // ACCOUNT_ZERO spam: anyone can sign for it
		spammer := g.pop.CCKSpammers[g.rng.Intn(2)]
		v := zeroSpam[g.rng.Intn(len(zeroSpam))]
		if g.zeroForward {
			g.zeroForward = false
			_, err := g.submit(spammer, func(tx *ledger.Tx) {
				tx.Type = ledger.TxPayment
				tx.Destination = addr.AccountZero
				tx.Amount = amount.New(amount.XRP, v)
			})
			return err
		}
		g.zeroForward = true
		_, err := g.submitAs(addr.AccountZero, func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = spammer.AccountID()
			tx.Amount = amount.New(amount.XRP, v)
		})
		return err
	case r < 0.51: // whale transfer between institutions
		// Inter-exchange XRP movements: large, diverse amounts — the
		// upper decades of Figure 5's XRP survival function.
		from, to := g.institution(), g.institution()
		if from.AccountID() == to.AccountID() {
			return nil
		}
		f := 3e6 * math.Exp(g.rng.NormFloat64()*1.5)
		if f > 2e7 {
			f = 2e7
		}
		if f < 1e5 {
			f = 1e5
		}
		v, err := amount.FromFloat64(f)
		if err != nil {
			return nil
		}
		v = v.RoundToPow10(4)
		_, err = g.submit(from, func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = to.AccountID()
			tx.Amount = amount.New(amount.XRP, v)
		})
		return err
	default: // P2P between ordinary users: small, mostly round amounts
		si := g.rng.Intn(len(g.pop.Users))
		di := g.rng.Intn(len(g.pop.Users))
		if di == si {
			di = (di + 1) % len(g.pop.Users)
		}
		f := 3000 * math.Exp(g.rng.NormFloat64()*1.8)
		if f > 10000 {
			f = float64(1 + g.rng.Intn(10000))
		}
		if f < 1 {
			f = 1
		}
		v := amount.FromInt64(int64(f))
		_, err := g.submit(g.pop.Users[si].Key, func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = g.pop.Users[di].ID
			tx.Amount = amount.New(amount.XRP, v)
		})
		return err
	}
}

// institution picks a gateway or market maker keypair — the
// deep-pocketed XRP holders.
func (g *generator) institution() *addr.KeyPair {
	n := len(g.pop.Gateways) + len(g.pop.MarketMakers)
	i := g.rng.Intn(n)
	if i < len(g.pop.Gateways) {
		return g.pop.Gateways[i].Key
	}
	return g.pop.MarketMakers[i-len(g.pop.Gateways)].Key
}

// submitAs submits an unsigned transaction on behalf of an account whose
// key the submitter "knows" — ACCOUNT_ZERO's secret key is public, which
// the paper identifies as the enabler of its spam traffic.
func (g *generator) submitAs(account addr.AccountID, mutate func(*ledger.Tx)) (*ledger.TxMeta, error) {
	tx := &ledger.Tx{
		Account:  account,
		Sequence: g.eng.NextSequence(account),
		Fee:      10,
	}
	mutate(tx)
	meta, err := g.eng.Apply(tx)
	if err != nil {
		return nil, err
	}
	g.pageTxs = append(g.pageTxs, tx)
	g.pageMetas = append(g.pageMetas, meta)
	g.stats.Transactions++
	if tx.Type == ledger.TxPayment {
		if meta.Result.Succeeded() {
			g.stats.PaymentsOK++
			g.stats.ByCurrency[tx.Amount.Currency]++
		} else {
			g.stats.PaymentsFailed++
		}
	}
	return meta, nil
}

// cckSpam: micro-transactions ping-ponging around the spammer ring.
func (g *generator) cckSpam() error {
	i := g.rng.Intn(len(g.pop.CCKSpammers))
	a := g.pop.CCKSpammers[i]
	b := g.pop.CCKSpammers[(i+1)%len(g.pop.CCKSpammers)]
	if g.cckForward {
		a, b = b, a
	}
	g.cckForward = !g.cckForward
	v := cckMicro[g.rng.Intn(len(cckMicro))]
	_, err := g.submit(a, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = b.AccountID()
		tx.Amount = amount.New(amount.CCK, v)
	})
	return err
}

// mtlSpam: the 6-chain, 8-hop spam campaign. Directions alternate so the
// chain capacities regenerate (debt is paid back down the same links).
// Every 50th forward/back pair instead traverses the 44-intermediary
// long chain — the oddity at the far right of Figure 6(a).
func (g *generator) mtlSpam() error {
	g.mtlCount++
	if (g.mtlCount/2)%50 == 1 && len(g.pop.LongChain) >= 2 {
		from := g.pop.LongChain[0]
		to := g.pop.LongChain[len(g.pop.LongChain)-1]
		if g.mtlCount%2 == 0 {
			from, to = to, from
		}
		_, err := g.submit(from, func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = to.AccountID()
			tx.Amount = amount.New(amount.MTL, mtlQuantum)
		})
		return err
	}
	from, to := g.pop.Attacker, g.pop.SpamSink
	if !g.spamForward {
		from, to = to, from
	}
	g.spamForward = !g.spamForward
	_, err := g.submit(from, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = to.AccountID()
		tx.Amount = amount.New(amount.MTL, mtlSpamAmount)
	})
	return err
}

// organicPayment: deposits, consumer purchases, and P2P transfers in an
// issued currency.
func (g *generator) organicPayment(cur amount.Currency) error {
	refs := g.linesByCur[cur]
	if len(refs) == 0 {
		// Nobody holds this currency (deep-tail): issue a deposit to
		// bootstrap it.
		return g.bootstrapCurrency(cur)
	}
	r := g.rng.Float64()
	switch {
	case r < 0.25:
		// Deposit: the user's host issues fresh IOUs.
		ref := refs[g.rng.Intn(len(refs))]
		u := &g.pop.Users[ref.user]
		host := u.Lines[ref.line].Host
		v := g.organicModel[modelKey(cur)].deposit(g.rng)
		_, err := g.submit(host, func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = u.ID
			tx.Amount = amount.New(cur, v)
		})
		return err
	case r < 0.60:
		return g.consumerPayment(cur, refs)
	default:
		// P2P in the same currency; majors sometimes funded cross-
		// currency, like consumer payments.
		a := refs[g.rng.Intn(len(refs))]
		b := refs[g.rng.Intn(len(refs))]
		if a.user == b.user {
			return g.consumerPayment(cur, refs)
		}
		sender := &g.pop.Users[a.user]
		var v amount.Value
		if g.rng.Float64() < 0.8 {
			// Balance-proportional transfer: the user moves most of
			// what they hold. Anything above a single membership's
			// balance splits across the user's gateways — the parallel
			// paths of Figure 6(b).
			v = g.balanceShare(sender, cur)
		}
		if v.IsZero() {
			v = g.organicModel[modelKey(cur)].p2p(g.rng)
		}
		var sendMax amount.Amount
		if majorSet[cur] && g.rng.Float64() < 0.5 {
			sendMax = g.crossSource(sender, cur, v)
		}
		_, err := g.submit(sender.Key, func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = g.pop.Users[b.user].ID
			tx.Amount = amount.New(cur, v)
			tx.SendMax = sendMax
		})
		return err
	}
}

// balanceShare returns 40–95% of the sender's total holdings of cur
// across all their hosts, snapped to the currency grid. Zero when the
// user holds nothing.
func (g *generator) balanceShare(sender *User, cur amount.Currency) amount.Value {
	total := amount.Zero
	for _, l := range sender.Lines {
		if l.Currency != cur {
			continue
		}
		owed := g.eng.Graph().Owed(sender.ID, l.HostID, cur)
		var err error
		if total, err = total.Add(owed); err != nil {
			return amount.Zero
		}
	}
	if !total.IsPositive() {
		return amount.Zero
	}
	frac, err := amount.FromFloat64(0.4 + 0.55*g.rng.Float64())
	if err != nil {
		return amount.Zero
	}
	v, err := total.Mul(frac)
	if err != nil {
		return amount.Zero
	}
	return v.RoundToPow10(g.organicModel[modelKey(cur)].grid)
}

// crossSource picks a funding currency different from cur (one of the
// sender's other major lines, or XRP) and returns a generous SendMax in
// it; the zero Amount means "pay in the delivery currency".
func (g *generator) crossSource(sender *User, cur amount.Currency, v amount.Value) amount.Amount {
	var candidates []amount.Currency
	for _, l := range sender.Lines {
		if l.Currency != cur && majorSet[l.Currency] {
			candidates = append(candidates, l.Currency)
		}
	}
	var srcCur amount.Currency
	if g.rng.Float64() < 0.3 || len(candidates) == 0 {
		srcCur = amount.XRP
	} else {
		srcCur = candidates[g.rng.Intn(len(candidates))]
	}
	fair := v.Float64() * RateUSD(cur) / RateUSD(srcCur)
	maxV, err := amount.FromFloat64(fair * 2)
	if err != nil || maxV.IsZero() {
		return amount.Amount{}
	}
	return amount.New(srcCur, maxV)
}

// majorSet lists the bridgeable currencies (books carry liquidity for
// these pairs).
var majorSet = map[amount.Currency]bool{
	amount.BTC: true, amount.USD: true, amount.CNY: true, amount.JPY: true,
}

// consumerPayment: a user pays a merchant a menu price; with high
// probability the payer funds it from a different currency
// (cross-currency payments are "68.7%" of the paper's replay set).
func (g *generator) consumerPayment(cur amount.Currency, refs []userLineRef) error {
	merchants := g.merchantsByCur[cur]
	if len(merchants) == 0 {
		// No merchant holds this currency; degrade to P2P.
		a := refs[g.rng.Intn(len(refs))]
		b := refs[g.rng.Intn(len(refs))]
		if a.user == b.user {
			return nil
		}
		v := g.organicModel[modelKey(cur)].p2p(g.rng)
		_, err := g.submit(g.pop.Users[a.user].Key, func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = g.pop.Users[b.user].ID
			tx.Amount = amount.New(cur, v)
		})
		return err
	}
	// Zipfian merchant popularity.
	mi := merchants[g.zipfIndex(len(merchants))]
	m := &g.pop.Users[mi]
	menu := m.Prices[g.rng.Intn(len(m.Prices))]
	v := price(menu, cur)

	ref := refs[g.rng.Intn(len(refs))]
	sender := &g.pop.Users[ref.user]
	if sender.ID == m.ID {
		return nil
	}

	// Pay from another currency with high probability — cross-currency
	// payments dominate the paper's replay set (68.7%).
	var sendMax amount.Amount
	if majorSet[cur] && g.rng.Float64() < 0.85 {
		sendMax = g.crossSource(sender, cur, v)
	}
	_, err := g.submit(sender.Key, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = m.ID
		tx.Amount = amount.New(cur, v)
		tx.SendMax = sendMax
	})
	return err
}

// zipfIndex draws an index in [0, n) with zipfian (rank^-1) weighting.
func (g *generator) zipfIndex(n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF on the harmonic distribution via rejection-free
	// approximation: u ~ U(0,1), index = n^u - 1 concentrates on small
	// ranks roughly like 1/rank.
	u := g.rng.Float64()
	idx := int(math.Pow(float64(n), u)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// bootstrapCurrency issues a first deposit in a deep-tail currency.
func (g *generator) bootstrapCurrency(cur amount.Currency) error {
	gw := &g.pop.Gateways[g.rng.Intn(len(g.pop.Gateways))]
	ui := g.rng.Intn(len(g.pop.Users))
	u := &g.pop.Users[ui]
	if err := g.trust(u.Key, gw.ID, cur, g.organicModel[modelKey(cur)].trustLimit()); err != nil {
		return err
	}
	if err := g.depositFrom(gw.Key, u, cur); err != nil {
		return err
	}
	u.Lines = append(u.Lines, Line{Host: gw.Key, HostID: gw.ID, Currency: cur})
	g.linesByCur[cur] = append(g.linesByCur[cur], userLineRef{user: ui, line: len(u.Lines) - 1})
	if u.Merchant {
		g.merchantsByCur[cur] = append(g.merchantsByCur[cur], ui)
	}
	return nil
}

// placeOfferOrCancel emits one OfferCreate (or, 5% of the time, an
// OfferCancel of a standing offer) by a zipf-chosen market maker.
func (g *generator) placeOfferOrCancel() error {
	if len(g.standingOffers) > 0 && g.rng.Float64() < 0.05 {
		i := g.rng.Intn(len(g.standingOffers))
		o := g.standingOffers[i]
		g.standingOffers = append(g.standingOffers[:i], g.standingOffers[i+1:]...)
		_, err := g.submit(o.owner, func(tx *ledger.Tx) {
			tx.Type = ledger.TxOfferCancel
			tx.OfferSequence = o.seq
		})
		return err
	}
	// Pick the maker.
	u := g.rng.Float64()
	mi := len(g.mmCumWeights) - 1
	for i, c := range g.mmCumWeights {
		if u <= c {
			mi = i
			break
		}
	}
	mm := &g.pop.MarketMakers[mi]

	majors := []amount.Currency{amount.BTC, amount.USD, amount.CNY, amount.JPY}
	var pays, gets amount.Currency
	if g.rng.Float64() < 0.6 {
		// major ↔ XRP
		m := majors[g.rng.Intn(len(majors))]
		if g.rng.Intn(2) == 0 {
			pays, gets = m, amount.XRP
		} else {
			pays, gets = amount.XRP, m
		}
	} else {
		pays = majors[g.rng.Intn(len(majors))]
		gets = majors[g.rng.Intn(len(majors))]
		for gets == pays {
			gets = majors[g.rng.Intn(len(majors))]
		}
	}
	model := g.organicModel[modelKey(gets)]
	getsQty := model.typical * 200 * math.Exp(g.rng.NormFloat64()*0.8)
	paysQty := getsQty * RateUSD(gets) / RateUSD(pays) * (1 + 0.01 + 0.04*g.rng.Float64())
	getsV, err1 := amount.FromFloat64(getsQty)
	paysV, err2 := amount.FromFloat64(paysQty)
	if err1 != nil || err2 != nil || getsV.IsZero() || paysV.IsZero() {
		return nil
	}
	seq := g.eng.NextSequence(mm.ID)
	meta, err := g.submit(mm.Key, func(tx *ledger.Tx) {
		tx.Type = ledger.TxOfferCreate
		tx.TakerPays = amount.New(pays, paysV.RoundToPow10(int(math.Floor(math.Log10(paysQty)))-3))
		tx.TakerGets = amount.New(gets, getsV.RoundToPow10(int(math.Floor(math.Log10(getsQty)))-3))
	})
	if err != nil {
		return err
	}
	if meta.Result.Succeeded() {
		g.stats.Offers++
		g.standingOffers = append(g.standingOffers, offerRef{owner: mm.Key, seq: seq})
	}
	return nil
}
